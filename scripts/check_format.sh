#!/usr/bin/env bash
# clang-format gate: run `clang-format --dry-run -Werror` over the C++
# files changed relative to a base ref (default: the merge base with
# origin/main, falling back to HEAD~1, falling back to the whole tree).
#
# Usage:
#   scripts/check_format.sh [base-ref]
#
# Diff-scoped on purpose: parts of the historical tree predate
# .clang-format, so the gate enforces the style on code as it is
# touched rather than demanding a big-bang reformat (which would
# destroy blame and the hand-aligned algorithm commentary).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

format_bin="${CLANG_FORMAT:-clang-format}"
if ! command -v "${format_bin}" >/dev/null 2>&1; then
    echo "check_format: '${format_bin}' not found on PATH." >&2
    echo "Install clang-format (apt: clang-format) or set CLANG_FORMAT." >&2
    exit 2
fi

base="${1:-}"
if [ -z "${base}" ]; then
    base="$(git merge-base origin/main HEAD 2>/dev/null ||
            git rev-parse HEAD~1 2>/dev/null || true)"
fi

if [ -n "${base}" ]; then
    mapfile -t files < <(git diff --name-only --diff-filter=ACMR \
        "${base}" -- '*.cpp' '*.h')
else
    mapfile -t files < <(git ls-files '*.cpp' '*.h')
fi

if [ "${#files[@]}" -eq 0 ]; then
    echo "check_format: no C++ files changed since ${base:-<none>}"
    exit 0
fi

echo "check_format: checking ${#files[@]} file(s) against ${base:-tree}"
"${format_bin}" --dry-run -Werror --style=file "${files[@]}"
echo "check_format: OK"
