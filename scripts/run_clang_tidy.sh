#!/usr/bin/env bash
# Run clang-tidy over the library sources using the committed .clang-tidy
# and a CMake compilation database.
#
# Usage:
#   scripts/run_clang_tidy.sh [build-dir] [-- extra clang-tidy args]
#
# If the build dir has no compile_commands.json yet, it is configured
# here (CMAKE_EXPORT_COMPILE_COMMANDS=ON, which the top-level
# CMakeLists also forces) so the gate never runs against a stale or
# missing database. scripts/lint.sh points graphite_lint's clang engine
# at the same database, so one configure feeds both tools. Exits
# non-zero on any finding: .clang-tidy sets WarningsAsErrors '*', so
# this is the same gate CI applies.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
shift || true
[ "${1:-}" = "--" ] && shift

tidy_bin="${CLANG_TIDY:-clang-tidy}"
if ! command -v "${tidy_bin}" >/dev/null 2>&1; then
    echo "run_clang_tidy: '${tidy_bin}' not found on PATH." >&2
    echo "Install clang-tidy (apt: clang-tidy-15) or set CLANG_TIDY." >&2
    exit 2
fi
if [ ! -f "${build_dir}/compile_commands.json" ]; then
    echo "run_clang_tidy: generating ${build_dir}/compile_commands.json"
    cmake -B "${build_dir}" -S "${repo_root}" \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

# Library sources only: tests/bench link gtest/benchmark headers whose
# diagnostics we do not gate on, but our own headers included from src/
# are still covered via HeaderFilterRegex.
mapfile -t sources < <(find "${repo_root}/src" -name '*.cpp' | sort)

echo "clang-tidy: ${#sources[@]} files, database ${build_dir}"
status=0
for source in "${sources[@]}"; do
    if ! "${tidy_bin}" -p "${build_dir}" --quiet "$@" "${source}"; then
        status=1
        echo "clang-tidy: FAILED ${source#"${repo_root}"/}" >&2
    fi
done
exit "${status}"
