#!/usr/bin/env bash
# Static-analysis driver for the Graphite-specific lint
# (tools/graphite_lint): self-test first, then the full tree.
#
# Usage:
#   scripts/lint.sh [build-dir]
#
# The build dir supplies compile_commands.json for the clang engine
# (python3-clang); it is configured here if missing, and it is the same
# database scripts/run_clang_tidy.sh uses, so one configure feeds both
# tools. Without the clang bindings the linter's dependency-free text
# engine runs instead — same rules, lexical matching.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

if [ ! -f "${build_dir}/compile_commands.json" ]; then
    echo "lint: generating ${build_dir}/compile_commands.json"
    cmake -B "${build_dir}" -S "${repo_root}" \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

python3 "${repo_root}/tools/graphite_lint" --self-test
python3 "${repo_root}/tools/graphite_lint" \
    --repo-root "${repo_root}" \
    --compile-commands "${build_dir}"
echo "lint: clean"
