#!/usr/bin/env python3
"""Validate the observability artifacts bench_smoke emits.

Three artifacts, each optional on the command line:

  --bench BENCH_smoke.json      headline-rate JSON (always produced)
  --serve BENCH_serve.json      serving-bench JSON (bench/serve_load)
  --churn BENCH_churn.json      dynamic-graph JSON (bench/churn_load)
  --metrics METRICS_smoke.json  metrics-registry dump (--metrics-out)
  --trace TRACE_smoke.json      chrome://tracing spans (--trace-out)

The checks are structural (required keys, types, histogram bucket
arity), not numeric — CI archives the numbers as a trend, it does not
gate on them. Exit status is nonzero on the first violation so the
bench-smoke job fails loudly when an emitter regresses.
"""

import argparse
import json
import math
import sys

# Keys bench_smoke has always written; CI artifact diffs rely on them.
BENCH_REQUIRED = {
    "dataset": str,
    "vertices": int,
    "edges": int,
    "hidden_features": int,
    "threads": int,
    "epoch_seconds": float,
    "epoch_seconds_bf16": float,
    "final_loss": float,
    "final_loss_bf16": float,
    "bf16_native": bool,
    "bytes_gathered_fp32": int,
    "bytes_gathered_bf16": int,
    "gather_traffic_ratio": float,
    "shard_count": int,
    "cut_edge_ratio": float,
    "halo_bytes": int,
    "bytes_gathered_sharded": int,
    "epoch_seconds_sharded": float,
    "sim_dram_lines_global": int,
    "sim_dram_lines_sharded": int,
    "backward_seconds_unfused": float,
    "backward_seconds_fused": float,
    "backward_speedup": float,
    "aggregation_gflops": float,
    "aggregation_bf16_gflops": float,
    "dma_aggregation_gflops": float,
    "gemm_bf16_gflops": float,
    "gemm_gflops": float,
}

# The serve section both bench_smoke and bench/serve_load emit: one
# cache-on run and one cache-off run at identical offered load.
SERVE_REQUIRED = {
    "hot_cache_capacity": int,
    "offered_qps": float,
    "qps": float,
    "p50_us": float,
    "p99_us": float,
    "mean_batch_size": float,
    "cache_hit_rate": float,
    "bytes_gathered": int,
    "dropped": int,
    "qps_nocache": float,
    "p50_us_nocache": float,
    "p99_us_nocache": float,
    "bytes_gathered_nocache": int,
    "dropped_nocache": int,
}

# The churn section bench/churn_load emits: a churn run against a
# delta-CSR overlay plus a static cache-on baseline at identical load.
CHURN_REQUIRED = {
    "vertices": int,
    "base_edges": int,
    "delta_budget": int,
    "churn_rate_offered": float,
    "compact_every": int,
    "inserts_offered": int,
    "inserts_accepted": int,
    "insert_throughput_eps": float,
    "compactions": int,
    "invalidations": int,
    "qps": float,
    "p50_us": float,
    "p99_us": float,
    "cache_hit_rate": float,
    "dropped": int,
    "qps_static": float,
    "p50_us_static": float,
    "p99_us_static": float,
    "cache_hit_rate_static": float,
    "p99_delta_us": float,
    "hit_rate_delta": float,
    "staleness_samples": int,
    "staleness_mean_rel_l2": float,
    "staleness_max_rel_l2": float,
    "post_compact_parity": bool,
}

# Mean relative-L2 staleness of embeddings served under churn vs the
# compacted-graph replay is bounded by the sampling estimate's own
# error (server.h's deviation contract); past this the serving path is
# returning garbage, not merely stale results.
CHURN_STALENESS_BOUND = 1.0

# Span names a traced bench_smoke run must have exercised (acceptance
# criterion: aggregation, GEMM, backward and DMA all show up).
TRACE_REQUIRED_SPANS = [
    "agg.basic",
    "gemm",
    "fused.backward",
    "dma.pipeline",
]

HISTOGRAM_BUCKETS = 65  # log2 buckets: bit widths 0..64


def fail(message):
    print(f"check_metrics_schema: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"{path}: {error}")


def expect_number(value, what):
    # json loads whole-valued floats as int; both are fine for rates.
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        fail(f"{what} is {type(value).__name__}, expected a number")


def check_bench(path):
    doc = load(path)
    if not isinstance(doc, dict):
        fail(f"{path}: top level is not an object")
    for key, kind in BENCH_REQUIRED.items():
        if key not in doc:
            fail(f"{path}: missing key '{key}'")
        if kind is float:
            expect_number(doc[key], f"{path}:{key}")
        elif not isinstance(doc[key], kind):
            fail(f"{path}:{key} is {type(doc[key]).__name__}, "
                 f"expected {kind.__name__}")
    # One deliberate numeric gate: the bf16 path exists to halve gather
    # traffic, so the measured byte ratio must sit at ~0.5 (strides pad
    # both forms identically). A drift here means the element-size
    # accounting or the bf16 gather path regressed.
    ratio = doc["gather_traffic_ratio"]
    if doc["bytes_gathered_fp32"] > 0 and not 0.4 <= ratio <= 0.6:
        fail(f"{path}: gather_traffic_ratio {ratio} outside [0.4, 0.6] "
             f"— bf16 gathers no longer halve traffic")
    check_serve_section(doc, path)
    phases = doc.get("phases")
    if phases is not None:
        if not isinstance(phases, dict) or not phases:
            fail(f"{path}: 'phases' must be a non-empty object")
        for name, entry in phases.items():
            if not isinstance(entry, dict):
                fail(f"{path}: phase '{name}' is not an object")
            if not isinstance(entry.get("count"), int):
                fail(f"{path}: phase '{name}' missing integer 'count'")
            expect_number(entry.get("seconds"), f"phase '{name}' seconds")
    print(f"check_metrics_schema: OK {path} "
          f"({len(doc)} keys, phases={'yes' if phases else 'no'})")


def check_serve_section(doc, path):
    """Validate the 'serve' object: key/type structure plus the
    serving-layer gates. The latency percentiles are archived, not
    gated (CI wall-clock noise); the gather-byte reduction from the
    hot-vertex cache is deterministic at fixed seeds, so it IS gated.
    """
    serve = doc.get("serve")
    if not isinstance(serve, dict):
        fail(f"{path}: missing object 'serve'")
    for key, kind in SERVE_REQUIRED.items():
        if key not in serve:
            fail(f"{path}: serve section missing key '{key}'")
        if kind is float:
            expect_number(serve[key], f"{path}:serve.{key}")
        elif not isinstance(serve[key], kind):
            fail(f"{path}:serve.{key} is "
                 f"{type(serve[key]).__name__}, expected {kind.__name__}")
    for suffix in ("", "_nocache"):
        if serve["qps" + suffix] <= 0:
            fail(f"{path}: serve.qps{suffix} must be positive "
                 f"(got {serve['qps' + suffix]})")
        if serve["p99_us" + suffix] < serve["p50_us" + suffix]:
            fail(f"{path}: serve.p99_us{suffix} "
                 f"{serve['p99_us' + suffix]} < p50_us{suffix} "
                 f"{serve['p50_us' + suffix]}")
    if not 0.0 <= serve["cache_hit_rate"] <= 1.0:
        fail(f"{path}: serve.cache_hit_rate "
             f"{serve['cache_hit_rate']} outside [0, 1]")
    if (serve["hot_cache_capacity"] > 0
            and serve["bytes_gathered"] >= serve["bytes_gathered_nocache"]):
        fail(f"{path}: hot-vertex cache did not reduce gather traffic "
             f"({serve['bytes_gathered']} >= "
             f"{serve['bytes_gathered_nocache']})")


def check_serve(path):
    doc = load(path)
    if not isinstance(doc, dict):
        fail(f"{path}: top level is not an object")
    check_serve_section(doc, path)
    print(f"check_metrics_schema: OK {path} (serve section)")


def check_churn(path):
    """Validate BENCH_churn.json: structure plus the three dynamic-graph
    gates — sustained insert throughput while serving, bounded
    served-embedding staleness vs the compacted-graph oracle, and
    bitwise post-compaction parity against a from-scratch server.
    """
    doc = load(path)
    if not isinstance(doc, dict):
        fail(f"{path}: top level is not an object")
    churn = doc.get("churn")
    if not isinstance(churn, dict):
        fail(f"{path}: missing object 'churn'")
    for key, kind in CHURN_REQUIRED.items():
        if key not in churn:
            fail(f"{path}: churn section missing key '{key}'")
        if kind is float:
            expect_number(churn[key], f"{path}:churn.{key}")
        elif not isinstance(churn[key], kind):
            fail(f"{path}:churn.{key} is "
                 f"{type(churn[key]).__name__}, expected {kind.__name__}")
    if churn["insert_throughput_eps"] <= 0:
        fail(f"{path}: insert_throughput_eps must be positive while "
             f"serving (got {churn['insert_throughput_eps']})")
    if churn["inserts_accepted"] > churn["inserts_offered"]:
        fail(f"{path}: inserts_accepted {churn['inserts_accepted']} "
             f"exceeds inserts_offered {churn['inserts_offered']}")
    for suffix in ("", "_static"):
        if churn["qps" + suffix] <= 0:
            fail(f"{path}: churn.qps{suffix} must be positive")
        if churn["p99_us" + suffix] < churn["p50_us" + suffix]:
            fail(f"{path}: churn.p99_us{suffix} < p50_us{suffix}")
        rate = churn["cache_hit_rate" + suffix]
        if not 0.0 <= rate <= 1.0:
            fail(f"{path}: churn.cache_hit_rate{suffix} {rate} "
                 f"outside [0, 1]")
    mean = churn["staleness_mean_rel_l2"]
    peak = churn["staleness_max_rel_l2"]
    if churn["staleness_samples"] > 0:
        if not (0.0 <= mean <= peak):
            fail(f"{path}: staleness mean {mean} / max {peak} "
                 f"inconsistent")
        if not math.isfinite(mean) or mean > CHURN_STALENESS_BOUND:
            fail(f"{path}: staleness_mean_rel_l2 {mean} exceeds the "
                 f"{CHURN_STALENESS_BOUND} sampling-error bound — "
                 f"served embeddings diverged from the compacted-graph "
                 f"oracle")
    if churn["post_compact_parity"] is not True:
        fail(f"{path}: post_compact_parity is false — a compacted "
             f"overlay no longer serves bitwise like a from-scratch "
             f"build")
    print(f"check_metrics_schema: OK {path} "
          f"({churn['inserts_accepted']} inserts @ "
          f"{churn['insert_throughput_eps']:.0f}/s, staleness "
          f"{mean:.4f}, parity ok)")


def check_metrics(path):
    doc = load(path)
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(doc.get(section), dict):
            fail(f"{path}: missing object '{section}'")
    for name, value in doc["counters"].items():
        if not isinstance(value, int) or value < 0:
            fail(f"{path}: counter '{name}' is not a non-negative int")
    for name, value in doc["gauges"].items():
        expect_number(value, f"gauge '{name}'")
    for name, hist in doc["histograms"].items():
        if not isinstance(hist, dict):
            fail(f"{path}: histogram '{name}' is not an object")
        for key in ("count", "sum", "min", "max"):
            if not isinstance(hist.get(key), int):
                fail(f"{path}: histogram '{name}' missing int '{key}'")
        buckets = hist.get("log2_buckets")
        if (not isinstance(buckets, list)
                or len(buckets) != HISTOGRAM_BUCKETS
                or not all(isinstance(b, int) for b in buckets)):
            fail(f"{path}: histogram '{name}' needs "
                 f"{HISTOGRAM_BUCKETS} integer log2_buckets")
        if sum(buckets) != hist["count"]:
            fail(f"{path}: histogram '{name}' bucket sum "
                 f"{sum(buckets)} != count {hist['count']}")
        for q in ("p50", "p90", "p99"):
            expect_number(hist.get(q), f"histogram '{name}' {q}")
        if not (hist["p50"] <= hist["p90"] <= hist["p99"]):
            fail(f"{path}: histogram '{name}' quantiles not "
                 f"monotone: p50 {hist['p50']} p90 {hist['p90']} "
                 f"p99 {hist['p99']}")
        if hist["count"] > 0 and not (
                hist["min"] <= hist["p50"] and hist["p99"] <= hist["max"]):
            fail(f"{path}: histogram '{name}' quantiles escape "
                 f"[min, max]")
    print(f"check_metrics_schema: OK {path} "
          f"({len(doc['counters'])} counters, "
          f"{len(doc['histograms'])} histograms)")


def check_trace(path, required_spans):
    doc = load(path)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: missing non-empty 'traceEvents' array")
    names = set()
    for event in events:
        if not isinstance(event, dict):
            fail(f"{path}: traceEvents entry is not an object")
        for key in ("name", "ph", "pid", "tid", "ts", "dur"):
            if key not in event:
                fail(f"{path}: trace event missing '{key}'")
        if event["ph"] != "X":
            fail(f"{path}: unexpected event phase '{event['ph']}'")
        expect_number(event["ts"], f"{path}: ts")
        expect_number(event["dur"], f"{path}: dur")
        names.add(event["name"])
    for span in required_spans:
        if span not in names:
            fail(f"{path}: required span '{span}' absent "
                 f"(saw: {', '.join(sorted(names))})")
    print(f"check_metrics_schema: OK {path} "
          f"({len(events)} events, {len(names)} distinct spans)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", help="BENCH_smoke.json path")
    parser.add_argument("--serve",
                        help="serving-bench JSON path (BENCH_serve.json)")
    parser.add_argument("--churn",
                        help="churn-bench JSON path (BENCH_churn.json)")
    parser.add_argument("--metrics", help="metrics registry JSON path")
    parser.add_argument("--trace", help="chrome://tracing JSON path")
    parser.add_argument("--require-span", action="append", default=None,
                        help="span name the trace must contain "
                             "(default: the bench_smoke hot-path set)")
    args = parser.parse_args()
    if not (args.bench or args.serve or args.churn or args.metrics
            or args.trace):
        parser.error("nothing to check: pass "
                     "--bench/--serve/--churn/--metrics/--trace")
    if args.bench:
        check_bench(args.bench)
    if args.serve:
        check_serve(args.serve)
    if args.churn:
        check_churn(args.churn)
    if args.metrics:
        check_metrics(args.metrics)
    if args.trace:
        spans = args.require_span
        if spans is None:
            spans = TRACE_REQUIRED_SPANS
        check_trace(args.trace, spans)


if __name__ == "__main__":
    main()
