#!/usr/bin/env bash
# CI serving smoke: build (if needed) and run bench/serve_load — the
# open-loop Zipf/Poisson load generator against the inference server,
# hot-vertex cache on vs off at identical offered load. Emits
# BENCH_serve.json for CI to archive per commit.
#
# Usage:
#   scripts/serve_smoke.sh [build-dir] [output-json]
#
# Defaults: build-dir = build, output = BENCH_serve.json in the repo
# root. Pass an existing Release build dir in CI to skip the configure.
# The request count is fixed (open-loop, not wall-clock bound), so the
# run finishes in a few seconds regardless of machine speed.
#
# Gating: latency percentiles are archived as a trend only (CI
# wall-clock noise). The cache's gather-byte reduction is a pure
# function of the seeds — request stream, sampled trees, and cache
# access order are all deterministic — so the schema check hard-gates
# bytes_gathered < bytes_gathered_nocache.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

build_dir="${1:-build}"
output="${2:-${repo_root}/BENCH_serve.json}"

if [ ! -f "${build_dir}/CMakeCache.txt" ]; then
    cmake -B "${build_dir}" -S . -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "${build_dir}" -j --target serve_load

# Smaller than the bench defaults on purpose: scale 11 keeps the graph
# build fast while the degree distribution stays hub-heavy enough for
# the cache to matter; 4000 measured requests bound the runtime.
"${build_dir}/bench/serve_load" --scale=11 --requests=4000 \
    --warmup-requests=800 --qps=20000 --output="${output}"

# Structure plus the deterministic gates (qps > 0, p99 >= p50, hit
# rate in [0,1], cache-on gathers strictly fewer bytes).
if command -v python3 >/dev/null 2>&1; then
    python3 scripts/check_metrics_schema.py --serve "${output}"
else
    echo "serve_smoke: python3 not found, skipping schema check"
fi

echo "serve_smoke: wrote ${output}"
