#!/usr/bin/env bash
# CI smoke benchmark: build (if needed) and run bench_smoke — one small
# real training run on the products analogue plus raw kernel rates —
# and a filtered pass of the google-benchmark micro_kernels binary.
# Emits BENCH_smoke.json (epoch seconds, fused-vs-unfused backward
# seconds, aggregation/GEMM GFLOP/s) for CI to archive per commit.
#
# Usage:
#   scripts/bench_smoke.sh [build-dir] [output-json]
#
# Defaults: build-dir = build, output = BENCH_smoke.json in the repo
# root. Pass an existing Release build dir in CI to skip the configure.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

build_dir="${1:-build}"
output="${2:-${repo_root}/BENCH_smoke.json}"

if [ ! -f "${build_dir}/CMakeCache.txt" ]; then
    cmake -B "${build_dir}" -S . -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "${build_dir}" -j --target bench_smoke micro_kernels

# Micro-kernel sanity pass: the backward fused-vs-unfused pair plus the
# bias-gradient column sum, kept short (CI smoke, not a perf sweep).
"${build_dir}/bench/micro_kernels" \
    --benchmark_filter='BM_Backward|BM_BiasGrad' \
    --benchmark_min_time=0.05

# The measured artifact. Small scale on purpose: the numbers gate
# nothing, they are archived so regressions show up as a trend.
"${build_dir}/bench/bench_smoke" --scale-shift=4 --epochs=4 --reps=5 \
    --output="${output}"

echo "bench_smoke: wrote ${output}"
