#!/usr/bin/env bash
# CI smoke benchmark: build (if needed) and run bench_smoke — one small
# real training run on the products analogue plus raw kernel rates —
# and a filtered pass of the google-benchmark micro_kernels binary.
# Emits BENCH_smoke.json (epoch seconds, fused-vs-unfused backward
# seconds, aggregation/GEMM GFLOP/s) for CI to archive per commit.
#
# Usage:
#   scripts/bench_smoke.sh [build-dir] [output-json]
#
# Defaults: build-dir = build, output = BENCH_smoke.json in the repo
# root. Pass an existing Release build dir in CI to skip the configure.
# The run is traced: TRACE_smoke.json (chrome://tracing spans) and
# METRICS_smoke.json (metrics registry) land next to the output JSON
# and are schema-checked when python3 is available.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

build_dir="${1:-build}"
output="${2:-${repo_root}/BENCH_smoke.json}"
trace_out="$(dirname "${output}")/TRACE_smoke.json"
metrics_out="$(dirname "${output}")/METRICS_smoke.json"

if [ ! -f "${build_dir}/CMakeCache.txt" ]; then
    cmake -B "${build_dir}" -S . -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "${build_dir}" -j --target bench_smoke micro_kernels

# Micro-kernel sanity pass: the backward fused-vs-unfused pair plus the
# bias-gradient column sum, kept short (CI smoke, not a perf sweep).
"${build_dir}/bench/micro_kernels" \
    --benchmark_filter='BM_Backward|BM_BiasGrad' \
    --benchmark_min_time=0.05

# The measured artifact. Small scale on purpose: the numbers gate
# nothing, they are archived so regressions show up as a trend. The
# traced run also archives per-phase spans and hot-path counters.
"${build_dir}/bench/bench_smoke" --scale-shift=4 --epochs=4 --reps=5 \
    --output="${output}" --trace-out="${trace_out}" \
    --metrics-out="${metrics_out}"

# Structural gate on the emitters (key set, histogram arity, required
# span names) — the numbers themselves still gate nothing.
if command -v python3 >/dev/null 2>&1; then
    python3 scripts/check_metrics_schema.py --bench "${output}" \
        --metrics "${metrics_out}" --trace "${trace_out}"
else
    echo "bench_smoke: python3 not found, skipping schema check"
fi

echo "bench_smoke: wrote ${output}, ${trace_out}, ${metrics_out}"
