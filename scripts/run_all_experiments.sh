#!/bin/bash
# Run every paper-reproduction bench in order and tee the output.
# Usage: scripts/run_all_experiments.sh [output-file]
set -u
cd "$(dirname "$0")/.."
out="${1:-experiments_output.txt}"

benches=(
    table3_datasets
    fig02_sampling_overhead
    fig03_pipeline_breakdown
    fig11_software_speedup
    fig12_dma_speedup
    fig13_fusion_breakdown
    fig14_compression_sensitivity
    fig15_locality_randomized
    table4_memory_characterization
    table5_cache_access_reduction
    sec732_memory_system
    fig16_tracking_table
    ablation_fused_block
    ablation_prefetch
)

{
    for bench in "${benches[@]}"; do
        echo "######## ${bench} ########"
        ./build/bench/"${bench}"
        echo
    done
    echo "######## micro_kernels ########"
    ./build/bench/micro_kernels --benchmark_min_time=0.2
} 2>&1 | tee "${out}"
