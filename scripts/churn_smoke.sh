#!/usr/bin/env bash
# CI dynamic-graph smoke: build (if needed) and run bench/churn_load —
# edge inserts streamed through InferenceServer::insertEdge() at a
# fixed offered rate while the open-loop Zipf/Poisson serving load
# runs, plus the staleness and post-compaction checks. Emits
# BENCH_churn.json for CI to archive per commit.
#
# Usage:
#   scripts/churn_smoke.sh [build-dir] [output-json]
#
# Defaults: build-dir = build, output = BENCH_churn.json in the repo
# root. Pass an existing Release build dir in CI to skip the configure.
#
# Gating (scripts/check_metrics_schema.py --churn):
#   - insert_throughput_eps > 0: inserts sustained concurrently with
#     serving, not starved behind it;
#   - staleness_mean_rel_l2 <= 1.0: embeddings served mid-churn stay
#     within the sampling estimate's error of the compacted-graph
#     replay;
#   - post_compact_parity: after compact(), a from-scratch server over
#     the merged CSR replays sampled requests bit-for-bit.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

build_dir="${1:-build}"
output="${2:-${repo_root}/BENCH_churn.json}"

if [ ! -f "${build_dir}/CMakeCache.txt" ]; then
    cmake -B "${build_dir}" -S . -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "${build_dir}" -j --target churn_load

# Smaller than the bench defaults on purpose: scale 11 keeps the graph
# build fast while staying hub-heavy; 3000 measured requests bound the
# runtime, and compact-every 3000 guarantees at least one mid-run
# compaction is exercised at the default churn rate.
"${build_dir}/bench/churn_load" --scale=11 --requests=3000 \
    --warmup-requests=500 --qps=15000 --churn-rate=15000 \
    --compact-every=3000 --staleness-samples=256 \
    --output="${output}"

if command -v python3 >/dev/null 2>&1; then
    python3 scripts/check_metrics_schema.py --churn "${output}"
else
    echo "churn_smoke: python3 not found, skipping schema check"
fi

echo "churn_smoke: wrote ${output}"
