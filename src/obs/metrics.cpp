#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "common/assert.h"
#include "common/logging.h"

namespace graphite::obs {

namespace detail {

std::size_t
threadSlot()
{
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t slot =
        next.fetch_add(1, std::memory_order_relaxed);
    return slot;
}

} // namespace detail

namespace {

/** Bit width of @p v: 0 for 0, else position of the highest set bit + 1. */
std::size_t
bucketOf(std::uint64_t v)
{
    return v == 0 ? 0 : 64 - static_cast<std::size_t>(__builtin_clzll(v));
}

std::uint64_t
sumCells(const detail::ShardCell (&cells)[kMetricShards])
{
    std::uint64_t total = 0;
    for (const auto &cell : cells)
        total += cell.value.load(std::memory_order_relaxed);
    return total;
}

/** Relaxed atomic min/max via check-then-CAS (rare after warm-up). */
void
atomicMin(std::atomic<std::uint64_t> &slot, std::uint64_t v)
{
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (v < cur &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

void
atomicMax(std::atomic<std::uint64_t> &slot, std::uint64_t v)
{
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (v > cur &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

/** JSON string escaping for metric names (quotes, backslash, control). */
std::string
escapeJson(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::uint64_t
Counter::value() const
{
    return sumCells(cells_);
}

double
Gauge::value() const
{
    const std::uint64_t bits = bits_.load(std::memory_order_relaxed);
    double v;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
}

Histogram::Histogram(std::string name, const std::atomic<bool> *enabled)
    : name_(std::move(name)), enabled_(enabled),
      min_(std::numeric_limits<std::uint64_t>::max()), max_(0)
{
    for (auto &bucket : buckets_)
        bucket.store(0, std::memory_order_relaxed);
}

void
Histogram::observe(std::uint64_t v)
{
    if (!enabled_->load(std::memory_order_relaxed))
        return;
    const std::size_t slot = detail::threadSlot() % kMetricShards;
    counts_[slot].value.fetch_add(1, std::memory_order_relaxed);
    sums_[slot].value.fetch_add(v, std::memory_order_relaxed);
    buckets_[bucketOf(v)].fetch_add(1, std::memory_order_relaxed);
    atomicMin(min_, v);
    atomicMax(max_, v);
}

std::uint64_t
Histogram::count() const
{
    return sumCells(counts_);
}

std::uint64_t
Histogram::sum() const
{
    return sumCells(sums_);
}

std::uint64_t
Histogram::min() const
{
    const std::uint64_t v = min_.load(std::memory_order_relaxed);
    return v == std::numeric_limits<std::uint64_t>::max() ? 0 : v;
}

std::uint64_t
Histogram::max() const
{
    return max_.load(std::memory_order_relaxed);
}

std::vector<std::uint64_t>
Histogram::buckets() const
{
    std::vector<std::uint64_t> out(kBuckets);
    for (std::size_t i = 0; i < kBuckets; ++i)
        out[i] = buckets_[i].load(std::memory_order_relaxed);
    return out;
}

double
estimateQuantile(const std::vector<std::uint64_t> &buckets,
                 std::uint64_t count, std::uint64_t min, std::uint64_t max,
                 double q)
{
    if (count == 0 || buckets.empty())
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // Rank of the target sample, 1-based: the ceil(q * count)-th
    // smallest (at least 1, so q = 0 is the smallest sample).
    const double exact = q * static_cast<double>(count);
    std::uint64_t rank = static_cast<std::uint64_t>(exact);
    if (static_cast<double>(rank) < exact)
        ++rank;
    if (rank == 0)
        rank = 1;
    std::uint64_t before = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        if (buckets[i] == 0)
            continue;
        if (before + buckets[i] < rank) {
            before += buckets[i];
            continue;
        }
        // Bucket i holds values with bit width i: [2^(i-1), 2^i), with
        // bucket 0 holding exactly 0. Interpolate by rank within it.
        if (i == 0)
            return 0.0;
        const double lo = static_cast<double>(std::uint64_t{1} << (i - 1));
        const double hi = lo * 2.0;
        const double frac =
            (static_cast<double>(rank - before) - 0.5) /
            static_cast<double>(buckets[i]);
        double v = lo + frac * (hi - lo);
        // Clamp to the observed range: single-bucket populations become
        // exact at both ends, and no estimate escapes real data.
        v = std::max(v, static_cast<double>(min));
        v = std::min(v, static_cast<double>(max));
        return v;
    }
    return static_cast<double>(max);
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

MetricsRegistry::Kind *
MetricsRegistry::findKind(const std::string &name)
{
    for (auto &entry : kinds_) {
        if (entry.first == name)
            return &entry.second;
    }
    return nullptr;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    MutexLock lock(mutex_);
    if (const Kind *kind = findKind(name)) {
        if (*kind != Kind::Counter)
            panic("metric '%s' already registered with another kind",
                  name.c_str());
        for (const auto &c : counters_) {
            if (c->name() == name)
                return *c;
        }
    }
    kinds_.emplace_back(name, Kind::Counter);
    counters_.push_back(
        std::unique_ptr<Counter>(new Counter(name, &enabled_)));
    return *counters_.back();
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    MutexLock lock(mutex_);
    if (const Kind *kind = findKind(name)) {
        if (*kind != Kind::Gauge)
            panic("metric '%s' already registered with another kind",
                  name.c_str());
        for (const auto &g : gauges_) {
            if (g->name() == name)
                return *g;
        }
    }
    kinds_.emplace_back(name, Kind::Gauge);
    gauges_.push_back(std::unique_ptr<Gauge>(new Gauge(name, &enabled_)));
    return *gauges_.back();
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    MutexLock lock(mutex_);
    if (const Kind *kind = findKind(name)) {
        if (*kind != Kind::Histogram)
            panic("metric '%s' already registered with another kind",
                  name.c_str());
        for (const auto &h : histograms_) {
            if (h->name() == name)
                return *h;
        }
    }
    kinds_.emplace_back(name, Kind::Histogram);
    histograms_.push_back(
        std::unique_ptr<Histogram>(new Histogram(name, &enabled_)));
    return *histograms_.back();
}

void
MetricsRegistry::reset()
{
    MutexLock lock(mutex_);
    for (auto &c : counters_) {
        for (auto &cell : c->cells_)
            cell.value.store(0, std::memory_order_relaxed);
    }
    for (auto &g : gauges_)
        g->bits_.store(0, std::memory_order_relaxed);
    for (auto &h : histograms_) {
        for (std::size_t s = 0; s < kMetricShards; ++s) {
            h->counts_[s].value.store(0, std::memory_order_relaxed);
            h->sums_[s].value.store(0, std::memory_order_relaxed);
        }
        for (auto &bucket : h->buckets_)
            bucket.store(0, std::memory_order_relaxed);
        h->min_.store(std::numeric_limits<std::uint64_t>::max(),
                      std::memory_order_relaxed);
        h->max_.store(0, std::memory_order_relaxed);
    }
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    {
        MutexLock lock(mutex_);
        for (const auto &c : counters_)
            snap.counters.emplace_back(c->name(), c->value());
        for (const auto &g : gauges_)
            snap.gauges.emplace_back(g->name(), g->value());
        for (const auto &h : histograms_) {
            MetricsSnapshot::HistogramEntry entry{
                h->name(), h->count(), h->sum(),
                h->min(),  h->max(),   h->buckets()};
            entry.p50 = estimateQuantile(entry.buckets, entry.count,
                                         entry.min, entry.max, 0.50);
            entry.p90 = estimateQuantile(entry.buckets, entry.count,
                                         entry.min, entry.max, 0.90);
            entry.p99 = estimateQuantile(entry.buckets, entry.count,
                                         entry.min, entry.max, 0.99);
            snap.histograms.push_back(std::move(entry));
        }
    }
    std::sort(snap.counters.begin(), snap.counters.end());
    std::sort(snap.gauges.begin(), snap.gauges.end());
    std::sort(snap.histograms.begin(), snap.histograms.end(),
              [](const auto &a, const auto &b) { return a.name < b.name; });
    return snap;
}

std::string
MetricsRegistry::toJson() const
{
    const MetricsSnapshot snap = snapshot();
    std::string out = "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, value] : snap.counters) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + escapeJson(name) +
               "\": " + std::to_string(value);
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"gauges\": {";
    first = true;
    for (const auto &[name, value] : snap.gauges) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.9g", value);
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + escapeJson(name) + "\": " + buf;
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"histograms\": {";
    first = true;
    for (const auto &h : snap.histograms) {
        out += first ? "\n" : ",\n";
        first = false;
        char quantiles[128];
        std::snprintf(quantiles, sizeof(quantiles),
                      ", \"p50\": %.9g, \"p90\": %.9g, \"p99\": %.9g",
                      h.p50, h.p90, h.p99);
        out += "    \"" + escapeJson(h.name) + "\": {\"count\": " +
               std::to_string(h.count) + ", \"sum\": " +
               std::to_string(h.sum) + ", \"min\": " +
               std::to_string(h.min) + ", \"max\": " +
               std::to_string(h.max) + quantiles +
               ", \"log2_buckets\": [";
        for (std::size_t i = 0; i < h.buckets.size(); ++i) {
            if (i != 0)
                out += ", ";
            out += std::to_string(h.buckets[i]);
        }
        out += "]}";
    }
    out += first ? "}\n" : "\n  }\n";
    out += "}\n";
    return out;
}

bool
MetricsRegistry::writeJson(const std::string &path) const
{
    std::FILE *file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
        warn("metrics: cannot open '%s' for writing", path.c_str());
        return false;
    }
    const std::string json = toJson();
    const bool ok =
        std::fwrite(json.data(), 1, json.size(), file) == json.size();
    std::fclose(file);
    if (!ok)
        warn("metrics: short write to '%s'", path.c_str());
    return ok;
}

} // namespace graphite::obs
