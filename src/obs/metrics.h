/**
 * @file
 * Metrics registry: named counters, gauges and histograms with
 * lock-free per-thread accumulation, merged on scrape.
 *
 * The paper's whole argument is a cycle/byte accounting exercise
 * (aggregation vs update, DRAM traffic saved by fusion/compression —
 * Sections 4 and 7), so the hot paths publish what they move:
 * bytes gathered, FLOPs retired, DMA descriptors issued, simulated
 * cache hits. Handles write into per-thread shards (cache-line padded,
 * relaxed atomics) so instrumented inner loops never share a write
 * line; scrape() sums the shards.
 *
 * A disabled registry is a near-no-op: every mutation starts with one
 * relaxed load of the registry's enabled flag and a predictable branch.
 * Handles returned by counter()/gauge()/histogram() are stable for the
 * registry's lifetime — reset() zeroes values but never invalidates
 * handles, so call sites may cache them in function-local statics.
 *
 * Scraping while instrumented code is running is safe (atomics) but
 * yields a torn-in-time view; quiesce first for exact numbers.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace graphite::obs {

/** Shard count: enough that pool workers rarely collide. */
inline constexpr std::size_t kMetricShards = 64;

namespace detail {

/** Stable per-thread slot in [0, inf); callers take it mod kMetricShards. */
std::size_t threadSlot();

/** One cache line per shard so concurrent adds never false-share. */
struct alignas(64) ShardCell
{
    std::atomic<std::uint64_t> value{0};
};

} // namespace detail

class MetricsRegistry;

/** Monotonic counter (merged across threads on value()). */
class Counter
{
  public:
    void
    add(std::uint64_t n)
    {
        if (!enabled_->load(std::memory_order_relaxed))
            return;
        cells_[detail::threadSlot() % kMetricShards].value.fetch_add(
            n, std::memory_order_relaxed);
    }

    void increment() { add(1); }

    /** Sum over all thread shards. */
    std::uint64_t value() const;

    const std::string &name() const { return name_; }

  private:
    friend class MetricsRegistry;
    Counter(std::string name, const std::atomic<bool> *enabled)
        : name_(std::move(name)), enabled_(enabled)
    {
    }

    std::string name_;
    const std::atomic<bool> *enabled_;
    detail::ShardCell cells_[kMetricShards];
};

/** Last-writer-wins scalar (doubles stored as bit patterns). */
class Gauge
{
  public:
    void
    set(double v)
    {
        if (!enabled_->load(std::memory_order_relaxed))
            return;
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        __builtin_memcpy(&bits, &v, sizeof(bits));
        bits_.store(bits, std::memory_order_relaxed);
    }

    double value() const;

    const std::string &name() const { return name_; }

  private:
    friend class MetricsRegistry;
    Gauge(std::string name, const std::atomic<bool> *enabled)
        : name_(std::move(name)), enabled_(enabled)
    {
    }

    std::string name_;
    const std::atomic<bool> *enabled_;
    std::atomic<std::uint64_t> bits_{0};
};

/**
 * Log2-bucketed histogram of unsigned samples: bucket i counts values
 * whose bit width is i (bucket 0 = value 0). Count/sum accumulate in
 * per-thread shards; the bucket array is shared (adjacent samples of
 * one phase land in the same bucket, which stays cheap because the
 * instrumented paths observe per *block*, not per element).
 */
class Histogram
{
  public:
    /** Bucket count: bit widths 0..64. */
    static constexpr std::size_t kBuckets = 65;

    void observe(std::uint64_t v);

    std::uint64_t count() const;
    std::uint64_t sum() const;
    std::uint64_t min() const;
    std::uint64_t max() const;
    /** Snapshot of the bucket counts (kBuckets entries). */
    std::vector<std::uint64_t> buckets() const;

    const std::string &name() const { return name_; }

  private:
    friend class MetricsRegistry;
    Histogram(std::string name, const std::atomic<bool> *enabled);

    std::string name_;
    const std::atomic<bool> *enabled_;
    detail::ShardCell counts_[kMetricShards];
    detail::ShardCell sums_[kMetricShards];
    std::atomic<std::uint64_t> min_;
    std::atomic<std::uint64_t> max_;
    std::atomic<std::uint64_t> buckets_[kBuckets];
};

/** Point-in-time merged view of a registry (for tests and emitters). */
struct MetricsSnapshot
{
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    struct HistogramEntry
    {
        std::string name;
        std::uint64_t count;
        std::uint64_t sum;
        std::uint64_t min;
        std::uint64_t max;
        std::vector<std::uint64_t> buckets;
        /**
         * Quantile estimates from the log2 buckets (see
         * estimateQuantile) so tail latency is reportable straight off
         * a snapshot, without external tooling. 0 when count == 0.
         * @{
         */
        double p50 = 0.0;
        double p90 = 0.0;
        double p99 = 0.0;
        /** @} */
    };
    std::vector<HistogramEntry> histograms;
};

/**
 * Estimate the @p q quantile (q in [0, 1]) of a log2-bucketed sample
 * set by locating the bucket holding the ceil(q * count)-th smallest
 * sample and interpolating linearly across the bucket's value range
 * [2^(i-1), 2^i) (bucket 0 holds exactly the value 0). The estimate is
 * clamped to the observed [min, max], which makes single-bucket
 * populations exact at both ends. Returns 0 for an empty histogram.
 *
 * The relative error is bounded by the bucket width — a factor of 2 —
 * which is the right tool for tail *latency* accounting, where p99
 * regressions of interest are multiples, not percents.
 */
double estimateQuantile(const std::vector<std::uint64_t> &buckets,
                        std::uint64_t count, std::uint64_t min,
                        std::uint64_t max, double q);

/**
 * Named-metric registry. Metric creation takes a mutex (cold:
 * call sites cache handles); mutation is lock-free on the handles.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** Process-wide registry the built-in instrumentation writes to. */
    static MetricsRegistry &global();

    void
    setEnabled(bool enabled)
    {
        enabled_.store(enabled, std::memory_order_relaxed);
    }

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Find-or-create. Registering the same name under a different
     * metric kind is a panic (one namespace for all three kinds).
     * @{
     */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);
    /** @} */

    /** Zero every metric. Handles stay valid. */
    void reset();

    /** Merged values, sorted by name within each kind. */
    MetricsSnapshot snapshot() const;

    /** Snapshot serialised as a JSON object (counters/gauges/histograms). */
    std::string toJson() const;

    /** toJson() to @p path; false (with a log line) on I/O failure. */
    bool writeJson(const std::string &path) const;

  private:
    enum class Kind { Counter, Gauge, Histogram };

    /** Registered name → kind, guarding cross-kind collisions. */
    Kind *findKind(const std::string &name) GRAPHITE_REQUIRES(mutex_);

    std::atomic<bool> enabled_{false};
    /**
     * Guards registration and scrape; handle mutation stays lock-free
     * (the shard cells are atomics the handles own).
     */
    mutable Mutex mutex_;
    std::vector<std::pair<std::string, Kind>> kinds_
        GRAPHITE_GUARDED_BY(mutex_);
    std::vector<std::unique_ptr<Counter>> counters_
        GRAPHITE_GUARDED_BY(mutex_);
    std::vector<std::unique_ptr<Gauge>> gauges_ GRAPHITE_GUARDED_BY(mutex_);
    std::vector<std::unique_ptr<Histogram>> histograms_
        GRAPHITE_GUARDED_BY(mutex_);
};

} // namespace graphite::obs
