#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>

#include "common/logging.h"

namespace graphite::obs {

/**
 * One thread's bounded event ring. Written only by the owning thread;
 * read by collect()/summarize() at quiescent points.
 */
struct TraceRecorder::ThreadLog
{
    explicit ThreadLog(std::uint32_t id, std::size_t capacity)
        : tid(id), cap(capacity)
    {
        ring.reserve(std::min<std::size_t>(capacity, 1024));
    }

    std::uint32_t tid;
    std::size_t cap;
    std::vector<TraceEvent> ring;
    /** Overwrite cursor once the ring is full. */
    std::size_t wrap = 0;
    /** Events ever recorded (dropped = total - ring.size()). */
    std::uint64_t total = 0;
    /** Open-span nesting depth of the owning thread. */
    std::uint32_t depth = 0;

    void
    push(const TraceEvent &event)
    {
        ++total;
        if (ring.size() < cap) {
            ring.push_back(event);
            return;
        }
        ring[wrap] = event;
        wrap = (wrap + 1) % cap;
    }
};

TraceRecorder &
TraceRecorder::global()
{
    static TraceRecorder recorder;
    return recorder;
}

TraceNs
TraceRecorder::now()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return static_cast<TraceNs>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch)
            .count());
}

void
TraceRecorder::setCapacityPerThread(std::size_t capacity)
{
    MutexLock lock(mutex_);
    capacity_ = std::max<std::size_t>(1, capacity);
}

TraceRecorder::ThreadLog &
TraceRecorder::threadLog()
{
    thread_local ThreadLog *log = nullptr;
    if (log == nullptr) {
        MutexLock lock(mutex_);
        logs_.push_back(std::make_unique<ThreadLog>(
            static_cast<std::uint32_t>(logs_.size()), capacity_));
        log = logs_.back().get();
    }
    return *log;
}

void
TraceRecorder::spanOpened()
{
    ++threadLog().depth;
}

void
TraceRecorder::record(const char *name, TraceNs start, TraceNs end)
{
    ThreadLog &log = threadLog();
    // The span closing now was the deepest open one on this thread.
    if (log.depth > 0)
        --log.depth;
    TraceEvent event;
    event.name = name;
    event.start = start;
    event.duration = end >= start ? end - start : 0;
    event.tid = log.tid;
    event.depth = log.depth;
    log.push(event);
}

std::vector<TraceEvent>
TraceRecorder::collect() const
{
    std::vector<TraceEvent> events;
    {
        MutexLock lock(mutex_);
        for (const auto &log : logs_)
            events.insert(events.end(), log->ring.begin(),
                          log->ring.end());
    }
    std::sort(events.begin(), events.end(),
              [](const TraceEvent &a, const TraceEvent &b) {
                  return a.start < b.start;
              });
    return events;
}

std::uint64_t
TraceRecorder::droppedEvents() const
{
    MutexLock lock(mutex_);
    std::uint64_t dropped = 0;
    for (const auto &log : logs_)
        dropped += log->total - log->ring.size();
    return dropped;
}

std::vector<PhaseSummary>
TraceRecorder::summarize() const
{
    std::map<std::string, PhaseSummary> byName;
    for (const TraceEvent &event : collect()) {
        PhaseSummary &phase = byName[event.name];
        phase.name = event.name;
        ++phase.count;
        phase.seconds += static_cast<double>(event.duration) * 1e-9;
    }
    std::vector<PhaseSummary> out;
    out.reserve(byName.size());
    for (auto &[name, phase] : byName)
        out.push_back(std::move(phase));
    return out;
}

void
TraceRecorder::reset()
{
    MutexLock lock(mutex_);
    for (auto &log : logs_) {
        log->ring.clear();
        log->wrap = 0;
        log->total = 0;
    }
}

bool
TraceRecorder::writeChromeJson(const std::string &path) const
{
    std::FILE *file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
        warn("trace: cannot open '%s' for writing", path.c_str());
        return false;
    }
    std::fprintf(file, "{\n  \"displayTimeUnit\": \"ms\",\n"
                       "  \"traceEvents\": [");
    bool first = true;
    for (const TraceEvent &event : collect()) {
        std::fprintf(
            file,
            "%s\n    {\"name\": \"%s\", \"cat\": \"graphite\", "
            "\"ph\": \"X\", \"pid\": 1, \"tid\": %u, \"ts\": %.3f, "
            "\"dur\": %.3f, \"args\": {\"depth\": %u}}",
            first ? "" : ",", event.name, event.tid,
            static_cast<double>(event.start) * 1e-3,
            static_cast<double>(event.duration) * 1e-3, event.depth);
        first = false;
    }
    std::fprintf(file, "\n  ]\n}\n");
    const bool ok = std::ferror(file) == 0;
    std::fclose(file);
    if (!ok)
        warn("trace: short write to '%s'", path.c_str());
    return ok;
}

} // namespace graphite::obs
