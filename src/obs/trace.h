/**
 * @file
 * RAII trace spans recorded into per-thread ring buffers and emitted as
 * chrome://tracing JSON plus a flat per-phase summary.
 *
 * Spans are named by string literals (the recorder stores the pointer,
 * not a copy), timestamped off one process-wide steady-clock epoch, and
 * written lock-free: each thread owns a bounded ring that only it
 * writes; the recorder only walks the rings from collect()/write paths,
 * which must run at a quiescent point (after the pool has joined —
 * every bench scrapes after its parallel region, and the fork-join
 * pool's completion handshake provides the happens-before edge).
 *
 * Disabled tracing costs one relaxed atomic load and a branch per span
 * — the same near-no-op contract as the metrics registry, so the hooks
 * can live permanently in the aggregation/fused/DMA hot paths.
 *
 * Use the macro form at call sites:
 *
 *     void layerForward(...) {
 *         GRAPHITE_TRACE_SPAN("layer.forward");
 *         ...
 *     }
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace graphite::obs {

/** Nanoseconds since the process trace epoch (steady clock). */
using TraceNs = std::uint64_t;

/** One completed span. */
struct TraceEvent
{
    const char *name = nullptr;
    TraceNs start = 0;
    TraceNs duration = 0;
    std::uint32_t tid = 0;
    /** Nesting depth at open (0 = top level on that thread). */
    std::uint32_t depth = 0;
};

/** Totals of all spans sharing one name (the flat phase summary). */
struct PhaseSummary
{
    std::string name;
    std::uint64_t count = 0;
    double seconds = 0.0;
};

/**
 * Process-wide span recorder. Per-thread rings are created on first
 * use and survive thread exit; when a ring fills, the oldest events
 * are overwritten (droppedEvents() reports how many).
 */
class TraceRecorder
{
  public:
    static TraceRecorder &global();

    TraceRecorder(const TraceRecorder &) = delete;
    TraceRecorder &operator=(const TraceRecorder &) = delete;

    void
    setEnabled(bool enabled)
    {
        enabled_.store(enabled, std::memory_order_relaxed);
    }

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Per-thread ring capacity (events). Applies to rings created
     * after the call; set before enabling. Default 1 << 15.
     */
    void setCapacityPerThread(std::size_t capacity);

    /** TraceSpan open notification (tracks per-thread nesting depth). */
    void spanOpened();

    /** Append one completed span to the calling thread's ring. */
    void record(const char *name, TraceNs start, TraceNs end);

    /** Nanoseconds since the trace epoch (first call wins the epoch). */
    static TraceNs now();

    /**
     * Copy out every buffered event, sorted by start time. Quiescent
     * points only (see file comment).
     */
    std::vector<TraceEvent> collect() const;

    /** Events overwritten by ring wrap-around since the last reset. */
    std::uint64_t droppedEvents() const;

    /** Per-name totals of the buffered events, sorted by name. */
    std::vector<PhaseSummary> summarize() const;

    /** Drop all buffered events (rings stay allocated). */
    void reset();

    /**
     * Emit the buffered events as chrome://tracing "traceEvents" JSON
     * (load via chrome://tracing or https://ui.perfetto.dev). False on
     * I/O failure.
     */
    bool writeChromeJson(const std::string &path) const;

  private:
    struct ThreadLog;

    TraceRecorder() = default;

    ThreadLog &threadLog();

    std::atomic<bool> enabled_{false};
    /**
     * Guards the ring registry only. Each ThreadLog's contents are
     * owned by one thread; collect()/summarize() read them at
     * quiescent points (see file comment).
     */
    mutable Mutex mutex_;
    std::vector<std::unique_ptr<ThreadLog>> logs_
        GRAPHITE_GUARDED_BY(mutex_);
    std::size_t capacity_ GRAPHITE_GUARDED_BY(mutex_) =
        std::size_t{1} << 15;
};

/**
 * RAII span: opens on construction (when tracing is enabled at that
 * moment), records on destruction. Prefer GRAPHITE_TRACE_SPAN.
 */
class TraceSpan
{
  public:
    explicit TraceSpan(const char *name)
    {
        if (!TraceRecorder::global().enabled()) {
            name_ = nullptr;
            return;
        }
        name_ = name;
        TraceRecorder::global().spanOpened();
        start_ = TraceRecorder::now();
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    ~TraceSpan()
    {
        if (name_ != nullptr) {
            TraceRecorder::global().record(name_, start_,
                                           TraceRecorder::now());
        }
    }

  private:
    const char *name_;
    TraceNs start_ = 0;
};

} // namespace graphite::obs

#define GRAPHITE_TRACE_CONCAT2(a, b) a##b
#define GRAPHITE_TRACE_CONCAT(a, b) GRAPHITE_TRACE_CONCAT2(a, b)

/** Scoped trace span named by a string literal. */
#define GRAPHITE_TRACE_SPAN(name)                                           \
    ::graphite::obs::TraceSpan GRAPHITE_TRACE_CONCAT(graphiteTraceSpan_,    \
                                                     __LINE__)              \
    {                                                                       \
        name                                                                \
    }
