/**
 * @file
 * Functional model of the enhanced DMA engine (paper Section 5.2,
 * Algorithm 4): executes aggregation descriptors against host memory,
 * exactly reproducing the arithmetic the hardware unit would perform —
 * gather N fixed-size blocks via an index array, apply the optional
 * binary operator with a factor array (the ψ function), reduce
 * element-wise into an output buffer, and flush the buffer to OUT.
 *
 * Timing is modelled separately in sim/dma_runner.*; this class is the
 * architectural (functional) reference the tests pin against the
 * software aggregation kernels.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "dma/descriptor.h"

namespace graphite::dma {

/** Engine buffer sizing (defaults per paper Section 6). */
struct EngineConfig
{
    /** Output buffer capacity in bytes (bounds E per descriptor). */
    std::uint32_t outputBufferBytes = 2048;
    /** Descriptor queue capacity. */
    std::uint32_t descriptorQueue = 32;
};

/** Counters of one functional engine. */
struct EngineCounters
{
    std::uint64_t descriptorsCompleted = 0;
    std::uint64_t descriptorsFaulted = 0;
    std::uint64_t blocksGathered = 0;
    std::uint64_t elementsReduced = 0;
};

/** One per-core DMA engine (functional). */
class DmaEngine
{
  public:
    explicit DmaEngine(EngineConfig config = {});

    /**
     * Enqueue a descriptor (the ENQCMD-style user-space submission).
     * @return false when the descriptor queue is full — the caller must
     * process the queue first, like real descriptor-ring software.
     */
    bool enqueue(const AggregationDescriptor &desc);

    /** Descriptors currently queued. */
    std::size_t pending() const { return queue_.size(); }

    /**
     * Execute every queued descriptor in order. Faults (validation
     * failures, E exceeding the output buffer) write Fault to the
     * descriptor's STATUS record and abort that descriptor only.
     */
    void processAll();

    /** Execute one descriptor immediately (Algorithm 4). */
    CompletionStatus execute(const AggregationDescriptor &desc);

    const EngineCounters &counters() const { return counters_; }
    const EngineConfig &config() const { return config_; }

  private:
    EngineConfig config_;
    std::deque<AggregationDescriptor> queue_;
    /** The output buffer B of Algorithm 4. */
    std::vector<float> buffer_;
    EngineCounters counters_;
};

} // namespace graphite::dma
