#include "dma/dma_engine.h"

#include <algorithm>
#include <cstring>

#include "common/assert.h"

namespace graphite::dma {

DmaEngine::DmaEngine(EngineConfig config) : config_(config)
{
    buffer_.resize(config_.outputBufferBytes / sizeof(float));
}

bool
DmaEngine::enqueue(const AggregationDescriptor &desc)
{
    if (queue_.size() >= config_.descriptorQueue)
        return false;
    queue_.push_back(desc);
    return true;
}

void
DmaEngine::processAll()
{
    while (!queue_.empty()) {
        execute(queue_.front());
        queue_.pop_front();
    }
}

namespace {

float
applyBinOp(BinOp op, float value, float factor)
{
    switch (op) {
      case BinOp::None:     return value;
      case BinOp::Multiply: return value * factor;
      case BinOp::Add:      return value + factor;
    }
    return value;
}

float
applyRedOp(RedOp op, float acc, float value)
{
    switch (op) {
      case RedOp::Sum: return acc + value;
      case RedOp::Max: return std::max(acc, value);
      case RedOp::Min: return std::min(acc, value);
    }
    return acc;
}

float
redOpIdentity(RedOp op)
{
    switch (op) {
      case RedOp::Sum: return 0.0f;
      case RedOp::Max: return -__builtin_inff();
      case RedOp::Min: return __builtin_inff();
    }
    return 0.0f;
}

std::uint64_t
readIndex(const AggregationDescriptor &desc, std::uint32_t i)
{
    if (desc.idxType == IdxType::U32) {
        const auto *idx =
            reinterpret_cast<const std::uint32_t *>(desc.indexAddr);
        return idx[i];
    }
    const auto *idx =
        reinterpret_cast<const std::uint64_t *>(desc.indexAddr);
    return idx[i];
}

void
writeStatus(const AggregationDescriptor &desc, CompletionStatus status)
{
    if (desc.statusAddr != 0) {
        *reinterpret_cast<std::uint8_t *>(desc.statusAddr) =
            static_cast<std::uint8_t>(status);
    }
}

} // namespace

CompletionStatus
DmaEngine::execute(const AggregationDescriptor &desc)
{
    if (validateDescriptor(desc) != nullptr ||
        desc.elementsPerBlock > buffer_.size()) {
        // The software must split aggregations whose feature vectors
        // exceed the output buffer (paper Section 5.2).
        ++counters_.descriptorsFaulted;
        writeStatus(desc, CompletionStatus::Fault);
        return CompletionStatus::Fault;
    }

    const std::uint32_t e = desc.elementsPerBlock;
    // Algorithm 4 line 1: clear the buffer to the reduction identity.
    std::fill(buffer_.begin(), buffer_.begin() + e,
              redOpIdentity(desc.redOp));

    const auto *factors =
        reinterpret_cast<const float *>(desc.factorAddr);
    for (std::uint32_t i = 0; i < desc.numBlocks; ++i) {
        const std::uint64_t blockIndex = readIndex(desc, i);
        const auto *block = reinterpret_cast<const float *>(
            desc.inputBase + blockIndex * desc.paddedBlockBytes);
        const float factor =
            desc.binOp == BinOp::None ? 0.0f : factors[i];
        // Algorithm 4 lines 3-6: ψ then reduce, element-wise.
        for (std::uint32_t j = 0; j < e; ++j) {
            const float k = applyBinOp(desc.binOp, block[j], factor);
            buffer_[j] = applyRedOp(desc.redOp, buffer_[j], k);
        }
        ++counters_.blocksGathered;
        counters_.elementsReduced += e;
    }

    // Lines 8-9: flush the buffer to OUT.
    auto *out = reinterpret_cast<float *>(desc.outputAddr);
    std::memcpy(out, buffer_.data(), e * sizeof(float));
    ++counters_.descriptorsCompleted;
    writeStatus(desc, CompletionStatus::Success);
    return CompletionStatus::Success;
}

} // namespace graphite::dma
