/**
 * @file
 * Functional implementation of Algorithm 5: the pipelined fused
 * DMA-aggregation + core update. Each thread drives its own DMA engine
 * with ping-pong batches of B descriptors: while batch Q aggregates on
 * the engine, the core updates the vertices of the previously completed
 * batch Q'. Feature vectors wider than the engine's output buffer are
 * split across multiple descriptors (Section 5.2).
 *
 * The self term of N(v) ∪ {v} is realised host-side: the runner stages
 * per-descriptor index/factor arrays of [v, neighbors...] with
 * [selfFactor, edgeFactors...], matching the paper's contract that the
 * host software prepares the ψ factors.
 */

#pragma once

#include <span>

#include "dma/dma_engine.h"
#include "kernels/aggregation.h"
#include "kernels/fused_layer.h"
#include "tensor/dense_matrix.h"

namespace graphite::dma {

/** Knobs of the pipelined runner (Algorithm 5 constants). */
struct PipelineConfig
{
    /** Vertices per descriptor batch (B). */
    std::size_t blockSize = 16;
    /** Blocks per dynamically scheduled task (T). */
    std::size_t blocksPerTask = 4;
    /** Engine sizing. */
    EngineConfig engine;
};

/** Counters aggregated over all threads' engines after a run. */
struct PipelineCounters
{
    std::uint64_t descriptors = 0;
    std::uint64_t splitDescriptors = 0;
    std::uint64_t blocksGathered = 0;
};

/**
 * Fused DMA-aggregation + update over the whole graph (training shape:
 * a^k is materialised in @p aggOut for back-propagation).
 *
 * @return counters from the per-thread engines.
 */
PipelineCounters pipelinedDmaLayer(const CsrGraph &graph,
                                   const DenseMatrix &in,
                                   const AggregationSpec &spec,
                                   const UpdateOp &update,
                                   DenseMatrix &aggOut, DenseMatrix &out,
                                   std::span<const VertexId> order = {},
                                   const PipelineConfig &config = {});

/**
 * DMA aggregation only (no update): out[v] = aggregation of v. Used by
 * the aggregation-only experiments (Table 5) and by differential tests.
 */
PipelineCounters dmaAggregate(const CsrGraph &graph, const DenseMatrix &in,
                              const AggregationSpec &spec, DenseMatrix &out,
                              std::span<const VertexId> order = {},
                              const PipelineConfig &config = {});

} // namespace graphite::dma
