#include "dma/pipelined_runner.h"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "tensor/gemm.h"

namespace graphite::dma {

namespace {

/** Per-thread state: one engine plus the staging arrays it gathers. */
struct ThreadEngine
{
    DmaEngine engine;
    /**
     * Staged per-vertex [v, neighbors...] / [selfFactor, edgeFactors...]
     * arrays. Descriptors hold raw pointers into these until the engine
     * drains, so entries are pooled and only recycled after processAll.
     */
    std::vector<std::vector<std::uint32_t>> indexPool;
    std::vector<std::vector<float>> factorPool;
    std::size_t poolCursor = 0;
    std::vector<std::uint8_t> status;

    explicit ThreadEngine(const EngineConfig &config) : engine(config) {}

    /** Claim one staging slot (reusing drained ones). */
    std::size_t
    claimSlot()
    {
        if (poolCursor == indexPool.size()) {
            indexPool.emplace_back();
            factorPool.emplace_back();
        }
        return poolCursor++;
    }

    /** All queued descriptors executed: staging slots are free again. */
    void
    drain()
    {
        engine.processAll();
        poolCursor = 0;
    }
};

/**
 * Build and execute the (possibly split) descriptors aggregating vertex
 * @p v into aggOut.row(v).
 */
void
issueVertexAggregation(ThreadEngine &te, const CsrGraph &graph,
                       const DenseMatrix &in, const AggregationSpec &spec,
                       VertexId v, DenseMatrix &aggOut,
                       PipelineCounters &counters)
{
    const auto neighbors = graph.neighbors(v);
    const std::size_t n = neighbors.size() + 1;

    const std::size_t slot = te.claimSlot();
    std::vector<std::uint32_t> &indices = te.indexPool[slot];
    std::vector<float> &factors = te.factorPool[slot];
    indices.clear();
    factors.clear();
    indices.reserve(n);
    factors.reserve(n);
    indices.push_back(v);
    factors.push_back(spec.selfFactor(v));
    for (EdgeId e = graph.rowBegin(v); e < graph.rowEnd(v); ++e) {
        // graphite-lint: allow(alloc) pooled staging slots are
        // reserve()d above and recycled across drains; grow-only.
        indices.push_back(graph.colIdx()[e]);
        // graphite-lint: allow(alloc) same pooled slot as above.
        factors.push_back(spec.edgeFactor(e));
    }
    te.status.assign(1, 0);

    const std::size_t f = in.cols();
    const std::size_t bufferFloats =
        te.engine.config().outputBufferBytes / sizeof(float);

    // Split the aggregation when the feature vector exceeds the output
    // buffer (Section 5.2's 400-element example).
    std::size_t issued = 0;
    for (std::size_t offset = 0; offset < f; offset += bufferFloats) {
        const std::size_t chunk = std::min(bufferFloats, f - offset);
        AggregationDescriptor desc;
        desc.redOp = spec.reduce == ReduceOp::Sum ? RedOp::Sum
                                                  : RedOp::Max;
        desc.binOp = BinOp::Multiply;
        desc.idxType = IdxType::U32;
        desc.valType = ValType::F32;
        desc.elementsPerBlock = static_cast<std::uint32_t>(chunk);
        desc.paddedBlockBytes =
            static_cast<std::uint32_t>(in.rowBytes());
        desc.numBlocks = static_cast<std::uint32_t>(n);
        desc.indexAddr =
            reinterpret_cast<std::uint64_t>(indices.data());
        // Shift the input base by the element offset: every gathered
        // block's window moves together because blocks share S.
        desc.inputBase = reinterpret_cast<std::uint64_t>(in.data()) +
                         offset * sizeof(float);
        desc.outputAddr =
            reinterpret_cast<std::uint64_t>(aggOut.row(v) + offset);
        desc.factorAddr =
            reinterpret_cast<std::uint64_t>(factors.data());
        desc.statusAddr =
            reinterpret_cast<std::uint64_t>(te.status.data());
        if (!te.engine.enqueue(desc)) {
            // Queue full: execute the backlog. The staged arrays of the
            // *current* descriptor must survive the drain, so only the
            // engine queue is flushed here (slots recycle at the block
            // boundary in the caller).
            te.engine.processAll();
            const bool ok = te.engine.enqueue(desc);
            // graphite-lint: allow(assert) engine-model invariant on a
            // cold recovery branch, not a per-element bounds check.
            GRAPHITE_ASSERT(ok, "descriptor enqueue failed after drain");
        }
        ++issued;
    }
    counters.descriptors += issued;
    counters.splitDescriptors += issued > 1 ? issued : 0;
    counters.blocksGathered += n * issued;
}

void
updateVertex(const UpdateOp &update, const GemmPlan &weightPlan,
             const DenseMatrix &aggOut, VertexId v, DenseMatrix &out)
{
    gemmBlockSerial(aggOut.row(v), 1, aggOut.rowStride(), weightPlan,
                    out.row(v), out.rowStride(), aggOut.cols());
    Feature *row = out.row(v);
    if (!update.bias.empty()) {
        #pragma omp simd
        for (std::size_t c = 0; c < out.cols(); ++c)
            row[c] += update.bias[c];
    }
    if (update.relu) {
        #pragma omp simd
        for (std::size_t c = 0; c < out.cols(); ++c)
            row[c] = std::max(row[c], 0.0f);
    }
}

PipelineCounters
runPipeline(const CsrGraph &graph, const DenseMatrix &in,
            const AggregationSpec &spec, const UpdateOp *update,
            DenseMatrix &aggOut, DenseMatrix *out,
            std::span<const VertexId> order, const PipelineConfig &config)
{
    const VertexId numVertices = graph.numVertices();
    GRAPHITE_ASSERT(in.rows() == numVertices, "row mismatch");
    GRAPHITE_ASSERT(aggOut.rows() == numVertices &&
                        aggOut.cols() == in.cols(),
                    "aggOut shape mismatch");
    GRAPHITE_ASSERT(order.empty() || order.size() == numVertices,
                    "order size mismatch");
    if (const char *error = validateSpec(spec, graph))
        panic("DMA pipeline: %s", error);

    const std::size_t numThreads = ThreadPool::global().numThreads();
    std::vector<ThreadEngine> engines;
    engines.reserve(numThreads);
    for (std::size_t t = 0; t < numThreads; ++t)
        // graphite-lint: allow(alloc) per-invocation engine setup,
        // reserve()d above and outside the pipelined block loop.
        engines.emplace_back(config.engine);
    std::vector<PipelineCounters> counters(numThreads);

    // Per-vertex updates all multiply the same W: pack it once for the
    // whole pipeline run (Algorithm 5's update side), unless the caller
    // already holds a cached plan.
    GemmPlan localPlan;
    const GemmPlan *weightPlan = nullptr;
    if (update) {
        weightPlan = update->packedWeights;
        if (weightPlan == nullptr) {
            localPlan.pack(GemmMode::NN, *update->weights);
            weightPlan = &localPlan;
        }
        if (const char *error = weightPlan->validateFor(
                update->weights->rows(), update->weights->cols()))
            panic("DMA pipeline weight plan: %s", error);
    }

    const std::size_t blockSize =
        std::max<std::size_t>(1, config.blockSize);
    const std::size_t task =
        blockSize * std::max<std::size_t>(1, config.blocksPerTask);

    // Per-thread ping-pong state: the previously issued block whose
    // update is still owed (Algorithm 5's Q'/R bookkeeping). Current
    // and pending buffers swap instead of reallocating so the block
    // loop stays allocation-free after the first iteration.
    std::vector<std::vector<VertexId>> pendingBlock(numThreads);
    std::vector<std::vector<VertexId>> currentBlock(numThreads);

    GRAPHITE_TRACE_SPAN("dma.pipeline");
    parallelFor(0, numVertices, task,
                [&](std::size_t begin, std::size_t end, std::size_t tid) {
        GRAPHITE_TRACE_SPAN("dma.block");
        ThreadEngine &te = engines[tid];
        for (std::size_t j = begin; j < end; j += blockSize) {
            const std::size_t blockEnd = std::min(j + blockSize, end);
            // Build and issue this block's descriptors (lines 5-7).
            std::vector<VertexId> &block = currentBlock[tid];
            block.clear();
            // graphite-lint: allow(alloc) grow-only reserve on a
            // persistent per-thread buffer; no-op after warm-up.
            block.reserve(blockEnd - j);
            for (std::size_t i = j; i < blockEnd; ++i) {
                const VertexId v = order.empty()
                    ? static_cast<VertexId>(i) : order[i];
                // graphite-lint: allow(alloc) grow-only after the
                // reserve above; buffer persists across blocks.
                block.push_back(v);
                issueVertexAggregation(te, graph, in, spec, v, aggOut,
                                       counters[tid]);
            }
            // Wait for the previous batch (lines 8-10: the functional
            // engine completes on drain) and update it (11-13).
            te.drain();
            if (update && out) {
                for (VertexId v : pendingBlock[tid])
                    updateVertex(*update, *weightPlan, aggOut, v, *out);
            }
            std::swap(pendingBlock[tid], block);
        }
    });

    // Trailing updates (Algorithm 5 lines 15-20).
    for (std::size_t t = 0; t < numThreads; ++t) {
        engines[t].drain();
        if (update && out) {
            for (VertexId v : pendingBlock[t])
                updateVertex(*update, *weightPlan, aggOut, v, *out);
        }
    }

    PipelineCounters total;
    for (const auto &c : counters) {
        total.descriptors += c.descriptors;
        total.splitDescriptors += c.splitDescriptors;
        total.blocksGathered += c.blocksGathered;
    }

    // Mirror the run's totals into the metrics registry so DMA traffic
    // shows up next to the kernel counters on scrape.
    obs::MetricsRegistry &metrics = obs::MetricsRegistry::global();
    if (metrics.enabled()) {
        static obs::Counter &descriptors =
            metrics.counter("dma.descriptors");
        static obs::Counter &splitDescriptors =
            metrics.counter("dma.split_descriptors");
        static obs::Counter &blocksGathered =
            metrics.counter("dma.blocks_gathered");
        static obs::Counter &bytesGathered =
            metrics.counter("dma.bytes_gathered");
        descriptors.add(total.descriptors);
        splitDescriptors.add(total.splitDescriptors);
        blocksGathered.add(total.blocksGathered);
        bytesGathered.add(total.blocksGathered * in.rowBytes());
    }
    return total;
}

} // namespace

PipelineCounters
pipelinedDmaLayer(const CsrGraph &graph, const DenseMatrix &in,
                  const AggregationSpec &spec, const UpdateOp &update,
                  DenseMatrix &aggOut, DenseMatrix &out,
                  std::span<const VertexId> order,
                  const PipelineConfig &config)
{
    GRAPHITE_ASSERT(update.weights != nullptr, "update weights required");
    return runPipeline(graph, in, spec, &update, aggOut, &out, order,
                       config);
}

PipelineCounters
dmaAggregate(const CsrGraph &graph, const DenseMatrix &in,
             const AggregationSpec &spec, DenseMatrix &out,
             std::span<const VertexId> order, const PipelineConfig &config)
{
    return runPipeline(graph, in, spec, nullptr, out, nullptr, order,
                       config);
}

} // namespace graphite::dma
