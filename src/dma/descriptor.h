/**
 * @file
 * The 64-byte aggregation descriptor (paper Figure 8).
 *
 * A single descriptor encodes an entire per-vertex aggregation — unlike
 * conventional scatter-gather DMA descriptor chains, where each
 * descriptor moves one contiguous block (Section 2.3/5.1). All data
 * blocks gathered by one descriptor have the same fixed size, which is
 * exactly the GNN feature-row shape.
 */

#pragma once

#include <cstdint>

namespace graphite::dma {

/** Reduction operator (red_op field). */
enum class RedOp : std::uint8_t {
    Sum = 0,
    Max = 1,
    Min = 2,
};

/** Optional binary operator applied with the factor array (bin_op). */
enum class BinOp : std::uint8_t {
    None = 0,
    Multiply = 1,
    Add = 2,
};

/** Index element type (idx_t field). */
enum class IdxType : std::uint8_t {
    U32 = 0,
    U64 = 1,
};

/** Value element type (val_t field). */
enum class ValType : std::uint8_t {
    F32 = 0,
};

/**
 * Aggregation descriptor, 64 bytes, laid out per Figure 8:
 *
 *   bytes  0-7 : red_op, bin_op, idx_t, val_t, E (# values per block)
 *   bytes  8-15: S (padded block size in bytes), N (# input blocks)
 *   bytes 16-23: IDX   — index array start address
 *   bytes 24-31: IN    — input base address
 *   bytes 32-39: OUT   — output start address
 *   bytes 40-47: FACTOR— factor array start address (optional)
 *   bytes 48-55: STATUS— completion record start address
 *   bytes 56-63: reserved
 */
struct AggregationDescriptor
{
    RedOp redOp = RedOp::Sum;
    BinOp binOp = BinOp::None;
    IdxType idxType = IdxType::U32;
    ValType valType = ValType::F32;
    /** Number of values in each gathered data block (E). */
    std::uint32_t elementsPerBlock = 0;

    /** Padded size of each data block in bytes (S). */
    std::uint32_t paddedBlockBytes = 0;
    /** Number of input data blocks gathered (N). */
    std::uint32_t numBlocks = 0;

    std::uint64_t indexAddr = 0;   ///< IDX
    std::uint64_t inputBase = 0;   ///< IN
    std::uint64_t outputAddr = 0;  ///< OUT
    std::uint64_t factorAddr = 0;  ///< FACTOR (0 = no factors)
    std::uint64_t statusAddr = 0;  ///< STATUS (0 = no record)
    std::uint64_t reserved = 0;
};

static_assert(sizeof(AggregationDescriptor) == 64,
              "descriptor must match the 64-byte hardware layout");

/** Per-block completion status written to the STATUS record. */
enum class CompletionStatus : std::uint8_t {
    Pending = 0,
    Success = 1,
    Fault = 2,
};

/**
 * Validate structural invariants a hardware engine would check before
 * accepting the descriptor (non-zero sizes, E fits in S, supported
 * type combinations). @return nullptr if valid, else a message.
 */
const char *validateDescriptor(const AggregationDescriptor &desc);

} // namespace graphite::dma
