#include "dma/descriptor.h"

namespace graphite::dma {

namespace {

bool
aligned(std::uint64_t addr, std::uint64_t alignment)
{
    return addr % alignment == 0;
}

} // namespace

const char *
validateDescriptor(const AggregationDescriptor &desc)
{
    // Enum fields arrive as raw bytes in hardware; range-check them
    // before switching on them (Figure 8 field encodings).
    if (static_cast<std::uint8_t>(desc.redOp) >
        static_cast<std::uint8_t>(RedOp::Min))
        return "red_op encoding out of range";
    if (static_cast<std::uint8_t>(desc.binOp) >
        static_cast<std::uint8_t>(BinOp::Add))
        return "bin_op encoding out of range";
    if (static_cast<std::uint8_t>(desc.idxType) >
        static_cast<std::uint8_t>(IdxType::U64))
        return "idx_t encoding out of range";
    if (desc.valType != ValType::F32)
        return "unsupported value type";
    if (desc.elementsPerBlock == 0)
        return "E (elements per block) must be non-zero";
    if (desc.paddedBlockBytes == 0)
        return "S (padded block size) must be non-zero";
    if (desc.paddedBlockBytes % sizeof(float) != 0)
        return "S must be a multiple of the value size";
    if (desc.elementsPerBlock * sizeof(float) > desc.paddedBlockBytes)
        return "E values do not fit in the padded block size S";
    if (desc.indexAddr == 0 && desc.numBlocks > 0)
        return "IDX must be set when N > 0";
    if (desc.inputBase == 0)
        return "IN must be set";
    if (desc.outputAddr == 0)
        return "OUT must be set";
    if (desc.binOp != BinOp::None && desc.factorAddr == 0)
        return "FACTOR must be set when bin_op is used";
    // Address alignment per field: the engine issues element-width
    // loads from IDX/IN/FACTOR and stores to OUT.
    const std::uint64_t idxWidth =
        desc.idxType == IdxType::U32 ? sizeof(std::uint32_t)
                                     : sizeof(std::uint64_t);
    if (desc.indexAddr != 0 && !aligned(desc.indexAddr, idxWidth))
        return "IDX must be aligned to the index element size";
    if (!aligned(desc.inputBase, sizeof(float)))
        return "IN must be aligned to the value size";
    if (!aligned(desc.outputAddr, sizeof(float)))
        return "OUT must be aligned to the value size";
    if (desc.factorAddr != 0 && !aligned(desc.factorAddr, sizeof(float)))
        return "FACTOR must be aligned to the value size";
    return nullptr;
}

} // namespace graphite::dma
