#include "dma/descriptor.h"

namespace graphite::dma {

const char *
validateDescriptor(const AggregationDescriptor &desc)
{
    if (desc.elementsPerBlock == 0)
        return "E (elements per block) must be non-zero";
    if (desc.paddedBlockBytes == 0)
        return "S (padded block size) must be non-zero";
    if (desc.valType != ValType::F32)
        return "unsupported value type";
    if (desc.elementsPerBlock * sizeof(float) > desc.paddedBlockBytes)
        return "E values do not fit in the padded block size S";
    if (desc.indexAddr == 0 && desc.numBlocks > 0)
        return "IDX must be set when N > 0";
    if (desc.inputBase == 0)
        return "IN must be set";
    if (desc.outputAddr == 0)
        return "OUT must be set";
    if (desc.binOp != BinOp::None && desc.factorAddr == 0)
        return "FACTOR must be set when bin_op is used";
    return nullptr;
}

} // namespace graphite::dma
