#include "gnn/technique_config.h"

namespace graphite {

TechniqueConfig
TechniqueConfig::basic()
{
    return {};
}

TechniqueConfig
TechniqueConfig::withFusion()
{
    TechniqueConfig config;
    config.fusion = true;
    return config;
}

TechniqueConfig
TechniqueConfig::withCompression()
{
    TechniqueConfig config;
    config.compression = true;
    return config;
}

TechniqueConfig
TechniqueConfig::combined()
{
    TechniqueConfig config;
    config.fusion = true;
    config.compression = true;
    return config;
}

TechniqueConfig
TechniqueConfig::combinedLocality()
{
    TechniqueConfig config = combined();
    config.locality = true;
    return config;
}

std::string
TechniqueConfig::label() const
{
    std::string base;
    if (fusion && compression && locality)
        base = "c-locality";
    else if (fusion && compression)
        base = "combined";
    else if (fusion)
        base = "fusion";
    else if (compression)
        base = "compression";
    else if (locality)
        base = "locality";
    else
        base = "basic";
    if (precision == Precision::Bf16)
        base += "-bf16";
    if (shards >= 2) {
        base += "-k" + std::to_string(shards);
        if (partition == PartitionStrategy::Hash)
            base += "-hash";
        if (delayedHalo)
            base += "-delayed";
    }
    return base;
}

std::string
gnnKindName(GnnKind kind)
{
    switch (kind) {
      case GnnKind::Gcn:  return "GCN";
      case GnnKind::Sage: return "GraphSAGE";
      case GnnKind::Gin:  return "GIN";
    }
    return "?";
}

const char *
precisionName(Precision precision)
{
    return precision == Precision::Bf16 ? "bf16" : "fp32";
}

bool
parsePrecision(const std::string &text, Precision &out)
{
    if (text == "fp32") {
        out = Precision::Fp32;
        return true;
    }
    if (text == "bf16") {
        out = Precision::Bf16;
        return true;
    }
    return false;
}

} // namespace graphite
