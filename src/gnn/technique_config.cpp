#include "gnn/technique_config.h"

namespace graphite {

TechniqueConfig
TechniqueConfig::basic()
{
    return {};
}

TechniqueConfig
TechniqueConfig::withFusion()
{
    TechniqueConfig config;
    config.fusion = true;
    return config;
}

TechniqueConfig
TechniqueConfig::withCompression()
{
    TechniqueConfig config;
    config.compression = true;
    return config;
}

TechniqueConfig
TechniqueConfig::combined()
{
    TechniqueConfig config;
    config.fusion = true;
    config.compression = true;
    return config;
}

TechniqueConfig
TechniqueConfig::combinedLocality()
{
    TechniqueConfig config = combined();
    config.locality = true;
    return config;
}

std::string
TechniqueConfig::label() const
{
    if (fusion && compression && locality)
        return "c-locality";
    if (fusion && compression)
        return "combined";
    if (fusion)
        return "fusion";
    if (compression)
        return "compression";
    if (locality)
        return "locality";
    return "basic";
}

std::string
gnnKindName(GnnKind kind)
{
    switch (kind) {
      case GnnKind::Gcn:  return "GCN";
      case GnnKind::Sage: return "GraphSAGE";
      case GnnKind::Gin:  return "GIN";
    }
    return "?";
}

} // namespace graphite
