/**
 * @file
 * The Graphite technique matrix: which of the paper's software
 * optimisations a run enables. The named presets mirror the
 * configurations evaluated in Figure 11 (basic / fusion / compression /
 * combined / combined+locality) plus the baselines.
 */

#pragma once

#include <string>

#include "graph/partition/partition_plan.h"
#include "kernels/aggregation.h"
#include "kernels/fused_layer.h"

namespace graphite {

/** Software-technique switches for one execution. */
struct TechniqueConfig
{
    /** Layer fusion (Section 4.2). */
    bool fusion = false;
    /** Feature compression of hidden activations (Section 4.3). */
    bool compression = false;
    /** Temporal-locality processing order (Section 4.4, training only). */
    bool locality = false;
    /**
     * Compute precision. Bf16 stores inter-layer activations as
     * bfloat16 (halving gather traffic) and runs the update GEMMs
     * through the bf16-in/fp32-accumulate micro-kernel. When
     * compression is also on, the packed (sparsity-exploiting) form
     * wins the gather path and bf16 still applies to the GEMMs — the
     * two techniques target different traffic.
     */
    Precision precision = Precision::Fp32;
    /**
     * Cache-slice partitioning: number of shards for shard-major
     * execution. 0 or 1 disables partitioning and runs today's flat
     * kernels; K >= 2 builds a PartitionPlan and carves thread-pool
     * tasks shard by shard (exact mode is bit-identical to flat
     * execution for any K).
     */
    std::size_t shards = 0;
    /** Shard assignment strategy (degree-aware greedy vs hash). */
    PartitionStrategy partition = PartitionStrategy::Greedy;
    /**
     * Delayed cross-shard aggregation (DistGNN-style): fold intra-shard
     * terms first, then gather each halo row once per shard and fold
     * the cut edges from the replica. Cuts gathered bytes on hub-heavy
     * cuts; sum reductions become fp-tolerant instead of bit-equal.
     * Only meaningful with shards >= 2.
     */
    bool delayedHalo = false;
    /** Aggregation kernel knobs (Algorithm 1 constants). */
    AggregationConfig agg;
    /** Fused kernel knobs (Algorithm 2 constants). */
    FusedConfig fused;

    /** Named presets from the paper's evaluation. @{ */
    static TechniqueConfig basic();
    static TechniqueConfig withFusion();
    static TechniqueConfig withCompression();
    static TechniqueConfig combined();
    static TechniqueConfig combinedLocality();
    /** @} */

    /** Short label used in bench output ("basic", "combined", ...). */
    std::string label() const;
};

/**
 * Which GNN model. GCN and GraphSAGE are the paper's two (Table 2);
 * GIN is an extension expressible in the same ψ/⊕ formalism.
 */
enum class GnnKind { Gcn, Sage, Gin };

/** Model name for tables ("GCN" / "GraphSAGE" / "GIN"). */
std::string gnnKindName(GnnKind kind);

/** Precision name for tables and CLI round-trips ("fp32" / "bf16"). */
const char *precisionName(Precision precision);

/**
 * Parse a --precision value ("fp32" or "bf16", case-sensitive).
 * @return false when @p text names no known precision (@p out
 *         untouched).
 */
bool parsePrecision(const std::string &text, Precision &out);

} // namespace graphite
