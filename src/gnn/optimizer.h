/**
 * @file
 * Optimizers for GNN training. The paper's training loop "updates the
 * trainable parameters... with a loop of the forward pass and the
 * backward pass" (Section 2.1); SGD lives on GnnLayer directly, and
 * this module adds the Adam optimizer most GNN baselines (DGL/PyG
 * reference models) actually train with, plus optional weight decay.
 */

#pragma once

#include <memory>
#include <vector>

#include "gnn/gnn_model.h"

namespace graphite {

/** Adam hyper-parameters. */
struct AdamConfig
{
    float learningRate = 1e-2f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float epsilon = 1e-8f;
    /** Decoupled L2 weight decay (0 disables). */
    float weightDecay = 0.0f;
};

/** Adam state and update rule over every layer of one model. */
class AdamOptimizer
{
  public:
    AdamOptimizer(GnnModel &model, AdamConfig config = {});

    /**
     * Apply one Adam step using the gradients the last
     * GnnModel::trainBackward() produced.
     */
    void step();

    /** Steps taken so far (the bias-correction timestep t). */
    std::uint64_t steps() const { return steps_; }

    const AdamConfig &config() const { return config_; }

  private:
    struct LayerState
    {
        DenseMatrix weightM;
        DenseMatrix weightV;
        std::vector<Feature> biasM;
        std::vector<Feature> biasV;
    };

    GnnModel &model_;
    AdamConfig config_;
    std::vector<LayerState> state_;
    std::uint64_t steps_ = 0;
};

} // namespace graphite
