/**
 * @file
 * Full-batch GNN training driver (paper Section 2.1's training loop):
 * forward pass, softmax cross-entropy, backward pass, SGD — no sampling,
 * no mini-batching, the regime the paper argues CPUs enable.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "gnn/gnn_model.h"

namespace graphite {

/** Per-epoch training record. */
struct EpochStats
{
    double loss = 0.0;
    double trainAccuracy = 0.0;
    /**
     * Wall-clock seconds of the epoch's training work (forward + loss
     * + backward + SGD). Excludes the optional checkNumerics sweeps —
     * those are validation, not training, and folding them in used to
     * silently inflate every reported epoch time when the sweep was on.
     */
    double seconds = 0.0;
    /** Wall-clock seconds spent in checkNumerics sweeps (0 when off). */
    double numericsSeconds = 0.0;
};

/** Hyper-parameters of a training run. */
struct TrainerConfig
{
    float learningRate = 0.05f;
    std::size_t epochs = 10;
    TechniqueConfig tech;
    /**
     * Optional train-split mask (1 byte per vertex, non-zero = in the
     * split); empty means every vertex is labelled, the full-batch
     * default. Standard node-classification benchmarks label a subset.
     */
    std::vector<std::uint8_t> trainMask;
    /** Optional evaluation mask used by evaluate(); empty = all. */
    std::vector<std::uint8_t> evalMask;
    /**
     * Numerics sweep: after each epoch's forward and backward, run
     * DenseMatrix::countNonFinite() over the logits and loss gradient
     * and throw std::runtime_error if NaN/Inf escaped the update phase
     * (diverged learning rate, corrupted weights). Off by default — the
     * sweep is O(|V| x classes) per epoch.
     */
    bool checkNumerics = false;
};

/**
 * Random disjoint train/eval split masks: @p trainFraction of vertices
 * in the train mask, @p evalFraction in the eval mask.
 */
std::pair<std::vector<std::uint8_t>, std::vector<std::uint8_t>>
makeSplitMasks(std::size_t numVertices, double trainFraction,
               double evalFraction, std::uint64_t seed);

/** Full-batch trainer binding a model, features and labels. */
class Trainer
{
  public:
    /**
     * @param labels one class id per vertex; width of the model's last
     *        layer must equal the number of classes.
     */
    Trainer(GnnModel &model, const DenseMatrix &inputFeatures,
            std::vector<std::int32_t> labels, TrainerConfig config);

    /** Run one epoch (forward + loss + backward + SGD). */
    EpochStats trainEpoch();

    /** Run config.epochs epochs and return their stats. */
    std::vector<EpochStats> train();

    /** Inference accuracy with the current parameters. */
    double evaluate() const;

  private:
    GnnModel &model_;
    const DenseMatrix &inputFeatures_;
    std::vector<std::int32_t> labels_;
    TrainerConfig config_;
    /** dL/d(logits) workspace, reused across epochs. */
    DenseMatrix lossGradScratch_;
};

/**
 * Build a synthetic node-classification task on @p graph: class labels
 * assigned by seeded label propagation (so they correlate with graph
 * structure and are learnable), plus input features that are noisy
 * class indicators.
 *
 * @param numClasses  number of classes.
 * @param featureWidth width of the generated input features.
 * @param noise       feature noise amplitude in [0, 1].
 */
struct SyntheticTask
{
    DenseMatrix features;
    std::vector<std::int32_t> labels;
};

SyntheticTask makeSyntheticTask(const CsrGraph &graph,
                                std::size_t numClasses,
                                std::size_t featureWidth, double noise,
                                std::uint64_t seed);

} // namespace graphite
