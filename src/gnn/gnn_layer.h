/**
 * @file
 * One GNN layer: aggregation (Table 2's AGGREGATE) + FC/ReLU update,
 * with forward paths for every technique combination and a full backward
 * pass for training.
 *
 * Backward math for h = ReLU(a W + b), a = Agg(h_prev):
 *   dz      = dh ⊙ ReLU'(h)
 *   dW      = aᵀ · dz          db = colsum(dz)
 *   da      = dz · Wᵀ
 *   dh_prev = Aggᵀ(da)   — aggregation along the transposed graph with
 *                          the transposed factor map.
 */

#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "compress/compressed_matrix.h"
#include "gnn/technique_config.h"
#include "graph/csr_graph.h"
#include "kernels/aggregation.h"
#include "tensor/dense_matrix.h"
#include "tensor/gemm_plan.h"

namespace graphite {

/**
 * Map @p spec's per-edge factors onto @p transposed's edge order, so that
 * Aggᵀ can run as a plain aggregation over the transposed graph.
 */
AggregationSpec transposeSpec(const CsrGraph &graph,
                              const AggregationSpec &spec,
                              const CsrGraph &transposed);

/** Saved forward state one layer needs for its backward pass. */
struct LayerContext
{
    /** Aggregation output a^k (pre-update). */
    DenseMatrix agg;
    /** Layer output h^k (post-activation). */
    DenseMatrix output;
    /** Compressed copy of output, maintained when compression is on. */
    CompressedMatrix outputCompressed;
    bool hasCompressed = false;
    /**
     * Bf16 copy of output (post-dropout), maintained by GnnModel when
     * the precision technique is on so the next layer gathers at half
     * width.
     */
    Bf16Matrix outputBf16;
    bool hasBf16 = false;
};

/** A single aggregation+update GNN layer with trainable W and b. */
class GnnLayer
{
  public:
    /**
     * @param inFeatures  input feature width F_{k-1}.
     * @param outFeatures output feature width F_k.
     * @param relu        apply ReLU (disabled on the final logits layer).
     */
    GnnLayer(std::size_t inFeatures, std::size_t outFeatures, bool relu);

    std::size_t inFeatures() const { return inFeatures_; }
    std::size_t outFeatures() const { return outFeatures_; }
    bool hasRelu() const { return relu_; }

    /** Glorot-uniform weight init, zero bias. */
    void initWeights(std::uint64_t seed);

    /**
     * Mutable weight access permanently downgrades the packed-plan
     * cache to repack-per-use: the returned reference can be retained
     * and written through at any later point (the optimizer and
     * checkpoint loader do exactly that), so no version counter can
     * see those writes. Internal mutators (initWeights, sgdStep) keep
     * precise invalidation instead.
     */
    DenseMatrix &
    weights()
    {
        weightsAliased_ = true;
        return weights_;
    }
    const DenseMatrix &weights() const { return weights_; }
    std::vector<Feature> &bias() { return bias_; }
    const std::vector<Feature> &bias() const { return bias_; }

    /**
     * W packed for the forward/update GEMM (NN mode) at @p precision,
     * repacked lazily after any weight mutation and otherwise reused
     * across blocks, layer calls and epochs — the amortisation the
     * packed micro-kernel design exists for. Each precision has its own
     * cache slot, so concurrent callers may mix precisions freely. Not
     * safe to call concurrently with weight updates (no forward is).
     */
    const GemmPlan &
    packedWeights(Precision precision = Precision::Fp32) const;

    /** W packed for the dX backward GEMM (NT mode), cached likewise. */
    const GemmPlan &
    packedWeightsTransposed(Precision precision = Precision::Fp32) const;

    /**
     * Inference forward: writes h^k into @p out; a^k is only
     * materialised when fusion is off (the unfused path needs it as a
     * GEMM input). When compression is on and @p inCompressed is
     * non-null, gathers read packed features; when @p outCompressed is
     * non-null the produced features are also packed for the next layer.
     * When tech.precision is Bf16 and @p inBf16 is non-null, gathers
     * read half-width features instead (compression wins when both are
     * supplied); a non-null @p outBf16 additionally rounds the produced
     * rows to bf16 for the next layer.
     *
     * A non-null @p plan with >= 2 shards switches to shard-major
     * execution: dense/bf16 paths run the sharded kernels (exact mode
     * bit-identical; tech.delayedHalo selects the replica mode and, with
     * fusion, falls back to unfused delayed aggregation + one GEMM);
     * compressed gathers have no sharded kernel and instead run the
     * global kernels over the plan's shard-major order.
     */
    void forwardInference(const CsrGraph &graph, const AggregationSpec &spec,
                          const DenseMatrix &in,
                          const CompressedMatrix *inCompressed,
                          const Bf16Matrix *inBf16, DenseMatrix &out,
                          CompressedMatrix *outCompressed,
                          Bf16Matrix *outBf16,
                          std::span<const VertexId> order,
                          const PartitionPlan *plan,
                          const TechniqueConfig &tech) const;

    /**
     * Training forward: fills @p ctx with a^k and h^k (and the packed
     * copy when compression is on). @p inBf16, when non-null under the
     * Bf16 precision technique, supplies the half-width gather source;
     * ctx.outputBf16 is the *model's* responsibility (conversion must
     * happen after inter-layer dropout).
     */
    void forwardTraining(const CsrGraph &graph, const AggregationSpec &spec,
                         const DenseMatrix &in,
                         const CompressedMatrix *inCompressed,
                         const Bf16Matrix *inBf16, LayerContext &ctx,
                         std::span<const VertexId> order,
                         const PartitionPlan *plan,
                         const TechniqueConfig &tech) const;

    /**
     * Backward pass. Consumes dL/dh^k in @p gradOut (clobbered), fills
     * weight/bias gradients, and when @p gradIn is non-null computes
     * dL/dh^{k-1} via the transposed aggregation — fused with the
     * da = dz·Wᵀ GEMM when tech.fusion is on (fusedLayerBackward), so
     * dAgg is only materialised on the unfused path (into a persistent
     * per-layer scratch). The bias gradient uses the parallel
     * deterministic columnSum. Allocation-free once scratch has grown
     * to the steady-state shape.
     *
     * @param transposed     transposed graph.
     * @param transposedSpec factors remapped by transposeSpec().
     * @param order          processing order for the *transposed* graph
     *                       (GnnModel::transposedLocalityOrderFor), or
     *                       empty for identity.
     * @param transposedPlan partition plan of the *transposed* graph for
     *                       shard-major execution, or null for flat.
     */
    void backward(const CsrGraph &transposed,
                  const AggregationSpec &transposedSpec,
                  const LayerContext &ctx, DenseMatrix &gradOut,
                  DenseMatrix *gradIn, std::span<const VertexId> order,
                  const PartitionPlan *transposedPlan,
                  const TechniqueConfig &tech);

    /** SGD parameter update from the last backward()'s gradients. */
    void sgdStep(float learningRate);

    const DenseMatrix &weightGrad() const { return weightGrad_; }
    std::span<const Feature> biasGrad() const { return biasGrad_; }

  private:
    std::size_t inFeatures_;
    std::size_t outFeatures_;
    bool relu_;
    DenseMatrix weights_;
    std::vector<Feature> bias_;
    DenseMatrix weightGrad_;
    std::vector<Feature> biasGrad_;

    /** Bumped by internal weight mutators (initWeights, sgdStep). */
    std::uint64_t weightsVersion_ = 0;
    /** A mutable reference escaped: packs can never be trusted again. */
    bool weightsAliased_ = false;
    /** Plan-cache slots, one per Precision enumerator. */
    static constexpr std::size_t kNumPrecisions = 2;
    /**
     * Guards the lazy plan cache below, so concurrent forwards (e.g. a
     * future serving layer evaluating one model from several request
     * threads) fill each slot exactly once. Each precision has its own
     * slot: a fill for one precision never overwrites a plan another
     * thread may still be reading at the other precision. The returned
     * plan is then read unlocked, which is safe while no weight
     * mutation is in flight — the documented packedWeights() contract.
     */
    mutable Mutex planMutex_;
    mutable std::array<GemmPlan, kNumPrecisions> packedNN_
        GRAPHITE_GUARDED_BY(planMutex_);
    mutable std::array<GemmPlan, kNumPrecisions> packedNT_
        GRAPHITE_GUARDED_BY(planMutex_);
    /** weightsVersion_ each cached plan was packed at (~0 = never). */
    mutable std::array<std::uint64_t, kNumPrecisions> packedNNVersion_
        GRAPHITE_GUARDED_BY(planMutex_) = {~std::uint64_t{0},
                                           ~std::uint64_t{0}};
    mutable std::array<std::uint64_t, kNumPrecisions> packedNTVersion_
        GRAPHITE_GUARDED_BY(planMutex_) = {~std::uint64_t{0},
                                           ~std::uint64_t{0}};

    /**
     * Packed dz operand of the dW GEMM, reused across epochs: dz
     * changes every step so the pack cannot be cached like the weight
     * plans, but repacking into persistent storage keeps the
     * steady-state epoch allocation-free (pack() reuses its buffers
     * when the operand shape and precision are unchanged).
     */
    GemmPlan dwPlanScratch_;
    /** dAgg workspace of the unfused backward, reused across epochs. */
    DenseMatrix dAggScratch_;
    /** columnSum partials workspace, reused across epochs. */
    std::vector<Feature> colSumScratch_;
    /** dz rounded to bf16 for the fused bf16 backward, reused. */
    Bf16Matrix dzBf16Scratch_;
};

} // namespace graphite
