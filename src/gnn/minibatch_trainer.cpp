#include "gnn/minibatch_trainer.h"

#include <cstring>

#include "common/assert.h"
#include "common/timer.h"
#include "tensor/gemm.h"
#include "tensor/row_ops.h"

namespace graphite {

MiniBatchTrainer::MiniBatchTrainer(const CsrGraph &graph,
                                   const DenseMatrix &features,
                                   std::vector<std::int32_t> labels,
                                   std::vector<std::size_t> featureWidths,
                                   GnnKind kind, MiniBatchConfig config)
    : graph_(graph), features_(features), labels_(std::move(labels)),
      config_(std::move(config)), kind_(kind), rng_(config_.seed)
{
    GRAPHITE_ASSERT(featureWidths.size() >= 2, "need at least two widths");
    GRAPHITE_ASSERT(featureWidths.size() - 1 == config_.fanouts.size(),
                    "one fanout per layer required");
    GRAPHITE_ASSERT(featureWidths.front() == features.cols(),
                    "input width mismatch");
    GRAPHITE_ASSERT(labels_.size() == graph.numVertices(),
                    "label count mismatch");
    for (std::size_t k = 0; k + 1 < featureWidths.size(); ++k) {
        const bool relu = k + 2 < featureWidths.size();
        layers_.push_back(std::make_unique<GnnLayer>(
            featureWidths[k], featureWidths[k + 1], relu));
        layers_.back()->initWeights(config_.seed + 100 + k);
    }
    contexts_.resize(layers_.size());
}

AggregationSpec
MiniBatchTrainer::blockSpec(const SampledBlock &block)
{
    // GraphSAGE-mean over the sampled neighborhood plus self; GCN-style
    // symmetric norms are ill-defined on sampled bipartite blocks, so
    // both kinds use the mean here (as DGL's sampled SAGE does).
    const CsrGraph &g = block.block;
    AggregationSpec spec;
    spec.selfFactors.resize(g.numVertices(), 1.0f);
    spec.edgeFactors.resize(g.numEdges(), 1.0f);
    for (VertexId d = 0; d < block.dstVertices.size(); ++d) {
        const Feature mean = 1.0f / static_cast<Feature>(g.degree(d) + 1);
        spec.selfFactors[d] = mean;
        for (EdgeId e = g.rowBegin(d); e < g.rowEnd(d); ++e)
            spec.edgeFactors[e] = mean;
    }
    return spec;
}

double
MiniBatchTrainer::forwardBatch(const MiniBatch &batch,
                               DenseMatrix &lossGrad)
{
    // Precondition: contexts_[0].input holds the gathered features of
    // batch.inputVertices() (the staging copy whose cost Figure 2
    // attributes to "mini-batching" — callers time it separately).
    GRAPHITE_ASSERT(contexts_[0].input.rows() ==
                        batch.inputVertices().size(),
                    "input features not gathered for this batch");

    for (std::size_t k = 0; k < layers_.size(); ++k) {
        const SampledBlock &block = batch.blocks[k];
        BlockContext &ctx = contexts_[k];
        // Layer k's input is the previous layer's output (kept alive:
        // the backward pass needs every layer's activation).
        const DenseMatrix &input =
            k == 0 ? ctx.input : contexts_[k - 1].output;
        const std::size_t numDst = block.dstVertices.size();
        GnnLayer &layer = *layers_[k];
        const AggregationSpec spec = blockSpec(block);

        ctx.agg.resize(numDst, layer.inFeatures());
        for (VertexId d = 0; d < numDst; ++d)
            aggregateVertex(block.block, input, d, spec,
                            ctx.agg.row(d));
        ctx.output.resize(numDst, layer.outFeatures());
        // Serial packed update over the whole sampled block; the packed
        // weights come from the layer's cache (repacked only after the
        // in-loop SGD update mutates W).
        gemmBlockSerial(ctx.agg.row(0), numDst, ctx.agg.rowStride(),
                        layer.packedWeights(config_.precision),
                        ctx.output.row(0), ctx.output.rowStride(),
                        layer.inFeatures());
        addBias(ctx.output, layer.bias());
        if (layer.hasRelu())
            reluForward(ctx.output);
    }

    const BlockContext &last = contexts_.back();
    const auto &seeds = batch.blocks.back().dstVertices;
    std::vector<std::int32_t> batchLabels(seeds.size());
    for (std::size_t i = 0; i < seeds.size(); ++i)
        batchLabels[i] = labels_[seeds[i]];
    lossGrad.resize(last.output.rows(), last.output.cols());
    return softmaxCrossEntropy(last.output, batchLabels, lossGrad);
}

void
MiniBatchTrainer::backwardBatch(const MiniBatch &batch,
                                DenseMatrix lossGrad)
{
    DenseMatrix gradOut = std::move(lossGrad);
    for (std::size_t k = layers_.size(); k-- > 0;) {
        const SampledBlock &block = batch.blocks[k];
        BlockContext &ctx = contexts_[k];
        GnnLayer &layer = *layers_[k];
        if (layer.hasRelu())
            reluBackward(ctx.output, gradOut);

        // dW = aggᵀ·dz, db = colsum(dz).
        DenseMatrix weightGrad(layer.inFeatures(), layer.outFeatures());
        gemm(GemmMode::TN, ctx.agg, gradOut, weightGrad);
        std::vector<Feature> biasGrad(layer.outFeatures(), 0.0f);
        for (std::size_t r = 0; r < gradOut.rows(); ++r) {
            const Feature *row = gradOut.row(r);
            for (std::size_t c = 0; c < biasGrad.size(); ++c)
                biasGrad[c] += row[c];
        }

        DenseMatrix dAgg(gradOut.rows(), layer.inFeatures());
        gemm(GemmMode::NT, gradOut,
             layer.packedWeightsTransposed(config_.precision), dAgg);

        // Parameter update (plain SGD per mini-batch).
        DenseMatrix &weights = layer.weights();
        for (std::size_t r = 0; r < weights.rows(); ++r) {
            Feature *w = weights.row(r);
            const Feature *g = weightGrad.row(r);
            for (std::size_t c = 0; c < weights.cols(); ++c)
                w[c] -= config_.learningRate * g[c];
        }
        for (std::size_t c = 0; c < biasGrad.size(); ++c)
            layer.bias()[c] -= config_.learningRate * biasGrad[c];

        if (k == 0)
            break;
        // dx over the block's sources: transposed-block aggregation.
        const AggregationSpec spec = blockSpec(block);
        const CsrGraph transposed = block.block.transposed();
        const AggregationSpec tSpec =
            transposeSpec(block.block, spec, transposed);
        // Pad dAgg to |src| rows (source-only rows have zero gradient
        // from edges; self terms only exist for dst rows).
        DenseMatrix dSrc(block.srcVertices.size(), layer.inFeatures());
        for (VertexId s = 0; s < block.srcVertices.size(); ++s) {
            Feature *dst = dSrc.row(s);
            // Edge contributions from transposed rows.
            for (EdgeId e = transposed.rowBegin(s);
                 e < transposed.rowEnd(s); ++e) {
                const VertexId d = transposed.colIdx()[e];
                const Feature factor = tSpec.edgeFactors[e];
                const Feature *src = dAgg.row(d);
                for (std::size_t c = 0; c < layer.inFeatures(); ++c)
                    dst[c] += factor * src[c];
            }
            // Self term: sources that are also destinations.
            if (s < block.dstVertices.size()) {
                const Feature factor = spec.selfFactors[s];
                const Feature *src = dAgg.row(s);
                for (std::size_t c = 0; c < layer.inFeatures(); ++c)
                    dst[c] += factor * src[c];
            }
        }
        gradOut = std::move(dSrc);
    }
}

MiniBatchEpochStats
MiniBatchTrainer::trainEpoch()
{
    MiniBatchEpochStats stats;
    auto batches = makeEpochBatches(graph_, config_.batchSize, rng_);
    double lossSum = 0.0;
    for (auto &seeds : batches) {
        Timer sampling;
        MiniBatch batch =
            sampleMiniBatch(graph_, std::move(seeds), config_.fanouts,
                            rng_);
        contexts_[0].input =
            gatherBatchFeatures(features_, batch.inputVertices());
        stats.samplingSeconds += sampling.seconds();

        Timer layerTimer;
        DenseMatrix lossGrad;
        lossSum += forwardBatch(batch, lossGrad);
        backwardBatch(batch, std::move(lossGrad));
        stats.layerSeconds += layerTimer.seconds();
    }
    stats.loss = lossSum / static_cast<double>(batches.size());
    return stats;
}

double
MiniBatchTrainer::evaluateLoss()
{
    auto batches = makeEpochBatches(graph_, config_.batchSize, rng_);
    double lossSum = 0.0;
    for (auto &seeds : batches) {
        MiniBatch batch =
            sampleMiniBatch(graph_, std::move(seeds), config_.fanouts,
                            rng_);
        contexts_[0].input =
            gatherBatchFeatures(features_, batch.inputVertices());
        DenseMatrix lossGrad;
        lossSum += forwardBatch(batch, lossGrad);
    }
    return lossSum / static_cast<double>(batches.size());
}

} // namespace graphite
