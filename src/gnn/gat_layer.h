/**
 * @file
 * Graph Attention Network (GAT) inference layer — an extension that
 * demonstrates the generality of the paper's ψ-factor mechanism with
 * *data-dependent* edge factors.
 *
 * GAT computes, per edge (v, u):
 *
 *   z        = h W                          (the shared projection)
 *   e(v, u)  = LeakyReLU(aDstᵀ z_v + aSrcᵀ z_u)
 *   α(v, u)  = softmax over u ∈ N(v) ∪ {v} of e(v, u)
 *   out_v    = act( Σ_u α(v, u) · z_u )
 *
 * The attention coefficients α are exactly an AggregationSpec — per-edge
 * multiplicative factors aligned with the CSR — so once they are
 * computed, the aggregation runs through *any* Graphite kernel: the
 * basic AVX-512 path, the fused layer, or the DMA engine, whose FACTOR
 * array field (paper Figure 8) exists for precisely this "host computes
 * the factors, engine applies them" contract (Section 5.2).
 */

#pragma once

#include <cstdint>

#include "graph/csr_graph.h"
#include "kernels/aggregation.h"
#include "tensor/dense_matrix.h"

namespace graphite {

/** Single-head GAT layer (inference). */
class GatLayer
{
  public:
    /**
     * @param inFeatures  input width.
     * @param outFeatures projected/output width.
     * @param negativeSlope LeakyReLU slope for the attention logits.
     */
    GatLayer(std::size_t inFeatures, std::size_t outFeatures,
             float negativeSlope = 0.2f);

    /** Glorot init of W and the two attention vectors. */
    void initWeights(std::uint64_t seed);

    std::size_t inFeatures() const { return inFeatures_; }
    std::size_t outFeatures() const { return outFeatures_; }

    DenseMatrix &weights() { return weights_; }
    std::vector<Feature> &attentionSrc() { return attnSrc_; }
    std::vector<Feature> &attentionDst() { return attnDst_; }

    /**
     * The projected features z = h W (the aggregation's input — and
     * the IN operand a DMA offload would use).
     */
    DenseMatrix project(const DenseMatrix &h) const;

    /**
     * Compute the attention coefficients for @p z as an
     * AggregationSpec: edgeFactors[e] = α(v, u) for CSR edge e and
     * selfFactors[v] = α(v, v). Each vertex's factors (neighbors +
     * self) sum to 1 by the softmax.
     */
    AggregationSpec attentionSpec(const CsrGraph &graph,
                                  const DenseMatrix &z) const;

    /**
     * Full forward: project, attend, aggregate (through the standard
     * Graphite aggregation kernel), then ELU-activate.
     */
    DenseMatrix forward(const CsrGraph &graph, const DenseMatrix &h) const;

    /** Plain-loop reference used by the differential tests. */
    DenseMatrix forwardReference(const CsrGraph &graph,
                                 const DenseMatrix &h) const;

  private:
    std::size_t inFeatures_;
    std::size_t outFeatures_;
    float negativeSlope_;
    DenseMatrix weights_;
    std::vector<Feature> attnSrc_;
    std::vector<Feature> attnDst_;
};

} // namespace graphite
