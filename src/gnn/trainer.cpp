#include "gnn/trainer.h"

#include <stdexcept>
#include <string>

#include "common/assert.h"
#include "common/rng.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/row_ops.h"

namespace graphite {

namespace {

/** TrainerConfig::checkNumerics sweep: throw if @p m holds NaN/Inf. */
void
requireFinite(const DenseMatrix &m, const char *what)
{
    const std::size_t bad = m.countNonFinite();
    if (bad != 0) {
        throw std::runtime_error(
            std::string("trainer numerics check: ") + what + " has " +
            std::to_string(bad) + " non-finite element(s)");
    }
}

} // namespace

Trainer::Trainer(GnnModel &model, const DenseMatrix &inputFeatures,
                 std::vector<std::int32_t> labels, TrainerConfig config)
    : model_(model), inputFeatures_(inputFeatures),
      labels_(std::move(labels)), config_(config)
{
    GRAPHITE_ASSERT(labels_.size() == inputFeatures.rows(),
                    "label count mismatch");
}

std::pair<std::vector<std::uint8_t>, std::vector<std::uint8_t>>
makeSplitMasks(std::size_t numVertices, double trainFraction,
               double evalFraction, std::uint64_t seed)
{
    GRAPHITE_ASSERT(trainFraction + evalFraction <= 1.0,
                    "split fractions exceed 1");
    Rng rng(seed);
    std::vector<std::uint8_t> train(numVertices, 0);
    std::vector<std::uint8_t> eval(numVertices, 0);
    for (std::size_t v = 0; v < numVertices; ++v) {
        const double draw = rng.uniform();
        if (draw < trainFraction)
            train[v] = 1;
        else if (draw < trainFraction + evalFraction)
            eval[v] = 1;
    }
    return {std::move(train), std::move(eval)};
}

EpochStats
Trainer::trainEpoch()
{
    GRAPHITE_TRACE_SPAN("epoch");
    Timer timer;
    // checkNumerics sweeps are validation, not training: time them
    // separately so stats.seconds stays comparable whether or not the
    // sweep is enabled (it used to be silently folded in).
    double numericsSeconds = 0.0;
    const auto sweep = [&](const DenseMatrix &m, const char *what) {
        GRAPHITE_TRACE_SPAN("epoch.numerics");
        Timer sweepTimer;
        requireFinite(m, what);
        numericsSeconds += sweepTimer.seconds();
    };

    const DenseMatrix *logits = nullptr;
    {
        GRAPHITE_TRACE_SPAN("epoch.forward");
        logits = &model_.trainForward(inputFeatures_, config_.tech);
    }
    if (config_.checkNumerics)
        sweep(*logits, "forward logits");
    lossGradScratch_.reshape(logits->rows(), logits->cols());
    EpochStats stats;
    {
        GRAPHITE_TRACE_SPAN("epoch.loss");
        if (config_.trainMask.empty()) {
            stats.loss = softmaxCrossEntropy(*logits, labels_,
                                             lossGradScratch_);
            stats.trainAccuracy = accuracy(*logits, labels_);
        } else {
            stats.loss = softmaxCrossEntropyMasked(
                *logits, labels_, config_.trainMask, lossGradScratch_);
            stats.trainAccuracy =
                accuracyMasked(*logits, labels_, config_.trainMask);
        }
    }
    if (config_.checkNumerics)
        sweep(lossGradScratch_, "loss gradient");
    {
        GRAPHITE_TRACE_SPAN("epoch.backward");
        model_.trainBackward(lossGradScratch_, config_.tech);
    }
    {
        GRAPHITE_TRACE_SPAN("epoch.sgd");
        model_.sgdStep(config_.learningRate);
    }
    stats.numericsSeconds = numericsSeconds;
    stats.seconds = timer.seconds() - numericsSeconds;
    if (numericsSeconds > 0.0) {
        static obs::Counter &numericsNs =
            obs::MetricsRegistry::global().counter("trainer.numerics_ns");
        numericsNs.add(static_cast<std::uint64_t>(numericsSeconds * 1e9));
    }
    return stats;
}

std::vector<EpochStats>
Trainer::train()
{
    std::vector<EpochStats> history;
    history.reserve(config_.epochs);
    for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch)
        history.push_back(trainEpoch());
    return history;
}

double
Trainer::evaluate() const
{
    const DenseMatrix &logits =
        model_.inference(inputFeatures_, config_.tech);
    if (config_.evalMask.empty())
        return accuracy(logits, labels_);
    return accuracyMasked(logits, labels_, config_.evalMask);
}

SyntheticTask
makeSyntheticTask(const CsrGraph &graph, std::size_t numClasses,
                  std::size_t featureWidth, double noise,
                  std::uint64_t seed)
{
    GRAPHITE_ASSERT(numClasses >= 2, "need at least two classes");
    GRAPHITE_ASSERT(featureWidth >= numClasses,
                    "feature width must cover the class indicators");
    const VertexId n = graph.numVertices();
    Rng rng(seed);

    // Seed random labels, then smooth with a few majority-vote rounds so
    // labels correlate with structure (and are thus learnable by a GNN).
    std::vector<std::int32_t> labels(n);
    for (VertexId v = 0; v < n; ++v)
        labels[v] = static_cast<std::int32_t>(rng.uniformInt(numClasses));
    std::vector<std::int32_t> next(n);
    std::vector<std::uint32_t> votes(numClasses);
    for (int round = 0; round < 3; ++round) {
        for (VertexId v = 0; v < n; ++v) {
            std::fill(votes.begin(), votes.end(), 0);
            votes[static_cast<std::size_t>(labels[v])] += 2;
            for (VertexId u : graph.neighbors(v))
                ++votes[static_cast<std::size_t>(labels[u])];
            std::size_t best = 0;
            for (std::size_t c = 1; c < numClasses; ++c) {
                if (votes[c] > votes[best])
                    best = c;
            }
            next[v] = static_cast<std::int32_t>(best);
        }
        labels.swap(next);
    }

    SyntheticTask task;
    task.labels = std::move(labels);
    task.features = DenseMatrix(n, featureWidth);
    for (VertexId v = 0; v < n; ++v) {
        Feature *row = task.features.row(v);
        for (std::size_t c = 0; c < featureWidth; ++c) {
            row[c] = static_cast<Feature>(
                noise * (2.0 * rng.uniform() - 1.0));
        }
        // Class-indicator bump so the task is separable.
        row[static_cast<std::size_t>(task.labels[v])] += 1.0f;
    }
    return task;
}

} // namespace graphite
