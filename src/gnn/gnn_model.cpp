#include "gnn/gnn_model.h"

#include "common/assert.h"
#include "obs/trace.h"
#include "tensor/row_ops.h"

namespace graphite {

GnnModel::GnnModel(const CsrGraph &graph, GnnModelConfig config)
    : graph_(&graph), config_(std::move(config))
{
    GRAPHITE_ASSERT(config_.featureWidths.size() >= 2,
                    "need at least input and output widths");
    switch (config_.kind) {
      case GnnKind::Gcn:
        spec_ = gcnSpec(graph);
        break;
      case GnnKind::Sage:
        spec_ = sageSpec(graph);
        break;
      case GnnKind::Gin:
        spec_ = ginSpec(graph);
        break;
    }
    transposed_ = graph.transposed();
    transposedSpec_ = transposeSpec(graph, spec_, transposed_);

    const std::size_t numLayers = config_.featureWidths.size() - 1;
    for (std::size_t k = 0; k < numLayers; ++k) {
        const bool relu = k + 1 < numLayers; // no ReLU on the logits
        layers_.push_back(std::make_unique<GnnLayer>(
            config_.featureWidths[k], config_.featureWidths[k + 1], relu));
        layers_.back()->initWeights(config_.seed + k);
    }
    contexts_.resize(numLayers);
    dropoutMasks_.resize(numLayers);
}

std::span<const VertexId>
GnnModel::localityOrderFor(const TechniqueConfig &tech) const
{
    if (!tech.locality)
        return {};
    MutexLock lock(cacheMutex_);
    if (cachedLocalityOrder_.empty())
        cachedLocalityOrder_ = localityOrder(*graph_);
    return cachedLocalityOrder_;
}

std::span<const VertexId>
GnnModel::transposedLocalityOrderFor(const TechniqueConfig &tech) const
{
    if (!tech.locality)
        return {};
    MutexLock lock(cacheMutex_);
    if (cachedTransposedOrder_.empty())
        cachedTransposedOrder_ = localityOrder(transposed_);
    return cachedTransposedOrder_;
}

namespace {

/**
 * Find-or-build in an append-only (shards, strategy)-keyed plan cache.
 * Entries are heap-anchored and never erased, so returned plans stay
 * valid for the cache's lifetime even while later calls append new
 * keys — the property concurrent unlocked readers depend on.
 */
template <typename CacheEntry>
const PartitionPlan &
findOrBuildPlan(std::vector<std::unique_ptr<CacheEntry>> &cache,
                const CsrGraph &graph, const TechniqueConfig &tech)
{
    for (const auto &entry : cache) {
        if (entry->shards == tech.shards &&
            entry->strategy == tech.partition) {
            return entry->plan;
        }
    }
    PartitionConfig config;
    config.numShards = tech.shards;
    config.strategy = tech.partition;
    auto entry = std::make_unique<CacheEntry>();
    entry->shards = tech.shards;
    entry->strategy = tech.partition;
    entry->plan = makePartitionPlan(graph, config);
    cache.push_back(std::move(entry));
    return cache.back()->plan;
}

} // namespace

const PartitionPlan *
GnnModel::partitionPlanFor(const TechniqueConfig &tech) const
{
    if (tech.shards < 2)
        return nullptr;
    MutexLock lock(cacheMutex_);
    return &findOrBuildPlan(planCache_, *graph_, tech);
}

const PartitionPlan *
GnnModel::transposedPartitionPlanFor(const TechniqueConfig &tech) const
{
    if (tech.shards < 2)
        return nullptr;
    MutexLock lock(cacheMutex_);
    return &findOrBuildPlan(transposedPlanCache_, transposed_, tech);
}

const Bf16Matrix &
GnnModel::inputAsBf16(const DenseMatrix &inputFeatures)
{
    if (inputBf16Key_ != inputFeatures.data() ||
        inputBf16Rows_ != inputFeatures.rows() ||
        inputBf16Cols_ != inputFeatures.cols()) {
        inputBf16_.reshape(inputFeatures.rows(), inputFeatures.cols());
        inputBf16_.fromDense(inputFeatures);
        inputBf16Key_ = inputFeatures.data();
        inputBf16Rows_ = inputFeatures.rows();
        inputBf16Cols_ = inputFeatures.cols();
    }
    return inputBf16_;
}

const DenseMatrix &
GnnModel::inference(const DenseMatrix &inputFeatures,
                    const TechniqueConfig &tech)
{
    GRAPHITE_TRACE_SPAN("model.inference");
    GRAPHITE_ASSERT(inputFeatures.rows() == graph_->numVertices(),
                    "input row count mismatch");
    GRAPHITE_ASSERT(inputFeatures.cols() == config_.featureWidths.front(),
                    "input width mismatch");
    const auto order = localityOrderFor(tech);
    const PartitionPlan *plan = partitionPlanFor(tech);
    const VertexId n = graph_->numVertices();

    // Bf16 activations flow between layers only when compression does
    // not already own the gather path (the two share the same slot; the
    // packed form carries strictly more traffic savings when present).
    const bool bf16Flow =
        tech.precision == Precision::Bf16 && !tech.compression;
    bool havePacked = false;
    bool haveBf16 = false;
    for (std::size_t k = 0; k < layers_.size(); ++k) {
        const GnnLayer &layer = *layers_[k];
        // Layer k reads parity k+1 (or the input features) and writes
        // parity k, so consecutive layers never alias.
        const DenseMatrix &in = k == 0 ? inputFeatures
                                       : inferBufs_[(k + 1) % 2];
        DenseMatrix &out = inferBufs_[k % 2];
        out.reshape(n, layer.outFeatures());
        CompressedMatrix *packedPtr = nullptr;
        // Hidden activations (post-ReLU) are worth compressing; the
        // final logits layer has no consumer, so skip packing there.
        if (tech.compression && k + 1 < layers_.size()) {
            packedPtr = &inferPacked_[k % 2];
            packedPtr->reshape(n, layer.outFeatures());
        }
        // Likewise the logits layer never needs a bf16 copy.
        Bf16Matrix *outBf16 = nullptr;
        if (bf16Flow && k + 1 < layers_.size()) {
            outBf16 = &inferBf16_[k % 2];
            outBf16->reshape(n, layer.outFeatures());
        }
        const Bf16Matrix *inBf16 = nullptr;
        if (bf16Flow) {
            inBf16 = k == 0 ? &inputAsBf16(inputFeatures)
                            : (haveBf16 ? &inferBf16_[(k + 1) % 2]
                                        : nullptr);
        }
        layer.forwardInference(*graph_, spec_, in,
                               havePacked ? &inferPacked_[(k + 1) % 2]
                                          : nullptr,
                               inBf16, out, packedPtr, outBf16, order,
                               plan, tech);
        havePacked = packedPtr != nullptr;
        haveBf16 = outBf16 != nullptr;
    }
    return inferBufs_[(layers_.size() + 1) % 2];
}

const DenseMatrix &
GnnModel::trainForward(const DenseMatrix &inputFeatures,
                       const TechniqueConfig &tech)
{
    GRAPHITE_TRACE_SPAN("model.forward");
    GRAPHITE_ASSERT(inputFeatures.rows() == graph_->numVertices(),
                    "input row count mismatch");
    const auto order = localityOrderFor(tech);
    const PartitionPlan *plan = partitionPlanFor(tech);
    ++dropoutEpoch_;

    const bool bf16Flow =
        tech.precision == Precision::Bf16 && !tech.compression;
    for (std::size_t k = 0; k < layers_.size(); ++k) {
        const DenseMatrix &in =
            k == 0 ? inputFeatures : contexts_[k - 1].output;
        const CompressedMatrix *inPacked =
            (k > 0 && contexts_[k - 1].hasCompressed)
                ? &contexts_[k - 1].outputCompressed : nullptr;
        const Bf16Matrix *inBf16 = nullptr;
        if (bf16Flow) {
            inBf16 = k == 0 ? &inputAsBf16(inputFeatures)
                            : (contexts_[k - 1].hasBf16
                                   ? &contexts_[k - 1].outputBf16
                                   : nullptr);
        }
        layers_[k]->forwardTraining(*graph_, spec_, in, inPacked, inBf16,
                                    contexts_[k], order, plan, tech);
        // Inter-layer dropout on hidden activations; the packed copy is
        // rebuilt afterwards so the next layer sees the post-dropout
        // sparsity (which is exactly what makes compression pay off in
        // training — paper Section 2.2).
        if (k + 1 < layers_.size() && config_.dropoutRate > 0.0) {
            dropoutForward(contexts_[k].output, config_.dropoutRate,
                           config_.seed * 1315423911ull + dropoutEpoch_ +
                               k * 2654435761ull,
                           dropoutMasks_[k]);
            if (contexts_[k].hasCompressed)
                contexts_[k].outputCompressed.compressFrom(
                    contexts_[k].output);
        }
        // Bf16 copies are made *after* dropout so the next layer's
        // half-width gathers see the post-dropout activations (same
        // reasoning as the compressed rebuild above).
        contexts_[k].hasBf16 = bf16Flow && k + 1 < layers_.size();
        if (contexts_[k].hasBf16) {
            contexts_[k].outputBf16.reshape(contexts_[k].output.rows(),
                                            layers_[k]->outFeatures());
            contexts_[k].outputBf16.fromDense(contexts_[k].output);
        }
    }
    return contexts_.back().output;
}

void
GnnModel::trainBackward(DenseMatrix &lossGrad, const TechniqueConfig &tech)
{
    GRAPHITE_TRACE_SPAN("model.backward");
    const auto order = transposedLocalityOrderFor(tech);
    const PartitionPlan *transposedPlan = transposedPartitionPlanFor(tech);
    DenseMatrix *gradOut = &lossGrad;
    for (std::size_t k = layers_.size(); k-- > 0;) {
        const bool needGradIn = k > 0;
        // gradOut is gradBufs_[(k + 1) % 2] (or the caller's lossGrad
        // at the top layer), so writing parity k never aliases it.
        DenseMatrix *gradIn = needGradIn ? &gradBufs_[k % 2] : nullptr;
        layers_[k]->backward(transposed_, transposedSpec_, contexts_[k],
                             *gradOut, gradIn, order, transposedPlan,
                             tech);
        if (needGradIn) {
            // Undo the inter-layer dropout between layer k-1 and k.
            if (config_.dropoutRate > 0.0) {
                dropoutBackward(*gradIn, config_.dropoutRate,
                                dropoutMasks_[k - 1]);
            }
            gradOut = gradIn;
        }
    }
}

void
GnnModel::sgdStep(float learningRate)
{
    GRAPHITE_TRACE_SPAN("model.sgd");
    for (auto &layer : layers_)
        layer->sgdStep(learningRate);
}

std::vector<const void *>
GnnModel::workspacePointers() const
{
    std::vector<const void *> pointers;
    for (const LayerContext &ctx : contexts_) {
        pointers.push_back(ctx.agg.data());
        pointers.push_back(ctx.output.data());
        pointers.push_back(ctx.outputBf16.data());
    }
    for (const DenseMatrix &buf : gradBufs_)
        pointers.push_back(buf.data());
    for (const DenseMatrix &buf : inferBufs_)
        pointers.push_back(buf.data());
    for (const Bf16Matrix &buf : inferBf16_)
        pointers.push_back(buf.data());
    pointers.push_back(inputBf16_.data());
    return pointers;
}

} // namespace graphite
