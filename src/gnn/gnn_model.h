/**
 * @file
 * A K-layer GNN (paper Section 2.1): a stack of GnnLayer with a shared
 * aggregation spec (GCN or SAGE, Table 2), optional inter-layer dropout
 * during training, and the technique flags applied uniformly.
 */

#pragma once

#include <array>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "gnn/gnn_layer.h"
#include "graph/partition/partitioner.h"
#include "graph/reorder.h"

namespace graphite {

/** Hyper-parameters of a GnnModel. */
struct GnnModelConfig
{
    GnnKind kind = GnnKind::Gcn;
    /** Widths: [F_input, F_hidden..., F_output]; layers = size()-1. */
    std::vector<std::size_t> featureWidths;
    /** Dropout rate applied to hidden activations during training. */
    double dropoutRate = 0.5;
    std::uint64_t seed = 7;
};

/** Multi-layer GNN bound to one graph. */
class GnnModel
{
  public:
    /**
     * Build the model for @p graph: precomputes the aggregation spec,
     * the transposed graph + spec (for training), and initial weights.
     */
    GnnModel(const CsrGraph &graph, GnnModelConfig config);

    std::size_t numLayers() const { return layers_.size(); }
    GnnLayer &layer(std::size_t k) { return *layers_[k]; }
    const GnnLayer &layer(std::size_t k) const { return *layers_[k]; }

    const AggregationSpec &spec() const { return spec_; }
    const CsrGraph &graph() const { return *graph_; }

    /**
     * Full-batch inference. @p tech selects the kernel paths; with
     * compression on, hidden activations flow between layers in packed
     * form. Layer outputs ping-pong between two persistent buffers
     * sized to the widest layer, so repeated evaluate() calls stop
     * churning the allocator — which is why this is non-const.
     *
     * @return logits (|V| x F_output); a reference into model-owned
     *         workspace, valid until the next inference() call.
     */
    const DenseMatrix &inference(const DenseMatrix &inputFeatures,
                                 const TechniqueConfig &tech);

    /**
     * Full-batch training forward: keeps every layer's context alive
     * for the backward pass. Dropout (rate from the config) is applied
     * to hidden activations; masks are saved for the backward pass.
     *
     * @return reference to the last layer's output (the logits).
     */
    const DenseMatrix &trainForward(const DenseMatrix &inputFeatures,
                                    const TechniqueConfig &tech);

    /**
     * Training backward from @p lossGrad = dL/d(logits); fills every
     * layer's weight/bias gradients. @p lossGrad is consumed (clobbered
     * in place — it doubles as the last layer's dz buffer); inter-layer
     * gradients ping-pong between two persistent model-owned buffers,
     * so steady-state epochs allocate nothing. Honors tech.fusion
     * (fused backward kernel) and tech.locality (cached transposed
     * locality order) symmetrically with the forward pass.
     */
    void trainBackward(DenseMatrix &lossGrad, const TechniqueConfig &tech);

    /** SGD step on every layer. */
    void sgdStep(float learningRate);

    /**
     * The processing order used when tech.locality is on (computed
     * lazily from Algorithm 3 and cached — the cost is amortised over
     * training epochs, which is why the paper enables it for training
     * only).
     */
    std::span<const VertexId> localityOrderFor(const TechniqueConfig &tech)
        const;

    /**
     * Locality order of the *transposed* graph, used by the backward
     * aggregation (fused or not); cached like localityOrderFor — the
     * transpose has its own degree structure, so the forward order is
     * not reused.
     */
    std::span<const VertexId>
    transposedLocalityOrderFor(const TechniqueConfig &tech) const;

    /**
     * The cache-slice partition plan used when tech.shards >= 2, or
     * null for flat execution. Built lazily and cached keyed on
     * (shards, strategy) — like the locality orders, the partitioning
     * cost is amortised over epochs. The cache is append-only: the
     * returned pointer stays valid for the model's lifetime, even
     * across calls with different shard counts or strategies.
     */
    const PartitionPlan *partitionPlanFor(const TechniqueConfig &tech)
        const;

    /**
     * Partition plan of the *transposed* graph for the backward
     * aggregation, cached like partitionPlanFor.
     */
    const PartitionPlan *
    transposedPartitionPlanFor(const TechniqueConfig &tech) const;

    /**
     * Diagnostic/test hook: data pointers of every persistent training
     * and inference workspace buffer (layer contexts, ping-pong grad
     * and inference buffers). Steady-state epochs must keep these
     * stable — the zero-allocation contract the tests pin down.
     */
    std::vector<const void *> workspacePointers() const;

  private:
    const CsrGraph *graph_;
    GnnModelConfig config_;
    AggregationSpec spec_;
    CsrGraph transposed_;
    AggregationSpec transposedSpec_;
    std::vector<std::unique_ptr<GnnLayer>> layers_;

    // Training state.
    std::vector<LayerContext> contexts_;
    std::vector<std::vector<std::uint64_t>> dropoutMasks_;
    /** One lazily-built partition plan, keyed on (shards, strategy). */
    struct CachedPartitionPlan
    {
        std::size_t shards;
        PartitionStrategy strategy;
        PartitionPlan plan;
    };

    /**
     * Guards the lazily-built locality orders and partition-plan
     * caches below, so concurrent read-only callers build each entry
     * at most once. The returned span/pointer is then read unlocked
     * during kernel execution, which is safe because the caches are
     * append-only — an entry, once built, is never moved or destroyed
     * for the model's lifetime, so a fill for a new key cannot race
     * another thread still reading an old one.
     */
    mutable Mutex cacheMutex_;
    mutable ProcessingOrder cachedLocalityOrder_
        GRAPHITE_GUARDED_BY(cacheMutex_);
    mutable ProcessingOrder cachedTransposedOrder_
        GRAPHITE_GUARDED_BY(cacheMutex_);
    /** Append-only (shards, strategy)-keyed plan caches. @{ */
    mutable std::vector<std::unique_ptr<CachedPartitionPlan>> planCache_
        GRAPHITE_GUARDED_BY(cacheMutex_);
    mutable std::vector<std::unique_ptr<CachedPartitionPlan>>
        transposedPlanCache_ GRAPHITE_GUARDED_BY(cacheMutex_);
    /** @} */
    std::uint64_t dropoutEpoch_ = 0;
    /**
     * Inter-layer gradient ping-pong: layer k writes gradBufs_[k % 2]
     * while reading the other parity (or the caller's lossGrad at the
     * top), so no layer ever reads the buffer it writes.
     */
    std::array<DenseMatrix, 2> gradBufs_;
    // Inference workspace (see inference()).
    std::array<DenseMatrix, 2> inferBufs_;
    std::array<CompressedMatrix, 2> inferPacked_;
    /** Bf16 inter-layer ping-pong of the inference path. */
    std::array<Bf16Matrix, 2> inferBf16_;
    /**
     * Layer 0's gather source under the bf16 technique: a one-time
     * rounding of the caller's input features, keyed on their data
     * pointer and shape. Assumes the input matrix is not mutated in
     * place between calls (true of every driver here — features are
     * loaded once per run); pass a different matrix object to force a
     * rebuild.
     */
    Bf16Matrix inputBf16_;
    const void *inputBf16Key_ = nullptr;
    std::size_t inputBf16Rows_ = 0;
    std::size_t inputBf16Cols_ = 0;

    /** Round @p inputFeatures into inputBf16_ if the cache is stale. */
    const Bf16Matrix &inputAsBf16(const DenseMatrix &inputFeatures);
};

} // namespace graphite
