/**
 * @file
 * Model checkpointing: save/load a GnnModel's trainable parameters to a
 * small self-describing binary format, so trained models survive
 * process restarts and can be shipped between the training and
 * inference examples.
 *
 * Format (little-endian):
 *   magic "GRPH" | u32 version | u32 numLayers |
 *   per layer: u64 inFeatures | u64 outFeatures | u8 relu |
 *              weights row-major (logical cols only) | bias
 */

#pragma once

#include <string>

#include "gnn/gnn_model.h"

namespace graphite {

/** Serialize @p model's parameters to @p path. fatal() on I/O errors. */
void saveModel(const GnnModel &model, const std::string &path);

/**
 * Load parameters saved by saveModel() into @p model. The layer count
 * and widths must match the model's architecture; fatal() otherwise.
 */
void loadModel(GnnModel &model, const std::string &path);

/** True if @p path exists and starts with the checkpoint magic. */
bool isCheckpointFile(const std::string &path);

} // namespace graphite
