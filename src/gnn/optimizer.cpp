#include "gnn/optimizer.h"

#include <cmath>

#include "common/assert.h"
#include "parallel/thread_pool.h"

namespace graphite {

AdamOptimizer::AdamOptimizer(GnnModel &model, AdamConfig config)
    : model_(model), config_(config)
{
    state_.resize(model.numLayers());
    for (std::size_t k = 0; k < model.numLayers(); ++k) {
        const GnnLayer &layer = model.layer(k);
        state_[k].weightM =
            DenseMatrix(layer.inFeatures(), layer.outFeatures());
        state_[k].weightV =
            DenseMatrix(layer.inFeatures(), layer.outFeatures());
        state_[k].biasM.assign(layer.outFeatures(), 0.0f);
        state_[k].biasV.assign(layer.outFeatures(), 0.0f);
    }
}

void
AdamOptimizer::step()
{
    ++steps_;
    const double t = static_cast<double>(steps_);
    const float correction1 =
        1.0f / (1.0f - static_cast<float>(std::pow(config_.beta1, t)));
    const float correction2 =
        1.0f / (1.0f - static_cast<float>(std::pow(config_.beta2, t)));

    for (std::size_t k = 0; k < model_.numLayers(); ++k) {
        GnnLayer &layer = model_.layer(k);
        LayerState &state = state_[k];
        DenseMatrix &weights = layer.weights();
        const DenseMatrix &grad = layer.weightGrad();

        parallelFor(0, weights.rows(), 32,
                    [&](std::size_t begin, std::size_t end,
                        std::size_t) {
            for (std::size_t r = begin; r < end; ++r) {
                Feature *w = weights.row(r);
                const Feature *g = grad.row(r);
                Feature *m = state.weightM.row(r);
                Feature *v = state.weightV.row(r);
                for (std::size_t c = 0; c < weights.cols(); ++c) {
                    Feature gradient = g[c];
                    if (config_.weightDecay != 0.0f)
                        gradient += config_.weightDecay * w[c];
                    m[c] = config_.beta1 * m[c] +
                           (1.0f - config_.beta1) * gradient;
                    v[c] = config_.beta2 * v[c] +
                           (1.0f - config_.beta2) * gradient * gradient;
                    const float mHat = m[c] * correction1;
                    const float vHat = v[c] * correction2;
                    w[c] -= config_.learningRate * mHat /
                            (std::sqrt(vHat) + config_.epsilon);
                }
            }
        });

        auto &bias = layer.bias();
        const auto biasGrad = layer.biasGrad();
        for (std::size_t c = 0; c < bias.size(); ++c) {
            const Feature gradient = biasGrad[c];
            state.biasM[c] = config_.beta1 * state.biasM[c] +
                             (1.0f - config_.beta1) * gradient;
            state.biasV[c] = config_.beta2 * state.biasV[c] +
                             (1.0f - config_.beta2) * gradient * gradient;
            const float mHat = state.biasM[c] * correction1;
            const float vHat = state.biasV[c] * correction2;
            bias[c] -= config_.learningRate * mHat /
                       (std::sqrt(vHat) + config_.epsilon);
        }
    }
}

} // namespace graphite
