#include "gnn/serialization.h"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "common/assert.h"

namespace graphite {

namespace {

constexpr char kMagic[4] = {'G', 'R', 'P', 'H'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void
writeScalar(std::ofstream &out, T value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
T
readScalar(std::ifstream &in)
{
    T value{};
    in.read(reinterpret_cast<char *>(&value), sizeof(T));
    return value;
}

} // namespace

void
saveModel(const GnnModel &model, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("cannot open checkpoint '%s' for writing", path.c_str());
    out.write(kMagic, sizeof(kMagic));
    writeScalar<std::uint32_t>(out, kVersion);
    writeScalar<std::uint32_t>(
        out, static_cast<std::uint32_t>(model.numLayers()));
    for (std::size_t k = 0; k < model.numLayers(); ++k) {
        const GnnLayer &layer = model.layer(k);
        writeScalar<std::uint64_t>(out, layer.inFeatures());
        writeScalar<std::uint64_t>(out, layer.outFeatures());
        writeScalar<std::uint8_t>(out, layer.hasRelu() ? 1 : 0);
        const DenseMatrix &weights = layer.weights();
        for (std::size_t r = 0; r < weights.rows(); ++r) {
            out.write(reinterpret_cast<const char *>(weights.row(r)),
                      weights.cols() * sizeof(Feature));
        }
        const auto &bias = layer.bias();
        out.write(reinterpret_cast<const char *>(bias.data()),
                  bias.size() * sizeof(Feature));
    }
    if (!out)
        fatal("write error on checkpoint '%s'", path.c_str());
}

void
loadModel(GnnModel &model, const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open checkpoint '%s'", path.c_str());
    char magic[4];
    in.read(magic, sizeof(magic));
    if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        fatal("'%s' is not a graphite checkpoint", path.c_str());
    const auto version = readScalar<std::uint32_t>(in);
    if (version != kVersion)
        fatal("unsupported checkpoint version %u", version);
    const auto layers = readScalar<std::uint32_t>(in);
    if (layers != model.numLayers())
        fatal("checkpoint has %u layers, model has %zu", layers,
              model.numLayers());
    for (std::size_t k = 0; k < model.numLayers(); ++k) {
        GnnLayer &layer = model.layer(k);
        const auto inF = readScalar<std::uint64_t>(in);
        const auto outF = readScalar<std::uint64_t>(in);
        const auto relu = readScalar<std::uint8_t>(in);
        if (inF != layer.inFeatures() || outF != layer.outFeatures() ||
            (relu != 0) != layer.hasRelu()) {
            fatal("checkpoint layer %zu shape mismatch", k);
        }
        DenseMatrix &weights = layer.weights();
        for (std::size_t r = 0; r < weights.rows(); ++r) {
            in.read(reinterpret_cast<char *>(weights.row(r)),
                    weights.cols() * sizeof(Feature));
        }
        auto &bias = layer.bias();
        in.read(reinterpret_cast<char *>(bias.data()),
                bias.size() * sizeof(Feature));
    }
    if (!in)
        fatal("truncated checkpoint '%s'", path.c_str());
}

bool
isCheckpointFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    char magic[4];
    in.read(magic, sizeof(magic));
    return in && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
}

} // namespace graphite
