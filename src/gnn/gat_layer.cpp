#include "gnn/gat_layer.h"

#include <cmath>

#include "common/assert.h"
#include "common/rng.h"
#include "parallel/thread_pool.h"
#include "tensor/gemm.h"

namespace graphite {

namespace {

float
leakyRelu(float x, float slope)
{
    return x > 0.0f ? x : slope * x;
}

float
elu(float x)
{
    return x > 0.0f ? x : std::expm1(x);
}

} // namespace

GatLayer::GatLayer(std::size_t inFeatures, std::size_t outFeatures,
                   float negativeSlope)
    : inFeatures_(inFeatures), outFeatures_(outFeatures),
      negativeSlope_(negativeSlope), weights_(inFeatures, outFeatures),
      attnSrc_(outFeatures, 0.0f), attnDst_(outFeatures, 0.0f)
{
}

void
GatLayer::initWeights(std::uint64_t seed)
{
    const float limit = std::sqrt(
        6.0f / static_cast<float>(inFeatures_ + outFeatures_));
    weights_.fillUniform(-limit, limit, seed);
    Rng rng(seed + 1);
    for (std::size_t c = 0; c < outFeatures_; ++c) {
        attnSrc_[c] = (2.0f * rng.uniformFloat() - 1.0f) * limit;
        attnDst_[c] = (2.0f * rng.uniformFloat() - 1.0f) * limit;
    }
}

DenseMatrix
GatLayer::project(const DenseMatrix &h) const
{
    GRAPHITE_ASSERT(h.cols() == inFeatures_, "input width mismatch");
    DenseMatrix z(h.rows(), outFeatures_);
    gemm(GemmMode::NN, h, weights_, z);
    return z;
}

AggregationSpec
GatLayer::attentionSpec(const CsrGraph &graph, const DenseMatrix &z) const
{
    const VertexId n = graph.numVertices();
    GRAPHITE_ASSERT(z.rows() == n, "row count mismatch");
    GRAPHITE_ASSERT(z.cols() == outFeatures_, "width mismatch");

    // Per-vertex attention projections: sSrc[u] = aSrcᵀ z_u (its score
    // as a *source* of messages) and sDst[v] = aDstᵀ z_v (as a
    // destination). The per-edge logit is their sum — this is the
    // SDDMM-style decomposition that makes GAT attention O(|V|F + |E|).
    std::vector<Feature> srcScore(n);
    std::vector<Feature> dstScore(n);
    parallelFor(0, n, 256,
                [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t v = begin; v < end; ++v) {
            const Feature *row = z.row(v);
            Feature s = 0.0f;
            Feature d = 0.0f;
            #pragma omp simd reduction(+ : s, d)
            for (std::size_t c = 0; c < outFeatures_; ++c) {
                s += attnSrc_[c] * row[c];
                d += attnDst_[c] * row[c];
            }
            srcScore[v] = s;
            dstScore[v] = d;
        }
    });

    AggregationSpec spec;
    spec.edgeFactors.resize(graph.numEdges());
    spec.selfFactors.resize(n);
    parallelFor(0, n, 128,
                [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t vi = begin; vi < end; ++vi) {
            const auto v = static_cast<VertexId>(vi);
            // Numerically-stable softmax over N(v) ∪ {v}.
            const float selfLogit = leakyRelu(
                dstScore[v] + srcScore[v], negativeSlope_);
            float maxLogit = selfLogit;
            for (EdgeId e = graph.rowBegin(v); e < graph.rowEnd(v);
                 ++e) {
                const float logit = leakyRelu(
                    dstScore[v] + srcScore[graph.colIdx()[e]],
                    negativeSlope_);
                maxLogit = std::max(maxLogit, logit);
            }
            double denom = std::exp(double{selfLogit} - maxLogit);
            for (EdgeId e = graph.rowBegin(v); e < graph.rowEnd(v);
                 ++e) {
                const float logit = leakyRelu(
                    dstScore[v] + srcScore[graph.colIdx()[e]],
                    negativeSlope_);
                denom += std::exp(double{logit} - maxLogit);
            }
            spec.selfFactors[v] = static_cast<Feature>(
                std::exp(double{selfLogit} - maxLogit) / denom);
            for (EdgeId e = graph.rowBegin(v); e < graph.rowEnd(v);
                 ++e) {
                const float logit = leakyRelu(
                    dstScore[v] + srcScore[graph.colIdx()[e]],
                    negativeSlope_);
                spec.edgeFactors[e] = static_cast<Feature>(
                    std::exp(double{logit} - maxLogit) / denom);
            }
        }
    });
    return spec;
}

DenseMatrix
GatLayer::forward(const CsrGraph &graph, const DenseMatrix &h) const
{
    DenseMatrix z = project(h);
    const AggregationSpec attention = attentionSpec(graph, z);
    DenseMatrix out(graph.numVertices(), outFeatures_);
    aggregateBasic(graph, z, out, attention);
    parallelFor(0, out.rows(), 256,
                [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t r = begin; r < end; ++r) {
            Feature *row = out.row(r);
            for (std::size_t c = 0; c < outFeatures_; ++c)
                row[c] = elu(row[c]);
        }
    });
    return out;
}

DenseMatrix
GatLayer::forwardReference(const CsrGraph &graph,
                           const DenseMatrix &h) const
{
    // Naive triple-checked math: per vertex, recompute the logits and
    // softmax directly from z and aggregate with plain loops.
    DenseMatrix z = project(h);
    const VertexId n = graph.numVertices();
    DenseMatrix out(n, outFeatures_);
    for (VertexId v = 0; v < n; ++v) {
        auto logitOf = [&](VertexId u) {
            float dst = 0.0f;
            float src = 0.0f;
            for (std::size_t c = 0; c < outFeatures_; ++c) {
                dst += attnDst_[c] * z.at(v, c);
                src += attnSrc_[c] * z.at(u, c);
            }
            return leakyRelu(dst + src, negativeSlope_);
        };
        float maxLogit = logitOf(v);
        for (VertexId u : graph.neighbors(v))
            maxLogit = std::max(maxLogit, logitOf(u));
        double denom = std::exp(double{logitOf(v)} - maxLogit);
        for (VertexId u : graph.neighbors(v))
            denom += std::exp(double{logitOf(u)} - maxLogit);
        for (std::size_t c = 0; c < outFeatures_; ++c) {
            double acc = std::exp(double{logitOf(v)} - maxLogit) /
                         denom * z.at(v, c);
            for (VertexId u : graph.neighbors(v)) {
                acc += std::exp(double{logitOf(u)} - maxLogit) / denom *
                       z.at(u, c);
            }
            out.at(v, c) = elu(static_cast<Feature>(acc));
        }
    }
    return out;
}

} // namespace graphite
