#include "gnn/gnn_layer.h"

#include <cmath>

#include "common/assert.h"
#include "common/rng.h"
#include "obs/trace.h"
#include "kernels/fused_layer.h"
#include "kernels/shard_exec.h"
#include "parallel/thread_pool.h"
#include "tensor/gemm.h"
#include "tensor/row_ops.h"

namespace graphite {

AggregationSpec
transposeSpec(const CsrGraph &graph, const AggregationSpec &spec,
              const CsrGraph &transposed)
{
    AggregationSpec out;
    out.selfFactors = spec.selfFactors;
    if (spec.edgeFactors.empty())
        return out;
    GRAPHITE_ASSERT(spec.edgeFactors.size() == graph.numEdges(),
                    "edge factor count mismatch");
    out.edgeFactors.resize(graph.numEdges());
    // Walk original edges v->u in the same order CsrGraph::transposed()
    // emits them, so cursor positions line up with the transposed CSR.
    std::vector<EdgeId> cursor(transposed.rowPtr().begin(),
                               transposed.rowPtr().end() - 1);
    const VertexId n = graph.numVertices();
    for (VertexId v = 0; v < n; ++v) {
        for (EdgeId e = graph.rowBegin(v); e < graph.rowEnd(v); ++e) {
            const VertexId u = graph.colIdx()[e];
            out.edgeFactors[cursor[u]++] = spec.edgeFactors[e];
        }
    }
    return out;
}

GnnLayer::GnnLayer(std::size_t inFeatures, std::size_t outFeatures,
                   bool relu)
    : inFeatures_(inFeatures), outFeatures_(outFeatures), relu_(relu),
      weights_(inFeatures, outFeatures), bias_(outFeatures, 0.0f),
      weightGrad_(inFeatures, outFeatures), biasGrad_(outFeatures, 0.0f)
{
}

void
GnnLayer::initWeights(std::uint64_t seed)
{
    const float limit = std::sqrt(
        6.0f / static_cast<float>(inFeatures_ + outFeatures_));
    weights_.fillUniform(-limit, limit, seed);
    std::fill(bias_.begin(), bias_.end(), 0.0f);
    ++weightsVersion_;
}

const GemmPlan &
GnnLayer::packedWeights(Precision precision) const
{
    const auto slot = static_cast<std::size_t>(precision);
    GRAPHITE_ASSERT(slot < kNumPrecisions, "unknown precision");
    MutexLock lock(planMutex_);
    if (weightsAliased_ || packedNNVersion_[slot] != weightsVersion_) {
        packedNN_[slot].pack(GemmMode::NN, weights_, precision);
        packedNNVersion_[slot] = weightsVersion_;
    }
    return packedNN_[slot];
}

const GemmPlan &
GnnLayer::packedWeightsTransposed(Precision precision) const
{
    const auto slot = static_cast<std::size_t>(precision);
    GRAPHITE_ASSERT(slot < kNumPrecisions, "unknown precision");
    MutexLock lock(planMutex_);
    if (weightsAliased_ || packedNTVersion_[slot] != weightsVersion_) {
        packedNT_[slot].pack(GemmMode::NT, weights_, precision);
        packedNTVersion_[slot] = weightsVersion_;
    }
    return packedNT_[slot];
}

void
GnnLayer::forwardInference(const CsrGraph &graph,
                           const AggregationSpec &spec,
                           const DenseMatrix &in,
                           const CompressedMatrix *inCompressed,
                           const Bf16Matrix *inBf16, DenseMatrix &out,
                           CompressedMatrix *outCompressed,
                           Bf16Matrix *outBf16,
                           std::span<const VertexId> order,
                           const PartitionPlan *plan,
                           const TechniqueConfig &tech) const
{
    GRAPHITE_TRACE_SPAN("layer.forward");
    const UpdateOp update{&weights_, bias_, relu_,
                          &packedWeights(tech.precision), tech.precision};
    const bool packedIn = tech.compression && inCompressed != nullptr;
    const bool bf16In = !packedIn &&
                        tech.precision == Precision::Bf16 &&
                        inBf16 != nullptr;
    const bool sharded = plan != nullptr && plan->numShards() > 1;
    if (sharded) {
        GRAPHITE_ASSERT(plan->graph == &graph,
                        "partition plan built for another graph");
        // Compressed gathers have no sharded kernel: run the global
        // kernels over the shard-major order (locality still applies).
        if (packedIn)
            order = plan->shardMajorOrder;
    }
    const bool shardedKernels = sharded && !packedIn;
    const bool delayed = shardedKernels && tech.delayedHalo;
    // Fusion has no delayed-halo variant (the replica phase breaks the
    // per-block pipeline); delayed runs take the unfused path below.
    if (tech.fusion && !delayed) {
        if (packedIn) {
            fusedLayerInferenceCompressed(graph, *inCompressed, spec,
                                          update, out, outCompressed,
                                          order, tech.fused);
        } else if (shardedKernels) {
            if (bf16In)
                fusedLayerInferenceShardedBf16(*plan, *inBf16, spec,
                                               update, out, tech.fused,
                                               outBf16);
            else
                fusedLayerInferenceSharded(*plan, in, spec, update, out,
                                           tech.fused, outBf16);
            outBf16 = nullptr; // converted write-side by the kernel
            if (outCompressed)
                outCompressed->compressFrom(out);
            return;
        } else if (bf16In) {
            fusedLayerInferenceBf16(graph, *inBf16, spec, update, out,
                                    order, tech.fused, outBf16);
            outBf16 = nullptr; // converted write-side by the kernel
        } else {
            fusedLayerInference(graph, in, spec, update, out, order,
                                tech.fused, outBf16);
            outBf16 = nullptr;
        }
        if (outCompressed)
            outCompressed->compressFrom(out);
        if (outBf16)
            outBf16->fromDense(out);
        return;
    }
    // Unfused path: aggregation materialises a^k, then one big GEMM.
    DenseMatrix agg(graph.numVertices(), inFeatures_);
    if (packedIn)
        aggregateCompressed(graph, *inCompressed, agg, spec, order,
                            tech.agg);
    else if (shardedKernels && bf16In)
        aggregateShardedBf16(*plan, *inBf16, agg, spec, delayed, tech.agg);
    else if (shardedKernels)
        aggregateSharded(*plan, in, agg, spec, delayed, tech.agg);
    else if (bf16In)
        aggregateBf16(graph, *inBf16, agg, spec, order, tech.agg);
    else
        aggregateBasic(graph, in, agg, spec, order, tech.agg);
    gemm(GemmMode::NN, agg, packedWeights(tech.precision), out);
    if (!bias_.empty())
        addBias(out, bias_);
    if (relu_)
        reluForward(out);
    if (outCompressed)
        outCompressed->compressFrom(out);
    if (outBf16)
        outBf16->fromDense(out);
}

void
GnnLayer::forwardTraining(const CsrGraph &graph, const AggregationSpec &spec,
                          const DenseMatrix &in,
                          const CompressedMatrix *inCompressed,
                          const Bf16Matrix *inBf16, LayerContext &ctx,
                          std::span<const VertexId> order,
                          const PartitionPlan *plan,
                          const TechniqueConfig &tech) const
{
    GRAPHITE_TRACE_SPAN("layer.forward");
    const VertexId n = graph.numVertices();
    if (ctx.agg.rows() != n || ctx.agg.cols() != inFeatures_)
        ctx.agg.resize(n, inFeatures_);
    if (ctx.output.rows() != n || ctx.output.cols() != outFeatures_)
        ctx.output.resize(n, outFeatures_);
    ctx.hasCompressed = tech.compression;
    CompressedMatrix *outCompressed = nullptr;
    if (tech.compression) {
        if (ctx.outputCompressed.rows() != n ||
            ctx.outputCompressed.cols() != outFeatures_) {
            ctx.outputCompressed = CompressedMatrix(n, outFeatures_);
        }
        outCompressed = &ctx.outputCompressed;
    }

    const UpdateOp update{&weights_, bias_, relu_,
                          &packedWeights(tech.precision), tech.precision};
    const bool packedIn = tech.compression && inCompressed != nullptr;
    const bool bf16In = !packedIn &&
                        tech.precision == Precision::Bf16 &&
                        inBf16 != nullptr;
    const bool sharded = plan != nullptr && plan->numShards() > 1;
    if (sharded) {
        GRAPHITE_ASSERT(plan->graph == &graph,
                        "partition plan built for another graph");
        if (packedIn)
            order = plan->shardMajorOrder;
    }
    const bool shardedKernels = sharded && !packedIn;
    const bool delayed = shardedKernels && tech.delayedHalo;
    if (tech.fusion && !delayed) {
        if (packedIn) {
            fusedLayerTrainingCompressed(graph, *inCompressed, spec,
                                         update, ctx.agg, ctx.output,
                                         outCompressed, order, tech.fused);
        } else if (shardedKernels) {
            if (bf16In)
                fusedLayerTrainingShardedBf16(*plan, *inBf16, spec,
                                              update, ctx.agg, ctx.output,
                                              tech.fused);
            else
                fusedLayerTrainingSharded(*plan, in, spec, update,
                                          ctx.agg, ctx.output,
                                          tech.fused);
            if (outCompressed)
                outCompressed->compressFrom(ctx.output);
        } else if (bf16In) {
            fusedLayerTrainingBf16(graph, *inBf16, spec, update, ctx.agg,
                                   ctx.output, order, tech.fused);
            if (outCompressed)
                outCompressed->compressFrom(ctx.output);
        } else {
            fusedLayerTraining(graph, in, spec, update, ctx.agg,
                               ctx.output, order, tech.fused);
            if (outCompressed)
                outCompressed->compressFrom(ctx.output);
        }
        return;
    }
    if (packedIn)
        aggregateCompressed(graph, *inCompressed, ctx.agg, spec, order,
                            tech.agg);
    else if (shardedKernels && bf16In)
        aggregateShardedBf16(*plan, *inBf16, ctx.agg, spec, delayed,
                             tech.agg);
    else if (shardedKernels)
        aggregateSharded(*plan, in, ctx.agg, spec, delayed, tech.agg);
    else if (bf16In)
        aggregateBf16(graph, *inBf16, ctx.agg, spec, order, tech.agg);
    else
        aggregateBasic(graph, in, ctx.agg, spec, order, tech.agg);
    gemm(GemmMode::NN, ctx.agg, packedWeights(tech.precision), ctx.output);
    if (!bias_.empty())
        addBias(ctx.output, bias_);
    if (relu_)
        reluForward(ctx.output);
    if (outCompressed)
        outCompressed->compressFrom(ctx.output);
}

void
GnnLayer::backward(const CsrGraph &transposed,
                   const AggregationSpec &transposedSpec,
                   const LayerContext &ctx, DenseMatrix &gradOut,
                   DenseMatrix *gradIn, std::span<const VertexId> order,
                   const PartitionPlan *transposedPlan,
                   const TechniqueConfig &tech)
{
    GRAPHITE_TRACE_SPAN("layer.backward");
    GRAPHITE_ASSERT(gradOut.rows() == ctx.output.rows() &&
                        gradOut.cols() == outFeatures_,
                    "gradOut shape mismatch");
    // dz = dh ⊙ ReLU'(h); ctx.output is post-activation so zeros mark
    // clipped positions.
    if (relu_)
        reluBackward(ctx.output, gradOut);

    // dW = aᵀ·dz and db = colsum(dz). At bf16 both GEMM operands are
    // rounded at pack time; accumulation stays fp32.
    dwPlanScratch_.pack(GemmMode::TN, gradOut, tech.precision);
    gemm(GemmMode::TN, ctx.agg, dwPlanScratch_, weightGrad_,
         GemmAccumulate::Overwrite);
    columnSum(gradOut, biasGrad_, colSumScratch_);

    if (!gradIn)
        return;
    const bool sharded = transposedPlan != nullptr &&
                         transposedPlan->numShards() > 1;
    if (sharded) {
        GRAPHITE_ASSERT(transposedPlan->graph == &transposed,
                        "partition plan built for another graph");
    }
    const bool delayed = sharded && tech.delayedHalo;
    // dh_prev = Aggᵀ(dz·Wᵀ) over the transposed graph.
    gradIn->reshape(gradOut.rows(), inFeatures_);
    if (tech.fusion && !delayed) {
        // Fused: per-block (Aggᵀ dz)·Wᵀ, dAgg never materialised (see
        // kernels/fused_layer.h on the commuted fusion direction).
        if (tech.precision == Precision::Bf16) {
            // Round dz once; the fused kernel then gathers it at half
            // width over the transposed graph — gradients themselves
            // keep accumulating in fp32.
            dzBf16Scratch_.reshape(gradOut.rows(), outFeatures_);
            dzBf16Scratch_.fromDense(gradOut);
            if (sharded)
                fusedLayerBackwardShardedBf16(
                    *transposedPlan, dzBf16Scratch_, transposedSpec,
                    packedWeightsTransposed(tech.precision), *gradIn,
                    tech.fused);
            else
                fusedLayerBackwardBf16(
                    transposed, dzBf16Scratch_, transposedSpec,
                    packedWeightsTransposed(tech.precision), *gradIn,
                    order, tech.fused);
        } else if (sharded) {
            fusedLayerBackwardSharded(*transposedPlan, gradOut,
                                      transposedSpec,
                                      packedWeightsTransposed(), *gradIn,
                                      tech.fused);
        } else {
            fusedLayerBackward(transposed, gradOut, transposedSpec,
                               packedWeightsTransposed(), *gradIn, order,
                               tech.fused);
        }
        return;
    }
    dAggScratch_.reshape(gradOut.rows(), inFeatures_);
    gemm(GemmMode::NT, gradOut, packedWeightsTransposed(tech.precision),
         dAggScratch_);
    // dAgg rows stay fp32 here: converting a transient scratch to bf16
    // would add a full extra pass for no stored-traffic win.
    if (sharded)
        aggregateSharded(*transposedPlan, dAggScratch_, *gradIn,
                         transposedSpec, delayed, tech.agg);
    else
        aggregateBasic(transposed, dAggScratch_, *gradIn, transposedSpec,
                       order, tech.agg);
}

void
GnnLayer::sgdStep(float learningRate)
{
    GRAPHITE_TRACE_SPAN("layer.sgd");
    parallelFor(0, weights_.rows(), 64,
                [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t r = begin; r < end; ++r) {
            Feature *w = weights_.row(r);
            const Feature *g = weightGrad_.row(r);
            #pragma omp simd
            for (std::size_t c = 0; c < outFeatures_; ++c)
                w[c] -= learningRate * g[c];
        }
    });
    for (std::size_t c = 0; c < outFeatures_; ++c)
        bias_[c] -= learningRate * biasGrad_[c];
    ++weightsVersion_;
}

} // namespace graphite
