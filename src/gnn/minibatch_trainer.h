/**
 * @file
 * Sampled mini-batch training — the GPU-era regime the paper's Figure 2
 * profiles (and argues against for CPUs). Each step samples a K-hop
 * neighborhood for a batch of seed vertices (Eq. 3), gathers the input
 * features, runs the layer stack over the bipartite blocks, and updates
 * the parameters from the batch loss.
 *
 * This trainer exists (a) to drive the Figure 2 experiment with a real
 * end-to-end training loop and (b) as the baseline a downstream user
 * would compare full-batch training against.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "gnn/gnn_layer.h"
#include "sampling/neighbor_sampler.h"

namespace graphite {

/** Hyper-parameters of a sampled training run. */
struct MiniBatchConfig
{
    std::size_t batchSize = 1024;
    /** Per-layer sampling fan-outs, innermost layer first. */
    std::vector<VertexId> fanouts = {10, 10};
    float learningRate = 0.05f;
    std::uint64_t seed = 1;
    /**
     * GEMM precision. At Bf16 the per-block update and backward GEMMs
     * run through the bf16 micro-kernel; the per-batch feature gathers
     * stay fp32, because converting a transient sampled block to bf16
     * costs a pass over data touched exactly once — nothing amortises
     * it (unlike full-batch activations, reread every epoch).
     */
    Precision precision = Precision::Fp32;
};

/** Per-epoch record with the Figure 2 cost split. */
struct MiniBatchEpochStats
{
    double loss = 0.0;
    /** Seconds spent sampling + building blocks + gathering features. */
    double samplingSeconds = 0.0;
    /** Seconds spent in the GNN layer compute. */
    double layerSeconds = 0.0;
};

/**
 * Sampled-GNN trainer over a stack of GnnLayers (owned here — the
 * full-batch GnnModel is graph-bound and unsuitable for per-batch
 * block graphs).
 */
class MiniBatchTrainer
{
  public:
    /**
     * @param featureWidths [F_input, hidden..., numClasses]; the layer
     *        count must equal config.fanouts.size().
     */
    MiniBatchTrainer(const CsrGraph &graph, const DenseMatrix &features,
                     std::vector<std::int32_t> labels,
                     std::vector<std::size_t> featureWidths,
                     GnnKind kind, MiniBatchConfig config);

    /** Run one epoch over shuffled mini-batches. */
    MiniBatchEpochStats trainEpoch();

    /** Mean loss of one forward pass over every batch (no update). */
    double evaluateLoss();

    GnnLayer &layer(std::size_t k) { return *layers_[k]; }
    std::size_t numLayers() const { return layers_.size(); }

    /**
     * Borrowed layer stack, innermost first — the handoff from training
     * to the serving layer (serve::InferenceServer), which evaluates
     * the trained parameters without owning them. Pointers stay valid
     * for the trainer's lifetime.
     */
    std::vector<GnnLayer *>
    layerPointers()
    {
        std::vector<GnnLayer *> out;
        out.reserve(layers_.size());
        for (const auto &l : layers_)
            out.push_back(l.get());
        return out;
    }

  private:
    /** Forward one mini-batch; returns the loss and fills contexts. */
    double forwardBatch(const MiniBatch &batch, DenseMatrix &lossGrad);
    void backwardBatch(const MiniBatch &batch, DenseMatrix lossGrad);

    /** Aggregation spec of one sampled bipartite block (mean). */
    static AggregationSpec blockSpec(const SampledBlock &block);

    const CsrGraph &graph_;
    const DenseMatrix &features_;
    std::vector<std::int32_t> labels_;
    MiniBatchConfig config_;
    GnnKind kind_;
    std::vector<std::unique_ptr<GnnLayer>> layers_;
    Rng rng_;

    // Per-batch forward state, innermost layer first.
    struct BlockContext
    {
        DenseMatrix input;  ///< gathered/propagated source features
        DenseMatrix agg;    ///< block aggregation output
        DenseMatrix output; ///< post-activation destination features
    };
    std::vector<BlockContext> contexts_;
};

} // namespace graphite
