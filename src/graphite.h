/**
 * @file
 * Umbrella header: include everything a Graphite user typically needs.
 *
 *   #include "graphite.h"
 *
 * Fine-grained headers remain available for compile-time-sensitive
 * consumers; this exists for examples, tools and quick starts.
 */

#pragma once

// Common substrate.
#include "common/aligned_buffer.h"
#include "common/logging.h"
#include "common/options.h"
#include "common/rng.h"
#include "common/timer.h"
#include "common/types.h"

// Graphs.
#include "graph/csr_graph.h"
#include "graph/datasets.h"
#include "graph/edge_list_io.h"
#include "graph/binary_io.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "graph/graph_stats.h"
#include "graph/reorder.h"

// Tensors and kernels.
#include "compress/compressed_matrix.h"
#include "kernels/aggregation.h"
#include "kernels/fused_layer.h"
#include "tensor/bf16_matrix.h"
#include "tensor/dense_matrix.h"
#include "tensor/gemm.h"
#include "tensor/row_ops.h"
#include "tensor/spmm.h"

// Models and training.
#include "gnn/gat_layer.h"
#include "gnn/gnn_model.h"
#include "gnn/minibatch_trainer.h"
#include "gnn/optimizer.h"
#include "gnn/serialization.h"
#include "gnn/trainer.h"
#include "sampling/neighbor_sampler.h"

// Hardware model.
#include "dma/descriptor.h"
#include "dma/dma_engine.h"
#include "dma/pipelined_runner.h"
#include "sim/machine.h"
#include "sim/workloads.h"
