/**
 * @file
 * Synthetic graph generators.
 *
 * The paper evaluates on ogbn-products, wikipedia, ogbn-papers100M and
 * twitter. Those datasets are not redistributable/downloadable in this
 * environment, so we generate analogues whose first-order structural
 * properties — average degree, degree skew (power law vs. flatter), and
 * footprint relative to cache capacity — match each dataset's role in the
 * evaluation (see DESIGN.md Section 2 for the substitution argument).
 */

#pragma once

#include <cstdint>

#include "graph/csr_graph.h"
#include "graph/graph_builder.h"

namespace graphite {

/** Parameters for the recursive-matrix (R-MAT) generator. */
struct RmatParams
{
    /** log2 of the vertex count. */
    unsigned scale = 16;
    /** Target average out-degree (edges generated = avgDegree * |V|). */
    double avgDegree = 16.0;
    /** Quadrant probabilities; d = 1 - a - b - c. Larger a = heavier skew. */
    double a = 0.57;
    double b = 0.19;
    double c = 0.19;
    /** If true, add both directions of every generated edge. */
    bool undirected = false;
    std::uint64_t seed = 1;
};

/**
 * R-MAT / Kronecker generator producing power-law degree distributions
 * (products/papers/twitter analogues).
 */
CsrGraph generateRmat(const RmatParams &params);

/**
 * Erdős–Rényi G(n, m): m directed edges chosen uniformly. Flat degree
 * distribution (low variance), a useful contrast to R-MAT in locality
 * experiments.
 */
CsrGraph generateErdosRenyi(VertexId numVertices, EdgeId numEdges,
                            bool undirected = false, std::uint64_t seed = 1);

/**
 * Barabási–Albert preferential attachment: each new vertex attaches to
 * @p edgesPerVertex existing vertices with probability proportional to
 * degree. Produces power-law graphs with guaranteed connectivity.
 */
CsrGraph generateBarabasiAlbert(VertexId numVertices,
                                VertexId edgesPerVertex,
                                std::uint64_t seed = 1);

/**
 * Ring graph with @p extraHops additional skip edges per vertex —
 * deterministic structure used by unit tests.
 */
CsrGraph generateRing(VertexId numVertices, VertexId extraHops = 0);

/** Parameters of the planted-community generator. */
struct CommunityParams
{
    VertexId numVertices = 1 << 14;
    /** Vertices per community. */
    VertexId communitySize = 64;
    /** Undirected intra-community edges initiated per vertex. */
    VertexId intraDegree = 20;
    /** Undirected global (inter-community) edges per vertex. */
    VertexId interDegree = 5;
    /**
     * Designated hub members per community every member links to.
     * Hubs give the degree distribution the skew real co-purchase
     * graphs have, and make each community a single high-degree
     * bucket under the paper's Algorithm 3.
     */
    VertexId hubsPerCommunity = 2;
    std::uint64_t seed = 1;
};

/**
 * Planted-community graph: vertex ids are randomly shuffled into
 * communities, each vertex connects mostly within its community plus a
 * few global edges. Models highly-clustered networks (e.g. product
 * co-purchase graphs) where community members share many neighbors but
 * vertex ids carry no layout locality — exactly the structure the
 * paper's temporal-locality reordering (Algorithm 3) exploits.
 */
CsrGraph generateCommunityGraph(const CommunityParams &params);

/** Append R-MAT edges into an existing builder (for hybrid graphs). */
void appendRmatEdges(GraphBuilder &builder, const RmatParams &params);

/** Append planted-community edges into an existing builder. */
void appendCommunityEdges(GraphBuilder &builder,
                          const CommunityParams &params);

/**
 * Hybrid generator: R-MAT's power-law skew and id-embedded locality
 * plus a planted-community overlay supplying the clustering real
 * graphs have and pure R-MAT lacks.
 */
CsrGraph generateClusteredRmat(const RmatParams &rmat,
                               const CommunityParams &community);

} // namespace graphite
