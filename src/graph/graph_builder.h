/**
 * @file
 * Edge-list accumulation and CSR finalisation.
 */

#pragma once

#include <utility>
#include <vector>

#include "graph/csr_graph.h"

namespace graphite {

/**
 * Mutable edge-list builder that finalises into an immutable CsrGraph.
 *
 * Duplicate edges and self-loops are removed at build time (the GNN
 * formulation adds the self term explicitly via N(v) ∪ {v}, so storing
 * self-loops in the adjacency would double-count it).
 */
class GraphBuilder
{
  public:
    /** @param numVertices fixed vertex count of the graph under build. */
    explicit GraphBuilder(VertexId numVertices);

    /** Append a directed edge src → dst. Out-of-range ids are fatal. */
    void addEdge(VertexId src, VertexId dst);

    /** Append both directions of an undirected edge. */
    void addUndirectedEdge(VertexId u, VertexId v);

    /** Number of (pre-dedup) edges accumulated so far. */
    EdgeId numPendingEdges() const { return edges_.size(); }

    /**
     * Sort, dedupe, strip self-loops and produce the CSR graph. The
     * builder is left empty afterwards.
     */
    CsrGraph build();

  private:
    VertexId numVertices_;
    std::vector<std::pair<VertexId, VertexId>> edges_;
};

} // namespace graphite
