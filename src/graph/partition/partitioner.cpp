#include "graph/partition/partitioner.h"

#include <algorithm>
#include <queue>
#include <utility>

#include "common/assert.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace graphite {

namespace {

constexpr ShardId kNoShard = ~ShardId{0};

/** splitmix64 finaliser: the deterministic hash of the Hash strategy. */
std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Hash assignment: owned lists in ascending id order. */
void
assignHash(const CsrGraph &graph, std::uint64_t seed,
           std::vector<Shard> &shards)
{
    const VertexId n = graph.numVertices();
    const std::size_t k = shards.size();
    for (VertexId v = 0; v < n; ++v)
        shards[splitmix64(seed ^ v) % k].vertices.push_back(v);
}

/**
 * Greedy assignment: Algorithm 3's buckets (each vertex joins its
 * highest-degree neighbor's bucket), placed whole on the lightest
 * shard, heaviest bucket first. Bucket members stay contiguous in the
 * owned order, so each shard's run doubles as a shard-local locality
 * order.
 */
void
assignGreedy(const CsrGraph &graph, std::vector<Shard> &shards)
{
    const VertexId n = graph.numVertices();
    const std::size_t k = shards.size();
    // Bucket assignment exactly as localityOrder(): the vertex itself
    // is the initial candidate and strictly-higher degree wins, so ties
    // resolve toward the earlier candidate.
    std::vector<VertexId> bucketOf(n);
    std::vector<VertexId> bucketSize(n, 0);
    for (VertexId v = 0; v < n; ++v) {
        VertexId best = v;
        EdgeId bestDeg = graph.degree(v);
        for (VertexId u : graph.neighbors(v)) {
            if (graph.degree(u) > bestDeg) {
                best = u;
                bestDeg = graph.degree(u);
            }
        }
        bucketOf[v] = best;
        ++bucketSize[best];
    }
    // Counting-sort members so bucket u is the contiguous slice
    // memberAt[bucketStart[u], bucketStart[u+1]).
    std::vector<std::size_t> bucketStart(n + 1, 0);
    for (VertexId u = 0; u < n; ++u)
        bucketStart[u + 1] = bucketStart[u] + bucketSize[u];
    std::vector<VertexId> memberAt(n);
    {
        std::vector<std::size_t> cursor(bucketStart.begin(),
                                        bucketStart.end() - 1);
        for (VertexId v = 0; v < n; ++v)
            memberAt[cursor[bucketOf[v]]++] = v;
    }
    // Longest-processing-time placement of whole buckets. A bucket's
    // cost models its aggregation work: one self row plus one gathered
    // row per edge of each member.
    struct Bucket
    {
        VertexId rep;
        std::uint64_t weight;
    };
    std::vector<Bucket> buckets;
    for (VertexId u = 0; u < n; ++u) {
        if (bucketSize[u] == 0)
            continue;
        std::uint64_t weight = 0;
        for (std::size_t i = bucketStart[u]; i < bucketStart[u + 1]; ++i)
            weight += 1 + graph.degree(memberAt[i]);
        buckets.push_back({u, weight});
    }
    std::stable_sort(buckets.begin(), buckets.end(),
                     [](const Bucket &a, const Bucket &b) {
                         if (a.weight != b.weight)
                             return a.weight > b.weight;
                         return a.rep < b.rep;
                     });
    using Load = std::pair<std::uint64_t, std::size_t>;
    std::priority_queue<Load, std::vector<Load>, std::greater<>> lightest;
    for (std::size_t s = 0; s < k; ++s)
        lightest.push({0, s});
    for (const Bucket &bucket : buckets) {
        auto [load, s] = lightest.top();
        lightest.pop();
        Shard &shard = shards[s];
        for (std::size_t i = bucketStart[bucket.rep];
             i < bucketStart[bucket.rep + 1]; ++i)
            shard.vertices.push_back(memberAt[i]);
        lightest.push({load + bucket.weight, s});
    }
}

/**
 * From prefilled owned lists, build the maps, the shard-major order,
 * and each shard's local CSR (intra edges first per row, then cut
 * edges with halo ids allocated in first-use order).
 */
void
finalisePlan(const CsrGraph &graph, PartitionPlan &plan)
{
    const VertexId n = graph.numVertices();
    const std::size_t k = plan.shards.size();
    plan.shardOf.assign(n, 0);
    plan.localIdOf.assign(n, 0);
    plan.shardMajorOrder.clear();
    plan.shardMajorOrder.reserve(n);
    plan.ownedStart.assign(k + 1, 0);
    for (std::size_t s = 0; s < k; ++s) {
        Shard &shard = plan.shards[s];
        shard.numOwned = static_cast<VertexId>(shard.vertices.size());
        plan.ownedStart[s + 1] = plan.ownedStart[s] + shard.numOwned;
        for (VertexId i = 0; i < shard.numOwned; ++i) {
            const VertexId v = shard.vertices[i];
            plan.shardOf[v] = static_cast<ShardId>(s);
            plan.localIdOf[v] = i;
            plan.shardMajorOrder.push_back(v);
        }
    }
    GRAPHITE_ASSERT(plan.shardMajorOrder.size() == n,
                    "owned lists must cover every vertex exactly once");

    // The stamp pair resolves repeat halo references in O(1) without
    // per-shard clearing: an entry is only trusted when stampShard
    // matches the shard being built.
    std::vector<ShardId> stampShard(n, kNoShard);
    std::vector<VertexId> stampLocal(n, 0);
    for (std::size_t s = 0; s < k; ++s) {
        Shard &shard = plan.shards[s];
        const ShardId sid = static_cast<ShardId>(s);
        std::vector<EdgeId> rowPtr;
        std::vector<VertexId> colIdx;
        rowPtr.reserve(shard.numOwned + 1);
        rowPtr.push_back(0);
        shard.globalEdge.clear();
        shard.cutStart.assign(shard.numOwned, 0);
        shard.intraEdges = 0;
        shard.cutEdges = 0;
        for (VertexId r = 0; r < shard.numOwned; ++r) {
            const VertexId v = shard.vertices[r];
            for (EdgeId e = graph.rowBegin(v); e < graph.rowEnd(v); ++e) {
                const VertexId u = graph.colIdx()[e];
                if (plan.shardOf[u] != sid)
                    continue;
                colIdx.push_back(plan.localIdOf[u]);
                shard.globalEdge.push_back(e);
                ++shard.intraEdges;
            }
            shard.cutStart[r] = colIdx.size();
            for (EdgeId e = graph.rowBegin(v); e < graph.rowEnd(v); ++e) {
                const VertexId u = graph.colIdx()[e];
                if (plan.shardOf[u] == sid)
                    continue;
                if (stampShard[u] != sid) {
                    stampShard[u] = sid;
                    stampLocal[u] =
                        static_cast<VertexId>(shard.vertices.size());
                    shard.vertices.push_back(u);
                }
                colIdx.push_back(stampLocal[u]);
                shard.globalEdge.push_back(e);
                ++shard.cutEdges;
            }
            rowPtr.push_back(colIdx.size());
        }
        // Empty halo rows make every local id a valid CSR row.
        rowPtr.resize(shard.vertices.size() + 1, colIdx.size());
        shard.localCsr = CsrGraph(std::move(rowPtr), std::move(colIdx));
    }
}

} // namespace

PartitionPlan
makePartitionPlan(const CsrGraph &graph, const PartitionConfig &config)
{
    GRAPHITE_TRACE_SPAN("partition.plan");
    PartitionPlan plan;
    plan.graph = &graph;
    plan.strategy = config.strategy;
    plan.shards.resize(std::max<std::size_t>(1, config.numShards));
    if (config.strategy == PartitionStrategy::Hash)
        assignHash(graph, config.seed, plan.shards);
    else
        assignGreedy(graph, plan.shards);
    finalisePlan(graph, plan);

    obs::MetricsRegistry &metrics = obs::MetricsRegistry::global();
    static obs::Gauge &shardsGauge = metrics.gauge("partition.shards");
    static obs::Gauge &cutGauge = metrics.gauge("partition.cut_edges");
    static obs::Gauge &haloGauge = metrics.gauge("partition.halo_vertices");
    shardsGauge.set(static_cast<double>(plan.numShards()));
    cutGauge.set(static_cast<double>(plan.totalCutEdges()));
    haloGauge.set(static_cast<double>(plan.totalHaloVertices()));
    return plan;
}

} // namespace graphite
