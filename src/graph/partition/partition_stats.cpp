#include "graph/partition/partition_stats.h"

#include <algorithm>
#include <cstdio>

namespace graphite {

PartitionStats
computePartitionStats(const PartitionPlan &plan)
{
    PartitionStats stats;
    stats.numShards = plan.numShards();
    if (plan.graph == nullptr || plan.shards.empty())
        return stats;
    stats.cutEdges = plan.totalCutEdges();
    stats.cutEdgeRatio = plan.cutEdgeRatio();
    stats.haloVertices = plan.totalHaloVertices();
    const VertexId n = plan.graph->numVertices();
    stats.haloRatio =
        n > 0 ? static_cast<double>(stats.haloVertices) / n : 0.0;

    stats.minOwned = n;
    std::uint64_t maxLoad = 0;
    std::uint64_t totalLoad = 0;
    for (const Shard &shard : plan.shards) {
        stats.minOwned = std::min(stats.minOwned, shard.numOwned);
        stats.maxOwned = std::max(stats.maxOwned, shard.numOwned);
        const std::uint64_t load =
            shard.numOwned + shard.intraEdges + shard.cutEdges;
        maxLoad = std::max(maxLoad, load);
        totalLoad += load;
    }
    if (totalLoad > 0) {
        const double mean = static_cast<double>(totalLoad) /
                            static_cast<double>(stats.numShards);
        stats.loadImbalance = static_cast<double>(maxLoad) / mean;
    }
    // Row width cancels in the ratio, so pass 1 byte per row.
    const Bytes global = plan.estimatedGatherBytes(1, false);
    if (global > 0) {
        stats.gatherByteRatio =
            static_cast<double>(plan.estimatedGatherBytes(1, true)) /
            static_cast<double>(global);
    }
    return stats;
}

std::string
formatPartitionStats(const PartitionStats &stats,
                     PartitionStrategy strategy)
{
    char line[256];
    std::snprintf(line, sizeof(line),
                  "partition  K=%-3zu strat=%-6s cut=%-11llu "
                  "cutRatio=%-6.3f halo=%-9u haloRatio=%-6.3f "
                  "owned=[%u,%u] imbalance=%-5.2f gatherRatio=%.3f",
                  stats.numShards, partitionStrategyName(strategy),
                  static_cast<unsigned long long>(stats.cutEdges),
                  stats.cutEdgeRatio, stats.haloVertices, stats.haloRatio,
                  stats.minOwned, stats.maxOwned, stats.loadImbalance,
                  stats.gatherByteRatio);
    return line;
}

} // namespace graphite
