#include "graph/partition/partition_plan.h"

namespace graphite {

const char *
partitionStrategyName(PartitionStrategy strategy)
{
    return strategy == PartitionStrategy::Hash ? "hash" : "greedy";
}

bool
parsePartitionStrategy(const std::string &text, PartitionStrategy &out)
{
    if (text == "greedy") {
        out = PartitionStrategy::Greedy;
        return true;
    }
    if (text == "hash") {
        out = PartitionStrategy::Hash;
        return true;
    }
    return false;
}

EdgeId
PartitionPlan::totalCutEdges() const
{
    EdgeId total = 0;
    for (const Shard &shard : shards)
        total += shard.cutEdges;
    return total;
}

VertexId
PartitionPlan::totalHaloVertices() const
{
    VertexId total = 0;
    for (const Shard &shard : shards)
        total += shard.numHalo();
    return total;
}

double
PartitionPlan::cutEdgeRatio() const
{
    if (graph == nullptr || graph->numEdges() == 0)
        return 0.0;
    return static_cast<double>(totalCutEdges()) /
           static_cast<double>(graph->numEdges());
}

Bytes
PartitionPlan::estimatedGatherBytes(Bytes rowBytes, bool delayedHalo) const
{
    if (graph == nullptr)
        return 0;
    const Bytes selfRows = graph->numVertices();
    if (!delayedHalo)
        return (selfRows + graph->numEdges()) * rowBytes;
    Bytes intra = 0;
    for (const Shard &shard : shards)
        intra += shard.intraEdges;
    return (selfRows + intra + totalHaloVertices()) * rowBytes;
}

const char *
PartitionPlan::validate() const
{
    if (graph == nullptr)
        return "plan references no graph";
    if (shards.empty())
        return "plan has no shards";
    const VertexId n = graph->numVertices();
    const EdgeId numEdges = graph->numEdges();
    const std::size_t k = shards.size();
    if (shardOf.size() != n)
        return "shardOf size differs from |V|";
    if (localIdOf.size() != n)
        return "localIdOf size differs from |V|";
    if (shardMajorOrder.size() != n)
        return "shardMajorOrder size differs from |V|";
    if (ownedStart.size() != k + 1 || ownedStart.front() != 0)
        return "ownedStart is not a K+1 prefix starting at 0";

    // Owned runs tile the shard-major order.
    for (std::size_t s = 0; s < k; ++s) {
        const Shard &shard = shards[s];
        if (shard.numOwned > shard.vertices.size())
            return "shard owns more vertices than it lists";
        if (ownedStart[s + 1] - ownedStart[s] != shard.numOwned)
            return "ownedStart run length differs from shard numOwned";
        for (VertexId i = 0; i < shard.numOwned; ++i) {
            if (shardMajorOrder[ownedStart[s] + i] != shard.vertices[i])
                return "shardMajorOrder diverges from owned lists";
        }
    }
    if (ownedStart.back() != n)
        return "owned runs do not cover all vertices";

    // Global→local→global round-trip for every vertex. Combined with
    // the owned counts summing to |V| this makes ownership a bijection.
    for (VertexId v = 0; v < n; ++v) {
        if (shardOf[v] >= k)
            return "shardOf entry out of range";
        const Shard &shard = shards[shardOf[v]];
        if (localIdOf[v] >= shard.numOwned)
            return "localIdOf entry is not an owned local id";
        if (shard.vertices[localIdOf[v]] != v)
            return "global/local id round-trip failed";
    }

    // Per-shard local structure against the global CSR, plus
    // exactly-once coverage of the global edge set.
    std::vector<std::uint8_t> edgeSeen(numEdges, 0);
    std::vector<std::uint8_t> haloUsed;
    for (std::size_t s = 0; s < k; ++s) {
        const Shard &shard = shards[s];
        if (shard.localCsr.numVertices() != shard.vertices.size())
            return "local CSR row count differs from shard vertex count";
        if (const char *error = shard.localCsr.validate())
            return error;
        if (shard.globalEdge.size() != shard.localCsr.numEdges())
            return "globalEdge size differs from local edge count";
        if (shard.cutStart.size() != shard.numOwned)
            return "cutStart size differs from owned count";
        for (VertexId i = 0; i < shard.vertices.size(); ++i) {
            if (shard.vertices[i] >= n)
                return "shard vertex id out of range";
        }
        for (VertexId h = shard.numOwned; h < shard.vertices.size(); ++h) {
            if (shardOf[shard.vertices[h]] == s)
                return "halo vertex is owned by its own shard";
            if (shard.localCsr.degree(h) != 0)
                return "halo row of the local CSR is not empty";
        }
        haloUsed.assign(shard.numHalo(), 0);
        EdgeId intra = 0;
        EdgeId cut = 0;
        for (VertexId r = 0; r < shard.numOwned; ++r) {
            const VertexId v = shard.vertices[r];
            if (shard.localCsr.degree(r) != graph->degree(v))
                return "local row degree differs from global row";
            const EdgeId rowBegin = shard.localCsr.rowBegin(r);
            const EdgeId rowEnd = shard.localCsr.rowEnd(r);
            if (shard.cutStart[r] < rowBegin || shard.cutStart[r] > rowEnd)
                return "cutStart outside its row";
            for (EdgeId idx = rowBegin; idx < rowEnd; ++idx) {
                const VertexId c = shard.localCsr.colIdx()[idx];
                const EdgeId e = shard.globalEdge[idx];
                if (e >= numEdges)
                    return "global edge id out of range";
                if (e < graph->rowBegin(v) || e >= graph->rowEnd(v))
                    return "global edge lies outside its owner's row";
                if (graph->colIdx()[e] != shard.vertices[c])
                    return "local edge endpoint differs from global";
                if (edgeSeen[e])
                    return "global edge assigned to two local edges";
                edgeSeen[e] = 1;
                if (idx < shard.cutStart[r]) {
                    if (c >= shard.numOwned)
                        return "cut edge before cutStart";
                    ++intra;
                } else {
                    if (c < shard.numOwned)
                        return "intra edge after cutStart";
                    haloUsed[c - shard.numOwned] = 1;
                    ++cut;
                }
            }
        }
        if (intra != shard.intraEdges || cut != shard.cutEdges)
            return "shard edge accounting mismatch";
        for (std::uint8_t used : haloUsed) {
            if (!used)
                return "halo vertex referenced by no cut edge";
        }
    }
    for (std::uint8_t seen : edgeSeen) {
        if (!seen)
            return "global edge assigned to no shard";
    }
    return nullptr;
}

} // namespace graphite
