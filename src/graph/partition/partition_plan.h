/**
 * @file
 * Cache-slice graph partition: K vertex shards with halo replication.
 *
 * The paper's locality order (Algorithm 3) shortens reuse distances
 * within one flat processing order, but on graphs whose feature working
 * set exceeds the LLC the aggregation phase still re-streams hub rows
 * from DRAM. A PartitionPlan slices the vertex set into K balanced
 * shards so each shard's feature slice can stay cache-resident while it
 * is processed (the DistGNN-style scalable form of the same locality
 * idea). Each shard owns a contiguous run of the shard-major processing
 * order, carries a local CSR over shard-local ids, and lists the halo
 * (boundary) vertices other shards own that its cut edges read —
 * exactly what a delayed cross-shard aggregation replicates once per
 * shard instead of once per cut edge.
 */

#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/types.h"
#include "graph/csr_graph.h"
#include "graph/reorder.h"

namespace graphite {

/** How vertices are assigned to shards. */
enum class PartitionStrategy : std::uint8_t
{
    /**
     * Algorithm 3's bucket assignment generalised to K shards: vertices
     * sharing a highest-degree neighbor form a bucket, and whole
     * buckets are placed on the lightest shard (longest-processing-time
     * greedy on vertices + edges). Keeps co-neighborhoods on one shard,
     * so the cut stays small on clustered graphs and the owned order
     * doubles as a shard-local locality order.
     */
    Greedy,
    /** Deterministic hash of the vertex id: the edge-cut baseline. */
    Hash,
};

/** Strategy name for tables and CLI round-trips ("greedy" / "hash"). */
const char *partitionStrategyName(PartitionStrategy strategy);

/**
 * Parse a --partition value ("greedy" or "hash", case-sensitive).
 * @return false when @p text names no known strategy (@p out untouched).
 */
bool parsePartitionStrategy(const std::string &text, PartitionStrategy &out);

/** Shard identifier (dense, < PartitionPlan::numShards()). */
using ShardId = std::uint32_t;

/** One cache slice of a PartitionPlan. */
struct Shard
{
    /**
     * Global ids of this shard's vertices: the numOwned owned vertices
     * first (in shard-local processing order), then the halo vertices
     * (owned elsewhere, read by this shard's cut edges) in first-use
     * order. Local id i refers to vertices[i].
     */
    std::vector<VertexId> vertices;
    /** Owned-vertex count; vertices[i] with i >= numOwned are halo. */
    VertexId numOwned = 0;
    /**
     * Local CSR over local ids: vertices.size() rows of which only the
     * first numOwned (the owned rows) carry edges; halo rows are empty.
     * Within an owned row, intra-shard edges (col < numOwned) come
     * first, then cut edges (col >= numOwned) — cutStart marks the
     * split — so the delayed two-phase aggregation walks each partition
     * of the row exactly once.
     */
    CsrGraph localCsr;
    /**
     * Global edge id of each local edge, aligned with localCsr.colIdx()
     * — per-edge ψ factor maps are consulted through this without any
     * remapping, and across shards these cover [0, |E|) exactly once.
     */
    std::vector<EdgeId> globalEdge;
    /**
     * Per owned row, the absolute offset into localCsr.colIdx() where
     * the row's cut edges begin (== rowEnd for a cut-free row).
     */
    std::vector<EdgeId> cutStart;
    /** Edges whose endpoint is owned by this shard. */
    EdgeId intraEdges = 0;
    /** Edges whose endpoint is a halo vertex (owned elsewhere). */
    EdgeId cutEdges = 0;

    /** Halo (replicated boundary) vertex count. */
    VertexId
    numHalo() const
    {
        return static_cast<VertexId>(vertices.size()) - numOwned;
    }

    /** Global ids of the owned vertices, in shard-local order. */
    std::span<const VertexId>
    owned() const
    {
        return {vertices.data(), numOwned};
    }

    /** Global ids of the halo vertices. */
    std::span<const VertexId>
    halo() const
    {
        return {vertices.data() + numOwned, numHalo()};
    }
};

/**
 * A K-way vertex partition of one CsrGraph with everything shard-major
 * execution needs precomputed: per-shard local CSRs, global↔local id
 * maps, the concatenated shard-major processing order, and cost/volume
 * accounting. Built by makePartitionPlan (partitioner.h); immutable in
 * use, like the CsrGraph it slices.
 */
struct PartitionPlan
{
    /** The partitioned graph (not owned; must outlive the plan). */
    const CsrGraph *graph = nullptr;
    PartitionStrategy strategy = PartitionStrategy::Greedy;
    std::vector<Shard> shards;
    /** shardOf[v] = the shard owning global vertex v (|V| entries). */
    std::vector<ShardId> shardOf;
    /** localIdOf[v] = v's local id within its owning shard. */
    std::vector<VertexId> localIdOf;
    /**
     * Concatenation of every shard's owned order: the processing order
     * shard-major execution follows, also usable directly as the order
     * argument of the global kernels and the sim's LayerWorkload.
     */
    ProcessingOrder shardMajorOrder;
    /**
     * ownedStart[s] = offset of shard s's owned run in shardMajorOrder
     * (K+1 entries); shard tasks are carved from these at kernel entry.
     */
    std::vector<std::size_t> ownedStart;

    std::size_t numShards() const { return shards.size(); }

    /** Sum of per-shard cut edges (each global edge counted once). */
    EdgeId totalCutEdges() const;

    /** Sum of per-shard halo lists — total replicated rows. */
    VertexId totalHaloVertices() const;

    /** Cut edges as a fraction of all edges (0 when edgeless). */
    double cutEdgeRatio() const;

    /**
     * Estimated bytes one aggregation pass gathers at @p rowBytes per
     * feature row. Exact shard-major execution pulls a row per edge
     * plus the self term, same as the global kernel; the delayed-halo
     * variant replaces the cut-edge pulls with one replica pull per
     * halo vertex — the hub-deduplication win this plan exists for.
     */
    Bytes estimatedGatherBytes(Bytes rowBytes, bool delayedHalo) const;

    /**
     * Structure check of every plan invariant: maps are mutually
     * consistent bijections, each shard's local CSR mirrors the global
     * rows of its owned vertices (intra/cut split included), halo lists
     * are exactly the cross-shard fan-in, every global edge appears
     * exactly once across shards, and shardMajorOrder is the owned
     * concatenation. O(|V| + |E|) time and scratch.
     *
     * @return nullptr when valid, else a static message naming the
     *         violated invariant (the validateDescriptor() convention).
     */
    const char *validate() const;
};

} // namespace graphite
