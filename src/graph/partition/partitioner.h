/**
 * @file
 * PartitionPlan construction: degree-aware greedy edge-cut (Algorithm
 * 3's bucket assignment generalised to K balanced shards) and the hash
 * baseline it is evaluated against.
 */

#pragma once

#include <cstdint>

#include "graph/partition/partition_plan.h"

namespace graphite {

/** Knobs of makePartitionPlan. */
struct PartitionConfig
{
    /** Shard count K; 0 is treated as 1 (the trivial partition). */
    std::size_t numShards = 1;
    PartitionStrategy strategy = PartitionStrategy::Greedy;
    /** Salt of the hash strategy (ignored by greedy). */
    std::uint64_t seed = 0x9e3779b97f4a7c15ull;
};

/**
 * Partition @p graph into config.numShards shards.
 *
 * Greedy: bucket every vertex with its highest-degree neighbor
 * (Algorithm 3's assignment), weigh each bucket by its vertices plus
 * their edges, and place whole buckets on the currently lightest shard,
 * heaviest bucket first. Bucket members stay contiguous in the shard's
 * owned order, so each shard's order is a shard-local locality order.
 * Hash: splitmix-style hash of the vertex id modulo K, owned order
 * ascending by id — the locality-oblivious baseline.
 *
 * The plan's shards carry local CSRs whose rows mirror the global edge
 * set (intra-shard edges first within each row, then cut edges), halo
 * lists in first-use order, and the global↔local maps; the graph
 * pointer is retained and must outlive the plan. Shards may own no
 * vertices when K exceeds the bucket (or vertex) count. Publishes the
 * partition.shards / partition.cut_edges / partition.halo_vertices
 * gauges and runs under a "partition.plan" trace span.
 */
PartitionPlan makePartitionPlan(const CsrGraph &graph,
                                const PartitionConfig &config);

} // namespace graphite
