/**
 * @file
 * Partition summaries — the shard-level companion of GraphStats
 * (graph/graph_stats.h): edge-cut, halo volume and shard balance of a
 * PartitionPlan, printed next to the Table-3 row in graphite_cli.
 */

#pragma once

#include <string>

#include "graph/partition/partition_plan.h"

namespace graphite {

/** Summary statistics of one PartitionPlan. */
struct PartitionStats
{
    std::size_t numShards = 0;
    /** Edges crossing a shard boundary, and their fraction of |E|. */
    EdgeId cutEdges = 0;
    double cutEdgeRatio = 0.0;
    /** Total replicated boundary rows across shards. */
    VertexId haloVertices = 0;
    /** Halo rows as a fraction of |V| (can exceed 1: one row may be
     *  replicated on several shards). */
    double haloRatio = 0.0;
    /** Smallest/largest owned-vertex count over shards. */
    VertexId minOwned = 0;
    VertexId maxOwned = 0;
    /**
     * Load imbalance: the heaviest shard's work (owned rows + edges)
     * over the mean shard work. 1.0 is perfect balance.
     */
    double loadImbalance = 0.0;
    /** Gather bytes of one delayed-halo aggregation pass relative to
     *  the global kernel's, at any fixed row width (< 1 means the halo
     *  replicas deduplicate cross-shard hub pulls). */
    double gatherByteRatio = 1.0;
};

/** Compute PartitionStats for @p plan in one pass over its shards. */
PartitionStats computePartitionStats(const PartitionPlan &plan);

/** Human-readable one-line rendering (the formatGraphStats companion). */
std::string formatPartitionStats(const PartitionStats &stats,
                                 PartitionStrategy strategy);

} // namespace graphite
