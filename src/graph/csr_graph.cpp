#include "graph/csr_graph.h"

#include <algorithm>

namespace graphite {

CsrGraph::CsrGraph(std::vector<EdgeId> rowPtr, std::vector<VertexId> colIdx)
    : rowPtr_(std::move(rowPtr)), colIdx_(std::move(colIdx))
{
    const char *error = validate();
    if (error != nullptr)
        panic("CsrGraph construction: %s", error);
}

const char *
CsrGraph::validate(std::span<const EdgeId> rowPtr,
                   std::span<const VertexId> colIdx)
{
    if (rowPtr.empty()) {
        // A default-constructed graph (no vertices, no edges) keeps
        // both arrays empty and is valid.
        return colIdx.empty() ? nullptr
                              : "rowPtr must have |V|+1 entries";
    }
    if (rowPtr.front() != 0)
        return "rowPtr must start at 0";
    if (rowPtr.back() != colIdx.size())
        return "rowPtr must end at |E|";
    for (std::size_t v = 0; v + 1 < rowPtr.size(); ++v) {
        if (rowPtr[v] > rowPtr[v + 1])
            return "rowPtr must be non-decreasing";
    }
    const auto n = static_cast<VertexId>(rowPtr.size() - 1);
    for (VertexId u : colIdx) {
        if (u >= n)
            return "neighbor id out of range";
    }
    return nullptr;
}

CsrGraph
CsrGraph::transposed() const
{
    const VertexId n = numVertices();
    std::vector<EdgeId> tRowPtr(n + 1, 0);
    // Count in-degrees.
    for (VertexId u : colIdx_)
        ++tRowPtr[u + 1];
    for (VertexId v = 0; v < n; ++v)
        tRowPtr[v + 1] += tRowPtr[v];
    std::vector<VertexId> tColIdx(colIdx_.size());
    std::vector<EdgeId> cursor(tRowPtr.begin(), tRowPtr.end() - 1);
    for (VertexId v = 0; v < n; ++v) {
        for (EdgeId e = rowPtr_[v]; e < rowPtr_[v + 1]; ++e)
            tColIdx[cursor[colIdx_[e]]++] = v;
    }
    return CsrGraph(std::move(tRowPtr), std::move(tColIdx));
}

bool
CsrGraph::rowsSorted() const
{
    const VertexId n = numVertices();
    for (VertexId v = 0; v < n; ++v) {
        auto row = neighbors(v);
        if (!std::is_sorted(row.begin(), row.end()))
            return false;
    }
    return true;
}

} // namespace graphite
