#include "graph/csr_graph.h"

#include <algorithm>

namespace graphite {

CsrGraph::CsrGraph(std::vector<EdgeId> rowPtr, std::vector<VertexId> colIdx)
    : rowPtr_(std::move(rowPtr)), colIdx_(std::move(colIdx))
{
    GRAPHITE_ASSERT(!rowPtr_.empty(), "rowPtr must have |V|+1 entries");
    GRAPHITE_ASSERT(rowPtr_.front() == 0, "rowPtr must start at 0");
    GRAPHITE_ASSERT(rowPtr_.back() == colIdx_.size(),
                    "rowPtr must end at |E|");
    const VertexId n = numVertices();
    for (std::size_t v = 0; v + 1 < rowPtr_.size(); ++v) {
        GRAPHITE_ASSERT(rowPtr_[v] <= rowPtr_[v + 1],
                        "rowPtr must be non-decreasing");
    }
    for (VertexId u : colIdx_)
        GRAPHITE_ASSERT(u < n, "neighbor id out of range");
}

CsrGraph
CsrGraph::transposed() const
{
    const VertexId n = numVertices();
    std::vector<EdgeId> tRowPtr(n + 1, 0);
    // Count in-degrees.
    for (VertexId u : colIdx_)
        ++tRowPtr[u + 1];
    for (VertexId v = 0; v < n; ++v)
        tRowPtr[v + 1] += tRowPtr[v];
    std::vector<VertexId> tColIdx(colIdx_.size());
    std::vector<EdgeId> cursor(tRowPtr.begin(), tRowPtr.end() - 1);
    for (VertexId v = 0; v < n; ++v) {
        for (EdgeId e = rowPtr_[v]; e < rowPtr_[v + 1]; ++e)
            tColIdx[cursor[colIdx_[e]]++] = v;
    }
    return CsrGraph(std::move(tRowPtr), std::move(tColIdx));
}

bool
CsrGraph::rowsSorted() const
{
    const VertexId n = numVertices();
    for (VertexId v = 0; v < n; ++v) {
        auto row = neighbors(v);
        if (!std::is_sorted(row.begin(), row.end()))
            return false;
    }
    return true;
}

} // namespace graphite
