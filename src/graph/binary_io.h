/**
 * @file
 * Binary CSR persistence. Text edge lists (edge_list_io.h) are portable
 * but slow to parse and re-sort at graph scale; this format stores the
 * finished CSR arrays directly, so loading is two reads plus
 * validation.
 *
 * Format (little-endian):
 *   magic "GCSR" | u32 version | u64 numVertices | u64 numEdges |
 *   rowPtr (numVertices+1 x u64) | colIdx (numEdges x u32)
 */

#pragma once

#include <string>

#include "graph/csr_graph.h"

namespace graphite {

/** Write @p graph's CSR arrays to @p path. fatal() on I/O errors. */
void saveCsr(const CsrGraph &graph, const std::string &path);

/** Load a graph saved by saveCsr(). fatal() on format errors. */
CsrGraph loadCsr(const std::string &path);

/** True if @p path exists and starts with the CSR magic. */
bool isCsrFile(const std::string &path);

} // namespace graphite
