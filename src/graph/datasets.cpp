#include "graph/datasets.h"

#include "common/assert.h"
#include "graph/generators.h"

namespace graphite {

DatasetSpec
datasetSpec(DatasetId id)
{
    switch (id) {
      case DatasetId::Products:
        // ogbn-products: 2.45M vertices, avg degree 50.5, heavy skew
        // (max degree 17.5K), undirected, F_input = 100. Co-purchase
        // networks are strongly clustered, so the analogue uses the
        // planted-community generator (the clustering is what the
        // locality reordering exploits, Section 7.2.4).
        return {"products", id, 17, 25.0, 0.57, true, 100,
                DatasetGenerator::Community};
      case DatasetId::Wikipedia:
        // wikipedia: 3.57M vertices, avg degree 12.6, moderate skew,
        // directed, synthetic F_input = 128 (paper uses 128).
        return {"wikipedia", id, 17, 12.6, 0.45, false, 128};
      case DatasetId::Papers:
        // ogbn-papers100M: 111M vertices, avg degree 14.5, low variance
        // relative to mean, directed, F_input = 256.
        return {"papers", id, 18, 14.5, 0.45, false, 256};
      case DatasetId::Twitter:
        // twitter: 61.6M vertices, avg degree 23.8, extreme skew
        // (max degree 3M), directed, F_input = 256.
        return {"twitter", id, 18, 23.8, 0.62, false, 256};
    }
    panic("unknown dataset id");
}

std::vector<DatasetId>
allDatasets()
{
    return {DatasetId::Products, DatasetId::Wikipedia, DatasetId::Papers,
            DatasetId::Twitter};
}

Dataset
makeDataset(DatasetId id, unsigned scaleShift, std::uint64_t seed)
{
    const DatasetSpec spec = datasetSpec(id);
    GRAPHITE_ASSERT(scaleShift < spec.scaleLog2,
                    "scaleShift larger than dataset scale");

    Dataset dataset;
    dataset.name = spec.name;
    dataset.id = id;
    dataset.inputFeatures = spec.inputFeatures;

    if (spec.generator == DatasetGenerator::Community) {
        CommunityParams community;
        community.numVertices =
            VertexId{1} << (spec.scaleLog2 - scaleShift);
        community.communitySize = 64;
        // Each undirected edge contributes two CSR entries; leave a
        // little headroom for dedup losses.
        community.intraDegree = static_cast<VertexId>(
            spec.avgDegree * 0.85);
        community.interDegree = static_cast<VertexId>(
            spec.avgDegree * 0.15) + 1;
        community.seed = seed;
        dataset.graph = generateCommunityGraph(community);
        return dataset;
    }

    // R-MAT supplies the degree skew and id-embedded layout locality;
    // a light community overlay (~25% of edges) supplies the
    // clustering real graphs have and pure R-MAT lacks — without it
    // the Algorithm 3 reordering has nothing to exploit.
    RmatParams params;
    params.scale = spec.scaleLog2 - scaleShift;
    // For undirected analogues each generated edge contributes two CSR
    // entries, so halve the target to keep |E|/|V| on spec.
    const double degree =
        spec.undirected ? spec.avgDegree / 2.0 : spec.avgDegree;
    params.avgDegree = degree * 0.6;
    params.a = spec.rmatA;
    params.b = (1.0 - spec.rmatA) / 3.0;
    params.c = params.b;
    params.undirected = spec.undirected;
    params.seed = seed;

    CommunityParams overlay;
    overlay.numVertices = VertexId{1} << params.scale;
    overlay.communitySize = 64;
    overlay.hubsPerCommunity = 1;
    // Community edges are undirected (two CSR entries each).
    overlay.intraDegree = std::max<VertexId>(
        1, static_cast<VertexId>(spec.avgDegree * 0.4 / 2.0) - 1);
    overlay.interDegree = 0;
    overlay.seed = seed + 17;

    dataset.graph = generateClusteredRmat(params, overlay);
    return dataset;
}

DatasetId
parseDatasetName(const std::string &name)
{
    for (DatasetId id : allDatasets()) {
        if (datasetSpec(id).name == name)
            return id;
    }
    fatal("unknown dataset '%s' (expected products|wikipedia|papers|"
          "twitter)", name.c_str());
}

} // namespace graphite
