/**
 * @file
 * Delta-CSR overlay: dynamic-graph support over the immutable CsrGraph.
 *
 * Production graphs mutate under load (new users, new edges) while
 * every Graphite software technique — locality ordering, compression,
 * DMA planning — and the whole serving stack assume a frozen CSR. The
 * overlay reconciles the two: the base stays an immutable, validated
 * CsrGraph that every existing kernel can keep consuming, and inserted
 * edges accumulate in append-only per-vertex adjacency segments carved
 * from a preallocated pool. Readers see the union (base row followed by
 * the vertex's delta chain) through a lock-free protocol; an explicit
 * compact() merges the deltas into a fresh validated CSR identical to
 * a from-scratch build of the same edge set (DESIGN.md §14).
 *
 * Concurrency contract:
 *  - addEdge() is internally serialized (writer mutex) and safe against
 *    any number of concurrent readers: an edge is published by a
 *    release-store of the per-vertex delta count after its value and
 *    segment links are in place, and readers acquire-load the count
 *    before walking the chain. Segments never move or shrink.
 *  - degree()/neighborsView()/forEachDeltaNeighbor() are wait-free and
 *    take no locks.
 *  - compact(), compacted() and validate() require that no concurrent
 *    writer is active; compact() additionally requires no concurrent
 *    readers (it swaps the base). The serving layer runs compaction
 *    from its consumer thread with updates and oracle reads excluded.
 *
 * Steady-state inserts are allocation-free: the segment pool, chain
 * heads and per-vertex counters are all sized in the constructor, and
 * addEdge() reports PoolFull when the delta budget is exhausted — the
 * caller's cue to compact.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>

#include "common/assert.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "graph/csr_graph.h"

namespace graphite {

/** Append-only per-vertex adjacency overlay over an immutable CSR. */
class DeltaCsr
{
  public:
    /** Edges per delta segment (chain granule). */
    static constexpr std::size_t kSegmentEdges = 8;

    /** Outcome of one addEdge() call. */
    enum class AddEdge
    {
        Added,     ///< edge inserted and published
        Duplicate, ///< already present in base or delta; graph unchanged
        SelfLoop,  ///< src == dst; rejected (GNN self term is implicit)
        PoolFull,  ///< delta budget exhausted; compact() to make room
    };

    /**
     * @param base          immutable starting graph (moved in).
     * @param maxDeltaEdges delta-pool budget: inserts past this return
     *                      PoolFull until compact() drains the overlay.
     */
    DeltaCsr(CsrGraph base, EdgeId maxDeltaEdges);

    DeltaCsr(const DeltaCsr &) = delete;
    DeltaCsr &operator=(const DeltaCsr &) = delete;

    /** The immutable base CSR (valid until the next compact()). */
    const CsrGraph &base() const { return base_; }

    VertexId numVertices() const { return base_.numVertices(); }

    /** Base edges + published delta edges. */
    EdgeId
    numEdges() const
    {
        return base_.numEdges() +
               deltaEdges_.load(std::memory_order_acquire);
    }

    /** Published delta edges since the last compact(). */
    EdgeId
    deltaEdges() const
    {
        return deltaEdges_.load(std::memory_order_acquire);
    }

    /** Delta-pool budget (constructor argument). */
    EdgeId maxDeltaEdges() const { return maxDeltaEdges_; }

    /** Out-degree of @p v over base + delta. */
    EdgeId
    degree(VertexId v) const
    {
        GRAPHITE_DCHECK(v < numVertices(), "degree: vertex out of range");
        return base_.degree(v) +
               vertices_[v].count.load(std::memory_order_acquire);
    }

    /** Base-only out-degree of @p v. */
    EdgeId baseDegree(VertexId v) const { return base_.degree(v); }

    /** Published delta-edge count of @p v. */
    EdgeId
    deltaDegree(VertexId v) const
    {
        GRAPHITE_DCHECK(v < numVertices(),
                        "deltaDegree: vertex out of range");
        return vertices_[v].count.load(std::memory_order_acquire);
    }

    /** Base neighbor list of @p v (a span into the base CSR). */
    std::span<const VertexId>
    baseNeighbors(VertexId v) const
    {
        return base_.neighbors(v);
    }

    /**
     * Indexable view of @p v's full neighbor list: indices
     * [0, baseDegree) map to the base row, the rest to the delta chain
     * in insertion order. The view snapshots the published delta count
     * at construction; edges inserted afterwards are not visible
     * through it (a stable read for samplers). Sequential access is
     * O(1) amortized via an internal chain cursor.
     */
    class RowView
    {
      public:
        std::size_t size() const { return baseSize_ + deltaCount_; }

        VertexId
        operator[](std::size_t i) const
        {
            GRAPHITE_DCHECK(i < size(), "RowView: index out of range");
            if (i < baseSize_)
                return base_[i];
            return graph_->deltaNeighborAt(*this, i - baseSize_);
        }

      private:
        friend class DeltaCsr;

        const DeltaCsr *graph_ = nullptr;
        const VertexId *base_ = nullptr;
        std::size_t baseSize_ = 0;
        std::size_t deltaCount_ = 0; ///< published count at snapshot
        std::uint32_t head_ = 0;     ///< first segment of the chain
        /** Sequential-access cursor: segment holding segBase_. @{ */
        mutable std::uint32_t cursorSeg_ = 0;
        mutable std::size_t cursorBase_ = 0;
        /** @} */
    };

    RowView neighborsView(VertexId v) const;

    /**
     * Visit @p v's published delta neighbors in insertion order.
     * @p fn is called with each neighbor VertexId.
     */
    template <typename Fn>
    void
    forEachDeltaNeighbor(VertexId v, Fn &&fn) const
    {
        GRAPHITE_DCHECK(v < numVertices(),
                        "forEachDeltaNeighbor: vertex out of range");
        const VertexDelta &delta = vertices_[v];
        EdgeId remaining = delta.count.load(std::memory_order_acquire);
        std::uint32_t seg = delta.head.load(std::memory_order_relaxed);
        while (remaining > 0) {
            GRAPHITE_DCHECK(seg != kNullSegment,
                            "delta chain shorter than count");
            const Segment &segment = pool_[seg];
            const EdgeId take =
                remaining < kSegmentEdges
                    ? remaining
                    : static_cast<EdgeId>(kSegmentEdges);
            for (EdgeId i = 0; i < take; ++i)
                fn(segment.edges[i]);
            remaining -= take;
            seg = segment.next.load(std::memory_order_relaxed);
        }
    }

    /**
     * Insert directed edge src → dst. Serialized internally; safe
     * against concurrent readers. Self-loops and duplicates (in base or
     * delta) are rejected so the overlay stays a simple graph and
     * compact() matches a from-scratch GraphBuilder build.
     */
    AddEdge addEdge(VertexId src, VertexId dst);

    /**
     * Merge base + deltas into a fresh validated CSR with sorted rows —
     * bitwise the graph a from-scratch GraphBuilder build of the same
     * edge set produces. Pure: the overlay is not modified. Requires no
     * concurrent writer.
     */
    CsrGraph compacted() const;

    /**
     * Replace the base with compacted() and reset the overlay (counts
     * zeroed, chains unlinked, pool cursor rewound — the pool storage
     * is retained). Requires exclusive access: no concurrent readers
     * or writers.
     */
    void compact();

    /**
     * Re-check overlay invariants: published counts consistent with
     * chain lengths, neighbor ids in range, no self-loops, no
     * duplicates within a delta chain or against the base row.
     *
     * @return nullptr when valid, else a static message naming the
     * violated invariant (the CsrGraph::validate convention). Requires
     * no concurrent writer.
     */
    const char *validate() const;

  private:
    static constexpr std::uint32_t kNullSegment = 0xffffffffU;

    struct Segment
    {
        VertexId edges[kSegmentEdges];
        /** Next segment in the chain, kNullSegment at the tail. */
        std::atomic<std::uint32_t> next{kNullSegment};
    };

    struct VertexDelta
    {
        /** Published delta-edge count (the reader-visible frontier). */
        std::atomic<EdgeId> count{0};
        /** First segment of the chain (set before count's 0→1 bump). */
        std::atomic<std::uint32_t> head{kNullSegment};
        /** Chain tail; writer-only state. */
        std::uint32_t tail = kNullSegment;
    };

    /** @p i-th delta neighbor through @p view's sequential cursor. */
    VertexId deltaNeighborAt(const RowView &view, std::size_t i) const;

    /** True when dst is already in src's base row or delta chain. */
    bool edgeExists(VertexId src, VertexId dst) const;

    CsrGraph base_;
    EdgeId maxDeltaEdges_;
    bool baseRowsSorted_;
    std::unique_ptr<VertexDelta[]> vertices_;
    std::unique_ptr<Segment[]> pool_;
    std::size_t poolSize_;
    /** Next unallocated pool segment. */
    std::size_t poolCursor_ GRAPHITE_GUARDED_BY(writerMutex_) = 0;
    std::atomic<EdgeId> deltaEdges_{0};
    /** Serializes writers (addEdge). */
    Mutex writerMutex_;
};

} // namespace graphite
