/**
 * @file
 * Compressed-sparse-row graph: the adjacency substrate every Graphite
 * kernel consumes.
 *
 * The adjacency matrix of a real-world graph is typically >99% sparse
 * (paper Section 2.2), so we store it in CSR: a row-pointer array of
 * |V|+1 edge offsets and a column-index array of |E| neighbor ids. The
 * structure is immutable after construction — aggregation treats it as
 * read-only, which is also what makes the DMA offload coherence-safe
 * (Section 5.2).
 */

#pragma once

#include <span>
#include <vector>

#include "common/assert.h"
#include "common/types.h"

namespace graphite {

/** Immutable CSR adjacency structure. */
class CsrGraph
{
  public:
    CsrGraph() = default;

    /**
     * Construct from prebuilt CSR arrays.
     *
     * @param rowPtr |V|+1 monotonically non-decreasing edge offsets.
     * @param colIdx |E| neighbor ids, each < |V|; rows need not be sorted.
     */
    CsrGraph(std::vector<EdgeId> rowPtr, std::vector<VertexId> colIdx);

    /** Number of vertices. */
    VertexId numVertices() const
    {
        return rowPtr_.empty() ? 0
                               : static_cast<VertexId>(rowPtr_.size() - 1);
    }

    /** Number of (directed) edges. */
    EdgeId numEdges() const { return colIdx_.size(); }

    /**
     * Out-degree of @p v. EdgeId-typed: a row of a multigraph can hold
     * duplicate edges, so its length is bounded by |E|, not |V|, and
     * narrowing the rowPtr difference to VertexId would truncate.
     */
    EdgeId
    degree(VertexId v) const
    {
        GRAPHITE_DCHECK(v < numVertices(), "degree: vertex out of range");
        return rowPtr_[v + 1] - rowPtr_[v];
    }

    /** Neighbor list of @p v. */
    std::span<const VertexId>
    neighbors(VertexId v) const
    {
        GRAPHITE_DCHECK(v < numVertices(),
                        "neighbors: vertex out of range");
        return {colIdx_.data() + rowPtr_[v],
                colIdx_.data() + rowPtr_[v + 1]};
    }

    /** Raw row-pointer array (|V|+1 entries). */
    std::span<const EdgeId> rowPtr() const { return rowPtr_; }

    /** Raw column-index array (|E| entries). */
    std::span<const VertexId> colIdx() const { return colIdx_; }

    /** Start offset of @p v's row in colIdx(). */
    EdgeId
    rowBegin(VertexId v) const
    {
        GRAPHITE_DCHECK(v < numVertices(), "rowBegin: vertex out of range");
        return rowPtr_[v];
    }

    /** One-past-the-end offset of @p v's row in colIdx(). */
    EdgeId
    rowEnd(VertexId v) const
    {
        GRAPHITE_DCHECK(v < numVertices(), "rowEnd: vertex out of range");
        return rowPtr_[v + 1];
    }

    /**
     * Transposed graph (in-edges become out-edges). Needed by the
     * backward pass of GNN training, which aggregates along reversed
     * edges.
     */
    CsrGraph transposed() const;

    /** True if every row's neighbor list is sorted ascending. */
    bool rowsSorted() const;

    /**
     * Check the CSR invariants of prebuilt arrays: non-empty rowPtr
     * starting at 0, monotone non-decreasing, ending at |E|, and every
     * colIdx entry < |V|.
     *
     * @return nullptr when valid, else a static message naming the
     * violated invariant (the validateDescriptor() convention).
     */
    static const char *validate(std::span<const EdgeId> rowPtr,
                                std::span<const VertexId> colIdx);

    /**
     * Re-check this graph's own invariants (they are enforced at
     * construction; this re-verifies after suspected memory corruption).
     */
    const char *validate() const { return validate(rowPtr_, colIdx_); }

  private:
    std::vector<EdgeId> rowPtr_;
    std::vector<VertexId> colIdx_;
};

} // namespace graphite
