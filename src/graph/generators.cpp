#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/assert.h"
#include "common/rng.h"
#include "graph/graph_builder.h"

namespace graphite {

void
appendRmatEdges(GraphBuilder &builder, const RmatParams &params)
{
    GRAPHITE_ASSERT(params.scale > 0 && params.scale < 31,
                    "rmat scale out of range");
    const VertexId n = VertexId{1} << params.scale;
    const auto target = static_cast<EdgeId>(params.avgDegree * n);
    const double d = 1.0 - params.a - params.b - params.c;
    GRAPHITE_ASSERT(d >= 0.0, "rmat quadrant probabilities exceed 1");

    Rng rng(params.seed);
    for (EdgeId e = 0; e < target; ++e) {
        VertexId src = 0;
        VertexId dst = 0;
        for (unsigned level = 0; level < params.scale; ++level) {
            // Perturb the quadrant probabilities slightly per level, the
            // standard trick to avoid exact-degree staircases.
            const double noise = 0.9 + 0.2 * rng.uniform();
            double pa = params.a * noise;
            double pb = params.b * noise;
            double pc = params.c * noise;
            const double sum = pa + pb + pc + d * noise;
            pa /= sum;
            pb /= sum;
            pc /= sum;
            const double r = rng.uniform();
            src <<= 1;
            dst <<= 1;
            if (r < pa) {
                // top-left quadrant: nothing set
            } else if (r < pa + pb) {
                dst |= 1;
            } else if (r < pa + pb + pc) {
                src |= 1;
            } else {
                src |= 1;
                dst |= 1;
            }
        }
        if (params.undirected)
            builder.addUndirectedEdge(src, dst);
        else
            builder.addEdge(src, dst);
    }
}

CsrGraph
generateRmat(const RmatParams &params)
{
    GraphBuilder builder(VertexId{1} << params.scale);
    appendRmatEdges(builder, params);
    return builder.build();
}

CsrGraph
generateErdosRenyi(VertexId numVertices, EdgeId numEdges, bool undirected,
                   std::uint64_t seed)
{
    Rng rng(seed);
    GraphBuilder builder(numVertices);
    for (EdgeId e = 0; e < numEdges; ++e) {
        auto u = static_cast<VertexId>(rng.uniformInt(numVertices));
        auto v = static_cast<VertexId>(rng.uniformInt(numVertices));
        if (undirected)
            builder.addUndirectedEdge(u, v);
        else
            builder.addEdge(u, v);
    }
    return builder.build();
}

CsrGraph
generateBarabasiAlbert(VertexId numVertices, VertexId edgesPerVertex,
                       std::uint64_t seed)
{
    GRAPHITE_ASSERT(numVertices > edgesPerVertex,
                    "need more vertices than attachment edges");
    Rng rng(seed);
    GraphBuilder builder(numVertices);
    // Repeated-endpoint list: sampling uniformly from it realises
    // preferential attachment.
    std::vector<VertexId> endpoints;
    endpoints.reserve(static_cast<std::size_t>(numVertices) *
                      edgesPerVertex * 2);
    // Seed clique over the first edgesPerVertex + 1 vertices.
    for (VertexId v = 0; v <= edgesPerVertex; ++v) {
        for (VertexId u = 0; u < v; ++u) {
            builder.addUndirectedEdge(u, v);
            endpoints.push_back(u);
            endpoints.push_back(v);
        }
    }
    for (VertexId v = edgesPerVertex + 1; v < numVertices; ++v) {
        for (VertexId k = 0; k < edgesPerVertex; ++k) {
            const VertexId u =
                endpoints[rng.uniformInt(endpoints.size())];
            builder.addUndirectedEdge(u, v);
            endpoints.push_back(u);
            endpoints.push_back(v);
        }
    }
    return builder.build();
}

void
appendCommunityEdges(GraphBuilder &builder, const CommunityParams &params)
{
    const VertexId n = params.numVertices;
    GRAPHITE_ASSERT(params.communitySize >= 2,
                    "communities need at least two members");
    Rng rng(params.seed);
    // Shuffle ids into communities so vertex ids carry no locality.
    std::vector<VertexId> member(n);
    for (VertexId v = 0; v < n; ++v)
        member[v] = v;
    for (std::size_t i = n; i > 1; --i)
        std::swap(member[i - 1], member[rng.uniformInt(i)]);

    const VertexId communitySize = params.communitySize;
    for (VertexId slot = 0; slot < n; ++slot) {
        const VertexId v = member[slot];
        const VertexId communityBegin = slot / communitySize *
            communitySize;
        const VertexId communityEnd = std::min<VertexId>(
            communityBegin + communitySize, n);
        const VertexId span = communityEnd - communityBegin;
        for (VertexId h = 0; h < params.hubsPerCommunity && h < span;
             ++h) {
            const VertexId hub = member[communityBegin + h];
            if (hub != v)
                builder.addUndirectedEdge(v, hub);
        }
        for (VertexId k = 0; k < params.intraDegree; ++k) {
            const VertexId other = member[
                communityBegin + rng.uniformInt(span)];
            if (other != v)
                builder.addUndirectedEdge(v, other);
        }
        for (VertexId k = 0; k < params.interDegree; ++k) {
            const auto other =
                static_cast<VertexId>(rng.uniformInt(n));
            if (other != v)
                builder.addUndirectedEdge(v, other);
        }
    }
}

CsrGraph
generateCommunityGraph(const CommunityParams &params)
{
    GraphBuilder builder(params.numVertices);
    appendCommunityEdges(builder, params);
    return builder.build();
}

CsrGraph
generateClusteredRmat(const RmatParams &rmat,
                      const CommunityParams &community)
{
    const VertexId n = VertexId{1} << rmat.scale;
    GRAPHITE_ASSERT(community.numVertices == n,
                    "hybrid components must agree on the vertex count");
    GraphBuilder builder(n);
    appendRmatEdges(builder, rmat);
    appendCommunityEdges(builder, community);
    return builder.build();
}

CsrGraph
generateRing(VertexId numVertices, VertexId extraHops)
{
    GRAPHITE_ASSERT(numVertices >= 3, "ring needs at least 3 vertices");
    GraphBuilder builder(numVertices);
    for (VertexId v = 0; v < numVertices; ++v) {
        builder.addUndirectedEdge(v, (v + 1) % numVertices);
        for (VertexId h = 0; h < extraHops; ++h) {
            const VertexId skip = (v + 2 + h) % numVertices;
            if (skip != v)
                builder.addUndirectedEdge(v, skip);
        }
    }
    return builder.build();
}

} // namespace graphite
