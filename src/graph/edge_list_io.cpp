#include "graph/edge_list_io.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "graph/graph_builder.h"

namespace graphite {

CsrGraph
loadEdgeList(const std::string &path, VertexId numVertices, bool undirected)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open edge list '%s'", path.c_str());

    std::vector<std::pair<VertexId, VertexId>> edges;
    VertexId maxId = 0;
    std::string line;
    std::size_t lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream fields(line);
        std::uint64_t src;
        std::uint64_t dst;
        if (!(fields >> src >> dst)) {
            fatal("malformed edge at %s:%zu: '%s'", path.c_str(), lineNo,
                  line.c_str());
        }
        edges.emplace_back(static_cast<VertexId>(src),
                           static_cast<VertexId>(dst));
        maxId = std::max({maxId, static_cast<VertexId>(src),
                          static_cast<VertexId>(dst)});
    }
    if (numVertices == 0)
        numVertices = edges.empty() ? 0 : maxId + 1;

    GraphBuilder builder(numVertices);
    for (const auto &[src, dst] : edges) {
        if (undirected)
            builder.addUndirectedEdge(src, dst);
        else
            builder.addEdge(src, dst);
    }
    return builder.build();
}

void
saveEdgeList(const CsrGraph &graph, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write edge list '%s'", path.c_str());
    out << "# graphite edge list: " << graph.numVertices() << " vertices, "
        << graph.numEdges() << " edges\n";
    for (VertexId v = 0; v < graph.numVertices(); ++v) {
        for (VertexId u : graph.neighbors(v))
            out << v << ' ' << u << '\n';
    }
}

} // namespace graphite
