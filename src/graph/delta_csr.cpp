#include "graph/delta_csr.h"

#include <algorithm>
#include <vector>

#include "obs/metrics.h"

namespace graphite {

DeltaCsr::DeltaCsr(CsrGraph base, EdgeId maxDeltaEdges)
    : base_(std::move(base)), maxDeltaEdges_(maxDeltaEdges),
      baseRowsSorted_(base_.rowsSorted())
{
    GRAPHITE_ASSERT(base_.numVertices() > 0,
                    "DeltaCsr: base graph must have vertices");
    vertices_ =
        std::make_unique<VertexDelta[]>(base_.numVertices());
    // Worst case every vertex's chain wastes a partially filled tail
    // segment, so the pool must cover maxDeltaEdges spread one edge per
    // vertex. Sized once here; addEdge never allocates.
    poolSize_ = static_cast<std::size_t>(maxDeltaEdges_ + kSegmentEdges -
                                         1) /
                kSegmentEdges;
    poolSize_ += base_.numVertices();
    pool_ = std::make_unique<Segment[]>(poolSize_);
}

bool
DeltaCsr::edgeExists(VertexId src, VertexId dst) const
{
    const std::span<const VertexId> row = base_.neighbors(src);
    if (baseRowsSorted_) {
        if (std::binary_search(row.begin(), row.end(), dst))
            return true;
    } else {
        if (std::find(row.begin(), row.end(), dst) != row.end())
            return true;
    }
    bool found = false;
    forEachDeltaNeighbor(src, [&](VertexId neighbor) {
        found = found || neighbor == dst;
    });
    return found;
}

DeltaCsr::AddEdge
DeltaCsr::addEdge(VertexId src, VertexId dst)
{
    GRAPHITE_ASSERT(src < numVertices() && dst < numVertices(),
                    "addEdge: vertex out of range");
    if (src == dst)
        return AddEdge::SelfLoop;

    MutexLock lock(writerMutex_);
    if (deltaEdges_.load(std::memory_order_relaxed) >= maxDeltaEdges_)
        return AddEdge::PoolFull;
    if (edgeExists(src, dst))
        return AddEdge::Duplicate;

    VertexDelta &delta = vertices_[src];
    const EdgeId count = delta.count.load(std::memory_order_relaxed);
    const std::size_t slot =
        static_cast<std::size_t>(count) % kSegmentEdges;
    if (slot == 0) {
        // Chain needs a fresh segment. The pool is sized so this cannot
        // run dry before the delta budget trips above.
        GRAPHITE_ASSERT(poolCursor_ < poolSize_,
                        "addEdge: segment pool exhausted");
        const auto seg = static_cast<std::uint32_t>(poolCursor_++);
        pool_[seg].next.store(kNullSegment, std::memory_order_relaxed);
        pool_[seg].edges[0] = dst;
        if (count == 0) {
            // First delta edge: link the head before publishing.
            delta.head.store(seg, std::memory_order_relaxed);
        } else {
            pool_[delta.tail].next.store(seg,
                                         std::memory_order_release);
        }
        delta.tail = seg;
    } else {
        pool_[delta.tail].edges[slot] = dst;
    }
    // Publish: readers acquire-load count, so the edge value and chain
    // links above happen-before any reader that observes count+1.
    delta.count.store(count + 1, std::memory_order_release);
    deltaEdges_.fetch_add(1, std::memory_order_release);
    static obs::Counter &deltaEdgeCounter =
        obs::MetricsRegistry::global().counter("graph.delta_edges");
    deltaEdgeCounter.add(1);
    return AddEdge::Added;
}

DeltaCsr::RowView
DeltaCsr::neighborsView(VertexId v) const
{
    GRAPHITE_DCHECK(v < numVertices(),
                    "neighborsView: vertex out of range");
    const VertexDelta &delta = vertices_[v];
    RowView view;
    view.graph_ = this;
    const std::span<const VertexId> row = base_.neighbors(v);
    view.base_ = row.data();
    view.baseSize_ = row.size();
    view.deltaCount_ = static_cast<std::size_t>(
        delta.count.load(std::memory_order_acquire));
    view.head_ = delta.head.load(std::memory_order_relaxed);
    view.cursorSeg_ = view.head_;
    view.cursorBase_ = 0;
    return view;
}

VertexId
DeltaCsr::deltaNeighborAt(const RowView &view, std::size_t i) const
{
    GRAPHITE_DCHECK(i < view.deltaCount_,
                    "deltaNeighborAt: index out of range");
    // Random access restarts from the head; sequential access (the
    // sampler's pattern) advances the cursor one segment at a time.
    if (i < view.cursorBase_) {
        view.cursorSeg_ = view.head_;
        view.cursorBase_ = 0;
    }
    while (i >= view.cursorBase_ + kSegmentEdges) {
        GRAPHITE_DCHECK(view.cursorSeg_ != kNullSegment,
                        "deltaNeighborAt: chain shorter than count");
        view.cursorSeg_ = pool_[view.cursorSeg_].next.load(
            std::memory_order_acquire);
        view.cursorBase_ += kSegmentEdges;
    }
    GRAPHITE_DCHECK(view.cursorSeg_ != kNullSegment,
                    "deltaNeighborAt: chain shorter than count");
    return pool_[view.cursorSeg_].edges[i - view.cursorBase_];
}

CsrGraph
DeltaCsr::compacted() const
{
    const VertexId n = numVertices();
    std::vector<EdgeId> rowPtr(static_cast<std::size_t>(n) + 1, 0);
    for (VertexId v = 0; v < n; ++v)
        rowPtr[v + 1] = rowPtr[v] + degree(v);
    std::vector<VertexId> colIdx(static_cast<std::size_t>(rowPtr[n]));
    for (VertexId v = 0; v < n; ++v) {
        auto *out = colIdx.data() + rowPtr[v];
        const std::span<const VertexId> row = base_.neighbors(v);
        std::copy(row.begin(), row.end(), out);
        auto *cursor = out + row.size();
        forEachDeltaNeighbor(v, [&](VertexId neighbor) {
            *cursor++ = neighbor;
        });
        // GraphBuilder emits sorted rows; match it so compaction is
        // bitwise-identical to a from-scratch build of the edge set.
        std::sort(out, out + degree(v));
    }
    CsrGraph graph(std::move(rowPtr), std::move(colIdx));
    GRAPHITE_ASSERT(graph.validate() == nullptr,
                    "compacted: merged CSR failed validation");
    return graph;
}

void
DeltaCsr::compact()
{
    MutexLock lock(writerMutex_);
    if (deltaEdges_.load(std::memory_order_relaxed) == 0)
        return;
    base_ = compacted();
    baseRowsSorted_ = true;
    for (VertexId v = 0; v < numVertices(); ++v) {
        VertexDelta &delta = vertices_[v];
        delta.count.store(0, std::memory_order_relaxed);
        delta.head.store(kNullSegment, std::memory_order_relaxed);
        delta.tail = kNullSegment;
    }
    poolCursor_ = 0;
    deltaEdges_.store(0, std::memory_order_release);
    static obs::Counter &compactionCounter =
        obs::MetricsRegistry::global().counter("graph.compactions");
    compactionCounter.add(1);
}

const char *
DeltaCsr::validate() const
{
    const char *baseError = base_.validate();
    if (baseError != nullptr)
        return baseError;
    EdgeId total = 0;
    std::vector<VertexId> seen;
    for (VertexId v = 0; v < numVertices(); ++v) {
        const EdgeId count = deltaDegree(v);
        total += count;
        seen.clear();
        bool chainOk = true;
        forEachDeltaNeighbor(v, [&](VertexId neighbor) {
            if (neighbor >= numVertices())
                chainOk = false;
            // graphite-lint: allow(alloc) validation is a cold
            // diagnostic; the vector is reused across vertices.
            seen.push_back(neighbor);
        });
        if (!chainOk)
            return "delta neighbor id out of range";
        if (seen.size() != count)
            return "delta chain length disagrees with published count";
        for (const VertexId neighbor : seen) {
            if (neighbor == v)
                return "delta chain contains a self-loop";
        }
        std::sort(seen.begin(), seen.end());
        if (std::adjacent_find(seen.begin(), seen.end()) != seen.end())
            return "duplicate neighbor within a delta chain";
        const std::span<const VertexId> row = base_.neighbors(v);
        for (const VertexId neighbor : seen) {
            const bool inBase =
                baseRowsSorted_
                    ? std::binary_search(row.begin(), row.end(),
                                         neighbor)
                    : std::find(row.begin(), row.end(), neighbor) !=
                          row.end();
            if (inBase)
                return "delta neighbor duplicates a base edge";
        }
    }
    if (total != deltaEdges_.load(std::memory_order_acquire))
        return "per-vertex delta counts disagree with the total";
    return nullptr;
}

} // namespace graphite
