#include "graph/graph_builder.h"

#include <algorithm>

#include "common/assert.h"

namespace graphite {

GraphBuilder::GraphBuilder(VertexId numVertices)
    : numVertices_(numVertices)
{
}

void
GraphBuilder::addEdge(VertexId src, VertexId dst)
{
    GRAPHITE_ASSERT(src < numVertices_ && dst < numVertices_,
                    "edge endpoint out of range");
    edges_.emplace_back(src, dst);
}

void
GraphBuilder::addUndirectedEdge(VertexId u, VertexId v)
{
    addEdge(u, v);
    addEdge(v, u);
}

CsrGraph
GraphBuilder::build()
{
    std::sort(edges_.begin(), edges_.end());
    edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
    edges_.erase(std::remove_if(edges_.begin(), edges_.end(),
                                [](const auto &e) {
                                    return e.first == e.second;
                                }),
                 edges_.end());

    std::vector<EdgeId> rowPtr(numVertices_ + 1, 0);
    for (const auto &[src, dst] : edges_)
        ++rowPtr[src + 1];
    for (VertexId v = 0; v < numVertices_; ++v)
        rowPtr[v + 1] += rowPtr[v];
    std::vector<VertexId> colIdx(edges_.size());
    std::vector<EdgeId> cursor(rowPtr.begin(), rowPtr.end() - 1);
    for (const auto &[src, dst] : edges_)
        colIdx[cursor[src]++] = dst;

    edges_.clear();
    edges_.shrink_to_fit();
    return CsrGraph(std::move(rowPtr), std::move(colIdx));
}

} // namespace graphite
