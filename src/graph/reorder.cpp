#include "graph/reorder.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "common/assert.h"
#include "common/rng.h"
#include "graph/delta_csr.h"

namespace graphite {

namespace {

/**
 * Algorithm 3 core, shared by the CsrGraph and DeltaCsr overloads.
 * @p forEachNeighbor is forEachNeighbor(v, fn) over the full neighbor
 * set of the graph variant.
 */
template <typename GraphT, typename ForEachNeighbor>
ProcessingOrder
localityOrderImpl(const GraphT &graph, ForEachNeighbor &&forEachNeighbor)
{
    const VertexId n = graph.numVertices();
    // bucketOf[v] = the vertex whose bucket L_{u'} receives v.
    std::vector<VertexId> bucketOf(n);
    std::vector<VertexId> bucketSize(n, 0);
    for (VertexId v = 0; v < n; ++v) {
        VertexId best = v;
        EdgeId bestDeg = graph.degree(v);
        forEachNeighbor(v, [&](VertexId u) {
            if (graph.degree(u) > bestDeg) {
                best = u;
                bestDeg = graph.degree(u);
            }
        });
        bucketOf[v] = best;
        ++bucketSize[best];
    }
    // Emit buckets L_0, L_1, ... consecutively (paper Lines 8-12) using a
    // counting-sort layout so the whole pass stays O(|V| + |E|).
    std::vector<std::size_t> bucketStart(n + 1, 0);
    for (VertexId v = 0; v < n; ++v)
        bucketStart[v + 1] = bucketStart[v] + bucketSize[v];
    ProcessingOrder order(n);
    std::vector<std::size_t> cursor(bucketStart.begin(),
                                    bucketStart.end() - 1);
    for (VertexId v = 0; v < n; ++v)
        order[cursor[bucketOf[v]]++] = v;
    return order;
}

} // namespace

ProcessingOrder
localityOrder(const CsrGraph &graph)
{
    return localityOrderImpl(graph, [&](VertexId v, auto &&fn) {
        for (VertexId u : graph.neighbors(v))
            fn(u);
    });
}

ProcessingOrder
localityOrder(const DeltaCsr &graph)
{
    return localityOrderImpl(graph, [&](VertexId v, auto &&fn) {
        for (VertexId u : graph.baseNeighbors(v))
            fn(u);
        graph.forEachDeltaNeighbor(v, fn);
    });
}

const ProcessingOrder &
LocalityOrderCache::get(const DeltaCsr &graph)
{
    if (stale(graph)) {
        order_ = localityOrder(graph);
        computedAtEdges_ = graph.numEdges();
        ++recomputes_;
    }
    return order_;
}

bool
LocalityOrderCache::stale(const DeltaCsr &graph) const
{
    if (recomputes_ == 0)
        return true;
    const EdgeId now = graph.numEdges();
    const EdgeId grown =
        now > computedAtEdges_ ? now - computedAtEdges_ : 0;
    const double budget =
        maxStaleFraction_ * static_cast<double>(computedAtEdges_);
    return static_cast<double>(grown) > budget;
}

ProcessingOrder
identityOrder(const CsrGraph &graph)
{
    ProcessingOrder order(graph.numVertices());
    std::iota(order.begin(), order.end(), VertexId{0});
    return order;
}

ProcessingOrder
randomOrder(const CsrGraph &graph, std::uint64_t seed)
{
    ProcessingOrder order = identityOrder(graph);
    Rng rng(seed);
    // Fisher-Yates shuffle.
    for (std::size_t i = order.size(); i > 1; --i)
        std::swap(order[i - 1], order[rng.uniformInt(i)]);
    return order;
}

ProcessingOrder
degreeOrder(const CsrGraph &graph)
{
    ProcessingOrder order = identityOrder(graph);
    std::stable_sort(order.begin(), order.end(),
                     [&](VertexId a, VertexId b) {
                         return graph.degree(a) > graph.degree(b);
                     });
    return order;
}

ProcessingOrder
bfsOrder(const CsrGraph &graph)
{
    const VertexId n = graph.numVertices();
    ProcessingOrder order;
    // The unconditional runFrom(start) below would index visited[0] on
    // an empty graph.
    if (n == 0)
        return order;
    order.reserve(n);
    std::vector<bool> visited(n, false);

    // Start from the highest-degree vertex; restart from the next
    // unvisited id for further components.
    VertexId start = 0;
    for (VertexId v = 1; v < n; ++v) {
        if (graph.degree(v) > graph.degree(start))
            start = v;
    }
    VertexId nextUnvisited = 0;
    auto runFrom = [&](VertexId root) {
        visited[root] = true;
        std::size_t head = order.size();
        order.push_back(root);
        while (head < order.size()) {
            const VertexId v = order[head++];
            for (VertexId u : graph.neighbors(v)) {
                if (!visited[u]) {
                    visited[u] = true;
                    order.push_back(u);
                }
            }
        }
    };
    runFrom(start);
    while (order.size() < n) {
        while (visited[nextUnvisited])
            ++nextUnvisited;
        runFrom(nextUnvisited);
    }
    return order;
}

bool
isPermutation(const CsrGraph &graph, const ProcessingOrder &order)
{
    if (order.size() != graph.numVertices())
        return false;
    std::vector<bool> seen(order.size(), false);
    for (VertexId v : order) {
        if (v >= order.size() || seen[v])
            return false;
        seen[v] = true;
    }
    return true;
}

double
averageReuseDistance(const CsrGraph &graph, const ProcessingOrder &order,
                     std::size_t cap)
{
    GRAPHITE_ASSERT(isPermutation(graph, order),
                    "order must be a permutation of V");
    // lastTouch[u] = processing step at which u's features were last read.
    constexpr std::size_t kNever = ~std::size_t{0};
    std::vector<std::size_t> lastTouch(graph.numVertices(), kNever);
    double total = 0.0;
    std::size_t reuses = 0;
    for (std::size_t step = 0; step < order.size(); ++step) {
        const VertexId v = order[step];
        auto touch = [&](VertexId u) {
            // First touches are compulsory misses: every order pays
            // exactly |V| of them, so only genuine reuses enter the
            // average (capped so pathological distances do not drown
            // the locality signal).
            if (lastTouch[u] != kNever) {
                std::size_t dist = step - lastTouch[u];
                total += static_cast<double>(std::min(dist, cap));
                ++reuses;
            }
            lastTouch[u] = step;
        };
        for (VertexId u : graph.neighbors(v))
            touch(u);
        touch(v);
    }
    return reuses ? total / static_cast<double>(reuses) : 0.0;
}

} // namespace graphite
