/**
 * @file
 * Plain-text edge-list persistence, so users can bring their own graphs.
 *
 * Format: one `src dst` pair per line; `#`-prefixed lines are comments.
 * Vertex count is max id + 1 unless given explicitly.
 */

#pragma once

#include <string>

#include "graph/csr_graph.h"

namespace graphite {

/**
 * Load a graph from an edge-list text file.
 *
 * @param path file to read; fatal() on open failure or malformed lines.
 * @param numVertices vertex count, or 0 to infer max id + 1.
 * @param undirected if true each listed edge is added in both directions.
 */
CsrGraph loadEdgeList(const std::string &path, VertexId numVertices = 0,
                      bool undirected = false);

/** Write @p graph as an edge-list text file. */
void saveEdgeList(const CsrGraph &graph, const std::string &path);

} // namespace graphite
