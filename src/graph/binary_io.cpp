#include "graph/binary_io.h"

#include <cstring>
#include <fstream>
#include <vector>

#include "common/assert.h"

namespace graphite {

namespace {

constexpr char kMagic[4] = {'G', 'C', 'S', 'R'};
constexpr std::uint32_t kVersion = 1;

} // namespace

void
saveCsr(const CsrGraph &graph, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    out.write(kMagic, sizeof(kMagic));
    out.write(reinterpret_cast<const char *>(&kVersion),
              sizeof(kVersion));
    const std::uint64_t numVertices = graph.numVertices();
    const std::uint64_t numEdges = graph.numEdges();
    out.write(reinterpret_cast<const char *>(&numVertices),
              sizeof(numVertices));
    out.write(reinterpret_cast<const char *>(&numEdges),
              sizeof(numEdges));
    out.write(reinterpret_cast<const char *>(graph.rowPtr().data()),
              static_cast<std::streamsize>(
                  graph.rowPtr().size() * sizeof(EdgeId)));
    out.write(reinterpret_cast<const char *>(graph.colIdx().data()),
              static_cast<std::streamsize>(
                  graph.colIdx().size() * sizeof(VertexId)));
    if (!out)
        fatal("write error on '%s'", path.c_str());
}

CsrGraph
loadCsr(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open '%s'", path.c_str());
    char magic[4];
    in.read(magic, sizeof(magic));
    if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        fatal("'%s' is not a graphite CSR file", path.c_str());
    std::uint32_t version = 0;
    in.read(reinterpret_cast<char *>(&version), sizeof(version));
    if (version != kVersion)
        fatal("unsupported CSR file version %u", version);
    std::uint64_t numVertices = 0;
    std::uint64_t numEdges = 0;
    in.read(reinterpret_cast<char *>(&numVertices), sizeof(numVertices));
    in.read(reinterpret_cast<char *>(&numEdges), sizeof(numEdges));
    if (!in)
        fatal("truncated CSR header in '%s'", path.c_str());

    std::vector<EdgeId> rowPtr(numVertices + 1);
    std::vector<VertexId> colIdx(numEdges);
    in.read(reinterpret_cast<char *>(rowPtr.data()),
            static_cast<std::streamsize>(rowPtr.size() * sizeof(EdgeId)));
    in.read(reinterpret_cast<char *>(colIdx.data()),
            static_cast<std::streamsize>(colIdx.size() *
                                         sizeof(VertexId)));
    if (!in)
        fatal("truncated CSR arrays in '%s'", path.c_str());
    // The CsrGraph constructor revalidates the invariants, so corrupt
    // files panic with a clear message rather than producing UB.
    return CsrGraph(std::move(rowPtr), std::move(colIdx));
}

bool
isCsrFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    char magic[4];
    in.read(magic, sizeof(magic));
    return in && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
}

} // namespace graphite
