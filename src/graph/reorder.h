/**
 * @file
 * Vertex processing orders for the aggregation phase.
 *
 * The order in which aggregation visits vertices determines the reuse
 * distance of shared neighbors' feature vectors (paper Section 4.4). A
 * processing order is a permutation M of V: aggregation handles M[i+1]
 * immediately after M[i]. This module implements the paper's greedy
 * locality order (Algorithm 3) plus the identity/random/degree-sorted
 * orders used as experimental controls (Figure 15).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"

namespace graphite {

/** A vertex processing order: processingOrder[i] is the i-th vertex. */
using ProcessingOrder = std::vector<VertexId>;

/**
 * Paper Algorithm 3: assign each vertex to the bucket of its
 * highest-degree neighbor (ties broken toward the lower id, with the
 * vertex itself as the initial candidate), then emit buckets
 * consecutively. O(|V| + |E|) time.
 */
ProcessingOrder localityOrder(const CsrGraph &graph);

/** Identity order 0, 1, ..., |V|-1. */
ProcessingOrder identityOrder(const CsrGraph &graph);

/** Uniformly random permutation (Figure 15's `randomized` control). */
ProcessingOrder randomOrder(const CsrGraph &graph, std::uint64_t seed);

/** Vertices sorted by descending degree (a common locality heuristic). */
ProcessingOrder degreeOrder(const CsrGraph &graph);

/**
 * Breadth-first order from the highest-degree vertex (disconnected
 * components appended in id order): the classic graph-processing
 * locality baseline the greedy Algorithm 3 competes with.
 */
ProcessingOrder bfsOrder(const CsrGraph &graph);

/** @return true iff @p order is a permutation of [0, |V|). */
bool isPermutation(const CsrGraph &graph, const ProcessingOrder &order);

/**
 * Average reuse distance proxy: over every *re*-gathered feature vector,
 * the number of processing steps since its previous touch, capped at
 * @p cap. First touches are compulsory misses that every order pays
 * equally, so they are excluded. Cheap model used by tests to verify
 * that localityOrder actually shortens reuse distances.
 */
double averageReuseDistance(const CsrGraph &graph,
                            const ProcessingOrder &order,
                            std::size_t cap = 1u << 20);

} // namespace graphite
