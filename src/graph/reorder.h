/**
 * @file
 * Vertex processing orders for the aggregation phase.
 *
 * The order in which aggregation visits vertices determines the reuse
 * distance of shared neighbors' feature vectors (paper Section 4.4). A
 * processing order is a permutation M of V: aggregation handles M[i+1]
 * immediately after M[i]. This module implements the paper's greedy
 * locality order (Algorithm 3) plus the identity/random/degree-sorted
 * orders used as experimental controls (Figure 15).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"

namespace graphite {

class DeltaCsr;

/** A vertex processing order: processingOrder[i] is the i-th vertex. */
using ProcessingOrder = std::vector<VertexId>;

/**
 * Paper Algorithm 3: assign each vertex to the bucket of its
 * highest-degree neighbor (ties broken toward the lower id, with the
 * vertex itself as the initial candidate), then emit buckets
 * consecutively. O(|V| + |E|) time.
 */
ProcessingOrder localityOrder(const CsrGraph &graph);

/**
 * Algorithm 3 over a delta-CSR overlay: degrees and neighbor sets
 * include published delta edges, so the order reflects hub growth
 * under churn. Matches localityOrder(CsrGraph) exactly when the
 * overlay holds no deltas.
 */
ProcessingOrder localityOrder(const DeltaCsr &graph);

/**
 * Staleness-bounded cache of the Algorithm 3 locality order over a
 * mutating graph (DESIGN.md §14). Recomputing the order is O(|V|+|E|),
 * far too expensive per insert, while a stale order only costs cache
 * locality, never correctness — so the policy is: reuse the cached
 * order until the overlay has absorbed more than
 * maxStaleFraction × |E at last compute| new edges, then recompute on
 * the next get(). Not thread-safe; callers serialize get() with the
 * graph's writer.
 */
class LocalityOrderCache
{
  public:
    /**
     * @param maxStaleFraction delta-edge budget as a fraction of the
     *        edge count at last compute (default 5%).
     */
    explicit LocalityOrderCache(double maxStaleFraction = 0.05)
        : maxStaleFraction_(maxStaleFraction)
    {
    }

    /** Cached order, recomputed when past the staleness budget. */
    const ProcessingOrder &get(const DeltaCsr &graph);

    /** True when the next get() will recompute. */
    bool stale(const DeltaCsr &graph) const;

    /** Orders computed so far (tests and staleness accounting). */
    std::size_t recomputes() const { return recomputes_; }

  private:
    double maxStaleFraction_;
    ProcessingOrder order_;
    /** numEdges() the cached order was computed at; 0 = never. */
    EdgeId computedAtEdges_ = 0;
    std::size_t recomputes_ = 0;
};

/** Identity order 0, 1, ..., |V|-1. */
ProcessingOrder identityOrder(const CsrGraph &graph);

/** Uniformly random permutation (Figure 15's `randomized` control). */
ProcessingOrder randomOrder(const CsrGraph &graph, std::uint64_t seed);

/** Vertices sorted by descending degree (a common locality heuristic). */
ProcessingOrder degreeOrder(const CsrGraph &graph);

/**
 * Breadth-first order from the highest-degree vertex (disconnected
 * components appended in id order): the classic graph-processing
 * locality baseline the greedy Algorithm 3 competes with.
 */
ProcessingOrder bfsOrder(const CsrGraph &graph);

/** @return true iff @p order is a permutation of [0, |V|). */
bool isPermutation(const CsrGraph &graph, const ProcessingOrder &order);

/**
 * Average reuse distance proxy: over every *re*-gathered feature vector,
 * the number of processing steps since its previous touch, capped at
 * @p cap. First touches are compulsory misses that every order pays
 * equally, so they are excluded. Cheap model used by tests to verify
 * that localityOrder actually shortens reuse distances.
 */
double averageReuseDistance(const CsrGraph &graph,
                            const ProcessingOrder &order,
                            std::size_t cap = 1u << 20);

} // namespace graphite
