#include "graph/graph_stats.h"

#include <cstdio>

namespace graphite {

GraphStats
computeGraphStats(const CsrGraph &graph)
{
    GraphStats stats;
    stats.numVertices = graph.numVertices();
    stats.numEdges = graph.numEdges();
    if (stats.numVertices == 0)
        return stats;

    double sum = 0.0;
    double sumSq = 0.0;
    for (VertexId v = 0; v < stats.numVertices; ++v) {
        const double deg = static_cast<double>(graph.degree(v));
        sum += deg;
        sumSq += deg * deg;
        if (graph.degree(v) > stats.maxDegree)
            stats.maxDegree = graph.degree(v);
    }
    const double n = stats.numVertices;
    stats.avgDegree = sum / n;
    stats.degreeVariance = sumSq / n - stats.avgDegree * stats.avgDegree;
    stats.adjacencySparsity =
        1.0 - static_cast<double>(stats.numEdges) / (n * n);
    return stats;
}

std::string
formatGraphStats(const std::string &name, const GraphStats &stats,
                 std::size_t inputFeatures)
{
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%-10s |V|=%-9u |E|=%-11llu avgDeg=%-7.1f maxDeg=%-8llu "
                  "varDeg=%-11.1f F_in=%zu",
                  name.c_str(), stats.numVertices,
                  static_cast<unsigned long long>(stats.numEdges),
                  stats.avgDegree,
                  static_cast<unsigned long long>(stats.maxDegree),
                  stats.degreeVariance, inputFeatures);
    return line;
}

} // namespace graphite
