#include "graph/graph_stats.h"

#include <cstdio>

#include "graph/delta_csr.h"

namespace graphite {

namespace {

/** Shared by the CsrGraph and DeltaCsr overloads. */
template <typename GraphT>
GraphStats
computeGraphStatsImpl(const GraphT &graph)
{
    GraphStats stats;
    stats.numVertices = graph.numVertices();
    stats.numEdges = graph.numEdges();
    if (stats.numVertices == 0)
        return stats;

    double sum = 0.0;
    double sumSq = 0.0;
    for (VertexId v = 0; v < stats.numVertices; ++v) {
        const EdgeId degree = graph.degree(v);
        const double deg = static_cast<double>(degree);
        sum += deg;
        sumSq += deg * deg;
        if (degree > stats.maxDegree)
            stats.maxDegree = degree;
    }
    const double n = stats.numVertices;
    stats.avgDegree = sum / n;
    stats.degreeVariance = sumSq / n - stats.avgDegree * stats.avgDegree;
    stats.adjacencySparsity =
        1.0 - static_cast<double>(stats.numEdges) / (n * n);
    return stats;
}

} // namespace

GraphStats
computeGraphStats(const CsrGraph &graph)
{
    return computeGraphStatsImpl(graph);
}

GraphStats
computeGraphStats(const DeltaCsr &graph)
{
    return computeGraphStatsImpl(graph);
}

IncrementalGraphStats::IncrementalGraphStats(const GraphStats &initial)
    : numVertices_(initial.numVertices), numEdges_(initial.numEdges),
      maxDegree_(initial.maxDegree)
{
    // Rebuild the running moments from the summary: sumSq follows from
    // the variance identity var = sumSq/n - avg².
    const double n = numVertices_;
    sumDeg_ = initial.avgDegree * n;
    sumSq_ = (initial.degreeVariance +
              initial.avgDegree * initial.avgDegree) *
             n;
}

void
IncrementalGraphStats::onEdgeInserted(EdgeId newDegree)
{
    GRAPHITE_ASSERT(newDegree > 0,
                    "onEdgeInserted: post-insert degree must be > 0");
    numEdges_ += 1;
    sumDeg_ += 1.0;
    // d² → (d+1)² adds 2d + 1 with d = newDegree - 1.
    sumSq_ += 2.0 * static_cast<double>(newDegree) - 1.0;
    if (newDegree > maxDegree_)
        maxDegree_ = newDegree;
}

GraphStats
IncrementalGraphStats::current() const
{
    GraphStats stats;
    stats.numVertices = numVertices_;
    stats.numEdges = numEdges_;
    stats.maxDegree = maxDegree_;
    if (numVertices_ == 0)
        return stats;
    const double n = numVertices_;
    stats.avgDegree = sumDeg_ / n;
    stats.degreeVariance = sumSq_ / n - stats.avgDegree * stats.avgDegree;
    stats.adjacencySparsity =
        1.0 - static_cast<double>(numEdges_) / (n * n);
    return stats;
}

std::string
formatGraphStats(const std::string &name, const GraphStats &stats,
                 std::size_t inputFeatures)
{
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%-10s |V|=%-9u |E|=%-11llu avgDeg=%-7.1f maxDeg=%-8llu "
                  "varDeg=%-11.1f F_in=%zu",
                  name.c_str(), stats.numVertices,
                  static_cast<unsigned long long>(stats.numEdges),
                  stats.avgDegree,
                  static_cast<unsigned long long>(stats.maxDegree),
                  stats.degreeVariance, inputFeatures);
    return line;
}

} // namespace graphite
