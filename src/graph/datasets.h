/**
 * @file
 * The four evaluation datasets as parameterised synthetic analogues.
 *
 * Paper Table 3 characterises products, wikipedia, papers and twitter by
 * |V|, |E|, average/max/variance degree and input-feature width. We expose
 * the same four names with a scale knob: at scale 1.0 the analogue keeps
 * each dataset's average degree, skew class and feature width while
 * shrinking |V| to a size a single host can process in seconds. The ratio
 * of working-set to last-level-cache size — the property all memory-bound
 * conclusions hinge on — is preserved by the simulator's cache sizing.
 */

#pragma once

#include <string>
#include <vector>

#include "graph/csr_graph.h"

namespace graphite {

/** Identifier for one of the paper's evaluation datasets. */
enum class DatasetId { Products, Wikipedia, Papers, Twitter };

/** A generated dataset analogue plus its metadata. */
struct Dataset
{
    std::string name;
    DatasetId id;
    CsrGraph graph;
    /** Input feature width F_input (Table 3). */
    std::size_t inputFeatures = 0;
    /** Hidden feature width (paper Section 6: 256). */
    std::size_t hiddenFeatures = 256;
};

/** Generator family used for a dataset analogue. */
enum class DatasetGenerator
{
    /** R-MAT power-law (papers/twitter/wikipedia analogues). */
    Rmat,
    /**
     * Planted communities (products analogue): co-purchase networks
     * are highly clustered, which is what makes the paper's locality
     * reordering shine on products (Section 7.2.4).
     */
    Community,
};

/** Configuration blueprint of one dataset analogue. */
struct DatasetSpec
{
    std::string name;
    DatasetId id;
    /** log2(|V|) at scale 1.0. */
    unsigned scaleLog2 = 16;
    double avgDegree = 16.0;
    /** R-MAT `a` quadrant weight — larger means heavier degree skew. */
    double rmatA = 0.57;
    bool undirected = false;
    std::size_t inputFeatures = 256;
    DatasetGenerator generator = DatasetGenerator::Rmat;
};

/** Blueprint for @p id (values in DESIGN.md Section 4). */
DatasetSpec datasetSpec(DatasetId id);

/** All four dataset ids in paper order. */
std::vector<DatasetId> allDatasets();

/**
 * Generate the analogue for @p id.
 *
 * @param scaleShift subtracted from the blueprint's scaleLog2 so benches
 *        can run smaller instances (e.g. shift 2 => |V|/4). Feature widths
 *        are unchanged.
 */
Dataset makeDataset(DatasetId id, unsigned scaleShift = 0,
                    std::uint64_t seed = 1);

/** Parse a dataset name ("products", ...); fatal() on unknown names. */
DatasetId parseDatasetName(const std::string &name);

} // namespace graphite
