/**
 * @file
 * Degree statistics — the columns of the paper's Table 3.
 */

#pragma once

#include <string>

#include "graph/csr_graph.h"

namespace graphite {

class DeltaCsr;

/** Summary statistics of a graph's degree distribution. */
struct GraphStats
{
    VertexId numVertices = 0;
    EdgeId numEdges = 0;
    double avgDegree = 0.0;
    EdgeId maxDegree = 0;
    /** Population variance of the out-degree. */
    double degreeVariance = 0.0;
    /** Fraction of adjacency-matrix entries that are zero. */
    double adjacencySparsity = 0.0;
};

/** Compute GraphStats for @p graph in one pass. */
GraphStats computeGraphStats(const CsrGraph &graph);

/** GraphStats over a delta-CSR overlay (base + published deltas). */
GraphStats computeGraphStats(const DeltaCsr &graph);

/**
 * O(1)-per-edge maintenance of GraphStats under edge inserts, so the
 * dynamic serving path (DESIGN.md §14) keeps Table-3-style stats live
 * without an O(|V|) rescan per mutation. Seeded from a full
 * computeGraphStats() pass; onEdgeInserted() folds one new edge into
 * the degree moments:
 *
 *   numEdges' = numEdges + 1
 *   sumDeg'   = sumDeg + 1
 *   sumSq'    = sumSq + 2 * newDegree - 1   (d² → (d+1)²)
 *
 * avg/variance/max/sparsity are recomputed from the moments on read.
 * Exact (up to float rounding), not an approximation — tests compare
 * against a from-scratch recompute.
 */
class IncrementalGraphStats
{
  public:
    /** Seed from a full pass over @p initial. */
    explicit IncrementalGraphStats(const GraphStats &initial);

    /**
     * Fold in one inserted edge whose source vertex now has out-degree
     * @p newDegree (i.e. the post-insert degree).
     */
    void onEdgeInserted(EdgeId newDegree);

    /** Current statistics (recomputed from the running moments). */
    GraphStats current() const;

  private:
    VertexId numVertices_;
    EdgeId numEdges_;
    EdgeId maxDegree_;
    double sumDeg_;
    double sumSq_;
};

/** Human-readable one-line rendering (Table 3 row format). */
std::string formatGraphStats(const std::string &name,
                             const GraphStats &stats,
                             std::size_t inputFeatures);

} // namespace graphite
