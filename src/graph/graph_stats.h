/**
 * @file
 * Degree statistics — the columns of the paper's Table 3.
 */

#pragma once

#include <string>

#include "graph/csr_graph.h"

namespace graphite {

/** Summary statistics of a graph's degree distribution. */
struct GraphStats
{
    VertexId numVertices = 0;
    EdgeId numEdges = 0;
    double avgDegree = 0.0;
    EdgeId maxDegree = 0;
    /** Population variance of the out-degree. */
    double degreeVariance = 0.0;
    /** Fraction of adjacency-matrix entries that are zero. */
    double adjacencySparsity = 0.0;
};

/** Compute GraphStats for @p graph in one pass. */
GraphStats computeGraphStats(const CsrGraph &graph);

/** Human-readable one-line rendering (Table 3 row format). */
std::string formatGraphStats(const std::string &name,
                             const GraphStats &stats,
                             std::size_t inputFeatures);

} // namespace graphite
