#include "compress/mask_compress.h"

#include <bit>

#include "common/assert.h"

#if defined(__AVX512F__) && defined(__AVX512VL__) && defined(__AVX512BW__)
#define GRAPHITE_HAVE_AVX512 1
#include <immintrin.h>
#else
#define GRAPHITE_HAVE_AVX512 0
#endif

namespace graphite {

std::size_t
compressRowScalar(const Feature *src, std::size_t n, Feature *dstValues,
                  std::uint16_t *dstMask)
{
    GRAPHITE_ASSERT(n % kMaskGroup == 0, "row length must be 16-aligned");
    std::size_t out = 0;
    for (std::size_t g = 0; g < n; g += kMaskGroup) {
        std::uint16_t mask = 0;
        for (std::size_t lane = 0; lane < kMaskGroup; ++lane) {
            const Feature v = src[g + lane];
            if (v != 0.0f) {
                mask |= static_cast<std::uint16_t>(1u << lane);
                dstValues[out++] = v;
            }
        }
        dstMask[g / kMaskGroup] = mask;
    }
    return out;
}

std::size_t
decompressRowScalar(const Feature *srcValues, const std::uint16_t *srcMask,
                    std::size_t n, Feature *dst)
{
    GRAPHITE_ASSERT(n % kMaskGroup == 0, "row length must be 16-aligned");
    std::size_t in = 0;
    for (std::size_t g = 0; g < n; g += kMaskGroup) {
        const std::uint16_t mask = srcMask[g / kMaskGroup];
        for (std::size_t lane = 0; lane < kMaskGroup; ++lane) {
            dst[g + lane] =
                (mask >> lane) & 1 ? srcValues[in++] : 0.0f;
        }
    }
    return in;
}

std::size_t
accumulateExpandedScalar(const Feature *srcValues,
                         const std::uint16_t *srcMask, std::size_t n,
                         Feature factor, Feature *dst)
{
    GRAPHITE_ASSERT(n % kMaskGroup == 0, "row length must be 16-aligned");
    std::size_t in = 0;
    for (std::size_t g = 0; g < n; g += kMaskGroup) {
        const std::uint16_t mask = srcMask[g / kMaskGroup];
        for (std::size_t lane = 0; lane < kMaskGroup; ++lane) {
            if ((mask >> lane) & 1)
                dst[g + lane] += factor * srcValues[in++];
        }
    }
    return in;
}

#if GRAPHITE_HAVE_AVX512

std::size_t
compressRow(const Feature *src, std::size_t n, Feature *dstValues,
            std::uint16_t *dstMask)
{
    GRAPHITE_ASSERT(n % kMaskGroup == 0, "row length must be 16-aligned");
    const __m512 zero = _mm512_setzero_ps();
    std::size_t out = 0;
    for (std::size_t g = 0; g < n; g += kMaskGroup) {
        const __m512 vec = _mm512_loadu_ps(src + g);
        // Step 1 (Fig. 6a): compare against zero for the non-zero mask.
        const __mmask16 mask = _mm512_cmp_ps_mask(vec, zero, _CMP_NEQ_OQ);
        // Step 2 (Fig. 6b): bubble-collapse into the packed run.
        _mm512_mask_compressstoreu_ps(dstValues + out, mask, vec);
        dstMask[g / kMaskGroup] = static_cast<std::uint16_t>(mask);
        out += static_cast<std::size_t>(std::popcount(
            static_cast<unsigned>(mask)));
    }
    return out;
}

std::size_t
decompressRow(const Feature *srcValues, const std::uint16_t *srcMask,
              std::size_t n, Feature *dst)
{
    GRAPHITE_ASSERT(n % kMaskGroup == 0, "row length must be 16-aligned");
    std::size_t in = 0;
    for (std::size_t g = 0; g < n; g += kMaskGroup) {
        const __mmask16 mask = srcMask[g / kMaskGroup];
        // Fig. 6c: bubble-expand the packed run, zero-filling gaps.
        const __m512 vec =
            _mm512_maskz_expandloadu_ps(mask, srcValues + in);
        _mm512_storeu_ps(dst + g, vec);
        in += static_cast<std::size_t>(std::popcount(
            static_cast<unsigned>(mask)));
    }
    return in;
}

std::size_t
accumulateExpanded(const Feature *srcValues, const std::uint16_t *srcMask,
                   std::size_t n, Feature factor, Feature *dst)
{
    GRAPHITE_ASSERT(n % kMaskGroup == 0, "row length must be 16-aligned");
    const __m512 factorVec = _mm512_set1_ps(factor);
    std::size_t in = 0;
    for (std::size_t g = 0; g < n; g += kMaskGroup) {
        const __mmask16 mask = srcMask[g / kMaskGroup];
        const __m512 vec =
            _mm512_maskz_expandloadu_ps(mask, srcValues + in);
        const __m512 acc = _mm512_loadu_ps(dst + g);
        _mm512_storeu_ps(dst + g, _mm512_fmadd_ps(vec, factorVec, acc));
        in += static_cast<std::size_t>(std::popcount(
            static_cast<unsigned>(mask)));
    }
    return in;
}

bool
compressionUsesAvx512()
{
    return true;
}

#else // !GRAPHITE_HAVE_AVX512

std::size_t
compressRow(const Feature *src, std::size_t n, Feature *dstValues,
            std::uint16_t *dstMask)
{
    return compressRowScalar(src, n, dstValues, dstMask);
}

std::size_t
decompressRow(const Feature *srcValues, const std::uint16_t *srcMask,
              std::size_t n, Feature *dst)
{
    return decompressRowScalar(srcValues, srcMask, n, dst);
}

std::size_t
accumulateExpanded(const Feature *srcValues, const std::uint16_t *srcMask,
                   std::size_t n, Feature factor, Feature *dst)
{
    return accumulateExpandedScalar(srcValues, srcMask, n, factor, dst);
}

bool
compressionUsesAvx512()
{
    return false;
}

#endif // GRAPHITE_HAVE_AVX512

std::size_t
maskPopcount(const std::uint16_t *mask, std::size_t words)
{
    std::size_t total = 0;
    for (std::size_t w = 0; w < words; ++w)
        total += static_cast<std::size_t>(std::popcount(
            static_cast<unsigned>(mask[w])));
    return total;
}

} // namespace graphite
