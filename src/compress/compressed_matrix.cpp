#include "compress/compressed_matrix.h"

#include "common/assert.h"
#include "parallel/thread_pool.h"

namespace graphite {

namespace {
std::size_t
paddedStride(std::size_t cols)
{
    return (cols + kFloatsPerLine - 1) / kFloatsPerLine * kFloatsPerLine;
}
} // namespace

CompressedMatrix::CompressedMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), rowStride_(paddedStride(cols)),
      values_(rows * paddedStride(cols)),
      masks_(rows * maskWordsFor(cols)), nnz_(rows)
{
}

void
CompressedMatrix::reshape(std::size_t rows, std::size_t cols)
{
    rows_ = rows;
    cols_ = cols;
    rowStride_ = paddedStride(cols);
    if (values_.size() < rows * rowStride_)
        values_.resize(rows * rowStride_);
    if (masks_.size() < rows * maskWordsFor(cols))
        masks_.resize(rows * maskWordsFor(cols));
    if (nnz_.size() < rows)
        nnz_.resize(rows);
}

void
CompressedMatrix::compressRowFrom(std::size_t r, const Feature *denseRow)
{
    // The padded tail of a dense row is zero, so compressing the padded
    // stride yields the same packed run as compressing just cols_ while
    // keeping every group 16-wide.
    nnz_[r] = static_cast<std::uint32_t>(
        compressRow(denseRow, rowStride_, values(r), mask(r)));
}

void
CompressedMatrix::compressFrom(const DenseMatrix &dense)
{
    GRAPHITE_ASSERT(dense.rows() == rows_ && dense.cols() == cols_,
                    "compress shape mismatch");
    GRAPHITE_ASSERT(dense.rowStride() == rowStride_, "stride mismatch");
    parallelFor(0, rows_, 256,
                [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t r = begin; r < end; ++r)
            compressRowFrom(r, dense.row(r));
    });
}

void
CompressedMatrix::decompressRowTo(std::size_t r, Feature *denseRow) const
{
    decompressRow(values(r), mask(r), rowStride_, denseRow);
}

void
CompressedMatrix::decompressTo(DenseMatrix &dense) const
{
    GRAPHITE_ASSERT(dense.rows() == rows_ && dense.cols() == cols_,
                    "decompress shape mismatch");
    GRAPHITE_ASSERT(dense.rowStride() == rowStride_, "stride mismatch");
    parallelFor(0, rows_, 256,
                [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t r = begin; r < end; ++r)
            decompressRowTo(r, dense.row(r));
    });
}

void
CompressedMatrix::accumulateRow(std::size_t r, Feature factor,
                                Feature *dst) const
{
    accumulateExpanded(values(r), mask(r), rowStride_, factor, dst);
}

std::size_t
CompressedMatrix::linesTouched(std::size_t r) const
{
    const std::size_t valueBytes = nnz_[r] * sizeof(Feature);
    const std::size_t valueLines =
        (valueBytes + kCacheLineBytes - 1) / kCacheLineBytes;
    // Masks for many rows share lines; charge this row's proportional
    // share, at least one line when it has any data.
    const std::size_t maskBytes =
        maskWordsPerRow() * sizeof(std::uint16_t);
    const std::size_t maskLines =
        (maskBytes + kCacheLineBytes - 1) / kCacheLineBytes;
    return valueLines + maskLines;
}

Bytes
CompressedMatrix::compressedTrafficBytes() const
{
    Bytes total = 0;
    for (std::size_t r = 0; r < rows_; ++r)
        total += nnz_[r] * sizeof(Feature);
    total += rows_ * maskWordsPerRow() * sizeof(std::uint16_t);
    return total;
}

Bytes
CompressedMatrix::denseTrafficBytes() const
{
    return static_cast<Bytes>(rows_) * rowStride_ * sizeof(Feature);
}

} // namespace graphite
