/**
 * @file
 * Compressed feature matrix with constant-stride rows.
 *
 * Per paper Section 4.3, compression exists to cut DRAM *traffic*, not
 * footprint: each row keeps its full fixed-size slot (so random access
 * stays an O(1) pointer computation, no indirection) and only the leading
 * nnz(v) values of the slot hold packed data. A sidecar array holds the
 * per-row bit masks and non-zero counts. Traffic accounting helpers
 * report how many cache lines a reader actually touches per row — the
 * quantity the benches and the timing simulator charge to DRAM.
 */

#pragma once

#include <cstdint>

#include "common/aligned_buffer.h"
#include "compress/mask_compress.h"
#include "tensor/dense_matrix.h"

namespace graphite {

/** Fixed-stride mask-compressed float matrix. */
class CompressedMatrix
{
  public:
    CompressedMatrix() = default;

    /** Allocate storage for rows x cols (stride-padded like DenseMatrix). */
    CompressedMatrix(std::size_t rows, std::size_t cols);

    /**
     * Redimension without reallocating when the existing storage is
     * large enough (grow-only otherwise). Row contents become
     * unspecified: every row must be rewritten (compressFrom /
     * compressRowFrom) before it is read. The reuse primitive behind
     * the inference ping-pong buffers.
     */
    void reshape(std::size_t rows, std::size_t cols);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t rowStride() const { return rowStride_; }

    /** Mask words (uint16) per row. */
    std::size_t maskWordsPerRow() const { return maskWordsFor(cols_); }

    /** Packed value slot of row @p r (capacity rowStride() floats). */
    Feature *values(std::size_t r) { return values_.data() + r * rowStride_; }
    const Feature *
    values(std::size_t r) const
    {
        return values_.data() + r * rowStride_;
    }

    /** Mask words of row @p r. */
    std::uint16_t *
    mask(std::size_t r)
    {
        return masks_.data() + r * maskWordsPerRow();
    }
    const std::uint16_t *
    mask(std::size_t r) const
    {
        return masks_.data() + r * maskWordsPerRow();
    }

    /** Number of packed values currently stored in row @p r. */
    std::size_t nnz(std::size_t r) const { return nnz_[r]; }

    /** Compress one padded dense row into row @p r. */
    void compressRowFrom(std::size_t r, const Feature *denseRow);

    /** Compress every row of @p dense (parallel). */
    void compressFrom(const DenseMatrix &dense);

    /** Decompress row @p r into @p denseRow (rowStride floats). */
    void decompressRowTo(std::size_t r, Feature *denseRow) const;

    /** Decompress all rows into @p dense (parallel). */
    void decompressTo(DenseMatrix &dense) const;

    /**
     * dst[0..cols) += factor * row r (expanded on the fly, no
     * intermediate dense copy).
     */
    void accumulateRow(std::size_t r, Feature factor, Feature *dst) const;

    /**
     * Cache lines a reader touches for row @p r: packed values rounded up
     * to lines, plus this row's share of mask lines.
     */
    std::size_t linesTouched(std::size_t r) const;

    /** Total bytes a streaming reader of the whole matrix transfers. */
    Bytes compressedTrafficBytes() const;

    /** Bytes the equivalent dense matrix would transfer. */
    Bytes denseTrafficBytes() const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::size_t rowStride_ = 0;
    AlignedBuffer<Feature> values_;
    AlignedBuffer<std::uint16_t> masks_;
    AlignedBuffer<std::uint32_t> nnz_;
};

} // namespace graphite
