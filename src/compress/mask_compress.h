/**
 * @file
 * Mask-based sparse-vector (de)compression (paper Section 4.3, Figure 6).
 *
 * Compression: compare a 16-float vector against zero to produce a 16-bit
 * mask, then bubble-collapse the non-zeros into a contiguous run
 * (vcompressps). Decompression: bubble-expand the run back using the saved
 * mask (vexpandps). The mask is the only metadata — 1 bit per element,
 * 3.125% overhead for 32-bit features regardless of sparsity.
 *
 * AVX-512 implementations are used when the build target supports
 * AVX512F+VL+BW; a bit-exact scalar fallback covers other targets and
 * serves as the test oracle.
 */

#pragma once

#include <cstddef>
#include <cstdint>

#include "common/types.h"

namespace graphite {

/** Number of lanes covered by one compression mask word. */
inline constexpr std::size_t kMaskGroup = 16;

/** Mask words needed to cover @p n elements. */
inline constexpr std::size_t
maskWordsFor(std::size_t n)
{
    return (n + kMaskGroup - 1) / kMaskGroup;
}

/**
 * Compress @p n floats from @p src: write the packed non-zeros to
 * @p dstValues and one 16-bit mask per 16-element group to @p dstMask.
 *
 * @return number of non-zero values written.
 *
 * @pre n is a multiple of 16 (feature rows are stride-padded to 16).
 * @pre dstValues has room for n floats (worst case: fully dense).
 */
std::size_t compressRow(const Feature *src, std::size_t n,
                        Feature *dstValues, std::uint16_t *dstMask);

/**
 * Decompress into @p dst (n floats) from packed values + masks.
 *
 * @return number of packed values consumed.
 */
std::size_t decompressRow(const Feature *srcValues,
                          const std::uint16_t *srcMask, std::size_t n,
                          Feature *dst);

/**
 * Fused decompress-and-accumulate: dst[0..n) += factor * expand(src).
 * This is the aggregation fast path — the expanded vector never takes a
 * trip through memory.
 *
 * @return number of packed values consumed.
 */
std::size_t accumulateExpanded(const Feature *srcValues,
                               const std::uint16_t *srcMask, std::size_t n,
                               Feature factor, Feature *dst);

/** Count of non-zeros recorded in @p words mask words. */
std::size_t maskPopcount(const std::uint16_t *mask, std::size_t words);

/** True when the AVX-512 fast path is compiled in and used. */
bool compressionUsesAvx512();

/**
 * Scalar reference implementations (always available; used as the oracle
 * in differential tests).
 * @{
 */
std::size_t compressRowScalar(const Feature *src, std::size_t n,
                              Feature *dstValues, std::uint16_t *dstMask);
std::size_t decompressRowScalar(const Feature *srcValues,
                                const std::uint16_t *srcMask, std::size_t n,
                                Feature *dst);
std::size_t accumulateExpandedScalar(const Feature *srcValues,
                                     const std::uint16_t *srcMask,
                                     std::size_t n, Feature factor,
                                     Feature *dst);
/** @} */

} // namespace graphite
