#include "parallel/thread_pool.h"

#include <cstdlib>
#include <memory>
#include <mutex>
#include <utility>

#include "common/assert.h"

namespace graphite {

ThreadPool::ThreadPool(std::size_t numThreads)
{
    if (numThreads == 0) {
        numThreads = std::thread::hardware_concurrency();
        if (numThreads == 0)
            numThreads = 1;
    }
    numThreads_ = numThreads;
    // Worker 0 is the calling thread, so spawn numThreads - 1 helpers.
    for (std::size_t t = 1; t < numThreads_; ++t)
        workers_.emplace_back(&ThreadPool::workerLoop, this, t);
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mutex_);
        shuttingDown_ = true;
    }
    wakeWorkers_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::recordJobException()
{
    MutexLock lock(mutex_);
    if (!jobException_)
        jobException_ = std::current_exception();
}

void
ThreadPool::runOnAll(FunctionRef<void(std::size_t)> body)
{
    if (numThreads_ == 1) {
        body(0);
        return;
    }
    {
        MutexLock lock(mutex_);
        GRAPHITE_ASSERT(activeWorkers_ == 0, "nested runOnAll");
        job_ = body;
        jobException_ = nullptr;
        ++jobGeneration_;
        activeWorkers_ = numThreads_ - 1;
    }
    wakeWorkers_.notify_all();

    // The calling thread participates as worker 0; its exception is
    // captured like any other so the workers are always joined before
    // anything propagates.
    try {
        body(0);
    } catch (...) {
        recordJobException();
    }

    std::exception_ptr pending;
    {
        MutexLock lock(mutex_);
        while (activeWorkers_ != 0)
            jobDone_.wait(lock, mutex_);
        job_ = FunctionRef<void(std::size_t)>();
        pending = std::exchange(jobException_, nullptr);
    }
    if (pending)
        std::rethrow_exception(pending);
}

void
ThreadPool::parallelForChunked(
    std::size_t begin, std::size_t end, std::size_t chunk,
    FunctionRef<void(std::size_t, std::size_t, std::size_t)> body)
{
    if (chunk == 0)
        chunk = 1;
    if (begin >= end)
        return;
    // The cursor lives on this frame: runOnAll is fully synchronous, so
    // every worker's reference to it dies before the frame does. (This
    // used to be a make_shared — one heap allocation per parallel
    // region, inside the per-block hot path.)
    std::atomic<std::size_t> cursor{begin};
    auto loop = [&](std::size_t threadId) {
        for (;;) {
            std::size_t chunkBegin =
                cursor.fetch_add(chunk, std::memory_order_relaxed);
            if (chunkBegin >= end)
                break;
            std::size_t chunkEnd = chunkBegin + chunk;
            if (chunkEnd > end)
                chunkEnd = end;
            try {
                body(chunkBegin, chunkEnd, threadId);
            } catch (...) {
                // Park the cursor past the end so no further chunks are
                // claimed, then let runOnAll capture the exception.
                cursor.store(end, std::memory_order_relaxed);
                throw;
            }
        }
    };
    runOnAll(loop);
}

void
ThreadPool::workerLoop(std::size_t threadId)
{
    std::uint64_t seenGeneration = 0;
    for (;;) {
        FunctionRef<void(std::size_t)> job;
        {
            MutexLock lock(mutex_);
            while (!shuttingDown_ && jobGeneration_ == seenGeneration)
                wakeWorkers_.wait(lock, mutex_);
            if (shuttingDown_)
                return;
            seenGeneration = jobGeneration_;
            job = job_;
        }
        try {
            job(threadId);
        } catch (...) {
            recordJobException();
        }
        {
            MutexLock lock(mutex_);
            --activeWorkers_;
        }
        jobDone_.notify_one();
    }
}

namespace {
std::unique_ptr<ThreadPool> g_pool;
std::mutex g_poolMutex;

/**
 * Default size of the global pool: GRAPHITE_THREADS when set (so CI can
 * force real parallelism on small runners — the TSan job runs the
 * kernels at 4 threads even on 2-vCPU machines), else
 * hardware_concurrency() via the ThreadPool(0) rule.
 */
std::size_t
defaultGlobalThreads()
{
    // graphite-lint: allow(mt-unsafe) read once under g_poolMutex while
    // the global pool is first constructed, never from pool workers.
    const char *env = std::getenv("GRAPHITE_THREADS");
    if (env != nullptr) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed > 0)
            return static_cast<std::size_t>(parsed);
    }
    return 0;
}

} // namespace

ThreadPool &
ThreadPool::global()
{
    std::lock_guard<std::mutex> lock(g_poolMutex);
    if (!g_pool)
        g_pool = std::make_unique<ThreadPool>(defaultGlobalThreads());
    return *g_pool;
}

void
ThreadPool::setGlobalThreads(std::size_t numThreads)
{
    std::lock_guard<std::mutex> lock(g_poolMutex);
    g_pool = std::make_unique<ThreadPool>(numThreads);
}

void
parallelFor(std::size_t begin, std::size_t end, std::size_t chunk,
            FunctionRef<void(std::size_t, std::size_t, std::size_t)> body)
{
    ThreadPool::global().parallelForChunked(begin, end, chunk, body);
}

} // namespace graphite
