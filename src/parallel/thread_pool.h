/**
 * @file
 * Persistent worker pool with dynamically-scheduled parallel loops.
 *
 * The paper schedules aggregation chunks with OpenMP's dynamic scheduler to
 * balance power-law degree skew (Section 4.1). We implement the equivalent
 * here: a shared atomic chunk cursor that idle workers pull from, so a
 * worker that drew a heavy chunk (high-degree vertices) does not stall the
 * others. The pool is reused across calls to avoid thread spawn cost in the
 * per-layer hot path.
 *
 * Two contracts the static-analysis layer enforces mechanically:
 *
 *  - Dispatch is allocation-free. Jobs are passed as FunctionRef (two
 *    raw words, no ownership), not std::function, so entering a
 *    parallel region in the per-block hot path never touches the heap.
 *    Lifetime is structural: runOnAll() blocks until every worker has
 *    finished the job, so the caller's callable outlives all uses.
 *  - Shared pool state is annotated for clang -Wthread-safety
 *    (GRAPHITE_GUARDED_BY on everything mutex_ protects); the CI
 *    static-analysis job fails on any unlocked access.
 */

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <thread>
#include <vector>

#include "common/function_ref.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace graphite {

/** Reusable fork-join thread pool. */
class ThreadPool
{
  public:
    /**
     * @param numThreads worker count; 0 means hardware_concurrency().
     */
    explicit ThreadPool(std::size_t numThreads = 0);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    ~ThreadPool();

    /** Number of workers (including the calling thread). */
    std::size_t numThreads() const { return numThreads_; }

    /**
     * Run @p body(threadId) once on every worker and block until all
     * finish. threadId ranges over [0, numThreads()). If any invocation
     * throws, one of the captured exceptions is rethrown on the calling
     * thread after every worker has finished; the pool stays usable.
     * @p body is borrowed, not copied — it must stay alive until
     * runOnAll returns (it does: the call blocks).
     */
    void runOnAll(FunctionRef<void(std::size_t)> body);

    /**
     * Dynamically-scheduled parallel loop over [begin, end) in steps of
     * @p chunk (clamped to at least 1). Each worker repeatedly claims
     * the next chunk from a shared cursor and invokes
     * @p body(chunkBegin, chunkEnd, threadId). An exception thrown by
     * @p body stops further chunks from being claimed and is rethrown
     * on the calling thread (see runOnAll).
     */
    void parallelForChunked(
        std::size_t begin, std::size_t end, std::size_t chunk,
        FunctionRef<void(std::size_t, std::size_t, std::size_t)> body);

    /** Process-wide default pool (lazily constructed). */
    static ThreadPool &global();

    /**
     * Reconfigure the global pool's size. Affects subsequent global()
     * callers; intended for benches that sweep thread counts.
     */
    static void setGlobalThreads(std::size_t numThreads);

  private:
    void workerLoop(std::size_t threadId);

    /** Record the first exception a job raised (any thread). */
    void recordJobException();

    std::size_t numThreads_;
    std::vector<std::thread> workers_;

    Mutex mutex_;
    CondVar wakeWorkers_;
    CondVar jobDone_;
    FunctionRef<void(std::size_t)> job_ GRAPHITE_GUARDED_BY(mutex_);
    std::exception_ptr jobException_ GRAPHITE_GUARDED_BY(mutex_);
    std::uint64_t jobGeneration_ GRAPHITE_GUARDED_BY(mutex_) = 0;
    std::size_t activeWorkers_ GRAPHITE_GUARDED_BY(mutex_) = 0;
    bool shuttingDown_ GRAPHITE_GUARDED_BY(mutex_) = false;
};

/**
 * Convenience wrapper: dynamically-scheduled loop over [begin, end) on the
 * global pool. @p body receives (index range begin, range end, threadId).
 */
void parallelFor(std::size_t begin, std::size_t end, std::size_t chunk,
                 FunctionRef<void(std::size_t, std::size_t, std::size_t)>
                     body);

} // namespace graphite
