/**
 * @file
 * Persistent worker pool with dynamically-scheduled parallel loops.
 *
 * The paper schedules aggregation chunks with OpenMP's dynamic scheduler to
 * balance power-law degree skew (Section 4.1). We implement the equivalent
 * here: a shared atomic chunk cursor that idle workers pull from, so a
 * worker that drew a heavy chunk (high-degree vertices) does not stall the
 * others. The pool is reused across calls to avoid thread spawn cost in the
 * per-layer hot path.
 */

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace graphite {

/** Reusable fork-join thread pool. */
class ThreadPool
{
  public:
    /**
     * @param numThreads worker count; 0 means hardware_concurrency().
     */
    explicit ThreadPool(std::size_t numThreads = 0);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    ~ThreadPool();

    /** Number of workers (including the calling thread). */
    std::size_t numThreads() const { return numThreads_; }

    /**
     * Run @p body(threadId) once on every worker and block until all
     * finish. threadId ranges over [0, numThreads()). If any invocation
     * throws, one of the captured exceptions is rethrown on the calling
     * thread after every worker has finished; the pool stays usable.
     */
    void runOnAll(const std::function<void(std::size_t)> &body);

    /**
     * Dynamically-scheduled parallel loop over [begin, end) in steps of
     * @p chunk (clamped to at least 1). Each worker repeatedly claims
     * the next chunk from a shared cursor and invokes
     * @p body(chunkBegin, chunkEnd, threadId). An exception thrown by
     * @p body stops further chunks from being claimed and is rethrown
     * on the calling thread (see runOnAll).
     */
    void parallelForChunked(
        std::size_t begin, std::size_t end, std::size_t chunk,
        const std::function<void(std::size_t, std::size_t,
                                 std::size_t)> &body);

    /** Process-wide default pool (lazily constructed). */
    static ThreadPool &global();

    /**
     * Reconfigure the global pool's size. Affects subsequent global()
     * callers; intended for benches that sweep thread counts.
     */
    static void setGlobalThreads(std::size_t numThreads);

  private:
    void workerLoop(std::size_t threadId);

    /** Record the first exception a job raised (any thread). */
    void recordJobException();

    std::size_t numThreads_;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable wakeWorkers_;
    std::condition_variable jobDone_;
    std::function<void(std::size_t)> job_;
    std::exception_ptr jobException_;
    std::uint64_t jobGeneration_ = 0;
    std::size_t activeWorkers_ = 0;
    bool shuttingDown_ = false;
};

/**
 * Convenience wrapper: dynamically-scheduled loop over [begin, end) on the
 * global pool. @p body receives (index range begin, range end, threadId).
 */
void parallelFor(std::size_t begin, std::size_t end, std::size_t chunk,
                 const std::function<void(std::size_t, std::size_t,
                                          std::size_t)> &body);

} // namespace graphite
