#include "kernels/fused_layer.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/assert.h"
#include "parallel/thread_pool.h"
#include "tensor/gemm.h"
#include "tensor/row_ops.h"

namespace graphite {

namespace {

/** Apply bias and ReLU to @p rows block rows in place. */
void
finishUpdateBlock(Feature *rows, std::size_t numRows, std::size_t stride,
                  std::size_t cols, const UpdateOp &update)
{
    for (std::size_t r = 0; r < numRows; ++r) {
        Feature *row = rows + r * stride;
        if (!update.bias.empty()) {
            #pragma omp simd
            for (std::size_t c = 0; c < cols; ++c)
                row[c] += update.bias[c];
        }
        if (update.relu) {
            #pragma omp simd
            for (std::size_t c = 0; c < cols; ++c)
                row[c] = std::max(row[c], 0.0f);
        }
    }
}

/** Single-vertex aggregation from compressed input into @p dst. */
void
aggregateVertexCompressed(const CsrGraph &graph, const CompressedMatrix &in,
                          VertexId v, const AggregationSpec &spec,
                          Feature *dst, std::size_t stride)
{
    GRAPHITE_ASSERT(spec.reduce == ReduceOp::Sum,
                    "compressed aggregation supports sum reduction");
    std::fill(dst, dst + stride, 0.0f);
    in.accumulateRow(v, spec.selfFactor(v), dst);
    for (EdgeId e = graph.rowBegin(v); e < graph.rowEnd(v); ++e)
        in.accumulateRow(graph.colIdx()[e], spec.edgeFactor(e), dst);
}

/**
 * Shared driver for all fused variants. @p aggregateOne fills one block
 * row; @p emitAgg (optional) persists the aggregation row for backprop;
 * @p emitOut persists one finished output row.
 */
template <typename AggregateFn, typename PrefetchFn>
void
fusedDriver(const CsrGraph &graph, std::size_t inCols,
            const UpdateOp &update, DenseMatrix &out,
            std::span<const VertexId> order, const FusedConfig &config,
            AggregateFn &&aggregateOne, PrefetchFn &&prefetchFor,
            DenseMatrix *aggOut, CompressedMatrix *outCompressed)
{
    GRAPHITE_ASSERT(update.weights != nullptr, "update weights required");
    GRAPHITE_ASSERT(update.weights->rows() == inCols,
                    "weight rows must equal input feature width");
    GRAPHITE_ASSERT(update.weights->cols() == out.cols(),
                    "weight cols must equal output feature width");
    const VertexId n = graph.numVertices();
    GRAPHITE_ASSERT(order.empty() || order.size() == n,
                    "order must cover all vertices");

    const std::size_t blockSize = std::max<std::size_t>(1,
                                                        config.blockSize);
    const std::size_t taskVertices =
        blockSize * std::max<std::size_t>(1, config.blocksPerTask);
    // Padded strides of the block-local buffers match the matrices so
    // rows can be memcpy'd wholesale.
    const std::size_t aggStride =
        (inCols + kFloatsPerLine - 1) / kFloatsPerLine * kFloatsPerLine;
    const std::size_t outStride = out.rowStride();

    const std::size_t numThreads = ThreadPool::global().numThreads();
    // Reusable per-thread block buffers (Figure 5c's single buffer).
    std::vector<AlignedBuffer<Feature>> aggBuf;
    std::vector<AlignedBuffer<Feature>> outBuf;
    aggBuf.reserve(numThreads);
    outBuf.reserve(numThreads);
    for (std::size_t t = 0; t < numThreads; ++t) {
        aggBuf.emplace_back(blockSize * aggStride);
        outBuf.emplace_back(blockSize * outStride);
    }

    // The same W multiplies every vertex block, so its panels are packed
    // once per layer invocation (or reused from the layer's cached plan)
    // and shared read-only by every task's micro-kernel.
    GemmPlan localPlan;
    const GemmPlan *weightPlan = update.packedWeights;
    if (weightPlan == nullptr) {
        localPlan.pack(GemmMode::NN, *update.weights);
        weightPlan = &localPlan;
    }
    if (const char *error = weightPlan->validateFor(inCols, out.cols()))
        panic("fused layer weight plan: %s", error);

    parallelFor(0, n, taskVertices,
                [&](std::size_t begin, std::size_t end, std::size_t tid) {
        Feature *agg = aggBuf[tid].data();
        Feature *upd = outBuf[tid].data();
        for (std::size_t j = begin; j < end; j += blockSize) {
            const std::size_t blockEnd = std::min(j + blockSize, end);
            const std::size_t rows = blockEnd - j;
            // Aggregation phase of the block (Algorithm 2 lines 3-7).
            for (std::size_t m = 0; m < rows; ++m) {
                const std::size_t i = j + m;
                const VertexId v =
                    order.empty() ? static_cast<VertexId>(i) : order[i];
                aggregateOne(v, agg + m * aggStride);
                if (config.agg.prefetchDistance > 0 &&
                    i + config.agg.prefetchDistance < end) {
                    const std::size_t ahead =
                        i + config.agg.prefetchDistance;
                    prefetchFor(order.empty()
                                    ? static_cast<VertexId>(ahead)
                                    : order[ahead]);
                }
            }
            if (aggOut) {
                // Training keeps the whole a^k for back-propagation
                // (Figure 5b): write the block out, indexed by vertex.
                for (std::size_t m = 0; m < rows; ++m) {
                    const std::size_t i = j + m;
                    const VertexId v = order.empty()
                        ? static_cast<VertexId>(i) : order[i];
                    std::memcpy(aggOut->row(v), agg + m * aggStride,
                                aggStride * sizeof(Feature));
                }
            }
            // Update phase of the block (Algorithm 2 lines 8-10).
            gemmBlockSerial(agg, rows, aggStride, *weightPlan, upd,
                            outStride, inCols);
            finishUpdateBlock(upd, rows, outStride, out.cols(), update);
            for (std::size_t m = 0; m < rows; ++m) {
                const std::size_t i = j + m;
                const VertexId v =
                    order.empty() ? static_cast<VertexId>(i) : order[i];
                std::memcpy(out.row(v), upd + m * outStride,
                            outStride * sizeof(Feature));
                if (outCompressed)
                    outCompressed->compressRowFrom(v, upd + m * outStride);
            }
        }
    });
}

} // namespace

void
fusedLayerTraining(const CsrGraph &graph, const DenseMatrix &in,
                   const AggregationSpec &spec, const UpdateOp &update,
                   DenseMatrix &aggOut, DenseMatrix &out,
                   std::span<const VertexId> order,
                   const FusedConfig &config)
{
    GRAPHITE_ASSERT(in.rows() == graph.numVertices(), "row mismatch");
    GRAPHITE_ASSERT(aggOut.rows() == in.rows() &&
                        aggOut.cols() == in.cols(),
                    "aggOut shape mismatch");
    if (const char *error = validateSpec(spec, graph))
        panic("fusedLayerTraining: %s", error);
    fusedDriver(
        graph, in.cols(), update, out, order, config,
        [&](VertexId v, Feature *dst) {
            aggregateVertex(graph, in, v, spec, dst);
        },
        [&](VertexId next) {
            for (VertexId u : graph.neighbors(next)) {
                __builtin_prefetch(in.row(u), 0, 3);
                __builtin_prefetch(reinterpret_cast<const char *>(
                                       in.row(u)) + kCacheLineBytes,
                                   0, 3);
            }
        },
        &aggOut, nullptr);
}

void
fusedLayerInference(const CsrGraph &graph, const DenseMatrix &in,
                    const AggregationSpec &spec, const UpdateOp &update,
                    DenseMatrix &out, std::span<const VertexId> order,
                    const FusedConfig &config)
{
    GRAPHITE_ASSERT(in.rows() == graph.numVertices(), "row mismatch");
    if (const char *error = validateSpec(spec, graph))
        panic("fusedLayerInference: %s", error);
    fusedDriver(
        graph, in.cols(), update, out, order, config,
        [&](VertexId v, Feature *dst) {
            aggregateVertex(graph, in, v, spec, dst);
        },
        [&](VertexId next) {
            for (VertexId u : graph.neighbors(next)) {
                __builtin_prefetch(in.row(u), 0, 3);
                __builtin_prefetch(reinterpret_cast<const char *>(
                                       in.row(u)) + kCacheLineBytes,
                                   0, 3);
            }
        },
        nullptr, nullptr);
}

void
fusedLayerTrainingCompressed(const CsrGraph &graph,
                             const CompressedMatrix &in,
                             const AggregationSpec &spec,
                             const UpdateOp &update, DenseMatrix &aggOut,
                             DenseMatrix &out,
                             CompressedMatrix *outCompressed,
                             std::span<const VertexId> order,
                             const FusedConfig &config)
{
    GRAPHITE_ASSERT(in.rows() == graph.numVertices(), "row mismatch");
    GRAPHITE_ASSERT(aggOut.rows() == in.rows() &&
                        aggOut.cols() == in.cols(),
                    "aggOut shape mismatch");
    if (const char *error = validateSpec(spec, graph))
        panic("fusedLayerTrainingCompressed: %s", error);
    const std::size_t stride = in.rowStride();
    fusedDriver(
        graph, in.cols(), update, out, order, config,
        [&](VertexId v, Feature *dst) {
            aggregateVertexCompressed(graph, in, v, spec, dst, stride);
        },
        [&](VertexId next) {
            for (VertexId u : graph.neighbors(next)) {
                __builtin_prefetch(in.values(u), 0, 3);
                __builtin_prefetch(in.mask(u), 0, 3);
            }
        },
        &aggOut, outCompressed);
}

void
fusedLayerInferenceCompressed(const CsrGraph &graph,
                              const CompressedMatrix &in,
                              const AggregationSpec &spec,
                              const UpdateOp &update, DenseMatrix &out,
                              CompressedMatrix *outCompressed,
                              std::span<const VertexId> order,
                              const FusedConfig &config)
{
    GRAPHITE_ASSERT(in.rows() == graph.numVertices(), "row mismatch");
    if (const char *error = validateSpec(spec, graph))
        panic("fusedLayerInferenceCompressed: %s", error);
    const std::size_t stride = in.rowStride();
    fusedDriver(
        graph, in.cols(), update, out, order, config,
        [&](VertexId v, Feature *dst) {
            aggregateVertexCompressed(graph, in, v, spec, dst, stride);
        },
        [&](VertexId next) {
            for (VertexId u : graph.neighbors(next)) {
                __builtin_prefetch(in.values(u), 0, 3);
                __builtin_prefetch(in.mask(u), 0, 3);
            }
        },
        nullptr, outCompressed);
}

void
unfusedLayer(const CsrGraph &graph, const DenseMatrix &in,
             const AggregationSpec &spec, const UpdateOp &update,
             DenseMatrix &aggOut, DenseMatrix &out,
             std::span<const VertexId> order,
             const AggregationConfig &config)
{
    GRAPHITE_ASSERT(update.weights != nullptr, "update weights required");
    aggregateBasic(graph, in, aggOut, spec, order, config);
    if (update.packedWeights)
        gemm(GemmMode::NN, aggOut, *update.packedWeights, out);
    else
        gemm(GemmMode::NN, aggOut, *update.weights, out);
    if (!update.bias.empty())
        addBias(out, update.bias);
    if (update.relu)
        reluForward(out);
}

} // namespace graphite
