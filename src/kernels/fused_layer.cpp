#include "kernels/fused_layer.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/assert.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "tensor/gemm.h"
#include "tensor/row_ops.h"

namespace graphite {

namespace {

/** Apply bias and ReLU to @p rows block rows in place. */
void
finishUpdateBlock(Feature *rows, std::size_t numRows, std::size_t stride,
                  std::size_t cols, std::span<const Feature> bias,
                  bool relu)
{
    for (std::size_t r = 0; r < numRows; ++r) {
        Feature *row = rows + r * stride;
        if (!bias.empty()) {
            #pragma omp simd
            for (std::size_t c = 0; c < cols; ++c)
                row[c] += bias[c];
        }
        if (relu) {
            #pragma omp simd
            for (std::size_t c = 0; c < cols; ++c)
                row[c] = std::max(row[c], 0.0f);
        }
        // Re-zero the padding tail: the scratch row may carry stale
        // values from an earlier, wider layer, and the block is
        // memcpy'd (and possibly compressed) at full stride.
        for (std::size_t c = cols; c < stride; ++c)
            row[c] = 0.0f;
    }
}

/**
 * Per-worker grow-only block buffers (Figure 5c's single reusable
 * buffer). Pool workers persist across layer calls and epochs, so
 * after warm-up these never allocate — part of the allocation-free
 * steady-state contract of the training loop. Two distinct functions
 * because a driver invocation needs both buffers live at once.
 * @{
 */
Feature *
aggScratch(std::size_t count)
{
    thread_local AlignedBuffer<Feature> buf;
    if (buf.size() < count)
        buf.resize(count);
    return buf.data();
}

Feature *
updScratch(std::size_t count)
{
    thread_local AlignedBuffer<Feature> buf;
    if (buf.size() < count)
        buf.resize(count);
    return buf.data();
}
/** @} */

/** Single-vertex aggregation from compressed input into @p dst. */
void
aggregateVertexCompressed(const CsrGraph &graph, const CompressedMatrix &in,
                          VertexId v, const AggregationSpec &spec,
                          Feature *dst, std::size_t stride)
{
    GRAPHITE_ASSERT(spec.reduce == ReduceOp::Sum,
                    "compressed aggregation supports sum reduction");
    std::fill(dst, dst + stride, 0.0f);
    in.accumulateRow(v, spec.selfFactor(v), dst);
    for (EdgeId e = graph.rowBegin(v); e < graph.rowEnd(v); ++e)
        in.accumulateRow(graph.colIdx()[e], spec.edgeFactor(e), dst);
}

/**
 * Shared driver for all fused variants — forward (aggregate→GEMM) and
 * backward (where the commuted form restores the same shape; see
 * fusedLayerBackward). @p aggregateOne fills one block row;
 * @p weightPlan is the prepacked operand of the per-block micro-GEMM;
 * @p aggOut (optional) persists the aggregation rows for backprop.
 */
template <typename AggregateFn, typename PrefetchFn>
void
fusedDriver(const CsrGraph &graph, std::size_t inCols,
            std::size_t inRowBytes, const GemmPlan &weightPlan,
            std::span<const Feature> bias, bool relu, DenseMatrix &out,
            std::span<const VertexId> order, const FusedConfig &config,
            AggregateFn &&aggregateOne, PrefetchFn &&prefetchFor,
            DenseMatrix *aggOut, CompressedMatrix *outCompressed,
            Bf16Matrix *outBf16)
{
    const VertexId n = graph.numVertices();
    GRAPHITE_ASSERT(order.empty() || order.size() == n,
                    "order must cover all vertices");
    // The same packed operand multiplies every vertex block (packed
    // once per layer invocation or reused from the layer's cached
    // plan) and is shared read-only by every task's micro-kernel.
    if (const char *error = weightPlan.validateFor(inCols, out.cols()))
        panic("fused layer weight plan: %s", error);

    const std::size_t blockSize = std::max<std::size_t>(1,
                                                        config.blockSize);
    const std::size_t taskVertices =
        blockSize * std::max<std::size_t>(1, config.blocksPerTask);
    // Padded strides of the block-local buffers match the matrices so
    // rows can be memcpy'd wholesale.
    const std::size_t aggStride =
        (inCols + kFloatsPerLine - 1) / kFloatsPerLine * kFloatsPerLine;
    const std::size_t outStride = out.rowStride();

    // Per-block accounting (paper Fig. 13's per-phase byte/FLOP story):
    // rows gathered feed the bytes counter, aggregation + micro-GEMM
    // FLOPs feed the other. Near-no-op when the registry is disabled.
    obs::MetricsRegistry &metrics = obs::MetricsRegistry::global();
    static obs::Counter &bytesGathered =
        metrics.counter("fused.bytes_gathered");
    static obs::Counter &flops = metrics.counter("fused.flops");
    static obs::Histogram &blockMicros =
        metrics.histogram("fused.block_us");

    parallelFor(0, n, taskVertices,
                [&](std::size_t begin, std::size_t end, std::size_t) {
        GRAPHITE_TRACE_SPAN("fused.block");
        const bool metricsOn = metrics.enabled();
        const obs::TraceNs taskStart =
            metricsOn ? obs::TraceRecorder::now() : 0;
        std::uint64_t rowsPulled = 0;
        Feature *agg = aggScratch(blockSize * aggStride);
        Feature *upd = updScratch(blockSize * outStride);
        for (std::size_t j = begin; j < end; j += blockSize) {
            const std::size_t blockEnd = std::min(j + blockSize, end);
            const std::size_t rows = blockEnd - j;
            // Aggregation phase of the block (Algorithm 2 lines 3-7).
            for (std::size_t m = 0; m < rows; ++m) {
                const std::size_t i = j + m;
                const VertexId v =
                    order.empty() ? static_cast<VertexId>(i) : order[i];
                aggregateOne(v, agg + m * aggStride);
                if (metricsOn)
                    rowsPulled += graph.rowEnd(v) - graph.rowBegin(v) + 1;
                if (config.agg.prefetchDistance > 0 &&
                    i + config.agg.prefetchDistance < end) {
                    const std::size_t ahead =
                        i + config.agg.prefetchDistance;
                    prefetchFor(order.empty()
                                    ? static_cast<VertexId>(ahead)
                                    : order[ahead]);
                }
            }
            if (aggOut) {
                // Training keeps the whole a^k for back-propagation
                // (Figure 5b): write the block out, indexed by vertex.
                for (std::size_t m = 0; m < rows; ++m) {
                    const std::size_t i = j + m;
                    const VertexId v = order.empty()
                        ? static_cast<VertexId>(i) : order[i];
                    std::memcpy(aggOut->row(v), agg + m * aggStride,
                                aggStride * sizeof(Feature));
                }
            }
            // Update phase of the block (Algorithm 2 lines 8-10).
            gemmBlockSerial(agg, rows, aggStride, weightPlan, upd,
                            outStride, inCols);
            finishUpdateBlock(upd, rows, outStride, out.cols(), bias,
                              relu);
            for (std::size_t m = 0; m < rows; ++m) {
                const std::size_t i = j + m;
                const VertexId v =
                    order.empty() ? static_cast<VertexId>(i) : order[i];
                std::memcpy(out.row(v), upd + m * outStride,
                            outStride * sizeof(Feature));
                if (outCompressed)
                    outCompressed->compressRowFrom(v, upd + m * outStride);
                if (outBf16)
                    convertRowToBf16(upd + m * outStride, outBf16->cols(),
                                     outBf16->row(v));
            }
        }
        if (metricsOn) {
            const std::uint64_t taskRows = end - begin;
            // inRowBytes is the stored size of one gathered row (4 B/elem
            // for fp32, 2 for bf16, the mean packed size for compressed),
            // so the counter reflects actual traffic rather than assuming
            // every input is fp32.
            bytesGathered.add(rowsPulled * inRowBytes);
            // Aggregation multiply-adds plus the per-block micro-GEMM.
            flops.add(2 * rowsPulled * inCols +
                      2 * taskRows * inCols * out.cols());
            blockMicros.observe(
                (obs::TraceRecorder::now() - taskStart) / 1000);
        }
    });
}

/**
 * Resolve the forward UpdateOp to a packed NN plan — the caller's
 * cached plan when present, else a local pack of W — and shape-check
 * the weights against the layer widths.
 */
const GemmPlan &
resolveForwardPlan(const UpdateOp &update, std::size_t inCols,
                   std::size_t outCols, GemmPlan &localPlan)
{
    GRAPHITE_ASSERT(update.weights != nullptr, "update weights required");
    GRAPHITE_ASSERT(update.weights->rows() == inCols,
                    "weight rows must equal input feature width");
    GRAPHITE_ASSERT(update.weights->cols() == outCols,
                    "weight cols must equal output feature width");
    if (update.packedWeights != nullptr) {
        GRAPHITE_ASSERT(update.packedWeights->precision() ==
                            update.precision,
                        "cached weight plan precision mismatch");
        return *update.packedWeights;
    }
    localPlan.pack(GemmMode::NN, *update.weights, update.precision);
    return localPlan;
}

} // namespace

void
fusedLayerTraining(const CsrGraph &graph, const DenseMatrix &in,
                   const AggregationSpec &spec, const UpdateOp &update,
                   DenseMatrix &aggOut, DenseMatrix &out,
                   std::span<const VertexId> order,
                   const FusedConfig &config)
{
    GRAPHITE_TRACE_SPAN("fused.forward");
    GRAPHITE_ASSERT(in.rows() == graph.numVertices(), "row mismatch");
    GRAPHITE_ASSERT(aggOut.rows() == in.rows() &&
                        aggOut.cols() == in.cols(),
                    "aggOut shape mismatch");
    if (const char *error = validateSpec(spec, graph))
        panic("fusedLayerTraining: %s", error);
    GemmPlan localPlan;
    const GemmPlan &plan =
        resolveForwardPlan(update, in.cols(), out.cols(), localPlan);
    fusedDriver(
        graph, in.cols(), in.rowBytes(), plan, update.bias, update.relu,
        out, order, config,
        [&](VertexId v, Feature *dst) {
            aggregateVertex(graph, in, v, spec, dst);
        },
        [&](VertexId next) {
            for (VertexId u : graph.neighbors(next)) {
                __builtin_prefetch(in.row(u), 0, 3);
                __builtin_prefetch(reinterpret_cast<const char *>(
                                       in.row(u)) + kCacheLineBytes,
                                   0, 3);
            }
        },
        &aggOut, nullptr, nullptr);
}

void
fusedLayerInference(const CsrGraph &graph, const DenseMatrix &in,
                    const AggregationSpec &spec, const UpdateOp &update,
                    DenseMatrix &out, std::span<const VertexId> order,
                    const FusedConfig &config, Bf16Matrix *outBf16)
{
    GRAPHITE_TRACE_SPAN("fused.forward");
    GRAPHITE_ASSERT(in.rows() == graph.numVertices(), "row mismatch");
    GRAPHITE_ASSERT(outBf16 == nullptr ||
                        (outBf16->rows() == out.rows() &&
                         outBf16->cols() == out.cols()),
                    "outBf16 shape mismatch");
    if (const char *error = validateSpec(spec, graph))
        panic("fusedLayerInference: %s", error);
    GemmPlan localPlan;
    const GemmPlan &plan =
        resolveForwardPlan(update, in.cols(), out.cols(), localPlan);
    fusedDriver(
        graph, in.cols(), in.rowBytes(), plan, update.bias, update.relu,
        out, order, config,
        [&](VertexId v, Feature *dst) {
            aggregateVertex(graph, in, v, spec, dst);
        },
        [&](VertexId next) {
            for (VertexId u : graph.neighbors(next)) {
                __builtin_prefetch(in.row(u), 0, 3);
                __builtin_prefetch(reinterpret_cast<const char *>(
                                       in.row(u)) + kCacheLineBytes,
                                   0, 3);
            }
        },
        nullptr, nullptr, outBf16);
}

void
fusedLayerTrainingBf16(const CsrGraph &graph, const Bf16Matrix &in,
                       const AggregationSpec &spec, const UpdateOp &update,
                       DenseMatrix &aggOut, DenseMatrix &out,
                       std::span<const VertexId> order,
                       const FusedConfig &config)
{
    GRAPHITE_TRACE_SPAN("fused.forward");
    GRAPHITE_ASSERT(in.rows() == graph.numVertices(), "row mismatch");
    GRAPHITE_ASSERT(aggOut.rows() == in.rows() &&
                        aggOut.cols() == in.cols(),
                    "aggOut shape mismatch");
    if (const char *error = validateSpec(spec, graph))
        panic("fusedLayerTrainingBf16: %s", error);
    GemmPlan localPlan;
    const GemmPlan &plan =
        resolveForwardPlan(update, in.cols(), out.cols(), localPlan);
    // Width of one fp32 block row; never exceeds the wider-padded bf16
    // source rows (see aggregateVertexBf16).
    const std::size_t aggWidth =
        (in.cols() + kFloatsPerLine - 1) / kFloatsPerLine * kFloatsPerLine;
    fusedDriver(
        graph, in.cols(), in.rowBytes(), plan, update.bias, update.relu,
        out, order, config,
        [&](VertexId v, Feature *dst) {
            aggregateVertexBf16(graph, in, v, spec, dst, aggWidth);
        },
        [&](VertexId next) {
            for (VertexId u : graph.neighbors(next))
                __builtin_prefetch(in.row(u), 0, 3);
        },
        &aggOut, nullptr, nullptr);
}

void
fusedLayerInferenceBf16(const CsrGraph &graph, const Bf16Matrix &in,
                        const AggregationSpec &spec, const UpdateOp &update,
                        DenseMatrix &out, std::span<const VertexId> order,
                        const FusedConfig &config, Bf16Matrix *outBf16)
{
    GRAPHITE_TRACE_SPAN("fused.forward");
    GRAPHITE_ASSERT(in.rows() == graph.numVertices(), "row mismatch");
    GRAPHITE_ASSERT(outBf16 == nullptr ||
                        (outBf16->rows() == out.rows() &&
                         outBf16->cols() == out.cols()),
                    "outBf16 shape mismatch");
    if (const char *error = validateSpec(spec, graph))
        panic("fusedLayerInferenceBf16: %s", error);
    GemmPlan localPlan;
    const GemmPlan &plan =
        resolveForwardPlan(update, in.cols(), out.cols(), localPlan);
    const std::size_t aggWidth =
        (in.cols() + kFloatsPerLine - 1) / kFloatsPerLine * kFloatsPerLine;
    fusedDriver(
        graph, in.cols(), in.rowBytes(), plan, update.bias, update.relu,
        out, order, config,
        [&](VertexId v, Feature *dst) {
            aggregateVertexBf16(graph, in, v, spec, dst, aggWidth);
        },
        [&](VertexId next) {
            for (VertexId u : graph.neighbors(next))
                __builtin_prefetch(in.row(u), 0, 3);
        },
        nullptr, nullptr, outBf16);
}

void
fusedLayerTrainingCompressed(const CsrGraph &graph,
                             const CompressedMatrix &in,
                             const AggregationSpec &spec,
                             const UpdateOp &update, DenseMatrix &aggOut,
                             DenseMatrix &out,
                             CompressedMatrix *outCompressed,
                             std::span<const VertexId> order,
                             const FusedConfig &config)
{
    GRAPHITE_TRACE_SPAN("fused.forward");
    GRAPHITE_ASSERT(in.rows() == graph.numVertices(), "row mismatch");
    GRAPHITE_ASSERT(aggOut.rows() == in.rows() &&
                        aggOut.cols() == in.cols(),
                    "aggOut shape mismatch");
    if (const char *error = validateSpec(spec, graph))
        panic("fusedLayerTrainingCompressed: %s", error);
    GemmPlan localPlan;
    const GemmPlan &plan =
        resolveForwardPlan(update, in.cols(), out.cols(), localPlan);
    const std::size_t stride = in.rowStride();
    // Mean stored bytes of one packed row (values + mask) — gathered
    // traffic depends on each row's sparsity, so the counter uses the
    // matrix-wide average.
    const std::size_t rowBytes =
        in.rows() > 0 ? in.compressedTrafficBytes() / in.rows() : 0;
    fusedDriver(
        graph, in.cols(), rowBytes, plan, update.bias, update.relu, out,
        order, config,
        [&](VertexId v, Feature *dst) {
            aggregateVertexCompressed(graph, in, v, spec, dst, stride);
        },
        [&](VertexId next) {
            for (VertexId u : graph.neighbors(next)) {
                __builtin_prefetch(in.values(u), 0, 3);
                __builtin_prefetch(in.mask(u), 0, 3);
            }
        },
        &aggOut, outCompressed, nullptr);
}

void
fusedLayerInferenceCompressed(const CsrGraph &graph,
                              const CompressedMatrix &in,
                              const AggregationSpec &spec,
                              const UpdateOp &update, DenseMatrix &out,
                              CompressedMatrix *outCompressed,
                              std::span<const VertexId> order,
                              const FusedConfig &config)
{
    GRAPHITE_TRACE_SPAN("fused.forward");
    GRAPHITE_ASSERT(in.rows() == graph.numVertices(), "row mismatch");
    if (const char *error = validateSpec(spec, graph))
        panic("fusedLayerInferenceCompressed: %s", error);
    GemmPlan localPlan;
    const GemmPlan &plan =
        resolveForwardPlan(update, in.cols(), out.cols(), localPlan);
    const std::size_t stride = in.rowStride();
    const std::size_t rowBytes =
        in.rows() > 0 ? in.compressedTrafficBytes() / in.rows() : 0;
    fusedDriver(
        graph, in.cols(), rowBytes, plan, update.bias, update.relu, out,
        order, config,
        [&](VertexId v, Feature *dst) {
            aggregateVertexCompressed(graph, in, v, spec, dst, stride);
        },
        [&](VertexId next) {
            for (VertexId u : graph.neighbors(next)) {
                __builtin_prefetch(in.values(u), 0, 3);
                __builtin_prefetch(in.mask(u), 0, 3);
            }
        },
        nullptr, outCompressed, nullptr);
}

void
fusedLayerBackward(const CsrGraph &transposed, const DenseMatrix &dz,
                   const AggregationSpec &transposedSpec,
                   const GemmPlan &weightsNT, DenseMatrix &gradIn,
                   std::span<const VertexId> order,
                   const FusedConfig &config)
{
    GRAPHITE_TRACE_SPAN("fused.backward");
    GRAPHITE_ASSERT(dz.rows() == transposed.numVertices(),
                    "row mismatch");
    GRAPHITE_ASSERT(gradIn.rows() == dz.rows(), "gradIn row mismatch");
    // The commutation below is only valid for a linear aggregation;
    // Max-reduce backward needs argmax state the forward never saves.
    GRAPHITE_ASSERT(transposedSpec.reduce == ReduceOp::Sum,
                    "fused backward requires a sum-reduce aggregation");
    if (const char *error = validateSpec(transposedSpec, transposed))
        panic("fusedLayerBackward: %s", error);
    // dh_prev = Aggᵀ(dz·Wᵀ) = (Aggᵀ dz)·Wᵀ: aggregation mixes rows and
    // the weight GEMM mixes columns, so they commute. The commuted form
    // turns the reversed fusion direction (GEMM→scatter-aggregate, which
    // would need synchronised writes) back into the forward kernel's
    // pull-shape: aggregate a block of dz rows over the transposed CSR
    // into the L2-resident block buffer, then micro-GEMM it through the
    // prepacked NT plan straight into gradIn. dAgg = dz·Wᵀ never exists.
    fusedDriver(
        transposed, dz.cols(), dz.rowBytes(), weightsNT, {}, false,
        gradIn, order, config,
        [&](VertexId v, Feature *dst) {
            aggregateVertex(transposed, dz, v, transposedSpec, dst);
        },
        [&](VertexId next) {
            for (VertexId u : transposed.neighbors(next)) {
                __builtin_prefetch(dz.row(u), 0, 3);
                __builtin_prefetch(reinterpret_cast<const char *>(
                                       dz.row(u)) + kCacheLineBytes,
                                   0, 3);
            }
        },
        nullptr, nullptr, nullptr);
}

void
fusedLayerBackwardBf16(const CsrGraph &transposed, const Bf16Matrix &dz,
                       const AggregationSpec &transposedSpec,
                       const GemmPlan &weightsNT, DenseMatrix &gradIn,
                       std::span<const VertexId> order,
                       const FusedConfig &config)
{
    GRAPHITE_TRACE_SPAN("fused.backward");
    GRAPHITE_ASSERT(dz.rows() == transposed.numVertices(),
                    "row mismatch");
    GRAPHITE_ASSERT(gradIn.rows() == dz.rows(), "gradIn row mismatch");
    GRAPHITE_ASSERT(transposedSpec.reduce == ReduceOp::Sum,
                    "fused backward requires a sum-reduce aggregation");
    GRAPHITE_ASSERT(weightsNT.precision() == Precision::Bf16,
                    "bf16 fused backward needs a bf16 NT plan");
    if (const char *error = validateSpec(transposedSpec, transposed))
        panic("fusedLayerBackwardBf16: %s", error);
    const std::size_t aggWidth =
        (dz.cols() + kFloatsPerLine - 1) / kFloatsPerLine * kFloatsPerLine;
    // Same commuted pull-shape as fusedLayerBackward; only the gathered
    // dz rows and the packed W operands are bf16-rounded.
    fusedDriver(
        transposed, dz.cols(), dz.rowBytes(), weightsNT, {}, false,
        gradIn, order, config,
        [&](VertexId v, Feature *dst) {
            aggregateVertexBf16(transposed, dz, v, transposedSpec, dst,
                                aggWidth);
        },
        [&](VertexId next) {
            for (VertexId u : transposed.neighbors(next))
                __builtin_prefetch(dz.row(u), 0, 3);
        },
        nullptr, nullptr, nullptr);
}

void
unfusedLayer(const CsrGraph &graph, const DenseMatrix &in,
             const AggregationSpec &spec, const UpdateOp &update,
             DenseMatrix &aggOut, DenseMatrix &out,
             std::span<const VertexId> order,
             const AggregationConfig &config)
{
    GRAPHITE_ASSERT(update.weights != nullptr, "update weights required");
    aggregateBasic(graph, in, aggOut, spec, order, config);
    if (update.packedWeights)
        gemm(GemmMode::NN, aggOut, *update.packedWeights, out);
    else
        gemm(GemmMode::NN, aggOut, *update.weights, out);
    if (!update.bias.empty())
        addBias(out, update.bias);
    if (update.relu)
        reluForward(out);
}

} // namespace graphite
