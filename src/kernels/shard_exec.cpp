#include "kernels/shard_exec.h"

#include <algorithm>
#include <cstring>
#include <span>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/assert.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "tensor/bf16_matrix.h"
#include "tensor/gemm.h"

namespace graphite {

namespace {

/**
 * One thread-pool task: a slice of one shard's owned run in
 * shardMajorOrder. Tasks never span a shard boundary, so the feature
 * slice a worker touches stays within the shard being processed.
 */
struct ShardTask
{
    ShardId shard;
    std::size_t begin;
    std::size_t end;
};

/**
 * RAII view over the per-thread task scratch filled by shardTasks().
 * Destruction releases the scratch for the next kernel entry; together
 * with the reentrancy check in shardTasks() this turns a nested call
 * that would silently invalidate a live task list (the scratch is
 * clear()ed on every fill) into a debug-build failure.
 */
class ShardTaskList
{
  public:
    ShardTaskList(const std::vector<ShardTask> &tasks, bool &inUse)
        : tasks_(tasks), inUse_(inUse)
    {
    }

    ShardTaskList(const ShardTaskList &) = delete;
    ShardTaskList &operator=(const ShardTaskList &) = delete;

    ~ShardTaskList() { inUse_ = false; }

    std::size_t size() const { return tasks_.size(); }
    const ShardTask &operator[](std::size_t i) const { return tasks_[i]; }

  private:
    const std::vector<ShardTask> &tasks_;
    bool &inUse_;
};

ShardTaskList
shardTasks(const PartitionPlan &plan, std::size_t taskVertices)
{
    const std::size_t chunk = std::max<std::size_t>(1, taskVertices);
    // Grow-only per-thread scratch: every kernel entry builds its task
    // list on the calling thread and consumes it before the next entry
    // runs, so reuse is safe and the steady state stays
    // allocation-free. The in-use flag (cleared by the returned view's
    // destructor) catches a reentrant call while a list is still live.
    thread_local std::vector<ShardTask> tasks;
    thread_local bool tasksInUse = false;
    GRAPHITE_DCHECK(!tasksInUse,
                    "shardTasks re-entered while a task list is live");
    tasksInUse = true;
    tasks.clear();
    for (std::size_t s = 0; s < plan.numShards(); ++s) {
        const std::size_t begin = plan.ownedStart[s];
        const std::size_t end = plan.ownedStart[s + 1];
        for (std::size_t b = begin; b < end; b += chunk) {
            // graphite-lint: allow(alloc) grow-only append to the
            // persistent thread-local list; no-op once warmed.
            tasks.push_back({static_cast<ShardId>(s), b,
                             std::min(b + chunk, end)});
        }
    }
    return ShardTaskList(tasks, tasksInUse);
}

/** Per-worker grow-only scratch (the fused driver's buffer idiom). @{ */
Feature *
shardAggScratch(std::size_t count)
{
    thread_local AlignedBuffer<Feature> buf;
    if (buf.size() < count)
        buf.resize(count);
    return buf.data();
}

Feature *
shardUpdScratch(std::size_t count)
{
    thread_local AlignedBuffer<Feature> buf;
    if (buf.size() < count)
        buf.resize(count);
    return buf.data();
}

Feature *
haloScratch(std::size_t count)
{
    thread_local AlignedBuffer<Feature> buf;
    if (buf.size() < count)
        buf.resize(count);
    return buf.data();
}
/** @} */

/** dst = op(dst, factor * src) over @p width fp32 lanes. */
void
combineRow(Feature *dst, const Feature *src, Feature factor,
           std::size_t width, ReduceOp op)
{
    if (op == ReduceOp::Sum) {
        #pragma omp simd
        for (std::size_t c = 0; c < width; ++c)
            dst[c] += factor * src[c];
    } else {
        #pragma omp simd
        for (std::size_t c = 0; c < width; ++c)
            dst[c] = std::max(dst[c], factor * src[c]);
    }
}

/** dst = op(dst, factor * widen(src)) over @p width bf16 lanes. */
void
combineRowBf16(Feature *dst, const std::uint16_t *src, Feature factor,
               std::size_t width, ReduceOp op)
{
    if (op == ReduceOp::Sum) {
        #pragma omp simd
        for (std::size_t c = 0; c < width; ++c)
            dst[c] += factor * bf16ToFloat(src[c]);
    } else {
        #pragma omp simd
        for (std::size_t c = 0; c < width; ++c)
            dst[c] = std::max(dst[c], factor * bf16ToFloat(src[c]));
    }
}

/** Fp32 padded width of one aggregation row. */
std::size_t
paddedWidth(std::size_t cols)
{
    return (cols + kFloatsPerLine - 1) / kFloatsPerLine * kFloatsPerLine;
}

/**
 * Exact shard-major aggregation: per-vertex building block over the
 * global CSR (bit-identical to the global kernel), shard-aligned tasks.
 */
template <typename AggregateFn, typename PrefetchFn>
void
exactShardedAggregate(const PartitionPlan &plan, std::size_t rowBytes,
                      const AggregationConfig &config,
                      AggregateFn &&aggregateOne, PrefetchFn &&prefetchFor)
{
    const CsrGraph &graph = *plan.graph;
    const ProcessingOrder &order = plan.shardMajorOrder;
    const ShardTaskList tasks = shardTasks(plan, config.taskSize);
    obs::MetricsRegistry &metrics = obs::MetricsRegistry::global();
    static obs::Counter &bytesGathered =
        metrics.counter("partition.bytes_gathered");
    parallelFor(0, tasks.size(), 1,
                [&](std::size_t taskBegin, std::size_t taskEnd,
                    std::size_t) {
        const bool metricsOn = metrics.enabled();
        for (std::size_t t = taskBegin; t < taskEnd; ++t) {
            GRAPHITE_TRACE_SPAN("partition.shard");
            const ShardTask &task = tasks[t];
            std::uint64_t rowsPulled = 0;
            for (std::size_t i = task.begin; i < task.end; ++i) {
                const VertexId v = order[i];
                aggregateOne(v);
                if (metricsOn)
                    rowsPulled += graph.degree(v) + 1;
                if (config.prefetchDistance > 0 &&
                    i + config.prefetchDistance < task.end)
                    prefetchFor(order[i + config.prefetchDistance]);
            }
            if (metricsOn)
                bytesGathered.add(rowsPulled * rowBytes);
        }
    });
}

/**
 * Delayed-halo aggregation. Phase A folds self + intra-shard terms
 * from the local CSR (shard-aligned tasks); phase B gathers each halo
 * row once into a shard-local replica and folds the cut-edge terms
 * from the cache-resident replica. Owned rows are written only by
 * their own shard in both phases, so no synchronisation is needed.
 */
template <typename InitSelfFn, typename AccumulateFn, typename ReplicaFn>
void
delayedShardedAggregate(const PartitionPlan &plan, std::size_t width,
                        std::size_t rowBytes, DenseMatrix &out,
                        const AggregationSpec &spec,
                        const AggregationConfig &config,
                        InitSelfFn &&initSelf, AccumulateFn &&accumulate,
                        ReplicaFn &&fillReplica)
{
    obs::MetricsRegistry &metrics = obs::MetricsRegistry::global();
    static obs::Counter &bytesGathered =
        metrics.counter("partition.bytes_gathered");
    static obs::Counter &haloBytes =
        metrics.counter("partition.halo_bytes");

    const ShardTaskList tasks = shardTasks(plan, config.taskSize);
    parallelFor(0, tasks.size(), 1,
                [&](std::size_t taskBegin, std::size_t taskEnd,
                    std::size_t) {
        const bool metricsOn = metrics.enabled();
        for (std::size_t t = taskBegin; t < taskEnd; ++t) {
            GRAPHITE_TRACE_SPAN("partition.shard");
            const ShardTask &task = tasks[t];
            const Shard &shard = plan.shards[task.shard];
            std::uint64_t rowsPulled = 0;
            for (std::size_t i = task.begin; i < task.end; ++i) {
                const VertexId v = plan.shardMajorOrder[i];
                const VertexId local = static_cast<VertexId>(
                    i - plan.ownedStart[task.shard]);
                Feature *dst = out.row(v);
                initSelf(v, dst);
                const EdgeId intraEnd = shard.cutStart[local];
                for (EdgeId idx = shard.localCsr.rowBegin(local);
                     idx < intraEnd; ++idx) {
                    const VertexId u =
                        shard.vertices[shard.localCsr.colIdx()[idx]];
                    accumulate(u, spec.edgeFactor(shard.globalEdge[idx]),
                               dst);
                }
                if (metricsOn) {
                    rowsPulled += 1 + (intraEnd -
                                       shard.localCsr.rowBegin(local));
                }
            }
            if (metricsOn)
                bytesGathered.add(rowsPulled * rowBytes);
        }
    });

    parallelFor(0, plan.numShards(), 1,
                [&](std::size_t shardBegin, std::size_t shardEnd,
                    std::size_t) {
        const bool metricsOn = metrics.enabled();
        for (std::size_t s = shardBegin; s < shardEnd; ++s) {
            const Shard &shard = plan.shards[s];
            const VertexId numHalo = shard.numHalo();
            if (numHalo == 0)
                continue;
            GRAPHITE_TRACE_SPAN("partition.shard");
            Feature *replica = haloScratch(numHalo * width);
            for (VertexId h = 0; h < numHalo; ++h) {
                fillReplica(shard.vertices[shard.numOwned + h],
                            replica + h * width);
            }
            if (metricsOn) {
                const std::uint64_t pulled =
                    static_cast<std::uint64_t>(numHalo) * rowBytes;
                haloBytes.add(pulled);
                bytesGathered.add(pulled);
            }
            for (VertexId r = 0; r < shard.numOwned; ++r) {
                const EdgeId rowEnd = shard.localCsr.rowEnd(r);
                if (shard.cutStart[r] == rowEnd)
                    continue;
                Feature *dst = out.row(shard.vertices[r]);
                for (EdgeId idx = shard.cutStart[r]; idx < rowEnd;
                     ++idx) {
                    const VertexId h =
                        shard.localCsr.colIdx()[idx] - shard.numOwned;
                    combineRow(dst, replica + h * width,
                               spec.edgeFactor(shard.globalEdge[idx]),
                               width, spec.reduce);
                }
            }
        }
    });
}

/** Apply bias and ReLU to @p numRows block rows in place. */
void
finishUpdateBlock(Feature *rows, std::size_t numRows, std::size_t stride,
                  std::size_t cols, std::span<const Feature> bias,
                  bool relu)
{
    for (std::size_t r = 0; r < numRows; ++r) {
        Feature *row = rows + r * stride;
        if (!bias.empty()) {
            #pragma omp simd
            for (std::size_t c = 0; c < cols; ++c)
                row[c] += bias[c];
        }
        if (relu) {
            #pragma omp simd
            for (std::size_t c = 0; c < cols; ++c)
                row[c] = std::max(row[c], 0.0f);
        }
        for (std::size_t c = cols; c < stride; ++c)
            row[c] = 0.0f;
    }
}

/**
 * Shard-major twin of the fused driver: the same per-block
 * aggregate→gemmBlockSerial loop, with blocks carved from shard-aligned
 * tasks over plan.shardMajorOrder. Block composition does not affect
 * per-row results, so outputs match the global fused kernels bitwise.
 */
template <typename AggregateFn, typename PrefetchFn>
void
shardedFusedDriver(const PartitionPlan &plan, std::size_t inCols,
                   std::size_t inRowBytes, const GemmPlan &weightPlan,
                   std::span<const Feature> bias, bool relu,
                   DenseMatrix &out, const FusedConfig &config,
                   AggregateFn &&aggregateOne, PrefetchFn &&prefetchFor,
                   DenseMatrix *aggOut, Bf16Matrix *outBf16)
{
    const CsrGraph &graph = *plan.graph;
    const ProcessingOrder &order = plan.shardMajorOrder;
    if (const char *error = weightPlan.validateFor(inCols, out.cols()))
        panic("sharded fused layer weight plan: %s", error);

    const std::size_t blockSize = std::max<std::size_t>(1,
                                                        config.blockSize);
    const std::size_t taskVertices =
        blockSize * std::max<std::size_t>(1, config.blocksPerTask);
    const std::size_t aggStride = paddedWidth(inCols);
    const std::size_t outStride = out.rowStride();
    const ShardTaskList tasks = shardTasks(plan, taskVertices);

    obs::MetricsRegistry &metrics = obs::MetricsRegistry::global();
    static obs::Counter &bytesGathered =
        metrics.counter("fused.bytes_gathered");
    static obs::Counter &shardBytes =
        metrics.counter("partition.bytes_gathered");
    static obs::Counter &flops = metrics.counter("fused.flops");
    static obs::Histogram &blockMicros =
        metrics.histogram("fused.block_us");

    parallelFor(0, tasks.size(), 1,
                [&](std::size_t taskBegin, std::size_t taskEnd,
                    std::size_t) {
        const bool metricsOn = metrics.enabled();
        Feature *agg = shardAggScratch(blockSize * aggStride);
        Feature *upd = shardUpdScratch(blockSize * outStride);
        for (std::size_t t = taskBegin; t < taskEnd; ++t) {
            GRAPHITE_TRACE_SPAN("partition.shard");
            const ShardTask &task = tasks[t];
            const obs::TraceNs taskStart =
                metricsOn ? obs::TraceRecorder::now() : 0;
            std::uint64_t rowsPulled = 0;
            for (std::size_t j = task.begin; j < task.end;
                 j += blockSize) {
                const std::size_t blockEnd =
                    std::min(j + blockSize, task.end);
                const std::size_t rows = blockEnd - j;
                for (std::size_t m = 0; m < rows; ++m) {
                    const std::size_t i = j + m;
                    const VertexId v = order[i];
                    aggregateOne(v, agg + m * aggStride);
                    if (metricsOn)
                        rowsPulled += graph.degree(v) + 1;
                    if (config.agg.prefetchDistance > 0 &&
                        i + config.agg.prefetchDistance < task.end)
                        prefetchFor(order[i + config.agg.prefetchDistance]);
                }
                if (aggOut) {
                    for (std::size_t m = 0; m < rows; ++m) {
                        const VertexId v = order[j + m];
                        std::memcpy(aggOut->row(v), agg + m * aggStride,
                                    aggStride * sizeof(Feature));
                    }
                }
                gemmBlockSerial(agg, rows, aggStride, weightPlan, upd,
                                outStride, inCols);
                finishUpdateBlock(upd, rows, outStride, out.cols(), bias,
                                  relu);
                for (std::size_t m = 0; m < rows; ++m) {
                    const VertexId v = order[j + m];
                    std::memcpy(out.row(v), upd + m * outStride,
                                outStride * sizeof(Feature));
                    if (outBf16)
                        convertRowToBf16(upd + m * outStride,
                                         outBf16->cols(), outBf16->row(v));
                }
            }
            if (metricsOn) {
                const std::uint64_t taskRows = task.end - task.begin;
                bytesGathered.add(rowsPulled * inRowBytes);
                shardBytes.add(rowsPulled * inRowBytes);
                flops.add(2 * rowsPulled * inCols +
                          2 * taskRows * inCols * out.cols());
                blockMicros.observe(
                    (obs::TraceRecorder::now() - taskStart) / 1000);
            }
        }
    });
}

/** Forward-plan resolution (the fused_layer.cpp helper, shard twin). */
const GemmPlan &
resolveForwardPlan(const UpdateOp &update, std::size_t inCols,
                   std::size_t outCols, GemmPlan &localPlan)
{
    GRAPHITE_ASSERT(update.weights != nullptr, "update weights required");
    GRAPHITE_ASSERT(update.weights->rows() == inCols,
                    "weight rows must equal input feature width");
    GRAPHITE_ASSERT(update.weights->cols() == outCols,
                    "weight cols must equal output feature width");
    if (update.packedWeights != nullptr) {
        GRAPHITE_ASSERT(update.packedWeights->precision() ==
                            update.precision,
                        "cached weight plan precision mismatch");
        return *update.packedWeights;
    }
    localPlan.pack(GemmMode::NN, *update.weights, update.precision);
    return localPlan;
}

/** Common entry checks of every sharded kernel. */
void
checkPlan(const PartitionPlan &plan, std::size_t inRows,
          const char *where)
{
    GRAPHITE_ASSERT(plan.graph != nullptr, "plan references no graph");
    if (inRows != plan.graph->numVertices())
        panic("%s: input rows differ from the plan's graph", where);
    if (plan.shardMajorOrder.size() != plan.graph->numVertices())
        panic("%s: plan does not cover the graph", where);
}

} // namespace

void
aggregateSharded(const PartitionPlan &plan, const DenseMatrix &in,
                 DenseMatrix &out, const AggregationSpec &spec,
                 bool delayedHalo, const AggregationConfig &config)
{
    GRAPHITE_TRACE_SPAN("agg.sharded");
    checkPlan(plan, in.rows(), "aggregateSharded");
    const CsrGraph &graph = *plan.graph;
    GRAPHITE_ASSERT(out.rows() == in.rows() && out.cols() == in.cols(),
                    "out shape mismatch");
    if (const char *error = validateSpec(spec, graph))
        panic("aggregateSharded: %s", error);
    if (delayedHalo) {
        const std::size_t width = paddedWidth(in.cols());
        GRAPHITE_ASSERT(width <= out.rowStride(),
                        "out stride narrower than input row");
        delayedShardedAggregate(
            plan, width, in.rowBytes(), out, spec, config,
            [&](VertexId v, Feature *dst) {
                const Feature *src = in.row(v);
                const Feature factor = spec.selfFactor(v);
                #pragma omp simd
                for (std::size_t c = 0; c < width; ++c)
                    dst[c] = factor * src[c];
            },
            [&](VertexId u, Feature factor, Feature *dst) {
                combineRow(dst, in.row(u), factor, width, spec.reduce);
            },
            [&](VertexId u, Feature *dst) {
                std::memcpy(dst, in.row(u), width * sizeof(Feature));
            });
        return;
    }
    exactShardedAggregate(
        plan, in.rowBytes(), config,
        [&](VertexId v) {
            aggregateVertex(graph, in, v, spec, out.row(v));
        },
        [&](VertexId next) {
            for (VertexId u : graph.neighbors(next)) {
                __builtin_prefetch(in.row(u), 0, 3);
                __builtin_prefetch(reinterpret_cast<const char *>(
                                       in.row(u)) + kCacheLineBytes,
                                   0, 3);
            }
        });
}

void
aggregateShardedBf16(const PartitionPlan &plan, const Bf16Matrix &in,
                     DenseMatrix &out, const AggregationSpec &spec,
                     bool delayedHalo, const AggregationConfig &config)
{
    GRAPHITE_TRACE_SPAN("agg.sharded");
    checkPlan(plan, in.rows(), "aggregateShardedBf16");
    const CsrGraph &graph = *plan.graph;
    GRAPHITE_ASSERT(out.rows() == in.rows() && out.cols() == in.cols(),
                    "out shape mismatch");
    if (const char *error = validateSpec(spec, graph))
        panic("aggregateShardedBf16: %s", error);
    const std::size_t width = paddedWidth(in.cols());
    GRAPHITE_ASSERT(width <= out.rowStride(),
                    "out stride narrower than input row");
    if (delayedHalo) {
        delayedShardedAggregate(
            plan, width, in.rowBytes(), out, spec, config,
            [&](VertexId v, Feature *dst) {
                const std::uint16_t *src = in.row(v);
                const Feature factor = spec.selfFactor(v);
                #pragma omp simd
                for (std::size_t c = 0; c < width; ++c)
                    dst[c] = factor * bf16ToFloat(src[c]);
            },
            [&](VertexId u, Feature factor, Feature *dst) {
                combineRowBf16(dst, in.row(u), factor, width,
                               spec.reduce);
            },
            [&](VertexId u, Feature *dst) {
                convertRowFromBf16(in.row(u), width, dst);
            });
        return;
    }
    exactShardedAggregate(
        plan, in.rowBytes(), config,
        [&](VertexId v) {
            aggregateVertexBf16(graph, in, v, spec, out.row(v), width);
        },
        [&](VertexId next) {
            for (VertexId u : graph.neighbors(next))
                __builtin_prefetch(in.row(u), 0, 3);
        });
}

void
fusedLayerTrainingSharded(const PartitionPlan &plan, const DenseMatrix &in,
                          const AggregationSpec &spec,
                          const UpdateOp &update, DenseMatrix &aggOut,
                          DenseMatrix &out, const FusedConfig &config)
{
    GRAPHITE_TRACE_SPAN("fused.forward");
    checkPlan(plan, in.rows(), "fusedLayerTrainingSharded");
    const CsrGraph &graph = *plan.graph;
    GRAPHITE_ASSERT(aggOut.rows() == in.rows() &&
                        aggOut.cols() == in.cols(),
                    "aggOut shape mismatch");
    if (const char *error = validateSpec(spec, graph))
        panic("fusedLayerTrainingSharded: %s", error);
    GemmPlan localPlan;
    const GemmPlan &weightPlan =
        resolveForwardPlan(update, in.cols(), out.cols(), localPlan);
    shardedFusedDriver(
        plan, in.cols(), in.rowBytes(), weightPlan, update.bias,
        update.relu, out, config,
        [&](VertexId v, Feature *dst) {
            aggregateVertex(graph, in, v, spec, dst);
        },
        [&](VertexId next) {
            for (VertexId u : graph.neighbors(next)) {
                __builtin_prefetch(in.row(u), 0, 3);
                __builtin_prefetch(reinterpret_cast<const char *>(
                                       in.row(u)) + kCacheLineBytes,
                                   0, 3);
            }
        },
        &aggOut, nullptr);
}

void
fusedLayerInferenceSharded(const PartitionPlan &plan, const DenseMatrix &in,
                           const AggregationSpec &spec,
                           const UpdateOp &update, DenseMatrix &out,
                           const FusedConfig &config, Bf16Matrix *outBf16)
{
    GRAPHITE_TRACE_SPAN("fused.forward");
    checkPlan(plan, in.rows(), "fusedLayerInferenceSharded");
    const CsrGraph &graph = *plan.graph;
    GRAPHITE_ASSERT(outBf16 == nullptr ||
                        (outBf16->rows() == out.rows() &&
                         outBf16->cols() == out.cols()),
                    "outBf16 shape mismatch");
    if (const char *error = validateSpec(spec, graph))
        panic("fusedLayerInferenceSharded: %s", error);
    GemmPlan localPlan;
    const GemmPlan &weightPlan =
        resolveForwardPlan(update, in.cols(), out.cols(), localPlan);
    shardedFusedDriver(
        plan, in.cols(), in.rowBytes(), weightPlan, update.bias,
        update.relu, out, config,
        [&](VertexId v, Feature *dst) {
            aggregateVertex(graph, in, v, spec, dst);
        },
        [&](VertexId next) {
            for (VertexId u : graph.neighbors(next)) {
                __builtin_prefetch(in.row(u), 0, 3);
                __builtin_prefetch(reinterpret_cast<const char *>(
                                       in.row(u)) + kCacheLineBytes,
                                   0, 3);
            }
        },
        nullptr, outBf16);
}

void
fusedLayerTrainingShardedBf16(const PartitionPlan &plan,
                              const Bf16Matrix &in,
                              const AggregationSpec &spec,
                              const UpdateOp &update, DenseMatrix &aggOut,
                              DenseMatrix &out, const FusedConfig &config)
{
    GRAPHITE_TRACE_SPAN("fused.forward");
    checkPlan(plan, in.rows(), "fusedLayerTrainingShardedBf16");
    const CsrGraph &graph = *plan.graph;
    GRAPHITE_ASSERT(aggOut.rows() == in.rows() &&
                        aggOut.cols() == in.cols(),
                    "aggOut shape mismatch");
    if (const char *error = validateSpec(spec, graph))
        panic("fusedLayerTrainingShardedBf16: %s", error);
    GemmPlan localPlan;
    const GemmPlan &weightPlan =
        resolveForwardPlan(update, in.cols(), out.cols(), localPlan);
    const std::size_t aggWidth = paddedWidth(in.cols());
    shardedFusedDriver(
        plan, in.cols(), in.rowBytes(), weightPlan, update.bias,
        update.relu, out, config,
        [&](VertexId v, Feature *dst) {
            aggregateVertexBf16(graph, in, v, spec, dst, aggWidth);
        },
        [&](VertexId next) {
            for (VertexId u : graph.neighbors(next))
                __builtin_prefetch(in.row(u), 0, 3);
        },
        &aggOut, nullptr);
}

void
fusedLayerInferenceShardedBf16(const PartitionPlan &plan,
                               const Bf16Matrix &in,
                               const AggregationSpec &spec,
                               const UpdateOp &update, DenseMatrix &out,
                               const FusedConfig &config,
                               Bf16Matrix *outBf16)
{
    GRAPHITE_TRACE_SPAN("fused.forward");
    checkPlan(plan, in.rows(), "fusedLayerInferenceShardedBf16");
    const CsrGraph &graph = *plan.graph;
    GRAPHITE_ASSERT(outBf16 == nullptr ||
                        (outBf16->rows() == out.rows() &&
                         outBf16->cols() == out.cols()),
                    "outBf16 shape mismatch");
    if (const char *error = validateSpec(spec, graph))
        panic("fusedLayerInferenceShardedBf16: %s", error);
    GemmPlan localPlan;
    const GemmPlan &weightPlan =
        resolveForwardPlan(update, in.cols(), out.cols(), localPlan);
    const std::size_t aggWidth = paddedWidth(in.cols());
    shardedFusedDriver(
        plan, in.cols(), in.rowBytes(), weightPlan, update.bias,
        update.relu, out, config,
        [&](VertexId v, Feature *dst) {
            aggregateVertexBf16(graph, in, v, spec, dst, aggWidth);
        },
        [&](VertexId next) {
            for (VertexId u : graph.neighbors(next))
                __builtin_prefetch(in.row(u), 0, 3);
        },
        nullptr, outBf16);
}

void
fusedLayerBackwardSharded(const PartitionPlan &transposedPlan,
                          const DenseMatrix &dz,
                          const AggregationSpec &transposedSpec,
                          const GemmPlan &weightsNT, DenseMatrix &gradIn,
                          const FusedConfig &config)
{
    GRAPHITE_TRACE_SPAN("fused.backward");
    checkPlan(transposedPlan, dz.rows(), "fusedLayerBackwardSharded");
    const CsrGraph &transposed = *transposedPlan.graph;
    GRAPHITE_ASSERT(gradIn.rows() == dz.rows(), "gradIn row mismatch");
    GRAPHITE_ASSERT(transposedSpec.reduce == ReduceOp::Sum,
                    "fused backward requires a sum-reduce aggregation");
    if (const char *error = validateSpec(transposedSpec, transposed))
        panic("fusedLayerBackwardSharded: %s", error);
    shardedFusedDriver(
        transposedPlan, dz.cols(), dz.rowBytes(), weightsNT, {}, false,
        gradIn, config,
        [&](VertexId v, Feature *dst) {
            aggregateVertex(transposed, dz, v, transposedSpec, dst);
        },
        [&](VertexId next) {
            for (VertexId u : transposed.neighbors(next)) {
                __builtin_prefetch(dz.row(u), 0, 3);
                __builtin_prefetch(reinterpret_cast<const char *>(
                                       dz.row(u)) + kCacheLineBytes,
                                   0, 3);
            }
        },
        nullptr, nullptr);
}

void
fusedLayerBackwardShardedBf16(const PartitionPlan &transposedPlan,
                              const Bf16Matrix &dz,
                              const AggregationSpec &transposedSpec,
                              const GemmPlan &weightsNT,
                              DenseMatrix &gradIn,
                              const FusedConfig &config)
{
    GRAPHITE_TRACE_SPAN("fused.backward");
    checkPlan(transposedPlan, dz.rows(), "fusedLayerBackwardShardedBf16");
    const CsrGraph &transposed = *transposedPlan.graph;
    GRAPHITE_ASSERT(gradIn.rows() == dz.rows(), "gradIn row mismatch");
    GRAPHITE_ASSERT(transposedSpec.reduce == ReduceOp::Sum,
                    "fused backward requires a sum-reduce aggregation");
    GRAPHITE_ASSERT(weightsNT.precision() == Precision::Bf16,
                    "bf16 fused backward needs a bf16 NT plan");
    if (const char *error = validateSpec(transposedSpec, transposed))
        panic("fusedLayerBackwardShardedBf16: %s", error);
    const std::size_t aggWidth = paddedWidth(dz.cols());
    shardedFusedDriver(
        transposedPlan, dz.cols(), dz.rowBytes(), weightsNT, {}, false,
        gradIn, config,
        [&](VertexId v, Feature *dst) {
            aggregateVertexBf16(transposed, dz, v, transposedSpec, dst,
                                aggWidth);
        },
        [&](VertexId next) {
            for (VertexId u : transposed.neighbors(next))
                __builtin_prefetch(dz.row(u), 0, 3);
        },
        nullptr, nullptr);
}

} // namespace graphite
