/**
 * @file
 * Parallel vectorised aggregation — paper Algorithm 1.
 *
 * Each vertex v gathers the feature vectors of N(v) ∪ {v}, applies the
 * feature-processing function ψ (realised as a per-edge multiplicative
 * factor, which covers both GCN's symmetric normalisation and
 * GraphSAGE-mean's averaging — see Table 2), and reduces element-wise.
 * Output parallelism over vertex chunks needs no synchronisation; chunks
 * are scheduled dynamically to absorb power-law degree skew. The kernel
 * software-prefetches the first two cache lines of feature vectors a
 * configurable distance ahead, and the inner loop is specialised per
 * feature length the way the paper's JIT-assembled kernels are.
 */

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "compress/compressed_matrix.h"
#include "graph/csr_graph.h"
#include "graph/reorder.h"
#include "tensor/bf16_matrix.h"
#include "tensor/dense_matrix.h"

namespace graphite {

/**
 * The element-wise reduction operator ⊕ of Algorithm 1. Sum covers GCN
 * and GraphSAGE-mean (Table 2); Max covers pooling-style aggregators.
 * Both initialise the accumulator with the (ψ-processed) self term and
 * fold neighbors in, so no explicit identity element is needed.
 */
enum class ReduceOp : std::uint8_t
{
    Sum,
    Max,
};

/**
 * The feature-processing function ψ as multiplicative factors: one per
 * edge (aligned with the CSR colIdx array) and one per vertex for the
 * self term, plus the reduction operator.
 */
struct AggregationSpec
{
    /** Per-edge factor, or empty for 1.0. */
    std::vector<Feature> edgeFactors;
    /** Per-vertex self-term factor, or empty for 1.0. */
    std::vector<Feature> selfFactors;
    /** Element-wise reduction combining the processed inputs. */
    ReduceOp reduce = ReduceOp::Sum;

    Feature
    edgeFactor(EdgeId e) const
    {
        return edgeFactors.empty() ? 1.0f : edgeFactors[e];
    }

    Feature
    selfFactor(VertexId v) const
    {
        return selfFactors.empty() ? 1.0f : selfFactors[v];
    }
};

/**
 * GCN symmetric normalisation (Table 2): factor(v,u) = 1/sqrt(Dv'·Du')
 * with D' = degree + 1 (the +1 accounts for the self edge).
 */
AggregationSpec gcnSpec(const CsrGraph &graph);

/** GraphSAGE-mean (Table 2): every term weighted by 1/(Dv + 1). */
AggregationSpec sageSpec(const CsrGraph &graph);

/**
 * GIN (Graph Isomorphism Network) aggregation: sum of neighbors plus a
 * (1 + ε)-weighted self term — the maximally-expressive sum aggregator.
 * Fits the ψ formalism with unit edge factors and a constant self
 * factor.
 */
AggregationSpec ginSpec(const CsrGraph &graph, Feature epsilon = 0.0f);

/**
 * Kernel-entry precondition on a spec's factor arrays: a non-empty
 * edge-factor array must have exactly |E| entries (aligned with colIdx)
 * and a non-empty self-factor array exactly |V| — a silently short array
 * would index out of bounds inside the gather loop.
 *
 * @return nullptr when consistent, else a static message.
 */
const char *validateSpec(const AggregationSpec &spec, const CsrGraph &graph);

/** Unweighted sum aggregation (all factors 1). */
AggregationSpec sumSpec();

/** Unweighted element-wise max over N(v) ∪ {v} (pooling aggregator). */
AggregationSpec maxSpec();

/** Tuning knobs of the aggregation kernels. */
struct AggregationConfig
{
    /** Vertices per dynamically-scheduled task (T in Algorithm 1). */
    std::size_t taskSize = 64;
    /** Prefetch distance in vertices (D in Algorithm 1); 0 disables. */
    std::size_t prefetchDistance = 4;
    /**
     * Cache lines prefetched from each upcoming feature vector. The
     * paper empirically uses 2 to avoid saturating the L1 fill buffers.
     */
    std::size_t prefetchLines = 2;
};

/**
 * Algorithm 1: out[v, :] = selfFactor(v)·in[v, :] +
 * Σ_{u ∈ N(v)} edgeFactor(v,u)·in[u, :], processed in @p order.
 *
 * @param order processing order (Section 4.4), or empty for identity.
 */
void aggregateBasic(const CsrGraph &graph, const DenseMatrix &in,
                    DenseMatrix &out, const AggregationSpec &spec,
                    std::span<const VertexId> order = {},
                    const AggregationConfig &config = {});

/**
 * Aggregation reading mask-compressed input features (Section 4.3):
 * identical math to aggregateBasic, with each gathered row expanded
 * on the fly from its packed form.
 */
void aggregateCompressed(const CsrGraph &graph, const CompressedMatrix &in,
                         DenseMatrix &out, const AggregationSpec &spec,
                         std::span<const VertexId> order = {},
                         const AggregationConfig &config = {});

/**
 * Aggregation reading bf16 input features: each gathered row is
 * expanded to fp32 on the fly, halving feature traffic at reduced
 * precision — the dense-feature counterpart of mask compression (see
 * tensor/bf16_matrix.h). Accumulation stays in fp32.
 */
void aggregateBf16(const CsrGraph &graph, const Bf16Matrix &in,
                   DenseMatrix &out, const AggregationSpec &spec,
                   std::span<const VertexId> order = {},
                   const AggregationConfig &config = {});

/**
 * Serial single-vertex aggregation into @p dst (rowStride-padded):
 * the AGGREGATE building block shared by the fused kernels and the DMA
 * functional model.
 */
void aggregateVertex(const CsrGraph &graph, const DenseMatrix &in,
                     VertexId v, const AggregationSpec &spec, Feature *dst);

/**
 * Serial single-vertex aggregation from bf16 features: gathered rows
 * are widened to fp32 in registers and accumulated into @p dst[0,
 * @p width) — the bf16 counterpart of aggregateVertex, shared by
 * aggregateBf16 and the fused bf16 kernels. @p width must be a
 * multiple of the fp32 row padding (it is never wider than the bf16
 * row stride, so over-reading the source padding is safe).
 */
void aggregateVertexBf16(const CsrGraph &graph, const Bf16Matrix &in,
                         VertexId v, const AggregationSpec &spec,
                         Feature *dst, std::size_t width);

/** Reference scalar implementation used as the test oracle. */
void aggregateReference(const CsrGraph &graph, const DenseMatrix &in,
                        DenseMatrix &out, const AggregationSpec &spec);

/**
 * Push-style transposed aggregation (scatter form), serial:
 * out[u, :] = selfFactor(u)·in[u, :] + Σ_{v : u ∈ N(v)}
 * edgeFactor(v,u)·in[v, :] — i.e. out = Aggᵀ(in) computed by walking
 * the *forward* CSR and scattering each source row to its
 * destinations. This is the natural consumer of a source-blocked input
 * (the backward fusion direction, GEMM→aggregate), but scatter needs
 * write synchronisation to parallelise on a CPU, so the production
 * fused backward commutes the GEMM past the aggregation and stays
 * pull-based instead (see kernels/fused_layer.h); this entry is the
 * oracle the fused path is validated against. Sum reduction only — the
 * backward of a linear aggregation is linear.
 */
void aggregateTransposedPush(const CsrGraph &graph, const DenseMatrix &in,
                             DenseMatrix &out, const AggregationSpec &spec);

} // namespace graphite
