#include "kernels/overlay_gather.h"

namespace graphite {

void
fullMeanRow(const CsrGraph &graph, const DenseMatrix &features,
            VertexId v, Feature *dst)
{
    const std::size_t cols = features.cols();
    const Feature *self = features.row(v);
    for (std::size_t c = 0; c < cols; ++c)
        dst[c] = self[c];
    const auto neighbors = graph.neighbors(v);
    for (const VertexId u : neighbors) {
        const Feature *srcRow = features.row(u);
        for (std::size_t c = 0; c < cols; ++c)
            dst[c] += srcRow[c];
    }
    const float scale =
        1.0f / (1.0f + static_cast<float>(neighbors.size()));
    for (std::size_t c = 0; c < cols; ++c)
        dst[c] *= scale;
}

void
fullMeanRow(const DeltaCsr &graph, const DenseMatrix &features,
            VertexId v, Feature *dst)
{
    const std::size_t cols = features.cols();
    const Feature *self = features.row(v);
    for (std::size_t c = 0; c < cols; ++c)
        dst[c] = self[c];
    // Base row first, then the delta chain in insertion order — the
    // same accumulation order a zero-delta overlay's base would give,
    // keeping the two overloads bitwise-interchangeable in that case.
    EdgeId fanIn = 0;
    for (const VertexId u : graph.baseNeighbors(v)) {
        const Feature *srcRow = features.row(u);
        for (std::size_t c = 0; c < cols; ++c)
            dst[c] += srcRow[c];
        ++fanIn;
    }
    graph.forEachDeltaNeighbor(v, [&](VertexId u) {
        const Feature *srcRow = features.row(u);
        for (std::size_t c = 0; c < cols; ++c)
            dst[c] += srcRow[c];
        ++fanIn;
    });
    const float scale = 1.0f / (1.0f + static_cast<float>(fanIn));
    for (std::size_t c = 0; c < cols; ++c)
        dst[c] *= scale;
}

} // namespace graphite
