/**
 * @file
 * Layer fusion — paper Algorithm 2 and Figure 5.
 *
 * A GNN layer's aggregation is memory-bound and its update (an FC layer)
 * is compute-bound. Running them back-to-back over the whole graph makes
 * the phases alternate between starving the FPUs and starving the memory
 * system, and round-trips the full aggregation matrix a^k through DRAM.
 * The fused kernel instead alternates per *block* of B vertices:
 * aggregate B vertices into a cache-resident block buffer, immediately
 * update that block, move on. Threads drift out of phase naturally (no
 * barrier), so one core's aggregation overlaps another's update
 * (Figure 4), and in inference a^k is never materialised at all
 * (Figure 5c) — a single reusable buffer per thread suffices.
 */

#pragma once

#include <span>

#include "compress/compressed_matrix.h"
#include "kernels/aggregation.h"
#include "tensor/dense_matrix.h"
#include "tensor/gemm_plan.h"

namespace graphite {

/** The update phase: h = act(W·a + b) (paper Table 2's FC + ReLU). */
struct UpdateOp
{
    /** F_in x F_out weight matrix. */
    const DenseMatrix *weights = nullptr;
    /** Optional bias of length F_out. */
    std::span<const Feature> bias = {};
    /** Apply ReLU after the affine transform. */
    bool relu = true;
    /**
     * Optional NN-mode pack of @c weights (GnnLayer's epoch-cached
     * plan). When null, consumers that need the packed form pack once
     * per layer invocation themselves. A supplied plan must have been
     * packed at @c precision.
     */
    const GemmPlan *packedWeights = nullptr;
    /**
     * Precision of the per-block micro-GEMM: Bf16 rounds the weights
     * (at pack time) and the aggregated block rows (at the A pack) to
     * bf16 and accumulates in fp32.
     */
    Precision precision = Precision::Fp32;
};

/** Tuning knobs of the fused kernel (Algorithm 2's constants). */
struct FusedConfig
{
    /** Vertices per block (B): sized so B aggregation rows fit in L2. */
    std::size_t blockSize = 16;
    /** Blocks per dynamically-scheduled task (T). */
    std::size_t blocksPerTask = 4;
    /** Aggregation prefetch knobs (shared with Algorithm 1). */
    AggregationConfig agg;
};

/**
 * Fused aggregation + update for training (Figure 5b): the aggregation
 * block is consumed by the update while cache-resident, but the whole
 * a^k matrix is still written out because back-propagation needs it.
 *
 * @param aggOut   full |V| x F_in aggregation matrix (kept for backprop).
 * @param out      |V| x F_out output features h^k.
 * @param order    processing order or empty for identity.
 */
void fusedLayerTraining(const CsrGraph &graph, const DenseMatrix &in,
                        const AggregationSpec &spec, const UpdateOp &update,
                        DenseMatrix &aggOut, DenseMatrix &out,
                        std::span<const VertexId> order = {},
                        const FusedConfig &config = {});

/**
 * Fused aggregation + update for inference (Figure 5c): a^k lives only
 * in a per-thread reusable block buffer and is never written to memory.
 *
 * @param outBf16 when non-null, each produced h^k row is also rounded
 *                to bf16 while cache-resident — the write-side
 *                conversion that feeds the next layer's bf16 gathers
 *                without an extra pass over DRAM. Must be |V| x F_out.
 */
void fusedLayerInference(const CsrGraph &graph, const DenseMatrix &in,
                         const AggregationSpec &spec, const UpdateOp &update,
                         DenseMatrix &out,
                         std::span<const VertexId> order = {},
                         const FusedConfig &config = {},
                         Bf16Matrix *outBf16 = nullptr);

/**
 * Bf16-input fused variants (the precision analogue of the compressed
 * pair): gathered rows are widened from bf16 to fp32 in registers
 * during aggregation, so half-width features never round-trip through
 * a DRAM scratch, and the per-block micro-GEMM runs at the update op's
 * precision. @p aggOut still persists fp32 aggregation rows (backprop
 * consumes them at full precision).
 * @{
 */
void fusedLayerTrainingBf16(const CsrGraph &graph, const Bf16Matrix &in,
                            const AggregationSpec &spec,
                            const UpdateOp &update, DenseMatrix &aggOut,
                            DenseMatrix &out,
                            std::span<const VertexId> order = {},
                            const FusedConfig &config = {});

void fusedLayerInferenceBf16(const CsrGraph &graph, const Bf16Matrix &in,
                             const AggregationSpec &spec,
                             const UpdateOp &update, DenseMatrix &out,
                             std::span<const VertexId> order = {},
                             const FusedConfig &config = {},
                             Bf16Matrix *outBf16 = nullptr);
/** @} */

/**
 * Compressed-input variants (Section 4.3 combined with fusion): gathered
 * rows are expanded on the fly from @p in's packed form. When
 * @p outCompressed is non-null the produced h^k rows are also compressed
 * so the *next* layer reads packed data — that write-side compression is
 * where training's ReLU/dropout sparsity pays off.
 * @{
 */
void fusedLayerTrainingCompressed(const CsrGraph &graph,
                                  const CompressedMatrix &in,
                                  const AggregationSpec &spec,
                                  const UpdateOp &update,
                                  DenseMatrix &aggOut, DenseMatrix &out,
                                  CompressedMatrix *outCompressed = nullptr,
                                  std::span<const VertexId> order = {},
                                  const FusedConfig &config = {});

void fusedLayerInferenceCompressed(const CsrGraph &graph,
                                   const CompressedMatrix &in,
                                   const AggregationSpec &spec,
                                   const UpdateOp &update, DenseMatrix &out,
                                   CompressedMatrix *outCompressed = nullptr,
                                   std::span<const VertexId> order = {},
                                   const FusedConfig &config = {});
/** @} */

/**
 * Fused backward kernel — Algorithm 2's counterpart for training's
 * second half. The backward of a layer needs dh_prev = Aggᵀ(dz·Wᵀ):
 * naively a full dAgg = dz·Wᵀ matrix is materialised in DRAM and then
 * aggregated over the transposed graph. The fusion direction is
 * reversed relative to the forward (GEMM feeds the aggregation), whose
 * literal blocked form would scatter GEMM output blocks to arbitrary
 * destination rows — parallel scatter needs atomics or striped locks
 * on a CPU (see aggregateTransposedPush, the serial scatter oracle).
 * Instead this kernel exploits that the two operators commute —
 * aggregation is a row-mixing (sparse-left) multiply, the weight GEMM a
 * column-mixing (dense-right) multiply, so Aggᵀ(dz·Wᵀ) = (Aggᵀ dz)·Wᵀ
 * — which restores the forward kernel's pull-shape: per block of B
 * vertices, aggregate dz rows over the transposed CSR into a
 * cache-resident block buffer, then run the `·Wᵀ` micro-GEMM (via the
 * prepacked NT @p weightsNT plan, gemmBlockSerial) from that buffer
 * straight into @p gradIn. The F_out-wide dz block stays L2-resident
 * between the two phases and dAgg is never materialised.
 *
 * @param transposed     transposed graph.
 * @param dz             dL/d(pre-activation), |V| x F_out.
 * @param transposedSpec factors remapped by transposeSpec(); Sum only.
 * @param weightsNT      W packed in NT mode (K=F_out, N=F_in).
 * @param gradIn         dL/dh_prev output, |V| x F_in.
 * @param order          processing order for the transposed graph.
 */
void fusedLayerBackward(const CsrGraph &transposed, const DenseMatrix &dz,
                        const AggregationSpec &transposedSpec,
                        const GemmPlan &weightsNT, DenseMatrix &gradIn,
                        std::span<const VertexId> order = {},
                        const FusedConfig &config = {});

/**
 * Bf16 fused backward: dz is gathered at half width (widened to fp32
 * in registers) and the `·Wᵀ` micro-GEMM consumes the bf16 NT plan.
 * Gradients accumulate in fp32 throughout; only the gathered operands
 * are rounded.
 */
void fusedLayerBackwardBf16(const CsrGraph &transposed,
                            const Bf16Matrix &dz,
                            const AggregationSpec &transposedSpec,
                            const GemmPlan &weightsNT, DenseMatrix &gradIn,
                            std::span<const VertexId> order = {},
                            const FusedConfig &config = {});

/**
 * Unfused reference layer: aggregateBasic over the full graph, then a
 * whole-matrix GEMM update. The `basic` configuration of Figure 11.
 */
void unfusedLayer(const CsrGraph &graph, const DenseMatrix &in,
                  const AggregationSpec &spec, const UpdateOp &update,
                  DenseMatrix &aggOut, DenseMatrix &out,
                  std::span<const VertexId> order = {},
                  const AggregationConfig &config = {});

} // namespace graphite
