/**
 * @file
 * Layer fusion — paper Algorithm 2 and Figure 5.
 *
 * A GNN layer's aggregation is memory-bound and its update (an FC layer)
 * is compute-bound. Running them back-to-back over the whole graph makes
 * the phases alternate between starving the FPUs and starving the memory
 * system, and round-trips the full aggregation matrix a^k through DRAM.
 * The fused kernel instead alternates per *block* of B vertices:
 * aggregate B vertices into a cache-resident block buffer, immediately
 * update that block, move on. Threads drift out of phase naturally (no
 * barrier), so one core's aggregation overlaps another's update
 * (Figure 4), and in inference a^k is never materialised at all
 * (Figure 5c) — a single reusable buffer per thread suffices.
 */

#pragma once

#include <span>

#include "compress/compressed_matrix.h"
#include "kernels/aggregation.h"
#include "tensor/dense_matrix.h"
#include "tensor/gemm_plan.h"

namespace graphite {

/** The update phase: h = act(W·a + b) (paper Table 2's FC + ReLU). */
struct UpdateOp
{
    /** F_in x F_out weight matrix. */
    const DenseMatrix *weights = nullptr;
    /** Optional bias of length F_out. */
    std::span<const Feature> bias = {};
    /** Apply ReLU after the affine transform. */
    bool relu = true;
    /**
     * Optional NN-mode pack of @c weights (GnnLayer's epoch-cached
     * plan). When null, consumers that need the packed form pack once
     * per layer invocation themselves.
     */
    const GemmPlan *packedWeights = nullptr;
};

/** Tuning knobs of the fused kernel (Algorithm 2's constants). */
struct FusedConfig
{
    /** Vertices per block (B): sized so B aggregation rows fit in L2. */
    std::size_t blockSize = 16;
    /** Blocks per dynamically-scheduled task (T). */
    std::size_t blocksPerTask = 4;
    /** Aggregation prefetch knobs (shared with Algorithm 1). */
    AggregationConfig agg;
};

/**
 * Fused aggregation + update for training (Figure 5b): the aggregation
 * block is consumed by the update while cache-resident, but the whole
 * a^k matrix is still written out because back-propagation needs it.
 *
 * @param aggOut   full |V| x F_in aggregation matrix (kept for backprop).
 * @param out      |V| x F_out output features h^k.
 * @param order    processing order or empty for identity.
 */
void fusedLayerTraining(const CsrGraph &graph, const DenseMatrix &in,
                        const AggregationSpec &spec, const UpdateOp &update,
                        DenseMatrix &aggOut, DenseMatrix &out,
                        std::span<const VertexId> order = {},
                        const FusedConfig &config = {});

/**
 * Fused aggregation + update for inference (Figure 5c): a^k lives only
 * in a per-thread reusable block buffer and is never written to memory.
 */
void fusedLayerInference(const CsrGraph &graph, const DenseMatrix &in,
                         const AggregationSpec &spec, const UpdateOp &update,
                         DenseMatrix &out,
                         std::span<const VertexId> order = {},
                         const FusedConfig &config = {});

/**
 * Compressed-input variants (Section 4.3 combined with fusion): gathered
 * rows are expanded on the fly from @p in's packed form. When
 * @p outCompressed is non-null the produced h^k rows are also compressed
 * so the *next* layer reads packed data — that write-side compression is
 * where training's ReLU/dropout sparsity pays off.
 * @{
 */
void fusedLayerTrainingCompressed(const CsrGraph &graph,
                                  const CompressedMatrix &in,
                                  const AggregationSpec &spec,
                                  const UpdateOp &update,
                                  DenseMatrix &aggOut, DenseMatrix &out,
                                  CompressedMatrix *outCompressed = nullptr,
                                  std::span<const VertexId> order = {},
                                  const FusedConfig &config = {});

void fusedLayerInferenceCompressed(const CsrGraph &graph,
                                   const CompressedMatrix &in,
                                   const AggregationSpec &spec,
                                   const UpdateOp &update, DenseMatrix &out,
                                   CompressedMatrix *outCompressed = nullptr,
                                   std::span<const VertexId> order = {},
                                   const FusedConfig &config = {});
/** @} */

/**
 * Unfused reference layer: aggregateBasic over the full graph, then a
 * whole-matrix GEMM update. The `basic` configuration of Figure 11.
 */
void unfusedLayer(const CsrGraph &graph, const DenseMatrix &in,
                  const AggregationSpec &spec, const UpdateOp &update,
                  DenseMatrix &aggOut, DenseMatrix &out,
                  std::span<const VertexId> order = {},
                  const AggregationConfig &config = {});

} // namespace graphite
