#include "kernels/aggregation.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/assert.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"

#if defined(__AVX512F__)
#define GRAPHITE_AGG_AVX512 1
#include <immintrin.h>
#else
#define GRAPHITE_AGG_AVX512 0
#endif

namespace graphite {

AggregationSpec
gcnSpec(const CsrGraph &graph)
{
    const VertexId n = graph.numVertices();
    AggregationSpec spec;
    spec.selfFactors.resize(n);
    spec.edgeFactors.resize(graph.numEdges());
    std::vector<Feature> invSqrt(n);
    for (VertexId v = 0; v < n; ++v) {
        invSqrt[v] = 1.0f / std::sqrt(static_cast<Feature>(
            graph.degree(v) + 1));
    }
    for (VertexId v = 0; v < n; ++v) {
        spec.selfFactors[v] = invSqrt[v] * invSqrt[v];
        for (EdgeId e = graph.rowBegin(v); e < graph.rowEnd(v); ++e)
            spec.edgeFactors[e] = invSqrt[v] * invSqrt[graph.colIdx()[e]];
    }
    return spec;
}

AggregationSpec
sageSpec(const CsrGraph &graph)
{
    const VertexId n = graph.numVertices();
    AggregationSpec spec;
    spec.selfFactors.resize(n);
    spec.edgeFactors.resize(graph.numEdges());
    for (VertexId v = 0; v < n; ++v) {
        const Feature mean = 1.0f / static_cast<Feature>(
            graph.degree(v) + 1);
        spec.selfFactors[v] = mean;
        for (EdgeId e = graph.rowBegin(v); e < graph.rowEnd(v); ++e)
            spec.edgeFactors[e] = mean;
    }
    return spec;
}

AggregationSpec
ginSpec(const CsrGraph &graph, Feature epsilon)
{
    AggregationSpec spec;
    spec.selfFactors.assign(graph.numVertices(), 1.0f + epsilon);
    return spec;
}

AggregationSpec
sumSpec()
{
    return {};
}

AggregationSpec
maxSpec()
{
    AggregationSpec spec;
    spec.reduce = ReduceOp::Max;
    return spec;
}

const char *
validateSpec(const AggregationSpec &spec, const CsrGraph &graph)
{
    if (!spec.edgeFactors.empty() &&
        spec.edgeFactors.size() != graph.numEdges())
        return "edge-factor array length must equal |E|";
    if (!spec.selfFactors.empty() &&
        spec.selfFactors.size() != graph.numVertices())
        return "self-factor array length must equal |V|";
    return nullptr;
}

namespace {

#if GRAPHITE_AGG_AVX512

/**
 * Register-resident aggregation for feature vectors of Groups x 16
 * floats: the accumulator a_v lives entirely in zmm registers across all
 * neighbours, exactly what the paper's JIT-specialised kernels achieve
 * with layer-constant code generation. The reduction operator is a
 * template parameter so each (width, op) pair gets its own straight-line
 * kernel, like per-layer JIT output.
 */
template <int Groups, ReduceOp Op>
void
aggregateVertexZmm(const CsrGraph &graph, const DenseMatrix &in, VertexId v,
                   const AggregationSpec &spec, Feature *dst)
{
    __m512 acc[Groups];
    const Feature *self = in.row(v);
    const __m512 selfFactor = _mm512_set1_ps(spec.selfFactor(v));
    for (int g = 0; g < Groups; ++g)
        acc[g] = _mm512_mul_ps(_mm512_loadu_ps(self + g * 16), selfFactor);
    const EdgeId rowEnd = graph.rowEnd(v);
    for (EdgeId e = graph.rowBegin(v); e < rowEnd; ++e) {
        const Feature *src = in.row(graph.colIdx()[e]);
        const __m512 factor = _mm512_set1_ps(spec.edgeFactor(e));
        for (int g = 0; g < Groups; ++g) {
            const __m512 value = _mm512_loadu_ps(src + g * 16);
            if constexpr (Op == ReduceOp::Sum) {
                acc[g] = _mm512_fmadd_ps(value, factor, acc[g]);
            } else {
                acc[g] = _mm512_max_ps(
                    acc[g], _mm512_mul_ps(value, factor));
            }
        }
    }
    for (int g = 0; g < Groups; ++g)
        _mm512_storeu_ps(dst + g * 16, acc[g]);
}

using VertexKernel = void (*)(const CsrGraph &, const DenseMatrix &,
                              VertexId, const AggregationSpec &, Feature *);

/** Kernel tables indexed by Groups - 1; the JIT-dispatch analogue. */
constexpr VertexKernel kZmmSumKernels[] = {
    aggregateVertexZmm<1, ReduceOp::Sum>,
    aggregateVertexZmm<2, ReduceOp::Sum>,
    aggregateVertexZmm<3, ReduceOp::Sum>,
    aggregateVertexZmm<4, ReduceOp::Sum>,
    aggregateVertexZmm<5, ReduceOp::Sum>,
    aggregateVertexZmm<6, ReduceOp::Sum>,
    aggregateVertexZmm<7, ReduceOp::Sum>,
    aggregateVertexZmm<8, ReduceOp::Sum>,
    aggregateVertexZmm<9, ReduceOp::Sum>,
    aggregateVertexZmm<10, ReduceOp::Sum>,
    aggregateVertexZmm<11, ReduceOp::Sum>,
    aggregateVertexZmm<12, ReduceOp::Sum>,
    aggregateVertexZmm<13, ReduceOp::Sum>,
    aggregateVertexZmm<14, ReduceOp::Sum>,
    aggregateVertexZmm<15, ReduceOp::Sum>,
    aggregateVertexZmm<16, ReduceOp::Sum>,
};
constexpr VertexKernel kZmmMaxKernels[] = {
    aggregateVertexZmm<1, ReduceOp::Max>,
    aggregateVertexZmm<2, ReduceOp::Max>,
    aggregateVertexZmm<3, ReduceOp::Max>,
    aggregateVertexZmm<4, ReduceOp::Max>,
    aggregateVertexZmm<5, ReduceOp::Max>,
    aggregateVertexZmm<6, ReduceOp::Max>,
    aggregateVertexZmm<7, ReduceOp::Max>,
    aggregateVertexZmm<8, ReduceOp::Max>,
    aggregateVertexZmm<9, ReduceOp::Max>,
    aggregateVertexZmm<10, ReduceOp::Max>,
    aggregateVertexZmm<11, ReduceOp::Max>,
    aggregateVertexZmm<12, ReduceOp::Max>,
    aggregateVertexZmm<13, ReduceOp::Max>,
    aggregateVertexZmm<14, ReduceOp::Max>,
    aggregateVertexZmm<15, ReduceOp::Max>,
    aggregateVertexZmm<16, ReduceOp::Max>,
};
constexpr std::size_t kMaxZmmGroups =
    sizeof(kZmmSumKernels) / sizeof(kZmmSumKernels[0]);

#endif // GRAPHITE_AGG_AVX512

/** Generic (any width) scalar-vectorisable fallback. */
void
aggregateVertexGeneric(const CsrGraph &graph, const DenseMatrix &in,
                       VertexId v, const AggregationSpec &spec, Feature *dst)
{
    const std::size_t f = in.cols();
    const Feature *self = in.row(v);
    const Feature sw = spec.selfFactor(v);
    #pragma omp simd
    for (std::size_t c = 0; c < f; ++c)
        dst[c] = sw * self[c];
    const EdgeId rowEnd = graph.rowEnd(v);
    for (EdgeId e = graph.rowBegin(v); e < rowEnd; ++e) {
        const Feature *src = in.row(graph.colIdx()[e]);
        const Feature ew = spec.edgeFactor(e);
        if (spec.reduce == ReduceOp::Sum) {
            #pragma omp simd
            for (std::size_t c = 0; c < f; ++c)
                dst[c] += ew * src[c];
        } else {
            #pragma omp simd
            for (std::size_t c = 0; c < f; ++c)
                dst[c] = std::max(dst[c], ew * src[c]);
        }
    }
}

/**
 * Rows gathered by the vertices at order positions [begin, end): one
 * per neighbour plus the self row. Only walked when the metrics
 * registry is enabled (the aggregation loop itself stays untouched).
 */
std::uint64_t
rowsGathered(const CsrGraph &graph, std::span<const VertexId> order,
             std::size_t begin, std::size_t end)
{
    std::uint64_t rows = 0;
    for (std::size_t i = begin; i < end; ++i) {
        const VertexId v =
            order.empty() ? static_cast<VertexId>(i) : order[i];
        rows += graph.rowEnd(v) - graph.rowBegin(v) + 1;
    }
    return rows;
}

/**
 * Prefetch the first @p lines cache lines of the feature vectors vertex
 * @p v's aggregation will gather (Algorithm 1 lines 8-9).
 */
inline void
prefetchVertexInputs(const CsrGraph &graph, const DenseMatrix &in,
                     VertexId v, std::size_t lines)
{
    for (VertexId u : graph.neighbors(v)) {
        const char *base = reinterpret_cast<const char *>(in.row(u));
        for (std::size_t l = 0; l < lines; ++l)
            __builtin_prefetch(base + l * kCacheLineBytes, 0, 3);
    }
}

} // namespace

void
aggregateVertex(const CsrGraph &graph, const DenseMatrix &in, VertexId v,
                const AggregationSpec &spec, Feature *dst)
{
#if GRAPHITE_AGG_AVX512
    const std::size_t stride = in.rowStride();
    const std::size_t groups = stride / 16;
    if (groups >= 1 && groups <= kMaxZmmGroups && stride % 16 == 0) {
        const VertexKernel *table = spec.reduce == ReduceOp::Sum
            ? kZmmSumKernels : kZmmMaxKernels;
        table[groups - 1](graph, in, v, spec, dst);
        return;
    }
#endif
    aggregateVertexGeneric(graph, in, v, spec, dst);
}

void
aggregateBasic(const CsrGraph &graph, const DenseMatrix &in,
               DenseMatrix &out, const AggregationSpec &spec,
               std::span<const VertexId> order,
               const AggregationConfig &config)
{
    const VertexId n = graph.numVertices();
    GRAPHITE_ASSERT(in.rows() == n && out.rows() == n,
                    "feature row count mismatch");
    GRAPHITE_ASSERT(in.cols() == out.cols(), "feature width mismatch");
    GRAPHITE_ASSERT(order.empty() || order.size() == n,
                    "order must cover all vertices");
    if (const char *error = validateSpec(spec, graph))
        panic("aggregateBasic: %s", error);
    GRAPHITE_DCHECK(reinterpret_cast<std::uintptr_t>(in.data()) %
                            kFeatureAlignment == 0,
                    "input features must be cache-line aligned");

    GRAPHITE_TRACE_SPAN("agg.basic");
    obs::MetricsRegistry &metrics = obs::MetricsRegistry::global();
    static obs::Counter &bytesGathered =
        metrics.counter("agg.bytes_gathered");
    static obs::Counter &flops = metrics.counter("agg.flops");

    parallelFor(0, n, config.taskSize,
                [&](std::size_t begin, std::size_t end, std::size_t) {
        GRAPHITE_TRACE_SPAN("agg.block");
        for (std::size_t i = begin; i < end; ++i) {
            const VertexId v =
                order.empty() ? static_cast<VertexId>(i) : order[i];
            aggregateVertex(graph, in, v, spec, out.row(v));
            if (config.prefetchDistance > 0 &&
                i + config.prefetchDistance < end) {
                const std::size_t ahead = i + config.prefetchDistance;
                const VertexId next = order.empty()
                    ? static_cast<VertexId>(ahead) : order[ahead];
                prefetchVertexInputs(graph, in, next,
                                     config.prefetchLines);
            }
        }
        if (metrics.enabled()) {
            const std::uint64_t rows =
                rowsGathered(graph, order, begin, end);
            bytesGathered.add(rows * in.rowBytes());
            flops.add(2 * rows * in.cols());
        }
    });
}

void
aggregateCompressed(const CsrGraph &graph, const CompressedMatrix &in,
                    DenseMatrix &out, const AggregationSpec &spec,
                    std::span<const VertexId> order,
                    const AggregationConfig &config)
{
    const VertexId n = graph.numVertices();
    GRAPHITE_ASSERT(in.rows() == n && out.rows() == n,
                    "feature row count mismatch");
    GRAPHITE_ASSERT(in.cols() == out.cols(), "feature width mismatch");
    GRAPHITE_ASSERT(order.empty() || order.size() == n,
                    "order must cover all vertices");
    GRAPHITE_ASSERT(spec.reduce == ReduceOp::Sum,
                    "compressed aggregation supports sum reduction");
    if (const char *error = validateSpec(spec, graph))
        panic("aggregateCompressed: %s", error);
    const std::size_t stride = out.rowStride();

    GRAPHITE_TRACE_SPAN("agg.compressed");
    obs::MetricsRegistry &metrics = obs::MetricsRegistry::global();
    static obs::Counter &flops = metrics.counter("agg.flops");

    parallelFor(0, n, config.taskSize,
                [&](std::size_t begin, std::size_t end, std::size_t) {
        GRAPHITE_TRACE_SPAN("agg.block");
        if (metrics.enabled())
            flops.add(2 * rowsGathered(graph, order, begin, end) *
                      in.cols());
        for (std::size_t i = begin; i < end; ++i) {
            const VertexId v =
                order.empty() ? static_cast<VertexId>(i) : order[i];
            Feature *dst = out.row(v);
            // Self term: expand row v scaled by its self factor. Start
            // from zero then accumulate so the expanded zeros do not
            // clobber anything.
            std::fill(dst, dst + stride, 0.0f);
            in.accumulateRow(v, spec.selfFactor(v), dst);
            for (EdgeId e = graph.rowBegin(v); e < graph.rowEnd(v); ++e) {
                in.accumulateRow(graph.colIdx()[e], spec.edgeFactor(e),
                                 dst);
            }
            if (config.prefetchDistance > 0 &&
                i + config.prefetchDistance < end) {
                const std::size_t ahead = i + config.prefetchDistance;
                const VertexId next = order.empty()
                    ? static_cast<VertexId>(ahead) : order[ahead];
                for (VertexId u : graph.neighbors(next)) {
                    __builtin_prefetch(in.values(u), 0, 3);
                    __builtin_prefetch(in.mask(u), 0, 3);
                }
            }
        }
    });
}

namespace {

/**
 * dst[0..f) ⊕= factor * bf16row (expanded to fp32). AVX-512 path
 * expands 16 bf16 lanes per step by a 16-bit shift into the float's
 * high half; accumulation is full fp32.
 */
void
combineBf16Row(const std::uint16_t *src, std::size_t f, Feature factor,
               Feature *dst, ReduceOp reduce)
{
#if GRAPHITE_AGG_AVX512
    if (f % 16 == 0) {
        const __m512 factorVec = _mm512_set1_ps(factor);
        for (std::size_t g = 0; g < f; g += 16) {
            const __m256i raw = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(src + g));
            const __m512 values = _mm512_castsi512_ps(
                _mm512_slli_epi32(_mm512_cvtepu16_epi32(raw), 16));
            const __m512 acc = _mm512_loadu_ps(dst + g);
            if (reduce == ReduceOp::Sum) {
                _mm512_storeu_ps(dst + g,
                                 _mm512_fmadd_ps(values, factorVec,
                                                 acc));
            } else {
                _mm512_storeu_ps(
                    dst + g,
                    _mm512_max_ps(acc,
                                  _mm512_mul_ps(values, factorVec)));
            }
        }
        return;
    }
#endif
    for (std::size_t c = 0; c < f; ++c) {
        const std::uint32_t bits = static_cast<std::uint32_t>(src[c])
                                   << 16;
        Feature value;
        std::memcpy(&value, &bits, sizeof(value));
        value *= factor;
        dst[c] = reduce == ReduceOp::Sum ? dst[c] + value
                                         : std::max(dst[c], value);
    }
}

} // namespace

void
aggregateVertexBf16(const CsrGraph &graph, const Bf16Matrix &in,
                    VertexId v, const AggregationSpec &spec, Feature *dst,
                    std::size_t width)
{
    // Seed the accumulator with the self term (Sum-combining into zeros
    // yields selfFactor * h_v for either reduce op).
    std::fill(dst, dst + width, 0.0f);
    combineBf16Row(in.row(v), width, spec.selfFactor(v), dst,
                   ReduceOp::Sum);
    for (EdgeId e = graph.rowBegin(v); e < graph.rowEnd(v); ++e) {
        combineBf16Row(in.row(graph.colIdx()[e]), width,
                       spec.edgeFactor(e), dst, spec.reduce);
    }
}

void
aggregateBf16(const CsrGraph &graph, const Bf16Matrix &in,
              DenseMatrix &out, const AggregationSpec &spec,
              std::span<const VertexId> order,
              const AggregationConfig &config)
{
    const VertexId n = graph.numVertices();
    GRAPHITE_ASSERT(in.rows() == n && out.rows() == n,
                    "feature row count mismatch");
    GRAPHITE_ASSERT(in.cols() == out.cols(), "feature width mismatch");
    GRAPHITE_ASSERT(order.empty() || order.size() == n,
                    "order must cover all vertices");
    if (const char *error = validateSpec(spec, graph))
        panic("aggregateBf16: %s", error);
    const std::size_t stride = out.rowStride();

    GRAPHITE_TRACE_SPAN("agg.bf16");
    obs::MetricsRegistry &metrics = obs::MetricsRegistry::global();
    static obs::Counter &bytesGathered =
        metrics.counter("agg.bytes_gathered");
    static obs::Counter &flops = metrics.counter("agg.flops");

    parallelFor(0, n, config.taskSize,
                [&](std::size_t begin, std::size_t end, std::size_t) {
        GRAPHITE_TRACE_SPAN("agg.block");
        for (std::size_t i = begin; i < end; ++i) {
            const VertexId v =
                order.empty() ? static_cast<VertexId>(i) : order[i];
            aggregateVertexBf16(graph, in, v, spec, out.row(v), stride);
            if (config.prefetchDistance > 0 &&
                i + config.prefetchDistance < end) {
                const std::size_t ahead =
                    i + config.prefetchDistance;
                const VertexId next = order.empty()
                    ? static_cast<VertexId>(ahead) : order[ahead];
                for (VertexId u : graph.neighbors(next))
                    __builtin_prefetch(in.row(u), 0, 3);
            }
        }
        if (metrics.enabled()) {
            const std::uint64_t rows =
                rowsGathered(graph, order, begin, end);
            // in.rowBytes() is 2 bytes per element: the traffic halving
            // the bytes-gathered comparison against fp32 runs measures.
            bytesGathered.add(rows * in.rowBytes());
            flops.add(2 * rows * in.cols());
        }
    });
}

void
aggregateReference(const CsrGraph &graph, const DenseMatrix &in,
                   DenseMatrix &out, const AggregationSpec &spec)
{
    const VertexId n = graph.numVertices();
    for (VertexId v = 0; v < n; ++v) {
        Feature *dst = out.row(v);
        const Feature *self = in.row(v);
        for (std::size_t c = 0; c < in.cols(); ++c)
            dst[c] = spec.selfFactor(v) * self[c];
        for (EdgeId e = graph.rowBegin(v); e < graph.rowEnd(v); ++e) {
            const Feature *src = in.row(graph.colIdx()[e]);
            for (std::size_t c = 0; c < in.cols(); ++c) {
                const Feature value = spec.edgeFactor(e) * src[c];
                dst[c] = spec.reduce == ReduceOp::Sum
                    ? dst[c] + value : std::max(dst[c], value);
            }
        }
    }
}

void
aggregateTransposedPush(const CsrGraph &graph, const DenseMatrix &in,
                        DenseMatrix &out, const AggregationSpec &spec)
{
    GRAPHITE_ASSERT(spec.reduce == ReduceOp::Sum,
                    "push-style transposed aggregation requires sum");
    if (const char *error = validateSpec(spec, graph))
        panic("aggregateTransposedPush: %s", error);
    const VertexId n = graph.numVertices();
    GRAPHITE_ASSERT(in.rows() == n && out.rows() == n, "row mismatch");
    GRAPHITE_ASSERT(in.cols() == out.cols(), "width mismatch");
    const std::size_t cols = in.cols();
    for (VertexId v = 0; v < n; ++v) {
        Feature *dst = out.row(v);
        const Feature *self = in.row(v);
        for (std::size_t c = 0; c < cols; ++c)
            dst[c] = spec.selfFactor(v) * self[c];
    }
    // Scatter pass: edge (v, u) carries factor(v, u) in the forward
    // direction, so it contributes in[v] to out[u] in the transpose.
    for (VertexId v = 0; v < n; ++v) {
        const Feature *src = in.row(v);
        for (EdgeId e = graph.rowBegin(v); e < graph.rowEnd(v); ++e) {
            Feature *dst = out.row(graph.colIdx()[e]);
            const Feature factor = spec.edgeFactor(e);
            for (std::size_t c = 0; c < cols; ++c)
                dst[c] += factor * src[c];
        }
    }
}

} // namespace graphite
