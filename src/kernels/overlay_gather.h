/**
 * @file
 * Full-neighborhood mean gather for the serving path, over either a
 * frozen CsrGraph or a mutating DeltaCsr overlay.
 *
 * The hot-vertex cache stores the *full-neighborhood* mean aggregation
 * of a hub's input features (deterministic per vertex, independent of
 * which request sampled it — see serve/hot_vertex_cache.h). Under
 * dynamic graphs that row must be computed over base + delta edges, so
 * the gather lives here as a kernel with both graph variants behind one
 * contract:
 *
 *   dst = (features[v] + Σ_{u ∈ N(v)} features[u]) / (|N(v)| + 1)
 *
 * Bitwise contract: both overloads accumulate in neighbor-list order
 * (base row first, then delta chain in insertion order for the
 * overlay), in plain float. An overlay holding zero deltas therefore
 * produces bitwise the same row as its base CsrGraph — the property
 * the serve-layer parity tests pin.
 */

#pragma once

#include "common/types.h"
#include "graph/csr_graph.h"
#include "graph/delta_csr.h"
#include "tensor/dense_matrix.h"

namespace graphite {

/**
 * Mean-aggregate @p v's full neighborhood (self term included) from
 * @p features into @p dst (features.cols() floats).
 */
void fullMeanRow(const CsrGraph &graph, const DenseMatrix &features,
                 VertexId v, Feature *dst);

/**
 * Overlay variant: the neighbor set is the base row plus @p v's
 * published delta edges. Wait-free with respect to concurrent
 * addEdge() — the delta count is snapshotted once (acquire), so the
 * gather sees a consistent prefix of the chain.
 */
void fullMeanRow(const DeltaCsr &graph, const DenseMatrix &features,
                 VertexId v, Feature *dst);

} // namespace graphite
