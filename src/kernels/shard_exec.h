/**
 * @file
 * Shard-major execution of the aggregation and fused kernels over a
 * PartitionPlan.
 *
 * The global kernels parallelise over one flat vertex order, so on
 * graphs whose feature slice exceeds the LLC every task competes for
 * the same cache and hub rows re-stream from DRAM. The entries here
 * instead carve the thread-pool tasks from the plan's shard-major
 * order — tasks never span a shard boundary — so while a shard is in
 * flight its slice of the feature matrix stays cache-resident.
 *
 * Two aggregation modes:
 *  - **Exact** (default): every vertex still aggregates from the global
 *    CSR via the same per-vertex building blocks as the global kernels,
 *    so results are bit-identical for any shard count — only the
 *    processing order and task boundaries change. The win is locality
 *    (sim dram_lines / L2 hits), not gathered bytes.
 *  - **Delayed halo** (DistGNN-style, aggregation only): each shard
 *    first folds its self + intra-shard terms from the local CSR, then
 *    gathers every halo row exactly *once* into a shard-local replica
 *    buffer and folds the cut-edge terms from the replica. Cross-shard
 *    hub rows are pulled once per shard instead of once per cut edge,
 *    so gathered bytes genuinely drop; the changed summation order
 *    makes results fp-tolerant rather than bit-equal.
 *
 * All entries run each task under a "partition.shard" trace span and
 * feed the partition.bytes_gathered / partition.halo_bytes counters
 * (the fused entries additionally feed the fused.* counters with the
 * same semantics as the global driver).
 */

#pragma once

#include "graph/partition/partition_plan.h"
#include "kernels/aggregation.h"
#include "kernels/fused_layer.h"

namespace graphite {

/**
 * Shard-major Algorithm 1: same math as aggregateBasic over
 * plan.shardMajorOrder, with shard-aligned tasks; @p delayedHalo
 * selects the two-phase replica mode described above (Sum and Max
 * reductions both supported — max is order-insensitive, so delayed
 * stays exact there).
 */
void aggregateSharded(const PartitionPlan &plan, const DenseMatrix &in,
                      DenseMatrix &out, const AggregationSpec &spec,
                      bool delayedHalo = false,
                      const AggregationConfig &config = {});

/** Bf16-input counterpart of aggregateSharded (fp32 accumulation). */
void aggregateShardedBf16(const PartitionPlan &plan, const Bf16Matrix &in,
                          DenseMatrix &out, const AggregationSpec &spec,
                          bool delayedHalo = false,
                          const AggregationConfig &config = {});

/**
 * Shard-major fused layer kernels: Algorithm 2's per-block
 * aggregate→micro-GEMM loop with blocks carved from shard-aligned
 * tasks. Aggregation is exact (global CSR), so outputs are
 * bit-identical to the global fused kernels — gemmBlockSerial results
 * do not depend on how rows are grouped into blocks.
 * @{
 */
void fusedLayerTrainingSharded(const PartitionPlan &plan,
                               const DenseMatrix &in,
                               const AggregationSpec &spec,
                               const UpdateOp &update, DenseMatrix &aggOut,
                               DenseMatrix &out,
                               const FusedConfig &config = {});

void fusedLayerInferenceSharded(const PartitionPlan &plan,
                                const DenseMatrix &in,
                                const AggregationSpec &spec,
                                const UpdateOp &update, DenseMatrix &out,
                                const FusedConfig &config = {},
                                Bf16Matrix *outBf16 = nullptr);

void fusedLayerTrainingShardedBf16(const PartitionPlan &plan,
                                   const Bf16Matrix &in,
                                   const AggregationSpec &spec,
                                   const UpdateOp &update,
                                   DenseMatrix &aggOut, DenseMatrix &out,
                                   const FusedConfig &config = {});

void fusedLayerInferenceShardedBf16(const PartitionPlan &plan,
                                    const Bf16Matrix &in,
                                    const AggregationSpec &spec,
                                    const UpdateOp &update,
                                    DenseMatrix &out,
                                    const FusedConfig &config = {},
                                    Bf16Matrix *outBf16 = nullptr);
/** @} */

/**
 * Shard-major fused backward: the commuted (Aggᵀdz)·Wᵀ pull-kernel of
 * fusedLayerBackward over a plan of the *transposed* graph.
 * @{
 */
void fusedLayerBackwardSharded(const PartitionPlan &transposedPlan,
                               const DenseMatrix &dz,
                               const AggregationSpec &transposedSpec,
                               const GemmPlan &weightsNT,
                               DenseMatrix &gradIn,
                               const FusedConfig &config = {});

void fusedLayerBackwardShardedBf16(const PartitionPlan &transposedPlan,
                                   const Bf16Matrix &dz,
                                   const AggregationSpec &transposedSpec,
                                   const GemmPlan &weightsNT,
                                   DenseMatrix &gradIn,
                                   const FusedConfig &config = {});
/** @} */

} // namespace graphite
