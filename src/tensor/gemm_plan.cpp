#include "tensor/gemm_plan.h"

#include <algorithm>
#include <cstring>

#include "parallel/thread_pool.h"
#include "tensor/bf16_matrix.h"

namespace graphite {

namespace {

/** Bf16 pair-words a whole plan of the given blocking stores. */
std::size_t
totalPairWords(std::size_t numKBlocks, std::size_t numColPanels,
               std::size_t lastBlockPairs)
{
    if (numKBlocks == 0)
        return 0;
    return (numKBlocks - 1) * (kGemmKC / 2) * numColPanels * kGemmNR +
           lastBlockPairs * numColPanels * kGemmNR;
}

} // namespace

void
GemmPlan::pack(GemmMode mode, const DenseMatrix &b, Precision precision)
{
    // Only the B operand's own orientation matters here: NN and TN read
    // b as the stored K x N matrix, NT reads it as an N x K matrix whose
    // transpose is consumed.
    const bool transposed = mode == GemmMode::NT;
    precision_ = precision;
    k_ = transposed ? b.cols() : b.rows();
    n_ = transposed ? b.rows() : b.cols();
    numColPanels_ = (n_ + kGemmNR - 1) / kGemmNR;
    numKBlocks_ = (k_ + kGemmKC - 1) / kGemmKC;

    if (precision == Precision::Bf16) {
        if (packed_.size() != 0)
            packed_.resize(0);
        const std::size_t total = totalPairWords(
            numKBlocks_, numColPanels_,
            numKBlocks_ > 0 ? kBlockPairs(numKBlocks_ - 1) : 0);
        if (packedPairs_.size() != total)
            packedPairs_.resize(total);
        // Effective element (k, j) of the K x N operand.
        const auto at = [&](std::size_t k, std::size_t j) {
            return transposed ? b.row(j)[k] : b.row(k)[j];
        };
        parallelFor(0, numKBlocks_, 1,
                    [&](std::size_t kbBegin, std::size_t kbEnd,
                        std::size_t) {
            for (std::size_t kb = kbBegin; kb < kbEnd; ++kb) {
                const std::size_t k0 = kb * kGemmKC;
                const std::size_t kcLen = kBlockLen(kb);
                const std::size_t pairs = kBlockPairs(kb);
                for (std::size_t jp = 0; jp < numColPanels_; ++jp) {
                    const std::size_t j0 = jp * kGemmNR;
                    const std::size_t jLen = std::min(kGemmNR, n_ - j0);
                    std::uint32_t *dst =
                        const_cast<std::uint32_t *>(pairPanel(kb, jp));
                    for (std::size_t kp = 0; kp < pairs; ++kp) {
                        const std::size_t kLo = k0 + 2 * kp;
                        const bool hasHi = 2 * kp + 1 < kcLen;
                        std::uint32_t *out = dst + kp * kGemmNR;
                        for (std::size_t j = 0; j < jLen; ++j) {
                            const std::uint32_t lo =
                                bf16FromFloat(at(kLo, j0 + j));
                            const std::uint32_t hi =
                                hasHi ? bf16FromFloat(at(kLo + 1, j0 + j))
                                      : 0u;
                            out[j] = lo | (hi << 16);
                        }
                        for (std::size_t j = jLen; j < kGemmNR; ++j)
                            out[j] = 0u;
                    }
                }
            }
        });
        return;
    }

    if (packedPairs_.size() != 0)
        packedPairs_.resize(0);
    const std::size_t total =
        numKBlocks_ > 0
            ? (numKBlocks_ - 1) * kGemmKC * numColPanels_ * kGemmNR +
                  kBlockLen(numKBlocks_ - 1) * numColPanels_ * kGemmNR
            : 0;
    if (packed_.size() != total)
        packed_.resize(total);

    parallelFor(0, numKBlocks_, 1,
                [&](std::size_t kbBegin, std::size_t kbEnd, std::size_t) {
        for (std::size_t kb = kbBegin; kb < kbEnd; ++kb) {
            const std::size_t k0 = kb * kGemmKC;
            const std::size_t kcLen = kBlockLen(kb);
            for (std::size_t jp = 0; jp < numColPanels_; ++jp) {
                const std::size_t j0 = jp * kGemmNR;
                const std::size_t jLen = std::min(kGemmNR, n_ - j0);
                Feature *dst = const_cast<Feature *>(panel(kb, jp));
                if (!transposed) {
                    for (std::size_t kk = 0; kk < kcLen; ++kk) {
                        const Feature *src = b.row(k0 + kk) + j0;
                        Feature *out = dst + kk * kGemmNR;
                        std::memcpy(out, src, jLen * sizeof(Feature));
                        std::fill(out + jLen, out + kGemmNR, 0.0f);
                    }
                } else {
                    // b is N x K: panel columns are stored rows, so the
                    // copy walks b rows with a k-stride write.
                    for (std::size_t j = 0; j < jLen; ++j) {
                        const Feature *src = b.row(j0 + j) + k0;
                        for (std::size_t kk = 0; kk < kcLen; ++kk)
                            dst[kk * kGemmNR + j] = src[kk];
                    }
                    for (std::size_t j = jLen; j < kGemmNR; ++j) {
                        for (std::size_t kk = 0; kk < kcLen; ++kk)
                            dst[kk * kGemmNR + j] = 0.0f;
                    }
                }
            }
        }
    });
}

const char *
GemmPlan::validate() const
{
    if (empty()) {
        if (numColPanels_ != 0 || numKBlocks_ != 0 ||
            packed_.size() != 0 || packedPairs_.size() != 0)
            return "empty plan retains packed panels";
        return nullptr;
    }
    if (k_ == 0 || n_ == 0)
        return "packed plan has a zero dimension";
    if (numColPanels_ != (n_ + kGemmNR - 1) / kGemmNR)
        return "column-panel count disagrees with n";
    if (numKBlocks_ != (k_ + kGemmKC - 1) / kGemmKC)
        return "K-block count disagrees with k";
    if (precision_ == Precision::Bf16) {
        if (packed_.size() != 0)
            return "bf16 plan retains fp32 panels";
        const std::size_t expected = totalPairWords(
            numKBlocks_, numColPanels_, kBlockPairs(numKBlocks_ - 1));
        if (packedPairs_.size() != expected)
            return "packed pair buffer size disagrees with blocking "
                   "parameters";
        return nullptr;
    }
    if (packedPairs_.size() != 0)
        return "fp32 plan retains bf16 pair panels";
    const std::size_t expected =
        (numKBlocks_ - 1) * kGemmKC * numColPanels_ * kGemmNR +
        kBlockLen(numKBlocks_ - 1) * numColPanels_ * kGemmNR;
    if (packed_.size() != expected)
        return "packed buffer size disagrees with blocking parameters";
    return nullptr;
}

const char *
GemmPlan::validateFor(std::size_t k, std::size_t n) const
{
    if (const char *error = validate())
        return error;
    if (k_ != k)
        return "plan packed for a different inner dimension K";
    if (n_ != n)
        return "plan packed for a different output width N";
    return nullptr;
}

} // namespace graphite
