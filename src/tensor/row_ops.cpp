#include "tensor/row_ops.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "common/rng.h"
#include "parallel/thread_pool.h"

namespace graphite {

void
addBias(DenseMatrix &out, std::span<const Feature> bias)
{
    GRAPHITE_ASSERT(bias.size() == out.cols(), "bias width mismatch");
    parallelFor(0, out.rows(), 256,
                [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t r = begin; r < end; ++r) {
            Feature *rowData = out.row(r);
            #pragma omp simd
            for (std::size_t c = 0; c < out.cols(); ++c)
                rowData[c] += bias[c];
        }
    });
}

void
addBiasSerial(DenseMatrix &out, std::span<const Feature> bias)
{
    GRAPHITE_ASSERT(bias.size() == out.cols(), "bias width mismatch");
    for (std::size_t r = 0; r < out.rows(); ++r) {
        Feature *rowData = out.row(r);
        #pragma omp simd
        for (std::size_t c = 0; c < out.cols(); ++c)
            rowData[c] += bias[c];
    }
}

void
reluForward(DenseMatrix &x)
{
    parallelFor(0, x.rows(), 256,
                [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t r = begin; r < end; ++r) {
            Feature *rowData = x.row(r);
            #pragma omp simd
            for (std::size_t c = 0; c < x.cols(); ++c)
                rowData[c] = std::max(rowData[c], 0.0f);
        }
    });
}

void
reluForwardSerial(DenseMatrix &x)
{
    for (std::size_t r = 0; r < x.rows(); ++r) {
        Feature *rowData = x.row(r);
        #pragma omp simd
        for (std::size_t c = 0; c < x.cols(); ++c)
            rowData[c] = std::max(rowData[c], 0.0f);
    }
}

void
reluBackward(const DenseMatrix &activated, DenseMatrix &grad)
{
    GRAPHITE_ASSERT(activated.rows() == grad.rows() &&
                        activated.cols() == grad.cols(),
                    "relu backward shape mismatch");
    parallelFor(0, grad.rows(), 256,
                [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t r = begin; r < end; ++r) {
            const Feature *act = activated.row(r);
            Feature *g = grad.row(r);
            #pragma omp simd
            for (std::size_t c = 0; c < grad.cols(); ++c)
                g[c] = act[c] > 0.0f ? g[c] : 0.0f;
        }
    });
}

void
columnSum(const DenseMatrix &x, std::span<Feature> out,
          std::vector<Feature> &scratch)
{
    GRAPHITE_ASSERT(out.size() == x.cols(), "column sum width mismatch");
    const std::size_t cols = x.cols();
    // Chunk size is a fixed constant, not derived from the thread
    // count: partials are indexed by chunk id, so the reduction order
    // (and the float rounding) is a function of the input shape alone.
    constexpr std::size_t kChunkRows = 1024;
    const std::size_t numChunks =
        x.rows() == 0 ? 0 : (x.rows() + kChunkRows - 1) / kChunkRows;
    if (scratch.size() < numChunks * cols)
        scratch.resize(numChunks * cols);
    parallelFor(0, x.rows(), kChunkRows,
                [&](std::size_t begin, std::size_t end, std::size_t) {
        // parallelFor hands out [begin, end) ranges aligned to the
        // chunk size, so begin identifies the partial-sum slot.
        Feature *partial = scratch.data() + begin / kChunkRows * cols;
        std::fill(partial, partial + cols, 0.0f);
        for (std::size_t r = begin; r < end; ++r) {
            const Feature *rowData = x.row(r);
            #pragma omp simd
            for (std::size_t c = 0; c < cols; ++c)
                partial[c] += rowData[c];
        }
    });
    std::fill(out.begin(), out.end(), 0.0f);
    for (std::size_t chunk = 0; chunk < numChunks; ++chunk) {
        const Feature *partial = scratch.data() + chunk * cols;
        #pragma omp simd
        for (std::size_t c = 0; c < cols; ++c)
            out[c] += partial[c];
    }
}

namespace {
std::size_t
maskWords(const DenseMatrix &x)
{
    return (x.rows() * x.rowStride() + 63) / 64;
}
} // namespace

void
dropoutForward(DenseMatrix &x, double rate, std::uint64_t seed,
               std::vector<std::uint64_t> &mask)
{
    GRAPHITE_ASSERT(rate >= 0.0 && rate < 1.0, "dropout rate out of range");
    mask.assign(maskWords(x), 0);
    const float scale = static_cast<float>(1.0 / (1.0 - rate));
    // Each parallel task owns a disjoint row range, hence disjoint mask
    // words as long as task boundaries are 64-element aligned; rows are
    // stride-padded to 16 floats, so use 4-row granularity at minimum.
    parallelFor(0, x.rows(), 256,
                [&](std::size_t begin, std::size_t end, std::size_t) {
        Rng rng(seed ^ (begin * 0x9e3779b97f4a7c15ull));
        for (std::size_t r = begin; r < end; ++r) {
            Feature *rowData = x.row(r);
            const std::size_t base = r * x.rowStride();
            for (std::size_t c = 0; c < x.cols(); ++c) {
                if (rng.uniform() < rate) {
                    rowData[c] = 0.0f;
                } else {
                    rowData[c] *= scale;
                    const std::size_t bit = base + c;
                    mask[bit / 64] |= std::uint64_t{1} << (bit % 64);
                }
            }
        }
    });
}

void
dropoutBackward(DenseMatrix &grad, double rate,
                const std::vector<std::uint64_t> &mask)
{
    GRAPHITE_ASSERT(mask.size() == maskWords(grad),
                    "dropout mask size mismatch");
    const float scale = static_cast<float>(1.0 / (1.0 - rate));
    parallelFor(0, grad.rows(), 256,
                [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t r = begin; r < end; ++r) {
            Feature *rowData = grad.row(r);
            const std::size_t base = r * grad.rowStride();
            for (std::size_t c = 0; c < grad.cols(); ++c) {
                const std::size_t bit = base + c;
                const bool kept =
                    (mask[bit / 64] >> (bit % 64)) & 1;
                rowData[c] = kept ? rowData[c] * scale : 0.0f;
            }
        }
    });
}

double
softmaxCrossEntropy(const DenseMatrix &logits,
                    std::span<const std::int32_t> labels,
                    DenseMatrix &gradOut)
{
    GRAPHITE_ASSERT(labels.size() == logits.rows(), "label count mismatch");
    GRAPHITE_ASSERT(gradOut.rows() == logits.rows() &&
                        gradOut.cols() == logits.cols(),
                    "grad shape mismatch");
    const std::size_t rows = logits.rows();
    const std::size_t classes = logits.cols();
    const double invRows = 1.0 / static_cast<double>(rows);

    // Grow-only per-thread scratch: the loss runs once per epoch from
    // the training loop, and reusing the reduction buffer keeps the
    // steady-state epoch allocation-free (test_alloc_guard.cpp).
    thread_local std::vector<double> partialLoss;
    partialLoss.assign(ThreadPool::global().numThreads(), 0.0);
    // thread_local names are not captured by [&]: inside the pool
    // workers' lambda they would resolve to each worker's own (empty)
    // instance. Hand the workers the caller's buffer via a pointer.
    double *const partials = partialLoss.data();
    parallelFor(0, rows, 256,
                [&](std::size_t begin, std::size_t end, std::size_t tid) {
        double loss = 0.0;
        for (std::size_t r = begin; r < end; ++r) {
            const Feature *in = logits.row(r);
            Feature *g = gradOut.row(r);
            Feature maxLogit = in[0];
            for (std::size_t c = 1; c < classes; ++c)
                maxLogit = std::max(maxLogit, in[c]);
            double denom = 0.0;
            for (std::size_t c = 0; c < classes; ++c)
                denom += std::exp(double{in[c]} - double{maxLogit});
            const auto label = static_cast<std::size_t>(labels[r]);
            GRAPHITE_ASSERT(label < classes, "label out of range");
            for (std::size_t c = 0; c < classes; ++c) {
                const double p =
                    std::exp(double{in[c]} - double{maxLogit}) / denom;
                g[c] = static_cast<Feature>(
                    (p - (c == label ? 1.0 : 0.0)) * invRows);
                if (c == label)
                    loss -= std::log(std::max(p, 1e-30));
            }
        }
        partials[tid] += loss;
    });
    double total = 0.0;
    for (double part : partialLoss)
        total += part;
    return total * invRows;
}

double
softmaxCrossEntropyMasked(const DenseMatrix &logits,
                          std::span<const std::int32_t> labels,
                          std::span<const std::uint8_t> mask,
                          DenseMatrix &gradOut)
{
    GRAPHITE_ASSERT(labels.size() == logits.rows(), "label count mismatch");
    GRAPHITE_ASSERT(mask.size() == logits.rows(), "mask count mismatch");
    GRAPHITE_ASSERT(gradOut.rows() == logits.rows() &&
                        gradOut.cols() == logits.cols(),
                    "grad shape mismatch");
    std::size_t masked = 0;
    for (std::uint8_t m : mask)
        masked += m != 0;
    gradOut.zero();
    if (masked == 0)
        return 0.0;
    const std::size_t classes = logits.cols();
    const double invCount = 1.0 / static_cast<double>(masked);

    // Same reused reduction scratch (and thread_local capture caveat)
    // as the unmasked variant above.
    thread_local std::vector<double> partialLoss;
    partialLoss.assign(ThreadPool::global().numThreads(), 0.0);
    double *const partials = partialLoss.data();
    parallelFor(0, logits.rows(), 256,
                [&](std::size_t begin, std::size_t end, std::size_t tid) {
        double loss = 0.0;
        for (std::size_t r = begin; r < end; ++r) {
            if (!mask[r])
                continue;
            const Feature *in = logits.row(r);
            Feature *g = gradOut.row(r);
            Feature maxLogit = in[0];
            for (std::size_t c = 1; c < classes; ++c)
                maxLogit = std::max(maxLogit, in[c]);
            double denom = 0.0;
            for (std::size_t c = 0; c < classes; ++c)
                denom += std::exp(double{in[c]} - double{maxLogit});
            const auto label = static_cast<std::size_t>(labels[r]);
            GRAPHITE_ASSERT(label < classes, "label out of range");
            for (std::size_t c = 0; c < classes; ++c) {
                const double p =
                    std::exp(double{in[c]} - double{maxLogit}) / denom;
                g[c] = static_cast<Feature>(
                    (p - (c == label ? 1.0 : 0.0)) * invCount);
                if (c == label)
                    loss -= std::log(std::max(p, 1e-30));
            }
        }
        partials[tid] += loss;
    });
    double total = 0.0;
    for (double part : partialLoss)
        total += part;
    return total * invCount;
}

double
accuracy(const DenseMatrix &logits, std::span<const std::int32_t> labels)
{
    GRAPHITE_ASSERT(labels.size() == logits.rows(), "label count mismatch");
    std::size_t correct = 0;
    for (std::size_t r = 0; r < logits.rows(); ++r) {
        const Feature *row = logits.row(r);
        std::size_t best = 0;
        for (std::size_t c = 1; c < logits.cols(); ++c) {
            if (row[c] > row[best])
                best = c;
        }
        correct += best == static_cast<std::size_t>(labels[r]);
    }
    return static_cast<double>(correct) /
           static_cast<double>(logits.rows());
}

double
accuracyMasked(const DenseMatrix &logits,
               std::span<const std::int32_t> labels,
               std::span<const std::uint8_t> mask)
{
    GRAPHITE_ASSERT(labels.size() == logits.rows(), "label count mismatch");
    GRAPHITE_ASSERT(mask.size() == logits.rows(), "mask count mismatch");
    std::size_t correct = 0;
    std::size_t counted = 0;
    for (std::size_t r = 0; r < logits.rows(); ++r) {
        if (!mask[r])
            continue;
        ++counted;
        const Feature *row = logits.row(r);
        std::size_t best = 0;
        for (std::size_t c = 1; c < logits.cols(); ++c) {
            if (row[c] > row[best])
                best = c;
        }
        correct += best == static_cast<std::size_t>(labels[r]);
    }
    return counted ? static_cast<double>(correct) /
                         static_cast<double>(counted)
                   : 1.0;
}

} // namespace graphite
