#include "tensor/bf16_matrix.h"

#include <cstring>

#include "common/assert.h"
#include "parallel/thread_pool.h"

namespace graphite {

void
convertRowToBf16(const Feature *src, std::size_t n, std::uint16_t *dst)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = bf16FromFloat(src[i]);
}

void
convertRowFromBf16(const std::uint16_t *src, std::size_t n, Feature *dst)
{
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t bits = static_cast<std::uint32_t>(src[i])
                                   << 16;
        std::memcpy(&dst[i], &bits, sizeof(bits));
    }
}

namespace {
std::size_t
paddedStride(std::size_t cols)
{
    // 64-byte lines hold 32 bf16 elements.
    constexpr std::size_t kPerLine = kCacheLineBytes / sizeof(std::uint16_t);
    return (cols + kPerLine - 1) / kPerLine * kPerLine;
}
} // namespace

Bf16Matrix::Bf16Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), rowStride_(paddedStride(cols)),
      storage_(rows * paddedStride(cols))
{
}

void
Bf16Matrix::reshape(std::size_t rows, std::size_t cols)
{
    const std::size_t stride = paddedStride(cols);
    const std::size_t needed = rows * stride;
    if (rows == rows_ && cols == cols_ && storage_.size() >= needed)
        return; // steady-state: nothing moved, padding still zero
    if (storage_.size() < needed)
        storage_.resize(needed); // allocates zero-initialised
    else
        storage_.zero(); // clear stale padding from the old shape
    rows_ = rows;
    cols_ = cols;
    rowStride_ = stride;
}

void
Bf16Matrix::fromDense(const DenseMatrix &dense)
{
    GRAPHITE_ASSERT(dense.rows() == rows_ && dense.cols() == cols_,
                    "bf16 conversion shape mismatch");
    parallelFor(0, rows_, 256,
                [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t r = begin; r < end; ++r)
            convertRowToBf16(dense.row(r), cols_, row(r));
    });
}

void
Bf16Matrix::toDense(DenseMatrix &dense) const
{
    GRAPHITE_ASSERT(dense.rows() == rows_ && dense.cols() == cols_,
                    "bf16 expansion shape mismatch");
    parallelFor(0, rows_, 256,
                [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t r = begin; r < end; ++r)
            convertRowFromBf16(row(r), cols_, dense.row(r));
    });
}

} // namespace graphite
