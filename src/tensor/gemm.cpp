#include "tensor/gemm.h"

#include <algorithm>

#include "common/assert.h"
#include "parallel/thread_pool.h"

namespace graphite {

namespace {

/** Rows of C processed per parallel task. */
constexpr std::size_t kRowBlock = 32;
/** Inner-dimension tile to keep the B panel in L1/L2. */
constexpr std::size_t kInnerBlock = 256;

void
checkShapes(GemmMode mode, const DenseMatrix &a, const DenseMatrix &b,
            const DenseMatrix &c)
{
    switch (mode) {
      case GemmMode::NN:
        GRAPHITE_ASSERT(a.rows() == c.rows() && a.cols() == b.rows() &&
                            b.cols() == c.cols(),
                        "GEMM NN shape mismatch");
        break;
      case GemmMode::NT:
        GRAPHITE_ASSERT(a.rows() == c.rows() && a.cols() == b.cols() &&
                            b.rows() == c.cols(),
                        "GEMM NT shape mismatch");
        break;
      case GemmMode::TN:
        GRAPHITE_ASSERT(a.cols() == c.rows() && a.rows() == b.rows() &&
                            b.cols() == c.cols(),
                        "GEMM TN shape mismatch");
        break;
    }
}

/**
 * Inner kernel for NN: c[r, :] += a[r, kBegin:kEnd] * b[kBegin:kEnd, :].
 * The j-loop over N is contiguous and vectorises into FMA chains.
 */
void
kernelRowNN(const Feature *aRow, const DenseMatrix &b, Feature *cRow,
            std::size_t n, std::size_t kBegin, std::size_t kEnd)
{
    for (std::size_t k = kBegin; k < kEnd; ++k) {
        const Feature av = aRow[k];
        if (av == 0.0f)
            continue;
        const Feature *bRow = b.row(k);
        #pragma omp simd
        for (std::size_t j = 0; j < n; ++j)
            cRow[j] += av * bRow[j];
    }
}

/** Inner kernel for NT: c[r, j] += dot(a[r, :], b[j, :]). */
void
kernelRowNT(const Feature *aRow, const DenseMatrix &b, Feature *cRow,
            std::size_t n, std::size_t kDim)
{
    for (std::size_t j = 0; j < n; ++j) {
        const Feature *bRow = b.row(j);
        Feature sum = 0.0f;
        #pragma omp simd reduction(+ : sum)
        for (std::size_t k = 0; k < kDim; ++k)
            sum += aRow[k] * bRow[k];
        cRow[j] += sum;
    }
}

} // namespace

void
gemm(GemmMode mode, const DenseMatrix &a, const DenseMatrix &b,
     DenseMatrix &c, GemmAccumulate acc)
{
    checkShapes(mode, a, b, c);
    const std::size_t m = c.rows();
    const std::size_t n = c.cols();

    if (acc == GemmAccumulate::Overwrite)
        c.zero();

    if (mode == GemmMode::TN) {
        // C(M x N) += A(K x M)^T * B(K x N). Parallelise over output rows;
        // each output row r reads column r of A, i.e. a[k, r] across k.
        const std::size_t kDim = a.rows();
        parallelFor(0, m, kRowBlock,
                    [&](std::size_t rBegin, std::size_t rEnd, std::size_t) {
            for (std::size_t kBlock = 0; kBlock < kDim;
                 kBlock += kInnerBlock) {
                const std::size_t kEnd =
                    std::min(kBlock + kInnerBlock, kDim);
                for (std::size_t k = kBlock; k < kEnd; ++k) {
                    const Feature *aRow = a.row(k);
                    const Feature *bRow = b.row(k);
                    for (std::size_t r = rBegin; r < rEnd; ++r) {
                        const Feature av = aRow[r];
                        if (av == 0.0f)
                            continue;
                        Feature *cRow = c.row(r);
                        #pragma omp simd
                        for (std::size_t j = 0; j < n; ++j)
                            cRow[j] += av * bRow[j];
                    }
                }
            }
        });
        return;
    }

    const std::size_t kDim = a.cols();
    parallelFor(0, m, kRowBlock,
                [&](std::size_t rBegin, std::size_t rEnd, std::size_t) {
        if (mode == GemmMode::NN) {
            for (std::size_t kBlock = 0; kBlock < kDim;
                 kBlock += kInnerBlock) {
                const std::size_t kEnd =
                    std::min(kBlock + kInnerBlock, kDim);
                for (std::size_t r = rBegin; r < rEnd; ++r)
                    kernelRowNN(a.row(r), b, c.row(r), n, kBlock, kEnd);
            }
        } else {
            for (std::size_t r = rBegin; r < rEnd; ++r)
                kernelRowNT(a.row(r), b, c.row(r), n, kDim);
        }
    });
}

void
gemmBlockSerial(const Feature *aRows, std::size_t rows, std::size_t aStride,
                const DenseMatrix &b, Feature *cRows, std::size_t cStride,
                std::size_t k)
{
    GRAPHITE_ASSERT(b.rows() == k, "block GEMM inner dim mismatch");
    const std::size_t n = b.cols();
    for (std::size_t r = 0; r < rows; ++r) {
        const Feature *aRow = aRows + r * aStride;
        Feature *cRow = cRows + r * cStride;
        std::fill(cRow, cRow + n, 0.0f);
        kernelRowNN(aRow, b, cRow, n, 0, k);
    }
}

void
gemmReference(GemmMode mode, const DenseMatrix &a, const DenseMatrix &b,
              DenseMatrix &c, GemmAccumulate acc)
{
    checkShapes(mode, a, b, c);
    if (acc == GemmAccumulate::Overwrite)
        c.zero();
    const std::size_t m = c.rows();
    const std::size_t n = c.cols();
    const std::size_t kDim = (mode == GemmMode::TN) ? a.rows() : a.cols();
    for (std::size_t r = 0; r < m; ++r) {
        for (std::size_t j = 0; j < n; ++j) {
            double sum = 0.0;
            for (std::size_t k = 0; k < kDim; ++k) {
                const Feature av =
                    (mode == GemmMode::TN) ? a.at(k, r) : a.at(r, k);
                const Feature bv =
                    (mode == GemmMode::NT) ? b.at(j, k) : b.at(k, j);
                sum += double{av} * double{bv};
            }
            c.at(r, j) += static_cast<Feature>(sum);
        }
    }
}

} // namespace graphite
