#include "tensor/gemm.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/assert.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"

namespace graphite {

namespace {

/*
 * Micro-kernel vector types. One Vec is 16 floats (a zmm register with
 * AVX-512; the compiler legalises it to narrower ops elsewhere). C rows
 * are only guaranteed element-aligned (gemmBlockSerial accepts raw
 * pointers), so stores to C go through the unaligned VecU flavour, while
 * packed panels — always 64-byte aligned — use the aligned Vec loads.
 */
typedef Feature Vec __attribute__((vector_size(64), may_alias));
typedef Feature VecU
    __attribute__((vector_size(64), aligned(4), may_alias));

constexpr std::size_t kVecLanes = sizeof(Vec) / sizeof(Feature);
constexpr std::size_t kNRV = kGemmNR / kVecLanes;
static_assert(kGemmNR % kVecLanes == 0);
/** Column panels per parallel N tile. */
constexpr std::size_t kPanelsPerTile = kGemmTileN / kGemmNR;
static_assert(kGemmTileN % kGemmNR == 0 && kGemmTileM % kGemmMR == 0);

/**
 * Register-tile micro-kernel: C[0..Rows) x [0..nValid) (+)= Ap · Bp over
 * one KC slice. Ap is a packed MR-wide A panel (k-major, MR stride even
 * when Rows < MR), Bp a packed NR-wide B panel. The Rows x NR
 * accumulator tile lives in registers across the whole k loop — the
 * FMA chain the update phase's FLOP rate comes from.
 */
template <std::size_t Rows>
void
microKernel(const Feature *ap, const Feature *bp, std::size_t kc,
            Feature *c, std::size_t cStride, std::size_t nValid,
            bool accumulate)
{
    // The unroll pragmas are load-bearing: -O2 alone leaves these
    // constant-trip loops rolled, which demotes the accumulator tile to
    // the stack and roughly quarters the FLOP rate. Fully unrolled, the
    // tile lives in zmm registers for the whole k loop.
    Vec acc[Rows][kNRV];
    #pragma GCC unroll 8
    for (std::size_t i = 0; i < Rows; ++i)
        #pragma GCC unroll 2
        for (std::size_t v = 0; v < kNRV; ++v)
            acc[i][v] = Vec{};

    for (std::size_t kk = 0; kk < kc; ++kk) {
        const Vec *bv = reinterpret_cast<const Vec *>(bp + kk * kGemmNR);
        const Feature *a = ap + kk * kGemmMR;
        #pragma GCC unroll 8
        for (std::size_t i = 0; i < Rows; ++i) {
            // vector * scalar (not a materialised broadcast vector):
            // GCC folds the A element into the FMA's memory operand as
            // an embedded broadcast, which runs on the load ports. A
            // separate vbroadcastss would occupy the shuffle port and
            // steal FMA issue slots.
            #pragma GCC unroll 2
            for (std::size_t v = 0; v < kNRV; ++v)
                acc[i][v] += bv[v] * a[i];
        }
    }

    if (nValid == kGemmNR) {
        #pragma GCC unroll 8
        for (std::size_t i = 0; i < Rows; ++i) {
            VecU *cv = reinterpret_cast<VecU *>(c + i * cStride);
            #pragma GCC unroll 2
            for (std::size_t v = 0; v < kNRV; ++v) {
                if (accumulate)
                    cv[v] += acc[i][v];
                else
                    cv[v] = acc[i][v];
            }
        }
    } else {
        // Ragged right edge: spill the tile row and copy the valid
        // prefix (the packed B padding guarantees the lanes are exact).
        alignas(64) Feature tmp[kGemmNR];
        for (std::size_t i = 0; i < Rows; ++i) {
            for (std::size_t v = 0; v < kNRV; ++v)
                *reinterpret_cast<Vec *>(tmp + v * kVecLanes) = acc[i][v];
            Feature *cRow = c + i * cStride;
            if (accumulate) {
                #pragma omp simd
                for (std::size_t j = 0; j < nValid; ++j)
                    cRow[j] += tmp[j];
            } else {
                #pragma omp simd
                for (std::size_t j = 0; j < nValid; ++j)
                    cRow[j] = tmp[j];
            }
        }
    }
}

/** Ragged bottom edge: dispatch to the matching register tile height. */
void
microDispatch(std::size_t rows, const Feature *ap, const Feature *bp,
              std::size_t kc, Feature *c, std::size_t cStride,
              std::size_t nValid, bool accumulate)
{
    switch (rows) {
      case 1: microKernel<1>(ap, bp, kc, c, cStride, nValid, accumulate);
        break;
      case 2: microKernel<2>(ap, bp, kc, c, cStride, nValid, accumulate);
        break;
      case 3: microKernel<3>(ap, bp, kc, c, cStride, nValid, accumulate);
        break;
      case 4: microKernel<4>(ap, bp, kc, c, cStride, nValid, accumulate);
        break;
      case 5: microKernel<5>(ap, bp, kc, c, cStride, nValid, accumulate);
        break;
      case 6: microKernel<6>(ap, bp, kc, c, cStride, nValid, accumulate);
        break;
      case 7: microKernel<7>(ap, bp, kc, c, cStride, nValid, accumulate);
        break;
      default:
        microKernel<kGemmMR>(ap, bp, kc, c, cStride, nValid, accumulate);
        break;
    }
}

/**
 * Pack @p mLen row-major rows (base pointer + stride) into MR-wide
 * k-major A panels for one KC slice, zero-padding the last panel's rows.
 */
void
packARowMajor(const Feature *aBase, std::size_t aStride, std::size_t mLen,
              std::size_t k0, std::size_t kcLen, Feature *ap)
{
    for (std::size_t ip = 0; ip * kGemmMR < mLen; ++ip) {
        Feature *panel = ap + ip * kcLen * kGemmMR;
        const std::size_t rows = std::min(kGemmMR, mLen - ip * kGemmMR);
        for (std::size_t i = 0; i < rows; ++i) {
            const Feature *src =
                aBase + (ip * kGemmMR + i) * aStride + k0;
            for (std::size_t kk = 0; kk < kcLen; ++kk)
                panel[kk * kGemmMR + i] = src[kk];
        }
        for (std::size_t i = rows; i < kGemmMR; ++i) {
            for (std::size_t kk = 0; kk < kcLen; ++kk)
                panel[kk * kGemmMR + i] = 0.0f;
        }
    }
}

/**
 * Pack A panels for TN mode, where the effective A(m, k) is the stored
 * a(k, m): each k step copies MR consecutive floats of a row.
 */
void
packAColMajor(const DenseMatrix &a, std::size_t m0, std::size_t mLen,
              std::size_t k0, std::size_t kcLen, Feature *ap)
{
    for (std::size_t ip = 0; ip * kGemmMR < mLen; ++ip) {
        Feature *panel = ap + ip * kcLen * kGemmMR;
        const std::size_t rows = std::min(kGemmMR, mLen - ip * kGemmMR);
        for (std::size_t kk = 0; kk < kcLen; ++kk) {
            const Feature *src = a.row(k0 + kk) + m0 + ip * kGemmMR;
            Feature *dst = panel + kk * kGemmMR;
            for (std::size_t i = 0; i < rows; ++i)
                dst[i] = src[i];
            for (std::size_t i = rows; i < kGemmMR; ++i)
                dst[i] = 0.0f;
        }
    }
}

/**
 * Serial tile driver: C rows [0, mLen) x panel columns [jp0, jp1) of
 * the effective product, looping KC slices of @p plan. @p packASlice
 * packs the tile's A rows for one slice into @p apBuf (capacity at
 * least roundUp(mLen, MR) * KC floats); the packed slice is then reused
 * across every column panel of the tile.
 */
template <typename PackASlice>
void
computeTile(const GemmPlan &plan, Feature *cBase, std::size_t cStride,
            std::size_t mLen, std::size_t jp0, std::size_t jp1,
            GemmAccumulate acc, Feature *apBuf, PackASlice &&packASlice)
{
    const std::size_t nTotal = plan.n();
    for (std::size_t kb = 0; kb < plan.numKBlocks(); ++kb) {
        const std::size_t kcLen = plan.kBlockLen(kb);
        packASlice(kb * kGemmKC, kcLen, apBuf);
        const bool accumulate =
            kb > 0 || acc == GemmAccumulate::Add;
        for (std::size_t jp = jp0; jp < jp1; ++jp) {
            const Feature *bp = plan.panel(kb, jp);
            const std::size_t n0 = jp * kGemmNR;
            const std::size_t nValid = std::min(kGemmNR, nTotal - n0);
            for (std::size_t ip = 0; ip * kGemmMR < mLen; ++ip) {
                const std::size_t rows =
                    std::min(kGemmMR, mLen - ip * kGemmMR);
                microDispatch(rows, apBuf + ip * kcLen * kGemmMR, bp,
                              kcLen, cBase + ip * kGemmMR * cStride + n0,
                              cStride, nValid, accumulate);
            }
        }
    }
}

void
checkShapes(GemmMode mode, const DenseMatrix &a, const DenseMatrix &b,
            const DenseMatrix &c)
{
    switch (mode) {
      case GemmMode::NN:
        GRAPHITE_ASSERT(a.rows() == c.rows() && a.cols() == b.rows() &&
                            b.cols() == c.cols(),
                        "GEMM NN shape mismatch");
        break;
      case GemmMode::NT:
        GRAPHITE_ASSERT(a.rows() == c.rows() && a.cols() == b.cols() &&
                            b.rows() == c.cols(),
                        "GEMM NT shape mismatch");
        break;
      case GemmMode::TN:
        GRAPHITE_ASSERT(a.cols() == c.rows() && a.rows() == b.rows() &&
                            b.cols() == c.cols(),
                        "GEMM TN shape mismatch");
        break;
    }
}

void
checkPlanShapes(GemmMode mode, const DenseMatrix &a, const GemmPlan &plan,
                const DenseMatrix &c)
{
    const std::size_t effM =
        mode == GemmMode::TN ? a.cols() : a.rows();
    const std::size_t effK =
        mode == GemmMode::TN ? a.rows() : a.cols();
    GRAPHITE_ASSERT(effM == c.rows() && effK == plan.k() &&
                        plan.n() == c.cols(),
                    "GEMM plan shape mismatch");
}

} // namespace

void
gemm(GemmMode mode, const DenseMatrix &a, const GemmPlan &plan,
     DenseMatrix &c, GemmAccumulate acc)
{
    checkPlanShapes(mode, a, plan, c);
    const std::size_t m = c.rows();
    const std::size_t n = c.cols();
    if (m == 0 || n == 0)
        return;
    GRAPHITE_TRACE_SPAN("gemm");
    {
        obs::MetricsRegistry &metrics = obs::MetricsRegistry::global();
        if (metrics.enabled()) {
            static obs::Counter &flops = metrics.counter("gemm.flops");
            flops.add(2 * static_cast<std::uint64_t>(m) * n * plan.k());
        }
    }
    if (plan.k() == 0) {
        // Empty inner dimension: the product is all zeros.
        if (acc == GemmAccumulate::Overwrite)
            c.zero();
        return;
    }

    // 2-D tile grid over C: N tiles in the outer index so consecutive
    // tasks drawn by one thread walk down an N tile and keep its B
    // panels hot in L1/L2 — and so wide-N/short-M shapes (dW) still
    // expose enough tasks to fill the pool.
    const std::size_t mTiles = (m + kGemmTileM - 1) / kGemmTileM;
    const std::size_t nTiles =
        (plan.numColPanels() + kPanelsPerTile - 1) / kPanelsPerTile;
    const std::size_t tasks = mTiles * nTiles;

    const std::size_t numThreads = ThreadPool::global().numThreads();
    std::vector<AlignedBuffer<Feature>> apBuf;
    apBuf.reserve(numThreads);
    for (std::size_t t = 0; t < numThreads; ++t)
        apBuf.emplace_back(kGemmTileM * kGemmKC);

    parallelFor(0, tasks, 1,
                [&](std::size_t begin, std::size_t end, std::size_t tid) {
        Feature *ap = apBuf[tid].data();
        for (std::size_t task = begin; task < end; ++task) {
            const std::size_t mt = task % mTiles;
            const std::size_t nt = task / mTiles;
            const std::size_t m0 = mt * kGemmTileM;
            const std::size_t mLen = std::min(kGemmTileM, m - m0);
            const std::size_t jp0 = nt * kPanelsPerTile;
            const std::size_t jp1 =
                std::min(jp0 + kPanelsPerTile, plan.numColPanels());
            Feature *cBase = c.row(m0);
            if (mode == GemmMode::TN) {
                computeTile(plan, cBase, c.rowStride(), mLen, jp0, jp1,
                            acc, ap,
                            [&](std::size_t k0, std::size_t kcLen,
                                Feature *dst) {
                    packAColMajor(a, m0, mLen, k0, kcLen, dst);
                });
            } else {
                computeTile(plan, cBase, c.rowStride(), mLen, jp0, jp1,
                            acc, ap,
                            [&](std::size_t k0, std::size_t kcLen,
                                Feature *dst) {
                    packARowMajor(a.row(m0), a.rowStride(), mLen, k0,
                                  kcLen, dst);
                });
            }
        }
    });
}

void
gemm(GemmMode mode, const DenseMatrix &a, const DenseMatrix &b,
     DenseMatrix &c, GemmAccumulate acc)
{
    checkShapes(mode, a, b, c);
    const GemmPlan plan(mode, b);
    gemm(mode, a, plan, c, acc);
}

void
gemmBlockSerial(const Feature *aRows, std::size_t rows,
                std::size_t aStride, const GemmPlan &plan, Feature *cRows,
                std::size_t cStride, std::size_t k)
{
    GRAPHITE_ASSERT(plan.k() == k, "block GEMM inner dim mismatch");
    if (rows == 0)
        return;
    if (k == 0) {
        for (std::size_t r = 0; r < rows; ++r)
            std::fill(cRows + r * cStride, cRows + r * cStride + plan.n(),
                      0.0f);
        return;
    }
    // Per-calling-thread pack scratch: the fused kernels call this from
    // inside pool tasks, so no shared state and no nested parallelism.
    thread_local std::vector<Feature> apScratch;
    if (apScratch.size() < kGemmTileM * kGemmKC)
        apScratch.resize(kGemmTileM * kGemmKC);
    for (std::size_t m0 = 0; m0 < rows; m0 += kGemmTileM) {
        const std::size_t mLen = std::min(kGemmTileM, rows - m0);
        computeTile(plan, cRows + m0 * cStride, cStride, mLen, 0,
                    plan.numColPanels(), GemmAccumulate::Overwrite,
                    apScratch.data(),
                    [&](std::size_t k0, std::size_t kcLen, Feature *dst) {
            packARowMajor(aRows + m0 * aStride, aStride, mLen, k0, kcLen,
                          dst);
        });
    }
}

void
gemmBlockSerial(const Feature *aRows, std::size_t rows, std::size_t aStride,
                const DenseMatrix &b, Feature *cRows, std::size_t cStride,
                std::size_t k)
{
    GRAPHITE_ASSERT(b.rows() == k, "block GEMM inner dim mismatch");
    // Unpacked one-shot path: row-streaming FMA kernel, for callers
    // whose B changes every call so packing would not amortise.
    const std::size_t n = b.cols();
    for (std::size_t r = 0; r < rows; ++r) {
        const Feature *aRow = aRows + r * aStride;
        Feature *cRow = cRows + r * cStride;
        std::fill(cRow, cRow + n, 0.0f);
        for (std::size_t kk = 0; kk < k; ++kk) {
            const Feature av = aRow[kk];
            const Feature *bRow = b.row(kk);
            #pragma omp simd
            for (std::size_t j = 0; j < n; ++j)
                cRow[j] += av * bRow[j];
        }
    }
}

void
gemmReference(GemmMode mode, const DenseMatrix &a, const DenseMatrix &b,
              DenseMatrix &c, GemmAccumulate acc)
{
    checkShapes(mode, a, b, c);
    if (acc == GemmAccumulate::Overwrite)
        c.zero();
    const std::size_t m = c.rows();
    const std::size_t n = c.cols();
    const std::size_t kDim = (mode == GemmMode::TN) ? a.rows() : a.cols();
    for (std::size_t r = 0; r < m; ++r) {
        for (std::size_t j = 0; j < n; ++j) {
            double sum = 0.0;
            for (std::size_t k = 0; k < kDim; ++k) {
                const Feature av =
                    (mode == GemmMode::TN) ? a.at(k, r) : a.at(r, k);
                const Feature bv =
                    (mode == GemmMode::NT) ? b.at(j, k) : b.at(k, j);
                sum += double{av} * double{bv};
            }
            c.at(r, j) += static_cast<Feature>(sum);
        }
    }
}

} // namespace graphite
