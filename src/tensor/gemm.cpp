#include "tensor/gemm.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/assert.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "tensor/bf16_matrix.h"

#if defined(__x86_64__) || defined(__i386__)
#define GRAPHITE_GEMM_X86_BF16 1
#include <immintrin.h>
#else
#define GRAPHITE_GEMM_X86_BF16 0
#endif

namespace graphite {

namespace {

/*
 * Micro-kernel vector types. One Vec is 16 floats (a zmm register with
 * AVX-512; the compiler legalises it to narrower ops elsewhere). C rows
 * are only guaranteed element-aligned (gemmBlockSerial accepts raw
 * pointers), so stores to C go through the unaligned VecU flavour, while
 * packed panels — always 64-byte aligned — use the aligned Vec loads.
 */
typedef Feature Vec __attribute__((vector_size(64), may_alias));
typedef Feature VecU
    __attribute__((vector_size(64), aligned(4), may_alias));

constexpr std::size_t kVecLanes = sizeof(Vec) / sizeof(Feature);
constexpr std::size_t kNRV = kGemmNR / kVecLanes;
static_assert(kGemmNR % kVecLanes == 0);
/** Column panels per parallel N tile. */
constexpr std::size_t kPanelsPerTile = kGemmTileN / kGemmNR;
static_assert(kGemmTileN % kGemmNR == 0 && kGemmTileM % kGemmMR == 0);

/**
 * Register-tile micro-kernel: C[0..Rows) x [0..nValid) (+)= Ap · Bp over
 * one KC slice. Ap is a packed MR-wide A panel (k-major, MR stride even
 * when Rows < MR), Bp a packed NR-wide B panel. The Rows x NR
 * accumulator tile lives in registers across the whole k loop — the
 * FMA chain the update phase's FLOP rate comes from.
 */
template <std::size_t Rows>
void
microKernel(const Feature *ap, const Feature *bp, std::size_t kc,
            Feature *c, std::size_t cStride, std::size_t nValid,
            bool accumulate)
{
    // The unroll pragmas are load-bearing: -O2 alone leaves these
    // constant-trip loops rolled, which demotes the accumulator tile to
    // the stack and roughly quarters the FLOP rate. Fully unrolled, the
    // tile lives in zmm registers for the whole k loop.
    Vec acc[Rows][kNRV];
    #pragma GCC unroll 8
    for (std::size_t i = 0; i < Rows; ++i)
        #pragma GCC unroll 2
        for (std::size_t v = 0; v < kNRV; ++v)
            acc[i][v] = Vec{};

    for (std::size_t kk = 0; kk < kc; ++kk) {
        const Vec *bv = reinterpret_cast<const Vec *>(bp + kk * kGemmNR);
        const Feature *a = ap + kk * kGemmMR;
        #pragma GCC unroll 8
        for (std::size_t i = 0; i < Rows; ++i) {
            // vector * scalar (not a materialised broadcast vector):
            // GCC folds the A element into the FMA's memory operand as
            // an embedded broadcast, which runs on the load ports. A
            // separate vbroadcastss would occupy the shuffle port and
            // steal FMA issue slots.
            #pragma GCC unroll 2
            for (std::size_t v = 0; v < kNRV; ++v)
                acc[i][v] += bv[v] * a[i];
        }
    }

    if (nValid == kGemmNR) {
        #pragma GCC unroll 8
        for (std::size_t i = 0; i < Rows; ++i) {
            VecU *cv = reinterpret_cast<VecU *>(c + i * cStride);
            #pragma GCC unroll 2
            for (std::size_t v = 0; v < kNRV; ++v) {
                if (accumulate)
                    cv[v] += acc[i][v];
                else
                    cv[v] = acc[i][v];
            }
        }
    } else {
        // Ragged right edge: spill the tile row and copy the valid
        // prefix (the packed B padding guarantees the lanes are exact).
        alignas(64) Feature tmp[kGemmNR];
        for (std::size_t i = 0; i < Rows; ++i) {
            for (std::size_t v = 0; v < kNRV; ++v)
                *reinterpret_cast<Vec *>(tmp + v * kVecLanes) = acc[i][v];
            Feature *cRow = c + i * cStride;
            if (accumulate) {
                #pragma omp simd
                for (std::size_t j = 0; j < nValid; ++j)
                    cRow[j] += tmp[j];
            } else {
                #pragma omp simd
                for (std::size_t j = 0; j < nValid; ++j)
                    cRow[j] = tmp[j];
            }
        }
    }
}

/** Ragged bottom edge: dispatch to the matching register tile height. */
void
microDispatch(std::size_t rows, const Feature *ap, const Feature *bp,
              std::size_t kc, Feature *c, std::size_t cStride,
              std::size_t nValid, bool accumulate)
{
    switch (rows) {
      case 1: microKernel<1>(ap, bp, kc, c, cStride, nValid, accumulate);
        break;
      case 2: microKernel<2>(ap, bp, kc, c, cStride, nValid, accumulate);
        break;
      case 3: microKernel<3>(ap, bp, kc, c, cStride, nValid, accumulate);
        break;
      case 4: microKernel<4>(ap, bp, kc, c, cStride, nValid, accumulate);
        break;
      case 5: microKernel<5>(ap, bp, kc, c, cStride, nValid, accumulate);
        break;
      case 6: microKernel<6>(ap, bp, kc, c, cStride, nValid, accumulate);
        break;
      case 7: microKernel<7>(ap, bp, kc, c, cStride, nValid, accumulate);
        break;
      default:
        microKernel<kGemmMR>(ap, bp, kc, c, cStride, nValid, accumulate);
        break;
    }
}

/**
 * Pack @p mLen row-major rows (base pointer + stride) into MR-wide
 * k-major A panels for one KC slice, zero-padding the last panel's rows.
 */
void
packARowMajor(const Feature *aBase, std::size_t aStride, std::size_t mLen,
              std::size_t k0, std::size_t kcLen, Feature *ap)
{
    for (std::size_t ip = 0; ip * kGemmMR < mLen; ++ip) {
        Feature *panel = ap + ip * kcLen * kGemmMR;
        const std::size_t rows = std::min(kGemmMR, mLen - ip * kGemmMR);
        for (std::size_t i = 0; i < rows; ++i) {
            const Feature *src =
                aBase + (ip * kGemmMR + i) * aStride + k0;
            for (std::size_t kk = 0; kk < kcLen; ++kk)
                panel[kk * kGemmMR + i] = src[kk];
        }
        for (std::size_t i = rows; i < kGemmMR; ++i) {
            for (std::size_t kk = 0; kk < kcLen; ++kk)
                panel[kk * kGemmMR + i] = 0.0f;
        }
    }
}

/**
 * Pack A panels for TN mode, where the effective A(m, k) is the stored
 * a(k, m): each k step copies MR consecutive floats of a row.
 */
void
packAColMajor(const DenseMatrix &a, std::size_t m0, std::size_t mLen,
              std::size_t k0, std::size_t kcLen, Feature *ap)
{
    for (std::size_t ip = 0; ip * kGemmMR < mLen; ++ip) {
        Feature *panel = ap + ip * kcLen * kGemmMR;
        const std::size_t rows = std::min(kGemmMR, mLen - ip * kGemmMR);
        for (std::size_t kk = 0; kk < kcLen; ++kk) {
            const Feature *src = a.row(k0 + kk) + m0 + ip * kGemmMR;
            Feature *dst = panel + kk * kGemmMR;
            for (std::size_t i = 0; i < rows; ++i)
                dst[i] = src[i];
            for (std::size_t i = rows; i < kGemmMR; ++i)
                dst[i] = 0.0f;
        }
    }
}

/*
 * ---- bf16-in / fp32-accumulate micro-kernels -------------------------
 *
 * Operands arrive as k-pair uint32 words: low 16 bits hold bf16 element
 * 2kp, high 16 bits element 2kp+1 (see GemmPlan). Each k step of the
 * kernel consumes one pair, so a KC slice takes kBlockPairs iterations.
 * The native kernel feeds the pairs to vdpbf16ps (two products summed
 * into an fp32 lane per instruction); the emulated kernel widens each
 * half to fp32 by bit shifts — bf16 -> fp32 is exact — and runs two
 * FMAs, so both paths accumulate in fp32 and agree to fp32 rounding.
 */

/** Integer twin of Vec for the emulated widening shifts. */
typedef std::uint32_t VecI __attribute__((vector_size(64), may_alias));
static_assert(kNRV == 2, "bf16 kernels assume NR = two zmm vectors");

inline Feature
floatFromBits(std::uint32_t bits)
{
    Feature out;
    std::memcpy(&out, &bits, sizeof(out));
    return out;
}

/**
 * Portable bf16 micro-kernel: same register-tile shape as microKernel,
 * with each k-pair contributing two widening FMAs per accumulator.
 */
template <std::size_t Rows>
void
microKernelBf16Emu(const std::uint32_t *ap, const std::uint32_t *bp,
                   std::size_t kcPairs, Feature *c, std::size_t cStride,
                   std::size_t nValid, bool accumulate)
{
    Vec acc[Rows][kNRV];
    #pragma GCC unroll 8
    for (std::size_t i = 0; i < Rows; ++i)
        #pragma GCC unroll 2
        for (std::size_t v = 0; v < kNRV; ++v)
            acc[i][v] = Vec{};

    for (std::size_t kp = 0; kp < kcPairs; ++kp) {
        const VecI *bv =
            reinterpret_cast<const VecI *>(bp + kp * kGemmNR);
        const std::uint32_t *a = ap + kp * kGemmMR;
        #pragma GCC unroll 8
        for (std::size_t i = 0; i < Rows; ++i) {
            const Feature aLo = floatFromBits(a[i] << 16);
            const Feature aHi = floatFromBits(a[i] & 0xffff0000u);
            // Widening shifts spelled inline: a 64-byte Vec return
            // across a function boundary trips -Wpsabi on non-AVX512
            // targets. Low half = element 2kp, high half = 2kp+1.
            #pragma GCC unroll 2
            for (std::size_t v = 0; v < kNRV; ++v) {
                acc[i][v] += (Vec)(bv[v] << 16) * aLo;
                acc[i][v] += (Vec)(bv[v] & 0xffff0000u) * aHi;
            }
        }
    }

    if (nValid == kGemmNR) {
        #pragma GCC unroll 8
        for (std::size_t i = 0; i < Rows; ++i) {
            VecU *cv = reinterpret_cast<VecU *>(c + i * cStride);
            #pragma GCC unroll 2
            for (std::size_t v = 0; v < kNRV; ++v) {
                if (accumulate)
                    cv[v] += acc[i][v];
                else
                    cv[v] = acc[i][v];
            }
        }
    } else {
        alignas(64) Feature tmp[kGemmNR];
        for (std::size_t i = 0; i < Rows; ++i) {
            for (std::size_t v = 0; v < kNRV; ++v)
                *reinterpret_cast<Vec *>(tmp + v * kVecLanes) = acc[i][v];
            Feature *cRow = c + i * cStride;
            if (accumulate) {
                #pragma omp simd
                for (std::size_t j = 0; j < nValid; ++j)
                    cRow[j] += tmp[j];
            } else {
                #pragma omp simd
                for (std::size_t j = 0; j < nValid; ++j)
                    cRow[j] = tmp[j];
            }
        }
    }
}

#if GRAPHITE_GEMM_X86_BF16

/**
 * Native AVX512-BF16 micro-kernel: one vdpbf16ps per (row, B vector)
 * per k-pair — the A word broadcast to every lane, the B vector holding
 * 16 column pairs. Compiled with a target attribute so the portable
 * build (GRAPHITE_NATIVE_ARCH=OFF) still carries it; only dispatched
 * after a cpuid check.
 */
template <std::size_t Rows>
__attribute__((target("avx512f,avx512bw,avx512vl,avx512bf16")))
void
microKernelBf16Native(const std::uint32_t *ap, const std::uint32_t *bp,
                      std::size_t kcPairs, Feature *c, std::size_t cStride,
                      std::size_t nValid, bool accumulate)
{
    __m512 acc[Rows][kNRV];
    #pragma GCC unroll 8
    for (std::size_t i = 0; i < Rows; ++i) {
        acc[i][0] = _mm512_setzero_ps();
        acc[i][1] = _mm512_setzero_ps();
    }

    for (std::size_t kp = 0; kp < kcPairs; ++kp) {
        const std::uint32_t *b = bp + kp * kGemmNR;
        const __m512bh b0 = (__m512bh)_mm512_loadu_si512(b);
        const __m512bh b1 = (__m512bh)_mm512_loadu_si512(b + kVecLanes);
        const std::uint32_t *a = ap + kp * kGemmMR;
        #pragma GCC unroll 8
        for (std::size_t i = 0; i < Rows; ++i) {
            const __m512bh av =
                (__m512bh)_mm512_set1_epi32(static_cast<int>(a[i]));
            acc[i][0] = _mm512_dpbf16_ps(acc[i][0], av, b0);
            acc[i][1] = _mm512_dpbf16_ps(acc[i][1], av, b1);
        }
    }

    if (nValid == kGemmNR) {
        #pragma GCC unroll 8
        for (std::size_t i = 0; i < Rows; ++i) {
            Feature *cRow = c + i * cStride;
            #pragma GCC unroll 2
            for (std::size_t v = 0; v < kNRV; ++v) {
                __m512 res = acc[i][v];
                if (accumulate)
                    res = _mm512_add_ps(
                        _mm512_loadu_ps(cRow + v * kVecLanes), res);
                _mm512_storeu_ps(cRow + v * kVecLanes, res);
            }
        }
    } else {
        alignas(64) Feature tmp[kGemmNR];
        for (std::size_t i = 0; i < Rows; ++i) {
            _mm512_store_ps(tmp, acc[i][0]);
            _mm512_store_ps(tmp + kVecLanes, acc[i][1]);
            Feature *cRow = c + i * cStride;
            if (accumulate) {
                for (std::size_t j = 0; j < nValid; ++j)
                    cRow[j] += tmp[j];
            } else {
                for (std::size_t j = 0; j < nValid; ++j)
                    cRow[j] = tmp[j];
            }
        }
    }
}

#endif // GRAPHITE_GEMM_X86_BF16

/**
 * Startup value of the emulation override: GRAPHITE_BF16_EMULATE set to
 * anything but "0" forces the portable kernel (the CI parity legs use
 * this so the emulated path is tested on bf16-capable runners too).
 */
bool
bf16EmulateFromEnv()
{
    // graphite-lint: allow(mt-unsafe) read once into a function-local
    // static at first GEMM dispatch, never from pool workers.
    const char *env = std::getenv("GRAPHITE_BF16_EMULATE");
    return env != nullptr && env[0] != '\0' &&
           !(env[0] == '0' && env[1] == '\0');
}

/** Atomic so tests can flip it around concurrently-timed GEMMs. */
std::atomic<bool> &
bf16EmulatedFlag()
{
    static std::atomic<bool> flag{bf16EmulateFromEnv()};
    return flag;
}

/** Ragged bottom edge dispatch for the bf16 kernels. */
void
microDispatchBf16(bool native, std::size_t rows, const std::uint32_t *ap,
                  const std::uint32_t *bp, std::size_t kcPairs, Feature *c,
                  std::size_t cStride, std::size_t nValid, bool accumulate)
{
#if GRAPHITE_GEMM_X86_BF16
    if (native) {
        switch (rows) {
          case 1: microKernelBf16Native<1>(ap, bp, kcPairs, c, cStride,
                                           nValid, accumulate);
            break;
          case 2: microKernelBf16Native<2>(ap, bp, kcPairs, c, cStride,
                                           nValid, accumulate);
            break;
          case 3: microKernelBf16Native<3>(ap, bp, kcPairs, c, cStride,
                                           nValid, accumulate);
            break;
          case 4: microKernelBf16Native<4>(ap, bp, kcPairs, c, cStride,
                                           nValid, accumulate);
            break;
          case 5: microKernelBf16Native<5>(ap, bp, kcPairs, c, cStride,
                                           nValid, accumulate);
            break;
          case 6: microKernelBf16Native<6>(ap, bp, kcPairs, c, cStride,
                                           nValid, accumulate);
            break;
          case 7: microKernelBf16Native<7>(ap, bp, kcPairs, c, cStride,
                                           nValid, accumulate);
            break;
          default:
            microKernelBf16Native<kGemmMR>(ap, bp, kcPairs, c, cStride,
                                           nValid, accumulate);
            break;
        }
        return;
    }
#else
    (void)native;
#endif
    switch (rows) {
      case 1: microKernelBf16Emu<1>(ap, bp, kcPairs, c, cStride, nValid,
                                    accumulate);
        break;
      case 2: microKernelBf16Emu<2>(ap, bp, kcPairs, c, cStride, nValid,
                                    accumulate);
        break;
      case 3: microKernelBf16Emu<3>(ap, bp, kcPairs, c, cStride, nValid,
                                    accumulate);
        break;
      case 4: microKernelBf16Emu<4>(ap, bp, kcPairs, c, cStride, nValid,
                                    accumulate);
        break;
      case 5: microKernelBf16Emu<5>(ap, bp, kcPairs, c, cStride, nValid,
                                    accumulate);
        break;
      case 6: microKernelBf16Emu<6>(ap, bp, kcPairs, c, cStride, nValid,
                                    accumulate);
        break;
      case 7: microKernelBf16Emu<7>(ap, bp, kcPairs, c, cStride, nValid,
                                    accumulate);
        break;
      default:
        microKernelBf16Emu<kGemmMR>(ap, bp, kcPairs, c, cStride, nValid,
                                    accumulate);
        break;
    }
}

/**
 * Pack row-major A rows into MR-wide k-pair panels, rounding to bf16:
 * word (kp, i) pairs elements (2kp, 2kp+1) of row i, odd tails and
 * missing rows zero-padded. Mirrors packARowMajor's panel walk.
 */
void
packARowMajorBf16(const Feature *aBase, std::size_t aStride,
                  std::size_t mLen, std::size_t k0, std::size_t kcLen,
                  std::uint32_t *ap)
{
    const std::size_t pairs = (kcLen + 1) / 2;
    for (std::size_t ip = 0; ip * kGemmMR < mLen; ++ip) {
        std::uint32_t *panel = ap + ip * pairs * kGemmMR;
        const std::size_t rows = std::min(kGemmMR, mLen - ip * kGemmMR);
        for (std::size_t i = 0; i < rows; ++i) {
            const Feature *src =
                aBase + (ip * kGemmMR + i) * aStride + k0;
            for (std::size_t kp = 0; kp < pairs; ++kp) {
                const std::uint32_t lo = bf16FromFloat(src[2 * kp]);
                const std::uint32_t hi =
                    2 * kp + 1 < kcLen ? bf16FromFloat(src[2 * kp + 1])
                                       : 0u;
                panel[kp * kGemmMR + i] = lo | (hi << 16);
            }
        }
        for (std::size_t i = rows; i < kGemmMR; ++i) {
            for (std::size_t kp = 0; kp < pairs; ++kp)
                panel[kp * kGemmMR + i] = 0u;
        }
    }
}

/** Bf16 A-pair packing for TN mode (effective A(m, k) = a(k, m)). */
void
packAColMajorBf16(const DenseMatrix &a, std::size_t m0, std::size_t mLen,
                  std::size_t k0, std::size_t kcLen, std::uint32_t *ap)
{
    const std::size_t pairs = (kcLen + 1) / 2;
    for (std::size_t ip = 0; ip * kGemmMR < mLen; ++ip) {
        std::uint32_t *panel = ap + ip * pairs * kGemmMR;
        const std::size_t rows = std::min(kGemmMR, mLen - ip * kGemmMR);
        for (std::size_t kp = 0; kp < pairs; ++kp) {
            const Feature *srcLo = a.row(k0 + 2 * kp) + m0 + ip * kGemmMR;
            const Feature *srcHi =
                2 * kp + 1 < kcLen ? a.row(k0 + 2 * kp + 1) + m0 +
                                         ip * kGemmMR
                                   : nullptr;
            std::uint32_t *dst = panel + kp * kGemmMR;
            for (std::size_t i = 0; i < rows; ++i) {
                const std::uint32_t lo = bf16FromFloat(srcLo[i]);
                const std::uint32_t hi =
                    srcHi ? bf16FromFloat(srcHi[i]) : 0u;
                dst[i] = lo | (hi << 16);
            }
            for (std::size_t i = rows; i < kGemmMR; ++i)
                dst[i] = 0u;
        }
    }
}

/** uint32 words of A-pair pack scratch one M tile needs. */
constexpr std::size_t kApPairWords = kGemmTileM * (kGemmKC / 2);

/**
 * Bf16 twin of computeTile: KC slices advance by kBlockPairs pair
 * words, and the kernel choice (native vs emulated) is hoisted out of
 * the block loops.
 */
template <typename PackASlice>
void
computeTileBf16(const GemmPlan &plan, Feature *cBase, std::size_t cStride,
                std::size_t mLen, std::size_t jp0, std::size_t jp1,
                GemmAccumulate acc, std::uint32_t *apBuf,
                PackASlice &&packASlice)
{
    const bool native = bf16GemmIsNative();
    const std::size_t nTotal = plan.n();
    for (std::size_t kb = 0; kb < plan.numKBlocks(); ++kb) {
        const std::size_t kcLen = plan.kBlockLen(kb);
        const std::size_t pairs = plan.kBlockPairs(kb);
        packASlice(kb * kGemmKC, kcLen, apBuf);
        const bool accumulate =
            kb > 0 || acc == GemmAccumulate::Add;
        for (std::size_t jp = jp0; jp < jp1; ++jp) {
            const std::uint32_t *bp = plan.pairPanel(kb, jp);
            const std::size_t n0 = jp * kGemmNR;
            const std::size_t nValid = std::min(kGemmNR, nTotal - n0);
            for (std::size_t ip = 0; ip * kGemmMR < mLen; ++ip) {
                const std::size_t rows =
                    std::min(kGemmMR, mLen - ip * kGemmMR);
                microDispatchBf16(native, rows,
                                  apBuf + ip * pairs * kGemmMR, bp, pairs,
                                  cBase + ip * kGemmMR * cStride + n0,
                                  cStride, nValid, accumulate);
            }
        }
    }
}

/**
 * Serial tile driver: C rows [0, mLen) x panel columns [jp0, jp1) of
 * the effective product, looping KC slices of @p plan. @p packASlice
 * packs the tile's A rows for one slice into @p apBuf (capacity at
 * least roundUp(mLen, MR) * KC floats); the packed slice is then reused
 * across every column panel of the tile.
 */
template <typename PackASlice>
void
computeTile(const GemmPlan &plan, Feature *cBase, std::size_t cStride,
            std::size_t mLen, std::size_t jp0, std::size_t jp1,
            GemmAccumulate acc, Feature *apBuf, PackASlice &&packASlice)
{
    const std::size_t nTotal = plan.n();
    for (std::size_t kb = 0; kb < plan.numKBlocks(); ++kb) {
        const std::size_t kcLen = plan.kBlockLen(kb);
        packASlice(kb * kGemmKC, kcLen, apBuf);
        const bool accumulate =
            kb > 0 || acc == GemmAccumulate::Add;
        for (std::size_t jp = jp0; jp < jp1; ++jp) {
            const Feature *bp = plan.panel(kb, jp);
            const std::size_t n0 = jp * kGemmNR;
            const std::size_t nValid = std::min(kGemmNR, nTotal - n0);
            for (std::size_t ip = 0; ip * kGemmMR < mLen; ++ip) {
                const std::size_t rows =
                    std::min(kGemmMR, mLen - ip * kGemmMR);
                microDispatch(rows, apBuf + ip * kcLen * kGemmMR, bp,
                              kcLen, cBase + ip * kGemmMR * cStride + n0,
                              cStride, nValid, accumulate);
            }
        }
    }
}

void
checkShapes(GemmMode mode, const DenseMatrix &a, const DenseMatrix &b,
            const DenseMatrix &c)
{
    switch (mode) {
      case GemmMode::NN:
        GRAPHITE_ASSERT(a.rows() == c.rows() && a.cols() == b.rows() &&
                            b.cols() == c.cols(),
                        "GEMM NN shape mismatch");
        break;
      case GemmMode::NT:
        GRAPHITE_ASSERT(a.rows() == c.rows() && a.cols() == b.cols() &&
                            b.rows() == c.cols(),
                        "GEMM NT shape mismatch");
        break;
      case GemmMode::TN:
        GRAPHITE_ASSERT(a.cols() == c.rows() && a.rows() == b.rows() &&
                            b.cols() == c.cols(),
                        "GEMM TN shape mismatch");
        break;
    }
}

void
checkPlanShapes(GemmMode mode, const DenseMatrix &a, const GemmPlan &plan,
                const DenseMatrix &c)
{
    const std::size_t effM =
        mode == GemmMode::TN ? a.cols() : a.rows();
    const std::size_t effK =
        mode == GemmMode::TN ? a.rows() : a.cols();
    GRAPHITE_ASSERT(effM == c.rows() && effK == plan.k() &&
                        plan.n() == c.cols(),
                    "GEMM plan shape mismatch");
}

} // namespace

bool
bf16GemmHardwareSupported()
{
#if GRAPHITE_GEMM_X86_BF16
    static const bool supported = __builtin_cpu_supports("avx512bf16");
    return supported;
#else
    return false;
#endif
}

void
setBf16GemmEmulated(bool emulated)
{
    bf16EmulatedFlag().store(emulated, std::memory_order_relaxed);
}

bool
bf16GemmIsNative()
{
    return bf16GemmHardwareSupported() &&
           !bf16EmulatedFlag().load(std::memory_order_relaxed);
}

void
gemm(GemmMode mode, const DenseMatrix &a, const GemmPlan &plan,
     DenseMatrix &c, GemmAccumulate acc)
{
    checkPlanShapes(mode, a, plan, c);
    const std::size_t m = c.rows();
    const std::size_t n = c.cols();
    if (m == 0 || n == 0)
        return;
    GRAPHITE_TRACE_SPAN("gemm");
    {
        obs::MetricsRegistry &metrics = obs::MetricsRegistry::global();
        if (metrics.enabled()) {
            static obs::Counter &flops = metrics.counter("gemm.flops");
            flops.add(2 * static_cast<std::uint64_t>(m) * n * plan.k());
        }
    }
    if (plan.k() == 0) {
        // Empty inner dimension: the product is all zeros.
        if (acc == GemmAccumulate::Overwrite)
            c.zero();
        return;
    }

    // 2-D tile grid over C: N tiles in the outer index so consecutive
    // tasks drawn by one thread walk down an N tile and keep its B
    // panels hot in L1/L2 — and so wide-N/short-M shapes (dW) still
    // expose enough tasks to fill the pool.
    const std::size_t mTiles = (m + kGemmTileM - 1) / kGemmTileM;
    const std::size_t nTiles =
        (plan.numColPanels() + kPanelsPerTile - 1) / kPanelsPerTile;
    const std::size_t tasks = mTiles * nTiles;

    if (plan.precision() == Precision::Bf16) {
        // A is rounded to bf16 pair words during the per-slice pack;
        // the scratch is a distinct uint32 buffer (not a reuse of the
        // fp32 one) so the kernels never type-pun Feature storage.
        // Grow-only per-worker scratch (the gemmBlockSerial idiom)
        // keeps repeated GEMMs through a cached plan allocation-free.
        parallelFor(0, tasks, 1,
                    [&](std::size_t begin, std::size_t end,
                        std::size_t) {
            thread_local AlignedBuffer<std::uint32_t> apPairScratch;
            if (apPairScratch.size() < kApPairWords)
                apPairScratch.resize(kApPairWords);
            std::uint32_t *ap = apPairScratch.data();
            for (std::size_t task = begin; task < end; ++task) {
                const std::size_t mt = task % mTiles;
                const std::size_t nt = task / mTiles;
                const std::size_t m0 = mt * kGemmTileM;
                const std::size_t mLen = std::min(kGemmTileM, m - m0);
                const std::size_t jp0 = nt * kPanelsPerTile;
                const std::size_t jp1 =
                    std::min(jp0 + kPanelsPerTile, plan.numColPanels());
                Feature *cBase = c.row(m0);
                if (mode == GemmMode::TN) {
                    computeTileBf16(plan, cBase, c.rowStride(), mLen, jp0,
                                    jp1, acc, ap,
                                    [&](std::size_t k0, std::size_t kcLen,
                                        std::uint32_t *dst) {
                        packAColMajorBf16(a, m0, mLen, k0, kcLen, dst);
                    });
                } else {
                    computeTileBf16(plan, cBase, c.rowStride(), mLen, jp0,
                                    jp1, acc, ap,
                                    [&](std::size_t k0, std::size_t kcLen,
                                        std::uint32_t *dst) {
                        packARowMajorBf16(a.row(m0), a.rowStride(), mLen,
                                          k0, kcLen, dst);
                    });
                }
            }
        });
        return;
    }

    parallelFor(0, tasks, 1,
                [&](std::size_t begin, std::size_t end, std::size_t) {
        thread_local AlignedBuffer<Feature> apTileScratch;
        if (apTileScratch.size() < kGemmTileM * kGemmKC)
            apTileScratch.resize(kGemmTileM * kGemmKC);
        Feature *ap = apTileScratch.data();
        for (std::size_t task = begin; task < end; ++task) {
            const std::size_t mt = task % mTiles;
            const std::size_t nt = task / mTiles;
            const std::size_t m0 = mt * kGemmTileM;
            const std::size_t mLen = std::min(kGemmTileM, m - m0);
            const std::size_t jp0 = nt * kPanelsPerTile;
            const std::size_t jp1 =
                std::min(jp0 + kPanelsPerTile, plan.numColPanels());
            Feature *cBase = c.row(m0);
            if (mode == GemmMode::TN) {
                computeTile(plan, cBase, c.rowStride(), mLen, jp0, jp1,
                            acc, ap,
                            [&](std::size_t k0, std::size_t kcLen,
                                Feature *dst) {
                    packAColMajor(a, m0, mLen, k0, kcLen, dst);
                });
            } else {
                computeTile(plan, cBase, c.rowStride(), mLen, jp0, jp1,
                            acc, ap,
                            [&](std::size_t k0, std::size_t kcLen,
                                Feature *dst) {
                    packARowMajor(a.row(m0), a.rowStride(), mLen, k0,
                                  kcLen, dst);
                });
            }
        }
    });
}

void
gemm(GemmMode mode, const DenseMatrix &a, const DenseMatrix &b,
     DenseMatrix &c, GemmAccumulate acc, Precision precision)
{
    checkShapes(mode, a, b, c);
    const GemmPlan plan(mode, b, precision);
    gemm(mode, a, plan, c, acc);
}

void
gemmBlockSerial(const Feature *aRows, std::size_t rows,
                std::size_t aStride, const GemmPlan &plan, Feature *cRows,
                std::size_t cStride, std::size_t k)
{
    GRAPHITE_ASSERT(plan.k() == k, "block GEMM inner dim mismatch");
    if (rows == 0)
        return;
    if (k == 0) {
        for (std::size_t r = 0; r < rows; ++r)
            std::fill(cRows + r * cStride, cRows + r * cStride + plan.n(),
                      0.0f);
        return;
    }
    if (plan.precision() == Precision::Bf16) {
        thread_local std::vector<std::uint32_t> apPairScratch;
        if (apPairScratch.size() < kApPairWords)
            apPairScratch.resize(kApPairWords);
        for (std::size_t m0 = 0; m0 < rows; m0 += kGemmTileM) {
            const std::size_t mLen = std::min(kGemmTileM, rows - m0);
            computeTileBf16(plan, cRows + m0 * cStride, cStride, mLen, 0,
                            plan.numColPanels(), GemmAccumulate::Overwrite,
                            apPairScratch.data(),
                            [&](std::size_t k0, std::size_t kcLen,
                                std::uint32_t *dst) {
                packARowMajorBf16(aRows + m0 * aStride, aStride, mLen, k0,
                                  kcLen, dst);
            });
        }
        return;
    }
    // Per-calling-thread pack scratch: the fused kernels call this from
    // inside pool tasks, so no shared state and no nested parallelism.
    thread_local std::vector<Feature> apScratch;
    if (apScratch.size() < kGemmTileM * kGemmKC)
        apScratch.resize(kGemmTileM * kGemmKC);
    for (std::size_t m0 = 0; m0 < rows; m0 += kGemmTileM) {
        const std::size_t mLen = std::min(kGemmTileM, rows - m0);
        computeTile(plan, cRows + m0 * cStride, cStride, mLen, 0,
                    plan.numColPanels(), GemmAccumulate::Overwrite,
                    apScratch.data(),
                    [&](std::size_t k0, std::size_t kcLen, Feature *dst) {
            packARowMajor(aRows + m0 * aStride, aStride, mLen, k0, kcLen,
                          dst);
        });
    }
}

void
gemmBlockSerial(const Feature *aRows, std::size_t rows, std::size_t aStride,
                const DenseMatrix &b, Feature *cRows, std::size_t cStride,
                std::size_t k)
{
    GRAPHITE_ASSERT(b.rows() == k, "block GEMM inner dim mismatch");
    // Unpacked one-shot path: row-streaming FMA kernel, for callers
    // whose B changes every call so packing would not amortise.
    const std::size_t n = b.cols();
    for (std::size_t r = 0; r < rows; ++r) {
        const Feature *aRow = aRows + r * aStride;
        Feature *cRow = cRows + r * cStride;
        std::fill(cRow, cRow + n, 0.0f);
        for (std::size_t kk = 0; kk < k; ++kk) {
            const Feature av = aRow[kk];
            const Feature *bRow = b.row(kk);
            #pragma omp simd
            for (std::size_t j = 0; j < n; ++j)
                cRow[j] += av * bRow[j];
        }
    }
}

void
gemmReference(GemmMode mode, const DenseMatrix &a, const DenseMatrix &b,
              DenseMatrix &c, GemmAccumulate acc)
{
    checkShapes(mode, a, b, c);
    if (acc == GemmAccumulate::Overwrite)
        c.zero();
    const std::size_t m = c.rows();
    const std::size_t n = c.cols();
    const std::size_t kDim = (mode == GemmMode::TN) ? a.rows() : a.cols();
    for (std::size_t r = 0; r < m; ++r) {
        for (std::size_t j = 0; j < n; ++j) {
            double sum = 0.0;
            for (std::size_t k = 0; k < kDim; ++k) {
                const Feature av =
                    (mode == GemmMode::TN) ? a.at(k, r) : a.at(r, k);
                const Feature bv =
                    (mode == GemmMode::NT) ? b.at(j, k) : b.at(k, j);
                sum += double{av} * double{bv};
            }
            c.at(r, j) += static_cast<Feature>(sum);
        }
    }
}

} // namespace graphite
