/**
 * @file
 * BF16 feature storage — an alternative DRAM-traffic reducer to the
 * paper's mask compression (Section 4.3). Where mask compression
 * exploits *sparsity* at full precision, bf16 halves the traffic of
 * *dense* features at reduced precision (8 mantissa bits). The two are
 * complementary regimes: low-sparsity layers favour bf16, high-sparsity
 * layers favour the mask scheme; `bench/micro_kernels` compares them on
 * real hardware.
 *
 * Storage keeps the fixed-stride row layout of DenseMatrix (O(1) random
 * row access) with 2 bytes per element. Values are rounded to nearest
 * even on conversion.
 */

#pragma once

#include <cstdint>
#include <cstring>

#include "common/aligned_buffer.h"
#include "tensor/dense_matrix.h"

namespace graphite {

/**
 * Round one float to bf16 (round-to-nearest-even). Inf passes through
 * and NaN stays NaN: the RNE increment would carry a NaN mantissa into
 * the exponent and turn it into Inf, so all-ones-exponent inputs take a
 * separate path that quietens the payload instead. Values above the
 * bf16 range (e.g. FLT_MAX) round to Inf, matching hardware cvtneps.
 */
inline std::uint16_t
bf16FromFloat(Feature value)
{
    std::uint32_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    const bool special = (bits & 0x7f800000u) == 0x7f800000u;
    const std::uint32_t rounded = bits + 0x7fffu + ((bits >> 16) & 1u);
    const std::uint32_t kept =
        (bits >> 16) | ((bits & 0x007fffffu) != 0 ? 0x0040u : 0u);
    return static_cast<std::uint16_t>(special ? kept : rounded >> 16);
}

/** Expand one bf16 value back to float (exact). */
inline Feature
bf16ToFloat(std::uint16_t value)
{
    const std::uint32_t bits = static_cast<std::uint32_t>(value) << 16;
    Feature out;
    std::memcpy(&out, &bits, sizeof(out));
    return out;
}

/** Convert @p n floats to bf16 with round-to-nearest-even. */
void convertRowToBf16(const Feature *src, std::size_t n,
                      std::uint16_t *dst);

/** Expand @p n bf16 values back to floats. */
void convertRowFromBf16(const std::uint16_t *src, std::size_t n,
                        Feature *dst);

/** Fixed-stride bf16 matrix mirroring DenseMatrix's layout. */
class Bf16Matrix
{
  public:
    Bf16Matrix() = default;

    /** Allocate rows x cols (stride padded to 32 elements = 64 B). */
    Bf16Matrix(std::size_t rows, std::size_t cols);

    /**
     * Redimension without reallocating when the existing storage is
     * large enough (grow-only otherwise) — the reuse primitive behind
     * the model's bf16 activation buffers, mirroring
     * DenseMatrix::reshape. Storage is re-zeroed whenever the shape
     * actually changes so row padding stays zero (the gather kernels
     * read rows at full stride); a same-shape call is a no-op.
     */
    void reshape(std::size_t rows, std::size_t cols);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t rowStride() const { return rowStride_; }
    /** Bytes per padded row — what a full-row gather transfers. */
    std::size_t rowBytes() const
    {
        return rowStride_ * sizeof(std::uint16_t);
    }

    /** Storage base (workspace-pinning diagnostics). */
    const std::uint16_t *data() const { return storage_.data(); }

    std::uint16_t *row(std::size_t r)
    {
        return storage_.data() + r * rowStride_;
    }
    const std::uint16_t *
    row(std::size_t r) const
    {
        return storage_.data() + r * rowStride_;
    }

    /** Convert every row of @p dense into this matrix (parallel). */
    void fromDense(const DenseMatrix &dense);

    /** Expand every row into @p dense (parallel). */
    void toDense(DenseMatrix &dense) const;

    /** Bytes a streaming reader of the whole matrix transfers. */
    Bytes trafficBytes() const
    {
        return static_cast<Bytes>(rows_) * rowStride_ *
               sizeof(std::uint16_t);
    }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::size_t rowStride_ = 0;
    AlignedBuffer<std::uint16_t> storage_;
};

} // namespace graphite
