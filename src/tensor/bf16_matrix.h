/**
 * @file
 * BF16 feature storage — an alternative DRAM-traffic reducer to the
 * paper's mask compression (Section 4.3). Where mask compression
 * exploits *sparsity* at full precision, bf16 halves the traffic of
 * *dense* features at reduced precision (8 mantissa bits). The two are
 * complementary regimes: low-sparsity layers favour bf16, high-sparsity
 * layers favour the mask scheme; `bench/micro_kernels` compares them on
 * real hardware.
 *
 * Storage keeps the fixed-stride row layout of DenseMatrix (O(1) random
 * row access) with 2 bytes per element. Values are rounded to nearest
 * even on conversion.
 */

#pragma once

#include <cstdint>

#include "common/aligned_buffer.h"
#include "tensor/dense_matrix.h"

namespace graphite {

/** Convert @p n floats to bf16 with round-to-nearest-even. */
void convertRowToBf16(const Feature *src, std::size_t n,
                      std::uint16_t *dst);

/** Expand @p n bf16 values back to floats. */
void convertRowFromBf16(const std::uint16_t *src, std::size_t n,
                        Feature *dst);

/** Fixed-stride bf16 matrix mirroring DenseMatrix's layout. */
class Bf16Matrix
{
  public:
    Bf16Matrix() = default;

    /** Allocate rows x cols (stride padded to 32 elements = 64 B). */
    Bf16Matrix(std::size_t rows, std::size_t cols);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t rowStride() const { return rowStride_; }

    std::uint16_t *row(std::size_t r)
    {
        return storage_.data() + r * rowStride_;
    }
    const std::uint16_t *
    row(std::size_t r) const
    {
        return storage_.data() + r * rowStride_;
    }

    /** Convert every row of @p dense into this matrix (parallel). */
    void fromDense(const DenseMatrix &dense);

    /** Expand every row into @p dense (parallel). */
    void toDense(DenseMatrix &dense) const;

    /** Bytes a streaming reader of the whole matrix transfers. */
    Bytes trafficBytes() const
    {
        return static_cast<Bytes>(rows_) * rowStride_ *
               sizeof(std::uint16_t);
    }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::size_t rowStride_ = 0;
    AlignedBuffer<std::uint16_t> storage_;
};

} // namespace graphite
