#include "tensor/spmm.h"

#include "common/assert.h"
#include "parallel/thread_pool.h"

namespace graphite {

void
spmm(const CsrGraph &graph, const DenseMatrix &in, DenseMatrix &out,
     std::span<const Feature> edgeWeights,
     std::span<const Feature> selfWeights)
{
    const VertexId n = graph.numVertices();
    GRAPHITE_ASSERT(in.rows() == n && out.rows() == n,
                    "feature row count mismatch");
    GRAPHITE_ASSERT(in.cols() == out.cols(), "feature width mismatch");
    GRAPHITE_ASSERT(edgeWeights.empty() ||
                        edgeWeights.size() == graph.numEdges(),
                    "edge weight count mismatch");
    GRAPHITE_ASSERT(selfWeights.empty() || selfWeights.size() == n,
                    "self weight count mismatch");
    // SpMM is, by definition, a sum reduction; max-style aggregators
    // go through the kernels in kernels/aggregation.h instead.

    const std::size_t f = in.cols();
    parallelFor(0, n, 64,
                [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t vi = begin; vi < end; ++vi) {
            const auto v = static_cast<VertexId>(vi);
            Feature *dst = out.row(v);
            const Feature *self = in.row(v);
            const Feature sw =
                selfWeights.empty() ? 1.0f : selfWeights[v];
            #pragma omp simd
            for (std::size_t c = 0; c < f; ++c)
                dst[c] = sw * self[c];
            const EdgeId rowBegin = graph.rowBegin(v);
            const EdgeId rowEnd = graph.rowEnd(v);
            for (EdgeId e = rowBegin; e < rowEnd; ++e) {
                const Feature *src = in.row(graph.colIdx()[e]);
                const Feature ew =
                    edgeWeights.empty() ? 1.0f : edgeWeights[e];
                #pragma omp simd
                for (std::size_t c = 0; c < f; ++c)
                    dst[c] += ew * src[c];
            }
        }
    });
}

} // namespace graphite
