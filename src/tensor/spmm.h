/**
 * @file
 * Sparse-dense matrix multiplication over the CSR adjacency.
 *
 * A GNN aggregation is an SpMM: A_hat * H, where A_hat is the (optionally
 * normalised) adjacency with self-loops. This kernel is the paper's "MKL"
 * comparison point (MKL SpMM aggregation + GEMM update) and is also
 * reused wherever an un-fused, un-prefetched aggregation is convenient.
 */

#pragma once

#include <span>

#include "graph/csr_graph.h"
#include "tensor/dense_matrix.h"

namespace graphite {

/**
 * out[v, :] = selfWeight(v) * in[v, :]
 *           + sum over u in N(v) of edgeWeight(v, u) * in[u, :]
 *
 * @param edgeWeights per-edge coefficients aligned with graph.colIdx(),
 *        or empty for all-ones.
 * @param selfWeights per-vertex self-loop coefficients, or empty for
 *        all-ones.
 */
void spmm(const CsrGraph &graph, const DenseMatrix &in, DenseMatrix &out,
          std::span<const Feature> edgeWeights = {},
          std::span<const Feature> selfWeights = {});

} // namespace graphite
