#include "tensor/dense_matrix.h"

#include <cmath>
#include <cstring>

#include "common/rng.h"

namespace graphite {

namespace {
std::size_t
paddedStride(std::size_t cols)
{
    return (cols + kFloatsPerLine - 1) / kFloatsPerLine * kFloatsPerLine;
}
} // namespace

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), rowStride_(paddedStride(cols)),
      storage_(rows * paddedStride(cols))
{
}

void
DenseMatrix::resize(std::size_t rows, std::size_t cols)
{
    rows_ = rows;
    cols_ = cols;
    rowStride_ = paddedStride(cols);
    storage_.resize(rows * rowStride_);
}

void
DenseMatrix::reshape(std::size_t rows, std::size_t cols)
{
    const std::size_t stride = paddedStride(cols);
    if (rows * stride > storage_.size()) {
        resize(rows, cols);
        return;
    }
    if (rows == rows_ && cols == cols_)
        return;
    // Within capacity: logical contents become unspecified, but the
    // padding tail of every row is re-zeroed so the repo-wide invariant
    // "row padding is zero" (which compressRowFrom and the full-stride
    // aggregation kernels rely on) survives the relayout. All logical
    // writers preserve it thereafter.
    rows_ = rows;
    cols_ = cols;
    rowStride_ = stride;
    if (cols < stride) {
        for (std::size_t r = 0; r < rows; ++r) {
            std::memset(row(r) + cols, 0,
                        (stride - cols) * sizeof(Feature));
        }
    }
}

double
DenseMatrix::sparsity() const
{
    if (rows_ == 0 || cols_ == 0)
        return 0.0;
    std::size_t zeros = 0;
    for (std::size_t r = 0; r < rows_; ++r) {
        const Feature *rowData = row(r);
        for (std::size_t c = 0; c < cols_; ++c)
            zeros += rowData[c] == 0.0f;
    }
    return static_cast<double>(zeros) /
           (static_cast<double>(rows_) * cols_);
}

void
DenseMatrix::fillUniform(float lo, float hi, std::uint64_t seed)
{
    Rng rng(seed);
    for (std::size_t r = 0; r < rows_; ++r) {
        Feature *rowData = row(r);
        for (std::size_t c = 0; c < cols_; ++c)
            rowData[c] = lo + (hi - lo) * rng.uniformFloat();
    }
}

void
DenseMatrix::sparsify(double rate, std::uint64_t seed)
{
    Rng rng(seed);
    for (std::size_t r = 0; r < rows_; ++r) {
        Feature *rowData = row(r);
        for (std::size_t c = 0; c < cols_; ++c) {
            if (rng.uniform() < rate)
                rowData[c] = 0.0f;
        }
    }
}

std::size_t
DenseMatrix::countNonFinite() const
{
    std::size_t bad = 0;
    for (std::size_t r = 0; r < rows_; ++r) {
        const Feature *rowData = row(r);
        for (std::size_t c = 0; c < cols_; ++c)
            bad += std::isfinite(rowData[c]) ? 0 : 1;
    }
    return bad;
}

double
DenseMatrix::maxAbsDiff(const DenseMatrix &other) const
{
    GRAPHITE_ASSERT(rows_ == other.rows_ && cols_ == other.cols_,
                    "shape mismatch");
    double maxDiff = 0.0;
    for (std::size_t r = 0; r < rows_; ++r) {
        const Feature *a = row(r);
        const Feature *b = other.row(r);
        for (std::size_t c = 0; c < cols_; ++c) {
            const double diff = std::fabs(double{a[c]} - double{b[c]});
            if (diff > maxDiff)
                maxDiff = diff;
        }
    }
    return maxDiff;
}

} // namespace graphite
