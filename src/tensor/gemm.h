/**
 * @file
 * Dense matrix multiplication — the update phase's compute engine.
 *
 * The paper uses MKL GEMM for the unfused update and libxsmm for the small
 * per-block GEMMs inside layer fusion. Neither is available offline, so we
 * provide a packed, register-blocked GEMM in the oneDNN/BLIS mould: the
 * right-hand operand is repacked into NR-wide panels (GemmPlan, reusable
 * across calls), the left-hand operand is packed per KC slice on the fly,
 * and an MR x NR register-tile micro-kernel runs FMA chains over the
 * panels. Work is threaded over a 2-D grid of M x N output tiles so
 * wide-N/short-M shapes (dW = X^T·dY) scale as well as tall ones.
 *
 * Supported forms (C is M x N):
 *   NN: C (+)= A(MxK)   * B(KxN)
 *   NT: C (+)= A(MxK)   * B(NxK)^T
 *   TN: C (+)= A(KxM)^T * B(KxN)
 * NT and TN are what the backward pass needs (dX = dY * W^T and
 * dW = X^T * dY).
 */

#pragma once

#include "tensor/dense_matrix.h"
#include "tensor/gemm_plan.h"

namespace graphite {

/**
 * Parallel blocked GEMM over the global thread pool. Packs @p b
 * internally; call the GemmPlan overload to amortise that pack across
 * calls with a constant right-hand operand (layer weights).
 *
 * @param mode      operand transposition (see file comment).
 * @param acc       overwrite C or accumulate into it.
 * @param precision Bf16 rounds both operands to bf16 during packing and
 *                  runs the bf16-in/fp32-accumulate micro-kernel.
 */
void gemm(GemmMode mode, const DenseMatrix &a, const DenseMatrix &b,
          DenseMatrix &c, GemmAccumulate acc = GemmAccumulate::Overwrite,
          Precision precision = Precision::Fp32);

/**
 * Parallel blocked GEMM with a prepacked right-hand operand. @p plan
 * must have been packed with the same @p mode it is used under (the
 * plan stores the mode-resolved K x N operand). The plan's precision
 * selects the micro-kernel: a bf16 plan routes through the
 * bf16-in/fp32-accumulate tile (A is rounded to bf16 pairs during the
 * per-KC A pack), dispatched at runtime to AVX512-BF16 vdpbf16ps where
 * the CPU has it and a widening-FMA emulation elsewhere.
 */
void gemm(GemmMode mode, const DenseMatrix &a, const GemmPlan &plan,
          DenseMatrix &c, GemmAccumulate acc = GemmAccumulate::Overwrite);

/**
 * True when this CPU can run the native AVX512-BF16 micro-kernel
 * (checked once via cpuid; the binary always carries both kernels).
 */
bool bf16GemmHardwareSupported();

/**
 * Force (or release) the emulated bf16 micro-kernel regardless of CPU
 * support — the test/CI hook that makes both paths exercisable on any
 * host. Also settable via the GRAPHITE_BF16_EMULATE=1 environment
 * variable, read once at startup.
 */
void setBf16GemmEmulated(bool emulated);

/** True when bf16 GEMMs will dispatch to the native vdpbf16ps kernel. */
bool bf16GemmIsNative();

/**
 * Serial small-block GEMM: c[0..rows) = aRows * b, where aRows points
 * at @p rows consecutive padded rows of an activation matrix and @p b is
 * a KxN weight matrix. This is the libxsmm-role kernel the fused
 * aggregation-update calls per vertex block, so it must not spawn
 * parallel work itself.
 *
 * @param aRows   first input row (padded stride = aStride floats).
 * @param rows    number of input/output rows in the block.
 * @param aStride padded stride of the input rows.
 * @param b       K x N weights.
 * @param cRows   first output row (padded stride = cStride floats).
 * @param cStride padded stride of the output rows.
 * @param k       inner dimension (logical columns of the input rows).
 */
void gemmBlockSerial(const Feature *aRows, std::size_t rows,
                     std::size_t aStride, const DenseMatrix &b,
                     Feature *cRows, std::size_t cStride, std::size_t k);

/**
 * Serial small-block GEMM through a prepacked NN-mode weight plan — the
 * fused fast path: the caller packs W once per layer invocation and
 * every block task streams the shared panels through the register-tile
 * micro-kernel. A bf16 plan routes the block through the bf16 tile
 * (the fused kernels' update phase at reduced precision).
 */
void gemmBlockSerial(const Feature *aRows, std::size_t rows,
                     std::size_t aStride, const GemmPlan &plan,
                     Feature *cRows, std::size_t cStride, std::size_t k);

/** Reference (naive triple loop) GEMM used by tests as ground truth. */
void gemmReference(GemmMode mode, const DenseMatrix &a, const DenseMatrix &b,
                   DenseMatrix &c,
                   GemmAccumulate acc = GemmAccumulate::Overwrite);

} // namespace graphite
