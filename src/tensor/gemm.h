/**
 * @file
 * Dense matrix multiplication — the update phase's compute engine.
 *
 * The paper uses MKL GEMM for the unfused update and libxsmm for the small
 * per-block GEMMs inside layer fusion. Neither is available offline, so we
 * provide a blocked, vectorised GEMM with the two call shapes both roles
 * need: a parallel whole-matrix multiply, and a single-thread small-block
 * multiply invoked from inside a fused task (gemmBlockSerial).
 *
 * Supported forms (C is M x N):
 *   NN: C (+)= A(MxK)   * B(KxN)
 *   NT: C (+)= A(MxK)   * B(NxK)^T
 *   TN: C (+)= A(KxM)^T * B(KxN)
 * NT and TN are what the backward pass needs (dX = dY * W^T and
 * dW = X^T * dY).
 */

#pragma once

#include "tensor/dense_matrix.h"

namespace graphite {

/** Transposition mode of a GEMM operand pair. */
enum class GemmMode { NN, NT, TN };

/** Accumulate behaviour. */
enum class GemmAccumulate { Overwrite, Add };

/**
 * Parallel blocked GEMM over the global thread pool.
 *
 * @param mode operand transposition (see file comment).
 * @param acc  overwrite C or accumulate into it.
 */
void gemm(GemmMode mode, const DenseMatrix &a, const DenseMatrix &b,
          DenseMatrix &c, GemmAccumulate acc = GemmAccumulate::Overwrite);

/**
 * Serial small-block GEMM: c[0..rows) (+)= aRows * b, where aRows points
 * at @p rows consecutive padded rows of an activation matrix and @p b is
 * a KxN weight matrix. This is the libxsmm-role kernel the fused
 * aggregation-update calls per vertex block, so it must not spawn
 * parallel work itself.
 *
 * @param aRows   first input row (padded stride = aStride floats).
 * @param rows    number of input/output rows in the block.
 * @param aStride padded stride of the input rows.
 * @param b       K x N weights.
 * @param cRows   first output row (padded stride = cStride floats).
 * @param cStride padded stride of the output rows.
 * @param k       inner dimension (logical columns of the input rows).
 */
void gemmBlockSerial(const Feature *aRows, std::size_t rows,
                     std::size_t aStride, const DenseMatrix &b,
                     Feature *cRows, std::size_t cStride, std::size_t k);

/** Reference (naive triple loop) GEMM used by tests as ground truth. */
void gemmReference(GemmMode mode, const DenseMatrix &a, const DenseMatrix &b,
                   DenseMatrix &c,
                   GemmAccumulate acc = GemmAccumulate::Overwrite);

} // namespace graphite
