/**
 * @file
 * Dense matrix multiplication — the update phase's compute engine.
 *
 * The paper uses MKL GEMM for the unfused update and libxsmm for the small
 * per-block GEMMs inside layer fusion. Neither is available offline, so we
 * provide a packed, register-blocked GEMM in the oneDNN/BLIS mould: the
 * right-hand operand is repacked into NR-wide panels (GemmPlan, reusable
 * across calls), the left-hand operand is packed per KC slice on the fly,
 * and an MR x NR register-tile micro-kernel runs FMA chains over the
 * panels. Work is threaded over a 2-D grid of M x N output tiles so
 * wide-N/short-M shapes (dW = X^T·dY) scale as well as tall ones.
 *
 * Supported forms (C is M x N):
 *   NN: C (+)= A(MxK)   * B(KxN)
 *   NT: C (+)= A(MxK)   * B(NxK)^T
 *   TN: C (+)= A(KxM)^T * B(KxN)
 * NT and TN are what the backward pass needs (dX = dY * W^T and
 * dW = X^T * dY).
 */

#pragma once

#include "tensor/dense_matrix.h"
#include "tensor/gemm_plan.h"

namespace graphite {

/**
 * Parallel blocked GEMM over the global thread pool. Packs @p b
 * internally; call the GemmPlan overload to amortise that pack across
 * calls with a constant right-hand operand (layer weights).
 *
 * @param mode operand transposition (see file comment).
 * @param acc  overwrite C or accumulate into it.
 */
void gemm(GemmMode mode, const DenseMatrix &a, const DenseMatrix &b,
          DenseMatrix &c, GemmAccumulate acc = GemmAccumulate::Overwrite);

/**
 * Parallel blocked GEMM with a prepacked right-hand operand. @p plan
 * must have been packed with the same @p mode it is used under (the
 * plan stores the mode-resolved K x N operand).
 */
void gemm(GemmMode mode, const DenseMatrix &a, const GemmPlan &plan,
          DenseMatrix &c, GemmAccumulate acc = GemmAccumulate::Overwrite);

/**
 * Serial small-block GEMM: c[0..rows) = aRows * b, where aRows points
 * at @p rows consecutive padded rows of an activation matrix and @p b is
 * a KxN weight matrix. This is the libxsmm-role kernel the fused
 * aggregation-update calls per vertex block, so it must not spawn
 * parallel work itself.
 *
 * @param aRows   first input row (padded stride = aStride floats).
 * @param rows    number of input/output rows in the block.
 * @param aStride padded stride of the input rows.
 * @param b       K x N weights.
 * @param cRows   first output row (padded stride = cStride floats).
 * @param cStride padded stride of the output rows.
 * @param k       inner dimension (logical columns of the input rows).
 */
void gemmBlockSerial(const Feature *aRows, std::size_t rows,
                     std::size_t aStride, const DenseMatrix &b,
                     Feature *cRows, std::size_t cStride, std::size_t k);

/**
 * Serial small-block GEMM through a prepacked NN-mode weight plan — the
 * fused fast path: the caller packs W once per layer invocation and
 * every block task streams the shared panels through the register-tile
 * micro-kernel.
 */
void gemmBlockSerial(const Feature *aRows, std::size_t rows,
                     std::size_t aStride, const GemmPlan &plan,
                     Feature *cRows, std::size_t cStride, std::size_t k);

/** Reference (naive triple loop) GEMM used by tests as ground truth. */
void gemmReference(GemmMode mode, const DenseMatrix &a, const DenseMatrix &b,
                   DenseMatrix &c,
                   GemmAccumulate acc = GemmAccumulate::Overwrite);

} // namespace graphite
