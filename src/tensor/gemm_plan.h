/**
 * @file
 * Packed GEMM operand — the amortisable half of the blocked micro-kernel.
 *
 * The packed design (oneDNN/BLIS-style) splits a GEMM into a *packing*
 * pass that copies the right-hand operand into contiguous NR-wide panels,
 * and a register-tiled micro-kernel that streams those panels. Packing
 * costs O(K·N) while the multiply costs O(M·K·N), so for the GNN update
 * phase — where the same F_in x F_out weight matrix multiplies every
 * vertex block of every epoch — the pack is done once and reused, making
 * its cost explicit and amortisable. GemmPlan is that packed form.
 */

#pragma once

#include <cstddef>
#include <cstdint>

#include "common/aligned_buffer.h"
#include "tensor/dense_matrix.h"

namespace graphite {

/** Transposition mode of a GEMM operand pair. */
enum class GemmMode { NN, NT, TN };

/**
 * Compute precision of a kernel path. Bf16 stores operands as bfloat16
 * (round-to-nearest-even) and accumulates in fp32 — the Intel
 * DGL-on-x86 / DistGNN recipe that halves feature traffic while keeping
 * training stable.
 */
enum class Precision : std::uint8_t { Fp32, Bf16 };

/** Accumulate behaviour. */
enum class GemmAccumulate { Overwrite, Add };

/** Rows per register tile (MR): broadcast lanes of the micro-kernel. */
inline constexpr std::size_t kGemmMR = 8;
/** Columns per register tile (NR): two cache lines of fp32. */
inline constexpr std::size_t kGemmNR = 2 * kFloatsPerLine;
/** Inner-dimension blocking (KC): one B panel (KC x NR fp32) fits L1. */
inline constexpr std::size_t kGemmKC = 128;
/** Output rows per parallel tile (multiple of MR; A slice fits L2). */
inline constexpr std::size_t kGemmTileM = 64;
/** Output columns per parallel tile (multiple of NR). */
inline constexpr std::size_t kGemmTileN = 128;

/**
 * The right-hand GEMM operand repacked into micro-kernel panels.
 *
 * Layout: the effective K x N operand (B for NN/TN, B^T for NT) is cut
 * into KC-deep blocks, each stored as ceil(N/NR) contiguous panels of
 * kcLen x NR floats in k-major order — exactly the stream the micro-
 * kernel's FMA chain consumes. Ragged N is zero-padded to NR inside the
 * last panel so the kernel never branches on width.
 *
 * A default-constructed plan is empty; pack() (re)builds it. Packing the
 * same matrix again produces bit-identical panels, so results computed
 * through a reused plan match a freshly packed one exactly.
 *
 * Bf16 precision packs the same panels as k-*pair*-major uint32 words:
 * word (kp, j) holds elements {b[2kp, j], b[2kp+1, j]} rounded to bf16,
 * element 2kp in the low half — exactly the operand shape AVX512-BF16's
 * vdpbf16ps pairwise dot consumes (and the emulated kernel widens from).
 * Odd-K tails zero-pad the high half, so pair counts never branch.
 */
class GemmPlan
{
  public:
    GemmPlan() = default;

    /** Pack operand @p b of a @p mode GEMM (convenience constructor). */
    GemmPlan(GemmMode mode, const DenseMatrix &b,
             Precision precision = Precision::Fp32)
    {
        pack(mode, b, precision);
    }

    /**
     * (Re)pack @p b as the right-hand operand of a @p mode GEMM. The
     * pack pass is itself parallelised over KC blocks, so repacking a
     * large operand (e.g. dY in the dW backward GEMM) scales too. With
     * @p precision Bf16, panel values are rounded to bf16 and stored as
     * k-pair words (see class comment); the consuming kernel is chosen
     * by the plan's precision, so call sites need no other change.
     */
    void pack(GemmMode mode, const DenseMatrix &b,
              Precision precision = Precision::Fp32);

    bool empty() const { return k_ == 0 && n_ == 0; }

    /** Storage/compute precision this plan was packed for. */
    Precision precision() const { return precision_; }

    /** Effective inner dimension K of the packed operand. */
    std::size_t k() const { return k_; }
    /** Effective output width N of the packed operand. */
    std::size_t n() const { return n_; }

    /** Number of NR-wide column panels (ceil(n / NR)). */
    std::size_t numColPanels() const { return numColPanels_; }
    /** Number of KC-deep blocks (ceil(k / KC)). */
    std::size_t numKBlocks() const { return numKBlocks_; }
    /** Depth of KC block @p kb (KC except possibly the last). */
    std::size_t
    kBlockLen(std::size_t kb) const
    {
        const std::size_t begin = kb * kGemmKC;
        return begin + kGemmKC <= k_ ? kGemmKC : k_ - begin;
    }

    /** bf16 pairs in KC block @p kb (ceil(kBlockLen / 2)). */
    std::size_t
    kBlockPairs(std::size_t kb) const
    {
        return (kBlockLen(kb) + 1) / 2;
    }

    /** Panel (@p kb, @p jp): kBlockLen(kb) x NR floats, k-major. */
    const Feature *
    panel(std::size_t kb, std::size_t jp) const
    {
        GRAPHITE_DCHECK(precision_ == Precision::Fp32,
                        "fp32 panel access on a bf16 plan");
        GRAPHITE_DCHECK(kb < numKBlocks_ && jp < numColPanels_,
                        "GemmPlan panel index out of range");
        return packed_.data() +
               kb * kGemmKC * numColPanels_ * kGemmNR +
               jp * kBlockLen(kb) * kGemmNR;
    }

    /**
     * Bf16 panel (@p kb, @p jp): kBlockPairs(kb) x NR uint32 words,
     * pair-major (see class comment on the word layout).
     */
    const std::uint32_t *
    pairPanel(std::size_t kb, std::size_t jp) const
    {
        GRAPHITE_DCHECK(precision_ == Precision::Bf16,
                        "bf16 panel access on an fp32 plan");
        GRAPHITE_DCHECK(kb < numKBlocks_ && jp < numColPanels_,
                        "GemmPlan panel index out of range");
        return packedPairs_.data() +
               kb * (kGemmKC / 2) * numColPanels_ * kGemmNR +
               jp * kBlockPairs(kb) * kGemmNR;
    }

    /** Total packed storage (diagnostics / pack-cost accounting). */
    Bytes
    packedBytes() const
    {
        return packed_.size() * sizeof(Feature) +
               packedPairs_.size() * sizeof(std::uint32_t);
    }

    /**
     * Check the blocking parameters against the packed buffer: panel and
     * K-block counts must match the ceil-divisions of (k, n) and the
     * buffer must hold exactly the panels the micro-kernel will stream.
     *
     * @return nullptr when consistent, else a static message.
     */
    const char *validate() const;

    /**
     * validate() plus agreement with the K x N operand shape a GEMM is
     * about to consume — the kernel-entry precondition the fused layer
     * and DMA pipeline check before streaming a cached plan.
     */
    const char *validateFor(std::size_t k, std::size_t n) const;

  private:
    AlignedBuffer<Feature> packed_;
    AlignedBuffer<std::uint32_t> packedPairs_;
    Precision precision_ = Precision::Fp32;
    std::size_t k_ = 0;
    std::size_t n_ = 0;
    std::size_t numColPanels_ = 0;
    std::size_t numKBlocks_ = 0;
};

} // namespace graphite
