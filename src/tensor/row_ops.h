/**
 * @file
 * Element-wise and row-wise tensor operators used by the update phase:
 * bias add, ReLU forward/backward, dropout, and the softmax
 * cross-entropy loss head used by the training examples.
 */

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/dense_matrix.h"

namespace graphite {

/** out[r, :] += bias for every row. */
void addBias(DenseMatrix &out, std::span<const Feature> bias);

/**
 * addBias without the thread pool, for callers that must stay serial
 * on the calling thread. The inference server runs forward passes
 * concurrently (consumer loop vs serveOne oracle callers), and
 * ThreadPool::runOnAll must never be entered from two threads at
 * once — the pool-backed addBias would do exactly that.
 */
void addBiasSerial(DenseMatrix &out, std::span<const Feature> bias);

/** In-place ReLU: x = max(x, 0). The paper's activation (Table 2). */
void reluForward(DenseMatrix &x);

/** reluForward without the thread pool (see addBiasSerial). */
void reluForwardSerial(DenseMatrix &x);

/**
 * ReLU backward: grad[r, c] = 0 wherever activated[r, c] == 0.
 * @p activated is the *post*-ReLU forward output.
 */
void reluBackward(const DenseMatrix &activated, DenseMatrix &grad);

/**
 * Inverted dropout: zero each element with probability @p rate and scale
 * survivors by 1/(1-rate). Writes the survival mask (1 bit per element,
 * row-major, rowStride-padded) into @p mask for the backward pass.
 */
void dropoutForward(DenseMatrix &x, double rate, std::uint64_t seed,
                    std::vector<std::uint64_t> &mask);

/** Dropout backward: apply the saved mask and the 1/(1-rate) scale. */
void dropoutBackward(DenseMatrix &grad, double rate,
                     const std::vector<std::uint64_t> &mask);

/**
 * Parallel column sum: out[c] = Σ_r x[r, c] — the bias-gradient
 * reduction db = colsum(dz). Rows are partitioned into fixed-size
 * chunks whose partial sums land in @p scratch slots indexed by chunk
 * id, then reduced serially in chunk order — so the result is
 * bit-identical regardless of how the dynamic scheduler assigned
 * chunks to threads. @p scratch is grown as needed and reused across
 * calls (allocation-free in steady state).
 */
void columnSum(const DenseMatrix &x, std::span<Feature> out,
               std::vector<Feature> &scratch);

/**
 * Softmax + cross-entropy over rows.
 *
 * @param logits   |V| x numClasses scores.
 * @param labels   per-row class ids.
 * @param gradOut  filled with d(loss)/d(logits) (softmax - onehot) / |V|.
 * @return mean loss.
 */
double softmaxCrossEntropy(const DenseMatrix &logits,
                           std::span<const std::int32_t> labels,
                           DenseMatrix &gradOut);

/**
 * Masked softmax cross-entropy: only rows with mask[r] != 0 contribute
 * to the loss and receive gradient (the train-split regime of
 * node-classification benchmarks; labelled vertices are a subset).
 * Unmasked rows' gradients are zero. Normalised by the masked count.
 *
 * @return mean loss over the masked rows (0 if none are masked).
 */
double softmaxCrossEntropyMasked(const DenseMatrix &logits,
                                 std::span<const std::int32_t> labels,
                                 std::span<const std::uint8_t> mask,
                                 DenseMatrix &gradOut);

/** Fraction of rows whose argmax equals the label. */
double accuracy(const DenseMatrix &logits,
                std::span<const std::int32_t> labels);

/** Accuracy over the rows with mask[r] != 0 (1.0 if none). */
double accuracyMasked(const DenseMatrix &logits,
                      std::span<const std::int32_t> labels,
                      std::span<const std::uint8_t> mask);

} // namespace graphite
