/**
 * @file
 * Row-major dense matrix with cache-line-aligned, fixed-stride rows.
 *
 * Feature matrices keep a *constant row stride* even when rows are
 * logically compressed (paper Section 4.3): compression saves bandwidth,
 * not footprint, and constant stride preserves O(1) random access to any
 * vertex's feature vector. The stride is padded to a multiple of 16 floats
 * (one cache line) so every row starts cache-line aligned — the layout the
 * aggregation descriptor's S field expresses (Figure 8/9).
 */

#pragma once

#include <span>

#include "common/aligned_buffer.h"
#include "common/types.h"

namespace graphite {

/** Dense float matrix, row-major, 64-byte aligned rows. */
class DenseMatrix
{
  public:
    DenseMatrix() = default;

    /** Allocate rows x cols, zero-initialised. */
    DenseMatrix(std::size_t rows, std::size_t cols);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    /** Allocated floats per row (cols rounded up to 16). */
    std::size_t rowStride() const { return rowStride_; }

    /** Bytes per padded row — the descriptor S field. */
    Bytes rowBytes() const { return rowStride_ * sizeof(Feature); }

    Feature *data() { return storage_.data(); }
    const Feature *data() const { return storage_.data(); }

    Feature *
    row(std::size_t r)
    {
        GRAPHITE_DCHECK(r < rows_, "row index out of range");
        return data() + r * rowStride_;
    }

    const Feature *
    row(std::size_t r) const
    {
        GRAPHITE_DCHECK(r < rows_, "row index out of range");
        return data() + r * rowStride_;
    }

    /** Logical (unpadded) row view. */
    std::span<Feature> rowSpan(std::size_t r) { return {row(r), cols_}; }
    std::span<const Feature>
    rowSpan(std::size_t r) const
    {
        return {row(r), cols_};
    }

    Feature &
    at(std::size_t r, std::size_t c)
    {
        GRAPHITE_ASSERT(r < rows_ && c < cols_, "index out of range");
        return row(r)[c];
    }

    Feature
    at(std::size_t r, std::size_t c) const
    {
        GRAPHITE_ASSERT(r < rows_ && c < cols_, "index out of range");
        return row(r)[c];
    }

    /** Zero the whole matrix (including padding). */
    void zero() { storage_.zero(); }

    /** Reallocate to new dimensions, zero-initialised. */
    void resize(std::size_t rows, std::size_t cols);

    /**
     * Redimension without reallocating when the existing storage is
     * large enough; contents become unspecified (only the shape is
     * guaranteed). Grows (and zeroes) when capacity is short. This is
     * the workspace-reuse primitive behind allocation-free steady-state
     * training epochs: a scratch matrix reshaped to the same (or a
     * smaller) footprint keeps its data() pointer stable.
     */
    void reshape(std::size_t rows, std::size_t cols);

    /** Total allocated bytes (padding included). */
    Bytes allocatedBytes() const { return storage_.size() * sizeof(Feature); }

    /**
     * Fraction of logical elements equal to zero — feature sparsity in
     * the paper's sense (Section 2.2).
     */
    double sparsity() const;

    /** Fill with uniform values in [lo, hi) from @p seed. */
    void fillUniform(float lo, float hi, std::uint64_t seed);

    /**
     * Randomly zero each element with probability @p rate (the knob the
     * paper uses to evaluate compression at predefined sparsities).
     */
    void sparsify(double rate, std::uint64_t seed);

    /** Max absolute element-wise difference to @p other (same shape). */
    double maxAbsDiff(const DenseMatrix &other) const;

    /**
     * Count NaN/Inf elements in the logical (unpadded) region — the
     * trainer's numerics sweep for catching divergence escaping the
     * update phase. O(rows x cols); intended for opt-in debugging, not
     * the steady-state hot path.
     */
    std::size_t countNonFinite() const;

    /** True when every logical element is finite. */
    bool allFinite() const { return countNonFinite() == 0; }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::size_t rowStride_ = 0;
    AlignedBuffer<Feature> storage_;
};

/** Floats per cache line; row strides are padded to multiples of this. */
inline constexpr std::size_t kFloatsPerLine =
    kCacheLineBytes / sizeof(Feature);

} // namespace graphite
