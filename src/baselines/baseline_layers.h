/**
 * @file
 * The two comparison baselines from the paper's evaluation (Section 6):
 *
 *  - DistGNN: the state-of-the-art single-socket GNN layer the paper
 *    baselines against — a vertex-parallel, vectorised but *unfused*
 *    aggregation with no software prefetch, no compression and no
 *    locality ordering, followed by a whole-matrix GEMM update.
 *  - MKL: aggregation expressed as SpMM (adjacency x features) plus the
 *    same GEMM update.
 *
 * Both produce bit-identical math to the Graphite kernels given the same
 * AggregationSpec, so differential tests pin all implementations to each
 * other.
 */

#pragma once

#include <span>

#include "kernels/aggregation.h"
#include "kernels/fused_layer.h"
#include "tensor/dense_matrix.h"

namespace graphite {

/**
 * DistGNN-style aggregation: vertex-parallel gather-reduce, statically
 * blocked, no prefetch, identity processing order.
 */
void distgnnAggregate(const CsrGraph &graph, const DenseMatrix &in,
                      DenseMatrix &out, const AggregationSpec &spec);

/** DistGNN layer: distgnnAggregate then GEMM + bias + optional ReLU. */
void distgnnLayer(const CsrGraph &graph, const DenseMatrix &in,
                  const AggregationSpec &spec, const UpdateOp &update,
                  DenseMatrix &aggOut, DenseMatrix &out);

/** MKL-style layer: SpMM aggregation then GEMM + bias + optional ReLU. */
void mklLayer(const CsrGraph &graph, const DenseMatrix &in,
              const AggregationSpec &spec, const UpdateOp &update,
              DenseMatrix &aggOut, DenseMatrix &out);

} // namespace graphite
