#include "baselines/baseline_layers.h"

#include "common/assert.h"
#include "parallel/thread_pool.h"
#include "tensor/gemm.h"
#include "tensor/row_ops.h"
#include "tensor/spmm.h"

namespace graphite {

void
distgnnAggregate(const CsrGraph &graph, const DenseMatrix &in,
                 DenseMatrix &out, const AggregationSpec &spec)
{
    const VertexId n = graph.numVertices();
    GRAPHITE_ASSERT(in.rows() == n && out.rows() == n,
                    "feature row count mismatch");
    const std::size_t f = in.cols();
    // Large static-ish chunks, no prefetch: the unoptimised reference
    // shape of a vertex-parallel aggregation.
    parallelFor(0, n, 512,
                [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t vi = begin; vi < end; ++vi) {
            const auto v = static_cast<VertexId>(vi);
            Feature *dst = out.row(v);
            const Feature *self = in.row(v);
            const Feature sw = spec.selfFactor(v);
            #pragma omp simd
            for (std::size_t c = 0; c < f; ++c)
                dst[c] = sw * self[c];
            for (EdgeId e = graph.rowBegin(v); e < graph.rowEnd(v); ++e) {
                const Feature *src = in.row(graph.colIdx()[e]);
                const Feature ew = spec.edgeFactor(e);
                #pragma omp simd
                for (std::size_t c = 0; c < f; ++c)
                    dst[c] += ew * src[c];
            }
        }
    });
}

namespace {

void
finishUpdate(const UpdateOp &update, DenseMatrix &aggOut, DenseMatrix &out)
{
    // An epoch-cached weight plan (GnnLayer's) skips the per-call pack;
    // otherwise gemm packs internally for this call only.
    if (update.packedWeights)
        gemm(GemmMode::NN, aggOut, *update.packedWeights, out);
    else
        gemm(GemmMode::NN, aggOut, *update.weights, out);
    if (!update.bias.empty())
        addBias(out, update.bias);
    if (update.relu)
        reluForward(out);
}

} // namespace

void
distgnnLayer(const CsrGraph &graph, const DenseMatrix &in,
             const AggregationSpec &spec, const UpdateOp &update,
             DenseMatrix &aggOut, DenseMatrix &out)
{
    GRAPHITE_ASSERT(update.weights != nullptr, "update weights required");
    distgnnAggregate(graph, in, aggOut, spec);
    finishUpdate(update, aggOut, out);
}

void
mklLayer(const CsrGraph &graph, const DenseMatrix &in,
         const AggregationSpec &spec, const UpdateOp &update,
         DenseMatrix &aggOut, DenseMatrix &out)
{
    GRAPHITE_ASSERT(update.weights != nullptr, "update weights required");
    spmm(graph, in, aggOut, spec.edgeFactors, spec.selfFactors);
    finishUpdate(update, aggOut, out);
}

} // namespace graphite
