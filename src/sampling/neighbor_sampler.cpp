#include "sampling/neighbor_sampler.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "common/assert.h"

namespace graphite {

namespace {

/**
 * Sample one bipartite block: destinations @p dst, per-destination up to
 * @p fanout sampled neighbors, compact source indexing.
 */
SampledBlock
sampleBlock(const CsrGraph &graph, std::vector<VertexId> dst,
            VertexId fanout, Rng &rng)
{
    SampledBlock out;
    // Local source index map: destinations occupy [0, |dst|) so the
    // self term needs no extra lookup.
    std::unordered_map<VertexId, VertexId> localIndex;
    localIndex.reserve(dst.size() * (fanout + 1));
    out.srcVertices.reserve(dst.size() * (fanout + 1));
    for (VertexId v : dst) {
        localIndex.emplace(v, static_cast<VertexId>(
            out.srcVertices.size()));
        out.srcVertices.push_back(v);
    }

    std::vector<EdgeId> rowPtr(dst.size() + 1, 0);
    std::vector<VertexId> colIdx;
    colIdx.reserve(dst.size() * fanout);
    std::vector<VertexId> reservoir(fanout);
    for (std::size_t i = 0; i < dst.size(); ++i) {
        const VertexId v = dst[i];
        const auto neighbors = graph.neighbors(v);
        std::size_t sampled = 0;
        if (neighbors.size() <= fanout) {
            for (VertexId u : neighbors)
                reservoir[sampled++] = u;
        } else {
            // Reservoir sampling of `fanout` neighbors without
            // replacement.
            for (std::size_t j = 0; j < fanout; ++j)
                reservoir[j] = neighbors[j];
            sampled = fanout;
            for (std::size_t j = fanout; j < neighbors.size(); ++j) {
                const std::size_t slot = rng.uniformInt(j + 1);
                if (slot < fanout)
                    reservoir[slot] = neighbors[j];
            }
        }
        for (std::size_t j = 0; j < sampled; ++j) {
            const VertexId u = reservoir[j];
            auto [it, inserted] = localIndex.emplace(
                u, static_cast<VertexId>(out.srcVertices.size()));
            if (inserted)
                out.srcVertices.push_back(u);
            colIdx.push_back(it->second);
        }
        rowPtr[i + 1] = colIdx.size();
    }
    // The block is bipartite: columns index the (larger) source set, so
    // pad the row pointers with empty rows for source-only vertices to
    // make the CSR well-formed over |src| vertices.
    rowPtr.resize(out.srcVertices.size() + 1, colIdx.size());
    out.dstVertices = std::move(dst);
    out.block = CsrGraph(std::move(rowPtr), std::move(colIdx));
    return out;
}

} // namespace

MiniBatch
sampleMiniBatch(const CsrGraph &graph, std::vector<VertexId> seeds,
                const std::vector<VertexId> &fanouts, Rng &rng)
{
    GRAPHITE_ASSERT(!fanouts.empty(), "need at least one layer fanout");
    MiniBatch batch;
    batch.blocks.resize(fanouts.size());
    // Build outermost-first: layer K's destinations are the seeds, each
    // inner layer's destinations are the outer layer's sources.
    std::vector<VertexId> dst = std::move(seeds);
    for (std::size_t k = fanouts.size(); k-- > 0;) {
        batch.blocks[k] = sampleBlock(graph, std::move(dst), fanouts[k],
                                      rng);
        dst = batch.blocks[k].srcVertices;
    }
    return batch;
}

DenseMatrix
gatherBatchFeatures(const DenseMatrix &features,
                    const std::vector<VertexId> &vertices)
{
    DenseMatrix out(vertices.size(), features.cols());
    for (std::size_t i = 0; i < vertices.size(); ++i) {
        std::memcpy(out.row(i), features.row(vertices[i]),
                    features.rowStride() * sizeof(Feature));
    }
    return out;
}

std::vector<std::vector<VertexId>>
makeEpochBatches(const CsrGraph &graph, std::size_t batchSize, Rng &rng)
{
    GRAPHITE_ASSERT(batchSize > 0, "batch size must be positive");
    std::vector<VertexId> all(graph.numVertices());
    for (VertexId v = 0; v < graph.numVertices(); ++v)
        all[v] = v;
    for (std::size_t i = all.size(); i > 1; --i)
        std::swap(all[i - 1], all[rng.uniformInt(i)]);
    std::vector<std::vector<VertexId>> batches;
    for (std::size_t begin = 0; begin < all.size(); begin += batchSize) {
        const std::size_t end = std::min(begin + batchSize, all.size());
        batches.emplace_back(all.begin() + begin, all.begin() + end);
    }
    return batches;
}

} // namespace graphite
