#include "sampling/neighbor_sampler.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "common/assert.h"
#include "graph/delta_csr.h"

namespace graphite {

namespace {

/**
 * Indexable neighbor row of @p v for the shared sampling core: a span
 * for CsrGraph, a snapshot RowView (base row then delta chain) for
 * DeltaCsr. Both offer size() and O(1)-amortized sequential
 * operator[], which is all the reservoir loop touches.
 * @{
 */
inline std::span<const VertexId>
neighborRowOf(const CsrGraph &graph, VertexId v)
{
    return graph.neighbors(v);
}

inline DeltaCsr::RowView
neighborRowOf(const DeltaCsr &graph, VertexId v)
{
    return graph.neighborsView(v);
}
/** @} */

/**
 * Sample one bipartite block: destinations @p dst, per-destination up to
 * @p fanout sampled neighbors, compact source indexing.
 */
SampledBlock
sampleBlock(const CsrGraph &graph, std::vector<VertexId> dst,
            VertexId fanout, Rng &rng)
{
    SampledBlock out;
    // Local source index map: destinations occupy [0, |dst|) so the
    // self term needs no extra lookup.
    std::unordered_map<VertexId, VertexId> localIndex;
    localIndex.reserve(dst.size() * (fanout + 1));
    out.srcVertices.reserve(dst.size() * (fanout + 1));
    for (VertexId v : dst) {
        localIndex.emplace(v, static_cast<VertexId>(
            out.srcVertices.size()));
        out.srcVertices.push_back(v);
    }

    std::vector<EdgeId> rowPtr(dst.size() + 1, 0);
    std::vector<VertexId> colIdx;
    colIdx.reserve(dst.size() * fanout);
    std::vector<VertexId> reservoir(fanout);
    for (std::size_t i = 0; i < dst.size(); ++i) {
        const VertexId v = dst[i];
        const auto neighbors = graph.neighbors(v);
        std::size_t sampled = 0;
        if (neighbors.size() <= fanout) {
            for (VertexId u : neighbors)
                reservoir[sampled++] = u;
        } else {
            // Reservoir sampling of `fanout` neighbors without
            // replacement.
            for (std::size_t j = 0; j < fanout; ++j)
                reservoir[j] = neighbors[j];
            sampled = fanout;
            for (std::size_t j = fanout; j < neighbors.size(); ++j) {
                const std::size_t slot = rng.uniformInt(j + 1);
                if (slot < fanout)
                    reservoir[slot] = neighbors[j];
            }
        }
        for (std::size_t j = 0; j < sampled; ++j) {
            const VertexId u = reservoir[j];
            auto [it, inserted] = localIndex.emplace(
                u, static_cast<VertexId>(out.srcVertices.size()));
            if (inserted)
                out.srcVertices.push_back(u);
            colIdx.push_back(it->second);
        }
        rowPtr[i + 1] = colIdx.size();
    }
    // The block is bipartite: columns index the (larger) source set, so
    // pad the row pointers with empty rows for source-only vertices to
    // make the CSR well-formed over |src| vertices.
    rowPtr.resize(out.srcVertices.size() + 1, colIdx.size());
    out.dstVertices = std::move(dst);
    out.block = CsrGraph(std::move(rowPtr), std::move(colIdx));
    return out;
}

} // namespace

MiniBatch
sampleMiniBatch(const CsrGraph &graph, std::vector<VertexId> seeds,
                const std::vector<VertexId> &fanouts, Rng &rng)
{
    GRAPHITE_ASSERT(!fanouts.empty(), "need at least one layer fanout");
    MiniBatch batch;
    batch.blocks.resize(fanouts.size());
    // Build outermost-first: layer K's destinations are the seeds, each
    // inner layer's destinations are the outer layer's sources.
    std::vector<VertexId> dst = std::move(seeds);
    for (std::size_t k = fanouts.size(); k-- > 0;) {
        batch.blocks[k] = sampleBlock(graph, std::move(dst), fanouts[k],
                                      rng);
        dst = batch.blocks[k].srcVertices;
    }
    return batch;
}

DenseMatrix
gatherBatchFeatures(const DenseMatrix &features,
                    const std::vector<VertexId> &vertices)
{
    DenseMatrix out(vertices.size(), features.cols());
    for (std::size_t i = 0; i < vertices.size(); ++i) {
        std::memcpy(out.row(i), features.row(vertices[i]),
                    features.rowStride() * sizeof(Feature));
    }
    return out;
}

std::uint64_t
requestSeed(std::uint64_t requestId)
{
    // splitmix64 finalizer: a bijective avalanche so consecutive request
    // ids yield statistically independent sampling streams.
    std::uint64_t z = requestId + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

template <typename GraphT>
void
SamplerScratch::sampleTreeImpl(const GraphT &graph, VertexId seed,
                               std::span<const VertexId> fanouts,
                               Rng &rng, SamplerScratch &scratch,
                               SampledTree &tree)
{
    GRAPHITE_ASSERT(!fanouts.empty(), "need at least one layer fanout");
    GRAPHITE_ASSERT(seed < graph.numVertices(),
                    "sampleTree: seed out of range");
    if (tree.blocks.size() != fanouts.size())
        tree.blocks.resize(fanouts.size());

    // Build outermost-first, as sampleMiniBatch does: layer K's
    // destination set is {seed}; each inner layer's destinations are
    // the outer layer's sources.
    for (std::size_t k = fanouts.size(); k-- > 0;) {
        FlatBlock &block = tree.blocks[k];
        block.rowPtr.clear();
        block.colIdx.clear();
        block.srcVertices.clear();
        if (k + 1 == fanouts.size()) {
            block.dstVertices.clear();
            block.dstVertices.push_back(seed);
        } else {
            const std::vector<VertexId> &outerSrc =
                tree.blocks[k + 1].srcVertices;
            block.dstVertices.assign(outerSrc.begin(), outerSrc.end());
        }

        // Destinations occupy local source indices [0, |dst|).
        scratch.beginBlock();
        for (const VertexId v : block.dstVertices) {
            scratch.stamp_[v] = scratch.epoch_;
            scratch.local_[v] =
                static_cast<VertexId>(block.srcVertices.size());
            block.srcVertices.push_back(v);
        }

        const VertexId fanout = fanouts[k];
        if (scratch.reservoir_.size() < fanout)
            scratch.reservoir_.resize(fanout);
        VertexId *const reservoir = scratch.reservoir_.data();

        block.rowPtr.push_back(0);
        for (const VertexId v : block.dstVertices) {
            const auto neighbors = neighborRowOf(graph, v);
            std::size_t sampled = 0;
            if (neighbors.size() <= fanout) {
                for (std::size_t j = 0; j < neighbors.size(); ++j)
                    reservoir[sampled++] = neighbors[j];
            } else {
                // Reservoir sampling of `fanout` neighbors without
                // replacement — identical draw order to sampleBlock so
                // the two paths stay statistically interchangeable.
                for (std::size_t j = 0; j < fanout; ++j)
                    reservoir[j] = neighbors[j];
                sampled = fanout;
                for (std::size_t j = fanout; j < neighbors.size(); ++j) {
                    const std::size_t slot = rng.uniformInt(j + 1);
                    if (slot < fanout)
                        reservoir[slot] = neighbors[j];
                }
            }
            for (std::size_t j = 0; j < sampled; ++j) {
                const VertexId u = reservoir[j];
                if (scratch.stamp_[u] != scratch.epoch_) {
                    scratch.stamp_[u] = scratch.epoch_;
                    scratch.local_[u] =
                        static_cast<VertexId>(block.srcVertices.size());
                    block.srcVertices.push_back(u);
                }
                block.colIdx.push_back(scratch.local_[u]);
            }
            block.rowPtr.push_back(
                static_cast<EdgeId>(block.colIdx.size()));
        }
    }
}

void
sampleTree(const CsrGraph &graph, VertexId seed,
           std::span<const VertexId> fanouts, Rng &rng,
           SamplerScratch &scratch, SampledTree &tree)
{
    SamplerScratch::sampleTreeImpl(graph, seed, fanouts, rng, scratch,
                                   tree);
}

void
sampleTree(const DeltaCsr &graph, VertexId seed,
           std::span<const VertexId> fanouts, Rng &rng,
           SamplerScratch &scratch, SampledTree &tree)
{
    SamplerScratch::sampleTreeImpl(graph, seed, fanouts, rng, scratch,
                                   tree);
}

std::vector<std::vector<VertexId>>
makeEpochBatches(const CsrGraph &graph, std::size_t batchSize, Rng &rng)
{
    GRAPHITE_ASSERT(batchSize > 0, "batch size must be positive");
    std::vector<VertexId> all(graph.numVertices());
    for (VertexId v = 0; v < graph.numVertices(); ++v)
        all[v] = v;
    for (std::size_t i = all.size(); i > 1; --i)
        std::swap(all[i - 1], all[rng.uniformInt(i)]);
    std::vector<std::vector<VertexId>> batches;
    for (std::size_t begin = 0; begin < all.size(); begin += batchSize) {
        const std::size_t end = std::min(begin + batchSize, all.size());
        batches.emplace_back(all.begin() + begin, all.begin() + end);
    }
    return batches;
}

} // namespace graphite
