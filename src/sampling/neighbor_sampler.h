/**
 * @file
 * Neighborhood sampling and mini-batch block construction (paper
 * Section 2.1, Eq. 3) — the GPU-era workaround whose CPU-side overhead
 * motivates full-batch CPU execution (paper Figure 2).
 *
 * For a mini-batch of seed vertices and per-layer fan-outs, we build the
 * K-hop sampled neighborhood bottom-up the way DGL does: layer K's
 * destination set is the seeds; each layer's source set is its
 * destination set plus up-to-fanout sampled neighbors per destination;
 * the per-layer bipartite block stores the sampled edges re-indexed into
 * the compact source set. Finally the input features of the innermost
 * source set are gathered into a dense batch matrix (the
 * "mini-batching" copy cost).
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "graph/csr_graph.h"
#include "tensor/dense_matrix.h"

namespace graphite {

class DeltaCsr;

/** One sampled bipartite layer block. */
struct SampledBlock
{
    /**
     * Edges of the block in CSR over local destination indices; column
     * ids are local *source* indices.
     */
    CsrGraph block;
    /** Global vertex id of each local destination. */
    std::vector<VertexId> dstVertices;
    /** Global vertex id of each local source (dst set comes first). */
    std::vector<VertexId> srcVertices;
};

/** A K-layer mini-batch: blocks[0] is the input-most layer. */
struct MiniBatch
{
    std::vector<SampledBlock> blocks;
    /** Global ids whose input features the batch needs (innermost srcs). */
    const std::vector<VertexId> &inputVertices() const
    {
        return blocks.front().srcVertices;
    }
};

/**
 * SAMPLE_k over all K layers for one mini-batch.
 *
 * @param seeds    destination vertices of the outermost layer.
 * @param fanouts  per-layer sample sizes, innermost first; a vertex with
 *                 degree <= fanout keeps all neighbors.
 */
MiniBatch sampleMiniBatch(const CsrGraph &graph,
                          std::vector<VertexId> seeds,
                          const std::vector<VertexId> &fanouts, Rng &rng);

/**
 * Gather the batch's input feature rows into a dense contiguous matrix
 * (the host-to-device staging copy in a CPU-GPU pipeline).
 */
DenseMatrix gatherBatchFeatures(const DenseMatrix &features,
                                const std::vector<VertexId> &vertices);

/**
 * Partition [0, |V|) into shuffled mini-batches of @p batchSize seeds.
 */
std::vector<std::vector<VertexId>> makeEpochBatches(const CsrGraph &graph,
                                                    std::size_t batchSize,
                                                    Rng &rng);

/**
 * Deterministic per-request RNG seed: splitmix64 of the request id.
 * Serving samples each request's neighborhood with Rng(requestSeed(id)),
 * so an offline replay of the same request id reproduces the sampled
 * tree bit-for-bit regardless of which batch the request landed in.
 */
std::uint64_t requestSeed(std::uint64_t requestId);

/**
 * One sampled bipartite layer held as flat arrays — the allocation-free
 * serving counterpart of SampledBlock. No CsrGraph is constructed; the
 * vectors reuse their capacity across requests once warmed up.
 *
 * Invariants match SampledBlock: dstVertices is a prefix of srcVertices
 * (local source index i < |dst| is destination i), rowPtr has |dst|+1
 * entries, and colIdx holds local source indices.
 */
struct FlatBlock
{
    std::vector<EdgeId> rowPtr;
    std::vector<VertexId> colIdx;
    std::vector<VertexId> dstVertices;
    std::vector<VertexId> srcVertices;
};

/** A K-layer sampled neighborhood of one seed; blocks[0] is input-most. */
struct SampledTree
{
    std::vector<FlatBlock> blocks;
    /** Global ids whose input features the tree needs (innermost srcs). */
    const std::vector<VertexId> &inputVertices() const
    {
        return blocks.front().srcVertices;
    }
};

/**
 * Reusable working state for sampleTree: a stamped global→local index
 * map sized |V| (no per-call hashing or node allocation). One scratch
 * serves one sampling thread; it may be reused across graphs only if
 * re-constructed for the larger vertex count.
 */
class SamplerScratch
{
  public:
    explicit SamplerScratch(VertexId numVertices)
        : local_(numVertices, 0), stamp_(numVertices, 0)
    {
    }

  private:
    friend void sampleTree(const CsrGraph &graph, VertexId seed,
                           std::span<const VertexId> fanouts, Rng &rng,
                           SamplerScratch &scratch, SampledTree &tree);
    friend void sampleTree(const DeltaCsr &graph, VertexId seed,
                           std::span<const VertexId> fanouts, Rng &rng,
                           SamplerScratch &scratch, SampledTree &tree);

    /**
     * Shared sampling core; instantiated for CsrGraph and DeltaCsr in
     * the implementation file (both overloads live there, so the
     * definition need not be visible here).
     */
    template <typename GraphT>
    static void sampleTreeImpl(const GraphT &graph, VertexId seed,
                               std::span<const VertexId> fanouts,
                               Rng &rng, SamplerScratch &scratch,
                               SampledTree &tree);

    /** Start a new dedup domain; O(1) except on 32-bit epoch wrap. */
    void
    beginBlock()
    {
        if (++epoch_ == 0) {
            std::fill(stamp_.begin(), stamp_.end(), 0U);
            epoch_ = 1;
        }
    }

    std::vector<VertexId> local_;      ///< local index, valid iff stamped
    std::vector<std::uint32_t> stamp_; ///< epoch that wrote local_[v]
    std::uint32_t epoch_ = 0;
    std::vector<VertexId> reservoir_;  ///< per-destination sample buffer
};

/**
 * SAMPLE_k for a single seed vertex into reusable flat blocks: the
 * serving-path analogue of sampleMiniBatch. Layer K's destination set
 * is {seed}; each layer's source set is its destination set plus up to
 * fanouts[k] reservoir-sampled neighbors per destination. @p tree's
 * vectors are clear()ed and refilled, retaining capacity, so a warmed
 * tree+scratch pair samples with zero heap allocations.
 */
void sampleTree(const CsrGraph &graph, VertexId seed,
                std::span<const VertexId> fanouts, Rng &rng,
                SamplerScratch &scratch, SampledTree &tree);

/**
 * sampleTree over a delta-CSR overlay: neighbor lists are the base row
 * followed by published delta edges. The reservoir draw sequence is
 * identical to the CsrGraph overload given the same neighbor sequence,
 * so a vertex with no delta edges samples the exact same tree as it
 * would on the base graph — which is what makes an overlay holding
 * zero deltas bitwise-interchangeable with its base.
 */
void sampleTree(const DeltaCsr &graph, VertexId seed,
                std::span<const VertexId> fanouts, Rng &rng,
                SamplerScratch &scratch, SampledTree &tree);

} // namespace graphite
