/**
 * @file
 * Neighborhood sampling and mini-batch block construction (paper
 * Section 2.1, Eq. 3) — the GPU-era workaround whose CPU-side overhead
 * motivates full-batch CPU execution (paper Figure 2).
 *
 * For a mini-batch of seed vertices and per-layer fan-outs, we build the
 * K-hop sampled neighborhood bottom-up the way DGL does: layer K's
 * destination set is the seeds; each layer's source set is its
 * destination set plus up-to-fanout sampled neighbors per destination;
 * the per-layer bipartite block stores the sampled edges re-indexed into
 * the compact source set. Finally the input features of the innermost
 * source set are gathered into a dense batch matrix (the
 * "mini-batching" copy cost).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "graph/csr_graph.h"
#include "tensor/dense_matrix.h"

namespace graphite {

/** One sampled bipartite layer block. */
struct SampledBlock
{
    /**
     * Edges of the block in CSR over local destination indices; column
     * ids are local *source* indices.
     */
    CsrGraph block;
    /** Global vertex id of each local destination. */
    std::vector<VertexId> dstVertices;
    /** Global vertex id of each local source (dst set comes first). */
    std::vector<VertexId> srcVertices;
};

/** A K-layer mini-batch: blocks[0] is the input-most layer. */
struct MiniBatch
{
    std::vector<SampledBlock> blocks;
    /** Global ids whose input features the batch needs (innermost srcs). */
    const std::vector<VertexId> &inputVertices() const
    {
        return blocks.front().srcVertices;
    }
};

/**
 * SAMPLE_k over all K layers for one mini-batch.
 *
 * @param seeds    destination vertices of the outermost layer.
 * @param fanouts  per-layer sample sizes, innermost first; a vertex with
 *                 degree <= fanout keeps all neighbors.
 */
MiniBatch sampleMiniBatch(const CsrGraph &graph,
                          std::vector<VertexId> seeds,
                          const std::vector<VertexId> &fanouts, Rng &rng);

/**
 * Gather the batch's input feature rows into a dense contiguous matrix
 * (the host-to-device staging copy in a CPU-GPU pipeline).
 */
DenseMatrix gatherBatchFeatures(const DenseMatrix &features,
                                const std::vector<VertexId> &vertices);

/**
 * Partition [0, |V|) into shuffled mini-batches of @p batchSize seeds.
 */
std::vector<std::vector<VertexId>> makeEpochBatches(const CsrGraph &graph,
                                                    std::size_t batchSize,
                                                    Rng &rng);

} // namespace graphite
