/**
 * @file
 * Tiny command-line option parser used by the bench and example binaries.
 *
 * Supports `--name=value`, `--name value` and boolean `--flag` forms plus
 * automatic `--help` output. Deliberately minimal: the benches only need a
 * handful of scalar knobs (graph scale, feature width, thread count, ...).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace graphite {

/** Declarative command-line option set with typed accessors. */
class Options
{
  public:
    /**
     * @param description one-line description printed at the top of --help.
     */
    explicit Options(std::string description);

    /** Register an option with a default value and help text. */
    void add(const std::string &name, const std::string &defaultValue,
             const std::string &help);

    /**
     * Parse argv. Unknown options are fatal. A `--help` argument prints
     * usage and exits(0).
     */
    void parse(int argc, char **argv);

    /** String value of @p name (the default if unset). */
    std::string getString(const std::string &name) const;

    /** The default registered for @p name (unchanged by parse()). */
    std::string getDefault(const std::string &name) const;

    /** Integer value of @p name. */
    std::int64_t getInt(const std::string &name) const;

    /** Floating-point value of @p name. */
    double getDouble(const std::string &name) const;

    /** Boolean value: true/1/yes/on are truthy. */
    bool getBool(const std::string &name) const;

  private:
    struct Entry
    {
        std::string name;
        std::string value;
        /** Registered default, kept verbatim so --help can print it
         *  even after parse() has overwritten value. */
        std::string defaultValue;
        std::string help;
    };

    const Entry *find(const std::string &name) const;
    Entry *find(const std::string &name);
    void printHelp(const char *argv0) const;

    std::string description_;
    std::vector<Entry> entries_;
};

} // namespace graphite
