/**
 * @file
 * Fundamental scalar typedefs shared across the Graphite library.
 */

#pragma once

#include <cstddef>
#include <cstdint>

namespace graphite {

/** Vertex identifier. 32 bits covers the graph scales we target. */
using VertexId = std::uint32_t;

/** Edge identifier / CSR offset. 64 bits: |E| can exceed 4 B in general. */
using EdgeId = std::uint64_t;

/** Feature scalar. The paper evaluates single-precision features. */
using Feature = float;

/** Simulated-time unit (core clock cycles). */
using Cycles = std::uint64_t;

/** Byte count. */
using Bytes = std::uint64_t;

/** Size of a cache line in bytes, fixed across the simulated machine. */
inline constexpr std::size_t kCacheLineBytes = 64;

/** Alignment used for all feature storage (one cache line). */
inline constexpr std::size_t kFeatureAlignment = 64;

} // namespace graphite
