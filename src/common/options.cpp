#include "common/options.h"

#include <cstdio>
#include <cstdlib>

#include "common/assert.h"

namespace graphite {

Options::Options(std::string description)
    : description_(std::move(description))
{
}

void
Options::add(const std::string &name, const std::string &defaultValue,
             const std::string &help)
{
    GRAPHITE_ASSERT(find(name) == nullptr, "duplicate option");
    entries_.push_back(Entry{name, defaultValue, defaultValue, help});
}

namespace {

/**
 * Is @p token a value (vs the next option)? Anything not starting with
 * '-' is a value; so is a negative number ("-3", "-0.5", "-.5") —
 * signed CLI values (trace sampling offsets, negative epsilons) must
 * survive the `--opt value` form.
 */
bool
looksLikeValue(const char *token)
{
    if (token[0] != '-')
        return true;
    const char next = token[1];
    return (next >= '0' && next <= '9') ||
           (next == '.' && token[2] >= '0' && token[2] <= '9');
}

} // namespace

void
Options::parse(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            printHelp(argv[0]);
            std::exit(0);
        }
        if (arg.rfind("--", 0) != 0)
            fatal("unexpected positional argument '%s'", arg.c_str());
        arg = arg.substr(2);
        std::string name = arg;
        std::string value;
        bool haveValue = false;
        auto eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
            haveValue = true;
        }
        Entry *entry = find(name);
        if (!entry)
            fatal("unknown option '--%s' (try --help)", name.c_str());
        if (haveValue && value.empty()) {
            fatal("empty value for '--%s=' (pass --%s=<value>, or drop "
                  "the '=' for the boolean form)",
                  name.c_str(), name.c_str());
        }
        if (!haveValue) {
            // `--flag value` form, or bare boolean `--flag`.
            if (i + 1 < argc && looksLikeValue(argv[i + 1])) {
                value = argv[++i];
            } else {
                value = "true";
            }
        }
        entry->value = value;
    }
}

std::string
Options::getString(const std::string &name) const
{
    const Entry *entry = find(name);
    GRAPHITE_ASSERT(entry != nullptr, "option not registered");
    return entry->value;
}

std::string
Options::getDefault(const std::string &name) const
{
    const Entry *entry = find(name);
    GRAPHITE_ASSERT(entry != nullptr, "option not registered");
    return entry->defaultValue;
}

std::int64_t
Options::getInt(const std::string &name) const
{
    return std::strtoll(getString(name).c_str(), nullptr, 0);
}

double
Options::getDouble(const std::string &name) const
{
    return std::strtod(getString(name).c_str(), nullptr);
}

bool
Options::getBool(const std::string &name) const
{
    std::string v = getString(name);
    return v == "true" || v == "1" || v == "yes" || v == "on";
}

const Options::Entry *
Options::find(const std::string &name) const
{
    for (const auto &entry : entries_) {
        if (entry.name == name)
            return &entry;
    }
    return nullptr;
}

Options::Entry *
Options::find(const std::string &name)
{
    return const_cast<Entry *>(
        static_cast<const Options *>(this)->find(name));
}

void
Options::printHelp(const char *argv0) const
{
    std::printf("%s\n\nusage: %s [--option=value ...]\n\noptions:\n",
                description_.c_str(), argv0);
    for (const auto &entry : entries_) {
        std::printf("  --%-24s %s (default: %s)\n", entry.name.c_str(),
                    entry.help.c_str(), entry.defaultValue.c_str());
    }
}

} // namespace graphite
