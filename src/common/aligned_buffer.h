/**
 * @file
 * Cache-line-aligned heap storage. Feature matrices, aggregation buffers and
 * compression masks all require 64-byte alignment so that AVX-512 loads are
 * aligned and so that the timing simulator's line-granularity accounting
 * matches the real layout.
 */

#pragma once

#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>

#include "common/assert.h"
#include "common/types.h"

namespace graphite {

/**
 * Fixed-size aligned array of trivially-copyable elements.
 *
 * Unlike std::vector this guarantees the configured alignment and never
 * reallocates, so raw pointers into it stay valid for the buffer's lifetime
 * (the simulator keeps such pointers in its trace records).
 */
template <typename T>
class AlignedBuffer
{
  public:
    AlignedBuffer() = default;

    /** Allocate @p count elements, zero-initialised. */
    explicit
    AlignedBuffer(std::size_t count, std::size_t alignment = kFeatureAlignment)
    {
        allocate(count, alignment);
    }

    AlignedBuffer(const AlignedBuffer &other) { copyFrom(other); }

    AlignedBuffer &
    operator=(const AlignedBuffer &other)
    {
        if (this != &other) {
            release();
            copyFrom(other);
        }
        return *this;
    }

    AlignedBuffer(AlignedBuffer &&other) noexcept
        : data_(std::exchange(other.data_, nullptr)),
          count_(std::exchange(other.count_, 0)),
          alignment_(other.alignment_)
    {}

    AlignedBuffer &
    operator=(AlignedBuffer &&other) noexcept
    {
        if (this != &other) {
            release();
            data_ = std::exchange(other.data_, nullptr);
            count_ = std::exchange(other.count_, 0);
            alignment_ = other.alignment_;
        }
        return *this;
    }

    ~AlignedBuffer() { release(); }

    /** (Re)allocate to @p count elements, zero-initialised. */
    void
    resize(std::size_t count)
    {
        release();
        allocate(count, alignment_);
    }

    /** Set every element to zero. */
    void
    zero()
    {
        if (data_)
            std::memset(data_, 0, count_ * sizeof(T));
    }

    T *data() { return data_; }
    const T *data() const { return data_; }
    std::size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }

    T &
    operator[](std::size_t i)
    {
        GRAPHITE_DCHECK(i < count_, "AlignedBuffer index out of range");
        return data_[i];
    }

    const T &
    operator[](std::size_t i) const
    {
        GRAPHITE_DCHECK(i < count_, "AlignedBuffer index out of range");
        return data_[i];
    }

    T *begin() { return data_; }
    T *end() { return data_ + count_; }
    const T *begin() const { return data_; }
    const T *end() const { return data_ + count_; }

  private:
    void
    allocate(std::size_t count, std::size_t alignment)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "AlignedBuffer requires trivially copyable elements");
        alignment_ = alignment;
        count_ = count;
        if (count == 0) {
            data_ = nullptr;
            return;
        }
        // Round the byte size up to a multiple of the alignment, as
        // required by std::aligned_alloc.
        std::size_t bytes = count * sizeof(T);
        bytes = (bytes + alignment - 1) / alignment * alignment;
        data_ = static_cast<T *>(std::aligned_alloc(alignment, bytes));
        if (!data_)
            throw std::bad_alloc();
        std::memset(data_, 0, bytes);
    }

    void
    release()
    {
        std::free(data_);
        data_ = nullptr;
        count_ = 0;
    }

    void
    copyFrom(const AlignedBuffer &other)
    {
        allocate(other.count_, other.alignment_);
        if (other.count_ > 0)
            std::memcpy(data_, other.data_, other.count_ * sizeof(T));
    }

    T *data_ = nullptr;
    std::size_t count_ = 0;
    std::size_t alignment_ = kFeatureAlignment;
};

} // namespace graphite
