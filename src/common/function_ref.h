/**
 * @file
 * FunctionRef: a non-owning, non-allocating callable reference.
 *
 * std::function owns its target, and any capture list bigger than the
 * small-buffer optimisation (two words in libstdc++) heap-allocates on
 * construction. The parallel-loop entry points convert a fresh lambda
 * to a callable on every call, which put one or more allocations inside
 * every parallel region — invisible in profiles but fatal to the
 * allocation-free steady-state contract that graphite_lint and
 * ScopedAllocGuard enforce.
 *
 * FunctionRef stores two raw words (object pointer + invoke thunk) and
 * never allocates. The referenced callable must outlive every call
 * through the FunctionRef, which the fork-join pool guarantees
 * structurally: runOnAll() does not return until every worker has
 * finished the job, so a caller's stack-allocated lambda is always
 * alive while workers run it.
 */

#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

namespace graphite {

template <typename Signature> class FunctionRef;

/** See file comment. Null by default; test with operator bool. */
template <typename R, typename... Args> class FunctionRef<R(Args...)>
{
  public:
    constexpr FunctionRef() noexcept = default;

    /** Bind to any callable lvalue (or call-site temporary). */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                  std::is_invocable_r_v<R, F &, Args...>>>
    // NOLINTNEXTLINE(bugprone-forwarding-reference-overload)
    FunctionRef(F &&f) noexcept
        : object_(const_cast<void *>(
              static_cast<const void *>(std::addressof(f)))),
          invoke_(&invokeImpl<std::remove_reference_t<F>>)
    {
    }

    R
    operator()(Args... args) const
    {
        return invoke_(object_, std::forward<Args>(args)...);
    }

    explicit operator bool() const noexcept { return invoke_ != nullptr; }

  private:
    template <typename F>
    static R
    invokeImpl(void *object, Args... args)
    {
        return (*static_cast<F *>(object))(std::forward<Args>(args)...);
    }

    void *object_ = nullptr;
    R (*invoke_)(void *, Args...) = nullptr;
};

} // namespace graphite
