/**
 * @file
 * Annotated mutex / condition-variable wrappers for the thread-safety
 * analysis (see common/thread_annotations.h).
 *
 * libstdc++'s std::mutex has no capability attributes, so code locking
 * it is invisible to -Wthread-safety. These zero-overhead wrappers put
 * the attributes on: a Mutex is a GRAPHITE_CAPABILITY, MutexLock is the
 * RAII scoped capability, and CondVar::wait names the Mutex it
 * reacquires so guarded members may be re-checked in the wait loop.
 *
 * Wait loops must be written as explicit `while (...) cv.wait(lock)`
 * statements, not predicate lambdas: the analysis treats a lambda body
 * as a separate function holding no capabilities, so a predicate that
 * reads guarded members would (correctly) fail the build.
 */

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/assert.h"
#include "common/thread_annotations.h"

namespace graphite {

/** std::mutex annotated as a thread-safety capability. */
class GRAPHITE_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() GRAPHITE_ACQUIRE() { m_.lock(); }
    void unlock() GRAPHITE_RELEASE() { m_.unlock(); }
    bool try_lock() GRAPHITE_TRY_ACQUIRE(true) { return m_.try_lock(); }

    /** Underlying mutex, for CondVar only. */
    std::mutex &native() { return m_; }

  private:
    std::mutex m_;
};

/**
 * RAII lock over a Mutex (scoped capability). Wraps std::unique_lock
 * so CondVar can wait on it.
 */
class GRAPHITE_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) GRAPHITE_ACQUIRE(mutex)
        : lock_(mutex.native()), mutex_(&mutex)
    {
    }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

    ~MutexLock() GRAPHITE_RELEASE() {}

    /** Underlying lock, for CondVar only. */
    std::unique_lock<std::mutex> &native() { return lock_; }

    /** The Mutex this lock holds, for CondVar's wait() check only. */
    const Mutex *mutex() const { return mutex_; }

  private:
    std::unique_lock<std::mutex> lock_;
    Mutex *mutex_;
};

/**
 * Condition variable bound to MutexLock. wait() names the Mutex so the
 * analysis knows the capability is held again when it returns.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

    /**
     * Atomically release @p lock's mutex and sleep; the mutex is held
     * again on return. @p mutex must be the Mutex @p lock holds —
     * naming a different one would satisfy the thread-safety analysis
     * while waiting on the wrong lock, so debug builds verify it.
     */
    void
    wait(MutexLock &lock, Mutex &mutex) GRAPHITE_REQUIRES(mutex)
    {
        GRAPHITE_DCHECK(lock.mutex() == &mutex,
                        "CondVar::wait: lock does not hold the named "
                        "mutex");
        static_cast<void>(mutex);
        cv_.wait(lock.native());
    }

    /**
     * wait() with a relative timeout. Returns false when the timeout
     * elapsed without a notification, true otherwise (including
     * spurious wakeups — callers re-check their predicate either way).
     * The serving micro-batcher uses this to close a batch on latency
     * budget expiry.
     */
    bool
    waitFor(MutexLock &lock, Mutex &mutex,
            std::int64_t timeoutNs) GRAPHITE_REQUIRES(mutex)
    {
        GRAPHITE_DCHECK(lock.mutex() == &mutex,
                        "CondVar::waitFor: lock does not hold the named "
                        "mutex");
        static_cast<void>(mutex);
        return cv_.wait_for(lock.native(),
                            std::chrono::nanoseconds(timeoutNs)) ==
               std::cv_status::no_timeout;
    }

  private:
    std::condition_variable cv_;
};

} // namespace graphite
