#include "common/assert.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace graphite {

namespace {

/**
 * Render "graphite: <tag>: <formatted message>\n" to stderr. A single
 * vsnprintf into a local buffer keeps the output one atomic write, so
 * concurrent failures from pool workers do not interleave mid-line.
 */
void
reportError(const char *tag, const char *fmt, std::va_list args)
{
    char message[1024];
    std::vsnprintf(message, sizeof(message), fmt, args);
    std::fprintf(stderr, "graphite: %s: %s\n", tag, message);
    std::fflush(stderr);
}

} // namespace

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    reportError("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    reportError("panic", fmt, args);
    va_end(args);
    std::abort();
}

namespace detail {

void
assertFail(const char *cond, const char *file, int line, const char *msg)
{
    panic("assertion failed: %s (%s:%d): %s", cond, file, line, msg);
}

} // namespace detail

} // namespace graphite
