/**
 * @file
 * Error-handling helpers in the spirit of gem5's panic()/fatal() split:
 * GRAPHITE_ASSERT guards internal invariants (library bugs), while fatal()
 * reports unrecoverable user errors (bad configuration, bad input).
 *
 * Assertions come in two tiers:
 *
 *  - GRAPHITE_ASSERT — always on, in every build type. For cheap
 *    preconditions off the per-element hot path (per-call shape checks,
 *    construction-time invariants).
 *  - GRAPHITE_DCHECK — compiled in only when GRAPHITE_ENABLE_DCHECKS is
 *    defined (the GRAPHITE_CHECKS CMake option: on in Debug and
 *    sanitizer builds, off in release). For per-element bounds checks on
 *    hot accessors (CsrGraph rows, matrix rows, packed-panel lookups)
 *    whose cost would be measurable in the aggregation/update inner
 *    loops.
 *
 * fatal()/panic() are printf-style C-variadic functions carrying
 * [[gnu::format]] so a mismatched format spec is a compile-time warning
 * (an error under -Werror / CI), not undefined behaviour at crash time.
 */

#pragma once

namespace graphite {

/**
 * Report an unrecoverable user-caused error and exit(1).
 *
 * @param fmt printf-style format string (compile-time checked).
 */
[[noreturn]] [[gnu::format(printf, 1, 2)]]
void fatal(const char *fmt, ...);

/**
 * Report an internal invariant violation (a library bug) and abort().
 */
[[noreturn]] [[gnu::format(printf, 1, 2)]]
void panic(const char *fmt, ...);

namespace detail {

/** Out-of-line assertion-failure reporter shared by the macros. */
[[noreturn]] void assertFail(const char *cond, const char *file, int line,
                             const char *msg);

} // namespace detail

} // namespace graphite

/** Internal invariant check; enabled in all build types. */
#define GRAPHITE_ASSERT(cond, msg)                                          \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::graphite::detail::assertFail(#cond, __FILE__, __LINE__, msg); \
        }                                                                   \
    } while (0)

/**
 * Hot-path invariant check; compiled in only under GRAPHITE_CHECKS
 * (Debug and sanitizer builds by default). The disabled form still
 * parses @p cond so checked expressions cannot rot, but evaluates
 * nothing at run time.
 */
#ifdef GRAPHITE_ENABLE_DCHECKS
#define GRAPHITE_DCHECK(cond, msg) GRAPHITE_ASSERT(cond, msg)
#else
#define GRAPHITE_DCHECK(cond, msg)                                          \
    do {                                                                    \
        if (false) {                                                        \
            static_cast<void>(cond);                                        \
            static_cast<void>(msg);                                         \
        }                                                                   \
    } while (0)
#endif
