/**
 * @file
 * Error-handling helpers in the spirit of gem5's panic()/fatal() split:
 * GRAPHITE_ASSERT guards internal invariants (library bugs), while fatal()
 * reports unrecoverable user errors (bad configuration, bad input).
 */

#pragma once

#include <cstdio>
#include <cstdlib>

namespace graphite {

/**
 * Report an unrecoverable user-caused error and exit(1).
 *
 * @param fmt printf-style format string.
 */
template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args... args)
{
    std::fprintf(stderr, "graphite: fatal: ");
    if constexpr (sizeof...(Args) == 0) {
        std::fprintf(stderr, "%s", fmt);
    } else {
        std::fprintf(stderr, fmt, args...);
    }
    std::fprintf(stderr, "\n");
    std::exit(1);
}

/**
 * Report an internal invariant violation (a library bug) and abort().
 */
template <typename... Args>
[[noreturn]] void
panic(const char *fmt, Args... args)
{
    std::fprintf(stderr, "graphite: panic: ");
    if constexpr (sizeof...(Args) == 0) {
        std::fprintf(stderr, "%s", fmt);
    } else {
        std::fprintf(stderr, fmt, args...);
    }
    std::fprintf(stderr, "\n");
    std::abort();
}

} // namespace graphite

/** Internal invariant check; enabled in all build types. */
#define GRAPHITE_ASSERT(cond, msg)                                          \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::graphite::panic("assertion failed: %s (%s:%d): %s", #cond,    \
                              __FILE__, __LINE__, msg);                     \
        }                                                                   \
    } while (0)
