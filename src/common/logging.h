/**
 * @file
 * Minimal leveled logging. Benches and examples use inform(); warn() flags
 * suspicious-but-survivable conditions, mirroring gem5's message taxonomy.
 */

#pragma once

#include <string>

namespace graphite {

/** Logging verbosity levels. */
enum class LogLevel { Debug, Info, Warn, Error };

/** Set the global minimum level that is actually printed. */
void setLogLevel(LogLevel level);

/** Current global log level. */
LogLevel logLevel();

/** Emit one formatted log line at @p level (printf-style). */
void logMessage(LogLevel level, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/** Informative status message. */
template <typename... Args>
void
inform(const char *fmt, Args... args)
{
    logMessage(LogLevel::Info, fmt, args...);
}

/** Possibly-problematic condition worth flagging. */
template <typename... Args>
void
warn(const char *fmt, Args... args)
{
    logMessage(LogLevel::Warn, fmt, args...);
}

} // namespace graphite
