/**
 * @file
 * Deterministic, fast pseudo-random number generation.
 *
 * All stochastic pieces of the library (graph generators, dropout, feature
 * sparsification, sampling) draw from this RNG so that experiments are
 * reproducible from a single seed.
 */

#pragma once

#include <cstdint>

namespace graphite {

/**
 * xoshiro256** generator seeded via splitmix64. Fast enough to sit inside
 * the dropout inner loop, with 256 bits of state.
 */
class Rng
{
  public:
    explicit
    Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // splitmix64 expansion of the seed into the four state words.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit draw. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * 0x1.0p-53;
    }

    /** Uniform float in [0, 1). */
    float
    uniformFloat()
    {
        return static_cast<float>((next() >> 40) * 0x1.0p-24f);
    }

    /** Uniform integer in [0, bound). @p bound must be > 0. */
    std::uint64_t
    uniformInt(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free approximation is fine for
        // our (non-cryptographic) purposes.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Gaussian via Box-Muller (cached second draw). */
    double
    gaussian()
    {
        if (haveCached_) {
            haveCached_ = false;
            return cached_;
        }
        double u1 = uniform();
        double u2 = uniform();
        // Avoid log(0).
        if (u1 < 1e-300)
            u1 = 1e-300;
        const double r = __builtin_sqrt(-2.0 * __builtin_log(u1));
        const double theta = 2.0 * 3.14159265358979323846 * u2;
        cached_ = r * __builtin_sin(theta);
        haveCached_ = true;
        return r * __builtin_cos(theta);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4] = {};
    double cached_ = 0.0;
    bool haveCached_ = false;
};

} // namespace graphite
