/**
 * @file
 * ScopedAllocGuard: the runtime backstop of the allocation-free
 * steady-state contract.
 *
 * graphite_lint proves statically that the kernel hot loops contain no
 * allocation sites; this guard proves the same property dynamically for
 * whole steady-state phases (a Trainer epoch, a GnnModel::inference
 * call) where the static rule cannot see across function boundaries.
 * Tests wrap the phase and assert allocations() == 0.
 *
 * Mechanics: alloc_guard.cpp replaces the global operator new/delete
 * family with a counting interposer — but only when GRAPHITE_CHECKS is
 * on (GRAPHITE_ENABLE_DCHECKS), and only in binaries that actually
 * reference ScopedAllocGuard (the interposer lives in the same
 * translation unit, so the linker pulls it from the archive exactly
 * when a guard is used). Release builds and guard-free binaries keep
 * the stock allocator: zero overhead, no interposition.
 *
 * The count is process-global across all threads — pool workers
 * allocating inside a guarded region are exactly the regressions the
 * guard exists to catch. Guards nest; each one reports the allocations
 * since its own construction.
 */

#pragma once

#include <cstdint>

namespace graphite {

namespace detail {

/**
 * Allocations observed by the interposer since process start; 0 when
 * the interposer is compiled out (GRAPHITE_CHECKS off).
 */
std::uint64_t allocGuardCount();

} // namespace detail

/** See file comment. */
class ScopedAllocGuard
{
  public:
    explicit ScopedAllocGuard(const char *label = "");
    ~ScopedAllocGuard();

    ScopedAllocGuard(const ScopedAllocGuard &) = delete;
    ScopedAllocGuard &operator=(const ScopedAllocGuard &) = delete;

    /**
     * Heap allocations (operator new of any flavour, any thread) since
     * this guard was constructed. Always 0 when interpositionActive()
     * is false.
     */
    std::uint64_t allocations() const;

    const char *label() const { return label_; }

    /**
     * True when the counting interposer is compiled in (GRAPHITE_CHECKS
     * builds). Tests gate their zero-allocation assertions on this so
     * release builds don't assert vacuously against a dead counter.
     */
    static bool interpositionActive();

  private:
    const char *label_;
    std::uint64_t start_;
};

} // namespace graphite
