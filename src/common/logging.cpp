#include "common/logging.h"

#include <cstdarg>
#include <cstdio>

namespace graphite {

namespace {
LogLevel g_level = LogLevel::Info;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info:  return "info";
      case LogLevel::Warn:  return "warn";
      case LogLevel::Error: return "error";
    }
    return "?";
}
} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

void
logMessage(LogLevel level, const char *fmt, ...)
{
    if (static_cast<int>(level) < static_cast<int>(g_level))
        return;
    std::fprintf(stderr, "[graphite:%s] ", levelName(level));
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
}

} // namespace graphite
