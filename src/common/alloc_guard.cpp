#include "common/alloc_guard.h"

#include <atomic>
#include <cstdlib>
#include <new>

/*
 * The interposer exists only under GRAPHITE_CHECKS (see alloc_guard.h).
 * It lives in the same translation unit as ScopedAllocGuard on purpose:
 * a static-library archive member is linked in only when something it
 * defines is referenced, so binaries that never construct a guard keep
 * libstdc++'s operator new, and binaries that do get the counting
 * replacement atomically with the guard.
 */

#ifdef GRAPHITE_ENABLE_DCHECKS

#ifdef __GLIBC__
#include <cstdio>
#include <execinfo.h>
#endif

namespace {

/* Constant-initialised (.bss): safe even for allocations that happen
 * before any dynamic initialiser runs. */
std::atomic<std::uint64_t> g_allocCount{0};
std::atomic<int> g_guardDepth{0};

/**
 * GRAPHITE_ALLOC_GUARD_TRACE=1: print a backtrace for every allocation
 * that happens inside an active guard, to locate the offending call
 * site when a zero-allocation test fails. Debug aid only — glibc's
 * backtrace paths use raw malloc, so no recursion through operator new.
 */
bool
traceRequested()
{
    static const bool requested = [] {
        // graphite-lint: allow(mt-unsafe) read once at first guarded
        // allocation; the result is latched in a function-local static.
        const char *env = std::getenv("GRAPHITE_ALLOC_GUARD_TRACE");
        return env != nullptr && env[0] != '\0' && env[0] != '0';
    }();
    return requested;
}

void
maybeTrace()
{
#ifdef __GLIBC__
    if (g_guardDepth.load(std::memory_order_relaxed) <= 0 ||
        !traceRequested())
        return;
    void *frames[32];
    const int n = backtrace(frames, 32);
    std::fprintf(stderr, "alloc-guard: allocation inside guard:\n");
    backtrace_symbols_fd(frames, n, 2);
#endif
}

void *
countedAlloc(std::size_t size)
{
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    maybeTrace();
    /* malloc(0) may return nullptr legitimately; operator new must
     * return a unique pointer instead. */
    return std::malloc(size != 0 ? size : 1);
}

void *
countedAllocAligned(std::size_t size, std::size_t alignment)
{
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    maybeTrace();
    void *p = nullptr;
    if (posix_memalign(&p, alignment < sizeof(void *) ? sizeof(void *)
                                                      : alignment,
                       size != 0 ? size : 1) != 0)
        return nullptr;
    return p;
}

} // namespace

/* Replaceable global allocation functions ([new.delete]): throwing,
 * nothrow and aligned flavours all funnel through the counters; every
 * delete flavour is free() (malloc/posix_memalign memory is
 * free()-compatible). */

void *
operator new(std::size_t size)
{
    void *p = countedAlloc(size);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    return countedAlloc(size);
}

void *
operator new(std::size_t size, std::align_val_t alignment)
{
    void *p = countedAllocAligned(size,
                                  static_cast<std::size_t>(alignment));
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size, std::align_val_t alignment)
{
    return ::operator new(size, alignment);
}

void *
operator new(std::size_t size, std::align_val_t alignment,
             const std::nothrow_t &) noexcept
{
    return countedAllocAligned(size, static_cast<std::size_t>(alignment));
}

void *
operator new[](std::size_t size, std::align_val_t alignment,
               const std::nothrow_t &) noexcept
{
    return countedAllocAligned(size, static_cast<std::size_t>(alignment));
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace graphite {

namespace detail {

std::uint64_t
allocGuardCount()
{
    return g_allocCount.load(std::memory_order_relaxed);
}

namespace {

void
armGuard(int delta)
{
    g_guardDepth.fetch_add(delta, std::memory_order_relaxed);
}

} // namespace

} // namespace detail

bool
ScopedAllocGuard::interpositionActive()
{
    return true;
}

} // namespace graphite

#else // !GRAPHITE_ENABLE_DCHECKS

namespace graphite {

namespace detail {

std::uint64_t
allocGuardCount()
{
    return 0;
}

namespace {

void
armGuard(int)
{
}

} // namespace

} // namespace detail

bool
ScopedAllocGuard::interpositionActive()
{
    return false;
}

} // namespace graphite

#endif // GRAPHITE_ENABLE_DCHECKS

namespace graphite {

ScopedAllocGuard::ScopedAllocGuard(const char *label)
    : label_(label), start_(detail::allocGuardCount())
{
    detail::armGuard(1);
}

ScopedAllocGuard::~ScopedAllocGuard()
{
    detail::armGuard(-1);
}

std::uint64_t
ScopedAllocGuard::allocations() const
{
    return detail::allocGuardCount() - start_;
}

} // namespace graphite
