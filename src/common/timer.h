/**
 * @file
 * Wall-clock timing helper for the native benchmarks.
 */

#pragma once

#include <chrono>

namespace graphite {

/** Monotonic stopwatch; starts on construction. */
class Timer
{
  public:
    Timer() : start_(Clock::now()) {}

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Elapsed seconds since construction or the last reset(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** Elapsed milliseconds. */
    double milliseconds() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace graphite
