/**
 * @file
 * Clang thread-safety-analysis attribute macros (no-ops elsewhere).
 *
 * The concurrency invariants of the shared-state structures — which
 * mutex guards which member, which private helpers assume the lock is
 * already held — used to live in comments and TSan interleavings only.
 * These macros make them part of the type system: the CI
 * `static-analysis` job compiles with
 *
 *     -Wthread-safety -Werror=thread-safety-analysis
 *
 * under clang, so touching a GRAPHITE_GUARDED_BY member without the
 * named capability is a build break, not a latent race for TSan to
 * (maybe) catch. GCC and MSVC see empty macros; the annotations cost
 * nothing at run time anywhere.
 *
 * libstdc++'s std::mutex carries no capability attributes, so raw
 * std::mutex/std::lock_guard cannot participate in the analysis.
 * Shared-state classes use the annotated wrappers in common/mutex.h
 * (graphite::Mutex, graphite::MutexLock, graphite::CondVar) instead.
 *
 * Naming follows the conventional clang/abseil attribute set with a
 * GRAPHITE_ prefix so a reader can cross-reference the upstream
 * documentation (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html).
 */

#pragma once

#if defined(__clang__)
#define GRAPHITE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GRAPHITE_THREAD_ANNOTATION(x)
#endif

/** Marks a type as a lockable capability (e.g. a mutex wrapper). */
#define GRAPHITE_CAPABILITY(x) GRAPHITE_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type that acquires a capability for its lifetime. */
#define GRAPHITE_SCOPED_CAPABILITY GRAPHITE_THREAD_ANNOTATION(scoped_lockable)

/** Member may only be accessed while holding capability @p x. */
#define GRAPHITE_GUARDED_BY(x) GRAPHITE_THREAD_ANNOTATION(guarded_by(x))

/** Pointee (not the pointer) is guarded by capability @p x. */
#define GRAPHITE_PT_GUARDED_BY(x) GRAPHITE_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function requires the listed capabilities to be held on entry. */
#define GRAPHITE_REQUIRES(...)                                              \
    GRAPHITE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function acquires the listed capabilities (held on return). */
#define GRAPHITE_ACQUIRE(...)                                               \
    GRAPHITE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases the listed capabilities. */
#define GRAPHITE_RELEASE(...)                                               \
    GRAPHITE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function acquires the capability when it returns @p ret. */
#define GRAPHITE_TRY_ACQUIRE(...)                                           \
    GRAPHITE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Caller must NOT hold the listed capabilities (deadlock guard). */
#define GRAPHITE_EXCLUDES(...)                                              \
    GRAPHITE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Function returns a reference to the capability guarding its result. */
#define GRAPHITE_RETURN_CAPABILITY(x)                                       \
    GRAPHITE_THREAD_ANNOTATION(lock_returned(x))

/**
 * Escape hatch: disables the analysis for one function. Every use
 * carries a comment explaining why the invariant holds anyway.
 */
#define GRAPHITE_NO_THREAD_SAFETY_ANALYSIS                                  \
    GRAPHITE_THREAD_ANNOTATION(no_thread_safety_analysis)
