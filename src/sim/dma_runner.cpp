#include "sim/dma_runner.h"

#include <algorithm>

#include "common/assert.h"

namespace graphite::sim {

DmaRunner::DmaRunner(unsigned core, MemorySystem &mem,
                     const DmaParams &params, DmaWorkloadInfo info)
    : core_(core), mem_(mem), params_(params), info_(std::move(info))
{
    GRAPHITE_ASSERT(info_.graph != nullptr, "DMA workload needs a graph");
    GRAPHITE_ASSERT(params_.trackingEntries > 0,
                    "tracking table must have entries");
}

Cycles
DmaRunner::issueFetch(std::uint64_t byteAddr, Cycles earliest)
{
    Cycles issueTime = std::max(engineClock_, earliest);
    if (tracking_.size() >= params_.trackingEntries) {
        // All tracking entries busy: wait for the earliest to retire.
        auto soonest = std::min_element(tracking_.begin(), tracking_.end());
        issueTime = std::max(issueTime, *soonest);
        tracking_.erase(soonest);
    }
    // Retire any other entries that completed by the issue time.
    std::erase_if(tracking_,
                  [issueTime](Cycles t) { return t <= issueTime; });
    // One cycle of control occupancy per request.
    engineClock_ = issueTime + 1;
    const AccessOutcome outcome = mem_.access(
        core_, lineOf(byteAddr), false, issueTime, /*bypassPrivate=*/true);
    tracking_.push_back(outcome.completion);
    return outcome.completion;
}

Cycles
DmaRunner::fetchIndices(VertexId v)
{
    const CsrGraph &graph = *info_.graph;
    const EdgeId rowBegin = graph.rowBegin(v);
    const EdgeId rowEnd = graph.rowEnd(v);

    // Index fetches first (they gate everything, Figure 10). Indices are
    // 4-byte vertex ids packed in the CSR column array.
    Cycles idxReady = engineClock_;
    const std::uint64_t idxFirst =
        info_.addresses.colIdxBase + rowBegin * sizeof(VertexId);
    const std::uint64_t idxLast =
        rowEnd > rowBegin
            ? info_.addresses.colIdxBase + (rowEnd - 1) * sizeof(VertexId)
            : idxFirst;
    for (std::uint64_t line = lineOf(idxFirst); line <= lineOf(idxLast);
         ++line) {
        ++stats_.indexLineFetches;
        idxReady = std::max(idxReady,
                            issueFetch(line * kCacheLineBytes, 0));
    }
    // Factor fetches are indexed by edge offset, not by the gathered
    // indices, so they issue alongside the indices.
    if (info_.useFactors && rowEnd > rowBegin) {
        const std::uint64_t facFirst =
            info_.addresses.edgeFactorBase + rowBegin * sizeof(float);
        const std::uint64_t facLast =
            info_.addresses.edgeFactorBase + (rowEnd - 1) * sizeof(float);
        for (std::uint64_t line = lineOf(facFirst);
             line <= lineOf(facLast); ++line) {
            ++stats_.factorLineFetches;
            idxReady = std::max(idxReady,
                                issueFetch(line * kCacheLineBytes, 0));
        }
    }
    return idxReady;
}

Cycles
DmaRunner::processDescriptorBody(VertexId v, Cycles idxReady)
{
    ++stats_.descriptors;
    const Cycles start = engineClock_;
    const CsrGraph &graph = *info_.graph;
    const EdgeId rowBegin = graph.rowBegin(v);
    const EdgeId rowEnd = graph.rowEnd(v);
    const std::uint64_t numInputs = (rowEnd - rowBegin) + 1; // + self

    Cycles lastFetch = engineClock_;

    // Input feature rows: the self row plus one row per gathered index.
    // Their issue is gated on the index data (dependences, Figure 10).
    auto fetchRow = [&](VertexId u) {
        const std::uint64_t rowBase = info_.addresses.featureBase +
            static_cast<std::uint64_t>(u) *
                info_.addresses.featureStrideBytes;
        for (std::size_t l = 0; l < info_.featureLines; ++l) {
            ++stats_.inputLineFetches;
            lastFetch = std::max(
                lastFetch,
                issueFetch(rowBase + l * kCacheLineBytes, idxReady));
        }
    };
    fetchRow(v);
    for (EdgeId e = rowBegin; e < rowEnd; ++e)
        fetchRow(graph.colIdx()[e]);

    // Vector-unit reduction: E elements per input, `vectorLanes` floats
    // per cycle, overlapped with the fetch stream.
    const std::uint64_t elements = info_.featureLines *
        (kCacheLineBytes / sizeof(float));
    const Cycles compute = numInputs * elements / params_.vectorLanes;
    computeClock_ = std::max(computeClock_, engineClock_) + compute;

    // Flush the output buffer to L2 (Section 5.2): these lines become
    // L2-resident so the core's update phase hits them.
    const std::uint64_t outBase = info_.addresses.aggBase +
        static_cast<std::uint64_t>(v) * info_.addresses.aggStrideBytes;
    for (std::size_t l = 0; l < info_.aggLines; ++l) {
        mem_.installIntoL2(core_, lineOf(outBase + l * kCacheLineBytes));
        ++stats_.outputLinesWritten;
    }

    const Cycles done = std::max(lastFetch, computeClock_);
    engineClock_ = std::max(engineClock_, done);
    stats_.busyCycles += engineClock_ - start;
    return done;
}

void
DmaRunner::stageBatch(std::uint32_t batchId, std::vector<VertexId> vertices)
{
    staged_.emplace(batchId, std::move(vertices));
}

void
DmaRunner::issueStaged(std::uint32_t batchId, Cycles issueTime)
{
    auto it = staged_.find(batchId);
    GRAPHITE_ASSERT(it != staged_.end(), "issuing a batch never staged");
    PendingBatch batch;
    batch.id = batchId;
    batch.vertices = std::move(it->second);
    staged_.erase(it);
    // The engine cannot start this batch before the core issued it.
    engineClock_ = std::max(engineClock_, issueTime);
    batch.lastCompletion = engineClock_;
    pending_.push_back(std::move(batch));
}

void
DmaRunner::enqueueBatch(std::uint32_t batchId,
                        std::vector<VertexId> vertices, Cycles issueTime)
{
    stageBatch(batchId, std::move(vertices));
    issueStaged(batchId, issueTime);
}

bool
DmaRunner::processOne()
{
    if (pending_.empty())
        return false;
    PendingBatch &batch = pending_.front();
    if (batch.nextVertex < batch.vertices.size()) {
        const VertexId v = batch.vertices[batch.nextVertex];
        // This descriptor's indices may already be in flight from the
        // previous iteration's descriptor overlap.
        const Cycles idxReady =
            batch.idxStaged ? batch.stagedIdxReady : fetchIndices(v);
        // Prefetch the next descriptor's indices before streaming this
        // one's inputs, so their latency hides behind the input
        // stream (Section 5.2's concurrent second descriptor).
        if (batch.nextVertex + 1 < batch.vertices.size()) {
            batch.stagedIdxReady =
                fetchIndices(batch.vertices[batch.nextVertex + 1]);
            batch.idxStaged = true;
        } else {
            batch.idxStaged = false;
        }
        batch.lastCompletion = std::max(
            batch.lastCompletion, processDescriptorBody(v, idxReady));
        ++batch.nextVertex;
    }
    if (batch.nextVertex == batch.vertices.size()) {
        completions_[batch.id] = batch.lastCompletion;
        pending_.pop_front();
    }
    return true;
}

void
DmaRunner::processUntil(Cycles time)
{
    while (!pending_.empty() && engineClock_ < time)
        processOne();
}

bool
DmaRunner::processOneDescriptor()
{
    return processOne();
}

Cycles
DmaRunner::runBatchToCompletion(std::uint32_t batchId)
{
    while (!batchComplete(batchId)) {
        const bool progressed = processOne();
        GRAPHITE_ASSERT(progressed,
                        "waiting on a batch that was never issued");
    }
    return completions_.at(batchId);
}

bool
DmaRunner::batchComplete(std::uint32_t batchId) const
{
    return completions_.count(batchId) != 0;
}

Cycles
DmaRunner::completionOf(std::uint32_t batchId) const
{
    auto it = completions_.find(batchId);
    GRAPHITE_ASSERT(it != completions_.end(),
                    "querying completion of an unfinished batch");
    return it->second;
}

} // namespace graphite::sim
