/**
 * @file
 * Trace generators that mirror each GNN kernel variant's memory-access
 * and compute structure for the timing simulator.
 *
 * Each generator reproduces, per core, the exact stream shape of the
 * corresponding native kernel: which lines are loaded/stored in which
 * order, where software prefetches go, how work is scheduled across
 * cores (shared dynamic chunk cursor, like OpenMP-dynamic), and how many
 * compute cycles each unit of work costs under a simple per-line /
 * MACs-per-cycle cost model.
 */

#pragma once

#include <memory>

#include "graph/csr_graph.h"
#include "graph/reorder.h"
#include "sim/machine.h"

namespace graphite::sim {

/** Which layer implementation a simulated phase models. */
enum class LayerImpl {
    DistGnn,  ///< baseline: unfused, dynamic, no prefetch
    Mkl,      ///< SpMM+GEMM baseline: unfused, generic-kernel overhead
    Basic,    ///< Algorithm 1 + unfused GEMM update
    Fused,    ///< Algorithm 2
    DmaFused, ///< Algorithm 5 (DMA aggregation + core update)
};

/** One simulated GNN layer phase description. */
struct LayerWorkload
{
    const CsrGraph *graph = nullptr;
    /** Processing order, or null for identity (Section 4.4). */
    const ProcessingOrder *order = nullptr;
    std::size_t fIn = 256;
    std::size_t fOut = 256;
    LayerImpl impl = LayerImpl::Basic;

    /** Read input features in mask-compressed form (Section 4.3). */
    bool compressedIn = false;
    /** Write output features in mask-compressed form. */
    bool compressedOut = false;
    /** Sparsity assumed for compressed rows (uniform model). */
    double sparsity = 0.5;
    /** Materialise a^k to memory (training needs it; fused inference
     *  does not — Figure 5c). */
    bool writeAgg = true;
    /** Run the update phase (false = aggregation-only experiments). */
    bool doUpdate = true;
    /**
     * Which of the two ping-pong feature regions this layer reads
     * (0 or 1); it writes the other. Chained layers alternate so layer
     * k+1 reads the lines layer k wrote, keeping caches warm the way
     * back-to-back real layers do.
     */
    unsigned addrParity = 0;

    /** Kernel shape knobs (Algorithms 1/2 constants). @{ */
    std::size_t taskSize = 64;
    std::size_t blockSize = 16;
    std::size_t blocksPerTask = 4;
    std::size_t prefetchDistance = 4;
    std::size_t prefetchLines = 2;
    /** @} */

    /** Cost model: aggregation cycles per gathered cache line. */
    double computePerLine = 2.0;
    /** Cost model: update MACs retired per cycle (2 x 16-lane FMA at
     *  ~45% sustained efficiency for the small blocked GEMMs). */
    double macsPerCycle = 14.0;
};

/** Cache lines of one feature row of @p f floats (line-aligned rows). */
std::size_t featureRowLines(std::size_t f);

/** Cache lines of one compressed feature row at @p sparsity. */
std::size_t compressedRowLines(std::size_t f, double sparsity);

/**
 * Simulate one layer phase (or aggregation-only when !doUpdate) on
 * @p machine. Unfused implementations run aggregation and update as two
 * separate machine phases and return the summed result; stats are summed
 * too. Cache contents persist across the internal phases (and across
 * calls, mirroring back-to-back layers).
 */
RunResult simulateLayer(Machine &machine, const LayerWorkload &workload,
                        const DmaParams &dmaParams = {});

/** Composite results for whole-network experiments. */
struct CompositeResult
{
    Cycles totalCycles = 0;
    RunResult aggregate;

    /** Accumulate a phase into the composite. */
    void add(const RunResult &phase);
};

/**
 * GNN layer-stack descriptions used by the figure benches: the paper's
 * two-hidden-layer setup with F_hidden = 256.
 */
struct NetworkWorkload
{
    const CsrGraph *graph = nullptr;
    const ProcessingOrder *order = nullptr;
    /** Processing order for the backward (transposed) aggregations. */
    const ProcessingOrder *transposedOrder = nullptr;
    std::size_t fInput = 256;
    std::size_t fHidden = 256;
    std::size_t numLayers = 2;
    LayerImpl impl = LayerImpl::Basic;
    bool compression = false;
    double sparsity = 0.5;
    DmaParams dma;
    /** Apply the locality order (order must then be non-null). */
    bool locality = false;
};

/** Simulate full-network inference (Figure 11a / 12a measurements). */
CompositeResult simulateInference(Machine &machine,
                                  const NetworkWorkload &net);

/**
 * Simulate one full-batch training iteration: forward (keeping a^k)
 * plus backward (transposed aggregation of feature gradients + the
 * extra GEMM, Section 7.1.1).
 */
CompositeResult simulateTraining(Machine &machine,
                                 const NetworkWorkload &net,
                                 const CsrGraph &transposedGraph);

} // namespace graphite::sim
