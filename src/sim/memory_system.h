/**
 * @file
 * The simulated memory hierarchy: per-core private L1D/L2, one shared
 * non-inclusive L3, and a bandwidth-limited DRAM behind it.
 *
 * DRAM is modelled as shared channels with a fixed round-trip latency
 * plus a token-bucket occupancy: each line transfer holds the channel
 * for dramCyclesPerLine(), so when aggregate demand exceeds 140.8 GB/s a
 * queueing delay builds up — the mechanism behind every "DRAM bandwidth
 * bound" row in the paper's Table 4.
 */

#pragma once

#include <memory>
#include <vector>

#include "obs/metrics.h"
#include "sim/cache_model.h"

namespace graphite::sim {

/** Where an access was serviced from. */
enum class ServiceLevel { L1, L2, L3, DramBandwidth, DramLatency };

/** Outcome of one memory access through the hierarchy. */
struct AccessOutcome
{
    ServiceLevel level = ServiceLevel::L1;
    /** Absolute cycle at which the data is available. */
    Cycles completion = 0;
    /** Queueing delay suffered at DRAM (0 if not DRAM-serviced). */
    Cycles dramQueueing = 0;
};

/** DRAM accounting shared by all cores. */
struct DramStats
{
    std::uint64_t lineTransfers = 0;
    Cycles totalQueueing = 0;
    /** Lines fetched by the L2 hardware stream prefetcher. */
    std::uint64_t prefetchTransfers = 0;

    Bytes bytes() const { return lineTransfers * kCacheLineBytes; }
};

/** The full memory system of the simulated machine. */
class MemorySystem
{
  public:
    explicit MemorySystem(const MachineParams &params);

    /**
     * Demand access from @p core at time @p now.
     *
     * @param bypassPrivate model a DMA-engine access that skips the
     *        private L1/L2 and goes straight to the L3/directory
     *        (Section 5.2: DMA inputs never enter private caches).
     */
    AccessOutcome access(unsigned core, LineAddr line, bool isWrite,
                         Cycles now, bool bypassPrivate = false);

    /**
     * Install a line directly into a core's L2 (the DMA engine flushing
     * aggregation outputs to L2, Section 5.2).
     */
    void installIntoL2(unsigned core, LineAddr line);

    CacheModel &l1(unsigned core) { return *l1_[core]; }
    CacheModel &l2(unsigned core) { return *l2_[core]; }
    CacheModel &l3() { return *l3_; }
    const DramStats &dramStats() const { return dramStats_; }

    /** Drop all cached state and stats (between experiments). */
    void reset();

    /** Clear stats but keep cache contents (after a warm-up pass). */
    void clearStats();

    const MachineParams &params() const { return params_; }

  private:
    Cycles dramAccess(Cycles now, Cycles &queueing);

    MachineParams params_;
    std::vector<std::unique_ptr<CacheModel>> l1_;
    std::vector<std::unique_ptr<CacheModel>> l2_;
    std::unique_ptr<CacheModel> l3_;
    /**
     * Epoch-bucketed channel occupancy: each kDramEpoch-cycle window
     * can carry a bounded number of line transfers. Accesses that find
     * their window full spill into later windows — queueing delay —
     * regardless of the order the simulator happened to visit cores
     * in, which keeps contention accounting order-insensitive.
     */
    static constexpr Cycles kDramEpoch = 256;
    std::uint32_t epochCapacity_ = 0;
    std::vector<std::uint32_t> epochUse_;
    DramStats dramStats_;

    /**
     * Hierarchy traffic mirrored into the metrics registry (adds are
     * no-ops while the registry is disabled). Unlike dramStats_, these
     * accumulate across clearStats() — they describe the process, not
     * one measured phase.
     */
    obs::Counter &mL1Hits_;
    obs::Counter &mL2Hits_;
    obs::Counter &mL3Hits_;
    obs::Counter &mDramLines_;
    obs::Counter &mDramPrefetchLines_;
    obs::Counter &mDramQueueCycles_;
};

} // namespace graphite::sim
