/**
 * @file
 * The trace abstraction between workload generators and the timing
 * model: a per-core stream of micro-operations (loads, stores, software
 * prefetches, lumped compute, and DMA batch issue/wait markers).
 * Traces are generated lazily — graph-scale traces are far too large to
 * materialise.
 */

#pragma once

#include <cstdint>
#include <deque>

#include "common/types.h"

namespace graphite::sim {

/** One simulated micro-operation. */
struct TraceOp
{
    enum class Kind : std::uint8_t {
        Load,       ///< demand load of one cache line (addr)
        Store,      ///< store to one cache line (write-allocate)
        Prefetch,   ///< software prefetch hint: never stalls, droppable
        Compute,    ///< `cycles` cycles of pure compute
        IssueBatch, ///< enqueue DMA descriptor batch `batch` (Alg. 5)
        WaitBatch,  ///< block until DMA batch `batch` completes
    };

    Kind kind = Kind::Compute;
    std::uint64_t addr = 0;
    std::uint32_t cycles = 0;
    std::uint32_t batch = 0;

    static TraceOp
    load(std::uint64_t addr)
    {
        return {Kind::Load, addr, 0, 0};
    }

    static TraceOp
    store(std::uint64_t addr)
    {
        return {Kind::Store, addr, 0, 0};
    }

    static TraceOp
    prefetch(std::uint64_t addr)
    {
        return {Kind::Prefetch, addr, 0, 0};
    }

    static TraceOp
    compute(std::uint32_t cycles)
    {
        return {Kind::Compute, 0, cycles, 0};
    }

    static TraceOp
    issueBatch(std::uint32_t batch)
    {
        return {Kind::IssueBatch, 0, 0, batch};
    }

    static TraceOp
    waitBatch(std::uint32_t batch)
    {
        return {Kind::WaitBatch, 0, 0, batch};
    }
};

/** Lazily-evaluated per-core op stream. */
class WorkloadSource
{
  public:
    virtual ~WorkloadSource() = default;

    /** Produce the next op; false when the stream is exhausted. */
    virtual bool next(TraceOp &op) = 0;
};

/**
 * Convenience base: subclasses refill an op buffer one work unit (e.g.
 * one vertex or one block) at a time.
 */
class BufferedSource : public WorkloadSource
{
  public:
    bool
    next(TraceOp &op) override
    {
        while (buffer_.empty()) {
            if (!refill())
                return false;
        }
        op = buffer_.front();
        buffer_.pop_front();
        return true;
    }

  protected:
    /** Push the ops of the next work unit; false when no work remains. */
    virtual bool refill() = 0;

    void push(const TraceOp &op) { buffer_.push_back(op); }

    std::deque<TraceOp> buffer_;
};

} // namespace graphite::sim
