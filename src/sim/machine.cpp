#include "sim/machine.h"

#include <algorithm>

#include "common/assert.h"

namespace graphite::sim {

namespace {

double
fractionOf(const std::vector<CoreStats> &stats,
           Cycles CoreStats::*numerator)
{
    std::uint64_t num = 0;
    std::uint64_t den = 0;
    for (const CoreStats &core : stats) {
        num += core.*numerator;
        den += core.totalCycles;
    }
    return den ? static_cast<double>(num) / static_cast<double>(den) : 0.0;
}

} // namespace

double
RunResult::retiringFraction() const
{
    return fractionOf(coreStats, &CoreStats::computeCycles);
}

double
RunResult::memoryBoundFraction() const
{
    return fractionOf(coreStats, &CoreStats::stallCycles);
}

double
RunResult::stallL2Fraction() const
{
    return fractionOf(coreStats, &CoreStats::stallL2);
}

double
RunResult::stallL3Fraction() const
{
    return fractionOf(coreStats, &CoreStats::stallL3);
}

double
RunResult::stallDramBandwidthFraction() const
{
    return fractionOf(coreStats, &CoreStats::stallDramBandwidth);
}

double
RunResult::stallDramLatencyFraction() const
{
    return fractionOf(coreStats, &CoreStats::stallDramLatency);
}

double
RunResult::fillBufferFullFraction() const
{
    return fractionOf(coreStats, &CoreStats::fillBufferFullCycles);
}

double
RunResult::seconds(const MachineParams &params) const
{
    return static_cast<double>(makespan) / (params.coreGhz * 1e9);
}

Machine::Machine(const MachineParams &params)
    : params_(params), mem_(params)
{
}

RunResult
Machine::run(const SourceFactory &makeSource, const DmaWorkloadInfo *dmaInfo,
             const DmaParams &dmaParams)
{
    std::vector<std::unique_ptr<WorkloadSource>> sources;
    std::vector<std::unique_ptr<CoreRunner>> cores;
    dmaEngines_.clear();
    // Engines first: workload factories may capture their core's engine.
    if (dmaInfo) {
        for (unsigned c = 0; c < params_.numCores; ++c) {
            dmaEngines_.push_back(std::make_unique<DmaRunner>(
                c, mem_, dmaParams, *dmaInfo));
        }
    }
    for (unsigned c = 0; c < params_.numCores; ++c) {
        sources.push_back(makeSource(c));
        cores.push_back(std::make_unique<CoreRunner>(c, mem_,
                                                     *sources.back()));
        if (dmaInfo)
            cores.back()->attachDma(dmaEngines_[c].get());
    }

    // Interleave cores in global-time order so shared-resource
    // contention (the DRAM token bucket, the shared L3) is seen in
    // roughly the order real accesses would arrive: always step the
    // core whose clock is furthest behind, and only until it passes
    // the next-slowest core's clock. Letting one core run far ahead
    // would charge laggards fictitious queueing delay against the
    // monotonic DRAM-channel clock.
    std::size_t running = cores.size();
    while (running > 0) {
        CoreRunner *laggard = nullptr;
        Cycles secondNow = ~Cycles{0};
        for (auto &core : cores) {
            if (core->finished())
                continue;
            if (!laggard) {
                laggard = core.get();
            } else if (core->now() < laggard->now()) {
                secondNow = laggard->now();
                laggard = core.get();
            } else if (core->now() < secondNow) {
                secondNow = core->now();
            }
        }
        GRAPHITE_ASSERT(laggard != nullptr, "running count out of sync");
        do {
            if (laggard->step() == CoreRunner::StepResult::Finished) {
                --running;
                break;
            }
        } while (laggard->now() <= secondNow);
    }

    RunResult result;
    for (auto &core : cores) {
        result.coreStats.push_back(core->stats());
        result.makespan = std::max(result.makespan, core->now());
    }
    for (unsigned c = 0; c < params_.numCores; ++c) {
        const CacheStats &l1 = mem_.l1(c).stats();
        result.l1Total.accesses += l1.accesses;
        result.l1Total.hits += l1.hits;
        result.l1Total.misses += l1.misses;
        result.l1Total.writebacks += l1.writebacks;
        const CacheStats &l2 = mem_.l2(c).stats();
        result.l2Total.accesses += l2.accesses;
        result.l2Total.hits += l2.hits;
        result.l2Total.misses += l2.misses;
        result.l2Total.writebacks += l2.writebacks;
    }
    result.l3Stats = mem_.l3().stats();
    result.dram = mem_.dramStats();
    for (auto &engine : dmaEngines_)
        result.dmaStats.push_back(engine->stats());
    return result;
}

MachineParams
paperMachine(unsigned cacheShrink)
{
    GRAPHITE_ASSERT(cacheShrink >= 1, "cacheShrink must be >= 1");
    MachineParams params;
    // L2 and L3 shrink together so the machine's hierarchy keeps its
    // shape (28 private L2s must stay smaller than the shared L3, or
    // locality reuse lands in private caches the DMA engine bypasses —
    // the opposite of the paper's machine). The benches shrink the
    // weight matrices by the same class of factor so the weights:L2
    // ratio matches the paper's 256 KB : 1 MB. L1 keeps its size: one
    // feature row must still fit.
    params.l2.capacity /= cacheShrink;
    params.l3.capacity /= cacheShrink;
    return params;
}

} // namespace graphite::sim
