#include "sim/workloads.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace graphite::sim {

namespace {

/** Synthetic virtual-address regions for one layer's operands. */
struct LayerAddresses
{
    std::uint64_t colIdx = 0x0001'0000'0000ull;
    std::uint64_t edgeFactors = 0x0002'0000'0000ull;
    std::uint64_t inFeatures = 0x0010'0000'0000ull;
    std::uint64_t inMasks = 0x0014'0000'0000ull;
    std::uint64_t agg = 0x0020'0000'0000ull;
    std::uint64_t outFeatures = 0x0030'0000'0000ull;
    std::uint64_t outMasks = 0x0034'0000'0000ull;
    std::uint64_t weights = 0x0040'0000'0000ull;
    /** Per-core scratch (block buffers, descriptors): disjoint 1 MB. */
    std::uint64_t
    coreScratch(unsigned core) const
    {
        return 0x0050'0000'0000ull + core * (1ull << 20);
    }
};

/**
 * Two feature regions that layers ping-pong between, so layer k+1 reads
 * exactly the lines layer k wrote (warm-cache chaining).
 */
std::uint64_t
featureRegion(unsigned parity)
{
    return parity == 0 ? 0x0010'0000'0000ull : 0x0030'0000'0000ull;
}

std::uint64_t
maskRegion(unsigned parity)
{
    return parity == 0 ? 0x0014'0000'0000ull : 0x0034'0000'0000ull;
}

/** Shared dynamic-schedule cursor (single-threaded simulation host). */
struct SharedCursor
{
    std::size_t next = 0;
    std::size_t end = 0;

    /** Claim up to @p chunk indices; false when exhausted. */
    bool
    claim(std::size_t chunk, std::size_t &begin, std::size_t &endOut)
    {
        if (next >= end)
            return false;
        begin = next;
        endOut = std::min(next + chunk, end);
        next = endOut;
        return true;
    }
};

std::uint64_t
rowStrideBytes(std::size_t f)
{
    return featureRowLines(f) * kCacheLineBytes;
}

/** Common context shared by all of one phase's per-core sources. */
struct PhaseContext
{
    const LayerWorkload *w = nullptr;
    LayerAddresses addr;
    SharedCursor cursor;
    std::size_t inLines = 0;     ///< lines loaded per gathered row
    std::size_t inFullLines = 0; ///< dense lines per input row
    std::size_t aggLines = 0;
    std::size_t outLines = 0;        ///< lines stored per output row
    std::size_t weightLines = 0;
    /**
     * Compute charged per gathered row, in line-equivalents. For
     * compressed input this exceeds the traffic lines: the expand
     * operates over the full dense width and vexpandloadu chains cost
     * more than plain FMA (Section 4.3's overhead, the reason
     * compression loses below ~10-30% sparsity in Figure 14).
     */
    double aggComputeLines = 0.0;
    std::uint32_t updateComputePerRow = 0;

    VertexId
    vertexAt(std::size_t i) const
    {
        return w->order ? (*w->order)[i] : static_cast<VertexId>(i);
    }
};

PhaseContext
makeContext(const LayerWorkload &w)
{
    PhaseContext ctx;
    ctx.w = &w;
    ctx.addr.inFeatures = featureRegion(w.addrParity);
    ctx.addr.inMasks = maskRegion(w.addrParity);
    ctx.addr.outFeatures = featureRegion(w.addrParity ^ 1u);
    ctx.addr.outMasks = maskRegion(w.addrParity ^ 1u);
    ctx.cursor.end = w.graph->numVertices();
    ctx.inFullLines = featureRowLines(w.fIn);
    ctx.inLines = w.compressedIn
        ? compressedRowLines(w.fIn, w.sparsity) : ctx.inFullLines;
    ctx.aggLines = featureRowLines(w.fIn);
    ctx.outLines = w.compressedOut
        ? compressedRowLines(w.fOut, w.sparsity) : featureRowLines(w.fOut);
    ctx.weightLines =
        (w.fIn * w.fOut * sizeof(float) + kCacheLineBytes - 1) /
        kCacheLineBytes;
    ctx.aggComputeLines = w.compressedIn
        ? static_cast<double>(ctx.inFullLines) * 1.4
        : static_cast<double>(ctx.inLines);
    ctx.updateComputePerRow = static_cast<std::uint32_t>(
        static_cast<double>(w.fIn) * w.fOut / w.macsPerCycle);
    if (w.compressedOut) {
        // Mask generation + bubble-collapse of the produced row.
        ctx.updateComputePerRow += static_cast<std::uint32_t>(
            featureRowLines(w.fOut) * w.computePerLine);
    }
    return ctx;
}

/** Base class with the shared emission helpers. */
class LayerSourceBase : public BufferedSource
{
  public:
    LayerSourceBase(PhaseContext &ctx, unsigned core)
        : ctx_(ctx), core_(core)
    {
    }

  protected:
    const LayerWorkload &w() const { return *ctx_.w; }

    /** Loads of the CSR index/factor lines of vertex @p v's row. */
    void
    emitIndexLoads(VertexId v)
    {
        const CsrGraph &graph = *w().graph;
        const EdgeId rowBegin = graph.rowBegin(v);
        const EdgeId rowEnd = graph.rowEnd(v);
        if (rowEnd == rowBegin)
            return;
        const std::uint64_t first =
            ctx_.addr.colIdx + rowBegin * sizeof(VertexId);
        const std::uint64_t last =
            ctx_.addr.colIdx + (rowEnd - 1) * sizeof(VertexId);
        for (std::uint64_t line = lineOf(first); line <= lineOf(last);
             ++line) {
            push(TraceOp::load(line * kCacheLineBytes));
        }
        // ψ factor array: one float per edge, streamed alongside.
        const std::uint64_t facFirst =
            ctx_.addr.edgeFactors + rowBegin * sizeof(float);
        const std::uint64_t facLast =
            ctx_.addr.edgeFactors + (rowEnd - 1) * sizeof(float);
        for (std::uint64_t line = lineOf(facFirst);
             line <= lineOf(facLast); ++line) {
            push(TraceOp::load(line * kCacheLineBytes));
        }
    }

    /** Loads of one gathered input feature row. */
    void
    emitRowLoads(VertexId u)
    {
        const std::uint64_t base = ctx_.addr.inFeatures +
            static_cast<std::uint64_t>(u) * rowStrideBytes(w().fIn);
        for (std::size_t l = 0; l < ctx_.inLines; ++l)
            push(TraceOp::load(base + l * kCacheLineBytes));
        if (w().compressedIn) {
            // One mask load; masks of many rows share lines, the cache
            // model captures the reuse.
            const std::uint64_t mask = ctx_.addr.inMasks +
                static_cast<std::uint64_t>(u) * (w().fIn / 8);
            push(TraceOp::load(mask));
        }
    }

    /** Software prefetch of the row gathered @p distance ahead. */
    void
    emitPrefetch(std::size_t index, std::size_t end)
    {
        if (w().prefetchDistance == 0 ||
            index + w().prefetchDistance >= end) {
            return;
        }
        const VertexId next = ctx_.vertexAt(index + w().prefetchDistance);
        for (VertexId u : w().graph->neighbors(next)) {
            const std::uint64_t base = ctx_.addr.inFeatures +
                static_cast<std::uint64_t>(u) * rowStrideBytes(w().fIn);
            const std::size_t lines =
                std::min(w().prefetchLines, ctx_.inLines);
            for (std::size_t l = 0; l < lines; ++l)
                push(TraceOp::prefetch(base + l * kCacheLineBytes));
        }
    }

    /** Aggregation of vertex @p v: index + gathers + compute. */
    void
    emitAggregation(VertexId v)
    {
        emitIndexLoads(v);
        emitRowLoads(v); // self term
        std::size_t gathered = 1;
        for (VertexId u : w().graph->neighbors(v)) {
            emitRowLoads(u);
            ++gathered;
        }
        const auto cycles = static_cast<std::uint32_t>(
            std::ceil(static_cast<double>(gathered) *
                      ctx_.aggComputeLines * w().computePerLine));
        push(TraceOp::compute(cycles));
    }

    /** Store a^k row of @p v to its home location. */
    void
    emitAggStore(VertexId v)
    {
        const std::uint64_t base = ctx_.addr.agg +
            static_cast<std::uint64_t>(v) * rowStrideBytes(w().fIn);
        for (std::size_t l = 0; l < ctx_.aggLines; ++l)
            push(TraceOp::store(base + l * kCacheLineBytes));
    }

    /** Store the finished h^k row of @p v (packed when compressedOut). */
    void
    emitOutputStore(VertexId v)
    {
        const std::uint64_t base = ctx_.addr.outFeatures +
            static_cast<std::uint64_t>(v) * rowStrideBytes(w().fOut);
        for (std::size_t l = 0; l < ctx_.outLines; ++l)
            push(TraceOp::store(base + l * kCacheLineBytes));
        if (w().compressedOut) {
            const std::uint64_t mask = ctx_.addr.outMasks +
                static_cast<std::uint64_t>(v) * (w().fOut / 8);
            push(TraceOp::store(mask));
        }
    }

    /** Touch the whole weight matrix once (per block GEMM panel walk). */
    void
    emitWeightLoads()
    {
        for (std::size_t l = 0; l < ctx_.weightLines; ++l)
            push(TraceOp::load(ctx_.addr.weights + l * kCacheLineBytes));
    }

    PhaseContext &ctx_;
    unsigned core_;
};

/** Aggregation-only phase (Algorithm 1 and both unfused baselines). */
class AggPhaseSource : public LayerSourceBase
{
  public:
    using LayerSourceBase::LayerSourceBase;

  protected:
    bool
    refill() override
    {
        if (i_ >= end_ && !ctx_.cursor.claim(w().taskSize, i_, end_))
            return false;
        const VertexId v = ctx_.vertexAt(i_);
        emitAggregation(v);
        if (w().writeAgg)
            emitAggStore(v);
        emitPrefetch(i_, end_);
        ++i_;
        return true;
    }

  private:
    std::size_t i_ = 0;
    std::size_t end_ = 0;
};

/** Streaming update phase of the unfused implementations. */
class UpdatePhaseSource : public LayerSourceBase
{
  public:
    using LayerSourceBase::LayerSourceBase;

    static constexpr std::size_t kRowBlock = 32;

  protected:
    bool
    refill() override
    {
        std::size_t begin = 0;
        std::size_t end = 0;
        if (!ctx_.cursor.claim(kRowBlock, begin, end))
            return false;
        emitWeightLoads();
        for (std::size_t i = begin; i < end; ++i) {
            const VertexId v = ctx_.vertexAt(i);
            const std::uint64_t base = ctx_.addr.agg +
                static_cast<std::uint64_t>(v) * rowStrideBytes(w().fIn);
            for (std::size_t l = 0; l < ctx_.aggLines; ++l)
                push(TraceOp::load(base + l * kCacheLineBytes));
            push(TraceOp::compute(ctx_.updateComputePerRow));
            emitOutputStore(v);
        }
        return true;
    }
};

/** Fused aggregation+update (Algorithm 2). */
class FusedPhaseSource : public LayerSourceBase
{
  public:
    using LayerSourceBase::LayerSourceBase;

  protected:
    bool
    refill() override
    {
        const std::size_t task = w().blockSize * w().blocksPerTask;
        std::size_t begin = 0;
        std::size_t end = 0;
        if (!ctx_.cursor.claim(task, begin, end))
            return false;
        const std::uint64_t blockBuf = ctx_.addr.coreScratch(core_);
        for (std::size_t j = begin; j < end; j += w().blockSize) {
            const std::size_t blockEnd = std::min(j + w().blockSize, end);
            // Aggregation into the reusable block buffer (Figure 5c).
            for (std::size_t i = j; i < blockEnd; ++i) {
                const VertexId v = ctx_.vertexAt(i);
                emitAggregation(v);
                const std::uint64_t bufRow = blockBuf +
                    (i - j) * rowStrideBytes(w().fIn);
                for (std::size_t l = 0; l < ctx_.aggLines; ++l)
                    push(TraceOp::store(bufRow + l * kCacheLineBytes));
                if (w().writeAgg)
                    emitAggStore(v); // training keeps a^k (Figure 5b)
                emitPrefetch(i, end);
            }
            // Update of the block while it is cache-resident.
            emitWeightLoads();
            for (std::size_t i = j; i < blockEnd; ++i) {
                const VertexId v = ctx_.vertexAt(i);
                const std::uint64_t bufRow = blockBuf +
                    (i - j) * rowStrideBytes(w().fIn);
                for (std::size_t l = 0; l < ctx_.aggLines; ++l)
                    push(TraceOp::load(bufRow + l * kCacheLineBytes));
                push(TraceOp::compute(ctx_.updateComputePerRow));
                emitOutputStore(v);
            }
        }
        return true;
    }
};

/** Core side of the DMA-offloaded fused pipeline (Algorithm 5). */
class DmaPhaseSource : public LayerSourceBase
{
  public:
    DmaPhaseSource(PhaseContext &ctx, unsigned core, DmaRunner *dma)
        : LayerSourceBase(ctx, core), dma_(dma)
    {
        GRAPHITE_ASSERT(dma_ != nullptr, "DMA source needs an engine");
    }

  protected:
    bool
    refill() override
    {
        const std::size_t task = w().blockSize * w().blocksPerTask;
        std::size_t begin = 0;
        std::size_t end = 0;
        if (!ctx_.cursor.claim(task, begin, end)) {
            if (!pending_.empty()) {
                // Trailing update (Algorithm 5 lines 15-20).
                push(TraceOp::waitBatch(pendingBatch_));
                if (w().doUpdate)
                    emitUpdate(pendingBatch_, pending_);
                pending_.clear();
                return true;
            }
            return false;
        }
        for (std::size_t j = begin; j < end; j += w().blockSize) {
            const std::size_t blockEnd = std::min(j + w().blockSize, end);
            std::vector<VertexId> block;
            block.reserve(blockEnd - j);
            for (std::size_t i = j; i < blockEnd; ++i)
                block.push_back(ctx_.vertexAt(i));
            // Build + enqueue one descriptor per vertex: one 64-B store
            // and a few cycles of control work each (Alg. 5 lines 5-7).
            const std::uint64_t desc = ctx_.addr.coreScratch(core_) +
                (1u << 19); // descriptor ring above the block buffer
            for (std::size_t m = 0; m < block.size(); ++m) {
                push(TraceOp::store(desc + (m % 64) * kCacheLineBytes));
                push(TraceOp::compute(4));
            }
            const std::uint32_t batch = nextBatch_++;
            dma_->stageBatch(batch, block);
            push(TraceOp::issueBatch(batch));
            // Ping-pong: wait for and update the *previous* batch while
            // the engine aggregates this one (Alg. 5 lines 8-13).
            if (!pending_.empty()) {
                push(TraceOp::waitBatch(pendingBatch_));
                if (w().doUpdate)
                    emitUpdate(pendingBatch_, pending_);
            }
            pending_ = std::move(block);
            pendingBatch_ = batch;
        }
        return true;
    }

  private:
    void
    emitUpdate(std::uint32_t batch, const std::vector<VertexId> &block)
    {
        (void)batch;
        emitWeightLoads();
        for (VertexId v : block) {
            // a^k rows were flushed into our L2 by the engine.
            const std::uint64_t base = ctx_.addr.agg +
                static_cast<std::uint64_t>(v) * rowStrideBytes(w().fIn);
            for (std::size_t l = 0; l < ctx_.aggLines; ++l)
                push(TraceOp::load(base + l * kCacheLineBytes));
            push(TraceOp::compute(ctx_.updateComputePerRow));
            emitOutputStore(v);
        }
    }

    DmaRunner *dma_;
    std::vector<VertexId> pending_;
    std::uint32_t pendingBatch_ = 0;
    std::uint32_t nextBatch_ = 1;
};

/** Merge phase stats into an accumulating result. */
void
accumulate(RunResult &total, const RunResult &phase)
{
    total.makespan += phase.makespan;
    if (total.coreStats.size() < phase.coreStats.size())
        total.coreStats.resize(phase.coreStats.size());
    for (std::size_t c = 0; c < phase.coreStats.size(); ++c) {
        CoreStats &dst = total.coreStats[c];
        const CoreStats &src = phase.coreStats[c];
        dst.totalCycles += src.totalCycles;
        dst.computeCycles += src.computeCycles;
        dst.stallCycles += src.stallCycles;
        dst.stallL2 += src.stallL2;
        dst.stallL3 += src.stallL3;
        dst.stallDramBandwidth += src.stallDramBandwidth;
        dst.stallDramLatency += src.stallDramLatency;
        dst.fillBufferFullCycles += src.fillBufferFullCycles;
        dst.dmaWaitCycles += src.dmaWaitCycles;
        dst.loads += src.loads;
        dst.stores += src.stores;
        dst.prefetchesIssued += src.prefetchesIssued;
        dst.prefetchesDropped += src.prefetchesDropped;
    }
    auto addCache = [](CacheStats &dst, const CacheStats &src) {
        dst.accesses += src.accesses;
        dst.hits += src.hits;
        dst.misses += src.misses;
        dst.writebacks += src.writebacks;
    };
    addCache(total.l1Total, phase.l1Total);
    addCache(total.l2Total, phase.l2Total);
    addCache(total.l3Stats, phase.l3Stats);
    total.dram.lineTransfers += phase.dram.lineTransfers;
    total.dram.totalQueueing += phase.dram.totalQueueing;
    if (total.dmaStats.size() < phase.dmaStats.size())
        total.dmaStats.resize(phase.dmaStats.size());
    for (std::size_t c = 0; c < phase.dmaStats.size(); ++c) {
        DmaStats &dst = total.dmaStats[c];
        const DmaStats &src = phase.dmaStats[c];
        dst.descriptors += src.descriptors;
        dst.indexLineFetches += src.indexLineFetches;
        dst.inputLineFetches += src.inputLineFetches;
        dst.factorLineFetches += src.factorLineFetches;
        dst.outputLinesWritten += src.outputLinesWritten;
        dst.busyCycles += src.busyCycles;
    }
}

} // namespace

std::size_t
featureRowLines(std::size_t f)
{
    return (f * sizeof(float) + kCacheLineBytes - 1) / kCacheLineBytes;
}

std::size_t
compressedRowLines(std::size_t f, double sparsity)
{
    const auto nonZeros = static_cast<std::size_t>(
        std::ceil(static_cast<double>(f) * (1.0 - sparsity)));
    const std::size_t lines =
        (nonZeros * sizeof(float) + kCacheLineBytes - 1) / kCacheLineBytes;
    return std::max<std::size_t>(lines, 1);
}

RunResult
simulateLayer(Machine &machine, const LayerWorkload &workload,
              const DmaParams &dmaParams)
{
    GRAPHITE_ASSERT(workload.graph != nullptr, "workload needs a graph");
    GRAPHITE_ASSERT(!workload.order ||
                        workload.order->size() ==
                            workload.graph->numVertices(),
                    "order size mismatch");

    PhaseContext ctx = makeContext(workload);

    switch (workload.impl) {
      case LayerImpl::DistGnn:
      case LayerImpl::Mkl:
      case LayerImpl::Basic: {
        machine.memory().clearStats();
        RunResult total;
        RunResult agg = machine.run([&](unsigned core) {
            return std::make_unique<AggPhaseSource>(ctx, core);
        });
        accumulate(total, agg);
        if (workload.doUpdate) {
            ctx.cursor = SharedCursor{0, workload.graph->numVertices()};
            machine.memory().clearStats();
            RunResult update = machine.run([&](unsigned core) {
                return std::make_unique<UpdatePhaseSource>(ctx, core);
            });
            accumulate(total, update);
        }
        return total;
      }
      case LayerImpl::Fused: {
        machine.memory().clearStats();
        return machine.run([&](unsigned core) {
            return std::make_unique<FusedPhaseSource>(ctx, core);
        });
      }
      case LayerImpl::DmaFused: {
        machine.memory().clearStats();
        DmaWorkloadInfo info;
        info.graph = workload.graph;
        info.addresses.colIdxBase = ctx.addr.colIdx;
        info.addresses.edgeFactorBase = ctx.addr.edgeFactors;
        info.addresses.featureBase = ctx.addr.inFeatures;
        info.addresses.featureStrideBytes = rowStrideBytes(workload.fIn);
        info.addresses.aggBase = ctx.addr.agg;
        info.addresses.aggStrideBytes = rowStrideBytes(workload.fIn);
        info.featureLines = ctx.inFullLines; // DMA reads dense rows (§5)
        info.aggLines = ctx.aggLines;
        info.useFactors = true;
        return machine.run(
            [&](unsigned core) -> std::unique_ptr<WorkloadSource> {
                // The machine attaches engines before sources run; the
                // source needs its engine, so fetch it lazily via the
                // machine after construction. Here we rely on the
                // factory being called after the engine for `core` is
                // created (see Machine::run ordering).
                return std::make_unique<DmaPhaseSource>(
                    ctx, core, machine.dmaEngines()[core].get());
            },
            &info, dmaParams);
      }
    }
    panic("unknown layer implementation");
}

void
CompositeResult::add(const RunResult &phase)
{
    totalCycles += phase.makespan;
    accumulate(aggregate, phase);
}

namespace {

/** Layer widths of the simulated network. */
std::vector<std::pair<std::size_t, std::size_t>>
layerShapes(const NetworkWorkload &net)
{
    std::vector<std::pair<std::size_t, std::size_t>> shapes;
    std::size_t in = net.fInput;
    for (std::size_t k = 0; k < net.numLayers; ++k) {
        shapes.emplace_back(in, net.fHidden);
        in = net.fHidden;
    }
    return shapes;
}

LayerWorkload
baseLayer(const NetworkWorkload &net, std::size_t fIn, std::size_t fOut)
{
    LayerWorkload w;
    w.graph = net.graph;
    w.order = net.locality ? net.order : nullptr;
    w.fIn = fIn;
    w.fOut = fOut;
    w.impl = net.impl;
    w.sparsity = net.sparsity;
    // Fused blocks of 32 rows amortise the weight-panel walk at the
    // same rate as the unfused update's row blocks.
    w.blockSize = 32;
    w.blocksPerTask = 2;
    // The baselines are themselves optimized libraries: they prefetch
    // too. What distinguishes `basic` is the JIT-specialised kernel
    // (paper Section 4.1) — lower per-line compute cost — and dynamic
    // fine-grained task scheduling.
    if (net.impl == LayerImpl::DistGnn) {
        w.computePerLine = 2.2; // generic-kernel overhead vs JIT
    } else if (net.impl == LayerImpl::Mkl) {
        w.computePerLine = 2.4;
        w.prefetchDistance = 2; // SpMM library prefetches less deeply
    }
    return w;
}

} // namespace

CompositeResult
simulateInference(Machine &machine, const NetworkWorkload &net)
{
    CompositeResult result;
    const auto shapes = layerShapes(net);
    for (std::size_t k = 0; k < shapes.size(); ++k) {
        LayerWorkload w = baseLayer(net, shapes[k].first,
                                    shapes[k].second);
        w.addrParity = static_cast<unsigned>(k % 2);
        // Inference never materialises a^k when fused (Figure 5c).
        w.writeAgg = net.impl != LayerImpl::Fused &&
                     net.impl != LayerImpl::DmaFused;
        w.compressedIn = net.compression;
        w.compressedOut = net.compression && k + 1 < shapes.size();
        result.add(simulateLayer(machine, w, net.dma));
    }
    return result;
}

CompositeResult
simulateTraining(Machine &machine, const NetworkWorkload &net,
                 const CsrGraph &transposedGraph)
{
    CompositeResult result;
    const auto shapes = layerShapes(net);

    // Forward: identical to inference except a^k is kept (Figure 5b).
    for (std::size_t k = 0; k < shapes.size(); ++k) {
        LayerWorkload w = baseLayer(net, shapes[k].first,
                                    shapes[k].second);
        w.addrParity = static_cast<unsigned>(k % 2);
        w.writeAgg = true;
        w.compressedIn = net.compression;
        w.compressedOut = net.compression && k + 1 < shapes.size();
        result.add(simulateLayer(machine, w, net.dma));
    }

    // Backward, outermost layer first. Per layer (Section 7.1.1):
    //   dz = dh ⊙ ReLU'  (elementwise, folded into the GEMM stream)
    //   dW = aᵀ·dz, da = dz·Wᵀ   — one extra GEMM vs forward
    //   dh_prev = Aggᵀ(da)       — aggregation over the transposed graph
    //
    // The techniques apply here exactly as they do forward: fusion
    // overlaps the da GEMM with the transposed gather, compression
    // exploits the gradients' sparsity (ReLU backward zeroes the same
    // positions the forward zeroed, Section 2.2), and the locality
    // order — amortised over epochs — covers both edge directions.
    const bool fusedImpl = net.impl == LayerImpl::Fused ||
                           net.impl == LayerImpl::DmaFused;
    for (std::size_t k = shapes.size(); k-- > 0;) {
        // Standalone GEMM stream: dW (plus da when unfused).
        LayerWorkload gemms = baseLayer(net, shapes[k].first,
                                        shapes[k].second);
        gemms.writeAgg = false;
        gemms.doUpdate = true;
        if (!fusedImpl)
            gemms.macsPerCycle = gemms.macsPerCycle / 2.0; // dW and da
        PhaseContext ctx = makeContext(gemms);
        machine.memory().clearStats();
        RunResult gemmPhase = machine.run([&](unsigned core) {
            return std::make_unique<UpdatePhaseSource>(ctx, core);
        });
        result.add(gemmPhase);

        // Transposed aggregation of the (sparse) feature gradients.
        // Unfused: the materialised dAgg (width F_{k-1}) is gathered
        // and dh_prev written out (writeAgg). Fused: the commuted
        // kernel gathers the F_k-wide dz rows into a core-resident
        // block buffer (never stored — writeAgg off), micro-GEMMs it
        // through Wᵀ and stores only the F_{k-1}-wide dh_prev rows;
        // dAgg never exists in DRAM.
        if (k > 0) {
            LayerWorkload bwdAgg =
                fusedImpl
                    ? baseLayer(net, shapes[k].second, shapes[k].first)
                    : baseLayer(net, shapes[k].first, shapes[k].first);
            bwdAgg.graph = &transposedGraph;
            bwdAgg.order = net.locality ? net.transposedOrder : nullptr;
            bwdAgg.compressedIn = net.compression;
            bwdAgg.compressedOut = false; // dh_prev feeds a GEMM next
            bwdAgg.writeAgg = !fusedImpl;
            bwdAgg.doUpdate = fusedImpl; // the fused-in da·Wᵀ GEMM
            if (fusedImpl)
                bwdAgg.impl = net.impl;
            result.add(simulateLayer(machine, bwdAgg, net.dma));
        }
    }
    return result;
}

} // namespace graphite::sim
