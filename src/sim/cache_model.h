/**
 * @file
 * Functional set-associative cache model (LRU, write-back,
 * write-allocate) operating on 64-byte line addresses.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "sim/sim_params.h"

namespace graphite::sim {

/** Line-granular address (byte address >> 6). */
using LineAddr = std::uint64_t;

/** Convert a byte address to its line address. */
inline LineAddr
lineOf(std::uint64_t byteAddr)
{
    return byteAddr / kCacheLineBytes;
}

/** Access statistics of one cache instance. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t writebacks = 0;

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) / accesses : 0.0;
    }
};

/** One set-associative LRU cache. */
class CacheModel
{
  public:
    /** @param params geometry; capacity/ways/linesize define the sets. */
    explicit CacheModel(const CacheParams &params);

    /**
     * Look up @p line; on hit, refresh LRU (and set dirty if @p isWrite).
     * @return true on hit.
     */
    bool access(LineAddr line, bool isWrite);

    /**
     * Insert @p line (after a miss was serviced below). May evict;
     * @return true if the victim was dirty (a writeback happened).
     */
    bool insert(LineAddr line, bool isWrite);

    /** Probe without updating LRU or stats. */
    bool contains(LineAddr line) const;

    /** Invalidate every line (between experiment phases). */
    void reset();

    const CacheStats &stats() const { return stats_; }
    void clearStats() { stats_ = CacheStats{}; }

    std::size_t numSets() const { return numSets_; }

  private:
    struct Way
    {
        LineAddr tag = ~LineAddr{0};
        std::uint64_t lastUse = 0;
        bool valid = false;
        bool dirty = false;
    };

    std::size_t setOf(LineAddr line) const { return line % numSets_; }

    unsigned ways_;
    std::size_t numSets_;
    std::vector<Way> entries_;
    std::uint64_t useClock_ = 0;
    CacheStats stats_;
};

} // namespace graphite::sim
