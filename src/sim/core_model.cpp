#include "sim/core_model.h"

#include <algorithm>

#include "common/assert.h"
#include "sim/dma_runner.h"

namespace graphite::sim {

CoreRunner::CoreRunner(unsigned id, MemorySystem &mem,
                       WorkloadSource &source)
    : id_(id), mem_(mem), source_(source)
{
    fillBuffers_.reserve(mem.params().fillBuffers);
}

void
CoreRunner::retireFillBuffers()
{
    std::erase_if(fillBuffers_, [this](const FillBuffer &fb) {
        return fb.completion <= now_;
    });
}

void
CoreRunner::attributeStall(Cycles cycles, ServiceLevel level)
{
    stats_.stallCycles += cycles;
    switch (level) {
      case ServiceLevel::L1:
        break;
      case ServiceLevel::L2:
        stats_.stallL2 += cycles;
        break;
      case ServiceLevel::L3:
        stats_.stallL3 += cycles;
        break;
      case ServiceLevel::DramBandwidth:
        stats_.stallDramBandwidth += cycles;
        break;
      case ServiceLevel::DramLatency:
        stats_.stallDramLatency += cycles;
        break;
    }
}

void
CoreRunner::waitForFreeFillBuffer()
{
    auto soonest = std::min_element(
        fillBuffers_.begin(), fillBuffers_.end(),
        [](const FillBuffer &a, const FillBuffer &b) {
            return a.completion < b.completion;
        });
    GRAPHITE_ASSERT(soonest != fillBuffers_.end(), "no buffer to wait on");
    const Cycles delta = soonest->completion - now_;
    attributeStall(delta, soonest->level);
    stats_.fillBufferFullCycles += delta;
    now_ = soonest->completion;
    retireFillBuffers();
}

void
CoreRunner::doMemOp(std::uint64_t addr, bool isWrite)
{
    retireFillBuffers();
    // Probe first: L1 hits are pipelined and effectively free here (the
    // workload generators fold load-issue cost into compute cycles).
    if (mem_.l1(id_).contains(lineOf(addr))) {
        mem_.access(id_, lineOf(addr), isWrite, now_);
        return;
    }
    if (fillBuffers_.size() >= mem_.params().fillBuffers)
        waitForFreeFillBuffer();
    const AccessOutcome outcome =
        mem_.access(id_, lineOf(addr), isWrite, now_);
    if (outcome.level == ServiceLevel::L1)
        return;
    fillBuffers_.push_back({outcome.completion, outcome.level});
}

CoreRunner::StepResult
CoreRunner::step()
{
    // A pending Alg. 5 WAIT blocks the core; drive the engine forward
    // one descriptor per machine step so engine traffic interleaves
    // with the other cores' in global-time order rather than bursting.
    if (waiting_) {
        if (!dma_->batchComplete(waitBatch_)) {
            dma_->processOneDescriptor();
            now_ = std::max(now_, dma_->engineClock());
            stats_.totalCycles = now_;
            return StepResult::Progress;
        }
        const Cycles done = dma_->completionOf(waitBatch_);
        now_ = std::max(now_, done);
        if (now_ > waitStart_) {
            const Cycles delta = now_ - waitStart_;
            // Waiting on the DMA engine is memory-system time (the
            // engine is fetching from DRAM on the core's behalf).
            stats_.dmaWaitCycles += delta;
            attributeStall(delta, ServiceLevel::DramBandwidth);
        }
        waiting_ = false;
    }
    // Keep the paired engine's clock abreast of the core's so its
    // traffic enters the shared DRAM model in near global-time order.
    if (dma_ && dma_->hasPendingWork())
        dma_->processUntil(now_);
    TraceOp op;
    if (!source_.next(op)) {
        drain();
        finished_ = true;
        stats_.totalCycles = now_;
        return StepResult::Finished;
    }
    switch (op.kind) {
      case TraceOp::Kind::Compute:
        now_ += op.cycles;
        stats_.computeCycles += op.cycles;
        break;
      case TraceOp::Kind::Load:
        ++stats_.loads;
        doMemOp(op.addr, false);
        break;
      case TraceOp::Kind::Store:
        ++stats_.stores;
        doMemOp(op.addr, true);
        break;
      case TraceOp::Kind::Prefetch: {
        retireFillBuffers();
        // Prefetches never stall: dropped when the fill buffers are
        // saturated (exactly why the paper limits prefetch to the first
        // two lines of each feature vector).
        if (fillBuffers_.size() >= mem_.params().fillBuffers) {
            ++stats_.prefetchesDropped;
            break;
        }
        if (mem_.l1(id_).contains(lineOf(op.addr)))
            break;
        const AccessOutcome outcome =
            mem_.access(id_, lineOf(op.addr), false, now_);
        if (outcome.level != ServiceLevel::L1)
            fillBuffers_.push_back({outcome.completion, outcome.level});
        ++stats_.prefetchesIssued;
        break;
      }
      case TraceOp::Kind::IssueBatch:
        GRAPHITE_ASSERT(dma_ != nullptr, "IssueBatch without DMA engine");
        // The workload source staged the batch's vertices before
        // emitting this op; issuing here binds the engine start time to
        // the core's clock, which is what creates the Alg. 5 overlap.
        dma_->issueStaged(op.batch, now_);
        break;
      case TraceOp::Kind::WaitBatch:
        GRAPHITE_ASSERT(dma_ != nullptr, "WaitBatch without DMA engine");
        // Resolved incrementally at the top of subsequent step() calls.
        waiting_ = true;
        waitBatch_ = op.batch;
        waitStart_ = now_;
        break;
    }
    stats_.totalCycles = now_;
    return StepResult::Progress;
}

void
CoreRunner::drain()
{
    while (!fillBuffers_.empty())
        waitForFreeFillBuffer();
    stats_.totalCycles = now_;
}

} // namespace graphite::sim
