/**
 * @file
 * The simulated multi-core machine: owns the memory system, one
 * CoreRunner per hardware thread (plus optionally one DmaRunner per
 * core) and interleaves core execution in global-time order so that
 * DRAM-bandwidth contention between cores is captured.
 */

#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "sim/core_model.h"
#include "sim/dma_runner.h"

namespace graphite::sim {

/** Aggregated result of one simulated run. */
struct RunResult
{
    /** Wall time of the phase = slowest core's finish time. */
    Cycles makespan = 0;
    std::vector<CoreStats> coreStats;
    /** Private cache stats summed over cores. */
    CacheStats l1Total;
    CacheStats l2Total;
    CacheStats l3Stats;
    DramStats dram;
    std::vector<DmaStats> dmaStats;

    /** Machine-wide top-down fractions (Figure 3 / Table 4 rows). @{ */
    double retiringFraction() const;
    double memoryBoundFraction() const;
    double stallL2Fraction() const;
    double stallL3Fraction() const;
    double stallDramBandwidthFraction() const;
    double stallDramLatencyFraction() const;
    double fillBufferFullFraction() const;
    /** @} */

    /** Seconds at the configured core frequency. */
    double seconds(const MachineParams &params) const;
};

/** Factory producing core @p i's workload source. */
using SourceFactory =
    std::function<std::unique_ptr<WorkloadSource>(unsigned core)>;

/** Multi-core trace-driven machine. */
class Machine
{
  public:
    explicit Machine(const MachineParams &params);

    MemorySystem &memory() { return mem_; }
    const MachineParams &params() const { return params_; }

    /**
     * Run one phase: every core executes its source to completion,
     * interleaved in global time order.
     *
     * @param makeSource  per-core workload factory.
     * @param dmaInfo     when non-null, attach one DMA engine per core
     *                    with this workload description.
     * @param dmaParams   engine sizing (tracking table etc.).
     */
    RunResult run(const SourceFactory &makeSource,
                  const DmaWorkloadInfo *dmaInfo = nullptr,
                  const DmaParams &dmaParams = {});

    /** Per-core DMA engines of the last run (empty if none). */
    const std::vector<std::unique_ptr<DmaRunner>> &dmaEngines() const
    {
        return dmaEngines_;
    }

  private:
    MachineParams params_;
    MemorySystem mem_;
    std::vector<std::unique_ptr<DmaRunner>> dmaEngines_;
};

/**
 * The paper's evaluation machine scaled for simulation: identical core
 * count, private caches, bandwidth and latencies, with the shared L3
 * shrunk by @p cacheShrink so the (scaled-down) synthetic graphs keep
 * the same footprint-to-LLC ratio as the paper's graphs have against a
 * 38.5 MB LLC. cacheShrink = 1 is the literal paper machine.
 */
MachineParams paperMachine(unsigned cacheShrink = 8);

} // namespace graphite::sim
