#include "sim/memory_system.h"

#include <algorithm>

#include "common/assert.h"

namespace graphite::sim {

MemorySystem::MemorySystem(const MachineParams &params)
    : params_(params),
      mL1Hits_(obs::MetricsRegistry::global().counter("sim.l1_hits")),
      mL2Hits_(obs::MetricsRegistry::global().counter("sim.l2_hits")),
      mL3Hits_(obs::MetricsRegistry::global().counter("sim.l3_hits")),
      mDramLines_(obs::MetricsRegistry::global().counter("sim.dram_lines")),
      mDramPrefetchLines_(
          obs::MetricsRegistry::global().counter("sim.dram_prefetch_lines")),
      mDramQueueCycles_(
          obs::MetricsRegistry::global().counter("sim.dram_queue_cycles"))
{
    for (unsigned c = 0; c < params.numCores; ++c) {
        l1_.push_back(std::make_unique<CacheModel>(params.l1));
        l2_.push_back(std::make_unique<CacheModel>(params.l2));
    }
    l3_ = std::make_unique<CacheModel>(params.l3);
    epochCapacity_ = static_cast<std::uint32_t>(
        static_cast<double>(kDramEpoch) / params.dramCyclesPerLine());
    GRAPHITE_ASSERT(epochCapacity_ > 0, "DRAM epoch capacity is zero");
}

Cycles
MemorySystem::dramAccess(Cycles now, Cycles &queueing)
{
    // Find the first epoch window at or after `now` with spare line
    // capacity; the distance to it is the queueing delay.
    std::size_t epoch = now / kDramEpoch;
    if (epoch >= epochUse_.size())
        epochUse_.resize(epoch + 64, 0);
    while (epochUse_[epoch] >= epochCapacity_) {
        ++epoch;
        if (epoch >= epochUse_.size())
            epochUse_.resize(epoch + 64, 0);
    }
    ++epochUse_[epoch];
    const Cycles start = std::max<Cycles>(now, epoch * kDramEpoch);
    queueing = start - now;
    ++dramStats_.lineTransfers;
    dramStats_.totalQueueing += queueing;
    mDramLines_.add(1);
    mDramQueueCycles_.add(queueing);
    return start + params_.dramLatency;
}

AccessOutcome
MemorySystem::access(unsigned core, LineAddr line, bool isWrite, Cycles now,
                     bool bypassPrivate)
{
    GRAPHITE_ASSERT(core < l1_.size(), "core id out of range");
    AccessOutcome outcome;

    if (!bypassPrivate) {
        if (l1_[core]->access(line, isWrite)) {
            mL1Hits_.add(1);
            outcome.level = ServiceLevel::L1;
            outcome.completion = now + params_.l1.latency;
            return outcome;
        }
        if (l2_[core]->access(line, isWrite)) {
            // Fill upward into L1.
            l1_[core]->insert(line, isWrite);
            mL2Hits_.add(1);
            outcome.level = ServiceLevel::L2;
            outcome.completion = now + params_.l2.latency;
            return outcome;
        }
    }
    if (l3_->access(line, isWrite)) {
        mL3Hits_.add(1);
        if (!bypassPrivate) {
            l1_[core]->insert(line, isWrite);
            l2_[core]->insert(line, false);
        }
        outcome.level = ServiceLevel::L3;
        outcome.completion = now + params_.l3.latency +
            (bypassPrivate ? params_.bypassExtraLatency / 2 : 0);
        return outcome;
    }

    // Miss everywhere: fetch from DRAM. Dirty L3 victims cost an extra
    // writeback line transfer.
    Cycles queueing = 0;
    outcome.completion = dramAccess(now, queueing);
    if (bypassPrivate)
        outcome.completion += params_.bypassExtraLatency;
    outcome.dramQueueing = queueing;
    // Classify: if queueing dominates the fixed latency contribution the
    // access was bandwidth-bound; the core model aggregates this.
    outcome.level = queueing * 2 >= params_.dramLatency
                        ? ServiceLevel::DramBandwidth
                        : ServiceLevel::DramLatency;
    if (l3_->insert(line, isWrite)) {
        Cycles wbQueue = 0;
        dramAccess(outcome.completion, wbQueue);
    }
    if (!bypassPrivate) {
        l1_[core]->insert(line, isWrite);
        l2_[core]->insert(line, false);
        // L2 hardware stream prefetcher: fetch the next lines of the
        // run into L2 off the critical path. This is what lets ~10
        // demand fill buffers drive DRAM to its bandwidth limit on
        // sequential feature rows.
        for (unsigned d = 1; d <= params_.l2StreamPrefetch; ++d) {
            const LineAddr next = line + d;
            if (l2_[core]->contains(next))
                continue;
            if (!l3_->access(next, false)) {
                Cycles pfQueue = 0;
                dramAccess(now, pfQueue);
                ++dramStats_.prefetchTransfers;
                mDramPrefetchLines_.add(1);
                l3_->insert(next, false);
            }
            l2_[core]->insert(next, false);
        }
    }
    return outcome;
}

void
MemorySystem::installIntoL2(unsigned core, LineAddr line)
{
    GRAPHITE_ASSERT(core < l2_.size(), "core id out of range");
    if (!l2_[core]->contains(line))
        l2_[core]->insert(line, true);
    else
        l2_[core]->access(line, true);
}

void
MemorySystem::reset()
{
    for (auto &cache : l1_)
        cache->reset();
    for (auto &cache : l2_)
        cache->reset();
    l3_->reset();
    clearStats();
}

void
MemorySystem::clearStats()
{
    for (auto &cache : l1_)
        cache->clearStats();
    for (auto &cache : l2_)
        cache->clearStats();
    l3_->clearStats();
    dramStats_ = DramStats{};
    // Each measured phase restarts simulated time at cycle 0, so the
    // channel-occupancy windows must restart with it.
    epochUse_.clear();
}

} // namespace graphite::sim
