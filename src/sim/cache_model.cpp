#include "sim/cache_model.h"

#include "common/assert.h"

namespace graphite::sim {

CacheModel::CacheModel(const CacheParams &params) : ways_(params.ways)
{
    GRAPHITE_ASSERT(params.capacity % (kCacheLineBytes * params.ways) == 0,
                    "capacity must be a multiple of ways * line size");
    numSets_ = params.capacity / (kCacheLineBytes * params.ways);
    GRAPHITE_ASSERT(numSets_ > 0, "cache must have at least one set");
    entries_.resize(numSets_ * ways_);
}

bool
CacheModel::access(LineAddr line, bool isWrite)
{
    ++stats_.accesses;
    Way *set = &entries_[setOf(line) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].tag == line) {
            set[w].lastUse = ++useClock_;
            set[w].dirty |= isWrite;
            ++stats_.hits;
            return true;
        }
    }
    ++stats_.misses;
    return false;
}

bool
CacheModel::insert(LineAddr line, bool isWrite)
{
    Way *set = &entries_[setOf(line) * ways_];
    Way *victim = &set[0];
    for (unsigned w = 0; w < ways_; ++w) {
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
        if (set[w].lastUse < victim->lastUse)
            victim = &set[w];
    }
    const bool writeback = victim->valid && victim->dirty;
    stats_.writebacks += writeback;
    victim->tag = line;
    victim->valid = true;
    victim->dirty = isWrite;
    victim->lastUse = ++useClock_;
    return writeback;
}

bool
CacheModel::contains(LineAddr line) const
{
    const Way *set = &entries_[setOf(line) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].tag == line)
            return true;
    }
    return false;
}

void
CacheModel::reset()
{
    for (auto &way : entries_)
        way = Way{};
    useClock_ = 0;
}

} // namespace graphite::sim
