/**
 * @file
 * Timing model of the enhanced DMA engine (paper Section 5, Figure 7).
 *
 * One engine sits next to each core's L2. The core enqueues aggregation
 * descriptors (Figure 8); the engine fetches index lines first (they
 * gate the input addresses, Figure 10), fetches input feature lines with
 * concurrency bounded by the Memory Request Tracking Table, reduces them
 * in a narrow vector unit, and flushes results to the core's L2 so the
 * update phase hits there. Input fetches bypass the private caches
 * entirely — the inputs are read-only, so no coherence hazard arises
 * (Section 5.2) and the private caches stop being polluted (Table 5).
 *
 * The engine runs on its own clock, interleaved with its core: batches
 * are *staged* when the core issues them and *processed* incrementally
 * as the core's clock advances (or on demand when the core blocks in
 * WAIT, Algorithm 5), so engine memory traffic reaches the shared DRAM
 * model in near global-time order alongside every core's traffic.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "graph/csr_graph.h"
#include "sim/memory_system.h"

namespace graphite::sim {

/** Addresses the DMA aggregation touches (one layer's operands). */
struct DmaAddressMap
{
    std::uint64_t colIdxBase = 0;
    std::uint64_t edgeFactorBase = 0;
    std::uint64_t featureBase = 0;
    /** Bytes between consecutive feature rows (the descriptor S field). */
    std::uint64_t featureStrideBytes = 0;
    std::uint64_t aggBase = 0;
    std::uint64_t aggStrideBytes = 0;
};

/** One layer's DMA aggregation workload parameters. */
struct DmaWorkloadInfo
{
    const CsrGraph *graph = nullptr;
    DmaAddressMap addresses;
    /** Cache lines per gathered input feature row. */
    std::size_t featureLines = 0;
    /** Cache lines per output aggregation row. */
    std::size_t aggLines = 0;
    /** True when ψ uses a factor array (GCN/SAGE do). */
    bool useFactors = true;
};

/** Accounting of one DMA engine. */
struct DmaStats
{
    std::uint64_t descriptors = 0;
    std::uint64_t indexLineFetches = 0;
    std::uint64_t inputLineFetches = 0;
    std::uint64_t factorLineFetches = 0;
    std::uint64_t outputLinesWritten = 0;
    Cycles busyCycles = 0;
};

/** Per-core DMA engine timing model. */
class DmaRunner
{
  public:
    DmaRunner(unsigned core, MemorySystem &mem, const DmaParams &params,
              DmaWorkloadInfo info);

    /**
     * Stage a batch of aggregation descriptors (one per vertex); the
     * workload source calls this while generating ops, before the
     * core's IssueBatch op executes.
     */
    void stageBatch(std::uint32_t batchId, std::vector<VertexId> vertices);

    /**
     * Bind a staged batch's start time to the issuing core's clock
     * (the IssueBatch op). Work is processed lazily from here on.
     */
    void issueStaged(std::uint32_t batchId, Cycles issueTime);

    /** Convenience for tests: stage + issue in one call. */
    void enqueueBatch(std::uint32_t batchId,
                      std::vector<VertexId> vertices, Cycles issueTime);

    /**
     * Advance the engine while its clock lags @p time (called as the
     * paired core's clock advances, keeping engine traffic in global
     * time order).
     */
    void processUntil(Cycles time);

    /** Process until @p batchId completes; returns its completion. */
    Cycles runBatchToCompletion(std::uint32_t batchId);

    /**
     * Process a single queued descriptor (one engine scheduling
     * quantum). @return false when no work is pending.
     */
    bool processOneDescriptor();

    /** True once @p batchId has fully executed. */
    bool batchComplete(std::uint32_t batchId) const;

    /** Completion time of a finished batch. */
    Cycles completionOf(std::uint32_t batchId) const;

    /** Any issued-but-unfinished work left? */
    bool hasPendingWork() const { return !pending_.empty(); }

    const DmaStats &stats() const { return stats_; }
    Cycles engineClock() const { return engineClock_; }

  private:
    struct PendingBatch
    {
        std::uint32_t id = 0;
        std::vector<VertexId> vertices;
        std::size_t nextVertex = 0;
        Cycles lastCompletion = 0;
        /**
         * Descriptor-overlap state (Section 5.2: the engine processes
         * a second descriptor rather than idling on dependences): the
         * next descriptor's index/factor fetches are issued while the
         * current one's inputs stream, so their latency is hidden.
         */
        bool idxStaged = false;
        Cycles stagedIdxReady = 0;
    };

    /**
     * Issue one line fetch honoring the tracking-table bound; returns
     * the fetch's completion time.
     *
     * @param earliest dependence gate (e.g. inputs wait for indices).
     */
    Cycles issueFetch(std::uint64_t byteAddr, Cycles earliest);

    /** Fetch vertex @p v's index + factor lines; returns idx-ready. */
    Cycles fetchIndices(VertexId v);

    /** Simulate one vertex's gather/reduce given its idx-ready time. */
    Cycles processDescriptorBody(VertexId v, Cycles idxReady);

    /** Process the next queued descriptor, if any. */
    bool processOne();

    unsigned core_;
    MemorySystem &mem_;
    DmaParams params_;
    DmaWorkloadInfo info_;
    Cycles engineClock_ = 0;
    Cycles computeClock_ = 0;
    /** Outstanding tracking-table entry completion times. */
    std::vector<Cycles> tracking_;
    std::unordered_map<std::uint32_t, std::vector<VertexId>> staged_;
    std::deque<PendingBatch> pending_;
    std::unordered_map<std::uint32_t, Cycles> completions_;
    DmaStats stats_;
};

} // namespace graphite::sim
