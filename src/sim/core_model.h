/**
 * @file
 * In-order core timing model with line-fill-buffer-bounded memory-level
 * parallelism and top-down stall attribution.
 *
 * Model: compute ops advance the clock directly; a load/store that
 * misses L1 allocates one of `fillBuffers` MSHRs and completes
 * asynchronously, so up to `fillBuffers` misses overlap — the MLP bound
 * that makes per-core bandwidth entries x line / latency, which is what
 * the paper's "L1 fill buffer full" symptom is about. The core stalls
 * only when it needs an MSHR and none is free; each stall interval is
 * attributed to the service level of the miss that eventually frees the
 * buffer, yielding the Table 4 columns directly.
 */

#pragma once

#include <vector>

#include "sim/memory_system.h"
#include "sim/trace.h"

namespace graphite::sim {

/** Cycle accounting of one simulated core. */
struct CoreStats
{
    Cycles totalCycles = 0;
    Cycles computeCycles = 0;
    Cycles stallCycles = 0;
    /** Stall breakdown by blocking miss's service level. */
    Cycles stallL2 = 0;
    Cycles stallL3 = 0;
    Cycles stallDramBandwidth = 0;
    Cycles stallDramLatency = 0;
    /** Cycles with every fill buffer occupied. */
    Cycles fillBufferFullCycles = 0;
    /** Cycles spent blocked on DMA batch completion (Alg. 5 WAIT). */
    Cycles dmaWaitCycles = 0;

    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t prefetchesIssued = 0;
    std::uint64_t prefetchesDropped = 0;

    /** Fraction of slots doing useful work. */
    double
    retiringFraction() const
    {
        return totalCycles
            ? static_cast<double>(computeCycles) / totalCycles : 0.0;
    }

    /** Fraction of slots stalled on memory. */
    double
    memoryBoundFraction() const
    {
        return totalCycles
            ? static_cast<double>(stallCycles) / totalCycles : 0.0;
    }
};

class DmaRunner;

/** One simulated core executing a WorkloadSource. */
class CoreRunner
{
  public:
    CoreRunner(unsigned id, MemorySystem &mem, WorkloadSource &source);

    /** Attach the per-core DMA engine (for IssueBatch/WaitBatch ops). */
    void attachDma(DmaRunner *dma) { dma_ = dma; }

    /** Step result for the machine scheduler. */
    enum class StepResult { Progress, Finished };

    /**
     * Execute the next trace op (possibly blocking on DMA, which steps
     * the attached engine forward as needed).
     */
    StepResult step();

    Cycles now() const { return now_; }
    bool finished() const { return finished_; }
    unsigned id() const { return id_; }
    const CoreStats &stats() const { return stats_; }

    /** Wait for all outstanding fill buffers to drain (end of phase). */
    void drain();

  private:
    struct FillBuffer
    {
        Cycles completion = 0;
        ServiceLevel level = ServiceLevel::L1;
    };

    void retireFillBuffers();
    /** Block until one fill buffer is free; attribute the stall. */
    void waitForFreeFillBuffer();
    void attributeStall(Cycles cycles, ServiceLevel level);
    void doMemOp(std::uint64_t addr, bool isWrite);

    unsigned id_;
    MemorySystem &mem_;
    WorkloadSource &source_;
    DmaRunner *dma_ = nullptr;
    Cycles now_ = 0;
    bool finished_ = false;
    std::vector<FillBuffer> fillBuffers_;
    CoreStats stats_;
    /** Batch id the core is blocked on (Alg. 5 WAIT), if any. */
    bool waiting_ = false;
    std::uint32_t waitBatch_ = 0;
    Cycles waitStart_ = 0;
};

} // namespace graphite::sim
