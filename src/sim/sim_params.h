/**
 * @file
 * Parameters of the simulated machine.
 *
 * Defaults mirror the paper's evaluation platform (Section 6): a 28-core
 * Intel Cascade Lake server at 2.7 GHz with 32 KB L1D, 1 MB L2,
 * 1.375 MB L3 slice per core (modelled as one shared 38.5 MB L3) and
 * 140.8 GB/s of DRAM bandwidth. The host running this repo has a single
 * core, so every multi-core experiment executes on this model — the same
 * methodology the paper itself uses for its hardware results (Sniper).
 */

#pragma once

#include <cstddef>
#include <cstdint>

#include "common/types.h"

namespace graphite::sim {

/** One cache level's geometry and latency. */
struct CacheParams
{
    Bytes capacity = 0;
    unsigned ways = 8;
    /** Load-to-use latency in core cycles. */
    Cycles latency = 4;
};

/** Full machine description. */
struct MachineParams
{
    unsigned numCores = 28;
    double coreGhz = 2.7;

    /** Issue/commit width used to convert compute work into cycles. */
    unsigned issueWidth = 4;

    CacheParams l1 = {32 * 1024, 8, 4};
    CacheParams l2 = {1024 * 1024, 16, 14};
    /** Shared L3: 28 slices x 1.375 MB (non-inclusive, like the paper). */
    CacheParams l3 = {28ull * 1408 * 1024, 11, 44};

    /** L1D line-fill buffers (MSHRs) per core: bounds demand MLP. */
    unsigned fillBuffers = 10;

    /**
     * L2 hardware stream-prefetch depth: on an L2 miss, this many
     * subsequent lines are fetched into L2 off the core's critical
     * path. Feature rows are long sequential runs, so the streamer is
     * what lets real cores push DRAM to its bandwidth limit with only
     * ~10 demand fill buffers. 0 disables.
     */
    unsigned l2StreamPrefetch = 2;

    /** DRAM round-trip latency in core cycles (~90 ns at 2.7 GHz). */
    Cycles dramLatency = 240;
    /**
     * Extra round-trip for private-cache-bypassing (DMA engine)
     * accesses: NoC hops to the home directory and back plus directory
     * processing, paid on top of the L3/DRAM service time. Core demand
     * misses overlap this inside the same miss path, but the engine's
     * uncached requests see it end to end.
     */
    Cycles bypassExtraLatency = 60;
    /** Aggregate DRAM bandwidth in GB/s (paper: 140.8). */
    double dramGBps = 140.8;

    /** Cycles one line transfer occupies the shared DRAM channels. */
    double
    dramCyclesPerLine() const
    {
        const double bytesPerCycle = dramGBps * 1e9 / (coreGhz * 1e9);
        return static_cast<double>(kCacheLineBytes) / bytesPerCycle;
    }
};

/** DMA engine configuration (paper Section 6's sizing). */
struct DmaParams
{
    bool enabled = false;
    /** Memory-request tracking table entries (Figure 16 sweeps this). */
    unsigned trackingEntries = 32;
    /** Output buffer bytes (holds intermediate reduction results). */
    Bytes outputBuffer = 2048;
    /** Input buffer bytes. */
    Bytes inputBuffer = 2048;
    /** Index buffer bytes. */
    Bytes indexBuffer = 128;
    /** Factor buffer bytes. */
    Bytes factorBuffer = 128;
    /** Vector unit lanes (paper: 4-lane). */
    /**
     * The paper describes a 4-lane unit and states the width is chosen
     * "such that the computation does not become a bottleneck" — true
     * in their DRAM-bound regime. Under the locality ordering this
     * model's gathers become largely cache-resident, where 4 lanes
     * *would* bottleneck the engine, so the default honours the sizing
     * rule rather than the example width.
     */
    unsigned vectorLanes = 16;
    /** Descriptor queue entries. */
    unsigned descriptorQueue = 32;
};

} // namespace graphite::sim
