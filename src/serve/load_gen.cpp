#include "serve/load_gen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <thread>
#include <vector>

#include "common/assert.h"
#include "common/rng.h"
#include "common/timer.h"
#include "tensor/dense_matrix.h"

namespace graphite::serve {

double
exactPercentile(std::vector<double> &values, double q)
{
    if (values.empty())
        return 0.0;
    // Nearest rank, identical to MetricsRegistry::estimateQuantile:
    // 1-based rank = ceil(q * n), clamped into [1, n].
    const double n = static_cast<double>(values.size());
    std::size_t rank =
        static_cast<std::size_t>(std::ceil(q * n));
    rank = std::min(std::max<std::size_t>(rank, 1), values.size());
    const std::size_t idx = rank - 1;
    std::nth_element(values.begin(),
                     values.begin() + static_cast<std::ptrdiff_t>(idx),
                     values.end());
    return values[idx];
}

LoadGenReport
runServeLoad(InferenceServer &server, const LoadGenConfig &config)
{
    const CsrGraph &graph = server.graph();
    GRAPHITE_ASSERT(graph.numVertices() > 0, "load gen needs a graph");
    GRAPHITE_ASSERT(config.numRequests > 0,
                    "load gen needs measured requests");
    GRAPHITE_ASSERT(config.offeredQps > 0.0,
                    "load gen needs a positive offered rate");

    // Popularity: Zipf over degree rank, so the hottest traffic lands
    // on the highest-degree hubs — the cache's target population.
    std::vector<VertexId> ranked(graph.numVertices());
    std::iota(ranked.begin(), ranked.end(), VertexId{0});
    std::stable_sort(ranked.begin(), ranked.end(),
                     [&graph](VertexId a, VertexId b) {
                         return graph.degree(a) > graph.degree(b);
                     });
    const std::size_t hot =
        config.popularVertices == 0
            ? ranked.size()
            : std::min(config.popularVertices, ranked.size());
    std::vector<double> cdf(hot);
    double totalWeight = 0.0;
    for (std::size_t i = 0; i < hot; ++i) {
        totalWeight +=
            std::pow(static_cast<double>(i + 1), -config.zipfExponent);
        cdf[i] = totalWeight;
    }

    server.warmup();
    const ServeStats statsAtStart = server.stats();

    const std::size_t totalRequests =
        config.warmupRequests + config.numRequests;
    DenseMatrix localResults;
    DenseMatrix &results =
        config.resultsOut != nullptr ? *config.resultsOut : localResults;
    results.resize(totalRequests, server.outFeatures());
    std::vector<double> latencies(totalRequests, -1.0);
    std::vector<VertexId> vertices(totalRequests, 0);

    std::thread consumer([&server] { server.run(); });

    Rng rng(config.seed);
    Timer measuredTimer;
    ServeStats statsBefore = statsAtStart;
    auto next = std::chrono::steady_clock::now();
    std::uint64_t acceptedWarm = 0;
    std::uint64_t accepted = 0;
    std::uint64_t dropped = 0;
    const double interScale = 1.0 / config.offeredQps;

    for (std::size_t i = 0; i < totalRequests; ++i) {
        const bool measured = i >= config.warmupRequests;
        if (i == config.warmupRequests) {
            // Quiesce the warmup tail so measured stats deltas are
            // clean, then restart the arrival clock.
            while (server.stats().requestsServed <
                   statsAtStart.requestsServed + acceptedWarm) {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(200));
            }
            statsBefore = server.stats();
            measuredTimer.reset();
            next = std::chrono::steady_clock::now();
        }
        // Poisson arrivals: exponential gaps at the offered rate. Open
        // loop — a late producer catches up (sleep_until in the past
        // returns immediately) instead of shifting the schedule.
        const double gap =
            -std::log(1.0 - static_cast<double>(rng.uniformFloat())) *
            interScale;
        next += std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(gap));
        std::this_thread::sleep_until(next);

        InferenceRequest req;
        req.id = i;
        const double z =
            static_cast<double>(rng.uniformFloat()) * totalWeight;
        const std::size_t rank = static_cast<std::size_t>(
            std::lower_bound(cdf.begin(), cdf.end(), z) - cdf.begin());
        req.vertex = ranked[std::min(rank, hot - 1)];
        vertices[i] = req.vertex;
        req.enqueueNs = monotonicNanos();
        req.out = results.row(i);
        req.latencyUs = &latencies[i];
        if (server.queue().push(req)) {
            if (measured)
                ++accepted;
            else
                ++acceptedWarm;
        } else if (measured) {
            ++dropped;
        }
    }

    server.queue().close();
    consumer.join();
    const double duration = measuredTimer.seconds();
    const ServeStats statsAfter = server.stats();

    if (config.verticesOut != nullptr)
        *config.verticesOut = std::move(vertices);
    if (config.latenciesOut != nullptr)
        *config.latenciesOut = latencies;

    LoadGenReport report;
    report.offered = config.numRequests;
    report.accepted = accepted;
    report.dropped = dropped;
    report.durationSeconds = duration;
    report.qps =
        duration > 0.0 ? static_cast<double>(accepted) / duration : 0.0;

    // Exact percentiles over the measured, accepted requests.
    std::vector<double> measuredLat(
        latencies.begin() +
            static_cast<std::ptrdiff_t>(config.warmupRequests),
        latencies.end());
    measuredLat.erase(std::remove_if(measuredLat.begin(),
                                     measuredLat.end(),
                                     [](double v) { return v < 0.0; }),
                      measuredLat.end());
    report.p50Us = exactPercentile(measuredLat, 0.50);
    report.p99Us = exactPercentile(measuredLat, 0.99);
    if (!measuredLat.empty()) {
        double sum = 0.0;
        for (const double v : measuredLat)
            sum += v;
        report.meanUs = sum / static_cast<double>(measuredLat.size());
    }

    const std::uint64_t hits =
        statsAfter.cache.hits - statsBefore.cache.hits;
    const std::uint64_t misses =
        statsAfter.cache.misses - statsBefore.cache.misses;
    report.cacheHitRate =
        hits + misses > 0
            ? static_cast<double>(hits) /
                  static_cast<double>(hits + misses)
            : 0.0;
    report.bytesGathered =
        statsAfter.bytesGathered - statsBefore.bytesGathered;
    report.batches = statsAfter.batchesServed - statsBefore.batchesServed;
    const std::uint64_t served =
        statsAfter.requestsServed - statsBefore.requestsServed;
    report.meanBatchSize =
        report.batches > 0
            ? static_cast<double>(served) /
                  static_cast<double>(report.batches)
            : 0.0;
    return report;
}

} // namespace graphite::serve
