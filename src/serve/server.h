/**
 * @file
 * Low-latency online GNN inference server (DESIGN.md §13): a dynamic
 * micro-batcher over the MPSC RequestQueue that coalesces queued
 * per-vertex queries into one neighbor-sampled forward pass under a
 * latency budget, reusing the mini-batch sampling machinery
 * (sampleTree) and the precision-keyed packed-weight plan caches in
 * GnnLayer.
 *
 * Determinism contract: each request's K-hop neighborhood is sampled
 * independently with Rng(requestSeed(id)), and the batch forward is a
 * block-diagonal concatenation of the per-request trees whose GEMM
 * (gemmBlockSerial) accumulates each output row independently — so a
 * served embedding is bitwise identical to serveOne() replaying the
 * same request id offline, regardless of batch composition, as long
 * as the hot-vertex cache is off. With the cache on, hub vertices use
 * their cached *full-neighborhood* aggregation instead of the sampled
 * one: results deviate from the replay by the sampling estimate's own
 * error bound, in exchange for one row read per hub instead of a full
 * fan-in gather.
 *
 * The steady-state serving loop is allocation-free after warmup():
 * scratch matrices are reshape()d inside ctor-reserved worst-case
 * footprints, the sampler reuses stamped scratch, and the cache
 * preallocates every slot.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "gnn/gnn_layer.h"
#include "graph/csr_graph.h"
#include "graph/delta_csr.h"
#include "graph/graph_stats.h"
#include "sampling/neighbor_sampler.h"
#include "serve/hot_vertex_cache.h"
#include "serve/request_queue.h"
#include "tensor/dense_matrix.h"
#include "tensor/gemm_plan.h"

namespace graphite::serve {

/** Serving-side knobs (see the graphite_serve tool for CLI mapping). */
struct ServeConfig
{
    /** Per-layer sampling fan-outs, innermost layer first. */
    std::vector<VertexId> fanouts = {10, 10};
    /** Max requests coalesced into one forward pass. */
    std::size_t maxBatch = 64;
    /** Batch-close deadline measured from the first queued request. */
    std::int64_t latencyBudgetUs = 200;
    /** RequestQueue ring capacity. */
    std::size_t queueCapacity = 4096;
    /** Hot-vertex cache row slots; 0 disables the cache. */
    std::size_t hotCacheCapacity = 0;
    /** Cache shard count (rounded up to a power of two). */
    std::size_t hotCacheShards = 8;
    /**
     * Cache admission degree threshold; 0 derives one from graph
     * stats: max(capacity-th largest degree, ceil(avg degree) + 1,
     * max fanout + 1).
     */
    EdgeId hotCacheMinDegree = 0;
    /** Update-GEMM precision (the per-precision plan-cache key). */
    Precision precision = Precision::Fp32;
    /**
     * Edge-insert cache policy (overlay mode): false = invalidate the
     * source's cached row (next touch re-gathers; preserves the
     * bitwise cache-on == hub-exact-oracle contract), true = patch the
     * resident row in place with the exact mean update (cheaper — no
     * re-gather — but FP summation order differs from a fresh gather,
     * so bitwise parity is waived; see HotVertexCache::patchMeanRow).
     */
    bool patchCacheOnInsert = false;
    /**
     * Overlay mode: re-derive the auto admission threshold after this
     * many accepted edge inserts, so the degree gate tracks hubs as
     * they grow (0 = never; ignored when hotCacheMinDegree pins an
     * explicit threshold). The re-derived threshold never decreases —
     * degrees only grow under insert-only churn.
     */
    std::size_t thresholdRefreshEvery = 1024;
};

/**
 * Monotonic serving counters (readable from any thread).
 *
 * requestsServed is also the result-publication edge: the consumer
 * bumps it with a release fetch_add after writing every request's
 * output row and latency slot, and stats() reads it with acquire — a
 * producer that polls stats() until requestsServed covers its request
 * may then read the request's InferenceRequest::out/latencyUs storage
 * without further synchronization (the load generator's quiesce loop
 * and the churn tests rely on this).
 */
struct ServeStats
{
    std::uint64_t requestsServed = 0;
    std::uint64_t batchesServed = 0;
    /** Feature-row bytes read by aggregation gathers (all layers). */
    std::uint64_t bytesGathered = 0;
    /** Accepted edge inserts through insertEdge() (overlay mode). */
    std::uint64_t edgeInserts = 0;
    /** Overlay compactions performed by this server. */
    std::uint64_t compactions = 0;
    HotVertexCache::Stats cache;
};

/**
 * Single-consumer inference server over a trained GnnLayer stack
 * (borrowed, e.g. MiniBatchTrainer::layerPointers()). Producers push
 * into queue(); one thread runs run() until the queue is closed.
 */
class InferenceServer
{
  public:
    /**
     * @param layers innermost-first layer stack; layer 0's input width
     *        must equal features.cols(). Not owned; weights must not
     *        be mutated while serving.
     */
    InferenceServer(const CsrGraph &graph, const DenseMatrix &features,
                    std::vector<GnnLayer *> layers, ServeConfig config);

    /**
     * Dynamic-graph mode: serve over a DeltaCsr overlay (borrowed, not
     * owned). Sampling, hub gathers and cache admission all see base +
     * delta adjacency; insertEdge() feeds the overlay and keeps the
     * hot-vertex cache coherent (DESIGN.md §14). The overlay must
     * outlive the server; external writers must not touch it while the
     * server is live (route all inserts through insertEdge()).
     */
    InferenceServer(DeltaCsr &graph, const DenseMatrix &features,
                    std::vector<GnnLayer *> layers, ServeConfig config);

    ~InferenceServer();

    InferenceServer(const InferenceServer &) = delete;
    InferenceServer &operator=(const InferenceServer &) = delete;

    RequestQueue &queue() { return queue_; }
    const ServeConfig &config() const { return config_; }
    const CsrGraph &graph() const { return graph_; }
    /** Overlay being served, or nullptr in frozen-CSR mode. */
    const DeltaCsr *overlay() const { return overlay_; }
    /** Output width of the served embeddings (last layer's). */
    std::size_t outFeatures() const;
    /** Effective cache admission threshold (resolved when auto). */
    EdgeId
    hotDegreeThreshold() const
    {
        return hotDegreeThreshold_.load(std::memory_order_relaxed);
    }

    /**
     * Edge-update path (overlay mode only): insert src -> dst into the
     * overlay and keep the serving state coherent — the source's
     * cached aggregation row is invalidated (or mean-patched, see
     * ServeConfig::patchCacheOnInsert), live graph stats are folded
     * forward in O(1), and the auto admission threshold is re-derived
     * every thresholdRefreshEvery accepted inserts. Thread-safe
     * against the consumer loop, serveOne() and other insertEdge()
     * callers; never blocks on the request queue.
     */
    DeltaCsr::AddEdge insertEdge(VertexId src, VertexId dst);

    /**
     * Ask the consumer loop to compact the overlay between batches
     * (run() performs it with updates and oracle reads excluded).
     * No-op in frozen-CSR mode.
     */
    void requestCompaction();

    /**
     * Compact the overlay immediately. Caller must guarantee the
     * consumer loop is not mid-batch (idle, or not started, or
     * drained); insertEdge()/serveOne() callers are excluded
     * internally. No-op in frozen-CSR mode.
     */
    void compactNow();

    /**
     * Live graph statistics maintained incrementally across
     * insertEdge() calls (overlay mode; in frozen-CSR mode these are
     * the construction-time stats).
     */
    GraphStats liveGraphStats() const;

    /**
     * Prime every lazy allocation on the serving path (packed weight
     * plans, GEMM pack scratch, sampler/forward scratch growth, trace
     * rings) by running synthetic worst-case batches, so the steady
     * loop afterwards is heap-quiet under ScopedAllocGuard.
     */
    void warmup();

    /**
     * Consumer loop: pop micro-batches under the latency budget and
     * serve them until the queue is closed and drained. Exactly one
     * thread may run this at a time.
     */
    void run();

    /**
     * Offline single-request forward for @p requestId/@p vertex with
     * the cache bypassed — the replay oracle the serving results are
     * verified against. Uses its own scratch; safe to call while run()
     * executes on another thread.
     */
    void serveOne(std::uint64_t requestId, VertexId vertex, Feature *out);

    /**
     * Cache-disabled forward that mirrors the cache-on aggregation
     * *policy*: admissible hubs use the exact full-neighborhood mean
     * (freshly gathered, never cached), everything else the sampled
     * estimate. This is the bitwise oracle for cache-on serving — with
     * churn quiesced and patchCacheOnInsert off, a cache-on batch and
     * this replay produce identical embeddings bit for bit.
     */
    void serveOneHubExact(std::uint64_t requestId, VertexId vertex,
                          Feature *out);

    ServeStats stats() const;

  private:
    /** Preallocated per-consumer working state for forwardBatch. */
    struct ForwardScratch;

    /** Layer-1 aggregation policy of one forward pass. */
    enum class AggPolicy
    {
        /** Pure sampled estimate everywhere (the replay oracle). */
        Sampled,
        /** Hubs take the exact mean via the hot-vertex cache. */
        HubExactCached,
        /** Hubs take the exact mean, freshly gathered, cache bypassed
            (the bitwise oracle for HubExactCached). */
        HubExactUncached,
    };

    std::unique_ptr<ForwardScratch> makeScratch(std::size_t maxBatch) const;

    /**
     * Sample + aggregate + layer-stack forward for @p n requests in
     * @p scratch.batch, writing each request's embedding row and
     * latency. @p policy selects how admissible layer-1 destinations
     * aggregate (see AggPolicy).
     */
    void forwardBatch(ForwardScratch &scratch, std::size_t n,
                      AggPolicy policy);

    /** Full-graph degree of @p v (overlay-aware). */
    EdgeId
    liveDegree(VertexId v) const
    {
        return overlay_ != nullptr ? overlay_->degree(v)
                                   : graph_.degree(v);
    }

    /** Exact mean gather of @p v into @p dst (overlay-aware). */
    void gatherFullMeanRow(VertexId v, Feature *dst) const;

    /** Re-derive the auto admission threshold from live degrees. */
    void refreshHotThreshold() GRAPHITE_REQUIRES(updateMutex_);

    /** Shared compaction body (updates + oracle excluded by caller). */
    void compactLocked() GRAPHITE_REQUIRES(updateMutex_);

    const CsrGraph &graph_;
    /** Overlay in dynamic mode, nullptr when serving a frozen CSR. */
    DeltaCsr *overlay_ = nullptr;
    const DenseMatrix &features_;
    std::vector<GnnLayer *> layers_;
    ServeConfig config_;
    std::atomic<EdgeId> hotDegreeThreshold_;
    RequestQueue queue_;
    HotVertexCache cache_;
    std::unique_ptr<ForwardScratch> scratch_;       ///< run()'s state
    std::unique_ptr<ForwardScratch> oracleScratch_; ///< serveOne's
    /** Serializes serveOne callers (one oracle scratch). */
    Mutex oracleMutex_;
    /** Serializes insertEdge callers and compaction vs updates. */
    mutable Mutex updateMutex_;
    /** Live stats folded forward per accepted insert. */
    IncrementalGraphStats liveStats_ GRAPHITE_GUARDED_BY(updateMutex_);
    /** Reused by refreshHotThreshold (|V|, sized at construction). */
    std::vector<EdgeId> degreeScratch_ GRAPHITE_GUARDED_BY(updateMutex_);
    /** Accepted inserts since the last threshold refresh. */
    std::size_t insertsSinceRefresh_ GRAPHITE_GUARDED_BY(updateMutex_) = 0;
    /** Set by requestCompaction, consumed by run() between batches. */
    std::atomic<bool> compactionRequested_{false};

    std::atomic<std::uint64_t> requestsServed_{0};
    std::atomic<std::uint64_t> batchesServed_{0};
    std::atomic<std::uint64_t> bytesGathered_{0};
    std::atomic<std::uint64_t> edgeInserts_{0};
    std::atomic<std::uint64_t> compactions_{0};
};

} // namespace graphite::serve
