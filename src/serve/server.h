/**
 * @file
 * Low-latency online GNN inference server (DESIGN.md §13): a dynamic
 * micro-batcher over the MPSC RequestQueue that coalesces queued
 * per-vertex queries into one neighbor-sampled forward pass under a
 * latency budget, reusing the mini-batch sampling machinery
 * (sampleTree) and the precision-keyed packed-weight plan caches in
 * GnnLayer.
 *
 * Determinism contract: each request's K-hop neighborhood is sampled
 * independently with Rng(requestSeed(id)), and the batch forward is a
 * block-diagonal concatenation of the per-request trees whose GEMM
 * (gemmBlockSerial) accumulates each output row independently — so a
 * served embedding is bitwise identical to serveOne() replaying the
 * same request id offline, regardless of batch composition, as long
 * as the hot-vertex cache is off. With the cache on, hub vertices use
 * their cached *full-neighborhood* aggregation instead of the sampled
 * one: results deviate from the replay by the sampling estimate's own
 * error bound, in exchange for one row read per hub instead of a full
 * fan-in gather.
 *
 * The steady-state serving loop is allocation-free after warmup():
 * scratch matrices are reshape()d inside ctor-reserved worst-case
 * footprints, the sampler reuses stamped scratch, and the cache
 * preallocates every slot.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "gnn/gnn_layer.h"
#include "graph/csr_graph.h"
#include "sampling/neighbor_sampler.h"
#include "serve/hot_vertex_cache.h"
#include "serve/request_queue.h"
#include "tensor/dense_matrix.h"
#include "tensor/gemm_plan.h"

namespace graphite::serve {

/** Serving-side knobs (see the graphite_serve tool for CLI mapping). */
struct ServeConfig
{
    /** Per-layer sampling fan-outs, innermost layer first. */
    std::vector<VertexId> fanouts = {10, 10};
    /** Max requests coalesced into one forward pass. */
    std::size_t maxBatch = 64;
    /** Batch-close deadline measured from the first queued request. */
    std::int64_t latencyBudgetUs = 200;
    /** RequestQueue ring capacity. */
    std::size_t queueCapacity = 4096;
    /** Hot-vertex cache row slots; 0 disables the cache. */
    std::size_t hotCacheCapacity = 0;
    /** Cache shard count (rounded up to a power of two). */
    std::size_t hotCacheShards = 8;
    /**
     * Cache admission degree threshold; 0 derives one from graph
     * stats: max(capacity-th largest degree, ceil(avg degree) + 1,
     * max fanout + 1).
     */
    EdgeId hotCacheMinDegree = 0;
    /** Update-GEMM precision (the per-precision plan-cache key). */
    Precision precision = Precision::Fp32;
};

/** Monotonic serving counters (readable from any thread). */
struct ServeStats
{
    std::uint64_t requestsServed = 0;
    std::uint64_t batchesServed = 0;
    /** Feature-row bytes read by aggregation gathers (all layers). */
    std::uint64_t bytesGathered = 0;
    HotVertexCache::Stats cache;
};

/**
 * Single-consumer inference server over a trained GnnLayer stack
 * (borrowed, e.g. MiniBatchTrainer::layerPointers()). Producers push
 * into queue(); one thread runs run() until the queue is closed.
 */
class InferenceServer
{
  public:
    /**
     * @param layers innermost-first layer stack; layer 0's input width
     *        must equal features.cols(). Not owned; weights must not
     *        be mutated while serving.
     */
    InferenceServer(const CsrGraph &graph, const DenseMatrix &features,
                    std::vector<GnnLayer *> layers, ServeConfig config);
    ~InferenceServer();

    InferenceServer(const InferenceServer &) = delete;
    InferenceServer &operator=(const InferenceServer &) = delete;

    RequestQueue &queue() { return queue_; }
    const ServeConfig &config() const { return config_; }
    const CsrGraph &graph() const { return graph_; }
    /** Output width of the served embeddings (last layer's). */
    std::size_t outFeatures() const;
    /** Effective cache admission threshold (resolved when auto). */
    EdgeId hotDegreeThreshold() const { return hotDegreeThreshold_; }

    /**
     * Prime every lazy allocation on the serving path (packed weight
     * plans, GEMM pack scratch, sampler/forward scratch growth, trace
     * rings) by running synthetic worst-case batches, so the steady
     * loop afterwards is heap-quiet under ScopedAllocGuard.
     */
    void warmup();

    /**
     * Consumer loop: pop micro-batches under the latency budget and
     * serve them until the queue is closed and drained. Exactly one
     * thread may run this at a time.
     */
    void run();

    /**
     * Offline single-request forward for @p requestId/@p vertex with
     * the cache bypassed — the replay oracle the serving results are
     * verified against. Uses its own scratch; safe to call while run()
     * executes on another thread.
     */
    void serveOne(std::uint64_t requestId, VertexId vertex, Feature *out);

    ServeStats stats() const;

  private:
    /** Preallocated per-consumer working state for forwardBatch. */
    struct ForwardScratch;

    std::unique_ptr<ForwardScratch> makeScratch(std::size_t maxBatch) const;

    /**
     * Sample + aggregate + layer-stack forward for @p n requests in
     * @p scratch.batch, writing each request's embedding row and
     * latency. @p useCache routes admissible layer-1 destinations
     * through the hot-vertex cache.
     */
    void forwardBatch(ForwardScratch &scratch, std::size_t n,
                      bool useCache);

    const CsrGraph &graph_;
    const DenseMatrix &features_;
    std::vector<GnnLayer *> layers_;
    ServeConfig config_;
    EdgeId hotDegreeThreshold_;
    RequestQueue queue_;
    HotVertexCache cache_;
    std::unique_ptr<ForwardScratch> scratch_;       ///< run()'s state
    std::unique_ptr<ForwardScratch> oracleScratch_; ///< serveOne's
    /** Serializes serveOne callers (one oracle scratch). */
    Mutex oracleMutex_;

    std::atomic<std::uint64_t> requestsServed_{0};
    std::atomic<std::uint64_t> batchesServed_{0};
    std::atomic<std::uint64_t> bytesGathered_{0};
};

} // namespace graphite::serve
