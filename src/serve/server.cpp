#include "serve/server.h"

#include <algorithm>
#include <cstring>
#include <functional>

#include "common/assert.h"
#include "kernels/overlay_gather.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/gemm.h"
#include "tensor/row_ops.h"

namespace graphite::serve {

namespace {

/**
 * Effective cache admission threshold over @p degrees (scrambled by
 * the nth_element partition). Auto mode aims the cache at the true hub
 * set: roughly the capacity-th largest degree, but never below the
 * mean degree or the largest fanout — vertices below either gain
 * little from caching (their sampled fan-in is already the full
 * fan-in).
 */
EdgeId
thresholdFromDegrees(std::vector<EdgeId> &degrees, EdgeId numEdges,
                     const ServeConfig &config)
{
    const std::size_t n = degrees.size();
    const std::size_t nth = std::min(config.hotCacheCapacity, n - 1);
    std::nth_element(degrees.begin(),
                     degrees.begin() + static_cast<std::ptrdiff_t>(nth),
                     degrees.end(), std::greater<EdgeId>());
    const EdgeId capacityTh = degrees[nth];
    const EdgeId avgPlusOne = (numEdges + n - 1) / n + 1;
    EdgeId maxFanout = 0;
    for (const VertexId f : config.fanouts)
        maxFanout = std::max<EdgeId>(maxFanout, f);
    return std::max({capacityTh, avgPlusOne, maxFanout + 1});
}

/** resolveHotThreshold over either graph variant (cold, ctor-only). */
template <typename GraphT>
EdgeId
resolveHotThreshold(const GraphT &graph, const ServeConfig &config)
{
    if (config.hotCacheMinDegree > 0 || config.hotCacheCapacity == 0 ||
        graph.numVertices() == 0)
        return config.hotCacheMinDegree;
    std::vector<EdgeId> degrees(graph.numVertices());
    for (VertexId v = 0; v < graph.numVertices(); ++v)
        degrees[v] = graph.degree(v);
    return thresholdFromDegrees(degrees, graph.numEdges(), config);
}

} // namespace

/** Preallocated per-consumer working state for forwardBatch. */
struct InferenceServer::ForwardScratch
{
    ForwardScratch(VertexId numVertices, std::size_t maxBatchIn)
        : sampler(numVertices), maxBatch(maxBatchIn)
    {
    }

    SamplerScratch sampler;
    std::size_t maxBatch;
    /** popBatch output; maxBatch entries. */
    std::vector<InferenceRequest> batch;
    /** Per-request sampled trees (block-diagonal batch members). */
    std::vector<SampledTree> trees;
    /** Per-layer aggregation inputs, reshaped per batch. */
    std::vector<DenseMatrix> agg;
    /** Per-layer update outputs, reshaped per batch. */
    std::vector<DenseMatrix> out;
    /** Row base of request r at layer k: dstOffset[k*(maxBatch+1)+r]. */
    std::vector<std::size_t> dstOffset;
};

InferenceServer::InferenceServer(const CsrGraph &graph,
                                 const DenseMatrix &features,
                                 std::vector<GnnLayer *> layers,
                                 ServeConfig config)
    : graph_(graph), features_(features), layers_(std::move(layers)),
      config_(std::move(config)),
      hotDegreeThreshold_(resolveHotThreshold(graph, config_)),
      queue_(config_.queueCapacity),
      cache_(config_.hotCacheCapacity, config_.hotCacheShards,
             features.cols(), hotDegreeThreshold()),
      liveStats_(computeGraphStats(graph))
{
    GRAPHITE_ASSERT(!layers_.empty(), "serving needs at least one layer");
    GRAPHITE_ASSERT(layers_.size() == config_.fanouts.size(),
                    "one fanout per layer, innermost first");
    GRAPHITE_ASSERT(layers_.front()->inFeatures() == features_.cols(),
                    "layer 0 input width must match the feature table");
    for (std::size_t k = 0; k + 1 < layers_.size(); ++k) {
        // graphite-lint: allow(assert) cold ctor contract check, once
        // per layer, not per request.
        GRAPHITE_ASSERT(layers_[k]->outFeatures() ==
                            layers_[k + 1]->inFeatures(),
                        "layer stack width mismatch");
    }
    scratch_ = makeScratch(config_.maxBatch);
    oracleScratch_ = makeScratch(1);
}

InferenceServer::InferenceServer(DeltaCsr &graph,
                                 const DenseMatrix &features,
                                 std::vector<GnnLayer *> layers,
                                 ServeConfig config)
    : graph_(graph.base()), overlay_(&graph), features_(features),
      layers_(std::move(layers)), config_(std::move(config)),
      hotDegreeThreshold_(resolveHotThreshold(graph, config_)),
      queue_(config_.queueCapacity),
      cache_(config_.hotCacheCapacity, config_.hotCacheShards,
             features.cols(), hotDegreeThreshold()),
      liveStats_(computeGraphStats(graph))
{
    GRAPHITE_ASSERT(!layers_.empty(), "serving needs at least one layer");
    GRAPHITE_ASSERT(layers_.size() == config_.fanouts.size(),
                    "one fanout per layer, innermost first");
    GRAPHITE_ASSERT(layers_.front()->inFeatures() == features_.cols(),
                    "layer 0 input width must match the feature table");
    for (std::size_t k = 0; k + 1 < layers_.size(); ++k) {
        // graphite-lint: allow(assert) cold ctor contract check, once
        // per layer, not per request.
        GRAPHITE_ASSERT(layers_[k]->outFeatures() ==
                            layers_[k + 1]->inFeatures(),
                        "layer stack width mismatch");
    }
    scratch_ = makeScratch(config_.maxBatch);
    oracleScratch_ = makeScratch(1);
    {
        // Pre-size the refresh scratch so periodic threshold
        // re-derivation under churn never allocates.
        MutexLock lock(updateMutex_);
        degreeScratch_.resize(graph.numVertices());
    }
}

InferenceServer::~InferenceServer() = default;

std::size_t
InferenceServer::outFeatures() const
{
    return layers_.back()->outFeatures();
}

std::unique_ptr<InferenceServer::ForwardScratch>
InferenceServer::makeScratch(std::size_t maxBatch) const
{
    auto scratch =
        std::make_unique<ForwardScratch>(graph_.numVertices(), maxBatch);
    const std::size_t K = config_.fanouts.size();
    // Worst-case (no cross-destination dedup) row bounds per request:
    // the outermost layer serves exactly the seed; each inner layer's
    // destination set is at most the outer one fanned out by
    // (fanout + 1) (self term included).
    std::vector<std::size_t> dstBound(K, 1);
    for (std::size_t k = K - 1; k-- > 0;)
        dstBound[k] = dstBound[k + 1] * (config_.fanouts[k + 1] + 1);

    scratch->batch.resize(maxBatch);
    scratch->trees.resize(maxBatch);
    scratch->dstOffset.resize(K * (maxBatch + 1), 0);
    scratch->agg.resize(K);
    scratch->out.resize(K);
    for (std::size_t k = 0; k < K; ++k) {
        scratch->agg[k].reshape(maxBatch * dstBound[k],
                                layers_[k]->inFeatures());
        scratch->out[k].reshape(maxBatch * dstBound[k],
                                layers_[k]->outFeatures());
    }
    for (auto &tree : scratch->trees) {
        // graphite-lint: allow(alloc) cold scratch construction: the
        // worst-case reservation that keeps the serving loop heap-quiet.
        tree.blocks.resize(K);
        for (std::size_t k = 0; k < K; ++k) {
            FlatBlock &block = tree.blocks[k];
            const std::size_t srcBound =
                dstBound[k] * (config_.fanouts[k] + 1);
            // graphite-lint: allow(alloc) cold scratch construction.
            block.rowPtr.reserve(dstBound[k] + 1);
            // graphite-lint: allow(alloc) cold scratch construction.
            block.dstVertices.reserve(dstBound[k]);
            // graphite-lint: allow(alloc) cold scratch construction.
            block.srcVertices.reserve(srcBound);
            // graphite-lint: allow(alloc) cold scratch construction.
            block.colIdx.reserve(dstBound[k] * config_.fanouts[k]);
        }
    }
    return scratch;
}

void
InferenceServer::gatherFullMeanRow(VertexId v, Feature *dst) const
{
    if (overlay_ != nullptr)
        fullMeanRow(*overlay_, features_, v, dst);
    else
        fullMeanRow(graph_, features_, v, dst);
}

void
InferenceServer::forwardBatch(ForwardScratch &scratch, std::size_t n,
                              AggPolicy policy)
{
    GRAPHITE_TRACE_SPAN("serve.batch");
    auto &metrics = obs::MetricsRegistry::global();
    static obs::Counter &requestsCounter =
        metrics.counter("serve.requests");
    static obs::Counter &batchesCounter = metrics.counter("serve.batches");
    static obs::Counter &bytesCounter =
        metrics.counter("serve.bytes_gathered");
    static obs::Histogram &batchSizeHist =
        metrics.histogram("serve.batch_size");
    static obs::Histogram &latencyHist =
        metrics.histogram("serve.latency_us");

    GRAPHITE_ASSERT(n > 0 && n <= scratch.maxBatch,
                    "forwardBatch: batch size out of range");
    const std::size_t K = config_.fanouts.size();
    const std::span<const VertexId> fanouts(config_.fanouts);

    // 1. Sample every request's K-hop tree independently from its id —
    // the batch is block-diagonal, so each tree (and through the
    // row-independent GEMM, each embedding) is a pure function of the
    // request id, whatever else shares the batch.
    for (std::size_t r = 0; r < n; ++r) {
        Rng rng(requestSeed(scratch.batch[r].id));
        if (overlay_ != nullptr) {
            sampleTree(*overlay_, scratch.batch[r].vertex, fanouts, rng,
                       scratch.sampler, scratch.trees[r]);
        } else {
            sampleTree(graph_, scratch.batch[r].vertex, fanouts, rng,
                       scratch.sampler, scratch.trees[r]);
        }
    }

    // 2. Per-layer destination row offsets of the concatenation.
    for (std::size_t k = 0; k < K; ++k) {
        std::size_t *off =
            scratch.dstOffset.data() + k * (scratch.maxBatch + 1);
        std::size_t total = 0;
        for (std::size_t r = 0; r < n; ++r) {
            off[r] = total;
            total += scratch.trees[r].blocks[k].dstVertices.size();
        }
        off[n] = total;
    }

    // 3. Layer stack: sampled mean aggregation per destination row,
    // then one serial packed GEMM over the concatenated rows — the
    // batching win; the plan cache in GnnLayer amortises the pack.
    std::uint64_t bytes = 0;
    const bool cacheActive =
        policy == AggPolicy::HubExactCached && cache_.enabled();
    // HubExactCached degrades to the pure sampled estimate when the
    // cache is disabled — serving then stays bitwise identical to the
    // serveOne() replay, the header's determinism contract. Only the
    // explicit oracle policy takes the hub-exact path cache-free.
    const bool hubExact =
        cacheActive || policy == AggPolicy::HubExactUncached;
    for (std::size_t k = 0; k < K; ++k) {
        GnnLayer &layer = *layers_[k];
        const std::size_t inF = layer.inFeatures();
        const std::size_t *off =
            scratch.dstOffset.data() + k * (scratch.maxBatch + 1);
        const std::size_t *prevOff =
            k > 0
                ? scratch.dstOffset.data() + (k - 1) * (scratch.maxBatch + 1)
                : nullptr;
        const std::size_t totalDst = off[n];
        DenseMatrix &agg = scratch.agg[k];
        agg.reshape(totalDst, inF);
        DenseMatrix &outM = scratch.out[k];
        outM.reshape(totalDst, layer.outFeatures());
        const DenseMatrix &src = k > 0 ? scratch.out[k - 1] : features_;
        const Bytes srcRowBytes = src.rowBytes();

        for (std::size_t r = 0; r < n; ++r) {
            const FlatBlock &block = scratch.trees[r].blocks[k];
            const std::size_t numDst = block.dstVertices.size();
            const std::size_t srcBase = k > 0 ? prevOff[r] : 0;
            for (std::size_t i = 0; i < numDst; ++i) {
                Feature *dstRow = agg.row(off[r] + i);
                if (k == 0 && hubExact) {
                    const VertexId v = block.dstVertices[i];
                    const EdgeId deg = liveDegree(v);
                    if (cache_.admits(deg)) {
                        if (cacheActive && cache_.lookup(v, dstRow)) {
                            // Hub hit: one cached row read replaces
                            // the whole fan-in gather.
                            bytes += srcRowBytes;
                            continue;
                        }
                        // Stale-fill protocol: snapshot the shard fill
                        // epoch *before* gathering; a concurrent edge
                        // insert on this shard bumps it, and
                        // putIfFresh then discards this row rather
                        // than installing pre-insert adjacency.
                        const std::uint64_t epoch =
                            cacheActive ? cache_.fillEpoch(v) : 0;
                        gatherFullMeanRow(v, dstRow);
                        bytes += (deg + 1) * srcRowBytes;
                        if (cacheActive)
                            cache_.putIfFresh(v, dstRow, epoch);
                        continue;
                    }
                }
                // Sampled SAGE-mean: self row plus sampled neighbors,
                // scaled by 1/(fan-in + 1). Local source index i is
                // the destination's own row (dst set prefixes src).
                const Feature *selfRow =
                    k > 0 ? src.row(srcBase + i)
                          : src.row(block.srcVertices[i]);
                for (std::size_t c = 0; c < inF; ++c)
                    dstRow[c] = selfRow[c];
                const EdgeId rowBegin = block.rowPtr[i];
                const EdgeId rowEnd = block.rowPtr[i + 1];
                for (EdgeId e = rowBegin; e < rowEnd; ++e) {
                    const std::size_t j = block.colIdx[e];
                    const Feature *neighborRow =
                        k > 0 ? src.row(srcBase + j)
                              : src.row(block.srcVertices[j]);
                    for (std::size_t c = 0; c < inF; ++c)
                        dstRow[c] += neighborRow[c];
                }
                const float scale =
                    1.0f /
                    (1.0f + static_cast<float>(rowEnd - rowBegin));
                for (std::size_t c = 0; c < inF; ++c)
                    dstRow[c] *= scale;
                bytes += (1 + rowEnd - rowBegin) * srcRowBytes;
            }
        }

        gemmBlockSerial(agg.row(0), totalDst, agg.rowStride(),
                        layer.packedWeights(config_.precision),
                        outM.row(0), outM.rowStride(), inF);
        // Serial on purpose: forwardBatch runs concurrently on the
        // consumer thread and serveOne oracle callers, and the
        // pool-backed addBias/reluForward would enter the global
        // ThreadPool::runOnAll from both at once (found by the TSan
        // churn sweep — a panic under GRAPHITE_CHECKS, silent pool-job
        // corruption in Release).
        addBiasSerial(outM, layer.bias());
        if (layer.hasRelu())
            reluForwardSerial(outM);
    }

    // 4. Deliver: the outermost layer has exactly one destination row
    // per request (its seed).
    const DenseMatrix &finalOut = scratch.out[K - 1];
    const std::size_t *finalOff =
        scratch.dstOffset.data() + (K - 1) * (scratch.maxBatch + 1);
    const std::size_t outF = layers_.back()->outFeatures();
    const std::uint64_t now = monotonicNanos();
    for (std::size_t r = 0; r < n; ++r) {
        const InferenceRequest &req = scratch.batch[r];
        GRAPHITE_DCHECK(
            scratch.trees[r].blocks[K - 1].dstVertices.size() == 1,
            "outermost block must hold exactly the seed");
        const Feature *embedding = finalOut.row(finalOff[r]);
        if (req.out != nullptr)
            std::memcpy(req.out, embedding, outF * sizeof(Feature));
        const std::uint64_t elapsedNs =
            now > req.enqueueNs ? now - req.enqueueNs : 0;
        if (req.latencyUs != nullptr)
            *req.latencyUs = static_cast<double>(elapsedNs) / 1000.0;
        latencyHist.observe(elapsedNs / 1000);
    }

    requestsCounter.add(n);
    batchesCounter.increment();
    bytesCounter.add(bytes);
    batchSizeHist.observe(n);
    // Release-publish the batch: every req.out/req.latencyUs write
    // above happens-before a reader that acquires requestsServed via
    // stats() and observes the bumped count — the only completion
    // signal a producer can poll before reading its output row.
    requestsServed_.fetch_add(n, std::memory_order_release);
    batchesServed_.fetch_add(1, std::memory_order_relaxed);
    bytesGathered_.fetch_add(bytes, std::memory_order_relaxed);
}

void
InferenceServer::warmup()
{
    GRAPHITE_ASSERT(graph_.numVertices() > 0, "warmup needs a graph");
    // Three passes over a synthetic full batch touch every lazy
    // allocation on the path: the packed-weight plan, the GEMM pack
    // scratch, metric/trace registration, sampler buffers, and both
    // the cache-fill and cache-hit branches. Row-count worst cases are
    // already reserved by makeScratch.
    const std::size_t n = config_.maxBatch;
    for (std::size_t pass = 0; pass < 3; ++pass) {
        for (std::size_t r = 0; r < n; ++r) {
            InferenceRequest &req = scratch_->batch[r];
            // High ids keep warmup sampling streams disjoint from live
            // request ids without affecting them (trees are per-id).
            req.id = ~std::uint64_t{0} - r - pass * n;
            req.vertex = static_cast<VertexId>(
                (r + pass * n) % graph_.numVertices());
            req.enqueueNs = monotonicNanos();
            req.out = nullptr;
            req.latencyUs = nullptr;
        }
        forwardBatch(*scratch_, n,
                     pass < 2 ? AggPolicy::HubExactCached
                              : AggPolicy::Sampled);
    }
    serveOne(~std::uint64_t{0}, 0, nullptr);
    serveOneHubExact(~std::uint64_t{0}, 0, nullptr);
}

void
InferenceServer::run()
{
    const std::int64_t budgetNs = config_.latencyBudgetUs * 1000;
    for (;;) {
        // Honor compaction requests between batches: this thread is
        // the only batch forwarder, so excluding updates and oracle
        // reads here gives compact() the exclusive access it needs.
        if (compactionRequested_.exchange(false,
                                          std::memory_order_acq_rel) &&
            overlay_ != nullptr) {
            MutexLock update(updateMutex_);
            MutexLock oracle(oracleMutex_);
            compactLocked();
        }
        const std::size_t n = queue_.popBatch(
            scratch_->batch.data(), config_.maxBatch, budgetNs);
        if (n == 0)
            return; // closed and drained
        forwardBatch(*scratch_, n, AggPolicy::HubExactCached);
    }
}

void
InferenceServer::serveOne(std::uint64_t requestId, VertexId vertex,
                          Feature *out)
{
    MutexLock lock(oracleMutex_);
    InferenceRequest &req = oracleScratch_->batch[0];
    req.id = requestId;
    req.vertex = vertex;
    req.enqueueNs = monotonicNanos();
    req.out = out;
    req.latencyUs = nullptr;
    forwardBatch(*oracleScratch_, 1, AggPolicy::Sampled);
}

void
InferenceServer::serveOneHubExact(std::uint64_t requestId,
                                  VertexId vertex, Feature *out)
{
    MutexLock lock(oracleMutex_);
    InferenceRequest &req = oracleScratch_->batch[0];
    req.id = requestId;
    req.vertex = vertex;
    req.enqueueNs = monotonicNanos();
    req.out = out;
    req.latencyUs = nullptr;
    forwardBatch(*oracleScratch_, 1, AggPolicy::HubExactUncached);
}

DeltaCsr::AddEdge
InferenceServer::insertEdge(VertexId src, VertexId dst)
{
    GRAPHITE_ASSERT(overlay_ != nullptr,
                    "insertEdge requires overlay (dynamic-graph) mode");
    MutexLock lock(updateMutex_);
    const DeltaCsr::AddEdge result = overlay_->addEdge(src, dst);
    if (result != DeltaCsr::AddEdge::Added)
        return result;

    const EdgeId newDegree = overlay_->degree(src);
    liveStats_.onEdgeInserted(newDegree);

    // Cache coherence: src's cached aggregation row now misses the new
    // neighbor. Patch it in place (exact mean rescale) or drop it;
    // both bump the shard fill epoch, so any in-flight fill gathered
    // from pre-insert adjacency is rejected by putIfFresh.
    if (cache_.enabled()) {
        if (config_.patchCacheOnInsert) {
            cache_.patchMeanRow(src, features_.row(dst), newDegree - 1);
        } else {
            cache_.invalidate(src);
        }
    }

    // Re-derive the auto admission threshold as hubs grow.
    if (config_.thresholdRefreshEvery > 0 &&
        ++insertsSinceRefresh_ >= config_.thresholdRefreshEvery) {
        insertsSinceRefresh_ = 0;
        refreshHotThreshold();
    }

    edgeInserts_.fetch_add(1, std::memory_order_relaxed);
    return result;
}

void
InferenceServer::refreshHotThreshold()
{
    // Explicit thresholds are a user pin; only auto mode tracks hub
    // growth. Degrees only grow under insert-only churn, so the
    // re-derived threshold is clamped monotone — a transiently lower
    // estimate must not widen the admissible set beyond capacity.
    if (config_.hotCacheMinDegree != 0 || !cache_.enabled() ||
        overlay_ == nullptr)
        return;
    for (VertexId v = 0; v < overlay_->numVertices(); ++v)
        degreeScratch_[v] = overlay_->degree(v);
    const EdgeId fresh = thresholdFromDegrees(
        degreeScratch_, overlay_->numEdges(), config_);
    const EdgeId current = hotDegreeThreshold();
    if (fresh > current) {
        hotDegreeThreshold_.store(fresh, std::memory_order_relaxed);
        cache_.setMinDegree(fresh);
    }
}

void
InferenceServer::requestCompaction()
{
    if (overlay_ == nullptr)
        return;
    compactionRequested_.store(true, std::memory_order_release);
}

void
InferenceServer::compactNow()
{
    if (overlay_ == nullptr)
        return;
    MutexLock update(updateMutex_);
    MutexLock oracle(oracleMutex_);
    compactLocked();
}

void
InferenceServer::compactLocked()
{
    if (overlay_->deltaEdges() == 0)
        return;
    overlay_->compact();
    // Rows cached before the compaction were gathered in
    // base-then-delta order; the compacted base gathers in sorted
    // merged order. Flush so cache-on serving stays bitwise identical
    // to a fresh hub-exact gather (HotVertexCache::clear doc).
    cache_.clear();
    compactions_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter &compactionCounter =
        obs::MetricsRegistry::global().counter("serve.compactions");
    compactionCounter.increment();
}

GraphStats
InferenceServer::liveGraphStats() const
{
    MutexLock lock(updateMutex_);
    return liveStats_.current();
}

ServeStats
InferenceServer::stats() const
{
    ServeStats s;
    s.requestsServed = requestsServed_.load(std::memory_order_acquire);
    s.batchesServed = batchesServed_.load(std::memory_order_relaxed);
    s.bytesGathered = bytesGathered_.load(std::memory_order_relaxed);
    s.edgeInserts = edgeInserts_.load(std::memory_order_relaxed);
    s.compactions = compactions_.load(std::memory_order_relaxed);
    s.cache = cache_.stats();
    return s;
}

} // namespace graphite::serve
