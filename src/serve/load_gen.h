/**
 * @file
 * Synthetic open-loop load generator for the serving layer: Zipfian
 * vertex popularity over degree rank (hot hubs get the traffic — the
 * regime the hot-vertex cache exists for) and Poisson arrivals at a
 * fixed offered rate. Open loop means the arrival process never slows
 * down for the server: a full queue drops the request and the drop is
 * reported, so latency numbers are honest under overload.
 *
 * One run drives a warmup phase (cache residency + allocation warmup,
 * excluded from the percentiles) and a measured phase, and reports
 * achieved QPS, exact p50/p99 latency (nth_element over recorded
 * per-request latencies, not histogram estimates), cache hit rate and
 * gather traffic — the numbers bench/serve_load.cpp and the bench
 * smoke serve section archive.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "serve/server.h"

namespace graphite::serve {

/**
 * Exact q-quantile of @p values (mutated by selection), nearest-rank
 * convention: rank = ceil(q * n) clamped to [1, n], result = the
 * rank-th smallest value. This matches MetricsRegistry's
 * estimateQuantile so the load-gen's exact percentiles and the
 * histogram estimates answer the same question — the old half-up
 * rounding of q*(n-1) sat between conventions and disagreed with both
 * on small samples. Returns 0 for an empty vector.
 */
double exactPercentile(std::vector<double> &values, double q);

/** Open-loop workload shape. */
struct LoadGenConfig
{
    /** Measured requests (after warmup). */
    std::size_t numRequests = 20000;
    /** Cache/allocation warmup requests, excluded from percentiles. */
    std::size_t warmupRequests = 2000;
    /** Offered arrival rate (Poisson), requests per second. */
    double offeredQps = 20000.0;
    /** Zipf exponent over degree-ranked vertices (0 = uniform). */
    double zipfExponent = 0.9;
    /** Restrict traffic to the top-N vertices by degree; 0 = all. */
    std::size_t popularVertices = 0;
    std::uint64_t seed = 7;
    /**
     * Optional post-run capture (no overhead when left null): row i of
     * @c resultsOut is request i's served embedding, @c verticesOut[i]
     * its target vertex and @c latenciesOut[i] its latency in
     * microseconds (-1 = dropped, warmup requests included in all
     * three). Request i's sampling seed is its id i, so a caller can
     * replay any captured request against an oracle server — the churn
     * bench compares embeddings served under live edge inserts with a
     * compacted-graph replay to measure staleness. resultsOut is
     * resized to (warmupRequests + numRequests) x outFeatures().
     */
    DenseMatrix *resultsOut = nullptr;
    std::vector<VertexId> *verticesOut = nullptr;
    std::vector<double> *latenciesOut = nullptr;
};

/** Measured-phase results of one load run. */
struct LoadGenReport
{
    std::uint64_t offered = 0;
    std::uint64_t accepted = 0;
    std::uint64_t dropped = 0;
    double durationSeconds = 0.0;
    /** Accepted-and-served requests per second of the measured phase. */
    double qps = 0.0;
    double p50Us = 0.0;
    double p99Us = 0.0;
    double meanUs = 0.0;
    /** Cache hits / (hits + misses) in the measured phase; 0 if none. */
    double cacheHitRate = 0.0;
    /** serve bytes gathered during the measured phase. */
    std::uint64_t bytesGathered = 0;
    std::uint64_t batches = 0;
    double meanBatchSize = 0.0;
};

/**
 * Drive @p server with the configured workload: warmup() the server,
 * start its consumer thread, push warmupRequests then numRequests with
 * Poisson arrivals and Zipf-over-degree vertex popularity, close the
 * queue, join, and report the measured phase. The server's queue is
 * closed afterwards — use a fresh server per run.
 */
LoadGenReport runServeLoad(InferenceServer &server,
                           const LoadGenConfig &config);

} // namespace graphite::serve
