#include "serve/hot_vertex_cache.h"

#include <algorithm>
#include <cstring>
#include <functional>

#include "common/assert.h"
#include "graph/csr_graph.h"
#include "graph/delta_csr.h"
#include "obs/metrics.h"

namespace graphite::serve {

namespace {

/** splitmix64 finalizer: avalanche vertex ids into shard/table bits. */
std::uint64_t
mixHash(VertexId v)
{
    std::uint64_t z = static_cast<std::uint64_t>(v) +
                      0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::size_t
ceilPow2(std::size_t v)
{
    std::size_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

EdgeId
churnFreeDegreeThreshold(const CsrGraph &graph, std::size_t capacity)
{
    if (capacity == 0 || graph.numVertices() == 0)
        return 0;
    std::vector<EdgeId> degrees(graph.numVertices());
    for (VertexId v = 0; v < graph.numVertices(); ++v)
        degrees[v] = graph.degree(v);
    const std::size_t nth =
        std::min(capacity / 2, degrees.size() - 1);
    std::nth_element(degrees.begin(),
                     degrees.begin() + static_cast<std::ptrdiff_t>(nth),
                     degrees.end(), std::greater<EdgeId>());
    return degrees[nth];
}

EdgeId
churnFreeDegreeThreshold(const DeltaCsr &graph, std::size_t capacity,
                         std::vector<EdgeId> &degreeScratch)
{
    if (capacity == 0 || graph.numVertices() == 0)
        return 0;
    // Grows once to |V|; every periodic threshold re-evaluation
    // under churn then reuses the storage.
    degreeScratch.resize(graph.numVertices());
    for (VertexId v = 0; v < graph.numVertices(); ++v)
        degreeScratch[v] = graph.degree(v);
    const std::size_t nth =
        std::min(capacity / 2, degreeScratch.size() - 1);
    std::nth_element(degreeScratch.begin(),
                     degreeScratch.begin() +
                         static_cast<std::ptrdiff_t>(nth),
                     degreeScratch.end(), std::greater<EdgeId>());
    return degreeScratch[nth];
}

HotVertexCache::HotVertexCache(std::size_t capacity, std::size_t shards,
                               std::size_t rowWidth, EdgeId minDegree)
    : slotsPerShard_(0), rowWidth_(rowWidth), minDegree_(minDegree),
      tableMask_(0)
{
    GRAPHITE_ASSERT(rowWidth > 0, "hot cache needs rowWidth > 0");
    if (capacity == 0)
        return; // disabled: no shards, lookup/put are no-ops
    const std::size_t numShards =
        ceilPow2(shards == 0 ? 1 : shards);
    slotsPerShard_ = (capacity + numShards - 1) / numShards;
    // Open-addressing table at <= 0.5 load plus <= 0.25 tombstones
    // always keeps empty cells, so probes terminate.
    const std::size_t tableSize = ceilPow2(slotsPerShard_ * 2);
    tableMask_ = tableSize - 1;
    shards_ = std::vector<Shard>(numShards);
    for (auto &shard : shards_) {
        MutexLock lock(shard.mutex);
        // graphite-lint: allow(alloc) cold constructor preallocation;
        // all steady-state cache operations reuse this storage.
        shard.slotVertex.resize(slotsPerShard_, 0);
        // graphite-lint: allow(alloc) cold constructor preallocation.
        shard.refBit.resize(slotsPerShard_, 0);
        // graphite-lint: allow(alloc) cold constructor preallocation.
        shard.rows.resize(slotsPerShard_ * rowWidth_, 0.0f);
        // graphite-lint: allow(alloc) cold constructor preallocation.
        shard.table.resize(tableSize, kEmpty);
    }
}

HotVertexCache::Shard &
HotVertexCache::shardOf(VertexId v)
{
    // Shard selection uses the high hash bits, the table probe the low
    // ones, so the two index spaces stay uncorrelated.
    const std::uint64_t h = mixHash(v);
    return shards_[(h >> 32) & (shards_.size() - 1)];
}

const HotVertexCache::Shard &
HotVertexCache::shardOf(VertexId v) const
{
    const std::uint64_t h = mixHash(v);
    return shards_[(h >> 32) & (shards_.size() - 1)];
}

std::int32_t
HotVertexCache::findSlot(const Shard &shard, VertexId v) const
{
    std::size_t i = mixHash(v) & tableMask_;
    for (;;) {
        const std::int32_t cell = shard.table[i];
        if (cell == kEmpty)
            return kEmpty;
        if (cell != kTombstone &&
            shard.slotVertex[static_cast<std::size_t>(cell)] == v)
            return cell;
        i = (i + 1) & tableMask_;
    }
}

void
HotVertexCache::rehashShard(Shard &shard)
{
    // In-place tombstone purge: clear the (already allocated) table
    // and reinsert every resident slot. No heap traffic.
    for (auto &cell : shard.table)
        cell = kEmpty;
    shard.tombstones = 0;
    for (std::size_t slot = 0; slot < shard.used; ++slot) {
        std::size_t i = mixHash(shard.slotVertex[slot]) & tableMask_;
        while (shard.table[i] != kEmpty)
            i = (i + 1) & tableMask_;
        shard.table[i] = static_cast<std::int32_t>(slot);
    }
}

bool
HotVertexCache::lookup(VertexId v, Feature *dst)
{
    // A disabled cache must stay invisible in the stats: counting a
    // miss here made cache-off A/B legs report a fake 0% hit rate
    // instead of "no cache".
    if (!enabled())
        return false;
    Shard &shard = shardOf(v);
    bool hit = false;
    {
        MutexLock lock(shard.mutex);
        const std::int32_t slot = findSlot(shard, v);
        if (slot != kEmpty) {
            hit = true;
            shard.refBit[static_cast<std::size_t>(slot)] = 1;
            std::memcpy(dst,
                        shard.rows.data() +
                            static_cast<std::size_t>(slot) * rowWidth_,
                        rowWidth_ * sizeof(Feature));
        }
    }
    (hit ? hits_ : misses_).fetch_add(1, std::memory_order_relaxed);
    return hit;
}

bool
HotVertexCache::putLocked(Shard &shard, VertexId v, const Feature *row)
{
    bool evicted = false;
    std::int32_t slot = findSlot(shard, v);
    if (slot == kEmpty) {
        if (shard.used < slotsPerShard_) {
            slot = static_cast<std::int32_t>(shard.used++);
        } else {
            // CLOCK second chance: spend ref bits until a cold
            // slot comes under the hand (terminates within two
            // sweeps — each pass clears a bit).
            while (shard.refBit[shard.clockHand] != 0) {
                shard.refBit[shard.clockHand] = 0;
                shard.clockHand =
                    (shard.clockHand + 1) % slotsPerShard_;
            }
            slot = static_cast<std::int32_t>(shard.clockHand);
            shard.clockHand = (shard.clockHand + 1) % slotsPerShard_;
            // Unlink the victim from the index.
            const VertexId victim =
                shard.slotVertex[static_cast<std::size_t>(slot)];
            std::size_t i = mixHash(victim) & tableMask_;
            while (shard.table[i] != slot) {
                GRAPHITE_DCHECK(shard.table[i] != kEmpty,
                                "evicted vertex missing from table");
                i = (i + 1) & tableMask_;
            }
            shard.table[i] = kTombstone;
            ++shard.tombstones;
            evicted = true;
        }
        shard.slotVertex[static_cast<std::size_t>(slot)] = v;
        // Link the new resident: first empty or tombstone cell on
        // v's probe chain.
        std::size_t i = mixHash(v) & tableMask_;
        while (shard.table[i] != kEmpty &&
               shard.table[i] != kTombstone)
            i = (i + 1) & tableMask_;
        if (shard.table[i] == kTombstone)
            --shard.tombstones;
        shard.table[i] = slot;
        if (shard.tombstones * 4 > shard.table.size())
            rehashShard(shard);
    }
    shard.refBit[static_cast<std::size_t>(slot)] = 1;
    std::memcpy(shard.rows.data() +
                    static_cast<std::size_t>(slot) * rowWidth_,
                row, rowWidth_ * sizeof(Feature));
    return evicted;
}

void
HotVertexCache::put(VertexId v, const Feature *row)
{
    if (!enabled())
        return;
    Shard &shard = shardOf(v);
    bool evicted = false;
    {
        MutexLock lock(shard.mutex);
        evicted = putLocked(shard, v, row);
    }
    puts_.fetch_add(1, std::memory_order_relaxed);
    if (evicted)
        evictions_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t
HotVertexCache::fillEpoch(VertexId v) const
{
    if (!enabled())
        return 0;
    // Acquire pairs with invalidate()'s release bump: a filler that
    // reads epoch E is guaranteed that if an invalidation happened
    // before this load, it sees the bumped value and putIfFresh will
    // reject the (possibly stale) row.
    return shardOf(v).epoch.load(std::memory_order_acquire);
}

bool
HotVertexCache::putIfFresh(VertexId v, const Feature *row,
                           std::uint64_t epoch)
{
    if (!enabled())
        return false;
    Shard &shard = shardOf(v);
    bool evicted = false;
    {
        MutexLock lock(shard.mutex);
        // The epoch can only advance under the shard mutex, so a
        // relaxed load here is race-free; a mismatch means an edge
        // update landed between the caller's gather and now — the row
        // may encode pre-update adjacency and must not be installed.
        if (shard.epoch.load(std::memory_order_relaxed) != epoch)
            return false;
        evicted = putLocked(shard, v, row);
    }
    puts_.fetch_add(1, std::memory_order_relaxed);
    if (evicted)
        evictions_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

bool
HotVertexCache::invalidate(VertexId v)
{
    if (!enabled())
        return false;
    Shard &shard = shardOf(v);
    bool dropped = false;
    {
        MutexLock lock(shard.mutex);
        // Bump first (release): any fill that sampled the old epoch
        // before this point is now rejected by putIfFresh, resident or
        // not — the in-flight row may predate the edge update.
        shard.epoch.fetch_add(1, std::memory_order_release);
        const std::int32_t slot = findSlot(shard, v);
        if (slot != kEmpty) {
            dropped = true;
            const auto s = static_cast<std::size_t>(slot);
            // Tombstone v's table cell.
            std::size_t i = mixHash(v) & tableMask_;
            while (shard.table[i] != slot) {
                GRAPHITE_DCHECK(shard.table[i] != kEmpty,
                                "resident vertex missing from table");
                i = (i + 1) & tableMask_;
            }
            shard.table[i] = kTombstone;
            ++shard.tombstones;
            // Swap-with-last keeps slots [0, used) densely resident —
            // the invariant the CLOCK sweep and rehash depend on.
            const std::size_t last = shard.used - 1;
            if (s != last) {
                const VertexId moved = shard.slotVertex[last];
                shard.slotVertex[s] = moved;
                shard.refBit[s] = shard.refBit[last];
                std::memcpy(shard.rows.data() + s * rowWidth_,
                            shard.rows.data() + last * rowWidth_,
                            rowWidth_ * sizeof(Feature));
                std::size_t j = mixHash(moved) & tableMask_;
                while (shard.table[j] !=
                       static_cast<std::int32_t>(last)) {
                    GRAPHITE_DCHECK(shard.table[j] != kEmpty,
                                    "moved vertex missing from table");
                    j = (j + 1) & tableMask_;
                }
                shard.table[j] = static_cast<std::int32_t>(s);
            }
            --shard.used;
            // The CLOCK hand only sweeps when the shard is full, but
            // keep it inside the resident prefix so the next sweep
            // starts on a live slot.
            if (shard.used > 0 && shard.clockHand >= shard.used)
                shard.clockHand = 0;
            if (shard.tombstones * 4 > shard.table.size())
                rehashShard(shard);
        }
    }
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter &invalidationCounter =
        obs::MetricsRegistry::global().counter("serve.invalidations");
    invalidationCounter.increment();
    return dropped;
}

bool
HotVertexCache::patchMeanRow(VertexId v, const Feature *addedRow,
                             EdgeId oldDegree)
{
    if (!enabled())
        return false;
    Shard &shard = shardOf(v);
    bool patched = false;
    {
        MutexLock lock(shard.mutex);
        // Even when the patch applies, in-flight fills gathered from
        // the pre-insert adjacency must not overwrite it later.
        shard.epoch.fetch_add(1, std::memory_order_release);
        const std::int32_t slot = findSlot(shard, v);
        if (slot != kEmpty) {
            patched = true;
            Feature *row = shard.rows.data() +
                           static_cast<std::size_t>(slot) * rowWidth_;
            // (d+1)-term mean -> (d+2)-term mean including addedRow.
            const float oldTerms =
                1.0f + static_cast<float>(oldDegree);
            const float invNewTerms = 1.0f / (oldTerms + 1.0f);
            for (std::size_t c = 0; c < rowWidth_; ++c)
                row[c] = (row[c] * oldTerms + addedRow[c]) * invNewTerms;
        }
    }
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter &invalidationCounter =
        obs::MetricsRegistry::global().counter("serve.invalidations");
    invalidationCounter.increment();
    return patched;
}

void
HotVertexCache::clear()
{
    if (!enabled())
        return;
    for (auto &shard : shards_) {
        MutexLock lock(shard.mutex);
        shard.epoch.fetch_add(1, std::memory_order_release);
        for (auto &cell : shard.table)
            cell = kEmpty;
        std::fill(shard.refBit.begin(), shard.refBit.end(),
                  std::uint8_t{0});
        shard.used = 0;
        shard.clockHand = 0;
        shard.tombstones = 0;
    }
}

HotVertexCache::Stats
HotVertexCache::stats() const
{
    Stats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.puts = puts_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    s.invalidations = invalidations_.load(std::memory_order_relaxed);
    return s;
}

void
HotVertexCache::resetStats()
{
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
    puts_.store(0, std::memory_order_relaxed);
    evictions_.store(0, std::memory_order_relaxed);
    invalidations_.store(0, std::memory_order_relaxed);
}

} // namespace graphite::serve
