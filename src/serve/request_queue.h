/**
 * @file
 * Bounded MPSC queue of per-vertex inference requests — the front door
 * of the online serving layer (DESIGN.md §13).
 *
 * Producers (request threads, the load generator) push single-vertex
 * queries without blocking; the one consumer (InferenceServer::run)
 * pops *batches*, coalescing whatever arrives within a latency budget
 * into one sampled forward pass. The queue is the only producer/
 * consumer handoff in the serving path, so it is deliberately tiny: a
 * preallocated ring, one Mutex (annotated for -Wthread-safety), one
 * CondVar. Push is non-blocking — an open-loop arrival process must
 * shed load at the door rather than queue unboundedly, so a full ring
 * rejects and the caller counts the drop.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/types.h"

namespace graphite::serve {

/** Monotonic (steady-clock) nanosecond timestamp for latency math. */
std::uint64_t monotonicNanos();

/** One per-vertex inference query. */
struct InferenceRequest
{
    /** Request id; seeds neighbor sampling via requestSeed(id). */
    std::uint64_t id = 0;
    /** Vertex whose embedding is requested. */
    VertexId vertex = 0;
    /** monotonicNanos() at enqueue, for end-to-end latency. */
    std::uint64_t enqueueNs = 0;
    /**
     * Caller-owned destination row (outFeatures wide) the served
     * embedding is written to. Must stay valid until served.
     */
    Feature *out = nullptr;
    /** Optional out-param: end-to-end latency in microseconds. */
    double *latencyUs = nullptr;
};

/**
 * Bounded multi-producer single-consumer request queue.
 *
 * push() never blocks (false on full or closed); popBatch() blocks for
 * the first request, then drains until the batch is full, the latency
 * budget measured from that first pop expires, or the queue closes.
 */
class RequestQueue
{
  public:
    explicit RequestQueue(std::size_t capacity);

    RequestQueue(const RequestQueue &) = delete;
    RequestQueue &operator=(const RequestQueue &) = delete;

    /**
     * Enqueue @p req. Returns false — without waiting — when the ring
     * is full or the queue is closed; the producer owns the drop.
     */
    bool push(const InferenceRequest &req);

    /**
     * Pop up to @p max requests into @p out (caller-preallocated).
     * Blocks until at least one request is available, then keeps
     * draining until @p max requests are popped or @p budgetNs
     * nanoseconds have elapsed since the first pop — the micro-batcher
     * deadline. Returns the number popped; 0 means closed and drained
     * (the consumer's shutdown signal).
     */
    std::size_t popBatch(InferenceRequest *out, std::size_t max,
                         std::int64_t budgetNs);

    /**
     * Close the queue: subsequent pushes fail, popBatch drains what is
     * left and then returns 0.
     */
    void close();

    bool closed() const;

    /** Instantaneous occupancy (racy by nature; for reporting). */
    std::size_t size() const;

    std::size_t capacity() const { return ring_.size(); }

  private:
    mutable Mutex mutex_;
    /** Signalled on push and on close. */
    CondVar nonEmpty_;
    std::vector<InferenceRequest> ring_ GRAPHITE_GUARDED_BY(mutex_);
    std::size_t head_ GRAPHITE_GUARDED_BY(mutex_) = 0;
    std::size_t count_ GRAPHITE_GUARDED_BY(mutex_) = 0;
    bool closed_ GRAPHITE_GUARDED_BY(mutex_) = false;
};

} // namespace graphite::serve
