/**
 * @file
 * Degree-prioritized cache of layer-1 aggregation rows for hub
 * vertices — the serving-side use of the paper's locality insight
 * (Section 4.2): in power-law graphs a small set of high-degree hubs
 * dominates fan-in, so their aggregations are recomputed constantly.
 * Caching one aggregated row per hot hub turns a full fan-in gather
 * (degree+1 feature-row reads) into a single row read.
 *
 * The cached value is the *full-neighborhood* mean aggregation of the
 * input features — deterministic per vertex, independent of which
 * request sampled it — so a cached row is reusable by every request
 * that touches the hub, at a bounded deviation from any per-request
 * sampled estimate of the same mean.
 *
 * Structure: fixed capacity split over power-of-two shards; each shard
 * owns its rows, an open-addressing vertex index, and a CLOCK
 * (second-chance) hand, all under one graphite::Mutex with GUARDED_BY
 * annotations. Admission is by degree threshold (the server derives it
 * from graph stats), eviction by CLOCK. All storage is allocated in
 * the constructor: steady-state lookup/put never touches the heap.
 */

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/types.h"

namespace graphite {

class CsrGraph;
class DeltaCsr;

namespace serve {

/**
 * Churn-free admission threshold for a cache of @p capacity rows: the
 * degree of the (capacity/2)-th highest-degree vertex, so the
 * admissible set fits the cache with headroom. Thresholding at the
 * capacity-th degree instead makes the admissible set ≈ capacity and
 * the cache churns — measured-phase evictions put mega-hub
 * full-neighborhood re-gathers on the latency tail (DESIGN.md §13).
 */
EdgeId churnFreeDegreeThreshold(const CsrGraph &graph,
                                std::size_t capacity);

/**
 * churnFreeDegreeThreshold over a delta-CSR overlay (degrees include
 * published delta edges). @p degreeScratch is caller-owned storage
 * resized to |V| once, so periodic re-evaluation under churn stays
 * allocation-free after the first call.
 */
EdgeId churnFreeDegreeThreshold(const DeltaCsr &graph,
                                std::size_t capacity,
                                std::vector<EdgeId> &degreeScratch);

/** Sharded CLOCK cache of per-hub aggregation rows. */
class HotVertexCache
{
  public:
    /**
     * @param capacity  total row slots (0 disables the cache).
     * @param shards    shard count, rounded up to a power of two.
     * @param rowWidth  floats per cached row (layer-1 input width).
     * @param minDegree admission threshold: only vertices with
     *                  degree >= minDegree are cached.
     */
    HotVertexCache(std::size_t capacity, std::size_t shards,
                   std::size_t rowWidth, EdgeId minDegree);

    HotVertexCache(const HotVertexCache &) = delete;
    HotVertexCache &operator=(const HotVertexCache &) = delete;

    /** False when constructed with zero capacity. */
    bool enabled() const { return slotsPerShard_ > 0; }

    /** Total row slots across shards (>= requested capacity). */
    std::size_t capacity() const
    {
        return slotsPerShard_ * shards_.size();
    }

    std::size_t rowWidth() const { return rowWidth_; }

    EdgeId
    minDegree() const
    {
        return minDegree_.load(std::memory_order_relaxed);
    }

    /**
     * Raise/replace the admission threshold. Safe while lookups and
     * puts run concurrently: admission is advisory (a row admitted
     * under the old threshold stays resident until evicted), so a
     * racing reader seeing either value is correct.
     */
    void
    setMinDegree(EdgeId minDegree)
    {
        minDegree_.store(minDegree, std::memory_order_relaxed);
    }

    /** @p v passes the degree admission filter. */
    bool admits(EdgeId degree) const { return degree >= minDegree(); }

    /**
     * Copy @p v's cached row into @p dst (rowWidth floats) and mark it
     * recently used. Returns false (counting a miss) when absent. A
     * disabled cache returns false without touching the hit/miss stats
     * — cache-off A/B legs report "no cache", not a 0% hit rate.
     */
    bool lookup(VertexId v, Feature *dst);

    /**
     * Install @p row (rowWidth floats) for @p v, CLOCK-evicting a
     * not-recently-used resident when the shard is full. Overwrites in
     * place if @p v is already resident.
     */
    void put(VertexId v, const Feature *row);

    /**
     * Shard fill epoch of @p v, for the stale-fill protocol (DESIGN.md
     * §14): read the epoch *before* gathering v's neighborhood, then
     * install with putIfFresh(). invalidate()/patchMeanRow() bump the
     * epoch, so a fill computed from pre-update adjacency can never be
     * installed after the update invalidated it.
     */
    std::uint64_t fillEpoch(VertexId v) const;

    /**
     * put(), unless @p v's shard fill epoch has advanced past
     * @p epoch (an edge update touched the shard since the caller
     * gathered the row). Returns true when the row was installed.
     */
    bool putIfFresh(VertexId v, const Feature *row, std::uint64_t epoch);

    /**
     * Drop @p v's cached row (edge-update path) and bump the shard
     * fill epoch so concurrent in-flight fills of the pre-update row
     * are rejected by putIfFresh(). Returns true when @p v was
     * resident.
     */
    bool invalidate(VertexId v);

    /**
     * Exact mean-aggregation patch for an inserted edge v -> u: if
     * @p v is resident, rescale its cached row from the
     * (@p oldDegree + 1)-term mean to include @p addedRow:
     *
     *   row' = (row * (oldDegree + 1) + addedRow) / (oldDegree + 2)
     *
     * Mathematically exact, but not bitwise identical to a re-gathered
     * mean (different FP summation order), so the bitwise serving
     * contract requires invalidate() instead; patching is the cheap
     * opt-in (see ServeConfig::patchCacheOnInsert). Bumps the shard
     * fill epoch either way. Returns true when the patch was applied.
     */
    bool patchMeanRow(VertexId v, const Feature *addedRow,
                      EdgeId oldDegree);

    /**
     * Drop every resident row and bump all shard fill epochs. Called
     * around overlay compaction: a compacted row gathers in sorted
     * merged order, not base-then-delta-chain order, so rows cached
     * before the compaction are mathematically equal but bitwise
     * different from post-compaction gathers — flushing keeps the
     * cache-on == hub-exact-oracle serving contract bitwise across
     * compactions. Allocation-free (the table is reset in place).
     */
    void clear();

    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t puts = 0;
        std::uint64_t evictions = 0;
        /** invalidate()/patchMeanRow() calls (edge-update traffic). */
        std::uint64_t invalidations = 0;
    };

    Stats stats() const;
    void resetStats();

  private:
    /** Index sentinel: empty table cell. */
    static constexpr std::int32_t kEmpty = -1;
    /** Index sentinel: deleted table cell (probe chains continue). */
    static constexpr std::int32_t kTombstone = -2;

    struct Shard
    {
        mutable Mutex mutex;
        /** Resident vertex per slot (valid for slots < used). */
        std::vector<VertexId> slotVertex GRAPHITE_GUARDED_BY(mutex);
        /** CLOCK reference bit per slot. */
        std::vector<std::uint8_t> refBit GRAPHITE_GUARDED_BY(mutex);
        /** Row storage, slot-major: slots * rowWidth floats. */
        std::vector<Feature> rows GRAPHITE_GUARDED_BY(mutex);
        /** Open-addressing vertex->slot index (kEmpty/kTombstone). */
        std::vector<std::int32_t> table GRAPHITE_GUARDED_BY(mutex);
        std::size_t used GRAPHITE_GUARDED_BY(mutex) = 0;
        std::size_t clockHand GRAPHITE_GUARDED_BY(mutex) = 0;
        std::size_t tombstones GRAPHITE_GUARDED_BY(mutex) = 0;
        /**
         * Fill epoch: bumped by invalidate()/patchMeanRow(), read
         * lock-free by fillEpoch(). Atomic (not merely guarded) so
         * the pre-gather read takes no lock; mutations happen under
         * the shard mutex.
         */
        std::atomic<std::uint64_t> epoch{0};
    };

    /** Slot of @p v in @p shard's table, or kEmpty. */
    std::int32_t findSlot(const Shard &shard, VertexId v) const
        GRAPHITE_REQUIRES(shard.mutex);
    /** Rebuild @p shard's table in place (tombstone purge). */
    void rehashShard(Shard &shard) GRAPHITE_REQUIRES(shard.mutex);
    /** put() body under @p shard's lock; returns whether it evicted. */
    bool putLocked(Shard &shard, VertexId v, const Feature *row)
        GRAPHITE_REQUIRES(shard.mutex);

    Shard &shardOf(VertexId v);
    const Shard &shardOf(VertexId v) const;

    std::size_t slotsPerShard_;
    std::size_t rowWidth_;
    std::atomic<EdgeId> minDegree_;
    std::size_t tableMask_;
    std::vector<Shard> shards_;

    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> puts_{0};
    std::atomic<std::uint64_t> evictions_{0};
    std::atomic<std::uint64_t> invalidations_{0};
};

} // namespace serve
} // namespace graphite
