/**
 * @file
 * Degree-prioritized cache of layer-1 aggregation rows for hub
 * vertices — the serving-side use of the paper's locality insight
 * (Section 4.2): in power-law graphs a small set of high-degree hubs
 * dominates fan-in, so their aggregations are recomputed constantly.
 * Caching one aggregated row per hot hub turns a full fan-in gather
 * (degree+1 feature-row reads) into a single row read.
 *
 * The cached value is the *full-neighborhood* mean aggregation of the
 * input features — deterministic per vertex, independent of which
 * request sampled it — so a cached row is reusable by every request
 * that touches the hub, at a bounded deviation from any per-request
 * sampled estimate of the same mean.
 *
 * Structure: fixed capacity split over power-of-two shards; each shard
 * owns its rows, an open-addressing vertex index, and a CLOCK
 * (second-chance) hand, all under one graphite::Mutex with GUARDED_BY
 * annotations. Admission is by degree threshold (the server derives it
 * from graph stats), eviction by CLOCK. All storage is allocated in
 * the constructor: steady-state lookup/put never touches the heap.
 */

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/types.h"

namespace graphite {

class CsrGraph;

namespace serve {

/**
 * Churn-free admission threshold for a cache of @p capacity rows: the
 * degree of the (capacity/2)-th highest-degree vertex, so the
 * admissible set fits the cache with headroom. Thresholding at the
 * capacity-th degree instead makes the admissible set ≈ capacity and
 * the cache churns — measured-phase evictions put mega-hub
 * full-neighborhood re-gathers on the latency tail (DESIGN.md §13).
 */
EdgeId churnFreeDegreeThreshold(const CsrGraph &graph,
                                std::size_t capacity);

/** Sharded CLOCK cache of per-hub aggregation rows. */
class HotVertexCache
{
  public:
    /**
     * @param capacity  total row slots (0 disables the cache).
     * @param shards    shard count, rounded up to a power of two.
     * @param rowWidth  floats per cached row (layer-1 input width).
     * @param minDegree admission threshold: only vertices with
     *                  degree >= minDegree are cached.
     */
    HotVertexCache(std::size_t capacity, std::size_t shards,
                   std::size_t rowWidth, EdgeId minDegree);

    HotVertexCache(const HotVertexCache &) = delete;
    HotVertexCache &operator=(const HotVertexCache &) = delete;

    /** False when constructed with zero capacity. */
    bool enabled() const { return slotsPerShard_ > 0; }

    /** Total row slots across shards (>= requested capacity). */
    std::size_t capacity() const
    {
        return slotsPerShard_ * shards_.size();
    }

    std::size_t rowWidth() const { return rowWidth_; }
    EdgeId minDegree() const { return minDegree_; }

    /** @p v passes the degree admission filter. */
    bool admits(EdgeId degree) const { return degree >= minDegree_; }

    /**
     * Copy @p v's cached row into @p dst (rowWidth floats) and mark it
     * recently used. Returns false (counting a miss) when absent.
     */
    bool lookup(VertexId v, Feature *dst);

    /**
     * Install @p row (rowWidth floats) for @p v, CLOCK-evicting a
     * not-recently-used resident when the shard is full. Overwrites in
     * place if @p v is already resident.
     */
    void put(VertexId v, const Feature *row);

    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t puts = 0;
        std::uint64_t evictions = 0;
    };

    Stats stats() const;
    void resetStats();

  private:
    /** Index sentinel: empty table cell. */
    static constexpr std::int32_t kEmpty = -1;
    /** Index sentinel: deleted table cell (probe chains continue). */
    static constexpr std::int32_t kTombstone = -2;

    struct Shard
    {
        mutable Mutex mutex;
        /** Resident vertex per slot (valid for slots < used). */
        std::vector<VertexId> slotVertex GRAPHITE_GUARDED_BY(mutex);
        /** CLOCK reference bit per slot. */
        std::vector<std::uint8_t> refBit GRAPHITE_GUARDED_BY(mutex);
        /** Row storage, slot-major: slots * rowWidth floats. */
        std::vector<Feature> rows GRAPHITE_GUARDED_BY(mutex);
        /** Open-addressing vertex->slot index (kEmpty/kTombstone). */
        std::vector<std::int32_t> table GRAPHITE_GUARDED_BY(mutex);
        std::size_t used GRAPHITE_GUARDED_BY(mutex) = 0;
        std::size_t clockHand GRAPHITE_GUARDED_BY(mutex) = 0;
        std::size_t tombstones GRAPHITE_GUARDED_BY(mutex) = 0;
    };

    /** Slot of @p v in @p shard's table, or kEmpty. */
    std::int32_t findSlot(const Shard &shard, VertexId v) const
        GRAPHITE_REQUIRES(shard.mutex);
    /** Rebuild @p shard's table in place (tombstone purge). */
    void rehashShard(Shard &shard) GRAPHITE_REQUIRES(shard.mutex);

    Shard &shardOf(VertexId v);

    std::size_t slotsPerShard_;
    std::size_t rowWidth_;
    EdgeId minDegree_;
    std::size_t tableMask_;
    std::vector<Shard> shards_;

    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> puts_{0};
    std::atomic<std::uint64_t> evictions_{0};
};

} // namespace serve
} // namespace graphite
