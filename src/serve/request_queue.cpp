#include "serve/request_queue.h"

#include <chrono>

#include "common/assert.h"

namespace graphite::serve {

std::uint64_t
monotonicNanos()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

RequestQueue::RequestQueue(std::size_t capacity) : ring_(capacity)
{
    GRAPHITE_ASSERT(capacity > 0, "request queue needs capacity > 0");
}

bool
RequestQueue::push(const InferenceRequest &req)
{
    {
        MutexLock lock(mutex_);
        if (closed_ || count_ == ring_.size())
            return false;
        ring_[(head_ + count_) % ring_.size()] = req;
        ++count_;
    }
    nonEmpty_.notify_one();
    return true;
}

std::size_t
RequestQueue::popBatch(InferenceRequest *out, std::size_t max,
                       std::int64_t budgetNs)
{
    GRAPHITE_ASSERT(max > 0, "popBatch needs max > 0");
    MutexLock lock(mutex_);
    while (count_ == 0 && !closed_)
        nonEmpty_.wait(lock, mutex_);
    if (count_ == 0)
        return 0; // closed and drained
    // The batch deadline runs from the moment the first request is
    // available — a lone request never waits longer than the budget.
    const std::uint64_t deadline = monotonicNanos() +
                                   static_cast<std::uint64_t>(
                                       budgetNs > 0 ? budgetNs : 0);
    std::size_t n = 0;
    for (;;) {
        while (n < max && count_ > 0) {
            out[n++] = ring_[head_];
            head_ = (head_ + 1) % ring_.size();
            --count_;
        }
        if (n >= max || closed_)
            break;
        const std::uint64_t now = monotonicNanos();
        if (now >= deadline)
            break;
        nonEmpty_.waitFor(lock, mutex_,
                          static_cast<std::int64_t>(deadline - now));
    }
    return n;
}

void
RequestQueue::close()
{
    {
        MutexLock lock(mutex_);
        closed_ = true;
    }
    nonEmpty_.notify_all();
}

bool
RequestQueue::closed() const
{
    MutexLock lock(mutex_);
    return closed_;
}

std::size_t
RequestQueue::size() const
{
    MutexLock lock(mutex_);
    return count_;
}

} // namespace graphite::serve
