/**
 * @file
 * GAT attention through the Graphite machinery: the attention
 * coefficients a GAT layer computes are exactly the ψ factors of the
 * paper's aggregation formalism, so the same AVX-512 aggregation
 * kernel — and the DMA engine, via its FACTOR descriptor field
 * (Figure 8) — executes an attention layer unchanged.
 *
 *   $ ./gat_attention
 */

#include <cstdio>

#include "common/timer.h"
#include "dma/pipelined_runner.h"
#include "gnn/gat_layer.h"
#include "graph/generators.h"

using namespace graphite;

int
main()
{
    RmatParams params;
    params.scale = 13;
    params.avgDegree = 14.0;
    CsrGraph graph = generateRmat(params);
    std::printf("graph: %u vertices, %llu edges\n", graph.numVertices(),
                static_cast<unsigned long long>(graph.numEdges()));

    GatLayer layer(64, 64);
    layer.initWeights(7);
    DenseMatrix h(graph.numVertices(), 64);
    h.fillUniform(-1.0f, 1.0f, 8);

    // Step 1: shared projection z = h W.
    DenseMatrix z = layer.project(h);

    // Step 2: attention coefficients as an AggregationSpec. Each
    // vertex's factors (self + neighbors) form a softmax distribution.
    Timer attnTimer;
    AggregationSpec attention = layer.attentionSpec(graph, z);
    std::printf("attention computed in %.3fs: e.g. vertex 0 keeps "
                "%.3f of itself across %llu neighbors\n",
                attnTimer.seconds(), attention.selfFactors[0],
                static_cast<unsigned long long>(graph.degree(0)));

    // Step 3a: aggregate with the standard AVX-512 kernel.
    DenseMatrix viaCore(graph.numVertices(), 64);
    aggregateBasic(graph, z, viaCore, attention);

    // Step 3b: the identical math through the DMA engine — the host
    // supplies the data-dependent factors via the descriptor's FACTOR
    // array, the engine applies them while gathering (Section 5.2).
    DenseMatrix viaDma(graph.numVertices(), 64);
    dma::dmaAggregate(graph, z, attention, viaDma);
    std::printf("core vs DMA attention aggregation: max |diff| = "
                "%.2e\n",
                viaCore.maxAbsDiff(viaDma));

    // Full layer (adds the ELU activation).
    DenseMatrix out = layer.forward(graph, h);
    std::printf("GAT layer output: %zu x %zu\n", out.rows(), out.cols());
    return viaCore.maxAbsDiff(viaDma) < 1e-4 ? 0 : 1;
}
