/**
 * @file
 * Quickstart: build a graph, run full-batch GCN inference with every
 * Graphite software technique enabled, and verify the optimised paths
 * agree with the basic one.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "gnn/gnn_model.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"

using namespace graphite;

int
main()
{
    // 1. A graph. Bring your own via loadEdgeList(), or generate one.
    RmatParams params;
    params.scale = 12;       // 4096 vertices
    params.avgDegree = 16.0; // power-law, like real-world graphs
    CsrGraph graph = generateRmat(params);
    GraphStats stats = computeGraphStats(graph);
    std::printf("graph: %u vertices, %llu edges, avg degree %.1f\n",
                stats.numVertices,
                static_cast<unsigned long long>(stats.numEdges),
                stats.avgDegree);

    // 2. Input features: |V| x F, cache-line aligned rows.
    const std::size_t fInput = 128;
    DenseMatrix features(graph.numVertices(), fInput);
    features.fillUniform(-1.0f, 1.0f, /*seed=*/42);
    features.sparsify(0.5, 43); // give compression something to chew on

    // 3. A two-layer GCN: 128 -> 256 hidden -> 16 outputs.
    GnnModelConfig config;
    config.kind = GnnKind::Gcn;
    config.featureWidths = {fInput, 256, 16};
    GnnModel model(graph, config);

    // 4. Full-batch inference, basic path.
    DenseMatrix basic =
        model.inference(features, TechniqueConfig::basic());
    std::printf("basic inference done: logits are %zu x %zu\n",
                basic.rows(), basic.cols());

    // 5. The same inference with layer fusion + feature compression +
    //    the temporal-locality processing order (paper Sections 4.2-4.4).
    DenseMatrix fast =
        model.inference(features, TechniqueConfig::combinedLocality());
    std::printf("optimised inference done: max |diff| vs basic = %.2e\n",
                basic.maxAbsDiff(fast));

    if (basic.maxAbsDiff(fast) < 1e-3) {
        std::printf("OK: all techniques preserve the math\n");
        return 0;
    }
    std::printf("MISMATCH: optimised path diverged\n");
    return 1;
}
