/**
 * @file
 * The paper's motivating comparison (Sections 1 and 3), end to end on
 * real code: sampled mini-batch training — the workaround for
 * memory-limited accelerators — versus the full-batch training CPUs'
 * memory capacity enables. Mini-batching pays per-epoch sampling and
 * feature-staging costs and trains on a stochastic approximation;
 * full-batch touches every edge exactly once per epoch.
 *
 *   $ ./fullbatch_vs_sampled [--scale=13] [--epochs=8]
 */

#include <cstdio>

#include "common/options.h"
#include "common/timer.h"
#include "gnn/minibatch_trainer.h"
#include "gnn/trainer.h"
#include "graph/generators.h"

using namespace graphite;

int
main(int argc, char **argv)
{
    Options options("full-batch vs sampled training");
    options.add("scale", "13", "log2 of the vertex count");
    options.add("epochs", "8", "epochs for each trainer");
    options.parse(argc, argv);

    CommunityParams params;
    params.numVertices = VertexId{1} << options.getInt("scale");
    params.communitySize = 64;
    params.intraDegree = 10;
    params.interDegree = 3;
    CsrGraph graph = generateCommunityGraph(params);
    SyntheticTask task = makeSyntheticTask(graph, 6, 32, 0.35, 21);
    const auto epochs =
        static_cast<std::size_t>(options.getInt("epochs"));
    std::printf("graph: %u vertices, %llu edges; %zu epochs each\n\n",
                graph.numVertices(),
                static_cast<unsigned long long>(graph.numEdges()),
                epochs);

    // --- Sampled mini-batch training (the Figure 2 regime) ---
    {
        MiniBatchConfig config;
        config.batchSize = 1024;
        config.fanouts = {10, 10};
        config.learningRate = 0.1f;
        MiniBatchTrainer trainer(graph, task.features, task.labels,
                                 {32, 64, 6}, GnnKind::Sage, config);
        double sampling = 0.0;
        double layers = 0.0;
        double loss = 0.0;
        Timer timer;
        for (std::size_t e = 0; e < epochs; ++e) {
            MiniBatchEpochStats stats = trainer.trainEpoch();
            sampling += stats.samplingSeconds;
            layers += stats.layerSeconds;
            loss = stats.loss;
        }
        std::printf("sampled  : %.2fs total (%.2fs sampling+staging = "
                    "%.0f%%, %.2fs layers), final loss %.4f\n",
                    timer.seconds(), sampling,
                    sampling / (sampling + layers) * 100.0, layers,
                    loss);
    }

    // --- Full-batch training (what Graphite optimises) ---
    {
        GnnModelConfig config;
        config.kind = GnnKind::Sage;
        config.featureWidths = {32, 64, 6};
        config.dropoutRate = 0.3;
        GnnModel model(graph, config);
        TrainerConfig trainerConfig;
        trainerConfig.epochs = epochs;
        trainerConfig.learningRate = 0.3f;
        trainerConfig.tech = TechniqueConfig::combinedLocality();
        Trainer trainer(model, task.features, task.labels,
                        trainerConfig);
        Timer timer;
        auto history = trainer.train();
        std::printf("fullbatch: %.2fs total (every edge each epoch, "
                    "no sampling), final loss %.4f\n",
                    timer.seconds(), history.back().loss);
    }

    std::printf("\nnote: here the layers also run on this CPU; in "
                "Figure 2's CPU+GPU pipeline the layer time shrinks to "
                "GPU speed while the sampling/staging cost stays — "
                "which is how preparation comes to dominate (>80%%) "
                "and why full-batch CPU training avoids it entirely\n");
    return 0;
}
