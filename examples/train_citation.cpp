/**
 * @file
 * Full-batch GNN training on a citation-style synthetic task — the
 * workload the paper's introduction motivates: no sampling, no
 * mini-batching, the whole graph every step (Section 3).
 *
 * Trains a two-layer GraphSAGE with dropout on a planted-community
 * graph whose labels correlate with structure, comparing wall-clock
 * across technique configurations and reporting the loss curve.
 *
 *   $ ./train_citation [--epochs=20] [--scale=13]
 */

#include <cstdio>

#include "common/options.h"
#include "common/timer.h"
#include "gnn/trainer.h"
#include "graph/generators.h"

using namespace graphite;

int
main(int argc, char **argv)
{
    Options options("full-batch GNN training example");
    options.add("epochs", "12", "training epochs per configuration");
    options.add("scale", "13", "log2 of the vertex count");
    options.add("classes", "8", "number of label classes");
    options.parse(argc, argv);

    CommunityParams graphParams;
    graphParams.numVertices =
        VertexId{1} << options.getInt("scale");
    graphParams.communitySize = 128;
    graphParams.intraDegree = 12;
    graphParams.interDegree = 3;
    CsrGraph graph = generateCommunityGraph(graphParams);
    std::printf("citation-style graph: %u vertices, %llu edges\n",
                graph.numVertices(),
                static_cast<unsigned long long>(graph.numEdges()));

    const auto classes =
        static_cast<std::size_t>(options.getInt("classes"));
    SyntheticTask task = makeSyntheticTask(graph, classes, 64, 0.4, 7);

    const auto epochs =
        static_cast<std::size_t>(options.getInt("epochs"));
    for (const TechniqueConfig &tech :
         {TechniqueConfig::basic(), TechniqueConfig::combined(),
          TechniqueConfig::combinedLocality()}) {
        GnnModelConfig config;
        config.kind = GnnKind::Sage;
        config.featureWidths = {64, 128, classes};
        config.dropoutRate = 0.5; // the sparsity source Section 2.2 cites
        config.seed = 99;
        GnnModel model(graph, config);

        TrainerConfig trainerConfig;
        trainerConfig.epochs = epochs;
        trainerConfig.learningRate = 0.3f;
        trainerConfig.tech = tech;
        Trainer trainer(model, task.features, task.labels,
                        trainerConfig);

        std::printf("\n--- technique: %s ---\n", tech.label().c_str());
        Timer timer;
        auto history = trainer.train();
        const double seconds = timer.seconds();
        for (std::size_t e = 0; e < history.size(); ++e) {
            if (e % 3 == 0 || e + 1 == history.size()) {
                std::printf("epoch %2zu: loss %.4f, train acc %.3f\n",
                            e, history[e].loss,
                            history[e].trainAccuracy);
            }
        }
        std::printf("%.2fs for %zu epochs; final accuracy %.3f\n",
                    seconds, epochs, trainer.evaluate());
    }
    return 0;
}
