/**
 * @file
 * Feature-compression walkthrough (paper Section 4.3): sparsify a
 * feature matrix the way ReLU/dropout do, compress it with the
 * mask-based scheme, and account for the DRAM traffic an aggregation
 * pass would save at each sparsity level.
 *
 *   $ ./compress_inspect
 */

#include <cstdio>

#include "compress/compressed_matrix.h"
#include "graph/generators.h"
#include "kernels/aggregation.h"

using namespace graphite;

int
main()
{
    RmatParams params;
    params.scale = 12;
    params.avgDegree = 16.0;
    CsrGraph graph = generateRmat(params);
    AggregationSpec spec = sageSpec(graph);

    std::printf("mask-based compression uses %s\n",
                compressionUsesAvx512()
                    ? "the AVX-512 vcompressps/vexpandps fast path"
                    : "the portable scalar path");
    std::printf("%-10s %14s %14s %10s %12s\n", "sparsity",
                "dense bytes", "packed bytes", "saving",
                "agg max|diff|");

    for (double sparsity : {0.1, 0.3, 0.5, 0.7, 0.9}) {
        DenseMatrix h(graph.numVertices(), 256);
        h.fillUniform(0.1f, 2.0f, 11);
        h.sparsify(sparsity, 12);

        CompressedMatrix packed(graph.numVertices(), 256);
        packed.compressFrom(h);

        // Compression must be lossless end to end: aggregate from the
        // packed form and compare against the dense kernel.
        DenseMatrix fromDense(graph.numVertices(), 256);
        DenseMatrix fromPacked(graph.numVertices(), 256);
        aggregateBasic(graph, h, fromDense, spec);
        aggregateCompressed(graph, packed, fromPacked, spec);

        const double dense =
            static_cast<double>(packed.denseTrafficBytes());
        const double compressed =
            static_cast<double>(packed.compressedTrafficBytes());
        std::printf("%-10.0f%% %13.1fMB %13.1fMB %9.1f%% %12.2e\n",
                    sparsity * 100, dense / 1e6, compressed / 1e6,
                    (1.0 - compressed / dense) * 100.0,
                    fromDense.maxAbsDiff(fromPacked));
    }
    std::printf("\nthe mask costs 1 bit per element (3.125%% of fp32 "
                "data), so 50%% sparsity saves ~46.9%% of traffic "
                "(paper Section 4.3)\n");
    return 0;
}
