/**
 * @file
 * DMA-offloaded aggregation walkthrough (paper Section 5): builds an
 * aggregation descriptor by hand, executes it on the functional engine,
 * runs the full Algorithm 5 pipeline, and then simulates the same layer
 * on the 28-core timing model to show the speedup the engine buys.
 *
 *   $ ./dma_offload
 */

#include <cstdio>

#include "dma/dma_engine.h"
#include "dma/pipelined_runner.h"
#include "graph/generators.h"
#include "kernels/fused_layer.h"
#include "sim/machine.h"
#include "sim/workloads.h"

using namespace graphite;

int
main()
{
    // --- Part 1: one descriptor, by hand (paper Figures 8 & 9) ---
    // Aggregate vertex 1's neighborhood {0, 2, 3} with GCN-style
    // factors, 4 features per vertex padded to a 32-byte block.
    alignas(64) float features[4][8] = {
        {1, 2, 3, 4}, {9, 9, 9, 9}, {10, 20, 30, 40}, {100, 200, 300, 400}};
    std::uint32_t indices[3] = {0, 2, 3};
    float factors[3] = {0.5f, 0.25f, 0.125f};
    alignas(64) float out[4] = {};
    std::uint8_t status = 0;

    dma::AggregationDescriptor desc;
    desc.redOp = dma::RedOp::Sum;
    desc.binOp = dma::BinOp::Multiply;
    desc.elementsPerBlock = 4;                                   // E
    desc.paddedBlockBytes = 32;                                  // S
    desc.numBlocks = 3;                                          // N
    desc.indexAddr = reinterpret_cast<std::uint64_t>(indices);   // IDX
    desc.inputBase = reinterpret_cast<std::uint64_t>(features);  // IN
    desc.outputAddr = reinterpret_cast<std::uint64_t>(out);      // OUT
    desc.factorAddr = reinterpret_cast<std::uint64_t>(factors);  // FACTOR
    desc.statusAddr = reinterpret_cast<std::uint64_t>(&status);  // STATUS

    dma::DmaEngine engine;
    engine.execute(desc);
    std::printf("descriptor executed, status=%u, out = "
                "[%.3f %.3f %.3f %.3f]\n",
                status, out[0], out[1], out[2], out[3]);
    // Expected: 0.5*h0 + 0.25*h2 + 0.125*h3.

    // --- Part 2: Algorithm 5 on a whole graph ---
    RmatParams params;
    params.scale = 12;
    params.avgDegree = 16.0;
    CsrGraph graph = generateRmat(params);
    AggregationSpec spec = gcnSpec(graph);
    DenseMatrix h(graph.numVertices(), 256);
    h.fillUniform(-1.0f, 1.0f, 1);
    DenseMatrix weights(256, 256);
    weights.fillUniform(-0.1f, 0.1f, 2);
    std::vector<Feature> bias(256, 0.0f);
    const UpdateOp update{&weights, bias, true};

    DenseMatrix aggSw(graph.numVertices(), 256);
    DenseMatrix outSw(graph.numVertices(), 256);
    fusedLayerTraining(graph, h, spec, update, aggSw, outSw);

    DenseMatrix aggHw(graph.numVertices(), 256);
    DenseMatrix outHw(graph.numVertices(), 256);
    auto counters = dma::pipelinedDmaLayer(graph, h, spec, update,
                                           aggHw, outHw);
    std::printf("pipelined DMA layer: %llu descriptors issued "
                "(%llu blocks gathered), max |diff| vs software = "
                "%.2e\n",
                static_cast<unsigned long long>(counters.descriptors),
                static_cast<unsigned long long>(
                    counters.blocksGathered),
                outSw.maxAbsDiff(outHw));

    // --- Part 3: what the engine buys, on the timing model ---
    auto simulate = [&](sim::LayerImpl impl) {
        sim::Machine machine(sim::paperMachine(16));
        sim::LayerWorkload w;
        w.graph = &graph;
        w.fIn = 256;
        w.fOut = 256;
        w.impl = impl;
        w.writeAgg = false;
        return sim::simulateLayer(machine, w).makespan;
    };
    const Cycles fused = simulate(sim::LayerImpl::Fused);
    const Cycles dmaFused = simulate(sim::LayerImpl::DmaFused);
    std::printf("simulated 28-core layer: software fusion %llu cycles, "
                "fusion+DMA %llu cycles (%.2fx)\n",
                static_cast<unsigned long long>(fused),
                static_cast<unsigned long long>(dmaFused),
                static_cast<double>(fused) / dmaFused);
    return outSw.maxAbsDiff(outHw) < 1e-4 ? 0 : 1;
}
