/**
 * @file
 * graphite_serve — stand-alone online-inference serving demo: train a
 * small SAGE model with the sampled mini-batch trainer, then serve
 * per-vertex embedding queries through the micro-batching
 * InferenceServer under synthetic open-loop load (DESIGN.md §13).
 *
 * The interesting knobs map straight onto ServeConfig/LoadGenConfig:
 *
 *   --latency-budget-us   micro-batch close deadline
 *   --max-batch           micro-batch size cap
 *   --hot-cache-capacity  hot-vertex aggregation cache rows (0 = off)
 *   --compare             also run a cache-off baseline at the same
 *                         offered load and print both
 *
 * Example:
 *   graphite_serve --scale=12 --requests=20000 --qps=15000 \
 *                  --hot-cache-capacity=512 --compare
 */

#include <cstdio>
#include <string>

#include "common/logging.h"
#include "common/options.h"
#include "gnn/minibatch_trainer.h"
#include "gnn/trainer.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"
#include "obs/metrics.h"
#include "serve/load_gen.h"
#include "serve/server.h"

using namespace graphite;

namespace {

void
printReport(const char *label, const serve::LoadGenReport &report)
{
    std::printf("%-10s qps %9.0f  p50 %8.1fus  p99 %8.1fus  "
                "mean %7.1fus  batch %5.1f  hit %5.1f%%  "
                "gathered %8.2f MiB  dropped %llu\n",
                label, report.qps, report.p50Us, report.p99Us,
                report.meanUs, report.meanBatchSize,
                report.cacheHitRate * 100.0,
                static_cast<double>(report.bytesGathered) /
                    (1024.0 * 1024.0),
                static_cast<unsigned long long>(report.dropped));
}

} // namespace

int
main(int argc, char **argv)
{
    Options options("Online GNN inference serving demo");
    options.add("scale", "12", "R-MAT scale (2^scale vertices)");
    options.add("avg-degree", "16", "R-MAT average degree");
    options.add("feature-width", "32", "input feature width");
    options.add("hidden-width", "64", "hidden layer width");
    options.add("classes", "8", "output embedding width");
    options.add("epochs", "2", "mini-batch training epochs");
    options.add("fanout", "10", "per-layer sampling fanout");
    options.add("requests", "20000", "measured serving requests");
    options.add("warmup-requests", "2000", "cache warmup requests");
    options.add("qps", "15000", "offered request rate per second");
    options.add("zipf", "0.9", "Zipf exponent of vertex popularity");
    options.add("latency-budget-us", "200",
                "micro-batch close deadline in microseconds");
    options.add("max-batch", "64", "max requests per micro-batch");
    options.add("queue-capacity", "4096", "request queue ring slots");
    options.add("hot-cache-capacity", "512",
                "hot-vertex cache rows (0 disables the cache)");
    options.add("hot-cache-shards", "8", "hot-vertex cache shards");
    options.add("hot-cache-min-degree", "-1",
                "cache admission degree threshold (-1 = pin to the "
                "top-capacity/2 degree rank so residency is churn-free, "
                "0 = server auto)");
    options.add("precision", "fp32", "serving GEMM precision: fp32|bf16");
    options.add("compare", "false",
                "also run a cache-off baseline at the same load");
    options.add("metrics", "", "write the metrics registry JSON here");
    options.add("seed", "7", "workload and training seed");
    options.parse(argc, argv);

    obs::MetricsRegistry::global().setEnabled(true);

    RmatParams params;
    params.scale = static_cast<unsigned>(options.getInt("scale"));
    params.avgDegree = options.getDouble("avg-degree");
    params.seed = static_cast<std::uint64_t>(options.getInt("seed"));
    const CsrGraph graph = generateRmat(params);
    const GraphStats stats = computeGraphStats(graph);
    inform("graph: %u vertices, %llu edges, max degree %llu",
           graph.numVertices(),
           static_cast<unsigned long long>(graph.numEdges()),
           static_cast<unsigned long long>(stats.maxDegree));

    const auto featureWidth =
        static_cast<std::size_t>(options.getInt("feature-width"));
    const auto classes =
        static_cast<std::size_t>(options.getInt("classes"));
    SyntheticTask task = makeSyntheticTask(
        graph, classes, featureWidth, 0.3,
        static_cast<std::uint64_t>(options.getInt("seed")) + 1);

    MiniBatchConfig trainConfig;
    trainConfig.batchSize = 512;
    const auto fanout = static_cast<VertexId>(options.getInt("fanout"));
    trainConfig.fanouts = {fanout, fanout};
    trainConfig.seed = static_cast<std::uint64_t>(options.getInt("seed"));
    MiniBatchTrainer trainer(
        graph, task.features, task.labels,
        {featureWidth,
         static_cast<std::size_t>(options.getInt("hidden-width")),
         classes},
        GnnKind::Sage, trainConfig);
    const auto epochs = static_cast<std::size_t>(options.getInt("epochs"));
    for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
        const MiniBatchEpochStats epochStats = trainer.trainEpoch();
        inform("epoch %zu: loss %.4f", epoch, epochStats.loss);
    }

    serve::ServeConfig serveConfig;
    serveConfig.fanouts = trainConfig.fanouts;
    serveConfig.maxBatch =
        static_cast<std::size_t>(options.getInt("max-batch"));
    serveConfig.latencyBudgetUs = options.getInt("latency-budget-us");
    serveConfig.queueCapacity =
        static_cast<std::size_t>(options.getInt("queue-capacity"));
    serveConfig.hotCacheCapacity =
        static_cast<std::size_t>(options.getInt("hot-cache-capacity"));
    serveConfig.hotCacheShards =
        static_cast<std::size_t>(options.getInt("hot-cache-shards"));
    const int minDegreeFlag = options.getInt("hot-cache-min-degree");
    if (minDegreeFlag > 0) {
        serveConfig.hotCacheMinDegree =
            static_cast<EdgeId>(minDegreeFlag);
    } else if (minDegreeFlag < 0 && serveConfig.hotCacheCapacity > 0) {
        // Churn-free default: see DESIGN.md §13 — the server's auto
        // threshold sizes the admissible set ≈ capacity, and the
        // resulting eviction churn puts hub re-gathers on the p99 tail.
        serveConfig.hotCacheMinDegree = serve::churnFreeDegreeThreshold(
            graph, serveConfig.hotCacheCapacity);
    }
    const std::string precision = options.getString("precision");
    if (precision == "bf16")
        serveConfig.precision = Precision::Bf16;
    else if (precision != "fp32")
        fatal("unknown precision '%s'", precision.c_str());

    serve::LoadGenConfig loadConfig;
    loadConfig.numRequests =
        static_cast<std::size_t>(options.getInt("requests"));
    loadConfig.warmupRequests =
        static_cast<std::size_t>(options.getInt("warmup-requests"));
    loadConfig.offeredQps = options.getDouble("qps");
    loadConfig.zipfExponent = options.getDouble("zipf");
    loadConfig.seed = static_cast<std::uint64_t>(options.getInt("seed"));

    {
        serve::InferenceServer server(graph, task.features,
                                      trainer.layerPointers(),
                                      serveConfig);
        if (serveConfig.hotCacheCapacity > 0) {
            inform("hot cache: %zu rows, admission degree >= %llu",
                   serveConfig.hotCacheCapacity,
                   static_cast<unsigned long long>(
                       server.hotDegreeThreshold()));
        }
        const serve::LoadGenReport report =
            serve::runServeLoad(server, loadConfig);
        printReport(serveConfig.hotCacheCapacity > 0 ? "cache-on"
                                                     : "cache-off",
                    report);
    }

    if (options.getBool("compare") && serveConfig.hotCacheCapacity > 0) {
        serve::ServeConfig offConfig = serveConfig;
        offConfig.hotCacheCapacity = 0;
        serve::InferenceServer server(graph, task.features,
                                      trainer.layerPointers(), offConfig);
        const serve::LoadGenReport report =
            serve::runServeLoad(server, loadConfig);
        printReport("cache-off", report);
    }

    const std::string metricsPath = options.getString("metrics");
    if (!metricsPath.empty())
        obs::MetricsRegistry::global().writeJson(metricsPath);
    return 0;
}
