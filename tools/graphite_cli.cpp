/**
 * @file
 * graphite_cli — run Graphite end to end from the command line.
 *
 * Sub-commands (first positional-free flag set chooses the mode):
 *   --mode=stats      print Table-3-style statistics of a graph
 *   --mode=train      full-batch training on a graph + synthetic task
 *   --mode=infer      inference with a saved checkpoint
 *   --mode=reorder    emit a processing order's reuse-distance summary
 *
 * Graphs come from --graph=<edge-list file> or, when omitted, from a
 * generated dataset analogue picked with --dataset.
 *
 * Examples:
 *   graphite_cli --mode=stats --dataset=products
 *   graphite_cli --mode=train --dataset=wikipedia --epochs=10 \
 *                --save=model.grph
 *   graphite_cli --mode=infer --dataset=wikipedia --load=model.grph
 */

#include <cstdio>

#include "common/logging.h"
#include "common/options.h"
#include "common/timer.h"
#include "gnn/serialization.h"
#include "gnn/trainer.h"
#include "graph/datasets.h"
#include "graph/binary_io.h"
#include "graph/edge_list_io.h"
#include "graph/graph_stats.h"
#include "graph/partition/partition_stats.h"
#include "graph/partition/partitioner.h"
#include "graph/reorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/row_ops.h"

using namespace graphite;

namespace {

CsrGraph
loadGraph(const Options &options)
{
    const std::string path = options.getString("graph");
    if (!path.empty()) {
        if (isCsrFile(path)) {
            inform("loading binary CSR '%s'", path.c_str());
            return loadCsr(path);
        }
        inform("loading edge list '%s'", path.c_str());
        return loadEdgeList(path, 0, options.getBool("undirected"));
    }
    const DatasetId id =
        parseDatasetName(options.getString("dataset"));
    const auto shift =
        static_cast<unsigned>(options.getInt("scale-shift"));
    inform("generating %s analogue (shift %u)",
           options.getString("dataset").c_str(), shift);
    return makeDataset(id, shift).graph;
}

TechniqueConfig
techniqueFor(const Options &options)
{
    const std::string name = options.getString("technique");
    TechniqueConfig tech;
    if (name == "basic")
        tech = TechniqueConfig::basic();
    else if (name == "fusion")
        tech = TechniqueConfig::withFusion();
    else if (name == "compression")
        tech = TechniqueConfig::withCompression();
    else if (name == "combined")
        tech = TechniqueConfig::combined();
    else if (name == "c-locality")
        tech = TechniqueConfig::combinedLocality();
    else
        fatal("unknown technique '%s'", name.c_str());
    const std::string precisionText = options.getString("precision");
    if (!parsePrecision(precisionText, tech.precision))
        fatal("unknown precision '%s'", precisionText.c_str());
    const long long shards = options.getInt("shards");
    if (shards < 0)
        fatal("--shards must be >= 0");
    tech.shards = static_cast<std::size_t>(shards);
    const std::string partitionText = options.getString("partition");
    if (!parsePartitionStrategy(partitionText, tech.partition))
        fatal("unknown partition strategy '%s'", partitionText.c_str());
    tech.delayedHalo = options.getBool("delayed-halo");
    return tech;
}

int
runConvert(const Options &options)
{
    CsrGraph graph = loadGraph(options);
    const std::string out = options.getString("out");
    if (out.empty())
        fatal("--mode=convert requires --out=<file.gcsr>");
    saveCsr(graph, out);
    inform("wrote binary CSR '%s' (%u vertices, %llu edges)",
           out.c_str(), graph.numVertices(),
           static_cast<unsigned long long>(graph.numEdges()));
    return 0;
}

int
runStats(const Options &options)
{
    CsrGraph graph = loadGraph(options);
    GraphStats stats = computeGraphStats(graph);
    std::puts(formatGraphStats("graph", stats,
                               static_cast<std::size_t>(
                                   options.getInt("features")))
                  .c_str());
    // With --shards >= 2, additionally report the cache-slice partition:
    // edge cut, halo volume and shard balance for the chosen strategy.
    const TechniqueConfig tech = techniqueFor(options);
    if (tech.shards >= 2) {
        PartitionConfig config;
        config.numShards = tech.shards;
        config.strategy = tech.partition;
        const PartitionPlan plan = makePartitionPlan(graph, config);
        if (const char *error = plan.validate())
            fatal("partition plan invalid: %s", error);
        std::puts(formatPartitionStats(computePartitionStats(plan),
                                       tech.partition)
                      .c_str());
    }
    return 0;
}

int
runReorder(const Options &options)
{
    CsrGraph graph = loadGraph(options);
    const std::size_t cap = graph.numVertices();
    struct NamedOrder
    {
        const char *name;
        ProcessingOrder order;
    };
    Timer timer;
    NamedOrder orders[] = {
        {"identity", identityOrder(graph)},
        {"random", randomOrder(graph, 7)},
        {"degree", degreeOrder(graph)},
        {"bfs", bfsOrder(graph)},
        {"locality (Alg. 3)", localityOrder(graph)},
    };
    std::printf("order construction took %.3fs total\n",
                timer.seconds());
    std::printf("%-20s %16s\n", "order", "avg reuse dist");
    for (const NamedOrder &entry : orders) {
        std::printf("%-20s %16.1f\n", entry.name,
                    averageReuseDistance(graph, entry.order, cap));
    }
    return 0;
}

int
runTrain(const Options &options)
{
    CsrGraph graph = loadGraph(options);
    const auto classes =
        static_cast<std::size_t>(options.getInt("classes"));
    const auto features =
        static_cast<std::size_t>(options.getInt("features"));
    SyntheticTask task = makeSyntheticTask(graph, classes, features,
                                           0.4, 11);

    GnnModelConfig config;
    config.kind = options.getString("model") == "sage" ? GnnKind::Sage
                                                       : GnnKind::Gcn;
    config.featureWidths = {features,
                            static_cast<std::size_t>(
                                options.getInt("hidden")),
                            classes};
    config.dropoutRate = options.getDouble("dropout");
    GnnModel model(graph, config);

    TrainerConfig trainerConfig;
    trainerConfig.epochs =
        static_cast<std::size_t>(options.getInt("epochs"));
    trainerConfig.learningRate =
        static_cast<float>(options.getDouble("lr"));
    trainerConfig.tech = techniqueFor(options);
    Trainer trainer(model, task.features, task.labels, trainerConfig);

    inform("training %zu epochs with technique '%s'",
           trainerConfig.epochs, trainerConfig.tech.label().c_str());
    Timer timer;
    auto history = trainer.train();
    for (std::size_t e = 0; e < history.size(); ++e) {
        std::printf("epoch %2zu: loss %.4f acc %.3f (%.2fs)\n", e,
                    history[e].loss, history[e].trainAccuracy,
                    history[e].seconds);
    }
    std::printf("total %.2fs, final accuracy %.3f\n", timer.seconds(),
                trainer.evaluate());

    const std::string save = options.getString("save");
    if (!save.empty()) {
        saveModel(model, save);
        inform("checkpoint written to '%s'", save.c_str());
    }
    return 0;
}

int
runInfer(const Options &options)
{
    CsrGraph graph = loadGraph(options);
    const auto classes =
        static_cast<std::size_t>(options.getInt("classes"));
    const auto features =
        static_cast<std::size_t>(options.getInt("features"));

    GnnModelConfig config;
    config.kind = options.getString("model") == "sage" ? GnnKind::Sage
                                                       : GnnKind::Gcn;
    config.featureWidths = {features,
                            static_cast<std::size_t>(
                                options.getInt("hidden")),
                            classes};
    GnnModel model(graph, config);
    const std::string load = options.getString("load");
    if (!load.empty()) {
        loadModel(model, load);
        inform("checkpoint '%s' loaded", load.c_str());
    }

    SyntheticTask task = makeSyntheticTask(graph, classes, features,
                                           0.4, 11);
    Timer timer;
    DenseMatrix logits =
        model.inference(task.features, techniqueFor(options));
    std::printf("inference over %u vertices in %.3fs, accuracy %.3f\n",
                graph.numVertices(), timer.seconds(),
                accuracy(logits, task.labels));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options options("graphite_cli — GNNs on CPUs, end to end");
    options.add("mode", "stats",
                "stats | train | infer | reorder | convert");
    options.add("out", "", "output path for --mode=convert");
    options.add("graph", "", "edge-list file (empty: use --dataset)");
    options.add("undirected", "false",
                "treat edge-list edges as undirected");
    options.add("dataset", "products",
                "dataset analogue when no --graph given");
    options.add("scale-shift", "3", "analogue shrink (halvings)");
    options.add("technique", "combined",
                "basic | fusion | compression | combined | c-locality");
    options.add("precision", "fp32",
                "fp32 | bf16 (bf16 gathers + bf16-in/fp32-acc GEMMs)");
    options.add("shards", "0",
                "cache-slice shards for shard-major execution (0/1: off)");
    options.add("partition", "greedy",
                "shard assignment: greedy (degree-aware) | hash");
    options.add("delayed-halo", "false",
                "delayed cross-shard aggregation (halo gathered once "
                "per shard; fp-tolerant)");
    options.add("model", "gcn", "gcn | sage");
    options.add("features", "64", "input feature width");
    options.add("hidden", "128", "hidden feature width");
    options.add("classes", "8", "label classes");
    options.add("epochs", "10", "training epochs");
    options.add("lr", "0.3", "learning rate");
    options.add("dropout", "0.5", "dropout rate");
    options.add("save", "", "write checkpoint after training");
    options.add("load", "", "read checkpoint before inference");
    options.add("trace-out", "",
                "write a chrome://tracing span JSON on exit");
    options.add("metrics-out", "",
                "write a metrics-registry JSON on exit");
    options.parse(argc, argv);

    const std::string traceOut = options.getString("trace-out");
    const std::string metricsOut = options.getString("metrics-out");
    if (!traceOut.empty())
        obs::TraceRecorder::global().setEnabled(true);
    if (!metricsOut.empty())
        obs::MetricsRegistry::global().setEnabled(true);

    const std::string mode = options.getString("mode");
    int rc = -1;
    if (mode == "stats")
        rc = runStats(options);
    else if (mode == "convert")
        rc = runConvert(options);
    else if (mode == "reorder")
        rc = runReorder(options);
    else if (mode == "train")
        rc = runTrain(options);
    else if (mode == "infer")
        rc = runInfer(options);
    else
        fatal("unknown mode '%s'", mode.c_str());

    if (!traceOut.empty()) {
        obs::TraceRecorder::global().writeChromeJson(traceOut);
        inform("trace written to '%s'", traceOut.c_str());
    }
    if (!metricsOut.empty()) {
        obs::MetricsRegistry::global().writeJson(metricsOut);
        inform("metrics written to '%s'", metricsOut.c_str());
    }
    return rc;
}
