/**
 * @file
 * Figure 16 reproduction: DMA-aggregation time on wikipedia as the
 * Memory Request Tracking Table size sweeps 8/16/32/64 entries,
 * normalised to 8 entries. The table bounds the engine's memory-level
 * parallelism, so time falls steeply up to 32 entries and flattens
 * once DRAM bandwidth (rather than MLP) limits throughput — which is
 * why the paper sizes the table at 32.
 */

#include <cstdio>

#include "bench_common.h"
#include "common/options.h"

using namespace graphite;
using namespace graphite::bench;

int
main(int argc, char **argv)
{
    Options options("Figure 16: tracking-table size sweep");
    options.add("dataset", "wikipedia", "dataset analogue");
    options.add("extra-shift", "0", "extra dataset shrink");
    options.add("cores", "4",
                "active cores/engines. The default keeps the sweep in "
                "the MLP-limited regime the paper's figure isolates: "
                "with all 28 engines fetching, this model saturates "
                "DRAM bandwidth at ~16 tracking entries, which "
                "compresses the 16->32 step the paper still sees "
                "(their NoC/directory latencies are higher)");
    options.parse(argc, argv);

    banner("Figure 16: DMA-aggregation time vs tracking-table entries",
           "paper Figure 16 (1.00 / 0.72 / 0.49 / 0.46)");

    BenchDataset data = makeBenchDataset(
        parseDatasetName(options.getString("dataset")),
        static_cast<unsigned>(options.getInt("extra-shift")));

    const double paperNorm[] = {1.00, 0.72, 0.49, 0.46};
    Cycles base = 0;
    int row = 0;
    std::printf("%-8s %14s %12s %12s\n", "entries", "cycles",
                "normalised", "paper");
    for (unsigned entries : {8u, 16u, 32u, 64u}) {
        sim::MachineParams params = sim::paperMachine(kCacheShrink);
        params.numCores =
            static_cast<unsigned>(options.getInt("cores"));
        sim::Machine machine(params);
        sim::LayerWorkload w;
        w.graph = &data.graph();
        w.fIn = data.dataset.hiddenFeatures;
        w.fOut = data.dataset.hiddenFeatures;
        w.impl = sim::LayerImpl::DmaFused;
        w.doUpdate = false; // aggregation time, as in the paper
        w.writeAgg = true;
        sim::DmaParams dma;
        dma.trackingEntries = entries;
        const Cycles cycles =
            sim::simulateLayer(machine, w, dma).makespan;
        if (base == 0)
            base = cycles;
        std::printf("%-8u %14llu %12.2f %12.2f\n", entries,
                    static_cast<unsigned long long>(cycles),
                    static_cast<double>(cycles) / base,
                    paperNorm[row++]);
        std::fflush(stdout);
    }
    std::printf("\nexpected shape: steep improvement to 32 entries, "
                "marginal beyond (bandwidth-limited)\n");
    return 0;
}
