/**
 * @file
 * Native micro-benchmarks (google-benchmark) of the Graphite kernels
 * on this host: aggregation variants, mask compression, GEMM, the
 * fused layer and the locality reordering. These measure the real
 * AVX-512 implementations — the figure benches measure the simulated
 * 28-core machine instead (this host has a single hardware thread).
 */

#include <benchmark/benchmark.h>

#include "baselines/baseline_layers.h"
#include "compress/compressed_matrix.h"
#include "dma/pipelined_runner.h"
#include "gnn/gnn_layer.h"
#include "graph/generators.h"
#include "graph/reorder.h"
#include "kernels/fused_layer.h"
#include "tensor/gemm.h"
#include "tensor/row_ops.h"
#include "tensor/spmm.h"

namespace {

using namespace graphite;

/** Shared medium graph + features for the aggregation benches. */
struct AggFixture
{
    CsrGraph graph;
    AggregationSpec spec;
    DenseMatrix features;
    DenseMatrix output;

    explicit
    AggFixture(std::size_t f)
    {
        RmatParams params;
        params.scale = 13;
        params.avgDegree = 16.0;
        graph = generateRmat(params);
        spec = gcnSpec(graph);
        features = DenseMatrix(graph.numVertices(), f);
        features.fillUniform(-1.0f, 1.0f, 1);
        output = DenseMatrix(graph.numVertices(), f);
    }

    double
    gatheredBytes() const
    {
        return static_cast<double>(graph.numEdges() +
                                   graph.numVertices()) *
               features.rowBytes();
    }
};

void
BM_AggregateBasic(benchmark::State &state)
{
    AggFixture fx(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        aggregateBasic(fx.graph, fx.features, fx.output, fx.spec);
        benchmark::DoNotOptimize(fx.output.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(fx.gatheredBytes() *
                                  state.iterations()));
}
BENCHMARK(BM_AggregateBasic)->Arg(64)->Arg(128)->Arg(256);

void
BM_AggregateDistGnn(benchmark::State &state)
{
    AggFixture fx(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        distgnnAggregate(fx.graph, fx.features, fx.output, fx.spec);
        benchmark::DoNotOptimize(fx.output.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(fx.gatheredBytes() *
                                  state.iterations()));
}
BENCHMARK(BM_AggregateDistGnn)->Arg(256);

void
BM_AggregateCompressed(benchmark::State &state)
{
    AggFixture fx(256);
    const double sparsity = static_cast<double>(state.range(0)) / 100.0;
    fx.features.sparsify(sparsity, 2);
    CompressedMatrix packed(fx.graph.numVertices(), 256);
    packed.compressFrom(fx.features);
    for (auto _ : state) {
        aggregateCompressed(fx.graph, packed, fx.output, fx.spec);
        benchmark::DoNotOptimize(fx.output.data());
    }
}
BENCHMARK(BM_AggregateCompressed)->Arg(10)->Arg(50)->Arg(90);

void
BM_AggregateLocalityOrder(benchmark::State &state)
{
    AggFixture fx(256);
    ProcessingOrder order = localityOrder(fx.graph);
    for (auto _ : state) {
        aggregateBasic(fx.graph, fx.features, fx.output, fx.spec,
                       order);
        benchmark::DoNotOptimize(fx.output.data());
    }
}
BENCHMARK(BM_AggregateLocalityOrder);

void
BM_FusedLayerInference(benchmark::State &state)
{
    AggFixture fx(256);
    DenseMatrix weights(256, 256);
    weights.fillUniform(-0.1f, 0.1f, 3);
    std::vector<Feature> bias(256, 0.01f);
    const UpdateOp update{&weights, bias, true};
    DenseMatrix out(fx.graph.numVertices(), 256);
    for (auto _ : state) {
        fusedLayerInference(fx.graph, fx.features, fx.spec, update, out);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_FusedLayerInference);

void
BM_UnfusedLayer(benchmark::State &state)
{
    AggFixture fx(256);
    DenseMatrix weights(256, 256);
    weights.fillUniform(-0.1f, 0.1f, 3);
    std::vector<Feature> bias(256, 0.01f);
    const UpdateOp update{&weights, bias, true};
    DenseMatrix agg(fx.graph.numVertices(), 256);
    DenseMatrix out(fx.graph.numVertices(), 256);
    for (auto _ : state) {
        unfusedLayer(fx.graph, fx.features, fx.spec, update, agg, out);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_UnfusedLayer);

/**
 * Backward-pass fixture: a gradient matrix standing in for dz, the
 * transposed graph + remapped factors, and W prepacked in NT mode —
 * the operands of dh_prev = Aggᵀ(dz·Wᵀ).
 */
struct BackwardFixture
{
    AggFixture fx{256};
    CsrGraph transposed;
    AggregationSpec tSpec;
    DenseMatrix weights{256, 256};
    GemmPlan planNT;
    DenseMatrix gradIn;

    BackwardFixture()
        : transposed(fx.graph.transposed()),
          tSpec(transposeSpec(fx.graph, fx.spec, transposed)),
          gradIn(fx.graph.numVertices(), 256)
    {
        weights.fillUniform(-0.1f, 0.1f, 11);
        planNT.pack(GemmMode::NT, weights);
    }
};

void
BM_BackwardUnfused(benchmark::State &state)
{
    BackwardFixture bw;
    DenseMatrix dAgg(bw.fx.graph.numVertices(), 256);
    for (auto _ : state) {
        gemm(GemmMode::NT, bw.fx.features, bw.planNT, dAgg);
        aggregateBasic(bw.transposed, dAgg, bw.gradIn, bw.tSpec);
        benchmark::DoNotOptimize(bw.gradIn.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(bw.fx.gatheredBytes() *
                                  state.iterations()));
}
BENCHMARK(BM_BackwardUnfused);

void
BM_BackwardFused(benchmark::State &state)
{
    BackwardFixture bw;
    for (auto _ : state) {
        fusedLayerBackward(bw.transposed, bw.fx.features, bw.tSpec,
                           bw.planNT, bw.gradIn);
        benchmark::DoNotOptimize(bw.gradIn.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(bw.fx.gatheredBytes() *
                                  state.iterations()));
}
BENCHMARK(BM_BackwardFused);

void
BM_BiasGradColumnSum(benchmark::State &state)
{
    AggFixture fx(static_cast<std::size_t>(state.range(0)));
    std::vector<Feature> sums(fx.features.cols());
    std::vector<Feature> scratch;
    for (auto _ : state) {
        columnSum(fx.features, sums, scratch);
        benchmark::DoNotOptimize(sums.data());
    }
    state.SetBytesProcessed(
        state.iterations() *
        static_cast<std::int64_t>(fx.features.rows() *
                                  fx.features.rowBytes()));
}
BENCHMARK(BM_BiasGradColumnSum)->Arg(64)->Arg(256);

void
BM_DmaPipelinedLayer(benchmark::State &state)
{
    AggFixture fx(256);
    DenseMatrix weights(256, 256);
    weights.fillUniform(-0.1f, 0.1f, 3);
    std::vector<Feature> bias(256, 0.01f);
    const UpdateOp update{&weights, bias, true};
    DenseMatrix agg(fx.graph.numVertices(), 256);
    DenseMatrix out(fx.graph.numVertices(), 256);
    for (auto _ : state) {
        dma::pipelinedDmaLayer(fx.graph, fx.features, fx.spec, update,
                               agg, out);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_DmaPipelinedLayer);

void
BM_CompressRows(benchmark::State &state)
{
    DenseMatrix dense(4096, 256);
    dense.fillUniform(0.5f, 1.5f, 4);
    dense.sparsify(static_cast<double>(state.range(0)) / 100.0, 5);
    CompressedMatrix packed(4096, 256);
    for (auto _ : state) {
        packed.compressFrom(dense);
        benchmark::DoNotOptimize(packed.values(0));
    }
    state.SetBytesProcessed(state.iterations() * 4096 * 256 * 4);
}
BENCHMARK(BM_CompressRows)->Arg(10)->Arg(50)->Arg(90);

void
BM_DecompressRows(benchmark::State &state)
{
    DenseMatrix dense(4096, 256);
    dense.fillUniform(0.5f, 1.5f, 6);
    dense.sparsify(0.5, 7);
    CompressedMatrix packed(4096, 256);
    packed.compressFrom(dense);
    DenseMatrix restored(4096, 256);
    for (auto _ : state) {
        packed.decompressTo(restored);
        benchmark::DoNotOptimize(restored.data());
    }
    state.SetBytesProcessed(state.iterations() * 4096 * 256 * 4);
}
BENCHMARK(BM_DecompressRows);

void
BM_Gemm(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    DenseMatrix a(n, 256);
    DenseMatrix b(256, 256);
    DenseMatrix c(n, 256);
    a.fillUniform(-1.0f, 1.0f, 8);
    b.fillUniform(-1.0f, 1.0f, 9);
    for (auto _ : state) {
        gemm(GemmMode::NN, a, b, c);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n) * 256 * 256 *
                            2);
}
BENCHMARK(BM_Gemm)->Arg(1024)->Arg(8192);

/**
 * GFLOP/s-reporting GEMM benchmark over explicit (mode, M, N, K)
 * shapes: the acceptance shape 4096x256x256 plus the Table 3 per-layer
 * update shapes (|V|=32768 RMAT-scale-15-ish M with the datasets'
 * feature widths) and the backward-pass TN/NT forms those layers run.
 */
void
BM_GemmShapes(benchmark::State &state)
{
    const auto mode = static_cast<GemmMode>(state.range(0));
    const auto m = static_cast<std::size_t>(state.range(1));
    const auto n = static_cast<std::size_t>(state.range(2));
    const auto k = static_cast<std::size_t>(state.range(3));
    DenseMatrix a;
    DenseMatrix b;
    switch (mode) {
      case GemmMode::NN:
        a = DenseMatrix(m, k);
        b = DenseMatrix(k, n);
        break;
      case GemmMode::NT:
        a = DenseMatrix(m, k);
        b = DenseMatrix(n, k);
        break;
      case GemmMode::TN:
        a = DenseMatrix(k, m);
        b = DenseMatrix(k, n);
        break;
    }
    a.fillUniform(-1.0f, 1.0f, 8);
    b.fillUniform(-1.0f, 1.0f, 9);
    DenseMatrix c(m, n);
    for (auto _ : state) {
        gemm(mode, a, b, c);
        benchmark::DoNotOptimize(c.data());
    }
    const double flops = 2.0 * static_cast<double>(m) *
                         static_cast<double>(n) *
                         static_cast<double>(k) *
                         static_cast<double>(state.iterations());
    state.counters["GFLOP/s"] =
        benchmark::Counter(flops * 1e-9, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmShapes)
    // Acceptance shape: 4096 x 256 x 256 NN.
    ->Args({0, 4096, 256, 256})
    // Table 3 layer-1 update shapes: M = |V|, K = input width, N = 128.
    ->Args({0, 32768, 128, 50})
    ->Args({0, 32768, 128, 64})
    ->Args({0, 32768, 256, 128})
    // Backward dX (NT: dY * W^T) and dW (TN: X^T * dY, short-M wide-N).
    ->Args({1, 4096, 256, 256})
    ->Args({2, 256, 256, 4096});

/**
 * Same acceptance shape through a prepacked GemmPlan — isolates the
 * micro-kernel rate from the per-call B pack, the regime the layer
 * weight cache runs in every epoch.
 */
void
BM_GemmPrepacked(benchmark::State &state)
{
    const auto m = static_cast<std::size_t>(state.range(0));
    const std::size_t n = 256;
    const std::size_t k = 256;
    DenseMatrix a(m, k);
    DenseMatrix b(k, n);
    a.fillUniform(-1.0f, 1.0f, 8);
    b.fillUniform(-1.0f, 1.0f, 9);
    GemmPlan plan;
    plan.pack(GemmMode::NN, b);
    DenseMatrix c(m, n);
    for (auto _ : state) {
        gemm(GemmMode::NN, a, plan, c);
        benchmark::DoNotOptimize(c.data());
    }
    const double flops = 2.0 * static_cast<double>(m) * 256.0 * 256.0 *
                         static_cast<double>(state.iterations());
    state.counters["GFLOP/s"] =
        benchmark::Counter(flops * 1e-9, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmPrepacked)->Arg(4096)->Arg(32768);

/**
 * Prepacked bf16 GEMM, acceptance shape, fp32 A rounded at the A pack.
 * Arg(1) forces the emulated widening kernel so both dispatch targets
 * get a number on any host; Arg(0) uses whatever the cpuid dispatch
 * picks (vdpbf16ps where available). Compare against BM_GemmPrepacked
 * for the fp32 baseline at the same shape.
 */
void
BM_GemmPrepackedBf16(benchmark::State &state)
{
    const bool forceEmulated = state.range(0) != 0;
    setBf16GemmEmulated(forceEmulated);
    const std::size_t m = 4096;
    const std::size_t n = 256;
    const std::size_t k = 256;
    DenseMatrix a(m, k);
    DenseMatrix b(k, n);
    a.fillUniform(-1.0f, 1.0f, 8);
    b.fillUniform(-1.0f, 1.0f, 9);
    GemmPlan plan;
    plan.pack(GemmMode::NN, b, Precision::Bf16);
    DenseMatrix c(m, n);
    for (auto _ : state) {
        gemm(GemmMode::NN, a, plan, c);
        benchmark::DoNotOptimize(c.data());
    }
    setBf16GemmEmulated(false);
    state.SetLabel(!forceEmulated && bf16GemmIsNative() ? "native"
                                                        : "emulated");
    const double flops = 2.0 * static_cast<double>(m) * 256.0 * 256.0 *
                         static_cast<double>(state.iterations());
    state.counters["GFLOP/s"] =
        benchmark::Counter(flops * 1e-9, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmPrepackedBf16)->Arg(0)->Arg(1);

void
BM_AggregateBf16(benchmark::State &state)
{
    AggFixture fx(256);
    Bf16Matrix packed(fx.graph.numVertices(), 256);
    packed.fromDense(fx.features);
    for (auto _ : state) {
        aggregateBf16(fx.graph, packed, fx.output, fx.spec);
        benchmark::DoNotOptimize(fx.output.data());
    }
    // Half the gathered bytes of the fp32 kernel.
    state.SetBytesProcessed(
        static_cast<std::int64_t>(fx.gatheredBytes() / 2 *
                                  state.iterations()));
}
BENCHMARK(BM_AggregateBf16);

void
BM_SpmmAggregation(benchmark::State &state)
{
    AggFixture fx(256);
    for (auto _ : state) {
        spmm(fx.graph, fx.features, fx.output, fx.spec.edgeFactors,
             fx.spec.selfFactors);
        benchmark::DoNotOptimize(fx.output.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(fx.gatheredBytes() *
                                  state.iterations()));
}
BENCHMARK(BM_SpmmAggregation);

void
BM_AggregateMaxReduction(benchmark::State &state)
{
    AggFixture fx(256);
    AggregationSpec spec = maxSpec();
    for (auto _ : state) {
        aggregateBasic(fx.graph, fx.features, fx.output, spec);
        benchmark::DoNotOptimize(fx.output.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(fx.gatheredBytes() *
                                  state.iterations()));
}
BENCHMARK(BM_AggregateMaxReduction);

void
BM_FusedLayerCompressed(benchmark::State &state)
{
    AggFixture fx(256);
    fx.features.sparsify(0.5, 10);
    CompressedMatrix packed(fx.graph.numVertices(), 256);
    packed.compressFrom(fx.features);
    DenseMatrix weights(256, 256);
    weights.fillUniform(-0.1f, 0.1f, 3);
    std::vector<Feature> bias(256, 0.01f);
    const UpdateOp update{&weights, bias, true};
    DenseMatrix out(fx.graph.numVertices(), 256);
    for (auto _ : state) {
        fusedLayerInferenceCompressed(fx.graph, packed, fx.spec, update,
                                      out);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_FusedLayerCompressed);

/**
 * Fused inference with bf16 activations end to end: bf16 gathers
 * (widened in registers) feeding the bf16 per-block micro-GEMM. The
 * precision counterpart of BM_FusedLayerCompressed — both halve (or
 * better) gather traffic, by different means: bf16 is a fixed 2x on
 * every row regardless of content, mask compression is data-dependent
 * (see EXPERIMENTS.md for the comparison).
 */
void
BM_FusedLayerInferenceBf16(benchmark::State &state)
{
    AggFixture fx(256);
    Bf16Matrix packed(fx.graph.numVertices(), 256);
    packed.fromDense(fx.features);
    DenseMatrix weights(256, 256);
    weights.fillUniform(-0.1f, 0.1f, 3);
    std::vector<Feature> bias(256, 0.01f);
    GemmPlan plan;
    plan.pack(GemmMode::NN, weights, Precision::Bf16);
    const UpdateOp update{&weights, bias, true, &plan, Precision::Bf16};
    DenseMatrix out(fx.graph.numVertices(), 256);
    for (auto _ : state) {
        fusedLayerInferenceBf16(fx.graph, packed, fx.spec, update, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(fx.gatheredBytes() / 2 *
                                  state.iterations()));
}
BENCHMARK(BM_FusedLayerInferenceBf16);

void
BM_LocalityOrderConstruction(benchmark::State &state)
{
    RmatParams params;
    params.scale = 15;
    params.avgDegree = 16.0;
    CsrGraph graph = generateRmat(params);
    for (auto _ : state) {
        ProcessingOrder order = localityOrder(graph);
        benchmark::DoNotOptimize(order.data());
    }
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<std::int64_t>(graph.numEdges()));
}
BENCHMARK(BM_LocalityOrderConstruction);

} // namespace

BENCHMARK_MAIN();
