/**
 * @file
 * Table 5 reproduction: reduction in private-cache (L1-D / L2)
 * accesses from offloading aggregation to the DMA engine, in the
 * aggregation-only and fused aggregation-update scenarios, on the
 * products and wikipedia analogues.
 */

#include <cstdio>
#include <map>

#include "bench_common.h"
#include "common/options.h"

using namespace graphite;
using namespace graphite::bench;

namespace {

struct Accesses
{
    std::uint64_t l1 = 0;
    std::uint64_t l2 = 0;
};

Accesses
runCase(const BenchDataset &data, sim::LayerImpl impl, bool aggOnly)
{
    sim::Machine machine(sim::paperMachine(kCacheShrink));
    sim::LayerWorkload w;
    w.graph = &data.graph();
    w.fIn = data.dataset.hiddenFeatures;
    w.fOut = data.dataset.hiddenFeatures;
    w.impl = impl;
    w.writeAgg = true;
    w.doUpdate = !aggOnly;
    const sim::RunResult result = sim::simulateLayer(machine, w);
    return {result.l1Total.accesses, result.l2Total.accesses};
}

double
reduction(std::uint64_t before, std::uint64_t after)
{
    return before == 0
        ? 0.0
        : (1.0 - static_cast<double>(after) / before) * 100.0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options options("Table 5: private cache access reduction from DMA");
    options.add("extra-shift", "0", "extra dataset shrink");
    options.parse(argc, argv);

    banner("Table 5: private-cache access reduction with the DMA engine",
           "paper Table 5");

    // Paper: products agg-only 98/97, fused 43/36; wikipedia agg-only
    // 97/89, fused 19/12 (L1-D% / L2%).
    const std::map<std::string, std::array<double, 4>> paper = {
        {"products", {98, 97, 43, 36}},
        {"wikipedia", {97, 89, 19, 12}}};

    const auto extraShift =
        static_cast<unsigned>(options.getInt("extra-shift"));
    std::printf("%-10s %28s %28s\n", "", "aggregation only",
                "fused aggregation-update");
    std::printf("%-10s %14s %14s %14s %14s\n", "graph", "L1-D", "L2",
                "L1-D", "L2");
    for (DatasetId id : {DatasetId::Products, DatasetId::Wikipedia}) {
        BenchDataset data = makeBenchDataset(id, extraShift);
        // Aggregation-only: basic's aggregation vs DMA aggregation.
        Accesses swAgg = runCase(data, sim::LayerImpl::Basic, true);
        Accesses dmaAgg = runCase(data, sim::LayerImpl::DmaFused, true);
        // Fused: software fusion vs DMA-assisted fusion.
        Accesses swFused = runCase(data, sim::LayerImpl::Fused, false);
        Accesses dmaFused =
            runCase(data, sim::LayerImpl::DmaFused, false);

        const auto &p = paper.at(data.name());
        std::printf("%-10s", data.name().c_str());
        std::printf("  %3.0f%% (p %2.0f%%)",
                    reduction(swAgg.l1, dmaAgg.l1), p[0]);
        std::printf("  %3.0f%% (p %2.0f%%)",
                    reduction(swAgg.l2, dmaAgg.l2), p[1]);
        std::printf("  %3.0f%% (p %2.0f%%)",
                    reduction(swFused.l1, dmaFused.l1), p[2]);
        std::printf("  %3.0f%% (p %2.0f%%)\n",
                    reduction(swFused.l2, dmaFused.l2), p[3]);
        std::fflush(stdout);
    }
    std::printf("\nexpected shape: near-total reduction in the "
                "aggregation-only case (the core only builds "
                "descriptors); smaller in the fused case because the "
                "update still runs on the core, and smaller on "
                "wikipedia (lower average degree)\n");
    return 0;
}
