/**
 * @file
 * Section 7.3.2 reproduction: overall memory-system improvement from
 * the DMA engine — L2 miss rate and memory-stall fraction, software
 * fusion vs DMA-assisted fusion, on products and wikipedia.
 *
 * Paper: L2 miss rate 20.5% -> 2.8% (products) and 45.5% -> 2.8%
 * (wikipedia); memory stall time 58.1% -> 42.8% and 30.6% -> 25.7%
 * (DMA-wait time included in the stall, as here).
 */

#include <cstdio>
#include <map>

#include "bench_common.h"
#include "common/options.h"

using namespace graphite;
using namespace graphite::bench;

int
main(int argc, char **argv)
{
    Options options("Section 7.3.2: memory system with/without DMA");
    options.add("extra-shift", "0", "extra dataset shrink");
    options.parse(argc, argv);

    banner("Section 7.3.2: overall memory-system performance",
           "paper Section 7.3.2 numbers");

    const std::map<std::string, std::array<double, 4>> paper = {
        {"products", {20.5, 2.8, 58.1, 42.8}},
        {"wikipedia", {45.5, 2.8, 30.6, 25.7}}};

    const auto extraShift =
        static_cast<unsigned>(options.getInt("extra-shift"));
    std::printf("%-10s %-12s %14s %16s\n", "graph", "impl",
                "L2 miss rate", "memory stalls");
    for (DatasetId id : {DatasetId::Products, DatasetId::Wikipedia}) {
        BenchDataset data = makeBenchDataset(id, extraShift);
        const auto &p = paper.at(data.name());
        int column = 0;
        for (sim::LayerImpl impl :
             {sim::LayerImpl::Fused, sim::LayerImpl::DmaFused}) {
            sim::Machine machine(sim::paperMachine(kCacheShrink));
            sim::LayerWorkload w;
            w.graph = &data.graph();
            w.fIn = data.dataset.hiddenFeatures;
            w.fOut = data.dataset.hiddenFeatures;
            w.impl = impl;
            w.writeAgg = false;
            const sim::RunResult result =
                sim::simulateLayer(machine, w);
            std::printf("%-10s %-12s %6.1f%% (p %4.1f%%) %7.1f%% "
                        "(p %4.1f%%)\n",
                        data.name().c_str(),
                        impl == sim::LayerImpl::Fused ? "fusion"
                                                      : "fusion+DMA",
                        result.l2Total.missRate() * 100, p[column],
                        result.memoryBoundFraction() * 100,
                        p[column + 2]);
            ++column;
            std::fflush(stdout);
        }
    }
    std::printf("\nexpected shape: the DMA engine slashes the L2 miss "
                "rate (the L2 only holds update-phase data) and trims "
                "memory stall time even counting DMA-wait cycles\n");
    return 0;
}
