/**
 * @file
 * Serving-layer load benchmark: the hot-vertex cache's effect on tail
 * latency and gather traffic, measured A/B at identical offered load.
 *
 * One R-MAT power-law graph, one SAGE-style layer stack, two
 * InferenceServer runs driven by the same open-loop Zipf/Poisson
 * workload (same seed, same arrival schedule): hot-vertex cache on,
 * then off. Reports QPS, exact p50/p99, cache hit rate and
 * serve.bytes_gathered for both, and emits a stable-keyed JSON
 * (BENCH_serve.json) CI archives next to BENCH_smoke.json.
 *
 * The regime matters: the cache pays off when serving is gather-bound
 * (wide features, hub-heavy traffic) and the offered rate sits below
 * the cache-off saturation point — at saturation, queueing noise
 * swamps the service-time win. The defaults encode that recipe.
 */

#include <algorithm>
#include <cstdio>
#include <functional>
#include <vector>
#include <string>

#include "common/logging.h"
#include "common/options.h"
#include "gnn/gnn_layer.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"
#include "obs/metrics.h"
#include "serve/load_gen.h"
#include "serve/server.h"

using namespace graphite;

namespace {

void
printReport(const char *label, const serve::LoadGenReport &report)
{
    std::printf("%-10s qps %9.0f  p50 %8.1fus  p99 %8.1fus  "
                "mean %7.1fus  batch %5.1f  hit %5.1f%%  "
                "gathered %8.2f MiB  dropped %llu\n",
                label, report.qps, report.p50Us, report.p99Us,
                report.meanUs, report.meanBatchSize,
                report.cacheHitRate * 100.0,
                static_cast<double>(report.bytesGathered) /
                    (1024.0 * 1024.0),
                static_cast<unsigned long long>(report.dropped));
}

} // namespace

int
main(int argc, char **argv)
{
    Options options("Serving load bench: hot-vertex cache A/B -> "
                    "BENCH_serve.json");
    options.add("scale", "13", "R-MAT scale (2^scale vertices)");
    options.add("avg-degree", "16", "R-MAT average degree");
    options.add("feature-width", "128", "input feature width");
    options.add("hidden-width", "128", "hidden layer width");
    options.add("classes", "16", "output embedding width");
    options.add("fanout", "10", "per-layer sampling fanout");
    options.add("requests", "20000", "measured serving requests");
    options.add("warmup-requests", "2000", "cache warmup requests");
    options.add("qps", "30000", "offered request rate per second");
    options.add("zipf", "0.9", "Zipf exponent of vertex popularity");
    options.add("latency-budget-us", "100",
                "micro-batch close deadline in microseconds");
    options.add("max-batch", "64", "max requests per micro-batch");
    options.add("hot-cache-capacity", "1024",
                "hot-vertex cache rows for the cache-on run");
    options.add("hot-cache-min-degree", "-1",
                "cache admission degree threshold (-1 = pin to the "
                "top-capacity/2 degree rank so residency is churn-free, "
                "0 = server auto)");
    options.add("output", "BENCH_serve.json", "JSON output path");
    options.add("seed", "7", "workload seed");
    options.parse(argc, argv);

    obs::MetricsRegistry::global().setEnabled(true);

    RmatParams params;
    params.scale = static_cast<unsigned>(options.getInt("scale"));
    params.avgDegree = options.getDouble("avg-degree");
    params.seed = static_cast<std::uint64_t>(options.getInt("seed"));
    const CsrGraph graph = generateRmat(params);
    const GraphStats stats = computeGraphStats(graph);
    std::printf("graph: %u vertices, %llu edges, max degree %llu\n",
                graph.numVertices(),
                static_cast<unsigned long long>(graph.numEdges()),
                static_cast<unsigned long long>(stats.maxDegree));

    const auto featureWidth =
        static_cast<std::size_t>(options.getInt("feature-width"));
    const auto hiddenWidth =
        static_cast<std::size_t>(options.getInt("hidden-width"));
    const auto classes =
        static_cast<std::size_t>(options.getInt("classes"));
    DenseMatrix features(graph.numVertices(), featureWidth);
    features.fillUniform(-1.0f, 1.0f, 11);
    // Perf bench: untrained weights serve at the same cost as trained.
    GnnLayer hidden(featureWidth, hiddenWidth, true);
    GnnLayer output(hiddenWidth, classes, false);
    hidden.initWeights(13);
    output.initWeights(17);

    serve::ServeConfig serveConfig;
    const auto fanout = static_cast<VertexId>(options.getInt("fanout"));
    serveConfig.fanouts = {fanout, fanout};
    serveConfig.maxBatch =
        static_cast<std::size_t>(options.getInt("max-batch"));
    serveConfig.latencyBudgetUs = options.getInt("latency-budget-us");
    serveConfig.hotCacheCapacity =
        static_cast<std::size_t>(options.getInt("hot-cache-capacity"));
    const int minDegreeFlag = options.getInt("hot-cache-min-degree");
    if (minDegreeFlag > 0) {
        serveConfig.hotCacheMinDegree = static_cast<EdgeId>(minDegreeFlag);
    } else if (minDegreeFlag < 0 && serveConfig.hotCacheCapacity > 0) {
        // Churn-free default: admit only the top-(capacity/2) hubs, so
        // the admissible set fits the cache with headroom and every
        // full-neighborhood fill happens during warmup. Measured-phase
        // tails then reflect the hit path, not eviction refills.
        serveConfig.hotCacheMinDegree = serve::churnFreeDegreeThreshold(
            graph, serveConfig.hotCacheCapacity);
    }

    serve::LoadGenConfig loadConfig;
    loadConfig.numRequests =
        static_cast<std::size_t>(options.getInt("requests"));
    loadConfig.warmupRequests =
        static_cast<std::size_t>(options.getInt("warmup-requests"));
    loadConfig.offeredQps = options.getDouble("qps");
    loadConfig.zipfExponent = options.getDouble("zipf");
    loadConfig.seed = static_cast<std::uint64_t>(options.getInt("seed"));

    serve::LoadGenReport cacheOn;
    {
        serve::InferenceServer server(graph, features,
                                      {&hidden, &output}, serveConfig);
        std::printf("hot cache: %zu rows, admission degree >= %llu\n",
                    serveConfig.hotCacheCapacity,
                    static_cast<unsigned long long>(
                        server.hotDegreeThreshold()));
        cacheOn = serve::runServeLoad(server, loadConfig);
        printReport("cache-on", cacheOn);
    }
    serve::LoadGenReport cacheOff;
    {
        serve::ServeConfig offConfig = serveConfig;
        offConfig.hotCacheCapacity = 0;
        serve::InferenceServer server(graph, features,
                                      {&hidden, &output}, offConfig);
        cacheOff = serve::runServeLoad(server, loadConfig);
        printReport("cache-off", cacheOff);
    }

    const std::string path = options.getString("output");
    std::FILE *out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     path.c_str());
        return 1;
    }
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"serve\": {\n");
    std::fprintf(out, "    \"hot_cache_capacity\": %zu,\n",
                 serveConfig.hotCacheCapacity);
    std::fprintf(out, "    \"offered_qps\": %.1f,\n",
                 loadConfig.offeredQps);
    std::fprintf(out, "    \"qps\": %.1f,\n", cacheOn.qps);
    std::fprintf(out, "    \"p50_us\": %.2f,\n", cacheOn.p50Us);
    std::fprintf(out, "    \"p99_us\": %.2f,\n", cacheOn.p99Us);
    std::fprintf(out, "    \"mean_batch_size\": %.2f,\n",
                 cacheOn.meanBatchSize);
    std::fprintf(out, "    \"cache_hit_rate\": %.4f,\n",
                 cacheOn.cacheHitRate);
    std::fprintf(out, "    \"bytes_gathered\": %llu,\n",
                 static_cast<unsigned long long>(cacheOn.bytesGathered));
    std::fprintf(out, "    \"dropped\": %llu,\n",
                 static_cast<unsigned long long>(cacheOn.dropped));
    std::fprintf(out, "    \"qps_nocache\": %.1f,\n", cacheOff.qps);
    std::fprintf(out, "    \"p50_us_nocache\": %.2f,\n", cacheOff.p50Us);
    std::fprintf(out, "    \"p99_us_nocache\": %.2f,\n", cacheOff.p99Us);
    std::fprintf(out, "    \"bytes_gathered_nocache\": %llu,\n",
                 static_cast<unsigned long long>(cacheOff.bytesGathered));
    std::fprintf(out, "    \"dropped_nocache\": %llu\n",
                 static_cast<unsigned long long>(cacheOff.dropped));
    std::fprintf(out, "  }\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", path.c_str());
    return 0;
}
