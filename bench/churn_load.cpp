/**
 * @file
 * Dynamic-graph churn benchmark: edge-insert throughput concurrent
 * with serving, and the cost of that churn on the serving numbers.
 *
 * Three measurements over one R-MAT power-law graph and one SAGE-style
 * layer stack (BENCH_churn.json):
 *
 *  1. Static baseline: a frozen-CSR InferenceServer under the standard
 *     Zipf/Poisson open-loop load (cache on) — the p99/hit-rate anchor
 *     the churn run is compared against.
 *  2. Churn run: the same load against a DeltaCsr-overlay server while
 *     an updater thread feeds random edge inserts through
 *     InferenceServer::insertEdge() at --churn-rate, requesting
 *     compaction every --compact-every accepted inserts (and on
 *     PoolFull). Reports sustained insert throughput, serving QPS,
 *     p50/p99, hit rate, and the deltas vs the static baseline.
 *  3. Staleness: embeddings served mid-churn (captured via the load
 *     generator) are replayed on an oracle server over the final
 *     compacted graph. An embedding served at time t saw the graph as
 *     of t; the oracle sees every insert. The relative L2 gap is the
 *     served-embedding staleness, bounded by the sampling estimate's
 *     own error (the server header's deviation contract).
 *
 * After the churn run the overlay is compacted in place and a fresh
 * frozen server over the compacted base replays sampled requests —
 * the bitwise post-compaction parity gate CI enforces
 * (scripts/check_metrics_schema.py --churn).
 */

#include <algorithm>
#include <atomic>
#include <cmath>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/options.h"
#include "common/rng.h"
#include "common/timer.h"
#include "gnn/gnn_layer.h"
#include "graph/delta_csr.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"
#include "obs/metrics.h"
#include "serve/load_gen.h"
#include "serve/server.h"

using namespace graphite;

namespace {

void
printReport(const char *label, const serve::LoadGenReport &report)
{
    std::printf("%-10s qps %9.0f  p50 %8.1fus  p99 %8.1fus  "
                "hit %5.1f%%  dropped %llu\n",
                label, report.qps, report.p50Us, report.p99Us,
                report.cacheHitRate * 100.0,
                static_cast<unsigned long long>(report.dropped));
}

} // namespace

int
main(int argc, char **argv)
{
    Options options("Churn load bench: edge inserts concurrent with "
                    "serving -> BENCH_churn.json");
    options.add("scale", "12", "R-MAT scale (2^scale vertices)");
    options.add("avg-degree", "16", "R-MAT average degree");
    options.add("feature-width", "128", "input feature width");
    options.add("hidden-width", "128", "hidden layer width");
    options.add("classes", "16", "output embedding width");
    options.add("fanout", "10", "per-layer sampling fanout");
    options.add("requests", "8000", "measured serving requests");
    options.add("warmup-requests", "1000", "cache warmup requests");
    options.add("qps", "20000", "offered request rate per second");
    options.add("zipf", "0.9", "Zipf exponent of vertex popularity");
    options.add("latency-budget-us", "100",
                "micro-batch close deadline in microseconds");
    options.add("max-batch", "64", "max requests per micro-batch");
    options.add("hot-cache-capacity", "1024",
                "hot-vertex cache rows (both runs)");
    options.add("churn-rate", "20000",
                "offered edge-insert rate per second during the "
                "churn run");
    options.add("compact-every", "8000",
                "request an overlay compaction every N accepted "
                "inserts (0 = only on PoolFull)");
    options.add("delta-budget", "262144",
                "overlay delta-pool budget in edges");
    options.add("staleness-samples", "512",
                "served requests replayed against the compacted-graph "
                "oracle");
    options.add("parity-samples", "64",
                "requests checked for post-compaction bitwise parity");
    options.add("output", "BENCH_churn.json", "JSON output path");
    options.add("seed", "7", "workload seed");
    options.parse(argc, argv);

    obs::MetricsRegistry::global().setEnabled(true);

    RmatParams params;
    params.scale = static_cast<unsigned>(options.getInt("scale"));
    params.avgDegree = options.getDouble("avg-degree");
    params.seed = static_cast<std::uint64_t>(options.getInt("seed"));
    // Two identical graphs from the same seed: one frozen for the
    // static baseline, one moved into the overlay for the churn run.
    const CsrGraph staticGraph = generateRmat(params);
    CsrGraph overlayBase = generateRmat(params);
    const GraphStats stats = computeGraphStats(staticGraph);
    std::printf("graph: %u vertices, %llu edges, max degree %llu\n",
                staticGraph.numVertices(),
                static_cast<unsigned long long>(staticGraph.numEdges()),
                static_cast<unsigned long long>(stats.maxDegree));

    const auto featureWidth =
        static_cast<std::size_t>(options.getInt("feature-width"));
    const auto hiddenWidth =
        static_cast<std::size_t>(options.getInt("hidden-width"));
    const auto classes =
        static_cast<std::size_t>(options.getInt("classes"));
    DenseMatrix features(staticGraph.numVertices(), featureWidth);
    features.fillUniform(-1.0f, 1.0f, 11);
    GnnLayer hidden(featureWidth, hiddenWidth, true);
    GnnLayer output(hiddenWidth, classes, false);
    hidden.initWeights(13);
    output.initWeights(17);

    serve::ServeConfig serveConfig;
    const auto fanout = static_cast<VertexId>(options.getInt("fanout"));
    serveConfig.fanouts = {fanout, fanout};
    serveConfig.maxBatch =
        static_cast<std::size_t>(options.getInt("max-batch"));
    serveConfig.latencyBudgetUs = options.getInt("latency-budget-us");
    serveConfig.hotCacheCapacity =
        static_cast<std::size_t>(options.getInt("hot-cache-capacity"));

    serve::LoadGenConfig loadConfig;
    loadConfig.numRequests =
        static_cast<std::size_t>(options.getInt("requests"));
    loadConfig.warmupRequests =
        static_cast<std::size_t>(options.getInt("warmup-requests"));
    loadConfig.offeredQps = options.getDouble("qps");
    loadConfig.zipfExponent = options.getDouble("zipf");
    loadConfig.seed = static_cast<std::uint64_t>(options.getInt("seed"));

    // --- 1. Static baseline (frozen CSR, cache on, no churn). ------
    serve::LoadGenReport staticReport;
    {
        serve::InferenceServer server(staticGraph, features,
                                      {&hidden, &output}, serveConfig);
        staticReport = serve::runServeLoad(server, loadConfig);
        printReport("static", staticReport);
    }

    // --- 2. Churn run: overlay server + concurrent updater. --------
    const auto deltaBudget =
        static_cast<EdgeId>(options.getInt("delta-budget"));
    const double churnRate = options.getDouble("churn-rate");
    const auto compactEvery =
        static_cast<std::uint64_t>(options.getInt("compact-every"));
    DeltaCsr overlay(std::move(overlayBase), deltaBudget);
    serve::InferenceServer server(overlay, features, {&hidden, &output},
                                  serveConfig);

    DenseMatrix servedResults;
    std::vector<VertexId> servedVertices;
    std::vector<double> servedLatencies;
    serve::LoadGenConfig churnLoad = loadConfig;
    churnLoad.resultsOut = &servedResults;
    churnLoad.verticesOut = &servedVertices;
    churnLoad.latenciesOut = &servedLatencies;

    std::atomic<bool> stopChurn{false};
    std::atomic<std::uint64_t> insertsOffered{0};
    std::atomic<std::uint64_t> insertsAccepted{0};
    std::atomic<double> churnSeconds{0.0};
    const VertexId numVertices = staticGraph.numVertices();
    std::thread updater([&] {
        Rng rng(params.seed ^ 0x9e3779b97f4a7c15ull);
        Timer timer;
        auto next = std::chrono::steady_clock::now();
        const auto gap = std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(1.0 / churnRate));
        std::uint64_t accepted = 0;
        while (!stopChurn.load(std::memory_order_relaxed)) {
            next += gap;
            std::this_thread::sleep_until(next);
            const auto src =
                static_cast<VertexId>(rng.uniformInt(numVertices));
            const auto dst =
                static_cast<VertexId>(rng.uniformInt(numVertices));
            insertsOffered.fetch_add(1, std::memory_order_relaxed);
            switch (server.insertEdge(src, dst)) {
            case DeltaCsr::AddEdge::Added:
                ++accepted;
                if (compactEvery > 0 && accepted % compactEvery == 0)
                    server.requestCompaction();
                break;
            case DeltaCsr::AddEdge::PoolFull:
                // Consumer compacts between batches; back off until
                // it has drained the pool.
                server.requestCompaction();
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
                next = std::chrono::steady_clock::now();
                break;
            default: // Duplicate / SelfLoop: offered but not accepted.
                break;
            }
        }
        insertsAccepted.store(accepted, std::memory_order_relaxed);
        churnSeconds.store(timer.seconds(), std::memory_order_relaxed);
    });

    const serve::LoadGenReport churnReport =
        serve::runServeLoad(server, churnLoad);
    stopChurn.store(true, std::memory_order_relaxed);
    updater.join();
    printReport("churn", churnReport);

    const std::uint64_t accepted = insertsAccepted.load();
    const double insertSeconds = churnSeconds.load();
    const double insertThroughput =
        insertSeconds > 0.0
            ? static_cast<double>(accepted) / insertSeconds
            : 0.0;
    const serve::ServeStats churnStats = server.stats();
    std::printf("churn: %llu/%llu inserts accepted, %.0f inserts/s, "
                "%llu invalidations, %llu compactions\n",
                static_cast<unsigned long long>(accepted),
                static_cast<unsigned long long>(insertsOffered.load()),
                insertThroughput,
                static_cast<unsigned long long>(
                    churnStats.cache.invalidations),
                static_cast<unsigned long long>(churnStats.compactions));

    // --- 3. Staleness vs the compacted-graph oracle. ----------------
    // Replay captured measured-phase requests on a fresh server over
    // the final compacted graph: same request ids (= sampling seeds),
    // every insert visible. The relative L2 gap is what serving under
    // churn cost in embedding freshness.
    const CsrGraph compactedGraph = overlay.compacted();
    double stalenessMean = 0.0;
    double stalenessMax = 0.0;
    std::size_t stalenessCount = 0;
    {
        serve::ServeConfig oracleConfig = serveConfig;
        oracleConfig.hotCacheCapacity = 0;
        // Mirror the churn server's final admission threshold so the
        // oracle's hub-exact gating matches the cache-on serving path.
        oracleConfig.hotCacheMinDegree = server.hotDegreeThreshold();
        serve::InferenceServer oracle(compactedGraph, features,
                                      {&hidden, &output}, oracleConfig);
        const std::size_t want = std::min<std::size_t>(
            static_cast<std::size_t>(
                options.getInt("staleness-samples")),
            loadConfig.numRequests);
        std::vector<Feature> fresh(oracle.outFeatures());
        std::size_t i = loadConfig.warmupRequests;
        const std::size_t stride = std::max<std::size_t>(
            1, loadConfig.numRequests / std::max<std::size_t>(want, 1));
        for (; i < servedVertices.size() && stalenessCount < want;
             i += stride) {
            if (servedLatencies[i] < 0.0)
                continue; // dropped: nothing was served
            oracle.serveOneHubExact(i, servedVertices[i], fresh.data());
            double gap2 = 0.0;
            double norm2 = 0.0;
            const Feature *served = servedResults.row(i);
            for (std::size_t c = 0; c < fresh.size(); ++c) {
                const double d = static_cast<double>(served[c]) -
                                 static_cast<double>(fresh[c]);
                gap2 += d * d;
                norm2 += static_cast<double>(fresh[c]) *
                         static_cast<double>(fresh[c]);
            }
            const double rel =
                norm2 > 0.0 ? std::sqrt(gap2 / norm2) : std::sqrt(gap2);
            stalenessMean += rel;
            stalenessMax = std::max(stalenessMax, rel);
            ++stalenessCount;
        }
        if (stalenessCount > 0)
            stalenessMean /= static_cast<double>(stalenessCount);
    }
    std::printf("staleness: %zu samples, mean rel L2 %.4f, "
                "max %.4f\n",
                stalenessCount, stalenessMean, stalenessMax);

    // --- 4. Post-compaction bitwise parity gate. --------------------
    // Compact in place (consumer is drained), then a frozen server
    // over the new base must replay sampled requests bit-for-bit.
    server.compactNow();
    bool parity = overlay.deltaEdges() == 0;
    {
        serve::InferenceServer fresh(overlay.base(), features,
                                     {&hidden, &output}, serveConfig);
        const auto paritySamples =
            static_cast<std::size_t>(options.getInt("parity-samples"));
        std::vector<Feature> a(server.outFeatures());
        std::vector<Feature> b(fresh.outFeatures());
        Rng rng(params.seed + 1);
        for (std::size_t s = 0; s < paritySamples; ++s) {
            const auto v =
                static_cast<VertexId>(rng.uniformInt(numVertices));
            server.serveOne(s, v, a.data());
            fresh.serveOne(s, v, b.data());
            if (std::memcmp(a.data(), b.data(),
                            a.size() * sizeof(Feature)) != 0) {
                parity = false;
                break;
            }
        }
    }
    std::printf("post-compaction parity: %s\n",
                parity ? "bitwise" : "MISMATCH");

    const std::string path = options.getString("output");
    std::FILE *out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     path.c_str());
        return 1;
    }
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"churn\": {\n");
    std::fprintf(out, "    \"vertices\": %u,\n",
                 staticGraph.numVertices());
    std::fprintf(out, "    \"base_edges\": %llu,\n",
                 static_cast<unsigned long long>(staticGraph.numEdges()));
    std::fprintf(out, "    \"delta_budget\": %llu,\n",
                 static_cast<unsigned long long>(deltaBudget));
    std::fprintf(out, "    \"churn_rate_offered\": %.1f,\n", churnRate);
    std::fprintf(out, "    \"compact_every\": %llu,\n",
                 static_cast<unsigned long long>(compactEvery));
    std::fprintf(out, "    \"inserts_offered\": %llu,\n",
                 static_cast<unsigned long long>(insertsOffered.load()));
    std::fprintf(out, "    \"inserts_accepted\": %llu,\n",
                 static_cast<unsigned long long>(accepted));
    std::fprintf(out, "    \"insert_throughput_eps\": %.1f,\n",
                 insertThroughput);
    std::fprintf(out, "    \"compactions\": %llu,\n",
                 static_cast<unsigned long long>(churnStats.compactions));
    std::fprintf(out, "    \"invalidations\": %llu,\n",
                 static_cast<unsigned long long>(
                     churnStats.cache.invalidations));
    std::fprintf(out, "    \"qps\": %.1f,\n", churnReport.qps);
    std::fprintf(out, "    \"p50_us\": %.2f,\n", churnReport.p50Us);
    std::fprintf(out, "    \"p99_us\": %.2f,\n", churnReport.p99Us);
    std::fprintf(out, "    \"cache_hit_rate\": %.4f,\n",
                 churnReport.cacheHitRate);
    std::fprintf(out, "    \"dropped\": %llu,\n",
                 static_cast<unsigned long long>(churnReport.dropped));
    std::fprintf(out, "    \"qps_static\": %.1f,\n", staticReport.qps);
    std::fprintf(out, "    \"p50_us_static\": %.2f,\n",
                 staticReport.p50Us);
    std::fprintf(out, "    \"p99_us_static\": %.2f,\n",
                 staticReport.p99Us);
    std::fprintf(out, "    \"cache_hit_rate_static\": %.4f,\n",
                 staticReport.cacheHitRate);
    std::fprintf(out, "    \"p99_delta_us\": %.2f,\n",
                 churnReport.p99Us - staticReport.p99Us);
    std::fprintf(out, "    \"hit_rate_delta\": %.4f,\n",
                 churnReport.cacheHitRate - staticReport.cacheHitRate);
    std::fprintf(out, "    \"staleness_samples\": %zu,\n",
                 stalenessCount);
    std::fprintf(out, "    \"staleness_mean_rel_l2\": %.6f,\n",
                 stalenessMean);
    std::fprintf(out, "    \"staleness_max_rel_l2\": %.6f,\n",
                 stalenessMax);
    std::fprintf(out, "    \"post_compact_parity\": %s\n",
                 parity ? "true" : "false");
    std::fprintf(out, "  }\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", path.c_str());
    return 0;
}
