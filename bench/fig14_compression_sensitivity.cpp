/**
 * @file
 * Figure 14 reproduction: speedup of `compression` over `basic` in GCN
 * as the feature sparsity sweeps 10% -> 90%, for inference (14a) and
 * training (14b). Below ~10-30% sparsity the mask overhead loses;
 * beyond it, traffic savings win and keep growing.
 */

#include <cstdio>
#include <map>

#include "bench_common.h"
#include "common/options.h"

using namespace graphite;
using namespace graphite::bench;

namespace {

const std::map<std::string, std::map<int, double>> kPaperInference = {
    {"products", {{10, 0.88}, {30, 1.16}, {50, 1.45}, {70, 1.78},
                  {90, 2.95}}},
    {"wikipedia", {{10, 0.91}, {30, 1.06}, {50, 1.19}, {70, 1.27},
                   {90, 1.63}}},
    {"papers", {{10, 0.93}, {30, 1.16}, {50, 1.38}, {70, 1.61},
                {90, 2.29}}},
    {"twitter", {{10, 0.87}, {30, 1.14}, {50, 1.38}, {70, 1.61},
                 {90, 2.40}}},
};

const std::map<std::string, std::map<int, double>> kPaperTraining = {
    {"products", {{10, 0.90}, {30, 1.16}, {50, 1.43}, {70, 1.74},
                  {90, 2.74}}},
    {"wikipedia", {{10, 0.94}, {30, 1.08}, {50, 1.20}, {70, 1.31},
                   {90, 1.58}}},
    {"papers", {{10, 0.95}, {30, 1.14}, {50, 1.31}, {70, 1.51},
                {90, 2.00}}},
    {"twitter", {{10, 0.90}, {30, 1.14}, {50, 1.34}, {70, 1.56},
                 {90, 2.16}}},
};

} // namespace

int
main(int argc, char **argv)
{
    Options options("Figure 14: compression sensitivity to sparsity");
    options.add("extra-shift", "0", "extra dataset shrink");
    options.add("inference-only", "false", "skip the training sweep");
    options.parse(argc, argv);

    banner("Figure 14: compression speedup vs feature sparsity",
           "paper Figure 14a/b (GCN, compression over basic)");

    const auto extraShift =
        static_cast<unsigned>(options.getInt("extra-shift"));
    std::vector<BenchDataset> datasets;
    for (DatasetId id : allDatasets())
        datasets.push_back(makeBenchDataset(id, extraShift));

    const int sparsities[] = {10, 30, 50, 70, 90};
    for (int phase = 0; phase < 2; ++phase) {
        const bool training = phase == 1;
        if (training && options.getBool("inference-only"))
            break;
        const auto &paper =
            training ? kPaperTraining : kPaperInference;
        std::printf("--- Figure 14%s: %s ---\n", training ? "b" : "a",
                    training ? "training" : "inference");
        std::printf("%-10s", "graph");
        for (int s : sparsities)
            std::printf(" %21d%%", s);
        std::printf("\n");
        for (const BenchDataset &data : datasets) {
            std::printf("%-10s", data.name().c_str());
            for (int s : sparsities) {
                const double sparsity = s / 100.0;
                const Cycles basic = training
                    ? trainingCycles(data, SwConfig::Basic, sparsity)
                    : inferenceCycles(data, SwConfig::Basic, sparsity);
                const Cycles packed = training
                    ? trainingCycles(data, SwConfig::Compression,
                                     sparsity)
                    : inferenceCycles(data, SwConfig::Compression,
                                      sparsity);
                speedupCell(static_cast<double>(basic) / packed,
                            paper.at(data.name()).at(s));
            }
            std::printf("\n");
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    std::printf("expected shape: below ~10%% sparsity compression "
                "loses (mask overhead); gains grow monotonically with "
                "sparsity\n");
    return 0;
}
