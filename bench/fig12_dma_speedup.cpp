/**
 * @file
 * Figure 12 reproduction: simulated speedups of software fusion and the
 * DMA-offloaded fusion over DistGNN, for inference (12a) and training
 * (12b, with and without the locality order) on the products and
 * wikipedia analogues — the two graphs the paper's own simulation
 * covers ("the hardware evaluation is limited to products and
 * wikipedia due to very long simulation times").
 */

#include <cstdio>
#include <map>

#include "bench_common.h"
#include "common/options.h"

using namespace graphite;
using namespace graphite::bench;

namespace {

Cycles
run(const BenchDataset &data, sim::LayerImpl impl, bool locality,
    bool training)
{
    sim::Machine machine(sim::paperMachine(kCacheShrink));
    sim::NetworkWorkload net = makeNetwork(data, SwConfig::Fusion);
    net.impl = impl;
    net.compression = false; // Fig. 12 isolates fusion vs fusion+DMA
    net.locality = locality;
    return (training
                ? sim::simulateTraining(machine, net, data.transposed)
                : sim::simulateInference(machine, net))
        .totalCycles;
}

} // namespace

int
main(int argc, char **argv)
{
    Options options("Figure 12: DMA-assisted speedups");
    options.add("extra-shift", "0", "extra dataset shrink");
    options.parse(argc, argv);

    banner("Figure 12: fusion vs fusion+DMA (simulated)",
           "paper Figure 12a/b");

    const auto extraShift =
        static_cast<unsigned>(options.getInt("extra-shift"));
    std::vector<BenchDataset> datasets;
    datasets.push_back(makeBenchDataset(DatasetId::Products, extraShift));
    datasets.push_back(makeBenchDataset(DatasetId::Wikipedia,
                                        extraShift));

    // Paper GCN values.
    const std::map<std::string, std::array<double, 2>> paperInf = {
        {"products", {1.25, 1.63}}, {"wikipedia", {1.36, 1.97}}};
    const std::map<std::string,
                   std::array<double, 4>> paperTrain = {
        {"products", {1.22, 1.55, 2.38, 3.11}},
        {"wikipedia", {1.25, 1.70, 1.40, 1.89}}};

    std::printf("--- Figure 12a: inference (speedup over DistGNN) ---\n");
    std::printf("%-10s %26s %26s\n", "graph", "fusion", "fusion+DMA");
    for (const BenchDataset &data : datasets) {
        const Cycles base = inferenceCycles(data, SwConfig::DistGnn);
        const Cycles fused =
            run(data, sim::LayerImpl::Fused, false, false);
        const Cycles dmaTime =
            run(data, sim::LayerImpl::DmaFused, false, false);
        std::printf("%-10s", data.name().c_str());
        speedupCell(double(base) / fused, paperInf.at(data.name())[0]);
        speedupCell(double(base) / dmaTime, paperInf.at(data.name())[1]);
        std::printf("\n");
        std::fflush(stdout);
    }

    std::printf("\n--- Figure 12b: training (speedup over DistGNN) "
                "---\n");
    std::printf("%-10s %26s %26s %26s %26s\n", "graph", "fusion",
                "fusion+DMA", "fusion+locality", "fusion+DMA+locality");
    for (const BenchDataset &data : datasets) {
        const Cycles base = trainingCycles(data, SwConfig::DistGnn);
        const auto &paper = paperTrain.at(data.name());
        std::printf("%-10s", data.name().c_str());
        speedupCell(double(base) /
                        run(data, sim::LayerImpl::Fused, false, true),
                    paper[0]);
        speedupCell(double(base) /
                        run(data, sim::LayerImpl::DmaFused, false, true),
                    paper[1]);
        speedupCell(double(base) /
                        run(data, sim::LayerImpl::Fused, true, true),
                    paper[2]);
        speedupCell(double(base) /
                        run(data, sim::LayerImpl::DmaFused, true, true),
                    paper[3]);
        std::printf("\n");
        std::fflush(stdout);
    }
    std::printf("\nexpected shape: DMA beats software fusion; locality "
                "compounds, most on the clustered products analogue\n");
    return 0;
}
