/**
 * @file
 * Figure 3 reproduction: top-down pipeline-slot breakdown of full-batch
 * GraphSAGE training with the DistGNN/DGL-style baseline on the
 * simulated 28-core machine. The paper reports retiring 10.1%,
 * frontend 3.3%, core-bound 23.6%, memory-bound 61.7%, with the L1D
 * fill buffers full essentially 100% of the time.
 */

#include <cstdio>

#include "bench_common.h"
#include "common/options.h"

using namespace graphite;
using namespace graphite::bench;

int
main(int argc, char **argv)
{
    Options options("Figure 3: pipeline-slot breakdown");
    options.add("dataset", "products", "dataset analogue");
    options.add("extra-shift", "0", "extra dataset shrink");
    options.parse(argc, argv);

    banner("Figure 3: pipeline slots during full-batch training",
           "paper Figure 3 (retiring 10.1%, memory bound 61.7%)");

    BenchDataset data = makeBenchDataset(
        parseDatasetName(options.getString("dataset")),
        static_cast<unsigned>(options.getInt("extra-shift")));

    sim::Machine machine(sim::paperMachine(kCacheShrink));
    sim::NetworkWorkload net = makeNetwork(data, SwConfig::DistGnn);
    sim::CompositeResult result =
        sim::simulateTraining(machine, net, data.transposed);

    const double retiring = result.aggregate.retiringFraction();
    const double memory = result.aggregate.memoryBoundFraction();
    // The trace model lumps frontend/core-bound slots into the
    // non-retiring, non-memory remainder.
    const double other = std::max(0.0, 1.0 - retiring - memory);

    std::printf("%-22s %8s %8s\n", "slot class", "model", "paper");
    std::printf("%-22s %7.1f%% %7.1f%%\n", "retiring", retiring * 100,
                10.1);
    std::printf("%-22s %7.1f%% %7.1f%%\n", "frontend + core bound",
                other * 100, 3.3 + 23.6);
    std::printf("%-22s %7.1f%% %7.1f%%\n", "memory bound", memory * 100,
                61.7);
    std::printf("%-22s %7.1f%% %7s\n", "L1 fill buffers full",
                result.aggregate.fillBufferFullFraction() * 100,
                "~100%");
    std::printf("\nexpected shape: memory-bound slots dominate; useful "
                "work is a small slice\n");
    return 0;
}
