/**
 * @file
 * CI smoke benchmark: one small real (non-simulated) training run on the
 * products analogue plus raw kernel rates, emitted as BENCH_smoke.json.
 *
 * Three measurements, all wall-clock on the host (not the simulator):
 *   - steady-state training epoch seconds (fused techniques), taken
 *     after a warm-up epoch so the allocation-free regime is what is
 *     timed;
 *   - backward-pass seconds with fusion off vs on, same model and same
 *     loss gradient, demonstrating the commuted fused backward's win;
 *   - aggregation and prepacked-GEMM GFLOP/s as raw kernel health
 *     numbers.
 *
 * The JSON is tiny and stable-keyed so CI can archive it per commit and
 * diff rates across history.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/options.h"
#include "common/timer.h"
#include "dma/pipelined_runner.h"
#include "gnn/trainer.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/partition/partition_stats.h"
#include "graph/partition/partitioner.h"
#include "graph/reorder.h"
#include "kernels/aggregation.h"
#include "kernels/shard_exec.h"
#include "gnn/gnn_layer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "serve/load_gen.h"
#include "serve/server.h"
#include "sim/machine.h"
#include "sim/workloads.h"
#include "tensor/gemm.h"
#include "tensor/row_ops.h"

using namespace graphite;

namespace {

double
median(std::vector<double> xs)
{
    std::sort(xs.begin(), xs.end());
    return xs[xs.size() / 2];
}

/** Median seconds of @p reps invocations of @p fn (after one warm-up). */
template <typename Fn>
double
timeMedian(std::size_t reps, Fn &&fn)
{
    fn();
    std::vector<double> seconds;
    seconds.reserve(reps);
    for (std::size_t r = 0; r < reps; ++r) {
        Timer timer;
        fn();
        seconds.push_back(timer.seconds());
    }
    return median(std::move(seconds));
}

} // namespace

int
main(int argc, char **argv)
{
    Options options("CI smoke bench: training epoch + kernel rates -> "
                    "BENCH_smoke.json");
    options.add("scale-shift", "4",
                "products shrink (|V| = 2^(16 - shift))");
    options.add("epochs", "4", "training epochs (first is warm-up)");
    options.add("reps", "5", "repetitions per kernel measurement");
    options.add("output", "BENCH_smoke.json", "JSON output path");
    options.add("trace-out", "",
                "write a chrome://tracing span JSON (enables tracing)");
    options.add("metrics-out", "",
                "write a metrics-registry JSON (enables metrics)");
    options.parse(argc, argv);

    const std::string traceOut = options.getString("trace-out");
    const std::string metricsOut = options.getString("metrics-out");
    if (!traceOut.empty())
        obs::TraceRecorder::global().setEnabled(true);
    if (!metricsOut.empty())
        obs::MetricsRegistry::global().setEnabled(true);

    const auto shift =
        static_cast<unsigned>(options.getInt("scale-shift"));
    const auto epochs = static_cast<std::size_t>(options.getInt("epochs"));
    const auto reps = static_cast<std::size_t>(options.getInt("reps"));

    Dataset data = makeDataset(DatasetId::Products, shift);
    data.hiddenFeatures = 128; // smoke scale; CI boxes are small
    const CsrGraph &graph = data.graph;
    const auto numVertices = static_cast<std::size_t>(graph.numVertices());
    const auto numEdges = static_cast<std::size_t>(graph.numEdges());
    std::printf("products analogue: |V|=%zu |E|=%zu F_in=%zu F_hidden=%zu "
                "threads=%zu\n",
                numVertices, numEdges, data.inputFeatures,
                data.hiddenFeatures, ThreadPool::global().numThreads());

    // --- Raw kernel rates -------------------------------------------------
    const AggregationSpec spec = gcnSpec(graph);
    DenseMatrix features(numVertices, data.hiddenFeatures);
    features.fillUniform(-1.0f, 1.0f, 11);
    DenseMatrix aggOut(numVertices, data.hiddenFeatures);
    const double aggSeconds = timeMedian(reps, [&] {
        aggregateBasic(graph, features, aggOut, spec);
    });
    // Per output element: one self-term multiply plus a multiply-add per
    // incoming edge.
    const double aggFlops =
        static_cast<double>(data.hiddenFeatures) *
        (static_cast<double>(numVertices) +
         2.0 * static_cast<double>(numEdges));
    const double aggGflops = aggFlops / aggSeconds * 1e-9;

    DenseMatrix weights(data.hiddenFeatures, data.hiddenFeatures);
    weights.fillUniform(-0.1f, 0.1f, 13);
    GemmPlan plan;
    plan.pack(GemmMode::NN, weights);
    DenseMatrix gemmOut(numVertices, data.hiddenFeatures);
    const double gemmSeconds = timeMedian(reps, [&] {
        gemm(GemmMode::NN, features, plan, gemmOut);
    });
    const double gemmFlops = 2.0 * static_cast<double>(numVertices) *
                             static_cast<double>(data.hiddenFeatures) *
                             static_cast<double>(data.hiddenFeatures);
    const double gemmGflops = gemmFlops / gemmSeconds * 1e-9;
    std::printf("aggregation: %7.2f GFLOP/s   gemm(NN packed): %7.2f "
                "GFLOP/s\n",
                aggGflops, gemmGflops);

    // --- bf16 precision path ----------------------------------------------
    // Same shapes at half storage width: bf16 gathers and the
    // bf16-in/fp32-accumulate GEMM, with the fp32 columns above as the
    // direct comparison point.
    Bf16Matrix featuresBf16(numVertices, data.hiddenFeatures);
    featuresBf16.fromDense(features);
    const double aggBf16Seconds = timeMedian(reps, [&] {
        aggregateBf16(graph, featuresBf16, aggOut, spec);
    });
    const double aggBf16Gflops = aggFlops / aggBf16Seconds * 1e-9;

    GemmPlan planBf16;
    planBf16.pack(GemmMode::NN, weights, Precision::Bf16);
    const double gemmBf16Seconds = timeMedian(reps, [&] {
        gemm(GemmMode::NN, features, planBf16, gemmOut);
    });
    const double gemmBf16Gflops = gemmFlops / gemmBf16Seconds * 1e-9;
    std::printf("bf16 (%s): agg %7.2f GFLOP/s   gemm %7.2f GFLOP/s\n",
                bf16GemmIsNative() ? "native" : "emulated", aggBf16Gflops,
                gemmBf16Gflops);

    // Gather-traffic accounting: one run of each aggregation under the
    // metrics registry; bf16 rows are half the stored width, so the
    // bf16/fp32 byte ratio should sit at ~0.5 (stride padding aside).
    obs::MetricsRegistry &registry = obs::MetricsRegistry::global();
    const bool metricsWereEnabled = registry.enabled();
    registry.setEnabled(true);
    obs::Counter &gatherBytes = registry.counter("agg.bytes_gathered");
    const std::uint64_t bytesBase = gatherBytes.value();
    aggregateBasic(graph, features, aggOut, spec);
    const std::uint64_t bytesFp32 = gatherBytes.value() - bytesBase;
    aggregateBf16(graph, featuresBf16, aggOut, spec);
    const std::uint64_t bytesBf16 =
        gatherBytes.value() - bytesBase - bytesFp32;
    registry.setEnabled(metricsWereEnabled);
    const double gatherRatio =
        bytesFp32 == 0 ? 0.0
                       : static_cast<double>(bytesBf16) /
                             static_cast<double>(bytesFp32);
    std::printf("bytes gathered: fp32 %llu   bf16 %llu   ratio %.3f\n",
                static_cast<unsigned long long>(bytesFp32),
                static_cast<unsigned long long>(bytesBf16), gatherRatio);

    // --- DMA pipelined aggregation ---------------------------------------
    // Same aggregation as aggregateBasic, driven through the functional
    // DMA engines; its spans/counters are what a traced run archives.
    DenseMatrix dmaOut(numVertices, data.hiddenFeatures);
    const double dmaAggSeconds = timeMedian(reps, [&] {
        dma::dmaAggregate(graph, features, spec, dmaOut);
    });
    const double dmaAggGflops = aggFlops / dmaAggSeconds * 1e-9;
    std::printf("dma aggregation: %7.2f GFLOP/s\n", dmaAggGflops);

    // --- Training epoch (fused techniques) --------------------------------
    constexpr std::size_t kClasses = 16;
    SyntheticTask task =
        makeSyntheticTask(graph, kClasses, data.inputFeatures, 0.5, 3);
    GnnModelConfig modelConfig;
    modelConfig.featureWidths = {data.inputFeatures, data.hiddenFeatures,
                                 kClasses};
    GnnModel model(graph, modelConfig);
    TrainerConfig trainerConfig;
    trainerConfig.epochs = epochs;
    trainerConfig.tech = TechniqueConfig::withFusion();
    Trainer trainer(model, task.features, task.labels, trainerConfig);
    const std::vector<EpochStats> history = trainer.train();
    std::vector<double> epochSeconds;
    for (std::size_t i = 1; i < history.size(); ++i) // epoch 0 allocates
        epochSeconds.push_back(history[i].seconds);
    const double steadyEpochSeconds = epochSeconds.empty()
                                          ? history.back().seconds
                                          : median(std::move(epochSeconds));
    std::printf("steady-state epoch: %.4f s (final loss %.4f)\n",
                steadyEpochSeconds, history.back().loss);

    // Same run at bf16: fused + half-width inter-layer activations.
    GnnModel modelBf16(graph, modelConfig);
    TrainerConfig trainerConfigBf16 = trainerConfig;
    trainerConfigBf16.tech.precision = Precision::Bf16;
    Trainer trainerBf16(modelBf16, task.features, task.labels,
                        trainerConfigBf16);
    const std::vector<EpochStats> historyBf16 = trainerBf16.train();
    std::vector<double> epochSecondsBf16;
    for (std::size_t i = 1; i < historyBf16.size(); ++i)
        epochSecondsBf16.push_back(historyBf16[i].seconds);
    const double steadyEpochSecondsBf16 =
        epochSecondsBf16.empty() ? historyBf16.back().seconds
                                 : median(std::move(epochSecondsBf16));
    std::printf("steady-state epoch (bf16): %.4f s (final loss %.4f)\n",
                steadyEpochSecondsBf16, historyBf16.back().loss);

    // --- Backward pass: fusion off vs on ----------------------------------
    // One forward fixes the layer contexts; the backward only reads them
    // (lossGrad is the clobbered buffer), so it can be re-run from a
    // refilled loss gradient as often as we like.
    GnnModel bwdModel(graph, modelConfig);
    const TechniqueConfig unfusedTech = TechniqueConfig::basic();
    const TechniqueConfig fusedTech = TechniqueConfig::withFusion();
    const DenseMatrix &logits =
        bwdModel.trainForward(task.features, unfusedTech);
    DenseMatrix lossGrad(logits.rows(), logits.cols());
    const auto timeBackward = [&](const TechniqueConfig &tech) {
        return timeMedian(reps, [&] {
            softmaxCrossEntropy(logits, task.labels, lossGrad);
            bwdModel.trainBackward(lossGrad, tech);
        });
    };
    const double lossGradSeconds = timeMedian(reps, [&] {
        softmaxCrossEntropy(logits, task.labels, lossGrad);
    });
    const double unfusedSeconds =
        timeBackward(unfusedTech) - lossGradSeconds;
    const double fusedSeconds = timeBackward(fusedTech) - lossGradSeconds;
    const double speedup = unfusedSeconds / fusedSeconds;
    std::printf("backward: unfused %.4f s   fused %.4f s   speedup "
                "%.2fx\n",
                unfusedSeconds, fusedSeconds, speedup);

    // --- Cache-slice partition: shard-major execution ---------------------
    // Figure-15-style comparison on the products analogue (a planted-
    // community graph with shuffled ids, so identity order carries no
    // locality): global orders vs the shard-major order of the greedy
    // and hash partitions, in wall-clock, gather bytes and simulated
    // DRAM traffic.
    constexpr std::size_t kShards = 4;
    PartitionConfig partitionConfig;
    partitionConfig.numShards = kShards;
    const PartitionPlan greedyPlan =
        makePartitionPlan(graph, partitionConfig);
    partitionConfig.strategy = PartitionStrategy::Hash;
    const PartitionPlan hashPlan = makePartitionPlan(graph, partitionConfig);
    const PartitionStats greedyStats = computePartitionStats(greedyPlan);
    const PartitionStats hashStats = computePartitionStats(hashPlan);
    std::printf("partition K=%zu: greedy cut ratio %.3f halo %u | "
                "hash cut ratio %.3f halo %u\n",
                kShards, greedyStats.cutEdgeRatio, greedyStats.haloVertices,
                hashStats.cutEdgeRatio, hashStats.haloVertices);

    // Sharded steady-state training epoch (fused + shard-major tasks).
    GnnModel shardModel(graph, modelConfig);
    TrainerConfig shardTrainerConfig = trainerConfig;
    shardTrainerConfig.tech.shards = kShards;
    Trainer shardTrainer(shardModel, task.features, task.labels,
                         shardTrainerConfig);
    const std::vector<EpochStats> shardHistory = shardTrainer.train();
    std::vector<double> shardEpochSeconds;
    for (std::size_t i = 1; i < shardHistory.size(); ++i)
        shardEpochSeconds.push_back(shardHistory[i].seconds);
    const double epochSecondsSharded =
        shardEpochSeconds.empty() ? shardHistory.back().seconds
                                  : median(std::move(shardEpochSeconds));
    std::printf("steady-state epoch (sharded k=%zu): %.4f s "
                "(final loss %.4f)\n",
                kShards, epochSecondsSharded, shardHistory.back().loss);

    // Gather traffic, exact vs delayed-halo: delayed pulls each halo row
    // once per shard instead of once per cut edge.
    registry.setEnabled(true);
    obs::Counter &partBytes = registry.counter("partition.bytes_gathered");
    obs::Counter &partHaloBytes = registry.counter("partition.halo_bytes");
    const std::uint64_t partBytesBase = partBytes.value();
    const std::uint64_t partHaloBase = partHaloBytes.value();
    aggregateSharded(greedyPlan, features, aggOut, spec, false);
    const std::uint64_t bytesExact = partBytes.value() - partBytesBase;
    aggregateSharded(greedyPlan, features, aggOut, spec, true);
    const std::uint64_t bytesDelayed =
        partBytes.value() - partBytesBase - bytesExact;
    const std::uint64_t haloBytes = partHaloBytes.value() - partHaloBase;
    registry.setEnabled(metricsWereEnabled);
    std::printf("sharded gather bytes: exact %llu   delayed %llu   "
                "halo %llu\n",
                static_cast<unsigned long long>(bytesExact),
                static_cast<unsigned long long>(bytesDelayed),
                static_cast<unsigned long long>(haloBytes));

    // Simulated locality: DRAM line transfers and cache hit rates for
    // one aggregation layer under each processing order.
    const auto simLayer = [&](const ProcessingOrder *order) {
        sim::Machine machine(sim::paperMachine(64));
        sim::LayerWorkload workload;
        workload.graph = &graph;
        workload.order = order;
        workload.fIn = data.hiddenFeatures;
        workload.fOut = data.hiddenFeatures;
        workload.impl = sim::LayerImpl::Basic;
        workload.doUpdate = false;
        return sim::simulateLayer(machine, workload);
    };
    const ProcessingOrder locality = localityOrder(graph);
    struct SimRow
    {
        const char *name;
        sim::RunResult result;
    };
    const SimRow simRows[] = {
        {"identity", simLayer(nullptr)},
        {"locality (Alg. 3)", simLayer(&locality)},
        {"shard-major greedy", simLayer(&greedyPlan.shardMajorOrder)},
        {"shard-major hash", simLayer(&hashPlan.shardMajorOrder)},
    };
    std::printf("%-20s %12s %8s %8s\n", "sim order", "dram lines",
                "l2 hit", "llc hit");
    const auto hitRate = [](const sim::CacheStats &stats) {
        return stats.accesses == 0
                   ? 0.0
                   : static_cast<double>(stats.hits) /
                         static_cast<double>(stats.accesses);
    };
    for (const SimRow &row : simRows) {
        std::printf("%-20s %12llu %8.3f %8.3f\n", row.name,
                    static_cast<unsigned long long>(
                        row.result.dram.lineTransfers),
                    hitRate(row.result.l2Total),
                    hitRate(row.result.l3Stats));
    }
    const std::uint64_t simDramGlobal = simRows[0].result.dram.lineTransfers;
    const std::uint64_t simDramSharded =
        simRows[2].result.dram.lineTransfers;

    // --- Online serving: hot-vertex cache A/B -----------------------------
    // The serving cache targets power-law fan-in, which the planted-
    // community products analogue deliberately lacks — so this section
    // runs on a small R-MAT graph (the serving bench's validated
    // recipe: wide features make serving gather-bound, hub-heavy
    // traffic gives the cache its target). Same open-loop Zipf/Poisson
    // arrival schedule for both runs (same seed); the only difference
    // is the hot-vertex cache. The gather-byte reduction is
    // deterministic enough to gate in CI; the latency columns are
    // archived.
    RmatParams serveRmat;
    serveRmat.scale = 13;
    serveRmat.avgDegree = 16.0;
    serveRmat.seed = 5;
    const CsrGraph serveGraph = generateRmat(serveRmat);
    constexpr std::size_t kServeWidth = 128;
    DenseMatrix serveFeatures(serveGraph.numVertices(), kServeWidth);
    serveFeatures.fillUniform(-1.0f, 1.0f, 29);
    GnnLayer serveHidden(kServeWidth, kServeWidth, true);
    GnnLayer serveOut(kServeWidth, kClasses, false);
    serveHidden.initWeights(19);
    serveOut.initWeights(23);
    serve::ServeConfig serveConfig;
    serveConfig.fanouts = {10, 10};
    serveConfig.maxBatch = 64;
    serveConfig.latencyBudgetUs = 100;
    serveConfig.hotCacheCapacity = 1024;
    // Pin admission at the top-(capacity/2) degree rank: the admissible
    // hub set fits the cache with headroom, so every full-neighborhood
    // fill lands in warmup and the measured phase is churn-free — the
    // tail then shows the hit path, not eviction refill spikes.
    serveConfig.hotCacheMinDegree = serve::churnFreeDegreeThreshold(
        serveGraph, serveConfig.hotCacheCapacity);
    serve::LoadGenConfig serveLoad;
    serveLoad.numRequests = 8000;
    serveLoad.warmupRequests = 1600;
    serveLoad.offeredQps = 15000.0;
    serveLoad.zipfExponent = 0.9;
    serveLoad.seed = 7;
    serve::LoadGenReport serveOn;
    {
        serve::InferenceServer server(serveGraph, serveFeatures,
                                      {&serveHidden, &serveOut},
                                      serveConfig);
        serveOn = serve::runServeLoad(server, serveLoad);
    }
    serve::LoadGenReport serveOff;
    {
        serve::ServeConfig offConfig = serveConfig;
        offConfig.hotCacheCapacity = 0;
        serve::InferenceServer server(serveGraph, serveFeatures,
                                      {&serveHidden, &serveOut},
                                      offConfig);
        serveOff = serve::runServeLoad(server, serveLoad);
    }
    std::printf("serve cache-on:  qps %8.0f  p50 %7.1fus  p99 %7.1fus  "
                "hit %5.1f%%  gathered %llu B\n",
                serveOn.qps, serveOn.p50Us, serveOn.p99Us,
                serveOn.cacheHitRate * 100.0,
                static_cast<unsigned long long>(serveOn.bytesGathered));
    std::printf("serve cache-off: qps %8.0f  p50 %7.1fus  p99 %7.1fus  "
                "gathered %llu B\n",
                serveOff.qps, serveOff.p50Us, serveOff.p99Us,
                static_cast<unsigned long long>(serveOff.bytesGathered));

    // --- JSON artifact ----------------------------------------------------
    const std::string path = options.getString("output");
    std::FILE *out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
        return 1;
    }
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"dataset\": \"products\",\n");
    std::fprintf(out, "  \"vertices\": %zu,\n", numVertices);
    std::fprintf(out, "  \"edges\": %zu,\n", numEdges);
    std::fprintf(out, "  \"hidden_features\": %zu,\n", data.hiddenFeatures);
    std::fprintf(out, "  \"threads\": %zu,\n",
                 ThreadPool::global().numThreads());
    std::fprintf(out, "  \"epoch_seconds\": %.6f,\n", steadyEpochSeconds);
    std::fprintf(out, "  \"epoch_seconds_bf16\": %.6f,\n",
                 steadyEpochSecondsBf16);
    std::fprintf(out, "  \"final_loss\": %.6f,\n", history.back().loss);
    std::fprintf(out, "  \"final_loss_bf16\": %.6f,\n",
                 historyBf16.back().loss);
    std::fprintf(out, "  \"bf16_native\": %s,\n",
                 bf16GemmIsNative() ? "true" : "false");
    std::fprintf(out, "  \"bytes_gathered_fp32\": %llu,\n",
                 static_cast<unsigned long long>(bytesFp32));
    std::fprintf(out, "  \"bytes_gathered_bf16\": %llu,\n",
                 static_cast<unsigned long long>(bytesBf16));
    std::fprintf(out, "  \"gather_traffic_ratio\": %.4f,\n", gatherRatio);
    std::fprintf(out, "  \"backward_seconds_unfused\": %.6f,\n",
                 unfusedSeconds);
    std::fprintf(out, "  \"backward_seconds_fused\": %.6f,\n",
                 fusedSeconds);
    std::fprintf(out, "  \"backward_speedup\": %.3f,\n", speedup);
    std::fprintf(out, "  \"shard_count\": %zu,\n", kShards);
    std::fprintf(out, "  \"cut_edge_ratio\": %.4f,\n",
                 greedyStats.cutEdgeRatio);
    std::fprintf(out, "  \"halo_bytes\": %llu,\n",
                 static_cast<unsigned long long>(haloBytes));
    std::fprintf(out, "  \"bytes_gathered_sharded\": %llu,\n",
                 static_cast<unsigned long long>(bytesDelayed));
    std::fprintf(out, "  \"epoch_seconds_sharded\": %.6f,\n",
                 epochSecondsSharded);
    std::fprintf(out, "  \"sim_dram_lines_global\": %llu,\n",
                 static_cast<unsigned long long>(simDramGlobal));
    std::fprintf(out, "  \"sim_dram_lines_sharded\": %llu,\n",
                 static_cast<unsigned long long>(simDramSharded));
    std::fprintf(out, "  \"aggregation_gflops\": %.3f,\n", aggGflops);
    std::fprintf(out, "  \"aggregation_bf16_gflops\": %.3f,\n",
                 aggBf16Gflops);
    std::fprintf(out, "  \"dma_aggregation_gflops\": %.3f,\n",
                 dmaAggGflops);
    std::fprintf(out, "  \"gemm_bf16_gflops\": %.3f,\n", gemmBf16Gflops);
    std::fprintf(out, "  \"gemm_gflops\": %.3f,\n", gemmGflops);
    std::fprintf(out, "  \"serve\": {\n");
    std::fprintf(out, "    \"hot_cache_capacity\": %zu,\n",
                 serveConfig.hotCacheCapacity);
    std::fprintf(out, "    \"offered_qps\": %.1f,\n",
                 serveLoad.offeredQps);
    std::fprintf(out, "    \"qps\": %.1f,\n", serveOn.qps);
    std::fprintf(out, "    \"p50_us\": %.2f,\n", serveOn.p50Us);
    std::fprintf(out, "    \"p99_us\": %.2f,\n", serveOn.p99Us);
    std::fprintf(out, "    \"mean_batch_size\": %.2f,\n",
                 serveOn.meanBatchSize);
    std::fprintf(out, "    \"cache_hit_rate\": %.4f,\n",
                 serveOn.cacheHitRate);
    std::fprintf(out, "    \"bytes_gathered\": %llu,\n",
                 static_cast<unsigned long long>(serveOn.bytesGathered));
    std::fprintf(out, "    \"dropped\": %llu,\n",
                 static_cast<unsigned long long>(serveOn.dropped));
    std::fprintf(out, "    \"qps_nocache\": %.1f,\n", serveOff.qps);
    std::fprintf(out, "    \"p50_us_nocache\": %.2f,\n", serveOff.p50Us);
    std::fprintf(out, "    \"p99_us_nocache\": %.2f,\n", serveOff.p99Us);
    std::fprintf(out, "    \"bytes_gathered_nocache\": %llu,\n",
                 static_cast<unsigned long long>(serveOff.bytesGathered));
    std::fprintf(out, "    \"dropped_nocache\": %llu\n",
                 static_cast<unsigned long long>(serveOff.dropped));
    std::fprintf(out, "  }");
    // When tracing was on, fold the flat per-phase summary into the same
    // artifact so CI diffs phase totals alongside the headline rates.
    if (obs::TraceRecorder::global().enabled()) {
        const std::vector<obs::PhaseSummary> phases =
            obs::TraceRecorder::global().summarize();
        std::fprintf(out, ",\n  \"phases\": {");
        for (std::size_t i = 0; i < phases.size(); ++i) {
            std::fprintf(out,
                         "%s\n    \"%s\": {\"count\": %llu, "
                         "\"seconds\": %.6f}",
                         i == 0 ? "" : ",", phases[i].name.c_str(),
                         static_cast<unsigned long long>(phases[i].count),
                         phases[i].seconds);
        }
        std::fprintf(out, "\n  }");
    }
    std::fprintf(out, "\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", path.c_str());

    if (!traceOut.empty()) {
        obs::TraceRecorder::global().writeChromeJson(traceOut);
        std::printf("wrote %s\n", traceOut.c_str());
    }
    if (!metricsOut.empty()) {
        obs::MetricsRegistry::global().writeJson(metricsOut);
        std::printf("wrote %s\n", metricsOut.c_str());
    }
    return 0;
}
