/**
 * @file
 * Ablation: the fused kernel's block size B (Algorithm 2). The paper
 * argues B must keep the aggregation block cache-resident between the
 * two phases (Figure 5b/c): too small and the per-block overheads
 * (weight-panel walk, scheduling) dominate; too large and the block no
 * longer fits the private caches, re-introducing the a^k round trip
 * fusion was supposed to eliminate.
 */

#include <cstdio>

#include "bench_common.h"
#include "common/options.h"

using namespace graphite;
using namespace graphite::bench;

int
main(int argc, char **argv)
{
    Options options("ablation: fused block size sweep");
    options.add("dataset", "wikipedia", "dataset analogue");
    options.add("extra-shift", "0", "extra dataset shrink");
    options.parse(argc, argv);

    banner("Ablation: Algorithm 2 block size B",
           "design choice behind paper Section 4.2 (no figure)");

    BenchDataset data = makeBenchDataset(
        parseDatasetName(options.getString("dataset")),
        static_cast<unsigned>(options.getInt("extra-shift")));

    std::printf("%-8s %14s %12s\n", "B", "cycles", "vs B=32");
    Cycles reference = 0;
    for (std::size_t blockSize : {2u, 8u, 16u, 32u, 64u, 256u, 2048u}) {
        sim::Machine machine(sim::paperMachine(kCacheShrink));
        sim::LayerWorkload w;
        w.graph = &data.graph();
        w.fIn = data.dataset.hiddenFeatures;
        w.fOut = data.dataset.hiddenFeatures;
        w.impl = sim::LayerImpl::Fused;
        w.writeAgg = false;
        w.blockSize = blockSize;
        w.blocksPerTask = std::max<std::size_t>(1, 64 / blockSize);
        const Cycles cycles = sim::simulateLayer(machine, w).makespan;
        if (blockSize == 32)
            reference = cycles;
        std::printf("%-8zu %14llu", blockSize,
                    static_cast<unsigned long long>(cycles));
        if (reference) {
            std::printf(" %11.2fx", static_cast<double>(cycles) /
                                        reference);
        }
        std::printf("\n");
        std::fflush(stdout);
    }
    std::printf("\nexpected shape: a U-curve — small blocks pay "
                "per-block overhead, huge blocks spill the aggregation "
                "buffer out of the private caches\n");
    return 0;
}
