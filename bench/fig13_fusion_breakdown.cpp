/**
 * @file
 * Figure 13 reproduction: execution-time breakdown of basic vs fused
 * on GCN's *hidden* layers (F_in = F_out = 256), normalised to basic.
 * The paper splits basic into aggregation + update time and shows the
 * fused kernel's time approaching basic's aggregation time alone —
 * i.e. the update compute is practically fully hidden.
 */

#include <cstdio>
#include <map>

#include "bench_common.h"
#include "common/options.h"

using namespace graphite;
using namespace graphite::bench;

namespace {

sim::LayerWorkload
hiddenLayer(const BenchDataset &data, sim::LayerImpl impl, bool writeAgg)
{
    sim::LayerWorkload w;
    w.graph = &data.graph();
    w.fIn = data.dataset.hiddenFeatures;
    w.fOut = data.dataset.hiddenFeatures;
    w.impl = impl;
    w.writeAgg = writeAgg;
    return w;
}

} // namespace

int
main(int argc, char **argv)
{
    Options options("Figure 13: layer-fusion time breakdown");
    options.add("extra-shift", "0", "extra dataset shrink");
    options.parse(argc, argv);

    banner("Figure 13: basic vs fused on hidden layers",
           "paper Figure 13 (update share 7-31%; fused ~= basic's "
           "aggregation time)");

    // Paper values: (aggregation share, fused-inference, fused-fwd-train)
    const std::map<std::string, std::array<double, 3>> paper = {
        {"products", {0.93, 0.87, 0.92}},
        {"wikipedia", {0.69, 0.71, 0.86}},
        {"papers", {0.81, 0.78, 0.88}},
        {"twitter", {0.84, 0.83, 0.91}}};

    std::printf("%-10s %10s %10s %18s %18s %16s  (normalised to basic "
                "= agg + update; bwd to basic-bwd)\n",
                "graph", "agg", "update", "fused-inference",
                "fused-fwd-train", "fused-bwd-train");
    const auto extraShift =
        static_cast<unsigned>(options.getInt("extra-shift"));
    for (DatasetId id : allDatasets()) {
        BenchDataset data = makeBenchDataset(id, extraShift);
        sim::Machine machine(sim::paperMachine(kCacheShrink));

        // basic: aggregation-only phase then the update stream.
        sim::LayerWorkload aggOnly =
            hiddenLayer(data, sim::LayerImpl::Basic, true);
        aggOnly.doUpdate = false;
        const Cycles aggCycles =
            sim::simulateLayer(machine, aggOnly).makespan;
        sim::LayerWorkload full =
            hiddenLayer(data, sim::LayerImpl::Basic, true);
        const Cycles basicCycles =
            sim::simulateLayer(machine, full).makespan;
        const Cycles updateCycles =
            basicCycles > aggCycles ? basicCycles - aggCycles : 0;

        // fused inference (no a^k) and fused forward-training (a^k
        // kept) — Figure 5b/5c.
        const Cycles fusedInf = sim::simulateLayer(
            machine, hiddenLayer(data, sim::LayerImpl::Fused, false))
            .makespan;
        const Cycles fusedTrain = sim::simulateLayer(
            machine, hiddenLayer(data, sim::LayerImpl::Fused, true))
            .makespan;

        // Backward counterpart on the transposed graph: basic
        // materialises dAgg and aggregates it (agg stream + da GEMM in
        // the update stream); fused gathers dz into the core-resident
        // block buffer and GEMMs it in place, never storing dAgg.
        const CsrGraph transposed = data.graph().transposed();
        sim::LayerWorkload bwdBasic =
            hiddenLayer(data, sim::LayerImpl::Basic, true);
        bwdBasic.graph = &transposed;
        const Cycles bwdBasicCycles =
            sim::simulateLayer(machine, bwdBasic).makespan;
        sim::LayerWorkload bwdFused =
            hiddenLayer(data, sim::LayerImpl::Fused, false);
        bwdFused.graph = &transposed;
        const Cycles bwdFusedCycles =
            sim::simulateLayer(machine, bwdFused).makespan;

        const double norm = static_cast<double>(basicCycles);
        const auto &p = paper.at(data.name());
        std::printf("%-10s %9.2f %10.2f", data.name().c_str(),
                    aggCycles / norm, updateCycles / norm);
        std::printf("    %5.2f (paper %4.2f)", fusedInf / norm, p[1]);
        std::printf("    %5.2f (paper %4.2f)", fusedTrain / norm, p[2]);
        std::printf("    %12.2f\n",
                    static_cast<double>(bwdFusedCycles) /
                        static_cast<double>(bwdBasicCycles));
        std::fflush(stdout);
    }
    std::printf("\nexpected shape: fused-inference time approaches the "
                "aggregation share (update hidden); forward-training "
                "pays the a^k write-back; fused-bwd-train < 1 — the "
                "commuted backward fusion skips the dAgg round-trip\n");
    return 0;
}
