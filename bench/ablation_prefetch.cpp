/**
 * @file
 * Ablation: software-prefetch tuning in Algorithm 1. The paper
 * empirically prefetches only the *first two* cache lines of each
 * upcoming feature vector because the L1 fill buffers are nearly always
 * full — prefetching whole vectors would steal MSHRs from demand
 * misses. This sweep reproduces that design point: lines-per-vector x
 * prefetch distance.
 */

#include <cstdio>

#include "bench_common.h"
#include "common/options.h"

using namespace graphite;
using namespace graphite::bench;

int
main(int argc, char **argv)
{
    Options options("ablation: software prefetch sweep");
    options.add("dataset", "papers", "dataset analogue");
    options.add("extra-shift", "0", "extra dataset shrink");
    options.parse(argc, argv);

    banner("Ablation: Algorithm 1 prefetch lines x distance",
           "design choice behind paper Section 4.1 (prefetch only the "
           "first two lines)");

    BenchDataset data = makeBenchDataset(
        parseDatasetName(options.getString("dataset")),
        static_cast<unsigned>(options.getInt("extra-shift")));

    const std::size_t distances[] = {0, 2, 4, 8, 16};
    const std::size_t lines[] = {1, 2, 4, 8};

    // Two machines: the default one (with the L2 hardware streamer) and
    // a streamer-less one. With the streamer, software prefetch is
    // largely redundant; without it, the paper's shallow-prefetch rule
    // carries the load.
    for (int streamer = 1; streamer >= 0; --streamer) {
        sim::MachineParams params = sim::paperMachine(kCacheShrink);
        if (!streamer)
            params.l2StreamPrefetch = 0;
        std::printf("--- L2 hardware streamer %s ---\n",
                    streamer ? "ON (default machine)" : "OFF");

        Cycles base = 0;
        {
            sim::Machine machine(params);
            sim::LayerWorkload w;
            w.graph = &data.graph();
            w.fIn = data.dataset.hiddenFeatures;
            w.fOut = data.dataset.hiddenFeatures;
            w.doUpdate = false;
            w.prefetchDistance = 0;
            base = sim::simulateLayer(machine, w).makespan;
        }

        std::printf("%-10s", "lines\\D");
        for (std::size_t d : distances)
            std::printf(" %11zu", d);
        std::printf("   (aggregation-only cycles, normalised to no "
                    "software prefetch)\n");
        for (std::size_t l : lines) {
            std::printf("%-10zu", l);
            for (std::size_t d : distances) {
                sim::Machine machine(params);
                sim::LayerWorkload w;
                w.graph = &data.graph();
                w.fIn = data.dataset.hiddenFeatures;
                w.fOut = data.dataset.hiddenFeatures;
                w.doUpdate = false;
                w.prefetchDistance = d;
                w.prefetchLines = l;
                const Cycles cycles =
                    sim::simulateLayer(machine, w).makespan;
                std::printf(" %11.3f",
                            static_cast<double>(cycles) / base);
                std::fflush(stdout);
            }
            std::printf("\n");
        }
        std::printf("\n");
    }
    std::printf("measured shape: software prefetch is near-neutral in "
                "both machines — the fill buffers are nearly always "
                "full in this regime, so prefetches are dropped "
                "(CoreStats.prefetchesDropped), which is exactly the "
                "symptom the paper reports and the reason it prefetches "
                "only the first two lines rather than whole vectors "
                "(Section 4.1: 'adding excessive software prefetch can "
                "instead degrade the performance')\n");
    return 0;
}
