/**
 * @file
 * Figure 11 reproduction: speedups of the Graphite software techniques
 * over the DistGNN baseline, for full-batch inference (Fig. 11a) and
 * training (Fig. 11b) on all four dataset analogues.
 *
 * Configurations (paper Section 7.1.1): MKL, basic (Alg. 1), fusion
 * (Alg. 2), compression @50% sparsity (Sec. 4.3), combined, and — for
 * training — combined+locality (Sec. 4.4). GCN and GraphSAGE share one
 * simulated row: both models are gather-ψ-reduce + FC (Table 2), so
 * the trace model predicts identical performance for them; the paper
 * measures them within a few percent of each other.
 */

#include <cstdio>
#include <map>

#include "bench_common.h"
#include "common/options.h"

using namespace graphite;
using namespace graphite::bench;

namespace {

/** Paper Figure 11a/b speedups (GCN rows) for comparison. */
const std::map<std::string, std::map<SwConfig, double>> kPaperInference =
{
    {"products", {{SwConfig::Mkl, 0.98}, {SwConfig::Basic, 1.02},
                  {SwConfig::Fusion, 1.18}, {SwConfig::Compression, 1.48},
                  {SwConfig::Combined, 1.72}}},
    {"wikipedia", {{SwConfig::Mkl, 0.95}, {SwConfig::Basic, 1.11},
                   {SwConfig::Fusion, 1.56}, {SwConfig::Compression, 1.37},
                   {SwConfig::Combined, 1.85}}},
    {"papers", {{SwConfig::Mkl, 0.98}, {SwConfig::Basic, 1.07},
                {SwConfig::Fusion, 1.38}, {SwConfig::Compression, 1.45},
                {SwConfig::Combined, 1.90}}},
    {"twitter", {{SwConfig::Mkl, 0.89}, {SwConfig::Basic, 1.03},
                 {SwConfig::Fusion, 1.25}, {SwConfig::Compression, 1.43},
                 {SwConfig::Combined, 1.72}}},
};

const std::map<std::string, std::map<SwConfig, double>> kPaperTraining =
{
    {"products", {{SwConfig::Mkl, 0.98}, {SwConfig::Basic, 1.02},
                  {SwConfig::Fusion, 1.11}, {SwConfig::Compression, 1.46},
                  {SwConfig::Combined, 1.58},
                  {SwConfig::CombinedLocality, 2.57}}},
    {"wikipedia", {{SwConfig::Mkl, 0.96}, {SwConfig::Basic, 1.10},
                   {SwConfig::Fusion, 1.25}, {SwConfig::Compression, 1.31},
                   {SwConfig::Combined, 1.50},
                   {SwConfig::CombinedLocality, 1.80}}},
    {"papers", {{SwConfig::Mkl, 0.98}, {SwConfig::Basic, 1.06},
                {SwConfig::Fusion, 1.19}, {SwConfig::Compression, 1.40},
                {SwConfig::Combined, 1.56},
                {SwConfig::CombinedLocality, 1.83}}},
    {"twitter", {{SwConfig::Mkl, 0.89}, {SwConfig::Basic, 1.03},
                 {SwConfig::Fusion, 1.12}, {SwConfig::Compression, 1.39},
                 {SwConfig::Combined, 1.50},
                 {SwConfig::CombinedLocality, 1.60}}},
};

void
runSection(const char *title, bool training,
           const std::vector<BenchDataset> &datasets, double sparsity)
{
    const std::vector<SwConfig> configs = training
        ? std::vector<SwConfig>{SwConfig::Mkl, SwConfig::Basic,
                                SwConfig::Fusion, SwConfig::Compression,
                                SwConfig::Combined,
                                SwConfig::CombinedLocality}
        : std::vector<SwConfig>{SwConfig::Mkl, SwConfig::Basic,
                                SwConfig::Fusion, SwConfig::Compression,
                                SwConfig::Combined};
    const auto &paper = training ? kPaperTraining : kPaperInference;

    std::printf("--- %s (speedup over DistGNN; models GCN/GraphSAGE "
                "share the simulated row) ---\n", title);
    std::printf("%-10s", "graph");
    for (SwConfig config : configs)
        std::printf(" %23s", swConfigName(config));
    std::printf("\n");

    for (const BenchDataset &data : datasets) {
        const Cycles baseline = training
            ? trainingCycles(data, SwConfig::DistGnn, sparsity)
            : inferenceCycles(data, SwConfig::DistGnn, sparsity);
        std::printf("%-10s", data.name().c_str());
        for (SwConfig config : configs) {
            const Cycles cycles = training
                ? trainingCycles(data, config, sparsity)
                : inferenceCycles(data, config, sparsity);
            const double speedup = static_cast<double>(baseline) /
                                   static_cast<double>(cycles);
            speedupCell(speedup, paper.at(data.name()).at(config));
        }
        std::printf("\n");
        std::fflush(stdout);
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    Options options("Figure 11: software technique speedups");
    options.add("extra-shift", "0", "extra dataset shrink");
    options.add("sparsity", "0.5",
                "feature sparsity for compression configs (paper: 0.5)");
    options.add("inference-only", "false", "skip the training section");
    options.parse(argc, argv);

    banner("Figure 11: software speedups over DistGNN",
           "paper Figure 11a (inference) and 11b (training)");

    const auto extraShift =
        static_cast<unsigned>(options.getInt("extra-shift"));
    const double sparsity = options.getDouble("sparsity");

    std::vector<BenchDataset> datasets;
    for (DatasetId id : allDatasets())
        datasets.push_back(makeBenchDataset(id, extraShift));

    runSection("Figure 11a: inference", false, datasets, sparsity);
    if (!options.getBool("inference-only"))
        runSection("Figure 11b: training", true, datasets, sparsity);

    std::printf("expected shape: every technique beats the baseline; "
                "combined is best without locality; locality adds the "
                "most on the clustered products analogue\n");
    return 0;
}
