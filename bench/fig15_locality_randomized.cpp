/**
 * @file
 * Figure 15 reproduction: GCN training time of `combined` and
 * `c-locality` normalised to `randomized` — the average of several
 * random processing orders, which represents "average locality". A
 * graph whose natural (identity) order already embeds locality makes
 * combined beat randomized; the locality order must beat both.
 */

#include <cstdio>
#include <map>

#include "bench_common.h"
#include "common/options.h"

using namespace graphite;
using namespace graphite::bench;

namespace {

Cycles
trainingWithOrder(const BenchDataset &data, const ProcessingOrder *order,
                  bool useLocality)
{
    sim::Machine machine(sim::paperMachine(kCacheShrink));
    sim::NetworkWorkload net = makeNetwork(
        data, useLocality ? SwConfig::CombinedLocality
                          : SwConfig::Combined);
    if (order) {
        net.order = order;
        net.transposedOrder = order; // a permutation of V either way
        net.locality = true;         // reuse the order plumbing
    }
    return sim::simulateTraining(machine, net, data.transposed)
        .totalCycles;
}

} // namespace

int
main(int argc, char **argv)
{
    Options options("Figure 15: locality vs randomized orders");
    options.add("extra-shift", "0", "extra dataset shrink");
    options.add("random-orders", "3",
                "random orders averaged into `randomized`");
    options.parse(argc, argv);

    banner("Figure 15: speedup over randomized processing order",
           "paper Figure 15 (GCN training)");

    const std::map<std::string, std::array<double, 2>> paper = {
        {"products", {1.01, 1.64}},
        {"wikipedia", {1.06, 1.27}},
        {"papers", {1.00, 1.17}},
        {"twitter", {1.13, 1.21}}};

    const auto extraShift =
        static_cast<unsigned>(options.getInt("extra-shift"));
    const auto numRandom =
        static_cast<std::size_t>(options.getInt("random-orders"));

    std::printf("%-10s %26s %26s\n", "graph", "combined", "c-locality");
    for (DatasetId id : allDatasets()) {
        BenchDataset data = makeBenchDataset(id, extraShift);

        double randomizedSum = 0.0;
        for (std::size_t i = 0; i < numRandom; ++i) {
            ProcessingOrder random =
                randomOrder(data.graph(), 100 + i);
            randomizedSum += static_cast<double>(
                trainingWithOrder(data, &random, false));
        }
        const double randomized =
            randomizedSum / static_cast<double>(numRandom);

        const auto combined = static_cast<double>(
            trainingWithOrder(data, nullptr, false)); // identity order
        const auto locality = static_cast<double>(
            trainingWithOrder(data, nullptr, true)); // Algorithm 3

        const auto &p = paper.at(data.name());
        std::printf("%-10s", data.name().c_str());
        speedupCell(randomized / combined, p[0]);
        speedupCell(randomized / locality, p[1]);
        std::printf("\n");
        std::fflush(stdout);
    }
    std::printf("\nexpected shape: locality order beats randomized on "
                "every graph, by the most on the clustered products "
                "analogue\n");
    return 0;
}
