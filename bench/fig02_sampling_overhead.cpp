/**
 * @file
 * Figure 2 reproduction: epoch-time breakdown of *sampled* GraphSAGE
 * training on a CPU-GPU platform, for mini-batch sizes 1024/2048/4096.
 *
 * The CPU side (neighborhood sampling + mini-batch construction +
 * feature gathering) runs for real on this host. The GPU side is a
 * device-time model: the paper's Titan V sustains roughly 500 GFLOP/s
 * effective on these small sampled GEMMs plus ~400 GB/s of effective
 * memory bandwidth on the gathered features (DESIGN.md §2's
 * substitution — the figure's point is the *ratio*: sampling dominates
 * with >80% of epoch time, and shrinking the batch makes it worse).
 */

#include <cstdio>

#include "bench_common.h"
#include "common/options.h"
#include "common/timer.h"
#include "sampling/neighbor_sampler.h"
#include "tensor/dense_matrix.h"

using namespace graphite;
using namespace graphite::bench;

namespace {

/** Modelled device time for the GNN layers of one sampled batch. */
double
modelDeviceSeconds(const MiniBatch &batch, std::size_t fIn,
                   std::size_t fHidden)
{
    constexpr double kGpuFlops = 500e9;  // effective GEMM throughput
    constexpr double kGpuBytes = 400e9;  // effective memory bandwidth
    double flops = 0.0;
    double bytes = 0.0;
    std::size_t width = fIn;
    for (const SampledBlock &block : batch.blocks) {
        // Aggregation: one multiply-add per edge element; update: the
        // dense FC on every destination row.
        flops += 2.0 * static_cast<double>(block.block.numEdges()) *
                 static_cast<double>(width);
        flops += 2.0 * static_cast<double>(block.dstVertices.size()) *
                 static_cast<double>(width) * fHidden;
        bytes += static_cast<double>(block.srcVertices.size()) * width *
                 sizeof(Feature);
        width = fHidden;
    }
    return flops / kGpuFlops + bytes / kGpuBytes;
}

} // namespace

int
main(int argc, char **argv)
{
    Options options("Figure 2: sampling/mini-batching overhead");
    options.add("extra-shift", "0", "extra dataset shrink");
    options.add("fanout", "10", "neighbors sampled per layer");
    options.add("layers", "3", "GNN layers (= sampling depth)");
    options.parse(argc, argv);

    banner("Figure 2: sampled training epoch breakdown",
           "paper Figure 2 (sampling+minibatching vs GNN layer time)");

    BenchDataset data = makeBenchDataset(
        DatasetId::Products,
        static_cast<unsigned>(options.getInt("extra-shift")));
    const CsrGraph &graph = data.graph();
    const std::size_t fIn = data.dataset.inputFeatures;
    const std::size_t fHidden = data.dataset.hiddenFeatures;

    DenseMatrix features(graph.numVertices(), fIn);
    features.fillUniform(-1.0f, 1.0f, 3);

    const auto fanout =
        static_cast<VertexId>(options.getInt("fanout"));
    const auto layers =
        static_cast<std::size_t>(options.getInt("layers"));
    const std::vector<VertexId> fanouts(layers, fanout);

    std::printf("%-12s %14s %14s %10s   (paper: 88%%/92%%/94%% "
                "sampling share)\n",
                "batch", "sampling(s)", "layers(s)", "share");
    for (std::size_t batchSize : {1024u, 2048u, 4096u}) {
        Rng rng(42);
        Timer hostTimer;
        double deviceSeconds = 0.0;
        double hostSeconds = 0.0;
        auto batches = makeEpochBatches(graph, batchSize, rng);
        for (auto &seeds : batches) {
            Timer t;
            MiniBatch batch =
                sampleMiniBatch(graph, std::move(seeds), fanouts, rng);
            DenseMatrix staged =
                gatherBatchFeatures(features, batch.inputVertices());
            hostSeconds += t.seconds();
            deviceSeconds += modelDeviceSeconds(batch, fIn, fHidden);
        }
        const double share =
            hostSeconds / (hostSeconds + deviceSeconds) * 100.0;
        std::printf("batch-%-6zu %14.3f %14.3f %9.1f%%\n", batchSize,
                    hostSeconds, deviceSeconds, share);
        (void)hostTimer;
    }
    std::printf("\nexpected shape: sampling+minibatching dominates "
                "(>80%%) and worsens as batches shrink\n");
    return 0;
}
