/**
 * @file
 * Table 4 reproduction: memory-performance characterisation of GCN
 * training across implementations — retiring and memory-bound pipeline
 * slots, the stall breakdown over L2/L3/DRAM-bandwidth/DRAM-latency,
 * and the fraction of cycles with every L1 fill buffer occupied.
 */

#include <cstdio>

#include "bench_common.h"
#include "common/options.h"

using namespace graphite;
using namespace graphite::bench;

int
main(int argc, char **argv)
{
    Options options("Table 4: memory characterisation of GCN training");
    options.add("extra-shift", "0", "extra dataset shrink");
    options.parse(argc, argv);

    banner("Table 4: memory characterisation (GCN training)",
           "paper Table 4");

    const SwConfig configs[] = {SwConfig::DistGnn, SwConfig::Mkl,
                                SwConfig::Combined,
                                SwConfig::CombinedLocality};

    std::printf("%-10s %-12s %9s %9s %6s %6s %8s %8s %8s\n", "graph",
                "impl", "retiring", "membound", "L2", "L3", "dram-bw",
                "dram-lat", "fb-full");
    const auto extraShift =
        static_cast<unsigned>(options.getInt("extra-shift"));
    for (DatasetId id : allDatasets()) {
        BenchDataset data = makeBenchDataset(id, extraShift);
        for (SwConfig config : configs) {
            sim::Machine machine(sim::paperMachine(kCacheShrink));
            sim::NetworkWorkload net = makeNetwork(data, config);
            sim::CompositeResult result =
                sim::simulateTraining(machine, net, data.transposed);
            const sim::RunResult &agg = result.aggregate;
            std::printf("%-10s %-12s %8.1f%% %8.1f%% %5.1f%% %5.1f%% "
                        "%7.1f%% %7.1f%% %7.1f%%\n",
                        data.name().c_str(), swConfigName(config),
                        agg.retiringFraction() * 100,
                        agg.memoryBoundFraction() * 100,
                        agg.stallL2Fraction() * 100,
                        agg.stallL3Fraction() * 100,
                        agg.stallDramBandwidthFraction() * 100,
                        agg.stallDramLatencyFraction() * 100,
                        agg.fillBufferFullFraction() * 100);
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    std::printf("paper shape: DistGNN/MKL retiring ~10-23%% and "
                "heavily DRAM-bound; combined raises retiring and "
                "lowers the bandwidth-bound share; c-locality goes "
                "further (paper Table 4)\n");
    return 0;
}
