/**
 * @file
 * Shared plumbing for the figure/table reproduction benches: dataset
 * construction at simulation scale, technique-to-workload mapping, and
 * table printing with the paper's reported numbers alongside.
 *
 * Scale notes (see DESIGN.md): each dataset analogue is generated at
 * 2^13-2^14 vertices and the simulated machine's shared L3 is shrunk by
 * the same class of factor, preserving the footprint-to-LLC ratio that
 * drives every memory-bound conclusion. Absolute cycle counts are not
 * comparable to the paper's wall-clock; speedup *ratios* are.
 */

#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/assert.h"
#include "graph/datasets.h"
#include "graph/reorder.h"
#include "sim/machine.h"
#include "sim/workloads.h"

namespace graphite::bench {

/** Default shrink of the simulated L2/L3 (see DESIGN.md Section 5). */
inline constexpr unsigned kCacheShrink = 8;

/** Hidden width at bench scale: keeps weights:L2 at the paper's ratio. */
inline constexpr std::size_t kBenchHiddenFeatures = 128;

/** A dataset analogue prepared for simulation. */
struct BenchDataset
{
    Dataset dataset;
    CsrGraph transposed;
    ProcessingOrder locality;
    /** Locality order of the transposed graph (backward pass). */
    ProcessingOrder localityTransposed;

    const CsrGraph &graph() const { return dataset.graph; }
    const std::string &name() const { return dataset.name; }
};

/** Build @p id at simulation scale (|V| ~ 2^(15 - extraShift)). */
inline BenchDataset
makeBenchDataset(DatasetId id, unsigned extraShift = 0,
                 std::uint64_t seed = 1)
{
    const DatasetSpec spec = datasetSpec(id);
    // Signed intermediate: a blueprint smaller than 2^15 must clamp to
    // "no shrink", not wrap to a huge unsigned shift.
    const int signedShift = static_cast<int>(spec.scaleLog2) - 15 +
                            static_cast<int>(extraShift);
    const unsigned shift =
        signedShift > 0 ? static_cast<unsigned>(signedShift) : 0;
    GRAPHITE_ASSERT(shift < spec.scaleLog2,
                    "extra shift would shrink the dataset to nothing");
    BenchDataset out;
    out.dataset = makeDataset(id, shift, seed);
    out.dataset.hiddenFeatures = kBenchHiddenFeatures;
    // Input widths shrink with the hidden width so layer-1's
    // footprint class scales consistently (products keeps its
    // narrower-than-hidden input, papers/twitter their wider one).
    out.dataset.inputFeatures =
        std::max<std::size_t>(16, out.dataset.inputFeatures / 2);
    out.transposed = out.dataset.graph.transposed();
    out.locality = localityOrder(out.dataset.graph);
    out.localityTransposed = localityOrder(out.transposed);
    return out;
}

/** The named software configurations of Figure 11. */
enum class SwConfig
{
    DistGnn,
    Mkl,
    Basic,
    Fusion,
    Compression,
    Combined,
    CombinedLocality,
};

inline const char *
swConfigName(SwConfig config)
{
    switch (config) {
      case SwConfig::DistGnn:          return "DistGNN";
      case SwConfig::Mkl:              return "MKL";
      case SwConfig::Basic:            return "basic";
      case SwConfig::Fusion:           return "fusion";
      case SwConfig::Compression:      return "compression";
      case SwConfig::Combined:         return "combined";
      case SwConfig::CombinedLocality: return "c-locality";
    }
    return "?";
}

/** Map a named configuration onto a simulator network workload. */
inline sim::NetworkWorkload
makeNetwork(const BenchDataset &data, SwConfig config,
            double sparsity = 0.5)
{
    sim::NetworkWorkload net;
    net.graph = &data.graph();
    net.order = &data.locality;
    net.transposedOrder = &data.localityTransposed;
    net.fInput = data.dataset.inputFeatures;
    net.fHidden = data.dataset.hiddenFeatures;
    net.numLayers = 2;
    net.sparsity = sparsity;
    switch (config) {
      case SwConfig::DistGnn:
        net.impl = sim::LayerImpl::DistGnn;
        break;
      case SwConfig::Mkl:
        net.impl = sim::LayerImpl::Mkl;
        break;
      case SwConfig::Basic:
        net.impl = sim::LayerImpl::Basic;
        break;
      case SwConfig::Fusion:
        net.impl = sim::LayerImpl::Fused;
        break;
      case SwConfig::Compression:
        net.impl = sim::LayerImpl::Basic;
        net.compression = true;
        break;
      case SwConfig::Combined:
        net.impl = sim::LayerImpl::Fused;
        net.compression = true;
        break;
      case SwConfig::CombinedLocality:
        net.impl = sim::LayerImpl::Fused;
        net.compression = true;
        net.locality = true;
        break;
    }
    return net;
}

/** Simulated cycles of one full-network inference under @p config. */
inline Cycles
inferenceCycles(const BenchDataset &data, SwConfig config,
                double sparsity = 0.5,
                unsigned cacheShrink = kCacheShrink)
{
    sim::Machine machine(sim::paperMachine(cacheShrink));
    return sim::simulateInference(machine, makeNetwork(data, config,
                                                       sparsity))
        .totalCycles;
}

/** Simulated cycles of one training iteration under @p config. */
inline Cycles
trainingCycles(const BenchDataset &data, SwConfig config,
               double sparsity = 0.5,
               unsigned cacheShrink = kCacheShrink)
{
    sim::Machine machine(sim::paperMachine(cacheShrink));
    return sim::simulateTraining(machine, makeNetwork(data, config,
                                                      sparsity),
                                 data.transposed)
        .totalCycles;
}

/** Print a bench header banner. */
inline void
banner(const char *title, const char *paperRef)
{
    std::printf("\n=== %s ===\n", title);
    std::printf("reproduces: %s\n", paperRef);
    std::printf("substrate : %u-core simulated machine (DESIGN.md §5); "
                "shapes comparable, absolute time is not\n\n",
                sim::MachineParams{}.numCores);
}

/** Print one speedup cell with the paper's value for comparison. */
inline void
speedupCell(double measured, double paper)
{
    std::printf("  %5.2fx (paper %4.2fx)", measured, paper);
}

} // namespace graphite::bench
