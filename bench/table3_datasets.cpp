/**
 * @file
 * Table 3 reproduction: the dataset analogues' structural statistics,
 * side by side with the paper's real-dataset values. The analogues are
 * generated at reduced scale (DESIGN.md §2) while preserving average
 * degree class, skew class and feature width.
 */

#include <cstdio>

#include "bench_common.h"
#include "common/options.h"
#include "graph/graph_stats.h"

using namespace graphite;
using namespace graphite::bench;

namespace {

struct PaperRow
{
    const char *name;
    double vertices;
    double edges;
    double avgDeg;
    double maxDeg;
    double varDeg;
    unsigned fInput;
};

constexpr PaperRow kPaper[] = {
    {"products", 2.45e6, 124e6, 50.5, 17.5e3, 9.20e3, 100},
    {"wikipedia", 3.57e6, 45.0e6, 12.6, 7.06e3, 1.09e3, 128},
    {"papers", 111e6, 1.62e9, 14.5, 26.7e3, 927, 256},
    {"twitter", 61.6e6, 1.47e9, 23.8, 3.00e6, 3.96e6, 256},
};

} // namespace

int
main(int argc, char **argv)
{
    Options options("Table 3: dataset analogue statistics");
    options.add("extra-shift", "0",
                "extra halvings of every analogue's vertex count");
    options.add("seed", "1", "generator seed");
    options.parse(argc, argv);

    banner("Table 3: datasets",
           "paper Table 3 (dataset configurations)");
    std::printf("%-10s %10s %12s %8s %9s %12s %6s\n", "graph", "|V|",
                "|E|", "avgDeg", "maxDeg", "varDeg", "F_in");

    const auto extraShift =
        static_cast<unsigned>(options.getInt("extra-shift"));
    const auto seed =
        static_cast<std::uint64_t>(options.getInt("seed"));

    int row = 0;
    for (DatasetId id : allDatasets()) {
        BenchDataset data = makeBenchDataset(id, extraShift, seed);
        GraphStats stats = computeGraphStats(data.graph());
        std::printf("%-10s %10u %12llu %8.1f %9llu %12.1f %6zu\n",
                    data.name().c_str(), stats.numVertices,
                    static_cast<unsigned long long>(stats.numEdges),
                    stats.avgDegree,
                    static_cast<unsigned long long>(stats.maxDegree),
                    stats.degreeVariance, data.dataset.inputFeatures);
        const PaperRow &paper = kPaper[row++];
        std::printf("%-10s %10.3g %12.3g %8.1f %9.3g %12.3g %6u"
                    "  <- paper (full scale)\n",
                    "", paper.vertices, paper.edges, paper.avgDeg,
                    paper.maxDeg, paper.varDeg, paper.fInput);
    }
    std::printf("\nanalogue scale: |V| reduced ~%ux; degree class and "
                "skew class preserved (DESIGN.md §2)\n",
                1u << (datasetSpec(DatasetId::Products).scaleLog2 - 14 +
                       extraShift + 7));
    return 0;
}
