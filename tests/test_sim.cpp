/**
 * @file
 * Tests of the timing simulator: cache model semantics, memory system
 * level classification, DRAM bandwidth queueing, core fill-buffer
 * behavior, machine interleaving, DMA tracking-table scaling, and
 * directional sanity of the workload models (fusion helps, compression
 * helps, DMA helps).
 */

#include <gtest/gtest.h>

#include "graph/datasets.h"
#include "graph/generators.h"
#include "sim/cache_model.h"
#include "sim/machine.h"
#include "sim/workloads.h"

namespace graphite::sim {
namespace {

TEST(CacheModel, HitsAfterInsert)
{
    CacheModel cache({1024, 4, 4}); // 16 lines, 4 ways, 4 sets
    EXPECT_FALSE(cache.access(5, false));
    cache.insert(5, false);
    EXPECT_TRUE(cache.access(5, false));
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(CacheModel, LruEvictsOldest)
{
    CacheModel cache({4 * 64, 4, 4}); // one set, 4 ways
    for (LineAddr line = 0; line < 4; ++line)
        cache.insert(line * cache.numSets(), false);
    // Touch lines 1-3 so line 0 becomes LRU, then insert a 5th.
    for (LineAddr line = 1; line < 4; ++line)
        cache.access(line * cache.numSets(), false);
    cache.insert(4 * cache.numSets(), false);
    EXPECT_FALSE(cache.contains(0));
    EXPECT_TRUE(cache.contains(4 * cache.numSets()));
}

TEST(CacheModel, DirtyEvictionReportsWriteback)
{
    CacheModel cache({4 * 64, 4, 4});
    cache.insert(0, true); // dirty
    for (LineAddr line = 1; line < 4; ++line)
        cache.insert(line * cache.numSets(), false);
    EXPECT_TRUE(cache.insert(4 * cache.numSets(), false));
    EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(MemorySystem, ClassifiesServiceLevels)
{
    MachineParams params;
    params.numCores = 1;
    MemorySystem mem(params);
    // Cold: DRAM.
    AccessOutcome first = mem.access(0, 100, false, 0);
    EXPECT_TRUE(first.level == ServiceLevel::DramLatency ||
                first.level == ServiceLevel::DramBandwidth);
    // Warm: L1.
    AccessOutcome second = mem.access(0, 100, false, 1000);
    EXPECT_EQ(second.level, ServiceLevel::L1);
}

TEST(MemorySystem, BandwidthQueueingGrowsUnderBurst)
{
    MachineParams params;
    params.numCores = 1;
    params.l2StreamPrefetch = 0; // isolate demand traffic
    MemorySystem mem(params);
    // Fire many DRAM accesses at the same instant: once the epoch's
    // line capacity is exhausted, later ones spill into future epochs.
    Cycles maxQueue = 0;
    for (int i = 0; i < 2000; ++i) {
        AccessOutcome out = mem.access(0, 100000 + i * 1000, false, 0);
        maxQueue = std::max(maxQueue, out.dramQueueing);
    }
    EXPECT_GT(maxQueue, 100u);
    EXPECT_EQ(mem.dramStats().lineTransfers, 2000u);
}

TEST(MemorySystem, StreamPrefetcherFillsFollowingLines)
{
    MachineParams params;
    params.numCores = 1;
    params.l2StreamPrefetch = 2;
    MemorySystem mem(params);
    mem.access(0, 500, false, 0);
    EXPECT_TRUE(mem.l2(0).contains(501));
    EXPECT_TRUE(mem.l2(0).contains(502));
    EXPECT_EQ(mem.dramStats().prefetchTransfers, 2u);
}

TEST(MemorySystem, BypassSkipsPrivateCaches)
{
    MachineParams params;
    params.numCores = 1;
    MemorySystem mem(params);
    mem.access(0, 777, false, 0, /*bypassPrivate=*/true);
    EXPECT_FALSE(mem.l1(0).contains(777));
    EXPECT_FALSE(mem.l2(0).contains(777));
    EXPECT_TRUE(mem.l3().contains(777));
}

TEST(MemorySystem, InstallIntoL2MakesUpdateHit)
{
    MachineParams params;
    params.numCores = 1;
    MemorySystem mem(params);
    mem.installIntoL2(0, 123);
    AccessOutcome out = mem.access(0, 123, false, 0);
    EXPECT_EQ(out.level, ServiceLevel::L2);
}

namespace {

/** Fixed list of ops for driving a single core. */
class ListSource : public WorkloadSource
{
  public:
    explicit ListSource(std::vector<TraceOp> ops) : ops_(std::move(ops)) {}

    bool
    next(TraceOp &op) override
    {
        if (index_ >= ops_.size())
            return false;
        op = ops_[index_++];
        return true;
    }

  private:
    std::vector<TraceOp> ops_;
    std::size_t index_ = 0;
};

} // namespace

TEST(CoreModel, ComputeAdvancesClock)
{
    MachineParams params;
    params.numCores = 1;
    Machine machine(params);
    RunResult result = machine.run([&](unsigned) {
        return std::make_unique<ListSource>(std::vector<TraceOp>{
            TraceOp::compute(100), TraceOp::compute(50)});
    });
    EXPECT_EQ(result.makespan, 150u);
    EXPECT_EQ(result.coreStats[0].computeCycles, 150u);
    EXPECT_EQ(result.coreStats[0].stallCycles, 0u);
}

TEST(CoreModel, FillBufferExhaustionStalls)
{
    MachineParams params;
    params.numCores = 1;
    params.fillBuffers = 2;
    Machine machine(params);
    // 20 distinct-line loads back to back: with only 2 MSHRs the core
    // must stall repeatedly.
    std::vector<TraceOp> ops;
    for (int i = 0; i < 20; ++i)
        ops.push_back(TraceOp::load(0x100000ull + i * 4096));
    RunResult result = machine.run([&](unsigned) {
        return std::make_unique<ListSource>(ops);
    });
    EXPECT_GT(result.coreStats[0].stallCycles, 0u);
    EXPECT_GT(result.coreStats[0].fillBufferFullCycles, 0u);
    EXPECT_GT(result.makespan, params.dramLatency * 5);
}

TEST(CoreModel, MlpOverlapsMisses)
{
    // Same 8 misses: 8 fill buffers should finish far faster than 1.
    auto timeWith = [](unsigned buffers) {
        MachineParams params;
        params.numCores = 1;
        params.fillBuffers = buffers;
        Machine machine(params);
        std::vector<TraceOp> ops;
        for (int i = 0; i < 8; ++i)
            ops.push_back(TraceOp::load(0x200000ull + i * 4096));
        return machine
            .run([&](unsigned) { return std::make_unique<ListSource>(ops); })
            .makespan;
    };
    EXPECT_LT(timeWith(8) * 3, timeWith(1));
}

TEST(CoreModel, PrefetchHidesLatency)
{
    MachineParams params;
    params.numCores = 1;
    Machine machine(params);
    // Prefetch then compute longer than the DRAM latency, then load:
    // the load should hit L1 and add no stall.
    std::vector<TraceOp> ops = {
        TraceOp::prefetch(0x300000),
        TraceOp::compute(2000),
        TraceOp::load(0x300000),
    };
    RunResult result = machine.run([&](unsigned) {
        return std::make_unique<ListSource>(ops);
    });
    EXPECT_EQ(result.coreStats[0].stallCycles, 0u);
    EXPECT_EQ(result.makespan, 2000u);
}

TEST(Machine, CoresShareDramBandwidth)
{
    // The same per-core workload suffers queueing delay with 28 cores
    // that a single core never sees: DRAM is a shared resource.
    auto queueingWith = [](unsigned cores) {
        MachineParams params;
        params.numCores = cores;
        Machine machine(params);
        RunResult result = machine.run([&](unsigned core) {
            std::vector<TraceOp> ops;
            for (int i = 0; i < 3000; ++i) {
                ops.push_back(TraceOp::load(
                    0x10000000ull * (core + 1) + i * 4096));
            }
            return std::make_unique<ListSource>(ops);
        });
        return static_cast<double>(result.dram.totalQueueing) /
               static_cast<double>(result.dram.lineTransfers);
    };
    EXPECT_GT(queueingWith(28), 10.0 * (queueingWith(1) + 1.0));
}

TEST(DmaRunner, TrackingTableBoundsParallelism)
{
    // A single engine aggregating a fixed workload: more tracking
    // entries -> more overlapped fetches -> shorter engine time, with
    // diminishing returns (the Figure 16 shape).
    CsrGraph graph = generateErdosRenyi(512, 8192, false, 91);
    auto engineTime = [&](unsigned entries) {
        MachineParams params;
        params.numCores = 1;
        MemorySystem mem(params);
        DmaParams dparams;
        dparams.trackingEntries = entries;
        DmaWorkloadInfo info;
        info.graph = &graph;
        info.addresses.featureBase = 0x40'0000'0000ull;
        info.addresses.featureStrideBytes = 512;
        info.addresses.aggBase = 0x50'0000'0000ull;
        info.addresses.aggStrideBytes = 512;
        info.featureLines = 8;
        info.aggLines = 8;
        DmaRunner runner(0, mem, dparams, info);
        std::vector<VertexId> all(graph.numVertices());
        for (VertexId v = 0; v < graph.numVertices(); ++v)
            all[v] = v;
        runner.enqueueBatch(0, all, 0);
        return runner.runBatchToCompletion(0);
    };
    const Cycles t8 = engineTime(8);
    const Cycles t16 = engineTime(16);
    const Cycles t32 = engineTime(32);
    EXPECT_LT(t16, t8);
    EXPECT_LT(t32, t16);
    EXPECT_GT(t16 * 2, t8); // sub-linear: diminishing returns
}

class DatasetSim : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Large enough that the feature matrices dwarf the (shrunken)
        // simulated LLC — the memory-bound regime the paper targets.
        RmatParams params;
        params.scale = 15;
        params.avgDegree = 16.0;
        graph_ = generateRmat(params);
    }

    CompositeResult
    runInference(LayerImpl impl, bool compression = false)
    {
        // Bench-scale conventions: L2/L3 shrunk together, hidden width
        // scaled so the weight panel keeps the paper's weights:L2
        // ratio (see bench/bench_common.h).
        Machine machine(paperMachine(8));
        NetworkWorkload net;
        net.graph = &graph_;
        net.fInput = 128;
        net.fHidden = 128;
        net.numLayers = 2;
        net.impl = impl;
        net.compression = compression;
        return simulateInference(machine, net);
    }

    CsrGraph graph_;
};

TEST_F(DatasetSim, WorkloadsAreMemoryBound)
{
    CompositeResult result = runInference(LayerImpl::DistGnn);
    EXPECT_GT(result.aggregate.memoryBoundFraction(), 0.3);
    EXPECT_LT(result.aggregate.retiringFraction(), 0.5);
}

TEST_F(DatasetSim, FusionBeatsBasic)
{
    const Cycles basic = runInference(LayerImpl::Basic).totalCycles;
    const Cycles fused = runInference(LayerImpl::Fused).totalCycles;
    EXPECT_LT(fused, basic);
}

TEST_F(DatasetSim, CompressionReducesDramTraffic)
{
    CompositeResult dense = runInference(LayerImpl::Basic, false);
    CompositeResult packed = runInference(LayerImpl::Basic, true);
    EXPECT_LT(packed.aggregate.dram.bytes(),
              dense.aggregate.dram.bytes());
    EXPECT_LT(packed.totalCycles, dense.totalCycles);
}

TEST_F(DatasetSim, DmaBeatsSoftwareFusion)
{
    const Cycles fused = runInference(LayerImpl::Fused).totalCycles;
    const Cycles dmaTime = runInference(LayerImpl::DmaFused).totalCycles;
    EXPECT_LT(dmaTime, fused);
}

TEST_F(DatasetSim, DmaReducesPrivateCacheAccesses)
{
    CompositeResult fused = runInference(LayerImpl::Fused);
    CompositeResult dmaRun = runInference(LayerImpl::DmaFused);
    EXPECT_LT(dmaRun.aggregate.l1Total.accesses,
              fused.aggregate.l1Total.accesses);
}

TEST(Workloads, FeatureRowLineMath)
{
    EXPECT_EQ(featureRowLines(256), 16u);
    EXPECT_EQ(featureRowLines(100), 7u);
    EXPECT_EQ(compressedRowLines(256, 0.5), 8u);
    EXPECT_EQ(compressedRowLines(256, 0.0), 16u);
    EXPECT_EQ(compressedRowLines(256, 1.0), 1u);
}

} // namespace
} // namespace graphite::sim
