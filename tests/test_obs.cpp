/**
 * @file
 * Unit tests for the observability layer: metrics registry merging,
 * disabled-path no-ops, trace span nesting, ring overflow, and the JSON
 * emitters' well-formedness (checked with a tiny JSON parser below).
 *
 * The tests exercise the process-global registry/recorder the real
 * instrumentation writes to, so every test starts by resetting both and
 * restores the disabled state on exit.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"

namespace graphite {
namespace {

using obs::MetricsRegistry;
using obs::TraceRecorder;

/** Enable both global sinks for one test; reset + disable on exit. */
class ObsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        MetricsRegistry::global().reset();
        TraceRecorder::global().reset();
        MetricsRegistry::global().setEnabled(true);
        TraceRecorder::global().setEnabled(true);
    }

    void
    TearDown() override
    {
        MetricsRegistry::global().setEnabled(false);
        TraceRecorder::global().setEnabled(false);
        MetricsRegistry::global().reset();
        TraceRecorder::global().reset();
    }
};

/**
 * Minimal recursive-descent JSON validator: structure only, no value
 * extraction. Good enough to catch trailing commas, unbalanced braces
 * and unescaped strings in the emitters.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : text_(text) {}

    bool
    valid()
    {
        pos_ = 0;
        if (!value())
            return false;
        skipSpace();
        return pos_ == text_.size();
    }

  private:
    bool
    value()
    {
        skipSpace();
        if (pos_ >= text_.size())
            return false;
        const char c = text_[pos_];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return string();
        if (c == '-' || (c >= '0' && c <= '9'))
            return number();
        return literal("true") || literal("false") || literal("null");
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipSpace();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipSpace();
            if (!string())
                return false;
            skipSpace();
            if (peek() != ':')
                return false;
            ++pos_;
            if (!value())
                return false;
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipSpace();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            if (!value())
                return false;
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\')
                ++pos_;
            ++pos_;
        }
        if (pos_ >= text_.size())
            return false;
        ++pos_; // closing '"'
        return true;
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        return pos_ > start;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

std::string
slurp(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return {};
    std::string out;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

TEST_F(ObsTest, CounterMergesAcrossPoolWorkers)
{
    obs::Counter &c = MetricsRegistry::global().counter("test.pool_adds");
    constexpr std::size_t kItems = 10000;
    parallelFor(0, kItems, 64,
                [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t i = begin; i < end; ++i)
            c.add(1);
    });
    EXPECT_EQ(c.value(), kItems);
}

TEST_F(ObsTest, DisabledRegistryDropsWrites)
{
    obs::Counter &c = MetricsRegistry::global().counter("test.disabled");
    obs::Gauge &g = MetricsRegistry::global().gauge("test.disabled_g");
    obs::Histogram &h =
        MetricsRegistry::global().histogram("test.disabled_h");
    MetricsRegistry::global().setEnabled(false);
    c.add(42);
    g.set(3.5);
    h.observe(7);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0.0);
    EXPECT_EQ(h.count(), 0u);

    MetricsRegistry::global().setEnabled(true);
    c.add(1);
    EXPECT_EQ(c.value(), 1u); // same handle works once re-enabled
}

TEST_F(ObsTest, GaugeLastWriterWins)
{
    obs::Gauge &g = MetricsRegistry::global().gauge("test.gauge");
    g.set(1.25);
    g.set(-7.5);
    EXPECT_DOUBLE_EQ(g.value(), -7.5);
}

TEST_F(ObsTest, HistogramAccounting)
{
    obs::Histogram &h = MetricsRegistry::global().histogram("test.hist");
    h.observe(0);
    h.observe(1);
    h.observe(5);
    h.observe(1024);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 1030u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 1024u);
    const std::vector<std::uint64_t> buckets = h.buckets();
    ASSERT_EQ(buckets.size(), obs::Histogram::kBuckets);
    EXPECT_EQ(buckets[0], 1u);  // value 0
    EXPECT_EQ(buckets[1], 1u);  // value 1 (bit width 1)
    EXPECT_EQ(buckets[3], 1u);  // value 5 (bit width 3)
    EXPECT_EQ(buckets[11], 1u); // value 1024 (bit width 11)
}

TEST_F(ObsTest, EstimateQuantileHandlesEmptyAndSingleValue)
{
    std::vector<std::uint64_t> buckets(obs::Histogram::kBuckets, 0);
    EXPECT_DOUBLE_EQ(obs::estimateQuantile(buckets, 0, 0, 0, 0.99), 0.0);
    // 100 identical samples of 7 (bit width 3): every quantile clamps
    // to the observed min == max == 7, exactly.
    buckets[3] = 100;
    for (const double q : {0.0, 0.5, 0.9, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(obs::estimateQuantile(buckets, 100, 7, 7, q),
                         7.0);
}

TEST_F(ObsTest, EstimateQuantileInterpolatesWithinBucketRanges)
{
    // 50 samples of 1, 40 samples in [4, 8), 10 samples of ~1000: p50
    // must land in bucket 1's range [1, 2), p90 in [4, 8), p99 in
    // [512, 1000] (upper end clamped to the observed max).
    std::vector<std::uint64_t> buckets(obs::Histogram::kBuckets, 0);
    buckets[1] = 50;
    buckets[3] = 40;
    buckets[10] = 10;
    const double p50 =
        obs::estimateQuantile(buckets, 100, 1, 1000, 0.50);
    const double p90 =
        obs::estimateQuantile(buckets, 100, 1, 1000, 0.90);
    const double p99 =
        obs::estimateQuantile(buckets, 100, 1, 1000, 0.99);
    EXPECT_GE(p50, 1.0);
    EXPECT_LT(p50, 2.0);
    EXPECT_GE(p90, 4.0);
    EXPECT_LT(p90, 8.0);
    EXPECT_GE(p99, 512.0);
    EXPECT_LE(p99, 1000.0);
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);
}

TEST_F(ObsTest, SnapshotReportsHistogramQuantiles)
{
    obs::Histogram &h =
        MetricsRegistry::global().histogram("test.quantiles");
    // Latency-like distribution: a tight body and a 100x tail.
    for (int i = 0; i < 98; ++i)
        h.observe(10);
    h.observe(1000);
    h.observe(1500);
    const obs::MetricsSnapshot snap =
        MetricsRegistry::global().snapshot();
    const auto it = std::find_if(
        snap.histograms.begin(), snap.histograms.end(),
        [](const auto &e) { return e.name == "test.quantiles"; });
    ASSERT_NE(it, snap.histograms.end());
    EXPECT_GE(it->p50, 8.0);
    EXPECT_LT(it->p50, 16.0); // the body's bucket
    EXPECT_GE(it->p99, 512.0);
    EXPECT_LE(it->p99, 1500.0); // the tail, clamped to max
    EXPECT_LE(it->p50, it->p90);
    EXPECT_LE(it->p90, it->p99);
    // The JSON emitter must surface the same fields.
    const std::string json = MetricsRegistry::global().toJson();
    EXPECT_NE(json.find("\"p50\""), std::string::npos);
    EXPECT_NE(json.find("\"p90\""), std::string::npos);
    EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST_F(ObsTest, ResetZeroesButKeepsHandles)
{
    obs::Counter &c = MetricsRegistry::global().counter("test.reset");
    c.add(9);
    MetricsRegistry::global().reset();
    EXPECT_EQ(c.value(), 0u);
    c.add(2);
    EXPECT_EQ(c.value(), 2u);
}

TEST_F(ObsTest, SpanNestingDepthAndContainment)
{
    {
        GRAPHITE_TRACE_SPAN("outer");
        {
            GRAPHITE_TRACE_SPAN("inner");
        }
    }
    const std::vector<obs::TraceEvent> events =
        TraceRecorder::global().collect();
    ASSERT_EQ(events.size(), 2u);
    // collect() sorts by start: outer opened first.
    EXPECT_STREQ(events[0].name, "outer");
    EXPECT_STREQ(events[1].name, "inner");
    EXPECT_EQ(events[0].depth, 0u);
    EXPECT_EQ(events[1].depth, 1u);
    // The child interval nests inside the parent's.
    EXPECT_GE(events[1].start, events[0].start);
    EXPECT_LE(events[1].start + events[1].duration,
              events[0].start + events[0].duration);
}

TEST_F(ObsTest, SpansFromPoolWorkersAllCollected)
{
    constexpr std::size_t kItems = 256;
    parallelFor(0, kItems, 16,
                [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t i = begin; i < end; ++i) {
            GRAPHITE_TRACE_SPAN("worker.unit");
        }
    });
    const std::vector<obs::PhaseSummary> phases =
        TraceRecorder::global().summarize();
    ASSERT_EQ(phases.size(), 1u);
    EXPECT_EQ(phases[0].name, "worker.unit");
    EXPECT_EQ(phases[0].count, kItems);
    EXPECT_GE(phases[0].seconds, 0.0);
}

TEST_F(ObsTest, RingOverflowDropsOldestAndCounts)
{
    // Default per-thread capacity is 1 << 15; overflow it from this
    // thread only.
    constexpr std::size_t kSpans = (std::size_t{1} << 15) + 100;
    for (std::size_t i = 0; i < kSpans; ++i) {
        GRAPHITE_TRACE_SPAN("spin");
    }
    EXPECT_EQ(TraceRecorder::global().droppedEvents(), 100u);
    const std::vector<obs::TraceEvent> events =
        TraceRecorder::global().collect();
    EXPECT_EQ(events.size(), std::size_t{1} << 15);
}

TEST_F(ObsTest, DisabledTracingRecordsNothing)
{
    TraceRecorder::global().setEnabled(false);
    {
        GRAPHITE_TRACE_SPAN("ghost");
    }
    EXPECT_TRUE(TraceRecorder::global().collect().empty());
}

TEST_F(ObsTest, MetricsJsonIsWellFormed)
{
    MetricsRegistry::global().counter("test.counter\"quoted").add(3);
    MetricsRegistry::global().gauge("test.gauge").set(0.5);
    MetricsRegistry::global().histogram("test.hist").observe(17);
    const std::string json = MetricsRegistry::global().toJson();
    JsonChecker checker(json);
    EXPECT_TRUE(checker.valid()) << json;
    EXPECT_NE(json.find("counters"), std::string::npos);
    EXPECT_NE(json.find("gauges"), std::string::npos);
    EXPECT_NE(json.find("histograms"), std::string::npos);
}

TEST_F(ObsTest, ChromeTraceJsonIsWellFormed)
{
    {
        GRAPHITE_TRACE_SPAN("phase.a");
        GRAPHITE_TRACE_SPAN("phase.b");
    }
    const std::string path = "test_obs_trace.json";
    ASSERT_TRUE(TraceRecorder::global().writeChromeJson(path));
    const std::string json = slurp(path);
    std::remove(path.c_str());
    ASSERT_FALSE(json.empty());
    JsonChecker checker(json);
    EXPECT_TRUE(checker.valid()) << json;
    EXPECT_NE(json.find("traceEvents"), std::string::npos);
    EXPECT_NE(json.find("phase.a"), std::string::npos);
    EXPECT_NE(json.find("phase.b"), std::string::npos);
}

TEST_F(ObsTest, CrossKindNameCollisionDies)
{
    MetricsRegistry::global().counter("test.kind_clash");
    EXPECT_DEATH(MetricsRegistry::global().gauge("test.kind_clash"),
                 "kind");
}

} // namespace
} // namespace graphite
