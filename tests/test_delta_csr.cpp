/**
 * @file
 * Delta-CSR overlay tests (DESIGN.md §14): addEdge outcomes and the
 * simple-graph invariant, the lock-free read protocol (RowView,
 * forEachDeltaNeighbor) against concurrent writers, compact()'s
 * bitwise equivalence with a from-scratch GraphBuilder build of the
 * same edge set, pool-budget exhaustion and recovery, incremental
 * graph-stats maintenance, the staleness-bounded locality-order cache,
 * sampler parity over a zero-delta overlay, and allocation-free
 * steady-state inserts.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "common/alloc_guard.h"
#include "common/rng.h"
#include "graph/delta_csr.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "graph/graph_stats.h"
#include "graph/reorder.h"
#include "sampling/neighbor_sampler.h"

namespace graphite {
namespace {

CsrGraph
smallGraph()
{
    // 0 -> {1, 2}; 1 -> {2}; 2 -> {}; 3 -> {0}.
    GraphBuilder builder(4);
    builder.addEdge(0, 1);
    builder.addEdge(0, 2);
    builder.addEdge(1, 2);
    builder.addEdge(3, 0);
    return builder.build();
}

/** All (src, dst) pairs of @p graph. */
std::vector<std::pair<VertexId, VertexId>>
edgeList(const CsrGraph &graph)
{
    std::vector<std::pair<VertexId, VertexId>> edges;
    for (VertexId v = 0; v < graph.numVertices(); ++v)
        for (const VertexId u : graph.neighbors(v))
            edges.emplace_back(v, u);
    return edges;
}

TEST(DeltaCsr, AddEdgeOutcomes)
{
    DeltaCsr overlay(smallGraph(), 16);
    EXPECT_EQ(overlay.addEdge(2, 2), DeltaCsr::AddEdge::SelfLoop);
    EXPECT_EQ(overlay.addEdge(0, 1), DeltaCsr::AddEdge::Duplicate)
        << "base edge must be rejected";
    EXPECT_EQ(overlay.addEdge(2, 0), DeltaCsr::AddEdge::Added);
    EXPECT_EQ(overlay.addEdge(2, 0), DeltaCsr::AddEdge::Duplicate)
        << "delta edge must be rejected";
    EXPECT_EQ(overlay.deltaEdges(), 1u);
    EXPECT_EQ(overlay.numEdges(), smallGraph().numEdges() + 1);
    EXPECT_EQ(overlay.degree(2), 1u);
    EXPECT_EQ(overlay.baseDegree(2), 0u);
    EXPECT_EQ(overlay.deltaDegree(2), 1u);
    EXPECT_EQ(overlay.validate(), nullptr);
}

TEST(DeltaCsr, RowViewUnionsBaseAndDeltaInOrder)
{
    DeltaCsr overlay(smallGraph(), 64);
    // Push vertex 0 across multiple segments (kSegmentEdges = 8).
    std::vector<VertexId> inserted;
    DeltaCsr big(generateErdosRenyi(64, 0, false, 1), 64);
    for (VertexId u = 1; u <= 20; ++u) {
        ASSERT_EQ(big.addEdge(0, u), DeltaCsr::AddEdge::Added);
        inserted.push_back(u);
    }
    const DeltaCsr::RowView view = big.neighborsView(0);
    ASSERT_EQ(view.size(), inserted.size());
    // Sequential walk (cursor fast path), then random access.
    for (std::size_t i = 0; i < view.size(); ++i)
        EXPECT_EQ(view[i], inserted[i]);
    EXPECT_EQ(view[19], inserted[19]);
    EXPECT_EQ(view[3], inserted[3]);
    EXPECT_EQ(view[12], inserted[12]);

    // A view with base edges prefixes the base row.
    ASSERT_EQ(overlay.addEdge(0, 3), DeltaCsr::AddEdge::Added);
    const DeltaCsr::RowView mixed = overlay.neighborsView(0);
    ASSERT_EQ(mixed.size(), 3u);
    EXPECT_EQ(mixed[0], 1u);
    EXPECT_EQ(mixed[1], 2u);
    EXPECT_EQ(mixed[2], 3u);
}

TEST(DeltaCsr, ViewSnapshotsPublishedCount)
{
    DeltaCsr overlay(smallGraph(), 16);
    ASSERT_EQ(overlay.addEdge(2, 0), DeltaCsr::AddEdge::Added);
    const DeltaCsr::RowView before = overlay.neighborsView(2);
    ASSERT_EQ(overlay.addEdge(2, 1), DeltaCsr::AddEdge::Added);
    EXPECT_EQ(before.size(), 1u)
        << "a snapshot view must not see later inserts";
    EXPECT_EQ(overlay.neighborsView(2).size(), 2u);
}

TEST(DeltaCsr, PoolFullThenCompactMakesRoom)
{
    DeltaCsr overlay(smallGraph(), 2);
    ASSERT_EQ(overlay.addEdge(2, 0), DeltaCsr::AddEdge::Added);
    ASSERT_EQ(overlay.addEdge(2, 1), DeltaCsr::AddEdge::Added);
    EXPECT_EQ(overlay.addEdge(2, 3), DeltaCsr::AddEdge::PoolFull);
    overlay.compact();
    EXPECT_EQ(overlay.deltaEdges(), 0u);
    EXPECT_EQ(overlay.baseDegree(2), 2u) << "compact absorbed the deltas";
    EXPECT_EQ(overlay.addEdge(2, 3), DeltaCsr::AddEdge::Added);
    EXPECT_EQ(overlay.validate(), nullptr);
}

TEST(DeltaCsr, CompactedMatchesFromScratchBuild)
{
    const CsrGraph base = generateBarabasiAlbert(300, 4, 5);
    DeltaCsr overlay(generateBarabasiAlbert(300, 4, 5), 2000);
    GraphBuilder builder(300);
    for (const auto &[src, dst] : edgeList(base))
        builder.addEdge(src, dst);

    Rng rng(99);
    EdgeId added = 0;
    while (added < 1000) {
        const auto src = static_cast<VertexId>(rng.next() % 300);
        const auto dst = static_cast<VertexId>(rng.next() % 300);
        if (overlay.addEdge(src, dst) == DeltaCsr::AddEdge::Added) {
            builder.addEdge(src, dst);
            ++added;
        }
    }
    ASSERT_EQ(overlay.validate(), nullptr);

    const CsrGraph compacted = overlay.compacted();
    const CsrGraph fresh = builder.build();
    ASSERT_EQ(compacted.numVertices(), fresh.numVertices());
    ASSERT_EQ(compacted.numEdges(), fresh.numEdges());
    EXPECT_EQ(0, std::memcmp(compacted.rowPtr().data(),
                             fresh.rowPtr().data(),
                             fresh.rowPtr().size() * sizeof(EdgeId)));
    EXPECT_EQ(0, std::memcmp(compacted.colIdx().data(),
                             fresh.colIdx().data(),
                             fresh.colIdx().size() * sizeof(VertexId)));

    // In-place compact agrees with the pure form and resets the delta.
    overlay.compact();
    EXPECT_EQ(overlay.deltaEdges(), 0u);
    EXPECT_EQ(0, std::memcmp(overlay.base().colIdx().data(),
                             fresh.colIdx().data(),
                             fresh.colIdx().size() * sizeof(VertexId)));
}

TEST(DeltaCsr, ConcurrentReadersSeePublishedPrefix)
{
    DeltaCsr overlay(generateErdosRenyi(256, 0, false, 3), 4096);
    std::atomic<bool> stop{false};
    std::atomic<bool> failed{false};
    std::thread reader([&overlay, &stop, &failed] {
        while (!stop.load(std::memory_order_acquire)) {
            for (VertexId v = 0; v < 8; ++v) {
                // Every published neighbor of v must be v + something
                // the writer actually inserted (dst = v + k + 1).
                EdgeId count = 0;
                overlay.forEachDeltaNeighbor(v, [&](VertexId u) {
                    if (u <= v || u > v + 200)
                        failed.store(true, std::memory_order_relaxed);
                    ++count;
                });
                // The chain walk published `count` edges at its start;
                // the count can only have grown since.
                if (count > overlay.deltaDegree(v))
                    failed.store(true, std::memory_order_relaxed);
            }
        }
    });
    for (VertexId k = 0; k < 200; ++k)
        for (VertexId v = 0; v < 8; ++v)
            ASSERT_EQ(overlay.addEdge(v, v + k + 1),
                      DeltaCsr::AddEdge::Added);
    stop.store(true, std::memory_order_release);
    reader.join();
    EXPECT_FALSE(failed.load());
    EXPECT_EQ(overlay.validate(), nullptr);
}

TEST(DeltaCsr, SteadyStateInsertsAreAllocFree)
{
    if (!ScopedAllocGuard::interpositionActive())
        GTEST_SKIP() << "interposer compiled out (GRAPHITE_CHECKS off)";
    DeltaCsr overlay(generateErdosRenyi(128, 0, false, 4), 4096);
    ScopedAllocGuard guard("delta-csr inserts");
    for (VertexId k = 0; k < 30; ++k)
        for (VertexId v = 0; v < 64; ++v)
            ASSERT_EQ(overlay.addEdge(v, 64 + (v + k) % 64),
                      DeltaCsr::AddEdge::Added);
    EXPECT_EQ(guard.allocations(), 0u)
        << "addEdge must not touch the heap after construction";
}

// ------------------------------------------------------------------
// IncrementalGraphStats
// ------------------------------------------------------------------

TEST(IncrementalGraphStats, MatchesRecomputeAfterEveryInsert)
{
    DeltaCsr overlay(generateBarabasiAlbert(120, 3, 7), 512);
    IncrementalGraphStats inc(computeGraphStats(overlay));
    Rng rng(13);
    for (int i = 0; i < 200;) {
        const auto src = static_cast<VertexId>(rng.next() % 120);
        const auto dst = static_cast<VertexId>(rng.next() % 120);
        if (overlay.addEdge(src, dst) != DeltaCsr::AddEdge::Added)
            continue;
        inc.onEdgeInserted(overlay.degree(src));
        ++i;
        if (i % 25 != 0)
            continue;
        const GraphStats expect = computeGraphStats(overlay);
        const GraphStats got = inc.current();
        EXPECT_EQ(got.numVertices, expect.numVertices);
        EXPECT_EQ(got.numEdges, expect.numEdges);
        EXPECT_EQ(got.maxDegree, expect.maxDegree);
        EXPECT_NEAR(got.avgDegree, expect.avgDegree, 1e-9);
        EXPECT_NEAR(got.degreeVariance, expect.degreeVariance, 1e-6);
    }
}

// ------------------------------------------------------------------
// Locality order over an overlay
// ------------------------------------------------------------------

TEST(LocalityOrder, OverlayWithZeroDeltasMatchesBase)
{
    const CsrGraph base = generateBarabasiAlbert(200, 4, 21);
    DeltaCsr overlay(generateBarabasiAlbert(200, 4, 21), 256);
    EXPECT_EQ(localityOrder(base), localityOrder(overlay));
}

TEST(LocalityOrderCache, RecomputesOnlyPastStalenessBudget)
{
    DeltaCsr overlay(generateBarabasiAlbert(200, 4, 22), 4096);
    const EdgeId baseEdges = overlay.numEdges();
    LocalityOrderCache cache(0.05);
    EXPECT_TRUE(cache.stale(overlay));
    const ProcessingOrder first = cache.get(overlay);
    EXPECT_EQ(cache.recomputes(), 1u);
    EXPECT_EQ(first.size(), overlay.numVertices());

    // Insert fewer than 5% of the edge count: the cached order holds.
    const auto budget = static_cast<EdgeId>(0.05 * baseEdges);
    Rng rng(23);
    EdgeId added = 0;
    while (added + 1 < budget) {
        const auto src = static_cast<VertexId>(rng.next() % 200);
        const auto dst = static_cast<VertexId>(rng.next() % 200);
        if (overlay.addEdge(src, dst) == DeltaCsr::AddEdge::Added)
            ++added;
    }
    EXPECT_FALSE(cache.stale(overlay));
    (void)cache.get(overlay);
    EXPECT_EQ(cache.recomputes(), 1u);

    // Crossing the budget forces one recompute, then holds again.
    while (cache.recomputes() == 1u && !cache.stale(overlay)) {
        const auto src = static_cast<VertexId>(rng.next() % 200);
        const auto dst = static_cast<VertexId>(rng.next() % 200);
        (void)overlay.addEdge(src, dst);
    }
    EXPECT_TRUE(cache.stale(overlay));
    (void)cache.get(overlay);
    EXPECT_EQ(cache.recomputes(), 2u);
    EXPECT_FALSE(cache.stale(overlay));
}

// ------------------------------------------------------------------
// Sampler parity
// ------------------------------------------------------------------

TEST(OverlaySampling, ZeroDeltaOverlaySamplesBitwiseLikeBase)
{
    const CsrGraph base = generateBarabasiAlbert(300, 5, 31);
    DeltaCsr overlay(generateBarabasiAlbert(300, 5, 31), 64);
    const std::vector<VertexId> fanouts = {4, 4};
    SamplerScratch scratchA(base.numVertices());
    SamplerScratch scratchB(base.numVertices());
    SampledTree treeA;
    SampledTree treeB;
    for (std::uint64_t id = 0; id < 25; ++id) {
        const auto seed = static_cast<VertexId>((id * 11) % 300);
        Rng rngA(id * 77 + 1);
        Rng rngB(id * 77 + 1);
        sampleTree(base, seed, fanouts, rngA, scratchA, treeA);
        sampleTree(overlay, seed, fanouts, rngB, scratchB, treeB);
        ASSERT_EQ(treeA.blocks.size(), treeB.blocks.size());
        for (std::size_t k = 0; k < treeA.blocks.size(); ++k) {
            EXPECT_EQ(treeA.blocks[k].rowPtr, treeB.blocks[k].rowPtr);
            EXPECT_EQ(treeA.blocks[k].colIdx, treeB.blocks[k].colIdx);
            EXPECT_EQ(treeA.blocks[k].dstVertices,
                      treeB.blocks[k].dstVertices);
            EXPECT_EQ(treeA.blocks[k].srcVertices,
                      treeB.blocks[k].srcVertices);
        }
    }
}

TEST(OverlaySampling, DeltaEdgesParticipateInSampling)
{
    // A vertex whose neighbors are all delta edges still samples a
    // full tree over them.
    DeltaCsr overlay(generateErdosRenyi(64, 0, false, 8), 64);
    for (VertexId u = 1; u <= 12; ++u)
        ASSERT_EQ(overlay.addEdge(0, u), DeltaCsr::AddEdge::Added);
    const std::vector<VertexId> fanouts = {4};
    SamplerScratch scratch(overlay.numVertices());
    SampledTree tree;
    Rng rng(5);
    sampleTree(overlay, 0, fanouts, rng, scratch, tree);
    ASSERT_EQ(tree.blocks.size(), 1u);
    const FlatBlock &block = tree.blocks[0];
    ASSERT_EQ(block.dstVertices.size(), 1u);
    EXPECT_EQ(block.rowPtr[1] - block.rowPtr[0], 4u)
        << "fanout-limited sample over a pure-delta row";
    for (const VertexId col : block.colIdx) {
        const VertexId u = block.srcVertices[col];
        EXPECT_GE(u, 1u);
        EXPECT_LE(u, 12u);
    }
}

} // namespace
} // namespace graphite
